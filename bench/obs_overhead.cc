// Observability overhead: trains the same grid-executed WarpLDA run with the
// obs layer off, with metrics on, and with metrics + tracing on, and reports
// the throughput delta. The claim under test: hot-path metric recording
// (plain ThreadScratch accumulators flushed at stage barriers, sharded
// relaxed atomics on the flush) costs < 2% tokens/sec, and a disabled obs
// layer costs nothing measurable. Reps interleave the three modes so thermal
// / cache drift hits them equally; best-of-reps is compared.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "dist/partitioner.h"
#include "obs/metrics.h"
#include "util/flags.h"

namespace {

struct Mode {
  const char* name;
  bool metrics;
  bool trace;
};

double TokensPerSec(const warplda::Corpus& corpus,
                    const warplda::TrainResult& result, uint32_t iterations) {
  return corpus.num_tokens() * iterations / result.total_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.002;
  int64_t k = 100;
  int64_t iterations = 20;
  int64_t threads = 2;
  int64_t reps = 3;
  warplda::FlagSet flags;
  flags.Double("scale", &scale, "corpus scale vs the paper's NYTimes")
      .Int("k", &k, "number of topics")
      .Int("iters", &iterations, "training iterations per rep")
      .Int("threads", &threads, "grid executor threads")
      .Int("reps", &reps, "interleaved repetitions per mode (best-of)");
  if (!flags.Parse(argc, argv)) return 1;

  warplda::bench::PrintHeader(
      "Observability overhead: metrics / tracing vs a bare training run",
      "src/obs/ design goal — <2% with metrics on, ~0 when disabled");

  warplda::Corpus corpus = warplda::bench::MakeShapedCorpus("nytimes", scale);
  std::printf("corpus: %s, K=%lld, %lld iters, %lld threads, %lld reps\n",
              warplda::DescribeCorpus(corpus).c_str(),
              static_cast<long long>(k), static_cast<long long>(iterations),
              static_cast<long long>(threads), static_cast<long long>(reps));

  const std::vector<Mode> modes = {
      {"off", false, false},
      {"metrics", true, false},
      {"metrics+trace", true, true},
  };
  std::vector<double> best(modes.size(), 0.0);

  for (int64_t rep = 0; rep < reps; ++rep) {
    for (size_t m = 0; m < modes.size(); ++m) {
      const Mode& mode = modes[m];
      warplda::LdaConfig config =
          warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
      warplda::WarpLdaSampler sampler;
      warplda::TrainOptions options;
      options.iterations = static_cast<uint32_t>(iterations);
      options.eval_every = 0;
      options.grid_execution = true;
      options.sweep_plan = warplda::MakeSweepPlan(corpus, 8, 8);
      options.sweep_threads = static_cast<uint32_t>(threads);
      options.metrics = mode.metrics;
      if (mode.trace) options.trace_path = "obs_overhead_trace.json";
      warplda::TrainResult result = Train(sampler, corpus, config, options);
      const double tps = TokensPerSec(corpus, result, options.iterations);
      best[m] = std::max(best[m], tps);
      std::printf("  rep %lld  %-14s %8.2fM tok/s\n",
                  static_cast<long long>(rep), mode.name, tps / 1e6);
      std::fflush(stdout);
    }
  }

  warplda::bench::BenchJson json(
      "obs_overhead", "synthetic-nytimes scale=" + std::to_string(scale));
  json.header()
      .Int("k", k)
      .Int("iterations", iterations)
      .Int("threads", threads)
      .Int("reps", reps);
  std::printf("\n%-14s %12s %10s\n", "mode", "tok/s(best)", "overhead");
  for (size_t m = 0; m < modes.size(); ++m) {
    const double overhead_pct = 100.0 * (best[0] - best[m]) / best[0];
    std::printf("%-14s %11.2fM %9.2f%%\n", modes[m].name, best[m] / 1e6,
                overhead_pct);
    json.AddRow()
        .Str("mode", modes[m].name)
        .Num("tokens_per_sec", best[m])
        .Num("overhead_pct", overhead_pct);
  }
  json.Write("BENCH_obs_overhead.json");

  const double metrics_overhead = 100.0 * (best[0] - best[1]) / best[0];
  std::printf("\nmetrics-on overhead: %.2f%% (design goal: < 2%%; negative "
              "means run-to-run noise exceeds the cost)\n",
              metrics_overhead);
  return 0;
}

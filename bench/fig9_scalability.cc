// Fig 9: scalability. Four panels:
//  (a) multi-thread speedup of WarpLDA's parallel visits (real threads;
//      on a single-core CI box the curve is flat — the harness still runs);
//  (b) multi-machine speedup from the simulated cluster (PubMed shape);
//  (c) convergence on the largest feasible ClueWeb-shaped corpus;
//  (d) throughput per iteration on that run.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "dist/cluster_sim.h"
#include "util/flags.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  double scale = 0.002;
  int64_t k = 200;
  int64_t iterations = 10;
  warplda::FlagSet flags;
  flags.Double("scale", &scale, "corpus scale")
      .Int("k", &k, "topics")
      .Int("iters", &iterations, "iterations per measurement");
  if (!flags.Parse(argc, argv)) return 1;

  warplda::bench::PrintHeader(
      "Fig 9: scalability (threads, machines, large-scale run)",
      "Fig 9a-d — thread speedup, distributed speedup, ClueWeb convergence "
      "and throughput");

  // (a) threads.
  {
    warplda::Corpus corpus =
        warplda::bench::MakeShapedCorpus("nytimes", scale);
    std::printf("\n(a) thread scaling on %s, K=%lld (host has %u cores)\n",
                warplda::DescribeCorpus(corpus).c_str(),
                static_cast<long long>(k),
                std::thread::hardware_concurrency());
    warplda::LdaConfig config =
        warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
    config.mh_steps = 2;
    double base = 0.0;
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
      warplda::WarpLdaOptions options;
      options.num_threads = threads;
      warplda::WarpLdaSampler sampler(options);
      sampler.Init(corpus, config);
      sampler.Iterate();  // warm-up
      warplda::Stopwatch watch;
      for (int64_t i = 0; i < iterations; ++i) sampler.Iterate();
      double seconds = watch.Seconds();
      double throughput = corpus.num_tokens() * iterations / seconds / 1e6;
      if (threads == 1) base = seconds;
      std::printf("  threads %2u  %8.2f Mtok/s  speedup %.2fx\n", threads,
                  throughput, base / seconds);
      std::fflush(stdout);
    }
  }

  // (b) simulated machines.
  {
    warplda::Corpus corpus =
        warplda::bench::MakeShapedCorpus("pubmed", scale / 27);
    std::printf("\n(b) simulated distributed speedup on %s, K=%lld\n",
                warplda::DescribeCorpus(corpus).c_str(),
                static_cast<long long>(k));
    for (uint32_t workers : {1u, 2u, 4u, 8u, 16u}) {
      warplda::ClusterConfig cluster;
      cluster.num_workers = workers;
      warplda::ClusterSim sim(corpus, cluster);
      std::printf("  machines %2u  speedup %.2fx  (word imbalance %.4f)\n",
                  workers, sim.SimulatedSpeedup(), sim.WordImbalance());
    }
  }

  // (c)+(d) largest feasible run.
  {
    warplda::Corpus corpus =
        warplda::bench::MakeShapedCorpus("clueweb", scale / 500);
    std::printf("\n(c,d) ClueWeb-shaped run: %s, K=%lld, M=1\n",
                warplda::DescribeCorpus(corpus).c_str(),
                static_cast<long long>(k));
    warplda::LdaConfig config =
        warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
    config.mh_steps = 1;
    warplda::WarpLdaSampler sampler;
    warplda::TrainOptions options;
    options.iterations = static_cast<uint32_t>(4 * iterations);
    options.eval_every = static_cast<uint32_t>(iterations);
    warplda::TrainResult result = Train(sampler, corpus, config, options);
    for (const auto& stat : result.history) {
      std::printf("  iter %3u  t %7.2fs  ll %.6g  %.2fM tok/s\n",
                  stat.iteration, stat.seconds, stat.log_likelihood,
                  stat.tokens_per_second / 1e6);
    }
  }

  std::printf(
      "\nPaper: 17x speedup on 24 cores, 13.5x on 16 machines, 11G tok/s on\n"
      "256 machines with K=1e6. The harness reproduces the curves' shape at\n"
      "the hardware available (thread speedup is bounded by physical cores).\n");
  return 0;
}

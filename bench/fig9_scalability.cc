// Fig 9: scalability. Four panels:
//  (a) multi-thread speedup of WarpLDA's fused phases (parallel row/column
//      visits; on a single-core CI box the curve is flat — the harness still
//      runs);
//  (b) multi-thread speedup of the parallel grid-sweep executor (wavefront
//      block scheduling over an 8×8 SweepPlan, per-worker scratch and ck
//      deltas), checked bit-identical against the serial Iterate() run;
//  (c) multi-machine speedup from the simulated cluster (PubMed shape);
//  (d) convergence + throughput on the largest feasible ClueWeb-shaped
//      corpus, trained through the grid executor (TrainOptions::
//      grid_execution).
// Measured rows are also written to BENCH_fig9.json (machine readable) so
// the perf trajectory is tracked across commits.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/parallel_executor.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "dist/cluster_sim.h"
#include "dist/partitioner.h"
#include "util/flags.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  double scale = 0.002;
  int64_t k = 200;
  int64_t iterations = 10;
  warplda::FlagSet flags;
  flags.Double("scale", &scale, "corpus scale")
      .Int("k", &k, "topics")
      .Int("iters", &iterations, "iterations per measurement");
  if (!flags.Parse(argc, argv)) return 1;

  warplda::bench::PrintHeader(
      "Fig 9: scalability (threads, machines, large-scale run)",
      "Fig 9a-d — thread speedup (fused + grid executor), distributed "
      "speedup, ClueWeb convergence and throughput");

  char dataset[64];
  std::snprintf(dataset, sizeof(dataset), "synthetic-nytimes scale=%g", scale);
  warplda::bench::BenchJson json("fig9", dataset);

  // (a) threads, fused path (parallel VisitByColumn/VisitByRow).
  {
    warplda::Corpus corpus =
        warplda::bench::MakeShapedCorpus("nytimes", scale);
    std::printf("\n(a) fused-phase thread scaling on %s, K=%lld "
                "(host has %u cores)\n",
                warplda::DescribeCorpus(corpus).c_str(),
                static_cast<long long>(k),
                std::thread::hardware_concurrency());
    warplda::LdaConfig config =
        warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
    config.mh_steps = 2;
    double base = 0.0;
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
      warplda::WarpLdaOptions options;
      options.num_threads = threads;
      warplda::WarpLdaSampler sampler(options);
      sampler.Init(corpus, config);
      sampler.Iterate();  // warm-up
      warplda::Stopwatch watch;
      for (int64_t i = 0; i < iterations; ++i) sampler.Iterate();
      double seconds = watch.Seconds();
      double throughput = corpus.num_tokens() * iterations / seconds / 1e6;
      if (threads == 1) base = seconds;
      std::printf("  threads %2u  %8.2f Mtok/s  speedup %.2fx\n", threads,
                  throughput, base / seconds);
      std::fflush(stdout);
      json.AddRow()
          .Str("panel", "fused-iterate")
          .Int("threads", threads)
          .Num("tokens_per_sec", throughput * 1e6)
          .Num("wall_ms", seconds * 1e3)
          .Num("speedup", base / seconds);
    }
  }

  // (b) threads, grid-sweep executor (wavefront over an 8×8 plan).
  {
    warplda::Corpus corpus =
        warplda::bench::MakeShapedCorpus("nytimes", scale);
    warplda::LdaConfig config =
        warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
    config.mh_steps = 2;
    warplda::SweepPlan plan = warplda::MakeSweepPlan(
        corpus, 8, 8, warplda::PartitionStrategy::kGreedy);
    std::printf("\n(b) grid-executor thread scaling, 8x8 plan, same corpus\n");

    // Serial reference trajectory: the determinism oracle for every thread
    // count below (grid execution must reproduce Iterate() exactly, with or
    // without stage fusion).
    warplda::WarpLdaSampler reference;
    reference.Init(corpus, config);
    for (int64_t i = 0; i < iterations + 1; ++i) reference.Iterate();
    const std::vector<warplda::TopicId> expected = reference.Assignments();

    // Two panels: the fused span schedule (the default) and the four-stage
    // schedule it replaced, kept live as the before/after comparison the
    // fusion work is judged against.
    struct FusionPanel {
      const char* name;
      warplda::StageFusion fusion;
    };
    for (const FusionPanel& fp :
         {FusionPanel{"grid-sweep", warplda::StageFusion::kAuto},
          FusionPanel{"grid-4stage", warplda::StageFusion::kNone}}) {
      std::printf("  [%s]\n", fp.name);
      double base = 0.0;
      for (uint32_t threads : {1u, 2u, 4u, 8u}) {
        warplda::ParallelExecutor executor(threads);
        warplda::WarpLdaOptions options;
        options.fusion = fp.fusion;
        warplda::WarpLdaSampler sampler(options);
        sampler.Init(corpus, config);
        executor.RunSweep(sampler, plan);  // warm-up
        warplda::Stopwatch watch;
        for (int64_t i = 0; i < iterations; ++i) {
          executor.RunSweep(sampler, plan);
        }
        double seconds = watch.Seconds();
        double throughput = corpus.num_tokens() * iterations / seconds / 1e6;
        if (threads == 1) base = seconds;
        const bool identical = sampler.Assignments() == expected;
        std::printf("  threads %2u  %8.2f Mtok/s  speedup %.2fx  "
                    "bit-identical to Iterate(): %s\n",
                    threads, throughput, base / seconds,
                    identical ? "yes" : "NO (BUG)");
        std::fflush(stdout);
        json.AddRow()
            .Str("panel", fp.name)
            .Int("threads", threads)
            .Num("tokens_per_sec", throughput * 1e6)
            .Num("wall_ms", seconds * 1e3)
            .Num("speedup", base / seconds)
            .Str("bit_identical", identical ? "yes" : "no");
      }
    }
  }

  // (c) simulated machines.
  {
    warplda::Corpus corpus =
        warplda::bench::MakeShapedCorpus("pubmed", scale / 27);
    std::printf("\n(c) simulated distributed speedup on %s, K=%lld\n",
                warplda::DescribeCorpus(corpus).c_str(),
                static_cast<long long>(k));
    for (uint32_t workers : {1u, 2u, 4u, 8u, 16u}) {
      warplda::ClusterConfig cluster;
      cluster.num_workers = workers;
      warplda::ClusterSim sim(corpus, cluster);
      std::printf("  machines %2u  speedup %.2fx  (word imbalance %.4f)\n",
                  workers, sim.SimulatedSpeedup(), sim.WordImbalance());
      json.AddRow()
          .Str("panel", "simulated-machines")
          .Int("machines", workers)
          .Num("speedup", sim.SimulatedSpeedup())
          .Num("word_imbalance", sim.WordImbalance());
    }
  }

  // (d) largest feasible run, trained through the grid executor.
  {
    warplda::Corpus corpus =
        warplda::bench::MakeShapedCorpus("clueweb", scale / 500);
    const uint32_t threads =
        std::min(8u, std::max(1u, std::thread::hardware_concurrency()));
    std::printf("\n(d) ClueWeb-shaped run: %s, K=%lld, M=1, grid-executed on "
                "%u threads\n",
                warplda::DescribeCorpus(corpus).c_str(),
                static_cast<long long>(k), threads);
    warplda::LdaConfig config =
        warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
    config.mh_steps = 1;
    warplda::WarpLdaSampler sampler;
    warplda::TrainOptions options;
    options.iterations = static_cast<uint32_t>(4 * iterations);
    options.eval_every = static_cast<uint32_t>(iterations);
    options.grid_execution = true;
    options.sweep_plan = warplda::MakeSweepPlan(corpus, 8, 8);
    options.sweep_threads = threads;
    warplda::TrainResult result = Train(sampler, corpus, config, options);
    for (const auto& stat : result.history) {
      std::printf("  iter %3u  t %7.2fs  ll %.6g  %.2fM tok/s\n",
                  stat.iteration, stat.seconds, stat.log_likelihood,
                  stat.tokens_per_second / 1e6);
      json.AddRow()
          .Str("panel", "clueweb-grid-train")
          .Int("threads", threads)
          .Int("iteration", stat.iteration)
          .Num("tokens_per_sec", stat.tokens_per_second)
          .Num("wall_ms", stat.seconds * 1e3)
          .Num("log_likelihood", stat.log_likelihood);
    }
  }

  json.Write("BENCH_fig9.json");
  std::printf(
      "\nPaper: 17x speedup on 24 cores, 13.5x on 16 machines, 11G tok/s on\n"
      "256 machines with K=1e6. The harness reproduces the curves' shape at\n"
      "the hardware available (thread speedup is bounded by physical cores).\n");
  return 0;
}

// Fig 7: quality of the MCEM solution — the bridge from LightLDA's CGS to
// WarpLDA's MCEM, one ablation at a time (M=1 everywhere):
//   LightLDA -> +DW (delayed C_w) -> +DW+DD (delayed C_d too)
//   -> +DW+DD+SP (WarpLDA's simple word proposal) -> WarpLDA.
// The paper's finding: all five need roughly the same number of iterations
// to reach a given log likelihood, i.e. delayed updates and the simple
// proposal do not hurt convergence per iteration.
#include <cstdio>
#include <vector>

#include "baselines/light_lda.h"
#include "bench/bench_common.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  double scale = 0.002;
  int64_t k = 200;
  int64_t iterations = 60;
  warplda::FlagSet flags;
  flags.Double("scale", &scale, "NYTimes-shape corpus scale")
      .Int("k", &k, "topics (paper: 1e3)")
      .Int("iters", &iterations, "training iterations");
  if (!flags.Parse(argc, argv)) return 1;

  warplda::bench::PrintHeader(
      "Fig 7: MCEM solution quality ablation (M=1)",
      "Fig 7 — LightLDA / +DW / +DW+DD / +DW+DD+SP / WarpLDA, LL vs iter");

  warplda::Corpus corpus =
      warplda::bench::MakeShapedCorpus("nytimes", scale);
  std::printf("corpus: %s, K=%lld\n\n",
              warplda::DescribeCorpus(corpus).c_str(),
              static_cast<long long>(k));

  warplda::LdaConfig config =
      warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
  config.mh_steps = 1;
  warplda::TrainOptions options;
  options.iterations = static_cast<uint32_t>(iterations);
  options.eval_every = 5;

  std::vector<std::vector<warplda::IterationStat>> traces;
  std::vector<std::string> names;

  auto run = [&](warplda::Sampler& sampler) {
    warplda::TrainResult result = Train(sampler, corpus, config, options);
    names.push_back(sampler.name());
    traces.push_back(result.history);
    std::fflush(stdout);
  };

  {
    warplda::LightLdaSampler base;
    run(base);
  }
  {
    warplda::LightLdaOptions o;
    o.delay_word_counts = true;
    warplda::LightLdaSampler dw(o);
    run(dw);
  }
  {
    warplda::LightLdaOptions o;
    o.delay_word_counts = true;
    o.delay_doc_counts = true;
    warplda::LightLdaSampler dwdd(o);
    run(dwdd);
  }
  {
    warplda::LightLdaOptions o;
    o.delay_word_counts = true;
    o.delay_doc_counts = true;
    o.simple_word_proposal = true;
    warplda::LightLdaSampler dwddsp(o);
    run(dwddsp);
  }
  {
    warplda::WarpLdaSampler warp;
    run(warp);
  }

  std::printf("%-8s", "iter");
  for (const auto& name : names) std::printf(" %20s", name.c_str());
  std::printf("\n");
  for (size_t row = 0; row < traces[0].size(); ++row) {
    std::printf("%-8u", traces[0][row].iteration);
    for (const auto& trace : traces) {
      std::printf(" %20.6g", trace[row].log_likelihood);
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper's claim: the five curves overlap — delayed updates and the\n"
      "simple q_word barely change per-iteration convergence.\n");
  return 0;
}

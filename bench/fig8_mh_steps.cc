// Fig 8: impact of the proposal-chain length M on WarpLDA's convergence.
// Larger M converges faster per iteration (less bias from the finite MH
// chain) at the cost of more memory and time per iteration.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  double scale = 0.002;
  int64_t k = 200;
  int64_t iterations = 50;
  warplda::FlagSet flags;
  flags.Double("scale", &scale, "NYTimes-shape corpus scale")
      .Int("k", &k, "topics (paper: 1e3)")
      .Int("iters", &iterations, "training iterations");
  if (!flags.Parse(argc, argv)) return 1;

  warplda::bench::PrintHeader(
      "Fig 8: impact of M on WarpLDA convergence",
      "Fig 8 — log likelihood vs time for M in {1,2,4,8,16}");

  warplda::Corpus corpus =
      warplda::bench::MakeShapedCorpus("nytimes", scale);
  std::printf("corpus: %s, K=%lld\n\n",
              warplda::DescribeCorpus(corpus).c_str(),
              static_cast<long long>(k));

  warplda::TrainOptions options;
  options.iterations = static_cast<uint32_t>(iterations);
  options.eval_every = 5;

  for (uint32_t m : {1u, 2u, 4u, 8u, 16u}) {
    warplda::LdaConfig config =
        warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
    config.mh_steps = m;
    warplda::WarpLdaSampler sampler;
    warplda::TrainResult result = Train(sampler, corpus, config, options);
    std::printf("M=%-3u final ll %.6g  total %.2fs  per-iter %.3fs\n", m,
                result.final_log_likelihood, result.total_seconds,
                result.total_seconds / options.iterations);
    for (const auto& stat : result.history) {
      if (stat.iteration % 10 == 0) {
        std::printf("   iter %3u  t %7.2fs  ll %.6g\n", stat.iteration,
                    stat.seconds, stat.log_likelihood);
      }
    }
    std::fflush(stdout);
  }

  std::printf(
      "\nPaper's claim: larger M converges in fewer iterations; small M\n"
      "(1-4) already suffices and keeps per-iteration cost low.\n");
  return 0;
}

#ifndef WARPLDA_BENCH_BENCH_COMMON_H_
#define WARPLDA_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/simd_kernels.h"
#include "corpus/corpus.h"
#include "corpus/synthetic.h"

namespace warplda::bench {

/// Builds one of the paper's Table 3 dataset shapes at the given scale.
/// `name` is "nytimes", "pubmed" or "clueweb".
inline Corpus MakeShapedCorpus(const std::string& name, double scale,
                               uint64_t seed = 0) {
  SyntheticConfig config;
  if (name == "pubmed") {
    config = PubMedShape(scale);
  } else if (name == "clueweb") {
    config = ClueWebShape(scale);
  } else {
    config = NYTimesShape(scale);
  }
  if (seed != 0) config.seed = seed;
  return GenerateLdaCorpus(config).corpus;
}

/// Peak resident set size of this process in bytes, read from
/// /proc/self/status (VmHWM). Returns 0 where the file or the field is
/// unavailable (non-Linux), so benches can report it unconditionally.
/// Benches record this next to snapshot footprints so the perf trajectory
/// tracks memory, not just throughput.
inline uint64_t PeakRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  unsigned long long kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu", &kb) == 1) break;
  }
  std::fclose(f);
  return static_cast<uint64_t>(kb) * 1024;
}

/// CPU model string from /proc/cpuinfo ("model name"), or "unknown" where
/// the file or field is unavailable. Recorded in bench JSON headers so
/// committed numbers say what silicon produced them.
inline std::string CpuModelName() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return "unknown";
  char line[512];
  std::string model = "unknown";
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "model name", 10) == 0) {
      const char* colon = std::strchr(line, ':');
      if (colon != nullptr) {
        const char* p = colon + 1;
        while (*p == ' ' || *p == '\t') ++p;
        model.assign(p);
        while (!model.empty() &&
               (model.back() == '\n' || model.back() == '\r')) {
          model.pop_back();
        }
      }
      break;
    }
  }
  std::fclose(f);
  return model;
}

/// Prints a separator + bench header so `for b in bench/*; do $b; done`
/// output reads as one report.
inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

/// Machine-readable bench results: one JSON object identifying the bench and
/// dataset plus a "rows" array with one object per measured configuration
/// (threads, tokens/sec, wall ms, …). Written as `BENCH_<bench>.json` so the
/// perf trajectory can be tracked across commits by any tooling that can
/// read JSON. Keys keep insertion order; row references stay valid across
/// AddRow() calls.
///
///   BenchJson json("fig9", "synthetic-nytimes scale=0.002");
///   json.AddRow()
///       .Str("panel", "grid-sweep")
///       .Int("threads", 8)
///       .Num("tokens_per_sec", 5.1e6)
///       .Num("wall_ms", 420.0);
///   json.Write("BENCH_fig9.json");
class BenchJson {
 public:
  /// One flat JSON object of number/string fields.
  class Object {
   public:
    Object& Num(const std::string& key, double value) {
      char buffer[64];
      if (std::isfinite(value)) {
        std::snprintf(buffer, sizeof(buffer), "%.10g", value);
      } else {
        std::snprintf(buffer, sizeof(buffer), "null");  // JSON has no inf/nan
      }
      fields_.emplace_back(key, buffer);
      return *this;
    }
    Object& Int(const std::string& key, int64_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Object& Str(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, Quote(value));
      return *this;
    }
    /// Byte-count metric (snapshot footprint, peak RSS, …). Same JSON as
    /// Int; exists so call sites say what the number means.
    Object& Bytes(const std::string& key, uint64_t value) {
      return Int(key, static_cast<int64_t>(value));
    }

   private:
    friend class BenchJson;
    /// Prints the comma-separated `"key": value` list, no braces (shared by
    /// row objects and the top-level header).
    void PrintFields(std::FILE* f) const {
      for (size_t i = 0; i < fields_.size(); ++i) {
        std::fprintf(f, "%s%s: %s", i == 0 ? "" : ", ",
                     Quote(fields_[i].first).c_str(), fields_[i].second.c_str());
      }
    }
    void Print(std::FILE* f) const {
      std::fprintf(f, "{");
      PrintFields(f);
      std::fprintf(f, "}");
    }
    static std::string Quote(const std::string& s) {
      std::string out = "\"";
      for (char c : s) {
        if (c == '"' || c == '\\') {
          out += '\\';
          out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
      }
      out += '"';
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;  // key -> JSON
  };

  /// The header always records the host: hardware thread count, CPU model
  /// and the SIMD kernel tier the dispatcher picked ("avx2" or "scalar"),
  /// so a committed JSON is interpretable without knowing the box.
  BenchJson(const std::string& bench, const std::string& dataset) {
    header_.Str("bench", bench).Str("dataset", dataset);
    header_.Int("hardware_threads", std::thread::hardware_concurrency());
    header_.Str("cpu_model", CpuModelName());
    header_.Str("simd", simd::ActiveKernelFeatures());
  }

  /// Extra top-level fields (host info, config) beside bench/dataset.
  Object& header() { return header_; }

  Object& AddRow() { return rows_.emplace_back(); }

  /// Writes `{...header fields, "rows": [...]}`; returns false (and keeps
  /// the bench's stdout report usable) if the file cannot be written.
  bool Write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{");
    header_.PrintFields(f);
    std::fprintf(f, ", \"rows\": [");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s\n  ", i == 0 ? "" : ",");
      rows_[i].Print(f);
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
    return true;
  }

 private:
  Object header_;
  std::deque<Object> rows_;  // deque: AddRow() must not invalidate references
};

}  // namespace warplda::bench

#endif  // WARPLDA_BENCH_BENCH_COMMON_H_

#ifndef WARPLDA_BENCH_BENCH_COMMON_H_
#define WARPLDA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "corpus/corpus.h"
#include "corpus/synthetic.h"

namespace warplda::bench {

/// Builds one of the paper's Table 3 dataset shapes at the given scale.
/// `name` is "nytimes", "pubmed" or "clueweb".
inline Corpus MakeShapedCorpus(const std::string& name, double scale,
                               uint64_t seed = 0) {
  SyntheticConfig config;
  if (name == "pubmed") {
    config = PubMedShape(scale);
  } else if (name == "clueweb") {
    config = ClueWebShape(scale);
  } else {
    config = NYTimesShape(scale);
  }
  if (seed != 0) config.seed = seed;
  return GenerateLdaCorpus(config).corpus;
}

/// Prints a separator + bench header so `for b in bench/*; do $b; done`
/// output reads as one report.
inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

}  // namespace warplda::bench

#endif  // WARPLDA_BENCH_BENCH_COMMON_H_

// Table 1: memory-hierarchy latency. The paper quotes Ivy Bridge L1/L2/L3 and
// main-memory latencies; here we measure this machine's actual hierarchy with
// a dependent pointer-chase over growing working sets, which motivates the
// whole cache-locality argument of §3.
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench/bench_common.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

// Cycles per dependent load over a random cyclic permutation of `bytes`.
double ChaseLatencyNs(size_t bytes, warplda::Rng& rng) {
  size_t n = bytes / sizeof(uint32_t);
  std::vector<uint32_t> next(n);
  // Sattolo's algorithm: one cycle visiting every slot in random order.
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (size_t i = n - 1; i > 0; --i) {
    size_t j = rng.NextInt(static_cast<uint32_t>(i));
    std::swap(perm[i], perm[j]);
  }
  for (size_t i = 0; i + 1 < n; ++i) next[perm[i]] = perm[i + 1];
  next[perm[n - 1]] = perm[0];

  const uint64_t hops = 4u << 20;
  uint32_t p = 0;
  warplda::Stopwatch watch;
  for (uint64_t i = 0; i < hops; ++i) p = next[p];
  double seconds = watch.Seconds();
  // Defeat dead-code elimination.
  if (p == 0xFFFFFFFF) std::printf("!");
  return seconds / hops * 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t max_mb = 64;
  warplda::FlagSet flags;
  flags.Int("max-mb", &max_mb, "largest working set to probe (MB)");
  if (!flags.Parse(argc, argv)) return 1;

  warplda::bench::PrintHeader(
      "Table 1: memory hierarchy latency (pointer chase)",
      "Table 1 — L1/L2/L3/main-memory latency motivating cache locality");

  std::printf("%-16s %12s\n", "working set", "ns / load");
  warplda::Rng rng(1);
  for (size_t kb = 16; kb <= static_cast<size_t>(max_mb) * 1024; kb *= 4) {
    double ns = ChaseLatencyNs(kb * 1024, rng);
    std::printf("%10zu KB %12.2f\n", kb, ns);
  }
  std::printf(
      "\nExpected shape: flat within L1/L2, a step past each cache level,\n"
      "and a large jump once the set exceeds LLC (the paper's 6x+ gap).\n");
  return 0;
}

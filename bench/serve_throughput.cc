// Serving throughput and memory of the concurrent inference subsystem:
// QPS as a function of worker-thread count and of micro-batch size, plus
// snapshot footprint (dense V×K φ̂ vs the tiered sparse layout) and publish
// latency (full rebuild vs incremental PublishDelta), on a synthetic
// NYTimes-shaped corpus. The worker sweep is the serving analogue of the
// paper's Fig 9 scalability study; the batch sweep shows the cache-warmth
// payoff of grouping requests against one snapshot; the footprint section
// tracks the O(V·K) → O(K + nnz) memory claim of the sparse snapshots.
//
//   ./serve_throughput [--scale 0.02] [--k 50] [--requests 4000]
//                      [--footprint-k 400]
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "serve/engine.h"
#include "serve/model_store.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace {

struct RunResult {
  double qps = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

RunResult RunLoad(const warplda::serve::ModelStore& store,
                  const std::vector<std::vector<warplda::WordId>>& load,
                  uint32_t workers, uint32_t batch) {
  warplda::serve::ServerOptions options;
  options.num_workers = workers;
  options.max_batch = batch;
  options.queue_capacity = 4096;
  options.inference.iterations = 20;
  warplda::serve::InferenceServer server(store, options);
  std::vector<std::future<warplda::serve::InferenceResult>> futures;
  futures.reserve(load.size());
  warplda::Stopwatch watch;
  for (size_t i = 0; i < load.size(); ++i) {
    futures.push_back(server.Submit(load[i], /*seed=*/i));
  }
  for (auto& future : futures) future.get();
  const double seconds = watch.Seconds();
  const auto stats = server.Stats();
  return RunResult{load.size() / seconds, stats.p50_micros, stats.p99_micros};
}

// Dense vs tiered-sparse snapshot footprint and full vs delta publish
// latency at serving-realistic K. Also spot-checks the bit-identity
// contract end to end on a few documents.
void RunSnapshotSection(const warplda::Corpus& corpus, uint32_t footprint_k,
                        warplda::bench::BenchJson& json) {
  using warplda::serve::ModelSnapshot;
  using warplda::serve::ModelStore;
  using warplda::serve::ModelStoreOptions;
  using warplda::serve::SharedInferenceEngine;
  using warplda::serve::SnapshotLayout;

  std::printf("\nsnapshot footprint & publish latency (K=%u)\n", footprint_k);
  warplda::LdaConfig config = warplda::LdaConfig::PaperDefaults(footprint_k);
  warplda::WarpLdaSampler sampler;
  warplda::TrainOptions train_options;
  train_options.iterations = 20;
  train_options.eval_every = 0;
  Train(sampler, corpus, config, train_options);

  auto model = sampler.ExportSharedModel();
  size_t total_nnz = 0;
  for (warplda::WordId w = 0; w < model->num_words(); ++w) {
    total_nnz += model->word_topics(w).size();
  }
  std::printf("model: V=%u K=%u nnz=%zu (%.1f topics/word)\n",
              model->num_words(), footprint_k, total_nnz,
              static_cast<double>(total_nnz) / model->num_words());

  ModelStoreOptions dense_opts;
  dense_opts.layout = SnapshotLayout::kDense;
  ModelStore dense_store(dense_opts);
  warplda::Stopwatch dense_watch;
  auto dense_snapshot = dense_store.Publish(model);
  const double dense_ms = dense_watch.Millis();

  ModelStore sparse_store;  // tiered sparse is the default layout
  warplda::Stopwatch full_watch;
  auto sparse_snapshot = sparse_store.Publish(model);
  const double full_ms = full_watch.Millis();

  // Steady-state republish: the same model with ~1% of the vocabulary
  // listed as changed. Publish latency depends only on how many rows are
  // rebuilt (plus the O(K) tier and the pointer-table copy), so this times
  // the delta path realistically without needing genuinely moved counts.
  std::vector<warplda::WordId> small_delta;
  for (warplda::WordId w = 0; w < model->num_words(); w += 100) {
    small_delta.push_back(w);
  }
  warplda::Stopwatch delta_watch;
  auto delta_snapshot = sparse_store.PublishDelta(model, small_delta);
  const double delta_ms = delta_watch.Millis();

  const size_t dense_bytes = dense_snapshot->ApproxBytes();
  const size_t sparse_bytes = sparse_snapshot->ApproxBytes();
  std::printf("%-28s %12s %12s\n", "", "bytes", "publish(ms)");
  std::printf("%-28s %12zu %12.1f\n", "dense VxK snapshot", dense_bytes,
              dense_ms);
  std::printf("%-28s %12zu %12.1f\n", "sparse tiered snapshot", sparse_bytes,
              full_ms);
  std::printf("%-28s %12zu %12.2f\n", "delta publish (1% words)",
              delta_snapshot->ApproxBytes(), delta_ms);
  std::printf("footprint reduction: %.1fx   delta publish speedup: %.1fx\n",
              static_cast<double>(dense_bytes) / sparse_bytes,
              full_ms / delta_ms);

  // Bit-identity spot check across the three snapshots.
  SharedInferenceEngine dense_engine(dense_snapshot);
  SharedInferenceEngine sparse_engine(sparse_snapshot);
  SharedInferenceEngine delta_engine(delta_snapshot);
  bool identical = true;
  for (warplda::DocId d = 0; d < std::min<warplda::DocId>(corpus.num_docs(), 8);
       ++d) {
    auto tokens = corpus.doc_tokens(d);
    std::vector<warplda::WordId> doc(tokens.begin(), tokens.end());
    const auto a = dense_engine.InferTheta(doc, d);
    const auto b = sparse_engine.InferTheta(doc, d);
    const auto c = delta_engine.InferTheta(doc, d);
    for (size_t i = 0; i < a.size(); ++i) {
      identical = identical && a[i] == b[i] && a[i] == c[i];
    }
  }
  std::printf("dense/sparse/delta inference bit-identical: %s\n",
              identical ? "yes" : "NO — regression!");
  std::printf("peak RSS: %.1f MB (VmHWM)\n",
              warplda::bench::PeakRssBytes() / (1024.0 * 1024.0));

  json.AddRow()
      .Str("sweep", "snapshot")
      .Str("layout", "dense")
      .Int("k", footprint_k)
      .Bytes("snapshot_bytes", dense_bytes)
      .Num("publish_ms", dense_ms);
  json.AddRow()
      .Str("sweep", "snapshot")
      .Str("layout", "sparse_full")
      .Int("k", footprint_k)
      .Bytes("snapshot_bytes", sparse_bytes)
      .Num("publish_ms", full_ms)
      .Num("footprint_reduction", static_cast<double>(dense_bytes) /
                                      sparse_bytes);
  json.AddRow()
      .Str("sweep", "snapshot")
      .Str("layout", "sparse_delta")
      .Int("k", footprint_k)
      .Int("changed_words", static_cast<int64_t>(small_delta.size()))
      .Bytes("snapshot_bytes", delta_snapshot->ApproxBytes())
      .Num("publish_ms", delta_ms)
      .Num("delta_speedup", full_ms / delta_ms)
      .Str("bit_identical", identical ? "yes" : "no");
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.02;
  int64_t k = 50;
  int64_t requests = 4000;
  int64_t footprint_k = 400;
  warplda::FlagSet flags;
  flags.Double("scale", &scale, "corpus scale relative to NYTimes")
      .Int("k", &k, "number of topics")
      .Int("requests", &requests, "requests per configuration")
      .Int("footprint-k", &footprint_k,
           "topics for the snapshot footprint/publish-latency section");
  if (!flags.Parse(argc, argv)) return 1;

  warplda::bench::PrintHeader(
      "serve_throughput: inference QPS vs workers and micro-batch",
      "conclusion (serving-time sampling) + §5.3 threading");

  warplda::Corpus corpus = warplda::bench::MakeShapedCorpus("nytimes", scale);
  std::printf("%s\n", warplda::DescribeCorpus(corpus).c_str());
  std::printf("hardware threads: %u (worker scaling flattens beyond this)\n",
              std::thread::hardware_concurrency());

  warplda::LdaConfig config =
      warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
  warplda::WarpLdaSampler sampler;
  warplda::TrainOptions train_options;
  train_options.iterations = 30;
  train_options.eval_every = 0;
  Train(sampler, corpus, config, train_options);

  warplda::serve::ModelStore store;  // tiered sparse snapshots (default)
  warplda::Stopwatch publish_watch;
  store.Publish(sampler.ExportSharedModel());
  std::printf("snapshot publish (eager sparse prebuild): %.1fms\n",
              publish_watch.Millis());

  std::vector<std::vector<warplda::WordId>> load;
  load.reserve(static_cast<size_t>(requests));
  for (int64_t i = 0; i < requests; ++i) {
    auto doc = corpus.doc_tokens(static_cast<warplda::DocId>(
        i % corpus.num_docs()));
    load.emplace_back(doc.begin(), doc.end());
  }

  char dataset[64];
  std::snprintf(dataset, sizeof(dataset), "synthetic-nytimes scale=%g", scale);
  warplda::bench::BenchJson json("serve_throughput", dataset);

  std::printf("\nQPS vs workers (micro-batch 8)\n");
  std::printf("%8s %10s %12s %12s %10s\n", "workers", "qps", "p50(us)",
              "p99(us)", "speedup");
  double base_qps = 0.0;
  for (uint32_t workers : {1u, 2u, 4u, 8u}) {
    const RunResult r = RunLoad(store, load, workers, 8);
    if (workers == 1) base_qps = r.qps;
    std::printf("%8u %10.0f %12.0f %12.0f %9.2fx\n", workers, r.qps, r.p50,
                r.p99, r.qps / base_qps);
    json.AddRow()
        .Str("sweep", "workers")
        .Int("threads", workers)
        .Num("qps", r.qps)
        .Num("p50_us", r.p50)
        .Num("p99_us", r.p99)
        .Num("speedup", r.qps / base_qps);
  }

  std::printf("\nQPS vs micro-batch (4 workers)\n");
  std::printf("%8s %10s %12s %12s\n", "batch", "qps", "p50(us)", "p99(us)");
  for (uint32_t batch : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const RunResult r = RunLoad(store, load, 4, batch);
    std::printf("%8u %10.0f %12.0f %12.0f\n", batch, r.qps, r.p50, r.p99);
    json.AddRow()
        .Str("sweep", "batch")
        .Int("threads", 4)
        .Int("batch", batch)
        .Num("qps", r.qps)
        .Num("p50_us", r.p50)
        .Num("p99_us", r.p99);
  }

  RunSnapshotSection(corpus, static_cast<uint32_t>(footprint_k), json);

  json.header().Bytes("peak_rss_bytes", warplda::bench::PeakRssBytes());
  json.Write("BENCH_serve_throughput.json");
  return 0;
}

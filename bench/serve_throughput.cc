// Serving throughput of the concurrent inference subsystem: QPS as a
// function of worker-thread count and of micro-batch size, on a synthetic
// NYTimes-shaped corpus. The worker sweep is the serving analogue of the
// paper's Fig 9 scalability study; the batch sweep shows the cache-warmth
// payoff of grouping requests against one snapshot.
//
//   ./serve_throughput [--scale 0.02] [--k 50] [--requests 4000]
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "serve/model_store.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace {

struct RunResult {
  double qps = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

RunResult RunLoad(const warplda::serve::ModelStore& store,
                  const std::vector<std::vector<warplda::WordId>>& load,
                  uint32_t workers, uint32_t batch) {
  warplda::serve::ServerOptions options;
  options.num_workers = workers;
  options.max_batch = batch;
  options.queue_capacity = 4096;
  options.inference.iterations = 20;
  warplda::serve::InferenceServer server(store, options);
  std::vector<std::future<warplda::serve::InferenceResult>> futures;
  futures.reserve(load.size());
  warplda::Stopwatch watch;
  for (size_t i = 0; i < load.size(); ++i) {
    futures.push_back(server.Submit(load[i], /*seed=*/i));
  }
  for (auto& future : futures) future.get();
  const double seconds = watch.Seconds();
  const auto stats = server.Stats();
  return RunResult{load.size() / seconds, stats.p50_micros, stats.p99_micros};
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.02;
  int64_t k = 50;
  int64_t requests = 4000;
  warplda::FlagSet flags;
  flags.Double("scale", &scale, "corpus scale relative to NYTimes")
      .Int("k", &k, "number of topics")
      .Int("requests", &requests, "requests per configuration");
  if (!flags.Parse(argc, argv)) return 1;

  warplda::bench::PrintHeader(
      "serve_throughput: inference QPS vs workers and micro-batch",
      "conclusion (serving-time sampling) + §5.3 threading");

  warplda::Corpus corpus = warplda::bench::MakeShapedCorpus("nytimes", scale);
  std::printf("%s\n", warplda::DescribeCorpus(corpus).c_str());
  std::printf("hardware threads: %u (worker scaling flattens beyond this)\n",
              std::thread::hardware_concurrency());

  warplda::LdaConfig config =
      warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
  warplda::WarpLdaSampler sampler;
  warplda::TrainOptions train_options;
  train_options.iterations = 30;
  train_options.eval_every = 0;
  Train(sampler, corpus, config, train_options);

  warplda::serve::ModelStore store;
  warplda::Stopwatch publish_watch;
  store.Publish(sampler.ExportSharedModel());
  std::printf("snapshot publish (eager prebuild): %.1fms\n",
              publish_watch.Millis());

  std::vector<std::vector<warplda::WordId>> load;
  load.reserve(static_cast<size_t>(requests));
  for (int64_t i = 0; i < requests; ++i) {
    auto doc = corpus.doc_tokens(static_cast<warplda::DocId>(
        i % corpus.num_docs()));
    load.emplace_back(doc.begin(), doc.end());
  }

  char dataset[64];
  std::snprintf(dataset, sizeof(dataset), "synthetic-nytimes scale=%g", scale);
  warplda::bench::BenchJson json("serve_throughput", dataset);
  json.header().Int("hardware_threads",
                    std::thread::hardware_concurrency());

  std::printf("\nQPS vs workers (micro-batch 8)\n");
  std::printf("%8s %10s %12s %12s %10s\n", "workers", "qps", "p50(us)",
              "p99(us)", "speedup");
  double base_qps = 0.0;
  for (uint32_t workers : {1u, 2u, 4u, 8u}) {
    const RunResult r = RunLoad(store, load, workers, 8);
    if (workers == 1) base_qps = r.qps;
    std::printf("%8u %10.0f %12.0f %12.0f %9.2fx\n", workers, r.qps, r.p50,
                r.p99, r.qps / base_qps);
    json.AddRow()
        .Str("sweep", "workers")
        .Int("threads", workers)
        .Num("qps", r.qps)
        .Num("p50_us", r.p50)
        .Num("p99_us", r.p99)
        .Num("speedup", r.qps / base_qps);
  }

  std::printf("\nQPS vs micro-batch (4 workers)\n");
  std::printf("%8s %10s %12s %12s\n", "batch", "qps", "p50(us)", "p99(us)");
  for (uint32_t batch : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const RunResult r = RunLoad(store, load, 4, batch);
    std::printf("%8u %10.0f %12.0f %12.0f\n", batch, r.qps, r.p50, r.p99);
    json.AddRow()
        .Str("sweep", "batch")
        .Int("threads", 4)
        .Int("batch", batch)
        .Num("qps", r.qps)
        .Num("p50_us", r.p50)
        .Num("p99_us", r.p99);
  }
  json.Write("BENCH_serve_throughput.json");
  return 0;
}

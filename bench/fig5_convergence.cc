// Fig 5: single-machine convergence of WarpLDA (M=2) vs LightLDA (best M) vs
// F+LDA. Emits all five panels' data per setting: log likelihood by
// iteration, by time, iteration/time speedup ratios at target likelihoods,
// and throughput. Paper settings: NYTimes K=1e3/1e4, PubMed K=1e4/1e5 — here
// scaled by --scale / --k-scale with identical structure.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/light_lda.h"
#include "baselines/sampler.h"
#include "bench/bench_common.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "util/flags.h"

namespace {

using warplda::IterationStat;

// Linear interpolation of (iteration, time) where the trace first crosses a
// likelihood level. Returns false if it never does.
bool CrossingPoint(const std::vector<IterationStat>& history, double level,
                   double* iteration, double* seconds) {
  for (size_t i = 0; i < history.size(); ++i) {
    if (history[i].log_likelihood >= level) {
      if (i == 0) {
        *iteration = history[0].iteration;
        *seconds = history[0].seconds;
      } else {
        const auto& a = history[i - 1];
        const auto& b = history[i];
        double t = (level - a.log_likelihood) /
                   (b.log_likelihood - a.log_likelihood);
        *iteration = a.iteration + t * (b.iteration - a.iteration);
        *seconds = a.seconds + t * (b.seconds - a.seconds);
      }
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.002;
  int64_t iterations = 60;
  int64_t eval_every = 5;
  int64_t k1 = 100;
  int64_t k2 = 400;
  bool run_pubmed = true;
  warplda::FlagSet flags;
  flags.Double("scale", &scale, "corpus scale vs the paper's datasets")
      .Int("iters", &iterations, "training iterations per run")
      .Int("eval-every", &eval_every, "likelihood evaluation stride")
      .Int("k1", &k1, "small topic count (paper: 1e3 / 1e4)")
      .Int("k2", &k2, "large topic count (paper: 1e4 / 1e5)")
      .Bool("pubmed", &run_pubmed, "also run the PubMed-shaped corpus");
  if (!flags.Parse(argc, argv)) return 1;

  warplda::bench::PrintHeader(
      "Fig 5: convergence — WarpLDA vs LightLDA vs F+LDA",
      "Fig 5 — LL by iteration, LL by time, speedup ratios, throughput");

  struct Setting {
    std::string shape;
    uint32_t k;
  };
  std::vector<Setting> settings = {
      {"nytimes", static_cast<uint32_t>(k1)},
      {"nytimes", static_cast<uint32_t>(k2)}};
  if (run_pubmed) {
    settings.push_back({"pubmed", static_cast<uint32_t>(k1)});
    settings.push_back({"pubmed", static_cast<uint32_t>(k2)});
  }

  for (const auto& setting : settings) {
    // PubMed is 27x NYTimes in documents; keep token counts comparable.
    double corpus_scale = setting.shape == "pubmed" ? scale / 27 : scale;
    warplda::Corpus corpus =
        warplda::bench::MakeShapedCorpus(setting.shape, corpus_scale);
    std::printf("\n--- %s (%s), K=%u ---\n", setting.shape.c_str(),
                warplda::DescribeCorpus(corpus).c_str(), setting.k);

    warplda::TrainOptions options;
    options.iterations = static_cast<uint32_t>(iterations);
    options.eval_every = static_cast<uint32_t>(eval_every);

    struct Run {
      std::string name;
      warplda::TrainResult result;
    };
    std::vector<Run> runs;

    auto run_one = [&](warplda::Sampler& sampler, uint32_t mh_steps) {
      warplda::LdaConfig config =
          warplda::LdaConfig::PaperDefaults(setting.k);
      config.mh_steps = mh_steps;
      warplda::TrainResult result = Train(sampler, corpus, config, options);
      char label[64];
      std::snprintf(label, sizeof(label), "%s(M=%u)", sampler.name().c_str(),
                    mh_steps);
      std::printf("%-16s", label);
      for (const auto& stat : result.history) {
        if (stat.iteration % (4 * options.eval_every) == 0 ||
            stat.iteration == options.iterations) {
          std::printf(" [i%u t%.1fs ll%.4g]", stat.iteration, stat.seconds,
                      stat.log_likelihood);
        }
      }
      std::printf("  (%.2fM tok/s)\n",
                  corpus.num_tokens() * options.iterations /
                      result.total_seconds / 1e6);
      std::fflush(stdout);
      runs.push_back({label, std::move(result)});
    };

    {
      warplda::WarpLdaSampler warp;
      run_one(warp, 2);
    }
    {
      warplda::LightLdaSampler light;
      run_one(light, 4);  // paper picks LightLDA's best M per setting
    }
    {
      auto flda = warplda::CreateSampler("f+lda");
      run_one(*flda, 1);
    }

    // Speedup panels: ratio of iterations/time for LightLDA and F+LDA to
    // reach the likelihood levels WarpLDA attains.
    const auto& warp_history = runs[0].result.history;
    double start_ll = warp_history.front().log_likelihood;
    double end_ll = runs[0].result.final_log_likelihood;
    std::printf("%-12s %14s %12s %12s\n", "target-ll", "vs", "iter-ratio",
                "time-ratio");
    for (double frac : {0.7, 0.9, 0.99}) {
      double level = start_ll + frac * (end_ll - start_ll);
      double warp_iter, warp_time;
      if (!CrossingPoint(warp_history, level, &warp_iter, &warp_time)) {
        continue;
      }
      for (size_t r = 1; r < runs.size(); ++r) {
        double iter, seconds;
        if (CrossingPoint(runs[r].result.history, level, &iter, &seconds)) {
          std::printf("%-12.4g %14s %12.2f %12.2f\n", level,
                      runs[r].name.c_str(), iter / warp_iter,
                      seconds / warp_time);
        } else {
          std::printf("%-12.4g %14s %12s %12s\n", level, runs[r].name.c_str(),
                      "not-reached", "not-reached");
        }
      }
    }
  }

  std::printf(
      "\nPaper's claim: WarpLDA needs somewhat more iterations than the\n"
      "baselines (iter-ratio < 1) but is 5-15x faster than LightLDA in time\n"
      "and faster than F+LDA for K <= 1e4 (time-ratio > 1).\n");
  return 0;
}

// Table 2: memory-access behaviour of every LDA algorithm. We replay one
// training iteration of each sampler through the AccessStats tracer and
// report measured random/sequential access counts per token and the size of
// the randomly accessed memory per document/word scope — the quantities the
// paper tabulates analytically.
#include <cstdio>
#include <memory>
#include <string>

#include "baselines/sampler.h"
#include "bench/bench_common.h"
#include "cachesim/access_stats.h"
#include "eval/log_likelihood.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  int64_t k = 256;
  int64_t warmup = 3;
  double scale = 0.001;
  std::string shape = "nytimes";
  warplda::FlagSet flags;
  flags.Int("k", &k, "number of topics")
      .Int("warmup", &warmup, "training iterations before tracing")
      .Double("scale", &scale, "corpus scale relative to the paper's dataset")
      .String("shape", &shape, "corpus shape: nytimes|pubmed|clueweb");
  if (!flags.Parse(argc, argv)) return 1;

  warplda::bench::PrintHeader(
      "Table 2: per-token access counts and random-access footprint",
      "Table 2 — amount of sequential/random accesses, size of randomly "
      "accessed memory per document/word");

  warplda::Corpus corpus = warplda::bench::MakeShapedCorpus(shape, scale);
  std::printf("corpus: %s (%s, scale %g), K=%lld, M=1\n\n",
              shape.c_str(), warplda::DescribeCorpus(corpus).c_str(), scale,
              static_cast<long long>(k));

  std::printf("%-11s %8s %9s %9s %14s %14s %7s\n", "algorithm", "order",
              "rand/tok", "seq/tok", "rand-B/scope", "max-B/scope", "K_d/K_w");

  warplda::LdaConfig config =
      warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
  config.mh_steps = 1;

  for (const auto& name : warplda::SamplerNames()) {
    auto sampler = warplda::CreateSampler(name);
    sampler->Init(corpus, config);
    for (int64_t i = 0; i < warmup; ++i) sampler->Iterate();

    warplda::AccessStats stats;
    sampler->set_tracer(&stats);
    sampler->Iterate();
    sampler->set_tracer(nullptr);

    auto sparsity = warplda::ComputeSparsity(corpus, sampler->Assignments());
    double tokens = static_cast<double>(corpus.num_tokens());
    const char* order =
        (name == "f+lda") ? "word"
                          : (name == "warplda" ? "doc&word" : "doc");
    std::printf("%-11s %8s %9.2f %9.2f %14.0f %14llu %3.0f/%-3.0f\n",
                sampler->name().c_str(), order,
                stats.random_accesses() / tokens,
                stats.sequential_accesses() / tokens,
                stats.mean_random_bytes_per_scope(),
                static_cast<unsigned long long>(
                    stats.max_random_bytes_per_scope()),
                sparsity.mean_topics_per_doc, sparsity.mean_topics_per_word);
  }

  std::printf(
      "\nPaper's claim: WarpLDA's randomly accessed bytes per scope are O(K)\n"
      "(fits in L3); the others touch O(KV) or O(DK) structures.\n");
  return 0;
}

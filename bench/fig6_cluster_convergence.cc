// Fig 6: distributed convergence on the ClueWeb12 subset, WarpLDA (M=4) vs
// LightLDA (M=16) on 32 machines. Substitution: the convergence trace comes
// from real single-machine training on a ClueWeb-shaped corpus; per-iteration
// wall time is mapped through the simulated 32-worker cluster (real greedy
// partitioning + the communication cost model), with each algorithm's
// measured per-token cost driving its compute term.
#include <cstdio>
#include <memory>

#include "baselines/light_lda.h"
#include "bench/bench_common.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "dist/cluster_sim.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  double scale = 1e-5;
  int64_t workers = 32;
  int64_t k = 300;
  int64_t iterations = 40;
  warplda::FlagSet flags;
  flags.Double("scale", &scale, "ClueWeb12-subset scale")
      .Int("workers", &workers, "simulated machines")
      .Int("k", &k, "topics (paper: 1e4)")
      .Int("iters", &iterations, "training iterations");
  if (!flags.Parse(argc, argv)) return 1;

  warplda::bench::PrintHeader(
      "Fig 6: distributed convergence, ClueWeb12 subset",
      "Fig 6 — WarpLDA(M=4) vs LightLDA(M=16), 32 machines");

  warplda::Corpus corpus =
      warplda::bench::MakeShapedCorpus("clueweb", scale);
  std::printf("corpus: %s, K=%lld, %lld simulated workers\n\n",
              warplda::DescribeCorpus(corpus).c_str(),
              static_cast<long long>(k), static_cast<long long>(workers));

  warplda::TrainOptions options;
  options.iterations = static_cast<uint32_t>(iterations);
  options.eval_every = 4;

  auto run = [&](warplda::Sampler& sampler, uint32_t mh_steps) {
    warplda::LdaConfig config =
        warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
    config.mh_steps = mh_steps;
    warplda::TrainResult result = Train(sampler, corpus, config, options);

    // Drive the cluster model with this algorithm's measured per-token cost.
    warplda::ClusterConfig cluster;
    cluster.num_workers = static_cast<uint32_t>(workers);
    cluster.per_token_ns = result.total_seconds /
                           (static_cast<double>(corpus.num_tokens()) *
                            options.iterations) *
                           1e9 / 2.0;  // per phase
    cluster.bytes_per_token = 4 * (1 + mh_steps);
    warplda::ClusterSim sim(corpus, cluster);
    double per_iter = sim.SimulateIteration().wall_seconds;

    std::printf("%s(M=%u): measured %.0f ns/token, simulated %.4fs/iter "
                "(speedup %.1fx)\n",
                sampler.name().c_str(), mh_steps, 2 * cluster.per_token_ns,
                per_iter, sim.SimulatedSpeedup());
    for (const auto& stat : result.history) {
      std::printf("  iter %3u  sim-time %8.3fs  ll %.6g\n", stat.iteration,
                  per_iter * stat.iteration, stat.log_likelihood);
    }
    std::fflush(stdout);
  };

  {
    warplda::WarpLdaSampler warp;
    run(warp, 4);
  }
  {
    warplda::LightLdaSampler light;
    run(light, 16);
  }

  std::printf(
      "\nPaper's claim: WarpLDA reaches any given likelihood ~10x sooner in\n"
      "wall time than LightLDA in the 32-machine setting.\n");
  return 0;
}

// Fig 6: distributed convergence on the ClueWeb12 subset, WarpLDA (M=4) vs
// LightLDA (M=16) on 32 machines. Substitution: the corpus is ClueWeb-shaped
// and the cluster is simulated, but the samples are real. WarpLDA executes
// every sweep block-by-block over the simulated cluster's (doc × word) grid
// through the GridSampler interface (rotation schedule), so the convergence
// trace is measured on the assignments a distributed run would produce;
// per-iteration wall time maps each algorithm's measured per-token cost
// through the cluster's communication model. LightLDA has no grid execution
// path and keeps the serial-trace + timing-model substitution.
#include <cstdio>
#include <memory>

#include "baselines/light_lda.h"
#include "bench/bench_common.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "dist/cluster_sim.h"
#include "eval/log_likelihood.h"
#include "util/flags.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  double scale = 1e-5;
  int64_t workers = 32;
  int64_t k = 300;
  int64_t iterations = 40;
  warplda::FlagSet flags;
  flags.Double("scale", &scale, "ClueWeb12-subset scale")
      .Int("workers", &workers, "simulated machines")
      .Int("k", &k, "topics (paper: 1e4)")
      .Int("iters", &iterations, "training iterations");
  if (!flags.Parse(argc, argv)) return 1;

  warplda::bench::PrintHeader(
      "Fig 6: distributed convergence, ClueWeb12 subset",
      "Fig 6 — WarpLDA(M=4) vs LightLDA(M=16), 32 machines");

  warplda::Corpus corpus =
      warplda::bench::MakeShapedCorpus("clueweb", scale);
  std::printf("corpus: %s, K=%lld, %lld simulated workers\n\n",
              warplda::DescribeCorpus(corpus).c_str(),
              static_cast<long long>(k), static_cast<long long>(workers));

  const uint32_t eval_every = 4;

  auto make_cluster = [&](uint32_t mh_steps) {
    warplda::ClusterConfig cluster;
    cluster.num_workers = static_cast<uint32_t>(workers);
    cluster.bytes_per_token = 4 * (1 + mh_steps);
    return cluster;
  };

  // WarpLDA: real sweeps, executed block-by-block over the cluster grid.
  // The compute cost is measured from the fused Iterate() path (same
  // methodology as LightLDA below) — block-wise execution on one machine
  // pays simulation-only overhead a real worker would not.
  {
    const uint32_t mh_steps = 4;
    warplda::LdaConfig config =
        warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
    config.mh_steps = mh_steps;

    warplda::ClusterConfig cluster = make_cluster(mh_steps);
    {
      warplda::WarpLdaSampler probe;
      probe.Init(corpus, config);
      probe.Iterate();  // warm-up
      const int64_t probe_iters = 3;
      warplda::Stopwatch watch;
      for (int64_t i = 0; i < probe_iters; ++i) probe.Iterate();
      cluster.per_token_ns =
          watch.Seconds() /
          (static_cast<double>(corpus.num_tokens()) * probe_iters) * 1e9 /
          2.0;  // per phase
    }

    warplda::WarpLdaSampler warp;
    warp.Init(corpus, config);
    warplda::ClusterSim sim(corpus, cluster);

    double sim_seconds = 0.0;
    std::printf("WarpLDA(M=%u): measured %.0f ns/token, grid-executed sweeps "
                "over the %lldx%lld token grid (speedup %.1fx, doc imbalance "
                "%.4f, word imbalance %.4f)\n",
                mh_steps, 2 * cluster.per_token_ns,
                static_cast<long long>(workers),
                static_cast<long long>(workers), sim.SimulatedSpeedup(),
                sim.DocImbalance(), sim.WordImbalance());
    for (int64_t iter = 1; iter <= iterations; ++iter) {
      warplda::IterationTiming timing = sim.RunSweep(warp);
      sim_seconds += timing.wall_seconds;
      if (iter % eval_every == 0 || iter == iterations) {
        double ll = warplda::JointLogLikelihood(
            corpus, warp.Assignments(), config.num_topics, config.alpha,
            config.beta);
        std::printf("  iter %3lld  sim-time %8.3fs  ll %.6g\n",
                    static_cast<long long>(iter), sim_seconds, ll);
        std::fflush(stdout);
      }
    }
  }

  // LightLDA: serial convergence trace, mapped through the timing model.
  {
    const uint32_t mh_steps = 16;
    warplda::LdaConfig config =
        warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
    config.mh_steps = mh_steps;
    warplda::TrainOptions options;
    options.iterations = static_cast<uint32_t>(iterations);
    options.eval_every = eval_every;
    warplda::LightLdaSampler light;
    warplda::TrainResult result = Train(light, corpus, config, options);

    warplda::ClusterConfig cluster = make_cluster(mh_steps);
    cluster.per_token_ns = result.total_seconds /
                           (static_cast<double>(corpus.num_tokens()) *
                            options.iterations) *
                           1e9 / 2.0;  // per phase
    warplda::ClusterSim sim(corpus, cluster);
    double per_iter = sim.SimulateIteration().wall_seconds;
    std::printf("\n%s(M=%u): measured %.0f ns/token, simulated %.4fs/iter "
                "(speedup %.1fx)\n",
                light.name().c_str(), mh_steps, 2 * cluster.per_token_ns,
                per_iter, sim.SimulatedSpeedup());
    for (const auto& stat : result.history) {
      std::printf("  iter %3u  sim-time %8.3fs  ll %.6g\n", stat.iteration,
                  per_iter * stat.iteration, stat.log_likelihood);
    }
    std::fflush(stdout);
  }

  std::printf(
      "\nPaper's claim: WarpLDA reaches any given likelihood ~10x sooner in\n"
      "wall time than LightLDA in the 32-machine setting.\n");
  return 0;
}

// Extension bench (paper §7 "stochastic learning"): streaming mini-batch
// WarpLDA vs the batch trainer. Measures held-out perplexity as a function
// of documents seen — the stream should approach batch quality within one
// pass while touching each document once.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/streaming.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "corpus/split.h"
#include "corpus/synthetic.h"
#include "eval/perplexity.h"
#include "util/flags.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  int64_t docs = 4000;
  int64_t k = 32;
  int64_t batch_size = 200;
  warplda::FlagSet flags;
  flags.Int("docs", &docs, "corpus size in documents")
      .Int("k", &k, "number of topics")
      .Int("batch", &batch_size, "mini-batch size");
  if (!flags.Parse(argc, argv)) return 1;

  warplda::bench::PrintHeader(
      "Extension: streaming (mini-batch) WarpLDA vs batch training",
      "§7 future work — stochastic learning combined with the O(1) sampler");

  warplda::SyntheticConfig config;
  config.num_docs = static_cast<uint32_t>(docs);
  config.vocab_size = 2000;
  config.num_topics = static_cast<uint32_t>(k);
  config.mean_doc_length = 60;
  config.alpha = 0.05;
  config.word_zipf_skew = 1.2;
  config.seed = 91;
  warplda::Corpus full = warplda::GenerateLdaCorpus(config).corpus;
  warplda::CorpusSplit split = warplda::SplitByDocument(full, 0.1, 5);
  std::printf("train: %s | heldout: %u docs\n\n",
              warplda::DescribeCorpus(split.train).c_str(),
              split.heldout.num_docs());

  // Batch reference: full WarpLDA training.
  {
    warplda::LdaConfig lda =
        warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
    lda.alpha = 0.1;
    warplda::WarpLdaSampler sampler;
    warplda::TrainOptions options;
    options.iterations = 50;
    options.eval_every = 0;
    warplda::Stopwatch watch;
    warplda::TrainResult result = Train(sampler, split.train, lda, options);
    warplda::TopicModel model = result.ToModel(split.train, lda);
    std::printf("batch WarpLDA (50 sweeps, %.1fs): heldout perplexity %.1f\n",
                watch.Seconds(),
                warplda::HeldOutPerplexity(model, split.heldout));
  }

  // Streaming: one pass, reporting perplexity as the stream progresses.
  {
    warplda::StreamingOptions stream_options;
    stream_options.num_topics = static_cast<uint32_t>(k);
    stream_options.alpha = 0.1;
    stream_options.batch_size = static_cast<uint32_t>(batch_size);
    warplda::StreamingWarpLda trainer(split.train.num_words(),
                                      stream_options);
    warplda::Stopwatch watch;
    std::vector<std::vector<warplda::WordId>> batch;
    uint32_t seen = 0;
    std::printf("\nstreaming WarpLDA (single pass, batch=%lld):\n",
                static_cast<long long>(batch_size));
    for (warplda::DocId d = 0; d < split.train.num_docs(); ++d) {
      auto words = split.train.doc_tokens(d);
      batch.emplace_back(words.begin(), words.end());
      if (batch.size() == stream_options.batch_size ||
          d + 1 == split.train.num_docs()) {
        trainer.ProcessBatch(batch);
        seen += static_cast<uint32_t>(batch.size());
        batch.clear();
        if (trainer.batches_seen() % 4 == 0 ||
            d + 1 == split.train.num_docs()) {
          warplda::TopicModel model = trainer.ExportModel();
          std::printf("  %6u docs seen, %6.1fs: heldout perplexity %.1f\n",
                      seen, watch.Seconds(),
                      warplda::HeldOutPerplexity(model, split.heldout));
          std::fflush(stdout);
        }
      }
    }
  }

  std::printf(
      "\nExpected shape: streaming perplexity falls toward the batch value\n"
      "within one pass over the stream.\n");
  return 0;
}

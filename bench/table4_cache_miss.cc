// Table 4: L3 cache miss rates of LightLDA vs F+LDA vs WarpLDA (M=1).
// Substitution for PAPI hardware counters: each sampler's count-structure
// access stream is replayed through a set-associative LRU cache simulator.
// The cache is scaled down with the corpus so the capacity-vs-footprint
// ratios match the paper's setting (30MB L3 vs multi-GB matrices).
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/sampler.h"
#include "bench/bench_common.h"
#include "cachesim/cache_sim.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  int64_t cache_kb = 512;
  int64_t warmup = 2;
  double scale = 0.001;
  warplda::FlagSet flags;
  flags.Int("cache-kb", &cache_kb, "simulated LLC size in KB")
      .Int("warmup", &warmup, "iterations before measuring")
      .Double("scale", &scale, "corpus scale");
  if (!flags.Parse(argc, argv)) return 1;

  warplda::bench::PrintHeader(
      "Table 4: simulated LLC miss rate, M=1",
      "Table 4 — L3 cache miss rate of LightLDA / F+LDA / WarpLDA");

  struct Setting {
    const char* shape;
    uint32_t k;
  };
  std::vector<Setting> settings = {
      {"nytimes", 256}, {"nytimes", 1024}, {"pubmed", 1024}};

  std::printf("simulated cache: %lld KB, 64B lines, 16-way LRU\n\n",
              static_cast<long long>(cache_kb));
  std::printf("%-22s %10s %10s %10s\n", "setting", "LightLDA", "F+LDA",
              "WarpLDA");

  for (const auto& setting : settings) {
    warplda::Corpus corpus =
        warplda::bench::MakeShapedCorpus(setting.shape, scale);
    warplda::LdaConfig config = warplda::LdaConfig::PaperDefaults(setting.k);
    config.mh_steps = 1;

    std::printf("%-10s K=%-8u ", setting.shape, setting.k);
    for (const char* name : {"lightlda", "f+lda", "warplda"}) {
      auto sampler = warplda::CreateSampler(name);
      sampler->Init(corpus, config);
      for (int64_t i = 0; i < warmup; ++i) sampler->Iterate();
      warplda::CacheConfig cache;
      cache.size_bytes = static_cast<uint64_t>(cache_kb) * 1024;
      warplda::CacheSim sim(cache);
      sampler->set_tracer(&sim);
      sampler->Iterate();
      std::printf("%9.1f%% ", 100.0 * sim.miss_rate());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper (30MB L3, full-size corpora): LightLDA 33-38%%, F+LDA 17-77%%,\n"
      "WarpLDA 5-17%% — WarpLDA lowest in every setting; the same ordering\n"
      "should hold above.\n");
  return 0;
}

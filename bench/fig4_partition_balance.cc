// Fig 4: imbalance index of static / dynamic / greedy word partitioning as
// the number of partitions grows, on a Zipfian (ClueWeb-like) vocabulary.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "dist/partitioner.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  int64_t vocab = 200000;
  int64_t max_partitions = 512;
  double skew = 1.05;
  warplda::FlagSet flags;
  flags.Int("vocab", &vocab, "number of words")
      .Int("max-partitions", &max_partitions, "largest partition count")
      .Double("skew", &skew, "Zipf exponent of word frequencies");
  if (!flags.Parse(argc, argv)) return 1;

  warplda::bench::PrintHeader(
      "Fig 4: partition imbalance (static vs dynamic vs greedy)",
      "Fig 4 — imbalance index vs number of partitions on ClueWeb12");

  // Zipfian token counts, ClueWeb-like: frequency of rank r ∝ 1/(r+1)^skew,
  // with the head capped at 0.257% of all tokens — the paper reports that as
  // the most frequent word's share after stop-word removal (§5.3.2).
  std::vector<uint64_t> weights(vocab);
  double h = 0.0;
  for (int64_t r = 0; r < vocab; ++r) h += std::pow(r + 1.0, -skew);
  const double tokens = 1e9;
  const double head_cap = 0.00257 * tokens;
  for (int64_t r = 0; r < vocab; ++r) {
    double raw = tokens * std::pow(r + 1.0, -skew) / h;
    weights[r] = static_cast<uint64_t>(std::min(raw, head_cap)) + 1;
  }

  std::printf("%10s %14s %14s %14s\n", "partitions", "static", "dynamic",
              "greedy");
  for (int64_t p = 1; p <= max_partitions; p *= 2) {
    std::printf("%10lld", static_cast<long long>(p));
    for (auto strategy :
         {warplda::PartitionStrategy::kStatic,
          warplda::PartitionStrategy::kDynamic,
          warplda::PartitionStrategy::kGreedy}) {
      auto assignment = warplda::PartitionByTokens(
          weights, static_cast<uint32_t>(p), strategy);
      std::printf(" %14.6g",
                  warplda::ImbalanceIndex(weights, assignment,
                                          static_cast<uint32_t>(p)));
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper's claim: greedy is orders of magnitude more balanced than the\n"
      "randomized strategies, and its imbalance only blows up when a single\n"
      "word's share exceeds 1/P (a few hundred partitions).\n");
  return 0;
}

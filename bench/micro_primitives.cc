// Microbenchmarks of the sampling primitives behind the O(1) claims, plus
// the ablation comparisons DESIGN.md calls out: hash vs dense counts and
// alias sampling vs random positioning for the doc proposal.
#include <benchmark/benchmark.h>

#include <vector>

#include "util/alias_table.h"
#include "util/ftree.h"
#include "util/hash_count.h"
#include "util/rng.h"

namespace warplda {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Next());
}
BENCHMARK(BM_RngNext);

void BM_RngNextInt(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.NextInt(1000));
}
BENCHMARK(BM_RngNextInt);

void BM_AliasBuild(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(2);
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.NextDouble() + 0.01;
  AliasTable table;
  for (auto _ : state) {
    table.Build(weights);
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AliasBuild)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AliasSample(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(3);
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.NextDouble() + 0.01;
  AliasTable table;
  table.Build(weights);
  for (auto _ : state) benchmark::DoNotOptimize(table.Sample(rng));
}
BENCHMARK(BM_AliasSample)->Arg(64)->Arg(16384)->Arg(1 << 20);

void BM_FTreeUpdate(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  FTree tree(n);
  Rng rng(4);
  uint32_t i = 0;
  for (auto _ : state) {
    tree.Update(i, rng.NextDouble());
    i = (i + 7919) % n;
  }
}
BENCHMARK(BM_FTreeUpdate)->Arg(1024)->Arg(1 << 17);

void BM_FTreeSample(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(5);
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.NextDouble() + 0.01;
  FTree tree;
  tree.Build(weights);
  for (auto _ : state) benchmark::DoNotOptimize(tree.Sample(rng));
}
BENCHMARK(BM_FTreeSample)->Arg(1024)->Arg(1 << 17);

// Ablation: per-document counting with a hash table (capacity 2L) vs a
// dense K vector that must be cleared per document.
void BM_CountsHash(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const uint32_t doc_len = 256;
  Rng rng(6);
  std::vector<uint32_t> topics(doc_len);
  for (auto& t : topics) t = rng.NextInt(k);
  HashCount counts;
  for (auto _ : state) {
    counts.Init(std::min(k, 2 * doc_len));
    for (uint32_t t : topics) counts.Inc(t);
    benchmark::DoNotOptimize(counts.Get(topics[0]));
  }
  state.SetItemsProcessed(state.iterations() * doc_len);
}
BENCHMARK(BM_CountsHash)->Arg(1024)->Arg(1 << 17);

void BM_CountsDense(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const uint32_t doc_len = 256;
  Rng rng(6);
  std::vector<uint32_t> topics(doc_len);
  for (auto& t : topics) t = rng.NextInt(k);
  std::vector<uint32_t> counts(k);
  for (auto _ : state) {
    std::fill(counts.begin(), counts.end(), 0);
    for (uint32_t t : topics) ++counts[t];
    benchmark::DoNotOptimize(counts[topics[0]]);
  }
  state.SetItemsProcessed(state.iterations() * doc_len);
}
BENCHMARK(BM_CountsDense)->Arg(1024)->Arg(1 << 17);

// Ablation: the two O(1) ways to draw from q_doc ∝ C_dk (paper §4.3):
// alias table over c_d vs random positioning into z_d.
void BM_DocProposalAlias(benchmark::State& state) {
  const uint32_t doc_len = 256;
  const uint32_t k = 1024;
  Rng rng(7);
  std::vector<uint32_t> z(doc_len);
  for (auto& t : z) t = rng.NextInt(k);
  HashCount counts(2 * doc_len);
  for (uint32_t t : z) counts.Inc(t);
  std::vector<std::pair<uint32_t, double>> entries;
  counts.ForEachNonZero([&](uint32_t topic, int32_t c) {
    entries.emplace_back(topic, static_cast<double>(c));
  });
  AliasTable table;
  table.BuildSparse(entries);
  for (auto _ : state) benchmark::DoNotOptimize(table.Sample(rng));
}
BENCHMARK(BM_DocProposalAlias);

void BM_DocProposalPositioning(benchmark::State& state) {
  const uint32_t doc_len = 256;
  const uint32_t k = 1024;
  Rng rng(8);
  std::vector<uint32_t> z(doc_len);
  for (auto& t : z) t = rng.NextInt(k);
  for (auto _ : state) benchmark::DoNotOptimize(z[rng.NextInt(doc_len)]);
}
BENCHMARK(BM_DocProposalPositioning);

}  // namespace
}  // namespace warplda

BENCHMARK_MAIN();

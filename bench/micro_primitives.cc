// Microbenchmarks of the sampling primitives behind the O(1) claims, plus
// the ablation comparisons DESIGN.md calls out: hash vs dense counts and
// alias sampling vs random positioning for the doc proposal, and the grid
// hot-path primitives behind the stage-fusion work: per-token vs batched
// RNG stream derivation, scalar vs SIMD MH accept ratios, and per-block
// snapshot rebuilds vs the reusable count-arena setup. Results are also
// written to BENCH_micro_primitives.json in the repo's bench JSON format.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_common.h"
#include "core/count_arena.h"
#include "core/simd_kernels.h"
#include "util/alias_table.h"
#include "util/ftree.h"
#include "util/hash_count.h"
#include "util/rng.h"

namespace warplda {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Next());
}
BENCHMARK(BM_RngNext);

void BM_RngNextInt(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.NextInt(1000));
}
BENCHMARK(BM_RngNextInt);

void BM_AliasBuild(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(2);
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.NextDouble() + 0.01;
  AliasTable table;
  for (auto _ : state) {
    table.Build(weights);
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AliasBuild)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AliasSample(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(3);
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.NextDouble() + 0.01;
  AliasTable table;
  table.Build(weights);
  for (auto _ : state) benchmark::DoNotOptimize(table.Sample(rng));
}
BENCHMARK(BM_AliasSample)->Arg(64)->Arg(16384)->Arg(1 << 20);

void BM_FTreeUpdate(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  FTree tree(n);
  Rng rng(4);
  uint32_t i = 0;
  for (auto _ : state) {
    tree.Update(i, rng.NextDouble());
    i = (i + 7919) % n;
  }
}
BENCHMARK(BM_FTreeUpdate)->Arg(1024)->Arg(1 << 17);

void BM_FTreeSample(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(5);
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.NextDouble() + 0.01;
  FTree tree;
  tree.Build(weights);
  for (auto _ : state) benchmark::DoNotOptimize(tree.Sample(rng));
}
BENCHMARK(BM_FTreeSample)->Arg(1024)->Arg(1 << 17);

// Ablation: per-document counting with a hash table (capacity 2L) vs a
// dense K vector that must be cleared per document.
void BM_CountsHash(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const uint32_t doc_len = 256;
  Rng rng(6);
  std::vector<uint32_t> topics(doc_len);
  for (auto& t : topics) t = rng.NextInt(k);
  HashCount counts;
  for (auto _ : state) {
    counts.Init(std::min(k, 2 * doc_len));
    for (uint32_t t : topics) counts.Inc(t);
    benchmark::DoNotOptimize(counts.Get(topics[0]));
  }
  state.SetItemsProcessed(state.iterations() * doc_len);
}
BENCHMARK(BM_CountsHash)->Arg(1024)->Arg(1 << 17);

void BM_CountsDense(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const uint32_t doc_len = 256;
  Rng rng(6);
  std::vector<uint32_t> topics(doc_len);
  for (auto& t : topics) t = rng.NextInt(k);
  std::vector<uint32_t> counts(k);
  for (auto _ : state) {
    std::fill(counts.begin(), counts.end(), 0);
    for (uint32_t t : topics) ++counts[t];
    benchmark::DoNotOptimize(counts[topics[0]]);
  }
  state.SetItemsProcessed(state.iterations() * doc_len);
}
BENCHMARK(BM_CountsDense)->Arg(1024)->Arg(1 << 17);

// Ablation: the two O(1) ways to draw from q_doc ∝ C_dk (paper §4.3):
// alias table over c_d vs random positioning into z_d.
void BM_DocProposalAlias(benchmark::State& state) {
  const uint32_t doc_len = 256;
  const uint32_t k = 1024;
  Rng rng(7);
  std::vector<uint32_t> z(doc_len);
  for (auto& t : z) t = rng.NextInt(k);
  HashCount counts(2 * doc_len);
  for (uint32_t t : z) counts.Inc(t);
  std::vector<std::pair<uint32_t, double>> entries;
  counts.ForEachNonZero([&](uint32_t topic, int32_t c) {
    entries.emplace_back(topic, static_cast<double>(c));
  });
  AliasTable table;
  table.BuildSparse(entries);
  for (auto _ : state) benchmark::DoNotOptimize(table.Sample(rng));
}
BENCHMARK(BM_DocProposalAlias);

void BM_DocProposalPositioning(benchmark::State& state) {
  const uint32_t doc_len = 256;
  const uint32_t k = 1024;
  Rng rng(8);
  std::vector<uint32_t> z(doc_len);
  for (auto& t : z) t = rng.NextInt(k);
  for (auto _ : state) benchmark::DoNotOptimize(z[rng.NextInt(doc_len)]);
}
BENCHMARK(BM_DocProposalPositioning);

// --- Grid hot-path primitives (stage fusion / SIMD kernels) -------------

// Ablation: deriving one per-token RNG stream at a time (5 serial SplitMix64
// rounds each) vs the batched kernel that runs the same rounds over a whole
// accept chunk. Both produce bit-identical stream states.
void BM_StreamDerivePerToken(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint64_t base = SplitMix64(0x5eed);
  std::vector<uint64_t> tokens(n);
  for (size_t i = 0; i < n; ++i) tokens[i] = i * 37 + 11;
  for (auto _ : state) {
    for (uint64_t token : tokens) {
      Rng rng(SplitMix64(base ^ (uint64_t{0x51} << 56) ^ token));
      benchmark::DoNotOptimize(rng);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StreamDerivePerToken)->Arg(256);

void BM_StreamDeriveBatched(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool force_scalar = state.range(1) != 0;
  const uint64_t base = SplitMix64(0x5eed);
  std::vector<uint64_t> tokens(n);
  for (size_t i = 0; i < n; ++i) tokens[i] = i * 37 + 11;
  std::vector<simd::RngState> out(n);
  for (auto _ : state) {
    simd::DeriveStreamStates(base, 0x51, tokens.data(), n, out.data(),
                             force_scalar);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StreamDeriveBatched)
    ->ArgNames({"n", "force_scalar"})
    ->Args({256, 1})
    ->Args({256, 0});

// Ablation: the MH accept-ratio kernel (Eq. 7's (a_t*b_cur)/(a_cur*b_t) plus
// the >= 1 accept mask) scalar vs the dispatched SIMD path. Operand arrays
// model one gathered accept chunk.
void BM_AcceptRatios(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool force_scalar = state.range(1) != 0;
  Rng rng(9);
  std::vector<double> a_t(n), b_t(n), a_cur(n), b_cur(n), ratio(n);
  std::vector<uint8_t> ge1(n);
  for (size_t i = 0; i < n; ++i) {
    a_t[i] = rng.NextDouble() * 40 + 0.1;
    b_t[i] = rng.NextDouble() * 900 + 1.0;
    a_cur[i] = rng.NextDouble() * 40 + 0.1;
    b_cur[i] = rng.NextDouble() * 900 + 1.0;
  }
  for (auto _ : state) {
    simd::ComputeAcceptRatios(n, a_t.data(), b_t.data(), a_cur.data(),
                              b_cur.data(), ratio.data(), ge1.data(),
                              force_scalar);
    benchmark::DoNotOptimize(ratio.data());
    benchmark::DoNotOptimize(ge1.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AcceptRatios)
    ->ArgNames({"n", "force_scalar"})
    ->Args({256, 1})
    ->Args({256, 0});

// Ablation: per-(block × item) count snapshot rebuilds (fresh HashCount
// Init + fill, the pre-fusion grid path) vs the count-arena setup that
// allocates geometry once and only clears + refills a flat slab per sweep.
// 64 items of 256 tokens each stands in for one block's columns.
constexpr uint32_t kArenaItems = 64;
constexpr uint32_t kArenaLen = 256;
constexpr uint32_t kArenaK = 1024;

std::vector<std::vector<uint32_t>> ArenaTopics() {
  Rng rng(10);
  std::vector<std::vector<uint32_t>> topics(kArenaItems);
  for (auto& item : topics) {
    item.resize(kArenaLen);
    for (auto& t : item) t = rng.NextInt(kArenaK);
  }
  return topics;
}

void BM_StageSetupSnapshotCopy(benchmark::State& state) {
  const auto topics = ArenaTopics();
  HashCount counts;
  for (auto _ : state) {
    for (const auto& item : topics) {
      counts.Init(std::min(kArenaK, 2 * kArenaLen));
      for (uint32_t t : item) counts.Inc(t);
      benchmark::DoNotOptimize(counts.Get(item[0]));
    }
  }
  state.SetItemsProcessed(state.iterations() * kArenaItems * kArenaLen);
}
BENCHMARK(BM_StageSetupSnapshotCopy);

void BM_StageSetupArena(benchmark::State& state) {
  const auto topics = ArenaTopics();
  CountArena arena;
  std::vector<uint32_t> hints(kArenaItems, std::min(kArenaK, 2 * kArenaLen));
  arena.AllocateFromHints(hints);  // once per corpus, outside the loop
  for (auto _ : state) {
    arena.ClearSlots();
    for (uint32_t i = 0; i < kArenaItems; ++i) {
      FlatCounts counts = arena.view(i);
      for (uint32_t t : topics[i]) counts.Inc(t);
      benchmark::DoNotOptimize(counts.Get(topics[i][0]));
    }
  }
  state.SetItemsProcessed(state.iterations() * kArenaItems * kArenaLen);
}
BENCHMARK(BM_StageSetupArena);

// Console output plus the repo's bench JSON format (same header fields as
// the fig benches: cpu model, SIMD tier, thread count) so the primitive
// numbers are tracked across commits next to BENCH_fig9.json.
class JsonCollectingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCollectingReporter(bench::BenchJson* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      auto& row = json_->AddRow();
      row.Str("name", run.benchmark_name());
      row.Int("iterations", static_cast<int64_t>(run.iterations));
      row.Num("real_time_ns", run.GetAdjustedRealTime());
      auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        row.Num("items_per_second", items->second);
      }
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchJson* json_;
};

}  // namespace
}  // namespace warplda

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  warplda::bench::BenchJson json("micro_primitives", "synthetic primitives");
  warplda::JsonCollectingReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  json.Write("BENCH_micro_primitives.json");
  return 0;
}

// Table 3: dataset statistics. Prints the D/T/V/(T/D) table for the synthetic
// stand-ins of the paper's corpora, and for any UCI docword file supplied via
// --docword so real datasets drop straight in.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "corpus/uci.h"
#include "util/flags.h"

namespace {

void PrintRow(const char* name, const warplda::Corpus& corpus) {
  std::printf("%-22s %10u %14llu %9u %8.0f\n", name, corpus.num_docs(),
              static_cast<unsigned long long>(corpus.num_tokens()),
              corpus.num_words(), corpus.mean_doc_length());
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.002;
  std::string docword;
  warplda::FlagSet flags;
  flags.Double("scale", &scale, "scale of the synthetic stand-ins")
      .String("docword", &docword, "optional UCI docword file to describe");
  if (!flags.Parse(argc, argv)) return 1;

  warplda::bench::PrintHeader("Table 3: dataset statistics",
                              "Table 3 — D, T, V, T/D per dataset");

  std::printf("%-22s %10s %14s %9s %8s\n", "dataset", "D", "T", "V", "T/D");
  PrintRow(("nytimes (x" + std::to_string(scale) + ")").c_str(),
           warplda::bench::MakeShapedCorpus("nytimes", scale));
  PrintRow(("pubmed  (x" + std::to_string(scale) + ")").c_str(),
           warplda::bench::MakeShapedCorpus("pubmed", scale));
  PrintRow(("clueweb (x" + std::to_string(scale / 10) + ")").c_str(),
           warplda::bench::MakeShapedCorpus("clueweb", scale / 10));

  if (!docword.empty()) {
    warplda::Corpus corpus;
    std::string error;
    if (!warplda::uci::ReadDocword(docword, &corpus, &error)) {
      std::fprintf(stderr, "failed to read %s: %s\n", docword.c_str(),
                   error.c_str());
      return 1;
    }
    PrintRow(docword.c_str(), corpus);
  }

  std::printf(
      "\nPaper values: NYTimes D=300K T=100M V=102K T/D=332;\n"
      "PubMed D=8.2M T=738M V=141K T/D=90; ClueWeb12 D=639M T=236B V=1M.\n"
      "The stand-ins preserve T/D and Zipfian word frequencies at the\n"
      "configured scale (V shrinks as sqrt(scale)).\n");
  return 0;
}

// Distributed transport: real multi-process sweeps vs the analytic model.
// Sweeps the worker count over the fork + socket executor (src/dist/
// dist_executor.h) and compares the measured speedup against ClusterSim's
// prediction for the same corpus and worker count. Every run is checked
// bit-identical to single-process Iterate() — a distributed result that is
// fast but different counts for nothing.
//
// Honest-reporting note: on a single-core container every "worker" shares
// one physical CPU, so measured speedup tops out near (or below) 1x while
// the model predicts near-linear scaling — the gap IS the finding, and the
// hardware_threads field in the header is what explains it.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/warp_lda.h"
#include "dist/cluster_sim.h"
#include "dist/dist_executor.h"
#include "dist/partitioner.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  double scale = 0.002;
  int64_t k = 64;
  int64_t iterations = 3;
  int64_t grid = 4;
  int64_t max_workers = 4;
  warplda::FlagSet flags;
  flags.Double("scale", &scale, "corpus scale vs the paper's NYTimes")
      .Int("k", &k, "number of topics")
      .Int("iters", &iterations, "sweeps per worker count")
      .Int("grid", &grid, "doc/word blocks per axis of the sweep plan")
      .Int("workers", &max_workers, "largest worker count (doubling from 1)");
  if (!flags.Parse(argc, argv)) return 1;

  warplda::bench::PrintHeader(
      "Distributed transport: real fork+socket sweeps vs predicted speedup",
      "paper §5.3.2 multi-machine schedule over src/dist/ transport");

  warplda::Corpus corpus = warplda::bench::MakeShapedCorpus("nytimes", scale);
  warplda::LdaConfig config =
      warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
  config.seed = 20160903;
  const warplda::SweepPlan plan =
      warplda::MakeSweepPlan(corpus, static_cast<uint32_t>(grid),
                             static_cast<uint32_t>(grid),
                             warplda::PartitionStrategy::kGreedy);
  std::printf("corpus: %s, K=%lld, %lldx%lld grid, %lld sweeps per point\n",
              warplda::DescribeCorpus(corpus).c_str(),
              static_cast<long long>(k), static_cast<long long>(grid),
              static_cast<long long>(grid),
              static_cast<long long>(iterations));

  // Reference: the uninterrupted single-process run every distributed
  // result must reproduce bit-for-bit.
  warplda::WarpLdaSampler reference;
  reference.Init(corpus, config);
  for (int64_t i = 0; i < iterations; ++i) reference.Iterate();

  warplda::bench::BenchJson json(
      "dist_transport", "synthetic-nytimes scale=" + std::to_string(scale));
  json.header()
      .Int("k", k)
      .Int("iterations", iterations)
      .Int("grid", grid)
      .Str("transport", "AF_UNIX socketpair, frame protocol v2");

  std::printf("\n%8s %12s %12s %12s %10s %8s\n", "workers", "sweep_s",
              "measured_x", "predicted_x", "retrans", "ident");
  double base_seconds = 0.0;
  bool all_identical = true;
  for (int64_t w = 1; w <= max_workers; w *= 2) {
    warplda::WarpLdaSampler sampler;
    sampler.Init(corpus, config);
    warplda::DistConfig dist;
    dist.num_workers = static_cast<uint32_t>(w);
    dist.iterations = static_cast<uint32_t>(iterations);
    const warplda::DistResult result =
        RunDistributedSweeps(sampler, corpus, plan, dist);
    if (!result.ok) {
      std::fprintf(stderr, "dist run failed at %lld workers: %s\n",
                   static_cast<long long>(w), result.error.c_str());
      return 1;
    }
    double total = 0.0;
    for (double s : result.sweep_seconds) total += s;
    const double per_sweep = total / static_cast<double>(iterations);
    if (w == 1) base_seconds = per_sweep;
    const double measured = base_seconds / per_sweep;

    warplda::ClusterConfig sim_config;
    sim_config.num_workers = static_cast<uint32_t>(w);
    sim_config.overlap_blocks = static_cast<uint32_t>(w);
    const double predicted =
        warplda::ClusterSim(corpus, sim_config).SimulatedSpeedup();

    const bool identical =
        sampler.Assignments() == reference.Assignments();
    all_identical = all_identical && identical;
    const uint64_t retransmits = result.coordinator_stats.retransmits +
                                 result.worker_stats.retransmits;
    std::printf("%8lld %12.4f %11.2fx %11.2fx %10llu %8s\n",
                static_cast<long long>(w), per_sweep, measured, predicted,
                static_cast<unsigned long long>(retransmits),
                identical ? "yes" : "NO");
    json.AddRow()
        .Int("workers", w)
        .Num("seconds_per_sweep", per_sweep)
        .Num("measured_speedup", measured)
        .Num("predicted_speedup", predicted)
        .Int("retransmits", static_cast<int64_t>(retransmits))
        .Int("frames_sent",
             static_cast<int64_t>(result.coordinator_stats.frames_sent +
                                  result.worker_stats.frames_sent))
        .Str("bit_identical", identical ? "yes" : "no");
  }
  json.Write("BENCH_dist_transport.json");

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: a distributed run diverged from Iterate()\n");
    return 1;
  }
  std::printf("\nall worker counts bit-identical to Iterate(); "
              "predicted-vs-measured gap reflects the host's core count\n");
  return 0;
}

#ifndef WARPLDA_CORE_MH_SWEEP_H_
#define WARPLDA_CORE_MH_SWEEP_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "corpus/corpus.h"
#include "eval/topic_model.h"
#include "util/alias_table.h"
#include "util/hash_count.h"
#include "util/rng.h"

namespace warplda {

/// Options for unseen-document inference.
struct InferenceOptions {
  uint32_t iterations = 30;  ///< MH sweeps over the document
  uint32_t mh_steps = 2;     ///< proposals per token per sweep
  uint64_t seed = 99;
};

/// Fills `row` (length num_topics) with word w's smoothed topic-word row
/// φ̂_wk = (C_wk + β)/(C_k + β̄). Shared by the lazy Inferencer caches and
/// the eager serve::ModelSnapshot prebuild so the smoothing cannot drift.
inline void FillPhiRow(const TopicModel& model, WordId w, double beta_bar,
                       double* row) {
  const uint32_t k_topics = model.num_topics();
  for (uint32_t k = 0; k < k_topics; ++k) {
    row[k] = model.beta() / (model.topic_counts()[k] + beta_bar);
  }
  for (const auto& [k, c] : model.word_topics(w)) {
    row[k] = (c + model.beta()) / (model.topic_counts()[k] + beta_bar);
  }
}

/// Builds the count-mass alias table of the word proposal q_word ∝ C_wk + β
/// for word w and returns the probability of the count branch (vs the
/// uniform β branch). Shared by Inferencer and serve::ModelSnapshot.
inline double BuildWordProposal(const TopicModel& model, WordId w,
                                AliasTable* table) {
  std::vector<std::pair<uint32_t, double>> entries;
  double count_total = 0.0;
  for (const auto& [k, c] : model.word_topics(w)) {
    entries.emplace_back(k, static_cast<double>(c));
    count_total += c;
  }
  if (entries.empty()) entries.emplace_back(0, 1.0);
  table->BuildSparse(entries);
  return count_total / (count_total + model.beta() * model.num_topics());
}

/// WarpLDA's fixed-topic Metropolis-Hastings chain over one document —
/// the single implementation behind both Inferencer (offline, lazy caches)
/// and serve::SharedInferenceEngine (concurrent, immutable snapshot).
///
/// ModelView supplies the model reads; after Warm(w) has been called for a
/// word, every accessor must be cheap: O(1) for dense views (Inferencer's
/// flat φ̂ arena, the dense ModelSnapshot layout), or a short-span lookup
/// over the word's nnz topics for the tiered sparse ModelSnapshot layout —
/// never a scan proportional to K or to the corpus. The alias-table branch
/// of the word proposal is O(1) on every view.
///   uint32_t num_topics();  WordId num_words();  double alpha();
///   void Warm(WordId w);                  // build/verify caches (may no-op)
///   double Phi(WordId w, TopicId k);      // φ̂_wk
///   double QWord(WordId w, TopicId k);    // C_wk + β
///   double word_count_prob(WordId w);     // P(count branch of q_word)
///   const AliasTable& word_alias(WordId w);
///
/// Draw order is part of the contract: results are a pure function of
/// (model state, words, options, rng state), which the serving layer relies
/// on for cross-worker determinism.
template <typename ModelView>
std::vector<double> MhInferTheta(ModelView& view, std::span<const WordId> words,
                                 const InferenceOptions& options, Rng& rng) {
  const uint32_t k_topics = view.num_topics();
  const double alpha = view.alpha();

  std::vector<WordId> doc;
  doc.reserve(words.size());
  for (WordId w : words) {
    if (w < view.num_words()) doc.push_back(w);
  }
  std::vector<double> theta(k_topics, 1.0 / std::max<uint32_t>(1, k_topics));
  if (doc.empty()) return theta;

  for (WordId w : doc) view.Warm(w);

  const uint32_t len = static_cast<uint32_t>(doc.size());
  std::vector<TopicId> z(len);
  HashCount cd(std::min<uint32_t>(k_topics, 2 * len));
  for (uint32_t n = 0; n < len; ++n) {
    z[n] = rng.NextInt(k_topics);
    cd.Inc(z[n]);
  }

  const double position_prob =
      static_cast<double>(len) / (static_cast<double>(len) + alpha * k_topics);

  for (uint32_t iter = 0; iter < options.iterations; ++iter) {
    for (uint32_t n = 0; n < len; ++n) {
      const WordId w = doc[n];
      TopicId current = z[n];
      for (uint32_t step = 0; step < options.mh_steps; ++step) {
        // Doc proposal: q_doc ∝ C_dk + α (random positioning + uniform α
        // branch). Target p ∝ (C_dk+α)·φ̂; the doc factors cancel in the
        // acceptance ratio, leaving φ̂_wt/φ̂_ws.
        TopicId t = rng.NextBernoulli(position_prob) ? z[rng.NextInt(len)]
                                                     : rng.NextInt(k_topics);
        if (t != current) {
          double accept = view.Phi(w, t) / view.Phi(w, current);
          if (accept >= 1.0 || rng.NextBernoulli(accept)) {
            cd.Dec(current);
            cd.Inc(t);
            z[n] = t;
            current = t;
          }
        }
        // Word proposal: q_word ∝ C_wk + β; accept with the full ratio
        // p(t)q(s) / (p(s)q(t)).
        t = rng.NextBernoulli(view.word_count_prob(w))
                ? view.word_alias(w).Sample(rng)
                : rng.NextInt(k_topics);
        if (t != current) {
          double p_t = (cd.Get(t) + alpha) * view.Phi(w, t);
          double p_s = (cd.Get(current) + alpha) * view.Phi(w, current);
          double accept =
              (p_t * view.QWord(w, current)) / (p_s * view.QWord(w, t));
          if (accept >= 1.0 || rng.NextBernoulli(accept)) {
            cd.Dec(current);
            cd.Inc(t);
            z[n] = t;
            current = t;
          }
        }
      }
    }
  }

  double denom = len + alpha * k_topics;
  for (uint32_t k = 0; k < k_topics; ++k) {
    theta[k] = (cd.Get(k) + alpha) / denom;
  }
  return theta;
}

}  // namespace warplda

#endif  // WARPLDA_CORE_MH_SWEEP_H_

#include "core/sweep_plan.h"

namespace warplda {
namespace {

bool ValidateAxis(const std::vector<uint32_t>& block, uint32_t num_items,
                  uint32_t num_blocks, const char* axis, std::string* error) {
  if (num_blocks == 0) {
    if (error) *error = std::string(axis) + " block count must be >= 1";
    return false;
  }
  if (block.empty()) {
    if (num_blocks != 1) {
      if (error) {
        *error = std::string("empty ") + axis +
                 " assignment requires a single block";
      }
      return false;
    }
    return true;
  }
  if (block.size() != num_items) {
    if (error) {
      *error = std::string(axis) + " assignment has " +
               std::to_string(block.size()) + " entries, corpus has " +
               std::to_string(num_items);
    }
    return false;
  }
  for (uint32_t b : block) {
    if (b >= num_blocks) {
      if (error) {
        *error = std::string(axis) + " block id " + std::to_string(b) +
                 " out of range [0, " + std::to_string(num_blocks) + ")";
      }
      return false;
    }
  }
  return true;
}

}  // namespace

bool SweepPlan::Validate(uint32_t num_docs, uint32_t num_words,
                         std::string* error) const {
  return ValidateAxis(doc_block, num_docs, num_doc_blocks, "doc", error) &&
         ValidateAxis(word_block, num_words, num_word_blocks, "word", error);
}

const char* ToString(SweepStage stage) {
  switch (stage) {
    case SweepStage::kWordAccept:
      return "word-accept";
    case SweepStage::kWordPropose:
      return "word-propose";
    case SweepStage::kDocAccept:
      return "doc-accept";
    case SweepStage::kDocPropose:
      return "doc-propose";
    case SweepStage::kDone:
      return "done";
  }
  return "invalid";
}

void GridSampler::RunSweep(const SweepPlan& plan) {
  BeginSweep(plan);
  try {
    // Step stages until the sampler reports the sweep complete: under stage
    // fusion a sweep is fewer than four barriers, and sweep_stage() names the
    // span being run, so the driver asks rather than assumes.
    while (sweep_stage() != SweepStage::kDone) {
      for (uint32_t i = 0; i < plan.num_doc_blocks; ++i) {
        for (uint32_t j = 0; j < plan.num_word_blocks; ++j) {
          RunBlock(i, j);
        }
      }
      EndStage();
    }
    EndSweep();
  } catch (...) {
    AbortSweep();
    throw;
  }
}

}  // namespace warplda

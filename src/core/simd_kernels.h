#ifndef WARPLDA_CORE_SIMD_KERNELS_H_
#define WARPLDA_CORE_SIMD_KERNELS_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/rng.h"

namespace warplda {
namespace simd {

/// A derived xoshiro256** state (what Rng::State()/SetState() exchange).
using RngState = std::array<uint64_t, 4>;

/// True when this binary can run the AVX2 kernels on this CPU. The library
/// is built without -march flags, so the vector paths are compiled with
/// function-level target attributes and selected at runtime; on non-x86
/// builds this is constant false and only the scalar paths exist.
bool HasAvx2();

/// Feature tag recorded in bench JSON headers: "avx2" when the vector
/// kernels are compiled in and the CPU supports them, "scalar" otherwise.
const char* ActiveKernelFeatures();

/// Batched RNG stream derivation: for each token id, derives the full
/// 256-bit stream state that
///   Rng(SplitMix64(stream_base ^ (uint64_t(tag) << 56) ^ token))
/// would hold after seeding — 5 SplitMix64 rounds per token (1 seed mix +
/// the 4-step xoshiro expansion), laid out so all rounds vectorize. Both
/// paths are bit-identical to per-token Rng construction by construction.
void DeriveStreamStatesScalar(uint64_t stream_base, uint32_t tag,
                              const uint64_t* tokens, size_t n, RngState* out);
void DeriveStreamStates(uint64_t stream_base, uint32_t tag,
                        const uint64_t* tokens, size_t n, RngState* out,
                        bool force_scalar = false);

/// Vectorized MH accept-ratio compute over a gathered batch (Eq. 7):
///   ratio[i] = (a_t[i] * b_cur[i]) / (a_cur[i] * b_t[i])
///   ge1[i]   = ratio[i] >= 1.0   (the masked accept-select)
/// where a_* = count + prior and b_* = ck_fixed + beta_bar, pre-gathered as
/// doubles. The expression tree (mul, mul, div — no contractible mul+add, so
/// -ffp-contract cannot fuse anything) matches the scalar AcceptChain
/// exactly; vector and scalar paths produce bit-identical IEEE results.
void ComputeAcceptRatiosScalar(size_t n, const double* a_t, const double* b_t,
                               const double* a_cur, const double* b_cur,
                               double* ratio, uint8_t* ge1);
void ComputeAcceptRatios(size_t n, const double* a_t, const double* b_t,
                         const double* a_cur, const double* b_cur,
                         double* ratio, uint8_t* ge1,
                         bool force_scalar = false);

/// Rng carrying a pre-derived stream state.
inline Rng RngFromState(const RngState& state) {
  Rng rng;
  rng.SetState(state);
  return rng;
}

}  // namespace simd
}  // namespace warplda

#endif  // WARPLDA_CORE_SIMD_KERNELS_H_

#ifndef WARPLDA_CORE_WARP_LDA_H_
#define WARPLDA_CORE_WARP_LDA_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/sampler.h"
#include "core/sparse_matrix.h"
#include "core/sweep_plan.h"
#include "eval/topic_model.h"
#include "util/alias_table.h"
#include "util/hash_count.h"

namespace warplda {

/// Runtime options for WarpLDA beyond the shared LdaConfig.
struct WarpLdaOptions {
  /// Worker threads for the row/column visits (§5.3.1). Tracing requires 1.
  /// Sampling results are independent of the thread count: every token owns
  /// its own RNG stream, so parallel runs are bit-identical to serial runs.
  uint32_t num_threads = 1;
};

/// WarpLDA (paper §4): Monte-Carlo EM training of LDA with O(1) per-token
/// sampling and O(K)-sized randomly accessed memory per document/word.
///
/// Per-token state is the paper's y_dn = (z_dn, z⁽¹⁾…z⁽ᴹ⁾): the current
/// assignment plus M pending topic proposals, stored in a SparseMatrix in
/// CSC (word-major) order with row pointers for the document sweep (§5.2).
///
/// Each Iterate() runs the compressed two-pass schedule of §4.4:
///  * word phase (VisitByColumn): build c_w on the fly, accept the pending
///    *doc* proposals with π = min{1, (C_wt+β)(C_s+β̄)/((C_ws+β)(C_t+β̄))},
///    then draw M fresh *word* proposals from an alias table over the
///    updated q_word ∝ C_wk+β;
///  * doc phase (VisitByRow): build c_d on the fly, accept the pending
///    *word* proposals with π = min{1, (C_dt+α)(C_s+β̄)/((C_ds+α)(C_t+β̄))},
///    then draw M fresh *doc* proposals by random positioning into z_d
///    (q_doc ∝ C_dk+α).
///
/// Counts are delayed (MCEM, §4.2): acceptance uses the per-phase snapshot
/// of the global counts c_k and the per-scope snapshot of c_d/c_w, which is
/// what decouples the two count matrices and shrinks the random-access
/// footprint to one cache-resident vector (§3.3, Table 2's last row).
///
/// Grid execution (GridSampler): the sweep also runs block-by-block over a
/// SweepPlan's (doc-partition × word-partition) grid — the multi-machine
/// schedule, where worker i owns doc partition i and word slices rotate.
/// Every (phase, token) pair draws from its own RNG stream derived from the
/// seed, and delayed counts make tokens within a stage independent, so any
/// block order — and Iterate() itself, the trivial 1×1 plan — produces
/// identical assignments. Distinct blocks of a stage may run concurrently
/// (e.g. under ParallelExecutor): each RunBlock call works out of the
/// calling worker's ThreadScratch — including its partition of the c_k
/// deltas, folded once at the EndStage barrier — and writes only its own
/// tokens' staged state, so block bodies share no mutable memory.
class WarpLdaSampler : public Sampler, public GridSampler {
 public:
  explicit WarpLdaSampler(const WarpLdaOptions& options = {})
      : options_(options) {}

  void Init(const Corpus& corpus, const LdaConfig& config) override;
  void Iterate() override;
  std::vector<TopicId> Assignments() const override;
  void SetAssignments(const std::vector<TopicId>& assignments) override;
  void SetPriors(double alpha, double beta) override;
  std::string name() const override { return "WarpLDA"; }

  const WarpLdaOptions& options() const { return options_; }

  /// Individual phases, exposed so benches can time them separately.
  void WordPhase();
  void DocPhase();

  /// GridSampler: block-wise sweep execution (see core/sweep_plan.h for the
  /// protocol). Produces the same samples as Iterate() for any plan, any
  /// block schedule, and any worker count.
  void BeginSweep(const SweepPlan& plan) override;
  void RunBlock(uint32_t doc_block, uint32_t word_block,
                uint32_t worker = 0) override;
  void EndStage() override;
  void EndSweep() override;
  void AbortSweep() override;
  SweepStage sweep_stage() const override { return grid_.stage; }
  /// Grows the per-worker scratch (counts, alias, ck-delta partition) so
  /// RunBlock may be called with worker ids in [0, num_workers). Requires
  /// Init(); legal between sweeps and at a stage barrier of an open sweep
  /// (the restore path grows the pool before finishing a restored sweep),
  /// but never while a stage has blocks in flight.
  void ReserveWorkers(uint32_t num_workers) override;

  /// Durability hooks (core/checkpoint.h): capture is legal between sweeps
  /// and at stage barriers (deltas folded, staged writes applied — the
  /// per-worker state is empty, so the checkpoint is just assignments,
  /// proposals, c_k snapshot, and RNG stream bases); restore reproduces that
  /// exact state in a fresh process, mid-sweep when the checkpoint was. Any
  /// thread count may finish a restored sweep bit-identically to the
  /// uninterrupted run — per-token RNG streams make worker count and block
  /// schedule irrelevant to the samples.
  bool CaptureSweepState(SweepCheckpoint* out) const override;
  bool RestoreSweepState(const SweepCheckpoint& state,
                         std::string* error) override;

  /// Live global topic counts c_k (size K). Deltas are folded in at phase /
  /// stage barriers, so between Iterate() calls (or outside an open sweep)
  /// this is exactly the histogram of Assignments().
  const std::vector<int64_t>& topic_counts() const { return ck_live_; }

  /// Snapshot-export hook for serving: aggregates the current assignments
  /// into a TopicModel ready for serve::ModelStore::Publish(). Safe to call
  /// between Iterate() calls while a server keeps answering from earlier
  /// snapshots (train-while-serve). Init() must have been called.
  /// Same name and contract as StreamingWarpLda::ExportSharedModel().
  std::shared_ptr<const TopicModel> ExportSharedModel() const;

  /// As above, and additionally reports which words' sparse rows differ
  /// from the model returned by the previous call to this overload (every
  /// word on the first call) — exactly the changed-word set
  /// serve::ModelStore::PublishDelta needs, so the trainer→server publish
  /// loop can republish incrementally. Tracks the last export internally;
  /// `changed_words` may be null to only advance that tracking.
  std::shared_ptr<const TopicModel> ExportSharedModel(
      std::vector<WordId>* changed_words);

 private:
  struct ThreadScratch {
    HashCount counts;
    AliasTable alias;
    /// This worker's partition of the c_k updates; folded into ck_live_ at
    /// phase ends (fused path) and stage barriers (grid path).
    std::vector<int64_t> ck_delta;
    std::vector<std::pair<uint32_t, double>> alias_entries;
    /// (from, to) net topic moves of the current column's acceptances; the
    /// fused word phase replays them into `counts` instead of rescanning.
    std::vector<std::pair<TopicId, TopicId>> moves;
    /// Plain (non-atomic) obs accumulators, bumped on the hot path and
    /// drained into the global registry by FlushScratchMetrics() at phase /
    /// stage barriers — never an atomic op per token.
    uint64_t obs_tokens = 0;       ///< AcceptChain calls (tokens visited)
    uint64_t obs_proposals = 0;    ///< non-self MH proposals considered
    uint64_t obs_accepts = 0;      ///< proposals accepted (topic moved)
    uint64_t obs_alias_builds = 0; ///< alias tables (re)built
  };

  /// State of an open grid sweep (BeginSweep .. EndSweep).
  struct GridState {
    SweepPlan plan;
    SweepStage stage = SweepStage::kDone;
    bool open = false;
    /// True when the plan-derived indices below match `plan`; BeginSweep
    /// skips rebuilding them for repeated sweeps of the same plan.
    bool indices_built = false;
    uint64_t base_word = 0;  // word-phase RNG stream base (see StreamBase)
    uint64_t base_doc = 0;   // doc-phase RNG stream base
    std::vector<TopicId> staged;             // accepted topics, CSC order
    std::vector<uint32_t> entry_doc_block;   // CSC position -> doc block
    std::vector<uint32_t> entry_word_block;  // CSC position -> word block
    std::vector<std::vector<uint32_t>> block_cols;  // word block -> columns
    std::vector<std::vector<uint32_t>> block_rows;  // doc block -> rows
    std::vector<char> block_ran;  // per (doc, word) block, current stage
  };

  /// RNG stream tags: each (epoch, tag, token) triple names one stream.
  static constexpr uint32_t kTagAccept = 0x51;
  static constexpr uint32_t kTagPropose = 0xA3;

  /// Per-phase base of the token RNG streams. Hashed once when a phase (or
  /// grid stage pair) opens, not once per token — the ROADMAP-flagged
  /// batching of stream seeding: per token only the final mix in StreamRng
  /// remains.
  uint64_t StreamBase(uint64_t epoch) const {
    return SplitMix64(config_.seed ^ (epoch * 0x9E3779B97F4A7C15ULL));
  }

  /// Deterministic per-token RNG stream. Grid blocks may run in any order
  /// (or on any thread), so each token's draws come from its own stream,
  /// named by the (stream_base, tag, token) triple.
  static Rng StreamRng(uint64_t stream_base, uint32_t tag, uint64_t token) {
    return Rng(
        SplitMix64(stream_base ^ (static_cast<uint64_t>(tag) << 56) ^ token));
  }

  /// Copies live global counts into the per-phase snapshot and clears the
  /// per-thread deltas.
  void BeginPhase();
  /// Folds per-thread deltas into the live global counts.
  void EndPhase();

  /// Builds `counts` from the topic values in `z` (capacity min(K, 2|z|)).
  void BuildCounts(HashCount& counts, std::span<const TopicId> z) const;
  void BuildCounts(HashCount& counts,
                   SparseMatrix<TopicId>::RowView row) const;

  /// Runs one token's MH acceptance chain against the delayed snapshots
  /// (Eq. 7) and returns the final topic, reading the delayed counts from
  /// `s.counts` and folding topic moves into `s.ck_delta`. The word phase
  /// passes (prior_vec=nullptr, prior=β); the doc phase passes the α_k
  /// vector (or nullptr) and the symmetric α. The RNG stream is seeded
  /// lazily — chains whose proposals all equal the current topic, or always
  /// accept, draw nothing.
  TopicId AcceptChain(ThreadScratch& s, TopicId current, const TopicId* props,
                      uint32_t m, const std::vector<double>* prior_vec,
                      double prior, uint64_t stream_base, uint64_t token);

  /// Drains every worker's obs accumulators into the global metrics
  /// registry (when metrics are enabled; the accumulators are zeroed either
  /// way). Called at phase ends and stage barriers, where workers are
  /// quiescent.
  void FlushScratchMetrics();

  /// Loads the word-proposal alias table over q_word ∝ C_wk (the count
  /// branch of the mixture) from scratch.counts, which must hold the
  /// post-acceptance c_w. Entries are emitted in ascending-topic order, so
  /// the table depends only on the count *values* — not on how the hash
  /// table was filled — letting the fused path update counts incrementally
  /// (replaying the acceptance moves) while the grid path rebuilds them from
  /// the column after the stage barrier, bit-identically.
  void BuildAliasFromCounts(ThreadScratch& scratch);

  /// Draws M word proposals for one token from the count/β mixture.
  void DrawWordProposalsForToken(ThreadScratch& scratch, uint64_t stream_base,
                                 uint64_t token, double count_prob);
  /// Draws M doc proposals for one token by random positioning into the
  /// (updated) row, with the α branch as fallback (§4.3 mixture).
  void DrawDocProposalsForToken(uint64_t stream_base, uint64_t token,
                                SparseMatrix<TopicId>::RowView row,
                                double position_prob);
  /// Draws M doc proposals for every token of `row`.
  void DrawDocProposals(uint64_t stream_base,
                        SparseMatrix<TopicId>::RowView row);

  /// (Re)builds the plan-derived grid indices (entry→block maps, per-block
  /// row/column lists) unless they already match `plan`. Shared by
  /// BeginSweep and RestoreSweepState.
  void BuildGridIndices(const SweepPlan& plan);

  /// Grid helpers: per-stage block bodies. Concurrency-safe across distinct
  /// blocks: they read the shared pre-stage state, write only their own
  /// tokens' staged/proposal slots, and use scratch_[worker] for everything
  /// else.
  void RunWordAcceptBlock(uint32_t doc_block, uint32_t word_block,
                          ThreadScratch& scratch);
  void RunWordProposeBlock(uint32_t doc_block, uint32_t word_block,
                           ThreadScratch& scratch);
  void RunDocAcceptBlock(uint32_t doc_block, uint32_t word_block,
                         ThreadScratch& scratch);
  void RunDocProposeBlock(uint32_t doc_block, uint32_t word_block);
  /// Copies staged topics into z and folds the per-worker ck-delta
  /// partitions into ck_live_.
  void ApplyStaged();

  WarpLdaOptions options_;
  const Corpus* corpus_ = nullptr;
  LdaConfig config_;
  double alpha_bar_ = 0.0;
  double beta_bar_ = 0.0;

  /// Model returned by the last ExportSharedModel(changed_words) call; the
  /// diff base for incremental publishing.
  std::shared_ptr<const TopicModel> last_export_;

  SparseMatrix<TopicId> matrix_;    // z, CSC order
  std::vector<TopicId> proposals_;  // M per token, CSC order
  AliasTable prior_alias_;          // over α_k (asymmetric prior only)
  std::vector<int64_t> ck_fixed_;   // snapshot used in acceptance
  std::vector<int64_t> ck_live_;    // maintained across phases
  std::vector<ThreadScratch> scratch_;
  uint64_t phase_epoch_ = 0;  // one per phase; RNG stream epoch
  GridState grid_;
};

}  // namespace warplda

#endif  // WARPLDA_CORE_WARP_LDA_H_

#ifndef WARPLDA_CORE_WARP_LDA_H_
#define WARPLDA_CORE_WARP_LDA_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/sampler.h"
#include "core/count_arena.h"
#include "core/simd_kernels.h"
#include "core/sparse_matrix.h"
#include "core/sweep_plan.h"
#include "eval/topic_model.h"
#include "util/alias_table.h"
#include "util/contracts.h"
#include "util/hash_count.h"

namespace warplda {

/// Grid-stage fusion policy (see RunBlock / EndStage and the README
/// "Threading model" section for the legality proof).
enum class StageFusion {
  /// Always run the four-stage protocol, one stage per barrier. Keeps the
  /// historical barrier structure for drivers that hand-step stages.
  kNone,
  /// Fuse adjacent stages into one RunBlock pass wherever the write-set
  /// proof holds for the plan: word-propose+doc-accept always (propose
  /// writes only its own tokens' proposal slots, which no accept reads);
  /// word-accept+word-propose when every column lies within one doc block;
  /// doc-accept+doc-propose when every row lies within one word block.
  /// Cuts a full sweep from 4 barriers to 3 (grids) or 2 (trivial plans)
  /// while remaining bit-identical to Iterate() and to kNone.
  kAuto,
};

/// Runtime options for WarpLDA beyond the shared LdaConfig.
struct WarpLdaOptions {
  /// Worker threads for the row/column visits (§5.3.1). Tracing requires 1.
  /// Sampling results are independent of the thread count: every token owns
  /// its own RNG stream, so parallel runs are bit-identical to serial runs.
  uint32_t num_threads = 1;
  /// Stage fusion for grid sweeps. Results are identical either way; kNone
  /// only changes which barriers exist (4 per sweep instead of 2–3).
  StageFusion fusion = StageFusion::kAuto;
  /// Routes the batched kernels through their scalar reference paths even
  /// when the CPU supports the vector ones. Results are bit-identical either
  /// way (the test matrix proves it); this exists to run that proof and to
  /// measure the SIMD contribution in isolation.
  bool force_scalar_kernels = false;
};

/// WarpLDA (paper §4): Monte-Carlo EM training of LDA with O(1) per-token
/// sampling and O(K)-sized randomly accessed memory per document/word.
///
/// Per-token state is the paper's y_dn = (z_dn, z⁽¹⁾…z⁽ᴹ⁾): the current
/// assignment plus M pending topic proposals, stored in a SparseMatrix in
/// CSC (word-major) order with row pointers for the document sweep (§5.2).
///
/// Each Iterate() runs the compressed two-pass schedule of §4.4:
///  * word phase (VisitByColumn): build c_w on the fly, accept the pending
///    *doc* proposals with π = min{1, (C_wt+β)(C_s+β̄)/((C_ws+β)(C_t+β̄))},
///    then draw M fresh *word* proposals from an alias table over the
///    updated q_word ∝ C_wk+β;
///  * doc phase (VisitByRow): build c_d on the fly, accept the pending
///    *word* proposals with π = min{1, (C_dt+α)(C_s+β̄)/((C_ds+α)(C_t+β̄))},
///    then draw M fresh *doc* proposals by random positioning into z_d
///    (q_doc ∝ C_dk+α).
///
/// Counts are delayed (MCEM, §4.2): acceptance uses the per-phase snapshot
/// of the global counts c_k and the per-scope snapshot of c_d/c_w, which is
/// what decouples the two count matrices and shrinks the random-access
/// footprint to one cache-resident vector (§3.3, Table 2's last row).
///
/// Grid execution (GridSampler): the sweep also runs block-by-block over a
/// SweepPlan's (doc-partition × word-partition) grid — the multi-machine
/// schedule, where worker i owns doc partition i and word slices rotate.
/// Every (phase, token) pair draws from its own RNG stream derived from the
/// seed, and delayed counts make tokens within a stage independent, so any
/// block order — and Iterate() itself, the trivial 1×1 plan — produces
/// identical assignments. Distinct blocks of a stage may run concurrently
/// (e.g. under ParallelExecutor): each RunBlock call works out of the
/// calling worker's ThreadScratch — including its partition of the c_k
/// deltas and its deferred move list, folded/applied once at the EndStage
/// barrier — and writes only its own tokens' slots, so block bodies share
/// no mutable memory.
///
/// The grid hot loops are the optimized implementation: per-item count
/// tables come from shared flat arenas built once per sweep (CountArena),
/// per-token RNG streams are derived in vectorizable batches, and the MH
/// accept chain runs as a gather → vectorized-ratio → masked-select batch
/// (core/simd_kernels.h). The fused Iterate() path keeps the simple scalar
/// per-token form as the reference semantics; the bit-identity test matrix
/// holds the two equal at every thread count, plan, and fusion setting.
class WarpLdaSampler : public Sampler, public GridSampler {
 public:
  explicit WarpLdaSampler(const WarpLdaOptions& options = {})
      : options_(options) {}

  void Init(const Corpus& corpus, const LdaConfig& config) override;
  void Iterate() override;
  std::vector<TopicId> Assignments() const override;
  void SetAssignments(const std::vector<TopicId>& assignments) override;
  void SetPriors(double alpha, double beta) override;
  std::string name() const override { return "WarpLDA"; }

  const WarpLdaOptions& options() const { return options_; }

  /// Individual phases, exposed so benches can time them separately.
  void WordPhase();
  void DocPhase();

  /// GridSampler: block-wise sweep execution (see core/sweep_plan.h for the
  /// protocol). Produces the same samples as Iterate() for any plan, any
  /// block schedule, any worker count, and any StageFusion setting. Under
  /// fusion, sweep_stage() names the *first* stage of the current span and
  /// RunBlock executes every fused stage of the span for that block;
  /// EndStage() advances past the whole span.
  void BeginSweep(const SweepPlan& plan) override;
  void RunBlock(uint32_t doc_block, uint32_t word_block,
                uint32_t worker = 0) override;
  void EndStage() override;
  void EndSweep() override;
  void AbortSweep() override;
  SweepStage sweep_stage() const override { return grid_.stage; }
  /// Grows the per-worker scratch (counts, alias, ck-delta partition) so
  /// RunBlock may be called with worker ids in [0, num_workers). Requires
  /// Init(); legal between sweeps and at a stage barrier of an open sweep
  /// (the restore path grows the pool before finishing a restored sweep),
  /// but never while a stage has blocks in flight.
  void ReserveWorkers(uint32_t num_workers) override;

  /// Durability hooks (core/checkpoint.h): capture is legal between sweeps
  /// and at stage barriers (deltas folded, staged moves applied — the
  /// per-worker state is empty, so the checkpoint is just assignments,
  /// proposals, c_k snapshot, and RNG stream bases); restore reproduces that
  /// exact state in a fresh process, mid-sweep when the checkpoint was. Any
  /// thread count — and any StageFusion setting; both stream bases are
  /// minted at BeginSweep, so the checkpoint bytes do not depend on which
  /// barriers the capturing run had — may finish a restored sweep
  /// bit-identically to the uninterrupted run.
  bool CaptureSweepState(SweepCheckpoint* out) const override;
  bool RestoreSweepState(const SweepCheckpoint& state,
                         std::string* error) override;

  /// Distributed execution hooks (see core/sweep_plan.h). A block's effect
  /// is its staged moves plus the proposal slots its span wrote, gathered /
  /// scattered in the plan-derived segment position order — canonical
  /// because every process builds identical indices from the same plan and
  /// corpus. Injected deltas land in worker 0's scratch (staged moves +
  /// ck-delta) and the block's own proposal slots, so EndStage() applies
  /// them exactly as local work; a full set of deltas makes this sampler's
  /// state evolve bit-identically to the process that ran the blocks.
  bool RunBlockCaptured(uint32_t doc_block, uint32_t word_block,
                        uint32_t worker, GridBlockDelta* out) override;
  bool ApplyBlockDelta(const GridBlockDelta& delta,
                       std::string* error) override;
  /// Restricts per-item cache builds (column alias tables, row count
  /// tables) to the items owned blocks actually read. The column count
  /// arena is always built in full: the word-accept barrier patches it with
  /// *every* block's moves, local and injected alike.
  void SetLocalBlocks(const std::vector<char>& owned) override;

  /// Live global topic counts c_k (size K). Deltas are folded in at phase /
  /// stage barriers, so between Iterate() calls (or outside an open sweep)
  /// this is exactly the histogram of Assignments().
  const std::vector<int64_t>& topic_counts() const { return ck_live_; }

  /// Snapshot-export hook for serving: aggregates the current assignments
  /// into a TopicModel ready for serve::ModelStore::Publish(). Safe to call
  /// between Iterate() calls while a server keeps answering from earlier
  /// snapshots (train-while-serve). Init() must have been called.
  /// Same name and contract as StreamingWarpLda::ExportSharedModel().
  std::shared_ptr<const TopicModel> ExportSharedModel() const;

  /// As above, and additionally reports which words' sparse rows differ
  /// from the model returned by the previous call to this overload (every
  /// word on the first call) — exactly the changed-word set
  /// serve::ModelStore::PublishDelta needs, so the trainer→server publish
  /// loop can republish incrementally. Tracks the last export internally;
  /// `changed_words` may be null to only advance that tracking.
  std::shared_ptr<const TopicModel> ExportSharedModel(
      std::vector<WordId>* changed_words);

 private:
  /// A deferred write from an accept stage: token at CSC position `pos`
  /// moves from topic `from` to `to`. `item` is the token's column (word
  /// stages) so the barrier can patch the column count arena; unused by doc
  /// stages. Replaces the old full-length staged-topics array: the barrier
  /// applies O(moved tokens) instead of copying every token.
  struct StagedMove {
    uint64_t pos;
    uint32_t item;
    TopicId from;
    TopicId to;
  };

  struct WARP_WORKER_LOCAL ThreadScratch {
    HashCount counts;
    AliasTable alias;
    /// This worker's partition of the c_k updates; folded into ck_live_ at
    /// phase ends (fused path) and stage barriers (grid path).
    std::vector<int64_t> ck_delta;
    std::vector<std::pair<uint32_t, double>> alias_entries;
    /// (from, to) net topic moves of the current column's acceptances; the
    /// fused word phase replays them into `counts` instead of rescanning.
    std::vector<std::pair<TopicId, TopicId>> moves;
    /// Deferred z writes of the current grid stage; applied (and count-arena
    /// patched) at the EndStage barrier.
    std::vector<StagedMove> staged_moves;
    /// Batch-derived per-token RNG stream states for a propose segment.
    std::vector<simd::RngState> rng_states;
    /// Fused doc-accept+propose: the row's post-acceptance topics, patched
    /// locally so the propose half positions into post-accept values before
    /// the barrier publishes them.
    std::vector<TopicId> local_row;
    /// Accept-batch SoA scratch (one chunk of tokens; see AcceptSegment):
    /// per-proposal a=count+prior / b=ck_fixed+beta_bar gathers, the current
    /// topic's running a/b, computed ratios and accept masks, and the
    /// lazily seeded per-token chain RNGs.
    std::vector<double> bat_ta, bat_tb, bat_ca, bat_cb, bat_ratio;
    std::vector<uint32_t> bat_topic, bat_cur;
    std::vector<uint8_t> bat_ge1, bat_seeded;
    std::vector<Rng> bat_rng;
    /// Plain (non-atomic) obs accumulators, bumped on the hot path and
    /// drained into the global registry by FlushScratchMetrics() at phase /
    /// stage barriers — never an atomic op per token.
    uint64_t obs_tokens = 0;       ///< AcceptChain calls (tokens visited)
    uint64_t obs_proposals = 0;    ///< non-self MH proposals considered
    uint64_t obs_accepts = 0;      ///< proposals accepted (topic moved)
    uint64_t obs_alias_builds = 0; ///< alias tables (re)built
  };

  /// Per-(block × stage-axis) work list, precomputed by BuildGridIndices:
  /// the CSC positions a block owns, grouped into per-column (word stages)
  /// or per-row (doc stages) segments. Kills the old per-block rescan of
  /// every full column/row with a per-entry block filter — the dominant
  /// redundancy of the grid path (a P×P plan rescanned each column P times
  /// per stage).
  struct BlockSegment {
    uint32_t item;    // column (word axis) or row (doc axis)
    uint32_t begin;   // [begin, end) into BlockIndex::positions
    uint32_t end;
  };
  struct BlockIndex {
    std::vector<BlockSegment> segments;
    std::vector<uint64_t> positions;  // CSC entry positions
  };

  /// State of an open grid sweep (BeginSweep .. EndSweep). Workers read it
  /// freely inside a stage; every mutation happens on the driver thread at
  /// sweep/stage boundaries — the WARP_* contracts below make warplint
  /// enforce exactly that split.
  struct GridState {
    WARP_IMMUTABLE_AFTER(BuildGridIndices) SweepPlan plan;
    WARP_BARRIER_ONLY SweepStage stage = SweepStage::kDone;
    WARP_BARRIER_ONLY bool open = false;
    /// True when the plan-derived indices below match `plan`; BeginSweep
    /// skips rebuilding them for repeated sweeps of the same plan.
    WARP_IMMUTABLE_AFTER(BuildGridIndices) bool indices_built = false;
    /// Fusion legality, per plan: cols_ok — every column's tokens lie in a
    /// single doc block (word-accept may fuse with word-propose); rows_ok —
    /// every row's tokens lie in a single word block (doc-accept may fuse
    /// with doc-propose).
    WARP_IMMUTABLE_AFTER(BuildGridIndices) bool cols_ok = false;
    WARP_IMMUTABLE_AFTER(BuildGridIndices) bool rows_ok = false;
    /// True once BuildColArena filled the column tables for this sweep (the
    /// word-accept barrier then patches them in place instead of rebuilding).
    WARP_BARRIER_ONLY bool col_filled = false;
    // word/doc-phase RNG stream bases (see StreamBase).
    WARP_IMMUTABLE_AFTER(BeginSweep, RestoreSweepState) uint64_t base_word = 0;
    WARP_IMMUTABLE_AFTER(BeginSweep, RestoreSweepState) uint64_t base_doc = 0;
    // (doc×word) block -> column / row segments.
    WARP_IMMUTABLE_AFTER(BuildGridIndices) std::vector<BlockIndex> word_ix;
    WARP_IMMUTABLE_AFTER(BuildGridIndices) std::vector<BlockIndex> doc_ix;
    /// Per (doc, word) block: ran in the current span. Deliberately
    /// unannotated — RunBlock marks its own block done through a reference,
    /// a per-block-disjoint write the line-level contract model cannot
    /// distinguish from a race.
    std::vector<char> block_ran;
  };

  /// RNG stream tags: each (epoch, tag, token) triple names one stream.
  static constexpr uint32_t kTagAccept = 0x51;
  static constexpr uint32_t kTagPropose = 0xA3;

  /// Tokens per accept-batch chunk: large enough to expose memory-level
  /// parallelism in the gather pass and fill the vector lanes, small enough
  /// that the SoA scratch stays L1-resident.
  static constexpr uint32_t kAcceptChunk = 256;

  /// Per-phase base of the token RNG streams. Hashed once when a phase (or
  /// grid sweep) opens, not once per token.
  uint64_t StreamBase(uint64_t epoch) const {
    return SplitMix64(config_.seed ^ (epoch * 0x9E3779B97F4A7C15ULL));
  }

  /// Deterministic per-token RNG stream. Grid blocks may run in any order
  /// (or on any thread), so each token's draws come from its own stream,
  /// named by the (stream_base, tag, token) triple. The batched equivalent
  /// is simd::DeriveStreamStates (bit-identical by construction).
  static Rng StreamRng(uint64_t stream_base, uint32_t tag, uint64_t token) {
    return Rng(
        SplitMix64(stream_base ^ (static_cast<uint64_t>(tag) << 56) ^ token));
  }

  /// Copies live global counts into the per-phase snapshot and clears the
  /// per-thread deltas.
  void BeginPhase();
  /// Folds per-thread deltas into the live global counts.
  void EndPhase();

  /// Builds `counts` from the topic values in `z` (capacity min(K, 2|z|)).
  void BuildCounts(HashCount& counts, std::span<const TopicId> z) const;
  void BuildCounts(HashCount& counts,
                   SparseMatrix<TopicId>::RowView row) const;

  /// Runs one token's MH acceptance chain against the delayed snapshots
  /// (Eq. 7) and returns the final topic, reading the delayed counts from
  /// `counts` and folding topic moves into `s.ck_delta`. The word phase
  /// passes (prior_vec=nullptr, prior=β); the doc phase passes the α_k
  /// vector (or nullptr) and the symmetric α. The RNG stream is seeded
  /// lazily — chains whose proposals all equal the current topic, or always
  /// accept, draw nothing. This is the scalar reference accept path; the
  /// grid stages run the batched equivalent (AcceptSegment) unless a tracer
  /// is attached.
  template <typename Counts>
  TopicId AcceptChain(ThreadScratch& s, const Counts& counts, TopicId current,
                      const TopicId* props, uint32_t m,
                      const std::vector<double>* prior_vec, double prior,
                      uint64_t stream_base, uint64_t token);

  /// Batched MH acceptance over one segment's tokens: gathers each token's
  /// (count+prior, ck_fixed+beta_bar) operands into SoA chunks, computes
  /// the chain-step ratios with the vectorized kernel, then resolves
  /// accepts sequentially per token (preserving each token's lazy RNG
  /// stream consumption exactly). Appends a StagedMove per moved token
  /// (tagged `move_item`) and, when `final_topics` is non-null, writes every
  /// token's final topic there (the fused doc path's local row patch).
  /// Bit-identical to running AcceptChain per token; falls back to exactly
  /// that when a memory tracer is attached, for trace fidelity.
  template <typename Counts>
  void AcceptSegment(ThreadScratch& s, const Counts& counts,
                     const uint64_t* positions, uint32_t n,
                     const std::vector<double>* prior_vec, double prior,
                     uint64_t stream_base, uint32_t move_item,
                     TopicId* final_topics);

  /// Drains every worker's obs accumulators into the global metrics
  /// registry (when metrics are enabled; the accumulators are zeroed either
  /// way). Called at phase ends and stage barriers, where workers are
  /// quiescent.
  void FlushScratchMetrics();

  /// Loads the word-proposal alias table over q_word ∝ C_wk (the count
  /// branch of the mixture) from `counts`, which must hold the
  /// post-acceptance c_w. Entries are emitted in ascending-topic order, so
  /// the table depends only on the count *values* — not on how the hash
  /// table was filled — letting the fused path update counts incrementally
  /// (replaying the acceptance moves) while the grid path patches the shared
  /// column arena at the stage barrier, bit-identically.
  template <typename Counts>
  void BuildAliasInto(ThreadScratch& scratch, const Counts& counts,
                      AliasTable& alias);

  /// Draws M word proposals into `slot` from the count/β mixture using a
  /// pre-seeded stream RNG.
  void DrawWordProposalsInto(TopicId* slot, const AliasTable& alias, Rng& rng,
                             double count_prob);
  /// Draws M word proposals for one token (constructs the token's stream).
  void DrawWordProposalsForToken(ThreadScratch& scratch, uint64_t stream_base,
                                 uint64_t token, double count_prob);
  /// Draws M doc proposals into `slot` by random positioning into `values`
  /// (any indexable view of the row's topics), α branch as fallback (§4.3).
  template <typename Values>
  void DrawDocProposalsInto(TopicId* slot, const Values& values, uint32_t len,
                            Rng& rng, double position_prob);
  /// Draws M doc proposals for one token (constructs the token's stream).
  void DrawDocProposalsForToken(uint64_t stream_base, uint64_t token,
                                SparseMatrix<TopicId>::RowView row,
                                double position_prob);
  /// Draws M doc proposals for every token of `row`.
  void DrawDocProposals(uint64_t stream_base,
                        SparseMatrix<TopicId>::RowView row);

  /// (Re)builds the plan-derived grid indices (per-block segment lists,
  /// fusion legality) unless they already match `plan`. Shared by BeginSweep
  /// and RestoreSweepState.
  void BuildGridIndices(const SweepPlan& plan);

  /// Length (1 or 2) of the fused stage span entered at `s`, under the
  /// current plan's legality bits and the fusion option.
  int SpanLength(SweepStage s) const;
  /// Whether the span entered at `begin` draws proposals, and on which axis
  /// (word_ix vs doc_ix position order) they are gathered / scattered.
  /// Shared by RunBlockCaptured and ApplyBlockDelta so the two sides agree.
  bool SpanWritesProposals(SweepStage begin, bool* word_axis) const;
  /// True when `item` (word for the word axis, doc otherwise) is read by a
  /// locally owned block, or when no SetLocalBlocks filter is active.
  /// Implements the filtered cache builds.
  std::vector<char> LocalItemFilter(bool word_axis) const;
  /// Barrier-side preparation for the span entered at `begin`: snapshot
  /// refreshes and count-arena/alias (re)builds its stages read.
  void EnterSpan(SweepStage begin);

  /// Shared count-table arenas (see count_arena.h). Geometry is sized once
  /// per corpus; contents are rebuilt per sweep (columns at BeginSweep,
  /// rows at the doc-accept span entry) and the column arena is patched
  /// in place with the word-accept moves at the barrier.
  void EnsureColArenaGeometry();
  void EnsureRowArenaGeometry();
  void BuildColArena();
  void BuildRowArena();
  /// Builds every column's word-proposal alias table from the (patched)
  /// column arena — once per column per sweep, replacing the old
  /// once-per-(block × column) rebuilds.
  void BuildColAliases();

  /// Grid block bodies, one per (span pattern, axis). Concurrency-safe
  /// across distinct blocks: they read shared *immutable* span state, write
  /// only their own tokens' proposal slots, and defer z/count writes into
  /// scratch_[worker]'s move list and ck-delta partition.
  void RunWordAcceptPart(uint32_t doc_block, uint32_t word_block,
                         ThreadScratch& s);
  void RunFusedWordPart(uint32_t doc_block, uint32_t word_block,
                        ThreadScratch& s);
  void RunWordProposePart(uint32_t doc_block, uint32_t word_block,
                          ThreadScratch& s);
  void RunDocAcceptPart(uint32_t doc_block, uint32_t word_block,
                        ThreadScratch& s, bool fused_propose);
  void RunDocProposePart(uint32_t doc_block, uint32_t word_block,
                         ThreadScratch& s);
  /// Applies every worker's staged moves to z (and, when the next span's
  /// alias builds will read it, patches the column count arena), then folds
  /// the per-worker ck-delta partitions into ck_live_.
  void ApplyStagedMoves(bool patch_col_counts);

  WarpLdaOptions options_;
  const Corpus* corpus_ = nullptr;
  LdaConfig config_;
  double alpha_bar_ = 0.0;
  double beta_bar_ = 0.0;

  /// Model returned by the last ExportSharedModel(changed_words) call; the
  /// diff base for incremental publishing.
  std::shared_ptr<const TopicModel> last_export_;

  /// z in CSC order. Shared-read during grid stages; mutations are staged in
  /// ThreadScratch::staged_moves and applied under the EndStage barrier.
  WARP_BARRIER_ONLY SparseMatrix<TopicId> matrix_;
  /// M proposals per token, CSC order. Deliberately unannotated: propose
  /// stages legitimately write their own tokens' slots concurrently (the
  /// slot ranges are disjoint by construction), which a per-member contract
  /// would mislabel as a race.
  std::vector<TopicId> proposals_;
  WARP_BARRIER_ONLY AliasTable prior_alias_;  // over α_k (asymmetric prior)
  /// c_k snapshot used in acceptance — frozen while any phase/span is open.
  WARP_IMMUTABLE_AFTER(Init, SetAssignments, BeginPhase, EnterSpan,
                       RestoreSweepState)
  std::vector<int64_t> ck_fixed_;
  /// Live c_k, maintained across phases by folding per-worker ck_delta
  /// partitions at barriers.
  WARP_BARRIER_ONLY std::vector<int64_t> ck_live_;
  WARP_WORKER_LOCAL std::vector<ThreadScratch> scratch_;
  WARP_BARRIER_ONLY CountArena col_counts_;  // per-column c_w (grid path)
  WARP_BARRIER_ONLY CountArena row_counts_;  // per-row c_d (grid path)
  WARP_BARRIER_ONLY std::vector<AliasTable> col_alias_;  // word proposals
  WARP_BARRIER_ONLY uint64_t phase_epoch_ = 0;  // RNG stream epoch
  GridState grid_;
  /// SetLocalBlocks ownership flags (num_blocks, row-major); empty = no
  /// filter, build every per-item cache.
  WARP_BARRIER_ONLY std::vector<char> local_blocks_;
};

}  // namespace warplda

#endif  // WARPLDA_CORE_WARP_LDA_H_

#ifndef WARPLDA_CORE_WARP_LDA_H_
#define WARPLDA_CORE_WARP_LDA_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/sampler.h"
#include "core/sparse_matrix.h"
#include "eval/topic_model.h"
#include "util/alias_table.h"
#include "util/hash_count.h"

namespace warplda {

/// Runtime options for WarpLDA beyond the shared LdaConfig.
struct WarpLdaOptions {
  /// Worker threads for the row/column visits (§5.3.1). Tracing requires 1.
  uint32_t num_threads = 1;
};

/// WarpLDA (paper §4): Monte-Carlo EM training of LDA with O(1) per-token
/// sampling and O(K)-sized randomly accessed memory per document/word.
///
/// Per-token state is the paper's y_dn = (z_dn, z⁽¹⁾…z⁽ᴹ⁾): the current
/// assignment plus M pending topic proposals, stored in a SparseMatrix in
/// CSC (word-major) order with row pointers for the document sweep (§5.2).
///
/// Each Iterate() runs the compressed two-pass schedule of §4.4:
///  * word phase (VisitByColumn): build c_w on the fly, accept the pending
///    *doc* proposals with π = min{1, (C_wt+β)(C_s+β̄)/((C_ws+β)(C_t+β̄))},
///    update c_w, then draw M fresh *word* proposals from an alias table
///    over q_word ∝ C_wk+β;
///  * doc phase (VisitByRow): build c_d on the fly, accept the pending
///    *word* proposals with π = min{1, (C_dt+α)(C_s+β̄)/((C_ds+α)(C_t+β̄))},
///    then draw M fresh *doc* proposals by random positioning into z_d
///    (q_doc ∝ C_dk+α).
///
/// Counts are delayed (MCEM, §4.2): acceptance uses the per-phase snapshot
/// of the global counts c_k and the per-scope snapshot of c_d/c_w, which is
/// what decouples the two count matrices and shrinks the random-access
/// footprint to one cache-resident vector (§3.3, Table 2's last row).
class WarpLdaSampler : public Sampler {
 public:
  explicit WarpLdaSampler(const WarpLdaOptions& options = {})
      : options_(options) {}

  void Init(const Corpus& corpus, const LdaConfig& config) override;
  void Iterate() override;
  std::vector<TopicId> Assignments() const override;
  void SetAssignments(const std::vector<TopicId>& assignments) override;
  void SetPriors(double alpha, double beta) override;
  std::string name() const override { return "WarpLDA"; }

  const WarpLdaOptions& options() const { return options_; }

  /// Individual phases, exposed so benches can time them separately.
  void WordPhase();
  void DocPhase();

  /// Snapshot-export hook for serving: aggregates the current assignments
  /// into a TopicModel ready for serve::ModelStore::Publish(). Safe to call
  /// between Iterate() calls while a server keeps answering from earlier
  /// snapshots (train-while-serve). Init() must have been called.
  /// Same name and contract as StreamingWarpLda::ExportSharedModel().
  std::shared_ptr<const TopicModel> ExportSharedModel() const;

 private:
  struct ThreadScratch {
    Rng rng;
    HashCount counts;
    AliasTable alias;
    std::vector<int64_t> ck_delta;
    std::vector<std::pair<TopicId, TopicId>> moves;  // accepted (from, to)
    std::vector<std::pair<uint32_t, double>> alias_entries;
  };

  /// Copies live global counts into the per-phase snapshot and clears the
  /// per-thread deltas.
  void BeginPhase();
  /// Folds per-thread deltas into the live global counts.
  void EndPhase();

  /// Draws M doc proposals for every token of row `row` from the updated
  /// assignments (random positioning + uniform α branch).
  void DrawDocProposals(ThreadScratch& scratch,
                        SparseMatrix<TopicId>::RowView row);

  WarpLdaOptions options_;
  const Corpus* corpus_ = nullptr;
  LdaConfig config_;
  double alpha_bar_ = 0.0;
  double beta_bar_ = 0.0;

  SparseMatrix<TopicId> matrix_;    // z, CSC order
  std::vector<TopicId> proposals_;  // M per token, CSC order
  AliasTable prior_alias_;          // over α_k (asymmetric prior only)
  std::vector<int64_t> ck_fixed_;   // snapshot used in acceptance
  std::vector<int64_t> ck_live_;    // maintained across phases
  std::vector<ThreadScratch> scratch_;
};

}  // namespace warplda

#endif  // WARPLDA_CORE_WARP_LDA_H_

#ifndef WARPLDA_CORE_COUNT_ARENA_H_
#define WARPLDA_CORE_COUNT_ARENA_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/hash_count.h"

namespace warplda {

/// Mutable view of one fixed-capacity count table inside a CountArena.
///
/// Layout, hashing and probing are exactly HashCount's (same multiplicative
/// hash, linear probing, power-of-two capacity, decremented-to-zero slots
/// keep their key), so Get() returns the same values a freshly built
/// HashCount over the same multiset would — which is all the samplers
/// observe; slot order is irrelevant because alias tables are built from
/// sorted (topic, count) entries. Unlike HashCount there is no Grow(): the
/// arena sizes each table for the worst case up front (see CountArena), so
/// Inc on the hot path is probe + bump, nothing else.
class FlatCounts {
 public:
  FlatCounts(HashCount::Entry* slots, uint32_t mask)
      : slots_(slots), mask_(mask) {}

  int32_t Get(uint32_t key) const {
    const uint32_t i = FindSlot(key);
    return slots_[i].key == HashCount::kEmptyKey ? 0 : slots_[i].value;
  }

  void Inc(uint32_t key) {
    const uint32_t i = FindSlot(key);
    if (slots_[i].key == HashCount::kEmptyKey) {
      slots_[i].key = key;
      slots_[i].value = 1;
    } else {
      ++slots_[i].value;
    }
  }

  /// The key must be present (counts never go negative in correct sampler
  /// code; like HashCount::Dec this is not checked on the hot path).
  void Dec(uint32_t key) { --slots_[FindSlot(key)].value; }

  uint32_t capacity() const { return mask_ + 1; }

  /// Address of the slot `key` hashes to, for cache-trace replay.
  uintptr_t SlotAddr(uint32_t key) const {
    return reinterpret_cast<uintptr_t>(slots_ + (Hash(key) & mask_));
  }

  template <typename F>
  void ForEachNonZero(F&& f) const {
    for (uint32_t i = 0; i <= mask_; ++i) {
      if (slots_[i].key != HashCount::kEmptyKey && slots_[i].value != 0) {
        f(slots_[i].key, slots_[i].value);
      }
    }
  }

 private:
  static uint32_t Hash(uint32_t key) { return key * 2654435761u; }

  uint32_t FindSlot(uint32_t key) const {
    uint32_t i = Hash(key) & mask_;
    while (slots_[i].key != HashCount::kEmptyKey && slots_[i].key != key) {
      i = (i + 1) & mask_;
    }
    return i;
  }

  HashCount::Entry* slots_;
  uint32_t mask_;
};

/// One flat slot arena holding a fixed-capacity count table per item (per
/// column or per row) — the exemplar's reusable LocalBuffer idiom applied to
/// the grid path's c_w/c_d snapshots: geometry is computed once per corpus
/// (capacities depend only on item lengths and K), the slab is allocated
/// once, and a sweep just clears and refills it instead of re-initializing
/// a hash table per (block × item) visit.
///
/// Per-item capacity is HashCount's rule — the smallest power of two
/// > min(K, 2·len) — which also bounds patching: a table only ever holds
/// keys from the item's initial topics (≤ len distinct) plus move targets
/// (≤ len more), so ≤ min(K, 2·len) distinct keys ever exist and the fixed
/// capacity can neither overflow nor leave a probe chain unterminated.
struct CountArena {
  std::vector<HashCount::Entry> slots;
  std::vector<uint64_t> offset;  // item i's table is slots[offset[i],
                                 // offset[i+1]); capacity = the difference
  bool ready = false;            // geometry matches the current corpus/K

  static uint32_t CapacityFor(uint32_t hint) {
    uint32_t cap = 4;
    while (cap <= hint) cap <<= 1;
    return cap;
  }

  /// Computes offsets and allocates the slab for `hints[i]` = the capacity
  /// hint (min(K, 2·len_i)) of each item. Does not clear the slots.
  void AllocateFromHints(const std::vector<uint32_t>& hints) {
    offset.assign(hints.size() + 1, 0);
    for (size_t i = 0; i < hints.size(); ++i) {
      offset[i + 1] = offset[i] + CapacityFor(hints[i]);
    }
    slots.resize(offset.back());
    ready = true;
  }

  /// Resets every table to empty (one linear pass over the slab).
  void ClearSlots() {
    std::fill(slots.begin(), slots.end(),
              HashCount::Entry{HashCount::kEmptyKey, 0});
  }

  FlatCounts view(uint32_t item) {
    return FlatCounts(
        slots.data() + offset[item],
        static_cast<uint32_t>(offset[item + 1] - offset[item] - 1));
  }
};

}  // namespace warplda

#endif  // WARPLDA_CORE_COUNT_ARENA_H_

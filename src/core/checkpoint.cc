#include "core/checkpoint.h"

#include <fstream>

namespace warplda {

namespace {
constexpr uint64_t kMagic = 0x57415250'434B5031ULL;  // "WARPCKP1"

template <typename T>
void Put(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
template <typename T>
bool Get(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}
bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}
}  // namespace

bool SaveCheckpoint(const TrainingCheckpoint& checkpoint,
                    const std::string& path, std::string* error) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Fail(error, "cannot open " + path + " for writing");
  Put(out, kMagic);
  Put(out, checkpoint.config.num_topics);
  Put(out, checkpoint.config.alpha);
  Put(out, checkpoint.config.beta);
  Put(out, checkpoint.config.mh_steps);
  Put(out, checkpoint.config.seed);
  Put(out, checkpoint.iteration);
  Put(out, static_cast<uint64_t>(checkpoint.assignments.size()));
  out.write(reinterpret_cast<const char*>(checkpoint.assignments.data()),
            static_cast<std::streamsize>(checkpoint.assignments.size() *
                                         sizeof(TopicId)));
  if (!out.good()) return Fail(error, "write error on " + path);
  return true;
}

bool LoadCheckpoint(const std::string& path, TrainingCheckpoint* checkpoint,
                    std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(error, "cannot open " + path);
  uint64_t magic = 0;
  if (!Get(in, &magic) || magic != kMagic) {
    return Fail(error, path + ": bad magic");
  }
  uint64_t count = 0;
  if (!Get(in, &checkpoint->config.num_topics) ||
      !Get(in, &checkpoint->config.alpha) ||
      !Get(in, &checkpoint->config.beta) ||
      !Get(in, &checkpoint->config.mh_steps) ||
      !Get(in, &checkpoint->config.seed) ||
      !Get(in, &checkpoint->iteration) || !Get(in, &count)) {
    return Fail(error, path + ": truncated header");
  }
  checkpoint->assignments.resize(count);
  in.read(reinterpret_cast<char*>(checkpoint->assignments.data()),
          static_cast<std::streamsize>(count * sizeof(TopicId)));
  if (!in.good()) return Fail(error, path + ": truncated assignments");
  for (TopicId z : checkpoint->assignments) {
    if (z >= checkpoint->config.num_topics) {
      return Fail(error, path + ": assignment out of range");
    }
  }
  return true;
}

bool RestoreSampler(Sampler& sampler, const Corpus& corpus,
                    const TrainingCheckpoint& checkpoint,
                    std::string* error) {
  if (checkpoint.assignments.size() != corpus.num_tokens()) {
    return Fail(error,
                "checkpoint token count does not match the corpus (" +
                    std::to_string(checkpoint.assignments.size()) + " vs " +
                    std::to_string(corpus.num_tokens()) + ")");
  }
  sampler.Init(corpus, checkpoint.config);
  sampler.SetAssignments(checkpoint.assignments);
  return true;
}

}  // namespace warplda

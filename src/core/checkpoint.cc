#include "core/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>

#include "obs/metrics.h"
#include "util/checkpoint_io.h"

namespace warplda {

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Structural sanity caps. Generous (the paper's largest run is K = 10^4,
// M = 16) — their job is to reject nonsense from corrupt files with a clear
// message, not to constrain real configurations.
constexpr uint32_t kMaxTopics = 1u << 24;
constexpr uint32_t kMaxMhSteps = 1u << 12;

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool FinitePositive(double v) { return std::isfinite(v) && v > 0.0; }

void PutConfig(PayloadWriter& out, const LdaConfig& config) {
  out.Put(config.num_topics);
  out.Put(config.mh_steps);
  out.Put(config.seed);
  out.Put(config.alpha);
  out.Put(config.beta);
  out.PutVec(config.alpha_vector);
}

/// Parses and validates an LdaConfig: rejects non-finite or non-positive
/// priors and a zero MH chain length at load time, before they can poison
/// sampling (a NaN alpha silently corrupts every acceptance ratio; an
/// mh_steps of 0 indexes nothing and draws nothing).
bool GetConfig(PayloadReader& in, LdaConfig* config, const std::string& path,
               std::string* error) {
  if (!in.Get(&config->num_topics) || !in.Get(&config->mh_steps) ||
      !in.Get(&config->seed) || !in.Get(&config->alpha) ||
      !in.Get(&config->beta) ||
      !in.GetVec(&config->alpha_vector, kMaxTopics)) {
    return Fail(error, path + ": truncated config");
  }
  if (config->num_topics == 0 || config->num_topics > kMaxTopics) {
    return Fail(error, path + ": num_topics " +
                           std::to_string(config->num_topics) +
                           " out of range [1, " + std::to_string(kMaxTopics) +
                           "]");
  }
  if (config->mh_steps == 0 || config->mh_steps > kMaxMhSteps) {
    return Fail(error, path + ": mh_steps " +
                           std::to_string(config->mh_steps) +
                           " out of range [1, " +
                           std::to_string(kMaxMhSteps) + "]");
  }
  if (!FinitePositive(config->alpha)) {
    return Fail(error, path + ": alpha " + std::to_string(config->alpha) +
                           " is not finite and positive");
  }
  if (!FinitePositive(config->beta)) {
    return Fail(error, path + ": beta " + std::to_string(config->beta) +
                           " is not finite and positive");
  }
  if (!config->alpha_vector.empty()) {
    if (config->alpha_vector.size() != config->num_topics) {
      return Fail(error, path + ": alpha_vector has " +
                             std::to_string(config->alpha_vector.size()) +
                             " entries for " +
                             std::to_string(config->num_topics) + " topics");
    }
    for (double a : config->alpha_vector) {
      if (!FinitePositive(a)) {
        return Fail(error,
                    path + ": alpha_vector entry is not finite and positive");
      }
    }
  }
  return true;
}

bool TopicsInRange(const std::vector<TopicId>& topics, uint32_t num_topics) {
  for (TopicId z : topics) {
    if (z >= num_topics) return false;
  }
  return true;
}

}  // namespace

bool SaveCheckpoint(const TrainingCheckpoint& checkpoint,
                    const std::string& path, std::string* error) {
  PayloadWriter out;
  PutConfig(out, checkpoint.config);
  out.Put(checkpoint.iteration);
  out.PutVec(checkpoint.assignments);
  return WriteFrame(path, FrameKind::kTrainingCheckpoint, out.bytes(), error);
}

bool LoadCheckpoint(const std::string& path, TrainingCheckpoint* checkpoint,
                    std::string* error) {
  std::vector<uint8_t> payload;
  if (!ReadFrame(path, FrameKind::kTrainingCheckpoint, &payload, error)) {
    return false;
  }
  PayloadReader in(payload);
  if (!GetConfig(in, &checkpoint->config, path, error)) return false;
  if (!in.Get(&checkpoint->iteration) ||
      // GetVec bounds the stored count against the remaining payload before
      // resizing, so a corrupt count cannot provoke a huge allocation.
      !in.GetVec(&checkpoint->assignments)) {
    return Fail(error, path + ": truncated assignments");
  }
  if (!in.exhausted()) {
    return Fail(error, path + ": trailing bytes after assignments");
  }
  if (!TopicsInRange(checkpoint->assignments,
                     checkpoint->config.num_topics)) {
    return Fail(error, path + ": assignment out of range");
  }
  return true;
}

void EncodeSweepCheckpointPayload(const SweepCheckpoint& checkpoint,
                                  std::vector<uint8_t>* payload) {
  PayloadWriter out;
  PutConfig(out, checkpoint.config);
  out.Put(checkpoint.iteration);
  out.Put(static_cast<uint32_t>(checkpoint.next_stage));
  out.Put(checkpoint.phase_epoch);
  out.Put(checkpoint.base_word);
  out.Put(checkpoint.base_doc);
  out.Put(checkpoint.plan.num_doc_blocks);
  out.Put(checkpoint.plan.num_word_blocks);
  out.PutVec(checkpoint.plan.doc_block);
  out.PutVec(checkpoint.plan.word_block);
  out.PutVec(checkpoint.ck_fixed);
  out.PutVec(checkpoint.assignments);
  out.PutVec(checkpoint.proposals);
  *payload = out.bytes();
}

bool SaveSweepCheckpoint(const SweepCheckpoint& checkpoint,
                         const std::string& path, std::string* error) {
  std::vector<uint8_t> payload;
  EncodeSweepCheckpointPayload(checkpoint, &payload);
  return WriteFrame(path, FrameKind::kSweepCheckpoint, payload, error);
}

bool LoadSweepCheckpoint(const std::string& path, SweepCheckpoint* checkpoint,
                         std::string* error) {
  std::vector<uint8_t> payload;
  if (!ReadFrame(path, FrameKind::kSweepCheckpoint, &payload, error)) {
    return false;
  }
  return DecodeSweepCheckpointPayload(payload, path, checkpoint, error);
}

bool DecodeSweepCheckpointPayload(const std::vector<uint8_t>& payload,
                                  const std::string& context,
                                  SweepCheckpoint* checkpoint,
                                  std::string* error) {
  const std::string& path = context;  // error-message naming
  PayloadReader in(payload);
  if (!GetConfig(in, &checkpoint->config, path, error)) return false;

  uint32_t stage = 0;
  if (!in.Get(&checkpoint->iteration) || !in.Get(&stage) ||
      !in.Get(&checkpoint->phase_epoch) || !in.Get(&checkpoint->base_word) ||
      !in.Get(&checkpoint->base_doc)) {
    return Fail(error, path + ": truncated sweep header");
  }
  if (stage >= static_cast<uint32_t>(SweepStage::kDone)) {
    return Fail(error, path + ": invalid sweep stage " +
                           std::to_string(stage));
  }
  checkpoint->next_stage = static_cast<SweepStage>(stage);

  SweepPlan& plan = checkpoint->plan;
  if (!in.Get(&plan.num_doc_blocks) || !in.Get(&plan.num_word_blocks) ||
      !in.GetVec(&plan.doc_block) || !in.GetVec(&plan.word_block)) {
    return Fail(error, path + ": truncated sweep plan");
  }
  if (plan.num_doc_blocks == 0 || plan.num_word_blocks == 0) {
    return Fail(error, path + ": sweep plan with zero blocks");
  }
  if (plan.doc_block.empty() && plan.num_doc_blocks != 1) {
    return Fail(error, path + ": sweep plan doc blocks without a doc map");
  }
  if (plan.word_block.empty() && plan.num_word_blocks != 1) {
    return Fail(error, path + ": sweep plan word blocks without a word map");
  }
  for (uint32_t b : plan.doc_block) {
    if (b >= plan.num_doc_blocks) {
      return Fail(error, path + ": doc block id out of range");
    }
  }
  for (uint32_t b : plan.word_block) {
    if (b >= plan.num_word_blocks) {
      return Fail(error, path + ": word block id out of range");
    }
  }

  if (!in.GetVec(&checkpoint->ck_fixed, kMaxTopics) ||
      !in.GetVec(&checkpoint->assignments) ||
      !in.GetVec(&checkpoint->proposals)) {
    return Fail(error, path + ": truncated sweep state");
  }
  if (!in.exhausted()) {
    return Fail(error, path + ": trailing bytes after sweep state");
  }

  const uint32_t k = checkpoint->config.num_topics;
  const uint64_t tokens = checkpoint->assignments.size();
  if (checkpoint->ck_fixed.size() != k) {
    return Fail(error, path + ": ck snapshot has " +
                           std::to_string(checkpoint->ck_fixed.size()) +
                           " entries for " + std::to_string(k) + " topics");
  }
  if (checkpoint->proposals.size() !=
      tokens * static_cast<uint64_t>(checkpoint->config.mh_steps)) {
    return Fail(error, path + ": proposal count " +
                           std::to_string(checkpoint->proposals.size()) +
                           " is not mh_steps × token count");
  }
  if (!TopicsInRange(checkpoint->assignments, k) ||
      !TopicsInRange(checkpoint->proposals, k)) {
    return Fail(error, path + ": topic id out of range");
  }
  // The c_k snapshot is a histogram of `tokens` assignments at some earlier
  // barrier: entries must be non-negative and sum to the token count.
  int64_t ck_sum = 0;
  for (int64_t c : checkpoint->ck_fixed) {
    if (c < 0 || static_cast<uint64_t>(c) > tokens) {
      return Fail(error, path + ": ck snapshot entry out of range");
    }
    ck_sum += c;
  }
  if (static_cast<uint64_t>(ck_sum) != tokens) {
    return Fail(error, path + ": ck snapshot sums to " +
                           std::to_string(ck_sum) + " over " +
                           std::to_string(tokens) + " tokens");
  }
  return true;
}

AsyncCheckpointWriter::AsyncCheckpointWriter(size_t max_pending)
    : max_pending_(std::max<size_t>(1, max_pending)),
      writer_([this] { WriterLoop(); }) {}

AsyncCheckpointWriter::~AsyncCheckpointWriter() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;  // writer drains the remaining queue before exiting
  }
  cv_work_.notify_all();
  writer_.join();
}

void AsyncCheckpointWriter::Enqueue(Item item) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool metrics = obs::MetricsEnabled();
    const int64_t wait_start = metrics ? NowUs() : 0;
    cv_space_.wait(lock, [&] { return queue_.size() < max_pending_; });
    if (metrics) {
      obs::MetricsRegistry::Global()
          .GetHistogram("ckpt_submit_wait_us",
                        "Trainer wait for checkpoint-writer queue room")
          ->Observe(static_cast<double>(NowUs() - wait_start));
    }
    queue_.push_back(std::move(item));
  }
  cv_work_.notify_one();
}

void AsyncCheckpointWriter::Submit(SweepCheckpoint checkpoint,
                                   std::string path, Completion done) {
  Item item;
  item.is_sweep = true;
  item.sweep = std::move(checkpoint);
  item.path = std::move(path);
  item.done = std::move(done);
  Enqueue(std::move(item));
}

void AsyncCheckpointWriter::Submit(TrainingCheckpoint checkpoint,
                                   std::string path, Completion done) {
  Item item;
  item.is_sweep = false;
  item.training = std::move(checkpoint);
  item.path = std::move(path);
  item.done = std::move(done);
  Enqueue(std::move(item));
}

void AsyncCheckpointWriter::WriterLoop() {
  obs::Histogram* save_us = nullptr;
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with nothing left to drain
      item = std::move(queue_.front());
      queue_.pop_front();
      writing_ = true;
    }
    cv_space_.notify_one();

    const bool metrics = obs::MetricsEnabled();
    const int64_t save_start = metrics ? NowUs() : 0;
    std::string err;
    const bool saved =
        item.is_sweep ? SaveSweepCheckpoint(item.sweep, item.path, &err)
                      : SaveCheckpoint(item.training, item.path, &err);
    if (metrics) {
      if (save_us == nullptr) {
        save_us = obs::MetricsRegistry::Global().GetHistogram(
            "ckpt_save_us",
            "Background serialize + write + fsync of one checkpoint");
      }
      save_us->Observe(static_cast<double>(NowUs() - save_start));
    }
    // The completion runs only for durable files and BEFORE the next item is
    // dequeued: at callback time the newest checkpoint on disk is this one.
    std::string callback_error;
    if (saved && item.done) {
      try {
        item.done();
      } catch (const std::exception& e) {
        callback_error = std::string("checkpoint completion threw: ") +
                         e.what();
      } catch (...) {
        callback_error = "checkpoint completion threw";
      }
    }

    {
      std::unique_lock<std::mutex> lock(mutex_);
      writing_ = false;
      if (!saved && first_error_.empty()) first_error_ = err;
      if (!callback_error.empty() && first_error_.empty()) {
        first_error_ = callback_error;
      }
    }
    cv_idle_.notify_all();
  }
}

bool AsyncCheckpointWriter::Flush(std::string* error) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [&] { return queue_.empty() && !writing_; });
  if (!first_error_.empty()) {
    if (error != nullptr) *error = first_error_;
    return false;
  }
  return true;
}

bool AsyncCheckpointWriter::ok(std::string* error) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!first_error_.empty()) {
    if (error != nullptr) *error = first_error_;
    return false;
  }
  return true;
}

bool RestoreSampler(Sampler& sampler, const Corpus& corpus,
                    const TrainingCheckpoint& checkpoint,
                    std::string* error) {
  if (checkpoint.assignments.size() != corpus.num_tokens()) {
    return Fail(error,
                "checkpoint token count does not match the corpus (" +
                    std::to_string(checkpoint.assignments.size()) + " vs " +
                    std::to_string(corpus.num_tokens()) + ")");
  }
  sampler.Init(corpus, checkpoint.config);
  sampler.SetAssignments(checkpoint.assignments);
  return true;
}

}  // namespace warplda

#include "core/warp_lda.h"

#include <algorithm>
#include <stdexcept>

#include "core/checkpoint.h"
#include "obs/metrics.h"

namespace warplda {

namespace {

/// Cached registry handles for the sampler-level counters (see
/// FlushScratchMetrics; the hot path only bumps plain per-worker fields).
struct SamplerMetrics {
  obs::Counter* tokens;
  obs::Counter* proposals;
  obs::Counter* accepts;
  obs::Counter* alias_builds;

  static const SamplerMetrics& Get() {
    static const SamplerMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      SamplerMetrics sm;
      sm.tokens = reg.GetCounter("trainer_tokens_sampled_total",
                                 "Tokens run through an MH acceptance chain");
      sm.proposals = reg.GetCounter(
          "trainer_mh_proposals_total",
          "Non-self MH proposals considered (accept rate = accepts/this)");
      sm.accepts = reg.GetCounter("trainer_mh_accepts_total",
                                  "MH proposals accepted (topic moved)");
      sm.alias_builds = reg.GetCounter(
          "trainer_alias_rebuilds_total",
          "Word-proposal alias tables (re)built");
      return sm;
    }();
    return m;
  }
};

}  // namespace

// Determinism invariant: the fused phases (Iterate) and the grid stages
// (BeginSweep..EndSweep) must sample identically. Both therefore share the
// helpers below, and every (phase, token) pair draws from its own RNG stream:
// acceptance and proposal draws depend only on the per-phase snapshots plus
// the token's stream, never on which thread or grid block processed the token
// first. Anything that would couple tokens — updating c_w/c_d during a scan,
// a shared RNG cursor — is structured out.

void WarpLdaSampler::Init(const Corpus& corpus, const LdaConfig& config) {
  corpus_ = &corpus;
  config_ = config;
  alpha_bar_ = config.alpha_bar();
  beta_bar_ = config.beta * corpus.num_words();
  if (!config_.alpha_vector.empty()) {
    prior_alias_.Build(config_.alpha_vector);
  }
  const uint32_t k = config_.num_topics;
  const uint32_t m = std::max(1u, config_.mh_steps);

  matrix_.Reset(corpus.num_docs(), corpus.num_words());
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    for (WordId w : corpus.doc_tokens(d)) matrix_.AddEntry(d, w);
  }
  matrix_.Finalize();
  proposals_.assign(matrix_.num_entries() * m, 0);

  scratch_.assign(std::max(1u, options_.num_threads), ThreadScratch());
  for (auto& s : scratch_) s.ck_delta.assign(k, 0);
  phase_epoch_ = 0;
  grid_ = GridState();

  // Random initial assignments.
  ck_live_.assign(k, 0);
  Rng init_rng(config.seed);
  for (uint64_t e = 0; e < matrix_.num_entries(); ++e) {
    TopicId topic = init_rng.NextInt(k);
    matrix_.entry_data(e) = topic;
    ++ck_live_[topic];
  }
  ck_fixed_ = ck_live_;

  // Alg. 2 enters the word phase expecting pending doc proposals, so draw
  // the first batch now from the initial assignments (stream epoch 0).
  const uint64_t stream_base = StreamBase(phase_epoch_);
  matrix_.VisitByRow(
      [&](int, uint32_t, SparseMatrix<TopicId>::RowView row) {
        DrawDocProposals(stream_base, row);
      },
      options_.num_threads);
}

void WarpLdaSampler::SetPriors(double alpha, double beta) {
  config_.alpha = alpha;
  config_.beta = beta;
  alpha_bar_ = alpha * config_.num_topics;
  beta_bar_ = beta * corpus_->num_words();
}

std::shared_ptr<const TopicModel> WarpLdaSampler::ExportSharedModel() const {
  return std::make_shared<const TopicModel>(*corpus_, Assignments(),
                                            config_.num_topics, config_.alpha,
                                            config_.beta);
}

std::shared_ptr<const TopicModel> WarpLdaSampler::ExportSharedModel(
    std::vector<WordId>* changed_words) {
  return TrackExportDelta(ExportSharedModel(), &last_export_, changed_words);
}

void WarpLdaSampler::SetAssignments(const std::vector<TopicId>& assignments) {
  if (grid_.open) {
    throw std::logic_error(
        "WarpLdaSampler: SetAssignments() during an active grid sweep");
  }
  std::fill(ck_live_.begin(), ck_live_.end(), 0);
  for (uint64_t t = 0; t < assignments.size(); ++t) {
    matrix_.entry_data(matrix_.csc_position(t)) = assignments[t];
    ++ck_live_[assignments[t]];
  }
  ck_fixed_ = ck_live_;
  // Refresh the pending proposals so the next word phase consumes proposals
  // drawn from the restored state (mirrors the tail of Init()).
  const uint64_t stream_base = StreamBase(phase_epoch_);
  matrix_.VisitByRow(
      [&](int, uint32_t, SparseMatrix<TopicId>::RowView row) {
        DrawDocProposals(stream_base, row);
      },
      options_.num_threads);
}

std::vector<TopicId> WarpLdaSampler::Assignments() const {
  std::vector<TopicId> out(matrix_.num_entries());
  for (uint64_t t = 0; t < out.size(); ++t) {
    out[t] = matrix_.entry_data(matrix_.csc_position(t));
  }
  return out;
}

void WarpLdaSampler::BeginPhase() {
  ck_fixed_ = ck_live_;
  for (auto& s : scratch_) {
    std::fill(s.ck_delta.begin(), s.ck_delta.end(), 0);
  }
}

void WarpLdaSampler::EndPhase() {
  for (auto& s : scratch_) {
    for (uint32_t k = 0; k < config_.num_topics; ++k) {
      ck_live_[k] += s.ck_delta[k];
    }
  }
  FlushScratchMetrics();
}

void WarpLdaSampler::BuildCounts(HashCount& counts,
                                 std::span<const TopicId> z) const {
  counts.Init(
      std::min<uint32_t>(config_.num_topics, 2 * static_cast<uint32_t>(z.size())));
  for (TopicId topic : z) counts.Inc(topic);
}

void WarpLdaSampler::BuildCounts(HashCount& counts,
                                 SparseMatrix<TopicId>::RowView row) const {
  counts.Init(std::min<uint32_t>(config_.num_topics, 2 * row.size()));
  for (uint32_t i = 0; i < row.size(); ++i) counts.Inc(row[i]);
}

TopicId WarpLdaSampler::AcceptChain(ThreadScratch& s, TopicId current,
                                    const TopicId* props, uint32_t m,
                                    const std::vector<double>* prior_vec,
                                    double prior, uint64_t stream_base,
                                    uint64_t token) {
  const HashCount& counts = s.counts;
  int64_t* ck_delta = s.ck_delta.data();
  ++s.obs_tokens;
  Rng rng;
  bool seeded = false;
  for (uint32_t j = 0; j < m; ++j) {
    TopicId t = props[j];
    if (t == current) continue;
    ++s.obs_proposals;
    Trace(reinterpret_cast<const void*>(counts.SlotAddr(t)),
          sizeof(HashCount::Entry), /*random=*/true, /*write=*/false);
    const double prior_t = prior_vec ? (*prior_vec)[t] : prior;
    const double prior_s = prior_vec ? (*prior_vec)[current] : prior;
    // Eq. 7: delayed c_w/c_d and c_k snapshots on both sides.
    double accept =
        (counts.Get(t) + prior_t) * (ck_fixed_[current] + beta_bar_) /
        ((counts.Get(current) + prior_s) * (ck_fixed_[t] + beta_bar_));
    bool take = accept >= 1.0;
    if (!take) {
      if (!seeded) {
        rng = StreamRng(stream_base, kTagAccept, token);
        seeded = true;
      }
      take = rng.NextBernoulli(accept);
    }
    if (take) {
      ++s.obs_accepts;
      --ck_delta[current];
      ++ck_delta[t];
      current = t;
    }
  }
  return current;
}

void WarpLdaSampler::FlushScratchMetrics() {
  uint64_t tokens = 0;
  uint64_t proposals = 0;
  uint64_t accepts = 0;
  uint64_t alias_builds = 0;
  for (auto& s : scratch_) {
    tokens += s.obs_tokens;
    proposals += s.obs_proposals;
    accepts += s.obs_accepts;
    alias_builds += s.obs_alias_builds;
    s.obs_tokens = s.obs_proposals = s.obs_accepts = s.obs_alias_builds = 0;
  }
  if (!obs::MetricsEnabled() || tokens + proposals + alias_builds == 0) return;
  const SamplerMetrics& m = SamplerMetrics::Get();
  m.tokens->Inc(tokens);
  m.proposals->Inc(proposals);
  m.accepts->Inc(accepts);
  m.alias_builds->Inc(alias_builds);
}

void WarpLdaSampler::BuildAliasFromCounts(ThreadScratch& scratch) {
  // Alg. 2 builds the alias table over the post-acceptance C_wk: q_word ∝
  // C_wk + β as a mixture of this count-weighted table and the uniform β
  // branch. Entries are sorted by topic so the bin layout is a pure function
  // of the count values: the fused path (which patches the acceptance-time
  // snapshot with the move list) and the grid path (which rebuilds c_w from
  // the column after the stage barrier, having no move list) insert keys in
  // different orders yet load identical tables.
  ++scratch.obs_alias_builds;
  scratch.alias_entries.clear();
  scratch.counts.ForEachNonZero([&](uint32_t k, int32_t c) {
    scratch.alias_entries.emplace_back(k, static_cast<double>(c));
  });
  std::sort(scratch.alias_entries.begin(), scratch.alias_entries.end());
  scratch.alias.BuildSparse(scratch.alias_entries);
}

void WarpLdaSampler::DrawWordProposalsForToken(ThreadScratch& scratch,
                                               uint64_t stream_base,
                                               uint64_t token,
                                               double count_prob) {
  const uint32_t m = std::max(1u, config_.mh_steps);
  const uint32_t k_topics = config_.num_topics;
  TopicId* slot = &proposals_[token * m];
  Rng rng = StreamRng(stream_base, kTagPropose, token);
  for (uint32_t j = 0; j < m; ++j) {
    slot[j] = rng.NextBernoulli(count_prob) ? scratch.alias.Sample(rng)
                                            : rng.NextInt(k_topics);
  }
}

void WarpLdaSampler::DrawDocProposalsForToken(
    uint64_t stream_base, uint64_t token, SparseMatrix<TopicId>::RowView row,
    double position_prob) {
  const uint32_t m = std::max(1u, config_.mh_steps);
  const uint32_t k_topics = config_.num_topics;
  const bool asymmetric = !config_.alpha_vector.empty();
  TopicId* slot = &proposals_[token * m];
  Rng rng = StreamRng(stream_base, kTagPropose, token);
  for (uint32_t j = 0; j < m; ++j) {
    if (rng.NextBernoulli(position_prob)) {
      slot[j] = row[rng.NextInt(row.size())];
    } else {
      slot[j] = asymmetric ? prior_alias_.Sample(rng) : rng.NextInt(k_topics);
    }
  }
}

void WarpLdaSampler::DrawDocProposals(uint64_t stream_base,
                                      SparseMatrix<TopicId>::RowView row) {
  const uint32_t len = row.size();
  if (len == 0) return;
  // q_doc ∝ C_dk + α_k as the mixture of §4.3: with probability L_d/(L_d+ᾱ)
  // random positioning into z_d, otherwise a draw from the prior (uniform
  // for symmetric α, alias table over α_k otherwise).
  const double position_prob =
      static_cast<double>(len) / (static_cast<double>(len) + alpha_bar_);
  for (uint32_t i = 0; i < len; ++i) {
    DrawDocProposalsForToken(stream_base, row.entry_index(i), row,
                             position_prob);
  }
}

void WarpLdaSampler::WordPhase() {
  if (grid_.open) {
    throw std::logic_error(
        "WarpLdaSampler: WordPhase() during an active grid sweep");
  }
  const uint32_t k_topics = config_.num_topics;
  const uint32_t m = std::max(1u, config_.mh_steps);
  const double beta = config_.beta;
  const uint64_t stream_base = StreamBase(++phase_epoch_);
  BeginPhase();

  matrix_.VisitByColumn(
      [&](int tid, uint32_t w, std::span<TopicId> z) {
        if (z.empty()) return;
        ThreadScratch& s = scratch_[tid];
        const uint32_t lw = static_cast<uint32_t>(z.size());
        const uint64_t base = matrix_.col_offset(w);

        // c_w on the fly (delayed snapshot for this word's acceptances).
        BuildCounts(s.counts, z);
        Trace(reinterpret_cast<const void*>(s.counts.slots().data()),
              s.counts.capacity() *
                  static_cast<uint32_t>(sizeof(HashCount::Entry)),
              /*random=*/true, /*write=*/true);

        // Accept the pending doc proposals against the snapshot; c_w is not
        // updated mid-scan, so all of this word's acceptances see the same
        // delayed counts (Alg. 2) and tokens stay order-independent. The net
        // moves are recorded so the post-acceptance c_w comes from replaying
        // them below — O(accepted) — instead of rescanning the column.
        s.moves.clear();
        for (uint32_t i = 0; i < lw; ++i) {
          const TopicId before = z[i];
          z[i] = AcceptChain(s, z[i], &proposals_[(base + i) * m], m, nullptr,
                             beta, stream_base, base + i);
          if (z[i] != before) s.moves.emplace_back(before, z[i]);
        }

        // Fresh word proposals from the updated c_w: patch the snapshot with
        // the moves (an intermediate chain hop nets out — only the endpoints
        // matter), then build the order-stable alias table.
        for (const auto& [from, to] : s.moves) {
          s.counts.Dec(from);
          s.counts.Inc(to);
        }
        BuildAliasFromCounts(s);
        const double count_prob =
            static_cast<double>(lw) /
            (static_cast<double>(lw) + beta * k_topics);
        for (uint32_t i = 0; i < lw; ++i) {
          DrawWordProposalsForToken(s, stream_base, base + i, count_prob);
        }
        TraceScopeEnd();
      },
      options_.num_threads);

  EndPhase();
}

void WarpLdaSampler::DocPhase() {
  if (grid_.open) {
    throw std::logic_error(
        "WarpLdaSampler: DocPhase() during an active grid sweep");
  }
  const uint32_t m = std::max(1u, config_.mh_steps);
  const std::vector<double>* alpha_vec =
      config_.alpha_vector.empty() ? nullptr : &config_.alpha_vector;
  const double alpha = config_.alpha;
  const uint64_t stream_base = StreamBase(++phase_epoch_);
  BeginPhase();

  matrix_.VisitByRow(
      [&](int tid, uint32_t, SparseMatrix<TopicId>::RowView row) {
        const uint32_t len = row.size();
        if (len == 0) return;
        ThreadScratch& s = scratch_[tid];

        // c_d on the fly (delayed snapshot for this document).
        BuildCounts(s.counts, row);
        Trace(reinterpret_cast<const void*>(s.counts.slots().data()),
              s.counts.capacity() *
                  static_cast<uint32_t>(sizeof(HashCount::Entry)),
              /*random=*/true, /*write=*/true);

        // Accept the pending word proposals (Eq. 7, π^word).
        for (uint32_t i = 0; i < len; ++i) {
          row[i] = AcceptChain(s, row[i], &proposals_[row.entry_index(i) * m],
                               m, alpha_vec, alpha, stream_base,
                               row.entry_index(i));
        }

        // Fresh doc proposals from the updated z_d.
        DrawDocProposals(stream_base, row);
        TraceScopeEnd();
      },
      options_.num_threads);

  EndPhase();
}

void WarpLdaSampler::Iterate() {
  WordPhase();
  DocPhase();
}

// --------------------------------------------------------------------------
// Grid execution. Stages defer their writes (accepted topics go to
// grid_.staged, count updates to the calling worker's ck-delta partition)
// and apply them at the EndStage barrier, so every block of a stage observes
// the same pre-stage state no matter the schedule. Combined with the
// per-token RNG streams this makes any grid — including the 1×1 plan and the
// fused Iterate() — sample identically, on any number of workers: a block
// body reads only shared *immutable* stage state and writes only its own
// tokens' slots plus scratch_[worker], so concurrent blocks share no mutable
// memory (ParallelExecutor relies on exactly this).

void WarpLdaSampler::ReserveWorkers(uint32_t num_workers) {
  if (corpus_ == nullptr) {
    throw std::logic_error(
        "WarpLdaSampler: Init() must precede ReserveWorkers()");
  }
  if (grid_.open) {
    // Growing the pool is safe whenever no block is in flight — between
    // sweeps or at a stage barrier (where FinishSweep resumes a restored
    // sweep, possibly with more workers than the checkpointing run had).
    for (char ran : grid_.block_ran) {
      if (ran) {
        throw std::logic_error(
            "WarpLdaSampler: ReserveWorkers() with stage blocks in flight");
      }
    }
  }
  while (scratch_.size() < num_workers) {
    scratch_.emplace_back().ck_delta.assign(config_.num_topics, 0);
  }
}

void WarpLdaSampler::BeginSweep(const SweepPlan& plan) {
  if (corpus_ == nullptr) {
    throw std::logic_error("WarpLdaSampler: Init() must precede BeginSweep()");
  }
  if (grid_.open) {
    throw std::logic_error("WarpLdaSampler: a grid sweep is already active");
  }
  std::string error;
  if (!plan.Validate(corpus_->num_docs(), corpus_->num_words(), &error)) {
    throw std::invalid_argument("WarpLdaSampler: invalid SweepPlan: " + error);
  }
  const uint32_t doc_blocks = plan.num_doc_blocks;
  const uint32_t word_blocks = plan.num_word_blocks;
  BuildGridIndices(plan);
  grid_.staged.assign(matrix_.num_entries(), 0);
  for (auto& s : scratch_) {
    std::fill(s.ck_delta.begin(), s.ck_delta.end(), 0);
  }
  grid_.block_ran.assign(static_cast<size_t>(doc_blocks) * word_blocks, 0);
  grid_.base_word = StreamBase(++phase_epoch_);
  ck_fixed_ = ck_live_;
  grid_.stage = SweepStage::kWordAccept;
  grid_.open = true;
}

void WarpLdaSampler::BuildGridIndices(const SweepPlan& plan) {
  if (grid_.indices_built && plan == grid_.plan) return;
  grid_.plan = plan;
  grid_.block_rows.assign(plan.num_doc_blocks, {});
  grid_.block_cols.assign(plan.num_word_blocks, {});
  grid_.entry_doc_block.assign(matrix_.num_entries(), 0);
  grid_.entry_word_block.assign(matrix_.num_entries(), 0);
  for (DocId d = 0; d < corpus_->num_docs(); ++d) {
    const uint32_t b = plan.doc_block.empty() ? 0 : plan.doc_block[d];
    grid_.block_rows[b].push_back(d);
    auto row = matrix_.row(d);
    for (uint32_t i = 0; i < row.size(); ++i) {
      grid_.entry_doc_block[row.entry_index(i)] = b;
    }
  }
  for (WordId w = 0; w < corpus_->num_words(); ++w) {
    const uint32_t b = plan.word_block.empty() ? 0 : plan.word_block[w];
    grid_.block_cols[b].push_back(w);
    const uint64_t base = matrix_.col_offset(w);
    const uint64_t len = matrix_.col_data(w).size();
    for (uint64_t p = 0; p < len; ++p) grid_.entry_word_block[base + p] = b;
  }
  grid_.indices_built = true;
}

void WarpLdaSampler::RunBlock(uint32_t doc_block, uint32_t word_block,
                              uint32_t worker) {
  if (!grid_.open) {
    throw std::logic_error("WarpLdaSampler: RunBlock() without BeginSweep()");
  }
  if (grid_.stage == SweepStage::kDone) {
    throw std::logic_error(
        "WarpLdaSampler: RunBlock() after all stages completed");
  }
  if (doc_block >= grid_.plan.num_doc_blocks ||
      word_block >= grid_.plan.num_word_blocks) {
    throw std::invalid_argument("WarpLdaSampler: block index out of range");
  }
  if (worker >= scratch_.size()) {
    throw std::invalid_argument(
        "WarpLdaSampler: worker id " + std::to_string(worker) +
        " out of range; ReserveWorkers() before the sweep");
  }
  char& ran =
      grid_.block_ran[static_cast<size_t>(doc_block) *
                          grid_.plan.num_word_blocks +
                      word_block];
  if (ran) {
    throw std::logic_error(std::string("WarpLdaSampler: block ran twice in ") +
                           ToString(grid_.stage) + " stage");
  }
  ran = 1;
  ThreadScratch& scratch = scratch_[worker];
  switch (grid_.stage) {
    case SweepStage::kWordAccept:
      RunWordAcceptBlock(doc_block, word_block, scratch);
      break;
    case SweepStage::kWordPropose:
      RunWordProposeBlock(doc_block, word_block, scratch);
      break;
    case SweepStage::kDocAccept:
      RunDocAcceptBlock(doc_block, word_block, scratch);
      break;
    case SweepStage::kDocPropose:
      RunDocProposeBlock(doc_block, word_block);
      break;
    case SweepStage::kDone:
      break;  // unreachable, checked above
  }
}

void WarpLdaSampler::RunWordAcceptBlock(uint32_t doc_block,
                                        uint32_t word_block,
                                        ThreadScratch& s) {
  const uint32_t m = std::max(1u, config_.mh_steps);
  const double beta = config_.beta;
  for (uint32_t w : grid_.block_cols[word_block]) {
    auto z = matrix_.col_data(w);
    const uint64_t base = matrix_.col_offset(w);
    bool built = false;
    for (uint32_t i = 0; i < z.size(); ++i) {
      if (grid_.entry_doc_block[base + i] != doc_block) continue;
      if (!built) {
        // Full-column snapshot of the pre-stage z (stages stage their writes,
        // so every block sees the same column no matter the schedule).
        BuildCounts(s.counts, z);
        built = true;
      }
      grid_.staged[base + i] =
          AcceptChain(s, z[i], &proposals_[(base + i) * m], m, nullptr, beta,
                      grid_.base_word, base + i);
    }
  }
}

void WarpLdaSampler::RunWordProposeBlock(uint32_t doc_block,
                                         uint32_t word_block,
                                         ThreadScratch& s) {
  const uint32_t k_topics = config_.num_topics;
  const double beta = config_.beta;
  for (uint32_t w : grid_.block_cols[word_block]) {
    auto z = matrix_.col_data(w);
    const uint64_t base = matrix_.col_offset(w);
    const double lw = static_cast<double>(z.size());
    const double count_prob = lw / (lw + beta * k_topics);
    bool built = false;
    for (uint32_t i = 0; i < z.size(); ++i) {
      if (grid_.entry_doc_block[base + i] != doc_block) continue;
      if (!built) {
        // Post-acceptance column (applied at the barrier); no move list
        // exists here, so c_w comes from a fresh scan — the order-stable
        // alias build makes that agree with the fused path's patched table.
        BuildCounts(s.counts, z);
        BuildAliasFromCounts(s);
        built = true;
      }
      DrawWordProposalsForToken(s, grid_.base_word, base + i, count_prob);
    }
  }
}

void WarpLdaSampler::RunDocAcceptBlock(uint32_t doc_block,
                                       uint32_t word_block,
                                       ThreadScratch& s) {
  const uint32_t m = std::max(1u, config_.mh_steps);
  const std::vector<double>* alpha_vec =
      config_.alpha_vector.empty() ? nullptr : &config_.alpha_vector;
  const double alpha = config_.alpha;
  for (uint32_t r : grid_.block_rows[doc_block]) {
    auto row = matrix_.row(r);
    bool built = false;
    for (uint32_t i = 0; i < row.size(); ++i) {
      const uint64_t idx = row.entry_index(i);
      if (grid_.entry_word_block[idx] != word_block) continue;
      if (!built) {
        BuildCounts(s.counts, row);  // full-row pre-stage snapshot
        built = true;
      }
      grid_.staged[idx] = AcceptChain(s, row[i], &proposals_[idx * m], m,
                                      alpha_vec, alpha, grid_.base_doc, idx);
    }
  }
}

void WarpLdaSampler::RunDocProposeBlock(uint32_t doc_block,
                                        uint32_t word_block) {
  for (uint32_t r : grid_.block_rows[doc_block]) {
    auto row = matrix_.row(r);
    const uint32_t len = row.size();
    if (len == 0) continue;
    const double position_prob =
        static_cast<double>(len) / (static_cast<double>(len) + alpha_bar_);
    for (uint32_t i = 0; i < len; ++i) {
      const uint64_t idx = row.entry_index(i);
      if (grid_.entry_word_block[idx] != word_block) continue;
      DrawDocProposalsForToken(grid_.base_doc, idx, row, position_prob);
    }
  }
}

void WarpLdaSampler::ApplyStaged() {
  for (uint64_t e = 0; e < matrix_.num_entries(); ++e) {
    matrix_.entry_data(e) = grid_.staged[e];
  }
  // Fold the per-worker ck-delta partitions — the once-per-stage-barrier
  // reduction that replaces a shared (contended) delta vector.
  for (auto& s : scratch_) {
    for (uint32_t k = 0; k < config_.num_topics; ++k) {
      ck_live_[k] += s.ck_delta[k];
    }
    std::fill(s.ck_delta.begin(), s.ck_delta.end(), 0);
  }
}

void WarpLdaSampler::EndStage() {
  if (!grid_.open) {
    throw std::logic_error("WarpLdaSampler: EndStage() without BeginSweep()");
  }
  if (grid_.stage == SweepStage::kDone) {
    throw std::logic_error(
        "WarpLdaSampler: EndStage() after all stages completed");
  }
  size_t missing = 0;
  for (char ran : grid_.block_ran) missing += ran ? 0 : 1;
  if (missing > 0) {
    throw std::logic_error(
        "WarpLdaSampler: EndStage() in " + std::string(ToString(grid_.stage)) +
        " stage with " + std::to_string(missing) + " of " +
        std::to_string(grid_.block_ran.size()) + " blocks not run");
  }
  switch (grid_.stage) {
    case SweepStage::kWordAccept:
      ApplyStaged();
      grid_.stage = SweepStage::kWordPropose;
      break;
    case SweepStage::kWordPropose:
      // Word phase over: fold point between phases, matching the fused
      // path's EndPhase()/BeginPhase() pair.
      grid_.base_doc = StreamBase(++phase_epoch_);
      ck_fixed_ = ck_live_;
      grid_.stage = SweepStage::kDocAccept;
      break;
    case SweepStage::kDocAccept:
      ApplyStaged();
      grid_.stage = SweepStage::kDocPropose;
      break;
    case SweepStage::kDocPropose:
      grid_.stage = SweepStage::kDone;
      break;
    case SweepStage::kDone:
      break;  // unreachable, checked above
  }
  std::fill(grid_.block_ran.begin(), grid_.block_ran.end(), 0);
  FlushScratchMetrics();  // workers are quiescent at the barrier
}

void WarpLdaSampler::AbortSweep() {
  if (!grid_.open) return;
  // Discard the aborted stage's staged topics and unfolded deltas; the live
  // state is whatever the last completed barrier applied, which keeps
  // matrix_ and ck_live_ consistent with each other. Pending proposals may
  // be stale — callers recover by running a fresh full sweep.
  for (auto& s : scratch_) {
    std::fill(s.ck_delta.begin(), s.ck_delta.end(), 0);
  }
  grid_.stage = SweepStage::kDone;
  grid_.open = false;
}

void WarpLdaSampler::EndSweep() {
  if (!grid_.open) {
    throw std::logic_error("WarpLdaSampler: EndSweep() without BeginSweep()");
  }
  if (grid_.stage != SweepStage::kDone) {
    throw std::logic_error(
        std::string("WarpLdaSampler: EndSweep() while still in ") +
        ToString(grid_.stage) + " stage");
  }
  grid_.open = false;
}

bool WarpLdaSampler::CaptureSweepState(SweepCheckpoint* out) const {
  if (corpus_ == nullptr) return false;
  if (grid_.open) {
    // Only quiescent points are capturable: at a barrier every worker's
    // staged writes are applied and every ck-delta partition is folded (and
    // zeroed), so the live arrays below are the *whole* state. Mid-stage
    // they are not, and a checkpoint here would silently drop work.
    for (char ran : grid_.block_ran) {
      if (ran) return false;
    }
  }
  out->config = config_;
  // The sampler treats mh_steps == 0 as 1 everywhere; normalize so the
  // checkpoint's proposal count is self-consistent under validation.
  out->config.mh_steps = std::max(1u, config_.mh_steps);
  // An open sweep whose four stages all completed (EndSweep still pending)
  // is state-identical to "between sweeps": everything is applied.
  const bool mid_sweep = grid_.open && grid_.stage != SweepStage::kDone;
  out->next_stage = mid_sweep ? grid_.stage : SweepStage::kWordAccept;
  out->plan = mid_sweep ? grid_.plan : SweepPlan::Trivial();
  out->phase_epoch = phase_epoch_;
  out->base_word = grid_.base_word;
  out->base_doc = grid_.base_doc;
  out->ck_fixed = ck_fixed_;
  out->assignments.resize(matrix_.num_entries());
  for (uint64_t e = 0; e < matrix_.num_entries(); ++e) {
    out->assignments[e] = matrix_.entry_data(e);  // CSC entry order
  }
  out->proposals = proposals_;
  return true;
}

bool WarpLdaSampler::RestoreSweepState(const SweepCheckpoint& state,
                                       std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = "WarpLdaSampler: " + message;
    return false;
  };
  if (corpus_ == nullptr) return fail("Init() must precede restore");
  if (grid_.open) return fail("restore during an active grid sweep");
  // Identity parameters must match the Init() config exactly — they shape
  // the RNG streams and the proposal layout, so a mismatch could not resume
  // the same trajectory. Priors are taken *from* the checkpoint (they drift
  // under hyper-parameter optimization).
  if (state.config.num_topics != config_.num_topics) {
    return fail("checkpoint has " + std::to_string(state.config.num_topics) +
                " topics, sampler has " + std::to_string(config_.num_topics));
  }
  if (state.config.mh_steps != std::max(1u, config_.mh_steps)) {
    return fail("checkpoint mh_steps " +
                std::to_string(state.config.mh_steps) +
                " does not match the sampler's");
  }
  if (state.config.seed != config_.seed) {
    return fail("checkpoint seed does not match the sampler's");
  }
  if (state.config.alpha_vector != config_.alpha_vector) {
    return fail("checkpoint asymmetric-prior vector does not match");
  }
  const uint64_t n = matrix_.num_entries();
  const uint64_t m = std::max(1u, config_.mh_steps);
  if (state.assignments.size() != n) {
    return fail("checkpoint token count " +
                std::to_string(state.assignments.size()) +
                " does not match the corpus (" + std::to_string(n) + ")");
  }
  if (state.proposals.size() != n * m) {
    return fail("checkpoint proposal count does not match");
  }
  if (state.ck_fixed.size() != config_.num_topics) {
    return fail("checkpoint ck snapshot size does not match");
  }
  for (TopicId z : state.assignments) {
    if (z >= config_.num_topics) return fail("assignment out of range");
  }
  for (TopicId z : state.proposals) {
    if (z >= config_.num_topics) return fail("proposal out of range");
  }
  const bool mid_sweep = state.next_stage != SweepStage::kWordAccept;
  if (mid_sweep) {
    std::string plan_error;
    if (!state.plan.Validate(corpus_->num_docs(), corpus_->num_words(),
                             &plan_error)) {
      return fail("checkpoint sweep plan does not fit the corpus: " +
                  plan_error);
    }
  }

  // Vector-aware prior refresh (SetPriors would overwrite the asymmetric ᾱ
  // with the symmetric product).
  config_.alpha = state.config.alpha;
  config_.beta = state.config.beta;
  alpha_bar_ = config_.alpha_bar();
  beta_bar_ = config_.beta * corpus_->num_words();
  std::fill(ck_live_.begin(), ck_live_.end(), 0);
  for (uint64_t e = 0; e < n; ++e) {
    matrix_.entry_data(e) = state.assignments[e];
    ++ck_live_[state.assignments[e]];
  }
  proposals_ = state.proposals;
  ck_fixed_ = state.ck_fixed;
  phase_epoch_ = state.phase_epoch;
  grid_.base_word = state.base_word;
  grid_.base_doc = state.base_doc;
  for (auto& s : scratch_) {
    std::fill(s.ck_delta.begin(), s.ck_delta.end(), 0);
  }
  if (!mid_sweep) {
    // Between sweeps: proposals are the pending doc proposals the next word
    // phase consumes; nothing else to reopen.
    grid_.stage = SweepStage::kDone;
    grid_.open = false;
    return true;
  }
  // Reopen the sweep at the checkpointed barrier. The staged buffer starts
  // clear — every accept stage overwrites all of it before the barrier
  // applies it — and block_ran starts empty, exactly the post-EndStage
  // state the checkpoint was captured in.
  BuildGridIndices(state.plan);
  grid_.staged.assign(n, 0);
  grid_.block_ran.assign(
      static_cast<size_t>(state.plan.num_doc_blocks) *
          state.plan.num_word_blocks,
      0);
  grid_.stage = state.next_stage;
  grid_.open = true;
  return true;
}

}  // namespace warplda

#include "core/warp_lda.h"

#include <algorithm>

namespace warplda {

void WarpLdaSampler::Init(const Corpus& corpus, const LdaConfig& config) {
  corpus_ = &corpus;
  config_ = config;
  alpha_bar_ = config.alpha_bar();
  beta_bar_ = config.beta * corpus.num_words();
  if (!config_.alpha_vector.empty()) {
    prior_alias_.Build(config_.alpha_vector);
  }
  const uint32_t k = config_.num_topics;
  const uint32_t m = std::max(1u, config_.mh_steps);

  matrix_.Reset(corpus.num_docs(), corpus.num_words());
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    for (WordId w : corpus.doc_tokens(d)) matrix_.AddEntry(d, w);
  }
  matrix_.Finalize();
  proposals_.assign(matrix_.num_entries() * m, 0);

  scratch_.assign(std::max(1u, options_.num_threads), ThreadScratch());
  for (size_t tid = 0; tid < scratch_.size(); ++tid) {
    scratch_[tid].rng.Seed(config.seed + 0x9E37ULL * (tid + 1));
    scratch_[tid].ck_delta.assign(k, 0);
  }

  // Random initial assignments.
  ck_live_.assign(k, 0);
  Rng init_rng(config.seed);
  for (uint64_t e = 0; e < matrix_.num_entries(); ++e) {
    TopicId topic = init_rng.NextInt(k);
    matrix_.entry_data(e) = topic;
    ++ck_live_[topic];
  }
  ck_fixed_ = ck_live_;

  // Alg. 2 enters the word phase expecting pending doc proposals, so draw
  // the first batch now from the initial assignments.
  matrix_.VisitByRow(
      [&](int tid, uint32_t, SparseMatrix<TopicId>::RowView row) {
        DrawDocProposals(scratch_[tid], row);
      },
      options_.num_threads);
}

void WarpLdaSampler::SetPriors(double alpha, double beta) {
  config_.alpha = alpha;
  config_.beta = beta;
  alpha_bar_ = alpha * config_.num_topics;
  beta_bar_ = beta * corpus_->num_words();
}

std::shared_ptr<const TopicModel> WarpLdaSampler::ExportSharedModel() const {
  return std::make_shared<const TopicModel>(*corpus_, Assignments(),
                                            config_.num_topics, config_.alpha,
                                            config_.beta);
}

void WarpLdaSampler::SetAssignments(const std::vector<TopicId>& assignments) {
  std::fill(ck_live_.begin(), ck_live_.end(), 0);
  for (uint64_t t = 0; t < assignments.size(); ++t) {
    matrix_.entry_data(matrix_.csc_position(t)) = assignments[t];
    ++ck_live_[assignments[t]];
  }
  ck_fixed_ = ck_live_;
  // Refresh the pending proposals so the next word phase consumes proposals
  // drawn from the restored state (mirrors the tail of Init()).
  matrix_.VisitByRow(
      [&](int tid, uint32_t, SparseMatrix<TopicId>::RowView row) {
        DrawDocProposals(scratch_[tid], row);
      },
      options_.num_threads);
}

std::vector<TopicId> WarpLdaSampler::Assignments() const {
  std::vector<TopicId> out(matrix_.num_entries());
  for (uint64_t t = 0; t < out.size(); ++t) {
    out[t] = matrix_.entry_data(matrix_.csc_position(t));
  }
  return out;
}

void WarpLdaSampler::BeginPhase() {
  ck_fixed_ = ck_live_;
  for (auto& s : scratch_) {
    std::fill(s.ck_delta.begin(), s.ck_delta.end(), 0);
  }
}

void WarpLdaSampler::EndPhase() {
  for (auto& s : scratch_) {
    for (uint32_t k = 0; k < config_.num_topics; ++k) {
      ck_live_[k] += s.ck_delta[k];
    }
  }
}

void WarpLdaSampler::DrawDocProposals(ThreadScratch& scratch,
                                      SparseMatrix<TopicId>::RowView row) {
  const uint32_t m = std::max(1u, config_.mh_steps);
  const uint32_t k_topics = config_.num_topics;
  const uint32_t len = row.size();
  if (len == 0) return;
  // q_doc ∝ C_dk + α_k as the mixture of §4.3: with probability L_d/(L_d+ᾱ)
  // random positioning into z_d, otherwise a draw from the prior (uniform
  // for symmetric α, alias table over α_k otherwise).
  const double position_prob =
      static_cast<double>(len) / (static_cast<double>(len) + alpha_bar_);
  const bool asymmetric = !config_.alpha_vector.empty();
  for (uint32_t i = 0; i < len; ++i) {
    TopicId* slot = &proposals_[row.entry_index(i) * m];
    for (uint32_t j = 0; j < m; ++j) {
      if (scratch.rng.NextBernoulli(position_prob)) {
        slot[j] = row[scratch.rng.NextInt(len)];
      } else {
        slot[j] = asymmetric ? prior_alias_.Sample(scratch.rng)
                             : scratch.rng.NextInt(k_topics);
      }
    }
  }
}

void WarpLdaSampler::WordPhase() {
  const uint32_t k_topics = config_.num_topics;
  const uint32_t m = std::max(1u, config_.mh_steps);
  const double beta = config_.beta;
  BeginPhase();

  matrix_.VisitByColumn(
      [&](int tid, uint32_t w, std::span<TopicId> z) {
        if (z.empty()) return;
        ThreadScratch& s = scratch_[tid];
        const uint32_t lw = static_cast<uint32_t>(z.size());
        const uint64_t base = matrix_.col_offset(w);

        // c_w on the fly (delayed snapshot for this word's acceptances).
        s.counts.Init(std::min<uint32_t>(k_topics, 2 * lw));
        for (TopicId topic : z) s.counts.Inc(topic);
        Trace(reinterpret_cast<const void*>(s.counts.slots().data()),
              s.counts.capacity() *
                  static_cast<uint32_t>(sizeof(HashCount::Entry)),
              /*random=*/true, /*write=*/true);

        // Accept the pending doc proposals (Eq. 7, π^doc) against the
        // snapshot; collect accepted moves and apply them afterwards so all
        // acceptances in this word see the same delayed counts (Alg. 2).
        s.moves.clear();
        for (uint32_t i = 0; i < lw; ++i) {
          TopicId current = z[i];
          const TopicId* props = &proposals_[(base + i) * m];
          for (uint32_t j = 0; j < m; ++j) {
            TopicId t = props[j];
            if (t == current) continue;
            Trace(reinterpret_cast<const void*>(s.counts.SlotAddr(t)),
                  sizeof(HashCount::Entry), /*random=*/true, /*write=*/false);
            double accept =
                (s.counts.Get(t) + beta) * (ck_fixed_[current] + beta_bar_) /
                ((s.counts.Get(current) + beta) * (ck_fixed_[t] + beta_bar_));
            if (accept >= 1.0 || s.rng.NextBernoulli(accept)) {
              s.moves.emplace_back(current, t);
              current = t;
            }
          }
          z[i] = current;
        }
        for (const auto& [from, to] : s.moves) {
          s.counts.Dec(from);
          s.counts.Inc(to);
          --s.ck_delta[from];
          ++s.ck_delta[to];
        }

        // Fresh word proposals from the *updated* c_w (Alg. 2 recomputes C_wk
        // before building the alias table): q_word ∝ C_wk + β as the mixture
        // of a count-weighted alias table and the uniform β branch.
        s.alias_entries.clear();
        s.counts.ForEachNonZero([&](uint32_t k, int32_t c) {
          s.alias_entries.emplace_back(k, static_cast<double>(c));
        });
        s.alias.BuildSparse(s.alias_entries);
        const double count_prob =
            static_cast<double>(lw) /
            (static_cast<double>(lw) + beta * k_topics);
        for (uint32_t i = 0; i < lw; ++i) {
          TopicId* slot = &proposals_[(base + i) * m];
          for (uint32_t j = 0; j < m; ++j) {
            slot[j] = s.rng.NextBernoulli(count_prob)
                          ? s.alias.Sample(s.rng)
                          : s.rng.NextInt(k_topics);
          }
        }
        TraceScopeEnd();
      },
      options_.num_threads);

  EndPhase();
}

void WarpLdaSampler::DocPhase() {
  const uint32_t k_topics = config_.num_topics;
  const uint32_t m = std::max(1u, config_.mh_steps);
  const std::vector<double>* alpha_vec =
      config_.alpha_vector.empty() ? nullptr : &config_.alpha_vector;
  const double alpha = config_.alpha;
  BeginPhase();

  matrix_.VisitByRow(
      [&](int tid, uint32_t, SparseMatrix<TopicId>::RowView row) {
        const uint32_t len = row.size();
        if (len == 0) return;
        ThreadScratch& s = scratch_[tid];

        // c_d on the fly (delayed snapshot for this document).
        s.counts.Init(std::min<uint32_t>(k_topics, 2 * len));
        for (uint32_t i = 0; i < len; ++i) s.counts.Inc(row[i]);
        Trace(reinterpret_cast<const void*>(s.counts.slots().data()),
              s.counts.capacity() *
                  static_cast<uint32_t>(sizeof(HashCount::Entry)),
              /*random=*/true, /*write=*/true);

        // Accept the pending word proposals (Eq. 7, π^word).
        for (uint32_t i = 0; i < len; ++i) {
          TopicId current = row[i];
          const TopicId* props = &proposals_[row.entry_index(i) * m];
          for (uint32_t j = 0; j < m; ++j) {
            TopicId t = props[j];
            if (t == current) continue;
            Trace(reinterpret_cast<const void*>(s.counts.SlotAddr(t)),
                  sizeof(HashCount::Entry), /*random=*/true, /*write=*/false);
            const double alpha_t = alpha_vec ? (*alpha_vec)[t] : alpha;
            const double alpha_s =
                alpha_vec ? (*alpha_vec)[current] : alpha;
            double accept =
                (s.counts.Get(t) + alpha_t) *
                (ck_fixed_[current] + beta_bar_) /
                ((s.counts.Get(current) + alpha_s) *
                 (ck_fixed_[t] + beta_bar_));
            if (accept >= 1.0 || s.rng.NextBernoulli(accept)) {
              --s.ck_delta[current];
              ++s.ck_delta[t];
              current = t;
            }
          }
          row[i] = current;
        }

        // Fresh doc proposals from the updated z_d.
        DrawDocProposals(s, row);
        TraceScopeEnd();
      },
      options_.num_threads);

  EndPhase();
}

void WarpLdaSampler::Iterate() {
  WordPhase();
  DocPhase();
}

}  // namespace warplda

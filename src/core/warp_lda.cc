#include "core/warp_lda.h"

#include <algorithm>
#include <stdexcept>

#include "core/checkpoint.h"
#include "obs/metrics.h"

namespace warplda {

namespace {

/// Cached registry handles for the sampler-level counters (see
/// FlushScratchMetrics; the hot path only bumps plain per-worker fields).
struct SamplerMetrics {
  obs::Counter* tokens;
  obs::Counter* proposals;
  obs::Counter* accepts;
  obs::Counter* alias_builds;

  static const SamplerMetrics& Get() {
    static const SamplerMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      SamplerMetrics sm;
      sm.tokens = reg.GetCounter("trainer_tokens_sampled_total",
                                 "Tokens run through an MH acceptance chain");
      sm.proposals = reg.GetCounter(
          "trainer_mh_proposals_total",
          "Non-self MH proposals considered (accept rate = accepts/this)");
      sm.accepts = reg.GetCounter("trainer_mh_accepts_total",
                                  "MH proposals accepted (topic moved)");
      sm.alias_builds = reg.GetCounter(
          "trainer_alias_rebuilds_total",
          "Word-proposal alias tables (re)built");
      return sm;
    }();
    return m;
  }
};

}  // namespace

// Determinism invariant: the fused phases (Iterate) and the grid stages
// (BeginSweep..EndSweep) must sample identically. Both therefore share the
// helpers below, and every (phase, token) pair draws from its own RNG stream:
// acceptance and proposal draws depend only on the per-phase snapshots plus
// the token's stream, never on which thread or grid block processed the token
// first. Anything that would couple tokens — updating c_w/c_d during a scan,
// a shared RNG cursor — is structured out.

void WarpLdaSampler::Init(const Corpus& corpus, const LdaConfig& config) {
  corpus_ = &corpus;
  config_ = config;
  alpha_bar_ = config.alpha_bar();
  beta_bar_ = config.beta * corpus.num_words();
  if (!config_.alpha_vector.empty()) {
    prior_alias_.Build(config_.alpha_vector);
  }
  const uint32_t k = config_.num_topics;
  const uint32_t m = std::max(1u, config_.mh_steps);

  matrix_.Reset(corpus.num_docs(), corpus.num_words());
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    for (WordId w : corpus.doc_tokens(d)) matrix_.AddEntry(d, w);
  }
  matrix_.Finalize();
  proposals_.assign(matrix_.num_entries() * m, 0);

  scratch_.assign(std::max(1u, options_.num_threads), ThreadScratch());
  for (auto& s : scratch_) s.ck_delta.assign(k, 0);
  phase_epoch_ = 0;
  grid_ = GridState();
  col_counts_ = CountArena();
  row_counts_ = CountArena();
  col_alias_.clear();

  // Random initial assignments.
  ck_live_.assign(k, 0);
  Rng init_rng(config.seed);
  for (uint64_t e = 0; e < matrix_.num_entries(); ++e) {
    TopicId topic = init_rng.NextInt(k);
    matrix_.entry_data(e) = topic;
    ++ck_live_[topic];
  }
  ck_fixed_ = ck_live_;

  // Alg. 2 enters the word phase expecting pending doc proposals, so draw
  // the first batch now from the initial assignments (stream epoch 0).
  const uint64_t stream_base = StreamBase(phase_epoch_);
  matrix_.VisitByRow(
      [&](int, uint32_t, SparseMatrix<TopicId>::RowView row) {
        DrawDocProposals(stream_base, row);
      },
      options_.num_threads);
}

void WarpLdaSampler::SetPriors(double alpha, double beta) {
  config_.alpha = alpha;
  config_.beta = beta;
  alpha_bar_ = alpha * config_.num_topics;
  beta_bar_ = beta * corpus_->num_words();
}

std::shared_ptr<const TopicModel> WarpLdaSampler::ExportSharedModel() const {
  return std::make_shared<const TopicModel>(*corpus_, Assignments(),
                                            config_.num_topics, config_.alpha,
                                            config_.beta);
}

std::shared_ptr<const TopicModel> WarpLdaSampler::ExportSharedModel(
    std::vector<WordId>* changed_words) {
  return TrackExportDelta(ExportSharedModel(), &last_export_, changed_words);
}

void WarpLdaSampler::SetAssignments(const std::vector<TopicId>& assignments) {
  if (grid_.open) {
    throw std::logic_error(
        "WarpLdaSampler: SetAssignments() during an active grid sweep");
  }
  std::fill(ck_live_.begin(), ck_live_.end(), 0);
  for (uint64_t t = 0; t < assignments.size(); ++t) {
    matrix_.entry_data(matrix_.csc_position(t)) = assignments[t];
    ++ck_live_[assignments[t]];
  }
  ck_fixed_ = ck_live_;
  // Refresh the pending proposals so the next word phase consumes proposals
  // drawn from the restored state (mirrors the tail of Init()).
  const uint64_t stream_base = StreamBase(phase_epoch_);
  matrix_.VisitByRow(
      [&](int, uint32_t, SparseMatrix<TopicId>::RowView row) {
        DrawDocProposals(stream_base, row);
      },
      options_.num_threads);
}

std::vector<TopicId> WarpLdaSampler::Assignments() const {
  std::vector<TopicId> out(matrix_.num_entries());
  for (uint64_t t = 0; t < out.size(); ++t) {
    out[t] = matrix_.entry_data(matrix_.csc_position(t));
  }
  return out;
}

void WarpLdaSampler::BeginPhase() {
  ck_fixed_ = ck_live_;
  for (auto& s : scratch_) {
    std::fill(s.ck_delta.begin(), s.ck_delta.end(), 0);
  }
}

void WarpLdaSampler::EndPhase() {
  for (auto& s : scratch_) {
    for (uint32_t k = 0; k < config_.num_topics; ++k) {
      ck_live_[k] += s.ck_delta[k];
    }
  }
  FlushScratchMetrics();
}

void WarpLdaSampler::BuildCounts(HashCount& counts,
                                 std::span<const TopicId> z) const {
  counts.Init(
      std::min<uint32_t>(config_.num_topics, 2 * static_cast<uint32_t>(z.size())));
  for (TopicId topic : z) counts.Inc(topic);
}

void WarpLdaSampler::BuildCounts(HashCount& counts,
                                 SparseMatrix<TopicId>::RowView row) const {
  counts.Init(std::min<uint32_t>(config_.num_topics, 2 * row.size()));
  for (uint32_t i = 0; i < row.size(); ++i) counts.Inc(row[i]);
}

template <typename Counts>
TopicId WarpLdaSampler::AcceptChain(ThreadScratch& s, const Counts& counts,
                                    TopicId current, const TopicId* props,
                                    uint32_t m,
                                    const std::vector<double>* prior_vec,
                                    double prior, uint64_t stream_base,
                                    uint64_t token) {
  int64_t* ck_delta = s.ck_delta.data();
  ++s.obs_tokens;
  Rng rng;
  bool seeded = false;
  for (uint32_t j = 0; j < m; ++j) {
    TopicId t = props[j];
    if (t == current) continue;
    ++s.obs_proposals;
    Trace(reinterpret_cast<const void*>(counts.SlotAddr(t)),
          sizeof(HashCount::Entry), /*random=*/true, /*write=*/false);
    const double prior_t = prior_vec ? (*prior_vec)[t] : prior;
    const double prior_s = prior_vec ? (*prior_vec)[current] : prior;
    // Eq. 7: delayed c_w/c_d and c_k snapshots on both sides. The expression
    // tree — (mul, mul) over a div — is replicated exactly by the batched
    // kernel (simd::ComputeAcceptRatios), keeping both paths bit-identical.
    double accept =
        (counts.Get(t) + prior_t) * (ck_fixed_[current] + beta_bar_) /
        ((counts.Get(current) + prior_s) * (ck_fixed_[t] + beta_bar_));
    bool take = accept >= 1.0;
    if (!take) {
      if (!seeded) {
        rng = StreamRng(stream_base, kTagAccept, token);
        seeded = true;
      }
      take = rng.NextBernoulli(accept);
    }
    if (take) {
      ++s.obs_accepts;
      --ck_delta[current];
      ++ck_delta[t];
      current = t;
    }
  }
  return current;
}

void WarpLdaSampler::FlushScratchMetrics() {
  uint64_t tokens = 0;
  uint64_t proposals = 0;
  uint64_t accepts = 0;
  uint64_t alias_builds = 0;
  for (auto& s : scratch_) {
    tokens += s.obs_tokens;
    proposals += s.obs_proposals;
    accepts += s.obs_accepts;
    alias_builds += s.obs_alias_builds;
    s.obs_tokens = s.obs_proposals = s.obs_accepts = s.obs_alias_builds = 0;
  }
  if (!obs::MetricsEnabled() || tokens + proposals + alias_builds == 0) return;
  const SamplerMetrics& m = SamplerMetrics::Get();
  m.tokens->Inc(tokens);
  m.proposals->Inc(proposals);
  m.accepts->Inc(accepts);
  m.alias_builds->Inc(alias_builds);
}

template <typename Counts>
void WarpLdaSampler::BuildAliasInto(ThreadScratch& scratch,
                                    const Counts& counts, AliasTable& alias) {
  // Alg. 2 builds the alias table over the post-acceptance C_wk: q_word ∝
  // C_wk + β as a mixture of this count-weighted table and the uniform β
  // branch. Entries are sorted by topic so the bin layout is a pure function
  // of the count values: the fused path (which patches the acceptance-time
  // snapshot with the move list) and the grid path (which patches the shared
  // column arena with the staged moves at the barrier) insert keys in
  // different orders yet load identical tables.
  ++scratch.obs_alias_builds;
  scratch.alias_entries.clear();
  counts.ForEachNonZero([&](uint32_t k, int32_t c) {
    scratch.alias_entries.emplace_back(k, static_cast<double>(c));
  });
  std::sort(scratch.alias_entries.begin(), scratch.alias_entries.end());
  alias.BuildSparse(scratch.alias_entries);
}

void WarpLdaSampler::DrawWordProposalsInto(TopicId* slot,
                                           const AliasTable& alias, Rng& rng,
                                           double count_prob) {
  const uint32_t m = std::max(1u, config_.mh_steps);
  const uint32_t k_topics = config_.num_topics;
  for (uint32_t j = 0; j < m; ++j) {
    slot[j] = rng.NextBernoulli(count_prob) ? alias.Sample(rng)
                                            : rng.NextInt(k_topics);
  }
}

void WarpLdaSampler::DrawWordProposalsForToken(ThreadScratch& scratch,
                                               uint64_t stream_base,
                                               uint64_t token,
                                               double count_prob) {
  const uint32_t m = std::max(1u, config_.mh_steps);
  Rng rng = StreamRng(stream_base, kTagPropose, token);
  DrawWordProposalsInto(&proposals_[token * m], scratch.alias, rng,
                        count_prob);
}

template <typename Values>
void WarpLdaSampler::DrawDocProposalsInto(TopicId* slot, const Values& values,
                                          uint32_t len, Rng& rng,
                                          double position_prob) {
  const uint32_t m = std::max(1u, config_.mh_steps);
  const uint32_t k_topics = config_.num_topics;
  const bool asymmetric = !config_.alpha_vector.empty();
  for (uint32_t j = 0; j < m; ++j) {
    if (rng.NextBernoulli(position_prob)) {
      slot[j] = values[rng.NextInt(len)];
    } else {
      slot[j] = asymmetric ? prior_alias_.Sample(rng) : rng.NextInt(k_topics);
    }
  }
}

void WarpLdaSampler::DrawDocProposalsForToken(
    uint64_t stream_base, uint64_t token, SparseMatrix<TopicId>::RowView row,
    double position_prob) {
  const uint32_t m = std::max(1u, config_.mh_steps);
  Rng rng = StreamRng(stream_base, kTagPropose, token);
  DrawDocProposalsInto(&proposals_[token * m], row, row.size(), rng,
                       position_prob);
}

void WarpLdaSampler::DrawDocProposals(uint64_t stream_base,
                                      SparseMatrix<TopicId>::RowView row) {
  const uint32_t len = row.size();
  if (len == 0) return;
  // q_doc ∝ C_dk + α_k as the mixture of §4.3: with probability L_d/(L_d+ᾱ)
  // random positioning into z_d, otherwise a draw from the prior (uniform
  // for symmetric α, alias table over α_k otherwise).
  const double position_prob =
      static_cast<double>(len) / (static_cast<double>(len) + alpha_bar_);
  for (uint32_t i = 0; i < len; ++i) {
    DrawDocProposalsForToken(stream_base, row.entry_index(i), row,
                             position_prob);
  }
}

void WarpLdaSampler::WordPhase() {
  if (grid_.open) {
    throw std::logic_error(
        "WarpLdaSampler: WordPhase() during an active grid sweep");
  }
  const uint32_t k_topics = config_.num_topics;
  const uint32_t m = std::max(1u, config_.mh_steps);
  const double beta = config_.beta;
  const uint64_t stream_base = StreamBase(++phase_epoch_);
  BeginPhase();

  matrix_.VisitByColumn(
      [&](int tid, uint32_t w, std::span<TopicId> z) {
        if (z.empty()) return;
        ThreadScratch& s = scratch_[tid];
        const uint32_t lw = static_cast<uint32_t>(z.size());
        const uint64_t base = matrix_.col_offset(w);

        // c_w on the fly (delayed snapshot for this word's acceptances).
        BuildCounts(s.counts, z);
        Trace(reinterpret_cast<const void*>(s.counts.slots().data()),
              s.counts.capacity() *
                  static_cast<uint32_t>(sizeof(HashCount::Entry)),
              /*random=*/true, /*write=*/true);

        // Accept the pending doc proposals against the snapshot; c_w is not
        // updated mid-scan, so all of this word's acceptances see the same
        // delayed counts (Alg. 2) and tokens stay order-independent. The net
        // moves are recorded so the post-acceptance c_w comes from replaying
        // them below — O(accepted) — instead of rescanning the column.
        s.moves.clear();
        for (uint32_t i = 0; i < lw; ++i) {
          const TopicId before = z[i];
          z[i] = AcceptChain(s, s.counts, z[i], &proposals_[(base + i) * m], m,
                             nullptr, beta, stream_base, base + i);
          if (z[i] != before) s.moves.emplace_back(before, z[i]);
        }

        // Fresh word proposals from the updated c_w: patch the snapshot with
        // the moves (an intermediate chain hop nets out — only the endpoints
        // matter), then build the order-stable alias table.
        for (const auto& [from, to] : s.moves) {
          s.counts.Dec(from);
          s.counts.Inc(to);
        }
        BuildAliasInto(s, s.counts, s.alias);
        const double count_prob =
            static_cast<double>(lw) /
            (static_cast<double>(lw) + beta * k_topics);
        for (uint32_t i = 0; i < lw; ++i) {
          DrawWordProposalsForToken(s, stream_base, base + i, count_prob);
        }
        TraceScopeEnd();
      },
      options_.num_threads);

  EndPhase();
}

void WarpLdaSampler::DocPhase() {
  if (grid_.open) {
    throw std::logic_error(
        "WarpLdaSampler: DocPhase() during an active grid sweep");
  }
  const uint32_t m = std::max(1u, config_.mh_steps);
  const std::vector<double>* alpha_vec =
      config_.alpha_vector.empty() ? nullptr : &config_.alpha_vector;
  const double alpha = config_.alpha;
  const uint64_t stream_base = StreamBase(++phase_epoch_);
  BeginPhase();

  matrix_.VisitByRow(
      [&](int tid, uint32_t, SparseMatrix<TopicId>::RowView row) {
        const uint32_t len = row.size();
        if (len == 0) return;
        ThreadScratch& s = scratch_[tid];

        // c_d on the fly (delayed snapshot for this document).
        BuildCounts(s.counts, row);
        Trace(reinterpret_cast<const void*>(s.counts.slots().data()),
              s.counts.capacity() *
                  static_cast<uint32_t>(sizeof(HashCount::Entry)),
              /*random=*/true, /*write=*/true);

        // Accept the pending word proposals (Eq. 7, π^word).
        for (uint32_t i = 0; i < len; ++i) {
          row[i] = AcceptChain(s, s.counts, row[i],
                               &proposals_[row.entry_index(i) * m], m,
                               alpha_vec, alpha, stream_base,
                               row.entry_index(i));
        }

        // Fresh doc proposals from the updated z_d.
        DrawDocProposals(stream_base, row);
        TraceScopeEnd();
      },
      options_.num_threads);

  EndPhase();
}

void WarpLdaSampler::Iterate() {
  WordPhase();
  DocPhase();
}

// --------------------------------------------------------------------------
// Grid execution. Stages defer their writes (accepted topics go to the
// calling worker's staged-move list, count updates to its ck-delta
// partition) and apply them at the EndStage barrier, so every block of a
// stage observes the same pre-stage state no matter the schedule. Combined
// with the per-token RNG streams this makes any grid — including the 1×1
// plan and the fused Iterate() — sample identically, on any number of
// workers: a block body reads only shared *immutable* span state (z, the
// count arenas, the column alias tables) and writes only its own tokens'
// proposal slots plus scratch_[worker], so concurrent blocks share no
// mutable memory (ParallelExecutor relies on exactly this).
//
// Stage fusion (StageFusion::kAuto) merges adjacent stages into one RunBlock
// pass per block where the write-set proof holds:
//  * [word-propose, doc-accept] is always legal: a block's word-propose
//    writes only its own tokens' proposal slots, and its doc-accept reads
//    only its own tokens' proposals — the same token set, written earlier in
//    the same call. z is stable across the pair (propose never writes z, and
//    accept stages its writes), so the row snapshots are schedule-invariant.
//  * [word-accept, word-propose] requires cols_ok (every column inside one
//    doc block): propose's alias table needs the whole column's
//    post-acceptance counts, which only that block computed.
//  * [doc-accept, doc-propose] requires rows_ok (every row inside one word
//    block): propose positions into the whole row's post-acceptance topics,
//    patched locally (ThreadScratch::local_row) before the barrier.
// Fusion never changes the samples — only which barriers exist.

void WarpLdaSampler::ReserveWorkers(uint32_t num_workers) {
  if (corpus_ == nullptr) {
    throw std::logic_error(
        "WarpLdaSampler: Init() must precede ReserveWorkers()");
  }
  if (grid_.open) {
    // Growing the pool is safe whenever no block is in flight — between
    // sweeps or at a stage barrier (where FinishSweep resumes a restored
    // sweep, possibly with more workers than the checkpointing run had).
    for (char ran : grid_.block_ran) {
      if (ran) {
        throw std::logic_error(
            "WarpLdaSampler: ReserveWorkers() with stage blocks in flight");
      }
    }
  }
  while (scratch_.size() < num_workers) {
    scratch_.emplace_back().ck_delta.assign(config_.num_topics, 0);
  }
}

void WarpLdaSampler::BeginSweep(const SweepPlan& plan) {
  if (corpus_ == nullptr) {
    throw std::logic_error("WarpLdaSampler: Init() must precede BeginSweep()");
  }
  if (grid_.open) {
    throw std::logic_error("WarpLdaSampler: a grid sweep is already active");
  }
  std::string error;
  if (!plan.Validate(corpus_->num_docs(), corpus_->num_words(), &error)) {
    throw std::invalid_argument("WarpLdaSampler: invalid SweepPlan: " + error);
  }
  if (!local_blocks_.empty() &&
      local_blocks_.size() !=
          static_cast<size_t>(plan.num_doc_blocks) * plan.num_word_blocks) {
    throw std::invalid_argument(
        "WarpLdaSampler: SetLocalBlocks mask sized for a different plan");
  }
  BuildGridIndices(plan);
  for (auto& s : scratch_) {
    std::fill(s.ck_delta.begin(), s.ck_delta.end(), 0);
    s.staged_moves.clear();
  }
  grid_.block_ran.assign(
      static_cast<size_t>(plan.num_doc_blocks) * plan.num_word_blocks, 0);
  // Mint both phase stream bases up front (the fused path's two ++epoch
  // draws). Checkpoints therefore carry identical bytes at a given barrier
  // regardless of which StageFusion setting produced them, and a restore
  // under either setting resumes the same trajectory.
  phase_epoch_ += 2;
  grid_.base_word = StreamBase(phase_epoch_ - 1);
  grid_.base_doc = StreamBase(phase_epoch_);
  grid_.col_filled = false;
  grid_.stage = SweepStage::kWordAccept;
  grid_.open = true;
  EnterSpan(SweepStage::kWordAccept);
}

void WarpLdaSampler::BuildGridIndices(const SweepPlan& plan) {
  if (grid_.indices_built && plan == grid_.plan) return;
  grid_.plan = plan;
  const uint32_t num_wb = plan.num_word_blocks;
  const uint32_t num_db = plan.num_doc_blocks;
  const size_t num_blocks = static_cast<size_t>(num_db) * num_wb;
  grid_.word_ix.assign(num_blocks, {});
  grid_.doc_ix.assign(num_blocks, {});
  grid_.cols_ok = true;
  grid_.rows_ok = true;

  // Per-entry doc-block map (scratch for the column grouping below).
  std::vector<uint32_t> entry_doc_block(matrix_.num_entries(), 0);
  for (DocId d = 0; d < corpus_->num_docs(); ++d) {
    const uint32_t b = plan.doc_block.empty() ? 0 : plan.doc_block[d];
    auto row = matrix_.row(d);
    for (uint32_t i = 0; i < row.size(); ++i) {
      entry_doc_block[row.entry_index(i)] = b;
    }
  }

  // Word axis: group each column's CSC positions by doc block, giving every
  // block its exact token list up front — the per-(block × column) rescan of
  // the whole column with a per-entry filter (P redundant passes on a P×P
  // plan) is gone.
  std::vector<std::vector<uint64_t>> buckets(num_db);
  for (WordId w = 0; w < corpus_->num_words(); ++w) {
    const uint32_t wb = plan.word_block.empty() ? 0 : plan.word_block[w];
    const uint64_t base = matrix_.col_offset(w);
    const uint64_t len = matrix_.col_data(w).size();
    if (len == 0) continue;
    for (auto& bucket : buckets) bucket.clear();
    for (uint64_t p = 0; p < len; ++p) {
      buckets[entry_doc_block[base + p]].push_back(base + p);
    }
    uint32_t blocks_hit = 0;
    for (uint32_t db = 0; db < num_db; ++db) {
      if (buckets[db].empty()) continue;
      ++blocks_hit;
      BlockIndex& ix = grid_.word_ix[static_cast<size_t>(db) * num_wb + wb];
      const uint32_t begin = static_cast<uint32_t>(ix.positions.size());
      ix.positions.insert(ix.positions.end(), buckets[db].begin(),
                          buckets[db].end());
      ix.segments.push_back(
          {w, begin, static_cast<uint32_t>(ix.positions.size())});
    }
    if (blocks_hit > 1) grid_.cols_ok = false;
  }

  // Doc axis: same grouping, rows by word block, preserving row order so a
  // rows_ok segment's positions line up with the row's own indices.
  buckets.assign(num_wb, {});
  std::vector<uint32_t> entry_word_block(matrix_.num_entries(), 0);
  for (WordId w = 0; w < corpus_->num_words(); ++w) {
    const uint32_t wb = plan.word_block.empty() ? 0 : plan.word_block[w];
    const uint64_t base = matrix_.col_offset(w);
    const uint64_t len = matrix_.col_data(w).size();
    for (uint64_t p = 0; p < len; ++p) entry_word_block[base + p] = wb;
  }
  for (DocId d = 0; d < corpus_->num_docs(); ++d) {
    const uint32_t db = plan.doc_block.empty() ? 0 : plan.doc_block[d];
    auto row = matrix_.row(d);
    if (row.size() == 0) continue;
    for (auto& bucket : buckets) bucket.clear();
    for (uint32_t i = 0; i < row.size(); ++i) {
      buckets[entry_word_block[row.entry_index(i)]].push_back(
          row.entry_index(i));
    }
    uint32_t blocks_hit = 0;
    for (uint32_t wb = 0; wb < num_wb; ++wb) {
      if (buckets[wb].empty()) continue;
      ++blocks_hit;
      BlockIndex& ix = grid_.doc_ix[static_cast<size_t>(db) * num_wb + wb];
      const uint32_t begin = static_cast<uint32_t>(ix.positions.size());
      ix.positions.insert(ix.positions.end(), buckets[wb].begin(),
                          buckets[wb].end());
      ix.segments.push_back(
          {d, begin, static_cast<uint32_t>(ix.positions.size())});
    }
    if (blocks_hit > 1) grid_.rows_ok = false;
  }
  grid_.indices_built = true;
}

int WarpLdaSampler::SpanLength(SweepStage s) const {
  if (options_.fusion == StageFusion::kNone) return 1;
  switch (s) {
    case SweepStage::kWordAccept:
      return grid_.cols_ok ? 2 : 1;
    case SweepStage::kWordPropose:
      return 2;  // [word-propose, doc-accept] is legal on every plan
    case SweepStage::kDocAccept:
      return grid_.rows_ok ? 2 : 1;
    default:
      return 1;
  }
}

void WarpLdaSampler::EnterSpan(SweepStage begin) {
  const int len = SpanLength(begin);
  // Snapshot refresh: any span containing an accept stage needs ck_fixed =
  // the fold state at its phase boundary. Refreshing at word-propose entry
  // (post word-accept fold; word-propose itself never reads it) keeps the
  // value — and hence the checkpoint bytes at the word-propose barrier —
  // the same whether doc-accept is fused into this span or runs later.
  // Doc-propose entry must NOT refresh: its barrier checkpoint carries the
  // doc-accept snapshot, not the post-doc-accept fold.
  if (begin != SweepStage::kDocPropose) ck_fixed_ = ck_live_;
  switch (begin) {
    case SweepStage::kWordAccept:
      // Unfused word-accept blocks read the shared column tables; the fused
      // [wa, wp] body builds its own per-column snapshot instead.
      if (len == 1) BuildColArena();
      break;
    case SweepStage::kWordPropose:
      // Post-acceptance column counts: patched in place at the word-accept
      // barrier, or rebuilt from z on the restore path (where z is already
      // post-acceptance).
      if (!grid_.col_filled) BuildColArena();
      BuildColAliases();
      if (len == 2) BuildRowArena();  // fused doc-accept reads rows
      break;
    case SweepStage::kDocAccept:
      BuildRowArena();
      break;
    default:
      break;
  }
}

void WarpLdaSampler::EnsureColArenaGeometry() {
  if (col_counts_.ready) return;
  std::vector<uint32_t> hints(corpus_->num_words());
  for (WordId w = 0; w < corpus_->num_words(); ++w) {
    hints[w] = std::min<uint32_t>(
        config_.num_topics,
        2 * static_cast<uint32_t>(matrix_.col_data(w).size()));
  }
  col_counts_.AllocateFromHints(hints);
}

void WarpLdaSampler::EnsureRowArenaGeometry() {
  if (row_counts_.ready) return;
  std::vector<uint32_t> hints(corpus_->num_docs());
  for (DocId d = 0; d < corpus_->num_docs(); ++d) {
    hints[d] = std::min<uint32_t>(config_.num_topics,
                                  2 * matrix_.row(d).size());
  }
  row_counts_.AllocateFromHints(hints);
}

void WarpLdaSampler::BuildColArena() {
  EnsureColArenaGeometry();
  col_counts_.ClearSlots();
  for (WordId w = 0; w < corpus_->num_words(); ++w) {
    auto z = matrix_.col_data(w);
    if (z.empty()) continue;
    FlatCounts counts = col_counts_.view(w);
    for (TopicId topic : z) counts.Inc(topic);
  }
  grid_.col_filled = true;
}

void WarpLdaSampler::BuildRowArena() {
  EnsureRowArenaGeometry();
  row_counts_.ClearSlots();
  // Row tables are only ever read by doc-accept block bodies, so a
  // SetLocalBlocks filter restricts the fill to the rows owned blocks
  // actually visit (unlike the column arena, which the word-accept barrier
  // patches for every block's moves and must stay complete).
  const std::vector<char> needed = LocalItemFilter(/*word_axis=*/false);
  for (DocId d = 0; d < corpus_->num_docs(); ++d) {
    auto row = matrix_.row(d);
    if (row.size() == 0) continue;
    if (!needed.empty() && !needed[d]) continue;
    FlatCounts counts = row_counts_.view(d);
    for (uint32_t i = 0; i < row.size(); ++i) counts.Inc(row[i]);
  }
}

void WarpLdaSampler::BuildColAliases() {
  col_alias_.resize(corpus_->num_words());
  // One order-stable build per column per sweep — not per (block × column);
  // built at the span barrier where every worker is quiescent, so borrowing
  // worker 0's entry scratch is safe. Under a SetLocalBlocks filter only the
  // columns an owned block will read are built: a distributed worker skips
  // the (V − V/P) tables whose propose work happens in other processes.
  const std::vector<char> needed = LocalItemFilter(/*word_axis=*/true);
  ThreadScratch& s = scratch_[0];
  for (WordId w = 0; w < corpus_->num_words(); ++w) {
    if (matrix_.col_data(w).empty()) continue;
    if (!needed.empty() && !needed[w]) continue;
    const FlatCounts counts = col_counts_.view(w);
    BuildAliasInto(s, counts, col_alias_[w]);
  }
}

void WarpLdaSampler::RunBlock(uint32_t doc_block, uint32_t word_block,
                              uint32_t worker) {
  if (!grid_.open) {
    throw std::logic_error("WarpLdaSampler: RunBlock() without BeginSweep()");
  }
  if (grid_.stage == SweepStage::kDone) {
    throw std::logic_error(
        "WarpLdaSampler: RunBlock() after all stages completed");
  }
  if (doc_block >= grid_.plan.num_doc_blocks ||
      word_block >= grid_.plan.num_word_blocks) {
    throw std::invalid_argument("WarpLdaSampler: block index out of range");
  }
  if (worker >= scratch_.size()) {
    throw std::invalid_argument(
        "WarpLdaSampler: worker id " + std::to_string(worker) +
        " out of range; ReserveWorkers() before the sweep");
  }
  char& ran =
      grid_.block_ran[static_cast<size_t>(doc_block) *
                          grid_.plan.num_word_blocks +
                      word_block];
  if (ran) {
    throw std::logic_error(std::string("WarpLdaSampler: block ran twice in ") +
                           ToString(grid_.stage) + " stage");
  }
  ran = 1;
  ThreadScratch& scratch = scratch_[worker];
  const int len = SpanLength(grid_.stage);
  switch (grid_.stage) {
    case SweepStage::kWordAccept:
      if (len == 2) {
        RunFusedWordPart(doc_block, word_block, scratch);
      } else {
        RunWordAcceptPart(doc_block, word_block, scratch);
      }
      break;
    case SweepStage::kWordPropose:
      RunWordProposePart(doc_block, word_block, scratch);
      // [wp, da]: this block's doc-accept reads exactly the proposals its
      // word-propose half just wrote (the block's token set is the same on
      // both axes), so no barrier is needed between them.
      if (len == 2) {
        RunDocAcceptPart(doc_block, word_block, scratch,
                         /*fused_propose=*/false);
      }
      break;
    case SweepStage::kDocAccept:
      RunDocAcceptPart(doc_block, word_block, scratch,
                       /*fused_propose=*/len == 2);
      break;
    case SweepStage::kDocPropose:
      RunDocProposePart(doc_block, word_block, scratch);
      break;
    case SweepStage::kDone:
      break;  // unreachable, checked above
  }
}

template <typename Counts>
void WarpLdaSampler::AcceptSegment(ThreadScratch& s, const Counts& counts,
                                   const uint64_t* positions, uint32_t n,
                                   const std::vector<double>* prior_vec,
                                   double prior, uint64_t stream_base,
                                   uint32_t move_item, TopicId* final_topics) {
  const uint32_t m = std::max(1u, config_.mh_steps);
  if (tracer_ != nullptr) {
    // The batched path elides the per-proposal slot probes the cache tracer
    // replays, so trace runs take the scalar reference chain token by token.
    for (uint32_t i = 0; i < n; ++i) {
      const uint64_t pos = positions[i];
      const TopicId before = matrix_.entry_data(pos);
      const TopicId after =
          AcceptChain(s, counts, before, &proposals_[pos * m], m, prior_vec,
                      prior, stream_base, pos);
      if (after != before) s.staged_moves.push_back({pos, move_item, before, after});
      if (final_topics != nullptr) final_topics[i] = after;
    }
    return;
  }
  const bool force_scalar = options_.force_scalar_kernels;
  if (s.bat_ca.size() < kAcceptChunk) {
    s.bat_ca.resize(kAcceptChunk);
    s.bat_cb.resize(kAcceptChunk);
    s.bat_cur.resize(kAcceptChunk);
    s.bat_ratio.resize(kAcceptChunk);
    s.bat_ge1.resize(kAcceptChunk);
    s.bat_seeded.resize(kAcceptChunk);
    s.bat_rng.resize(kAcceptChunk);
  }
  const size_t steps_cap = static_cast<size_t>(m) * kAcceptChunk;
  if (s.bat_ta.size() < steps_cap) {
    s.bat_ta.resize(steps_cap);
    s.bat_tb.resize(steps_cap);
    s.bat_topic.resize(steps_cap);
  }
  int64_t* ck_delta = s.ck_delta.data();
  for (uint32_t chunk = 0; chunk < n; chunk += kAcceptChunk) {
    const uint32_t nb = std::min(kAcceptChunk, n - chunk);
    const uint64_t* chunk_pos = positions + chunk;
    // Gather pass: every operand of every chain step, SoA per step. The
    // count table is a delayed snapshot — immutable for the whole stage —
    // so step j's operands can be fetched before steps 0..j-1 resolve.
    for (uint32_t t = 0; t < nb; ++t) {
      const uint64_t pos = chunk_pos[t];
      const TopicId cur = matrix_.entry_data(pos);
      s.bat_cur[t] = cur;
      s.bat_ca[t] = counts.Get(cur) + (prior_vec ? (*prior_vec)[cur] : prior);
      s.bat_cb[t] = ck_fixed_[cur] + beta_bar_;
      s.bat_seeded[t] = 0;
      const TopicId* props = &proposals_[pos * m];
      for (uint32_t j = 0; j < m; ++j) {
        const TopicId p = props[j];
        s.bat_topic[j * kAcceptChunk + t] = p;
        s.bat_ta[j * kAcceptChunk + t] =
            counts.Get(p) + (prior_vec ? (*prior_vec)[p] : prior);
        s.bat_tb[j * kAcceptChunk + t] = ck_fixed_[p] + beta_bar_;
      }
    }
    s.obs_tokens += nb;
    // Chain steps: vectorized ratio compute over the whole chunk, then a
    // sequential resolve that reproduces the scalar chain exactly — same
    // self-proposal skips, same lazy per-token stream seeding, same
    // Bernoulli consumption, and on accept the running (a, b) switch to the
    // target's gathered operands (legal because the snapshot is immutable).
    for (uint32_t j = 0; j < m; ++j) {
      const double* a_t = &s.bat_ta[static_cast<size_t>(j) * kAcceptChunk];
      const double* b_t = &s.bat_tb[static_cast<size_t>(j) * kAcceptChunk];
      const uint32_t* topic =
          &s.bat_topic[static_cast<size_t>(j) * kAcceptChunk];
      simd::ComputeAcceptRatios(nb, a_t, b_t, s.bat_ca.data(),
                                s.bat_cb.data(), s.bat_ratio.data(),
                                s.bat_ge1.data(), force_scalar);
      for (uint32_t t = 0; t < nb; ++t) {
        const TopicId p = topic[t];
        if (p == s.bat_cur[t]) continue;
        ++s.obs_proposals;
        bool take = s.bat_ge1[t] != 0;
        if (!take) {
          if (!s.bat_seeded[t]) {
            s.bat_rng[t] = StreamRng(stream_base, kTagAccept, chunk_pos[t]);
            s.bat_seeded[t] = 1;
          }
          take = s.bat_rng[t].NextBernoulli(s.bat_ratio[t]);
        }
        if (take) {
          ++s.obs_accepts;
          --ck_delta[s.bat_cur[t]];
          ++ck_delta[p];
          s.bat_cur[t] = p;
          s.bat_ca[t] = a_t[t];
          s.bat_cb[t] = b_t[t];
        }
      }
    }
    for (uint32_t t = 0; t < nb; ++t) {
      const uint64_t pos = chunk_pos[t];
      const TopicId before = matrix_.entry_data(pos);
      const TopicId after = s.bat_cur[t];
      if (after != before) s.staged_moves.push_back({pos, move_item, before, after});
      if (final_topics != nullptr) final_topics[chunk + t] = after;
    }
  }
}

void WarpLdaSampler::RunWordAcceptPart(uint32_t doc_block,
                                       uint32_t word_block,
                                       ThreadScratch& s) {
  const double beta = config_.beta;
  const BlockIndex& ix =
      grid_.word_ix[static_cast<size_t>(doc_block) *
                        grid_.plan.num_word_blocks +
                    word_block];
  for (const BlockSegment& seg : ix.segments) {
    // Shared pre-stage column table from the arena (immutable this stage).
    const FlatCounts counts = col_counts_.view(seg.item);
    AcceptSegment(s, counts, &ix.positions[seg.begin], seg.end - seg.begin,
                  nullptr, beta, grid_.base_word, seg.item,
                  /*final_topics=*/nullptr);
  }
}

void WarpLdaSampler::RunFusedWordPart(uint32_t doc_block, uint32_t word_block,
                                      ThreadScratch& s) {
  // [wa, wp] span (cols_ok): each segment is a whole column, so this block
  // alone computes the column's post-acceptance counts — patch the private
  // snapshot with the staged endpoints and build the alias table in place,
  // skipping both the shared arena and a barrier.
  const uint32_t k_topics = config_.num_topics;
  const double beta = config_.beta;
  const uint32_t m = std::max(1u, config_.mh_steps);
  const BlockIndex& ix =
      grid_.word_ix[static_cast<size_t>(doc_block) *
                        grid_.plan.num_word_blocks +
                    word_block];
  for (const BlockSegment& seg : ix.segments) {
    const uint32_t n = seg.end - seg.begin;
    const uint64_t* positions = &ix.positions[seg.begin];
    auto z = matrix_.col_data(seg.item);
    BuildCounts(s.counts, z);
    const size_t moves_before = s.staged_moves.size();
    AcceptSegment(s, s.counts, positions, n, nullptr, beta, grid_.base_word,
                  seg.item, /*final_topics=*/nullptr);
    for (size_t i = moves_before; i < s.staged_moves.size(); ++i) {
      s.counts.Dec(s.staged_moves[i].from);
      s.counts.Inc(s.staged_moves[i].to);
    }
    BuildAliasInto(s, s.counts, s.alias);
    const double lw = static_cast<double>(z.size());
    const double count_prob = lw / (lw + beta * k_topics);
    if (s.rng_states.size() < n) s.rng_states.resize(n);
    simd::DeriveStreamStates(grid_.base_word, kTagPropose, positions, n,
                             s.rng_states.data(),
                             options_.force_scalar_kernels);
    for (uint32_t i = 0; i < n; ++i) {
      Rng rng = simd::RngFromState(s.rng_states[i]);
      DrawWordProposalsInto(&proposals_[positions[i] * m], s.alias, rng,
                            count_prob);
    }
  }
}

void WarpLdaSampler::RunWordProposePart(uint32_t doc_block,
                                        uint32_t word_block,
                                        ThreadScratch& s) {
  const uint32_t k_topics = config_.num_topics;
  const double beta = config_.beta;
  const uint32_t m = std::max(1u, config_.mh_steps);
  const BlockIndex& ix =
      grid_.word_ix[static_cast<size_t>(doc_block) *
                        grid_.plan.num_word_blocks +
                    word_block];
  for (const BlockSegment& seg : ix.segments) {
    const uint32_t n = seg.end - seg.begin;
    const uint64_t* positions = &ix.positions[seg.begin];
    // Post-acceptance alias table, built once per column at the span entry.
    const AliasTable& alias = col_alias_[seg.item];
    const double lw = static_cast<double>(matrix_.col_data(seg.item).size());
    const double count_prob = lw / (lw + beta * k_topics);
    if (s.rng_states.size() < n) s.rng_states.resize(n);
    simd::DeriveStreamStates(grid_.base_word, kTagPropose, positions, n,
                             s.rng_states.data(),
                             options_.force_scalar_kernels);
    for (uint32_t i = 0; i < n; ++i) {
      Rng rng = simd::RngFromState(s.rng_states[i]);
      DrawWordProposalsInto(&proposals_[positions[i] * m], alias, rng,
                            count_prob);
    }
  }
}

void WarpLdaSampler::RunDocAcceptPart(uint32_t doc_block, uint32_t word_block,
                                      ThreadScratch& s, bool fused_propose) {
  const std::vector<double>* alpha_vec =
      config_.alpha_vector.empty() ? nullptr : &config_.alpha_vector;
  const double alpha = config_.alpha;
  const uint32_t m = std::max(1u, config_.mh_steps);
  const BlockIndex& ix =
      grid_.doc_ix[static_cast<size_t>(doc_block) *
                       grid_.plan.num_word_blocks +
                   word_block];
  for (const BlockSegment& seg : ix.segments) {
    const uint32_t n = seg.end - seg.begin;
    const uint64_t* positions = &ix.positions[seg.begin];
    const FlatCounts counts = row_counts_.view(seg.item);
    if (!fused_propose) {
      AcceptSegment(s, counts, positions, n, alpha_vec, alpha, grid_.base_doc,
                    seg.item, /*final_topics=*/nullptr);
      continue;
    }
    // [da, dp] span (rows_ok): the segment is the whole row in row order, so
    // the post-acceptance topics land in local_row and the propose half can
    // position into them before the barrier publishes the staged moves.
    if (s.local_row.size() < n) s.local_row.resize(n);
    AcceptSegment(s, counts, positions, n, alpha_vec, alpha, grid_.base_doc,
                  seg.item, s.local_row.data());
    const double position_prob =
        static_cast<double>(n) / (static_cast<double>(n) + alpha_bar_);
    if (s.rng_states.size() < n) s.rng_states.resize(n);
    simd::DeriveStreamStates(grid_.base_doc, kTagPropose, positions, n,
                             s.rng_states.data(),
                             options_.force_scalar_kernels);
    for (uint32_t i = 0; i < n; ++i) {
      Rng rng = simd::RngFromState(s.rng_states[i]);
      DrawDocProposalsInto(&proposals_[positions[i] * m], s.local_row.data(),
                           n, rng, position_prob);
    }
  }
}

void WarpLdaSampler::RunDocProposePart(uint32_t doc_block,
                                       uint32_t word_block,
                                       ThreadScratch& s) {
  const uint32_t m = std::max(1u, config_.mh_steps);
  const BlockIndex& ix =
      grid_.doc_ix[static_cast<size_t>(doc_block) *
                       grid_.plan.num_word_blocks +
                   word_block];
  for (const BlockSegment& seg : ix.segments) {
    const uint32_t n = seg.end - seg.begin;
    const uint64_t* positions = &ix.positions[seg.begin];
    auto row = matrix_.row(seg.item);
    const uint32_t len = row.size();
    // Positioning reads the whole row's post-barrier topics; this block
    // draws only for its own tokens.
    const double position_prob =
        static_cast<double>(len) / (static_cast<double>(len) + alpha_bar_);
    if (s.rng_states.size() < n) s.rng_states.resize(n);
    simd::DeriveStreamStates(grid_.base_doc, kTagPropose, positions, n,
                             s.rng_states.data(),
                             options_.force_scalar_kernels);
    for (uint32_t i = 0; i < n; ++i) {
      Rng rng = simd::RngFromState(s.rng_states[i]);
      DrawDocProposalsInto(&proposals_[positions[i] * m], row, len, rng,
                           position_prob);
    }
  }
}

void WarpLdaSampler::ApplyStagedMoves(bool patch_col_counts) {
  // O(moved tokens), not O(all tokens): each stage's accepted moves are the
  // only z writes. Values are schedule-independent — every position moves at
  // most once per stage, and the arena patches commute — so any worker
  // interleaving folds to the same state.
  for (auto& s : scratch_) {
    for (const StagedMove& mv : s.staged_moves) {
      matrix_.entry_data(mv.pos) = mv.to;
      if (patch_col_counts) {
        FlatCounts counts = col_counts_.view(mv.item);
        counts.Dec(mv.from);
        counts.Inc(mv.to);
      }
    }
    s.staged_moves.clear();
    // Fold the per-worker ck-delta partitions — the once-per-barrier
    // reduction that replaces a shared (contended) delta vector.
    for (uint32_t k = 0; k < config_.num_topics; ++k) {
      ck_live_[k] += s.ck_delta[k];
    }
    std::fill(s.ck_delta.begin(), s.ck_delta.end(), 0);
  }
}

void WarpLdaSampler::EndStage() {
  if (!grid_.open) {
    throw std::logic_error("WarpLdaSampler: EndStage() without BeginSweep()");
  }
  if (grid_.stage == SweepStage::kDone) {
    throw std::logic_error(
        "WarpLdaSampler: EndStage() after all stages completed");
  }
  size_t missing = 0;
  for (char ran : grid_.block_ran) missing += ran ? 0 : 1;
  if (missing > 0) {
    throw std::logic_error(
        "WarpLdaSampler: EndStage() in " + std::string(ToString(grid_.stage)) +
        " stage with " + std::to_string(missing) + " of " +
        std::to_string(grid_.block_ran.size()) + " blocks not run");
  }
  const SweepStage begin = grid_.stage;
  const int len = SpanLength(begin);
  const bool had_accept = begin == SweepStage::kWordAccept ||
                          begin == SweepStage::kDocAccept ||
                          (begin == SweepStage::kWordPropose && len == 2);
  if (had_accept) {
    // Patch the shared column tables in place only when the next span's
    // alias builds will read them (an unfused word-accept feeding
    // word-propose); everywhere else the moves only touch z.
    ApplyStagedMoves(
        /*patch_col_counts=*/begin == SweepStage::kWordAccept && len == 1);
  }
  grid_.stage = static_cast<SweepStage>(static_cast<int>(begin) + len);
  std::fill(grid_.block_ran.begin(), grid_.block_ran.end(), 0);
  if (grid_.stage != SweepStage::kDone) EnterSpan(grid_.stage);
  FlushScratchMetrics();  // workers are quiescent at the barrier
}

void WarpLdaSampler::AbortSweep() {
  if (!grid_.open) return;
  // Discard the aborted stage's staged moves and unfolded deltas; the live
  // state is whatever the last completed barrier applied, which keeps
  // matrix_ and ck_live_ consistent with each other. Pending proposals may
  // be stale — callers recover by running a fresh full sweep.
  for (auto& s : scratch_) {
    std::fill(s.ck_delta.begin(), s.ck_delta.end(), 0);
    s.staged_moves.clear();
  }
  grid_.stage = SweepStage::kDone;
  grid_.open = false;
}

void WarpLdaSampler::EndSweep() {
  if (!grid_.open) {
    throw std::logic_error("WarpLdaSampler: EndSweep() without BeginSweep()");
  }
  if (grid_.stage != SweepStage::kDone) {
    throw std::logic_error(
        std::string("WarpLdaSampler: EndSweep() while still in ") +
        ToString(grid_.stage) + " stage");
  }
  grid_.open = false;
}

bool WarpLdaSampler::CaptureSweepState(SweepCheckpoint* out) const {
  if (corpus_ == nullptr) return false;
  if (grid_.open) {
    // Only quiescent points are capturable: at a barrier every worker's
    // staged moves are applied and every ck-delta partition is folded (and
    // zeroed), so the live arrays below are the *whole* state. Mid-stage
    // they are not, and a checkpoint here would silently drop work.
    for (char ran : grid_.block_ran) {
      if (ran) return false;
    }
  }
  out->config = config_;
  // The sampler treats mh_steps == 0 as 1 everywhere; normalize so the
  // checkpoint's proposal count is self-consistent under validation.
  out->config.mh_steps = std::max(1u, config_.mh_steps);
  // An open sweep whose stages all completed (EndSweep still pending) is
  // state-identical to "between sweeps": everything is applied.
  const bool mid_sweep = grid_.open && grid_.stage != SweepStage::kDone;
  out->next_stage = mid_sweep ? grid_.stage : SweepStage::kWordAccept;
  out->plan = mid_sweep ? grid_.plan : SweepPlan::Trivial();
  out->phase_epoch = phase_epoch_;
  out->base_word = grid_.base_word;
  out->base_doc = grid_.base_doc;
  out->ck_fixed = ck_fixed_;
  out->assignments.resize(matrix_.num_entries());
  for (uint64_t e = 0; e < matrix_.num_entries(); ++e) {
    out->assignments[e] = matrix_.entry_data(e);  // CSC entry order
  }
  out->proposals = proposals_;
  return true;
}

bool WarpLdaSampler::RestoreSweepState(const SweepCheckpoint& state,
                                       std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = "WarpLdaSampler: " + message;
    return false;
  };
  if (corpus_ == nullptr) return fail("Init() must precede restore");
  if (grid_.open) return fail("restore during an active grid sweep");
  // Identity parameters must match the Init() config exactly — they shape
  // the RNG streams and the proposal layout, so a mismatch could not resume
  // the same trajectory. Priors are taken *from* the checkpoint (they drift
  // under hyper-parameter optimization).
  if (state.config.num_topics != config_.num_topics) {
    return fail("checkpoint has " + std::to_string(state.config.num_topics) +
                " topics, sampler has " + std::to_string(config_.num_topics));
  }
  if (state.config.mh_steps != std::max(1u, config_.mh_steps)) {
    return fail("checkpoint mh_steps " +
                std::to_string(state.config.mh_steps) +
                " does not match the sampler's");
  }
  if (state.config.seed != config_.seed) {
    return fail("checkpoint seed does not match the sampler's");
  }
  if (state.config.alpha_vector != config_.alpha_vector) {
    return fail("checkpoint asymmetric-prior vector does not match");
  }
  const uint64_t n = matrix_.num_entries();
  const uint64_t m = std::max(1u, config_.mh_steps);
  if (state.assignments.size() != n) {
    return fail("checkpoint token count " +
                std::to_string(state.assignments.size()) +
                " does not match the corpus (" + std::to_string(n) + ")");
  }
  if (state.proposals.size() != n * m) {
    return fail("checkpoint proposal count does not match");
  }
  if (state.ck_fixed.size() != config_.num_topics) {
    return fail("checkpoint ck snapshot size does not match");
  }
  for (TopicId z : state.assignments) {
    if (z >= config_.num_topics) return fail("assignment out of range");
  }
  for (TopicId z : state.proposals) {
    if (z >= config_.num_topics) return fail("proposal out of range");
  }
  const bool mid_sweep = state.next_stage != SweepStage::kWordAccept;
  if (mid_sweep) {
    std::string plan_error;
    if (!state.plan.Validate(corpus_->num_docs(), corpus_->num_words(),
                             &plan_error)) {
      return fail("checkpoint sweep plan does not fit the corpus: " +
                  plan_error);
    }
    if (!local_blocks_.empty() &&
        local_blocks_.size() != static_cast<size_t>(
                                    state.plan.num_doc_blocks) *
                                    state.plan.num_word_blocks) {
      return fail("SetLocalBlocks mask sized for a different plan");
    }
  }

  // Vector-aware prior refresh (SetPriors would overwrite the asymmetric ᾱ
  // with the symmetric product).
  config_.alpha = state.config.alpha;
  config_.beta = state.config.beta;
  alpha_bar_ = config_.alpha_bar();
  beta_bar_ = config_.beta * corpus_->num_words();
  std::fill(ck_live_.begin(), ck_live_.end(), 0);
  for (uint64_t e = 0; e < n; ++e) {
    matrix_.entry_data(e) = state.assignments[e];
    ++ck_live_[state.assignments[e]];
  }
  proposals_ = state.proposals;
  ck_fixed_ = state.ck_fixed;
  phase_epoch_ = state.phase_epoch;
  grid_.base_word = state.base_word;
  grid_.base_doc = state.base_doc;
  for (auto& s : scratch_) {
    std::fill(s.ck_delta.begin(), s.ck_delta.end(), 0);
    s.staged_moves.clear();
  }
  if (!mid_sweep) {
    // Between sweeps: proposals are the pending doc proposals the next word
    // phase consumes; nothing else to reopen.
    grid_.stage = SweepStage::kDone;
    grid_.open = false;
    return true;
  }
  // Reopen the sweep at the checkpointed barrier: rebuild the plan indices
  // and the span state EnterSpan would have prepared there. The snapshot
  // refresh inside EnterSpan is a no-op on this path — at an accept span's
  // entry barrier the checkpointed ck_fixed equals the fold state ck_live
  // was just rebuilt to — and the arenas are rebuilt from the restored z,
  // which is exactly the z the capturing run's arenas reflected.
  BuildGridIndices(state.plan);
  grid_.block_ran.assign(
      static_cast<size_t>(state.plan.num_doc_blocks) *
          state.plan.num_word_blocks,
      0);
  grid_.col_filled = false;
  grid_.stage = state.next_stage;
  grid_.open = true;
  if (state.next_stage != SweepStage::kDocPropose) {
    EnterSpan(state.next_stage);
  }
  return true;
}

// --------------------------------------------------------------------------
// Distributed execution: block deltas. Within a stage, a block's entire
// externally visible effect is (staged moves, own tokens' proposal slots) —
// z is untouched until the barrier and every other write lands in
// per-worker scratch. Capturing those two pieces and replaying them in a
// peer process that holds the same pre-stage state makes the peer's
// EndStage() fold bit-identical to having run the block locally: staged
// moves land in scratch (with their ck-delta net effect, intermediates of
// an MH chain cancel), and proposals scatter into the very slots the block
// would have written. Proposal order is the plan-derived segment position
// order, which every process computes identically from (plan, corpus).

bool WarpLdaSampler::SpanWritesProposals(SweepStage begin,
                                         bool* word_axis) const {
  switch (begin) {
    case SweepStage::kWordAccept:
      *word_axis = true;
      return SpanLength(begin) == 2;  // fused [wa, wp] draws word proposals
    case SweepStage::kWordPropose:
      // Word proposals always; a fused [wp, da] span's doc-accept half only
      // stages moves, so the axis stays word.
      *word_axis = true;
      return true;
    case SweepStage::kDocAccept:
      *word_axis = false;
      return SpanLength(begin) == 2;  // fused [da, dp] draws doc proposals
    case SweepStage::kDocPropose:
      *word_axis = false;
      return true;
    default:
      *word_axis = false;
      return false;
  }
}

std::vector<char> WarpLdaSampler::LocalItemFilter(bool word_axis) const {
  if (local_blocks_.empty()) return {};
  const auto& indices = word_axis ? grid_.word_ix : grid_.doc_ix;
  std::vector<char> needed(
      word_axis ? corpus_->num_words() : corpus_->num_docs(), 0);
  for (size_t b = 0; b < indices.size() && b < local_blocks_.size(); ++b) {
    if (!local_blocks_[b]) continue;
    for (const BlockSegment& seg : indices[b].segments) {
      needed[seg.item] = 1;
    }
  }
  return needed;
}

void WarpLdaSampler::SetLocalBlocks(const std::vector<char>& owned) {
  local_blocks_ = owned;
}

bool WarpLdaSampler::RunBlockCaptured(uint32_t doc_block, uint32_t word_block,
                                      uint32_t worker, GridBlockDelta* out) {
  if (!grid_.open || grid_.stage == SweepStage::kDone) {
    throw std::logic_error(
        "WarpLdaSampler: RunBlockCaptured() outside an active stage");
  }
  if (worker >= scratch_.size()) {
    throw std::invalid_argument(
        "WarpLdaSampler: worker id out of range; ReserveWorkers() first");
  }
  const SweepStage begin = grid_.stage;
  ThreadScratch& s = scratch_[worker];
  const size_t moves_before = s.staged_moves.size();
  RunBlock(doc_block, word_block, worker);
  out->stage = begin;
  out->doc_block = doc_block;
  out->word_block = word_block;
  out->moves.clear();
  out->moves.reserve(s.staged_moves.size() - moves_before);
  for (size_t i = moves_before; i < s.staged_moves.size(); ++i) {
    const StagedMove& mv = s.staged_moves[i];
    out->moves.push_back({mv.pos, mv.item, mv.from, mv.to});
  }
  out->proposals.clear();
  bool word_axis = false;
  if (SpanWritesProposals(begin, &word_axis)) {
    const BlockIndex& ix =
        (word_axis ? grid_.word_ix : grid_.doc_ix)
            [static_cast<size_t>(doc_block) * grid_.plan.num_word_blocks +
             word_block];
    const uint32_t m = std::max(1u, config_.mh_steps);
    out->proposals.reserve(ix.positions.size() * m);
    for (uint64_t pos : ix.positions) {
      for (uint32_t j = 0; j < m; ++j) {
        out->proposals.push_back(proposals_[pos * m + j]);
      }
    }
  }
  return true;
}

bool WarpLdaSampler::ApplyBlockDelta(const GridBlockDelta& delta,
                                     std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = "WarpLdaSampler: " + message;
    return false;
  };
  if (!grid_.open || grid_.stage == SweepStage::kDone) {
    return fail("ApplyBlockDelta() outside an active stage");
  }
  if (delta.stage != grid_.stage) {
    return fail(std::string("delta captured in ") + ToString(delta.stage) +
                " applied in " + ToString(grid_.stage) + " stage");
  }
  if (delta.doc_block >= grid_.plan.num_doc_blocks ||
      delta.word_block >= grid_.plan.num_word_blocks) {
    return fail("delta block index out of range");
  }
  char& ran =
      grid_.block_ran[static_cast<size_t>(delta.doc_block) *
                          grid_.plan.num_word_blocks +
                      delta.word_block];
  // Duplicate-frame idempotence: a redelivered delta for a block this stage
  // already ran (locally or injected) is acknowledged without reapplying —
  // applying twice would double its moves and ck updates.
  if (ran) return true;

  // Validate the whole delta before mutating anything, so a malformed frame
  // leaves the sampler untouched.
  const uint32_t k_topics = config_.num_topics;
  const uint64_t num_entries = matrix_.num_entries();
  // Moves carry the item AcceptSegment tagged them with: the column for the
  // word-accept stage (the barrier may patch the column arena through it),
  // the row for spans whose accept half runs on the doc axis.
  const bool word_items = delta.stage == SweepStage::kWordAccept;
  const uint64_t item_bound =
      word_items ? corpus_->num_words() : corpus_->num_docs();
  const bool stages_moves =
      delta.stage == SweepStage::kWordAccept ||
      delta.stage == SweepStage::kDocAccept ||
      (delta.stage == SweepStage::kWordPropose &&
       SpanLength(SweepStage::kWordPropose) == 2);
  if (!stages_moves && !delta.moves.empty()) {
    return fail("delta stages moves in a pure propose span");
  }
  for (const GridBlockDelta::Move& mv : delta.moves) {
    if (mv.pos >= num_entries) return fail("delta move position out of range");
    if (mv.from >= k_topics || mv.to >= k_topics) {
      return fail("delta move topic out of range");
    }
    if (mv.item >= item_bound) return fail("delta move item out of range");
    // z is stable for the whole span, so `from` must match the current
    // assignment — anything else means the peer ran from different state.
    if (matrix_.entry_data(mv.pos) != mv.from) {
      return fail("delta move disagrees with the current assignment");
    }
  }
  bool word_axis = false;
  const bool has_proposals = SpanWritesProposals(delta.stage, &word_axis);
  const BlockIndex& ix =
      (word_axis ? grid_.word_ix : grid_.doc_ix)
          [static_cast<size_t>(delta.doc_block) * grid_.plan.num_word_blocks +
           delta.word_block];
  const uint32_t m = std::max(1u, config_.mh_steps);
  const size_t expected_proposals =
      has_proposals ? ix.positions.size() * static_cast<size_t>(m) : 0;
  if (delta.proposals.size() != expected_proposals) {
    return fail("delta proposal count " +
                std::to_string(delta.proposals.size()) + " (expected " +
                std::to_string(expected_proposals) + ")");
  }
  for (uint32_t p : delta.proposals) {
    if (p >= k_topics) return fail("delta proposal topic out of range");
  }

  // Injected work lands in worker 0's scratch — the same commutative fold
  // EndStage() applies to local work (scratch_[0] always exists: Init sizes
  // the pool to at least one).
  ThreadScratch& s = scratch_[0];
  for (const GridBlockDelta::Move& mv : delta.moves) {
    s.staged_moves.push_back({mv.pos, mv.item, mv.from, mv.to});
    --s.ck_delta[mv.from];
    ++s.ck_delta[mv.to];
  }
  if (has_proposals) {
    size_t i = 0;
    for (uint64_t pos : ix.positions) {
      for (uint32_t j = 0; j < m; ++j) {
        proposals_[pos * m + j] = delta.proposals[i++];
      }
    }
  }
  ran = 1;
  return true;
}

}  // namespace warplda

#ifndef WARPLDA_CORE_SPARSE_MATRIX_H_
#define WARPLDA_CORE_SPARSE_MATRIX_H_

#include <cstdint>
#include <span>
#include <thread>
#include <vector>

namespace warplda {

/// The computational framework of paper §5.1 (Fig. 2): a sparse matrix whose
/// fixed structure holds mutable per-entry data, supporting row-wise and
/// column-wise visits with user-defined update functions.
///
/// Layout follows §5.2: entry data is stored once, contiguously in CSC order
/// (column-major), with each column's entries sorted by row id. Rows are
/// visited through an index array (the paper's P_CSR pointers) — indirect
/// accesses that still utilize full cache lines because every column is
/// consumed front-to-back during a row sweep. No transpose pass is needed.
///
/// Usage:
///   SparseMatrix<Topic> m;
///   m.Reset(D, V);
///   for (...) m.AddEntry(d, w, data);   // insertion must be row-major
///   m.Finalize();
///   m.VisitByColumn([&](int tid, uint32_t c, std::span<Topic> col) {...});
///   m.VisitByRow([&](int tid, uint32_t r, RowView row) {...});
///
/// Visits can run multi-threaded; distinct rows/columns never share entries,
/// so user functions only need thread-local scratch (paper §5.3.1).
template <typename Data>
class SparseMatrix {
 public:
  /// Indirect view of one row's entries (in ascending column order).
  class RowView {
   public:
    RowView(Data* data, const uint64_t* entries, uint32_t size)
        : data_(data), entries_(entries), size_(size) {}

    uint32_t size() const { return size_; }
    Data& operator[](uint32_t i) const { return data_[entries_[i]]; }
    /// CSC position of the i-th entry (stable across visits; callers use it
    /// to index side arrays parallel to the entry data).
    uint64_t entry_index(uint32_t i) const { return entries_[i]; }

   private:
    Data* data_;
    const uint64_t* entries_;
    uint32_t size_;
  };

  /// Clears the matrix and declares its dimensions.
  void Reset(uint32_t rows, uint32_t cols) {
    rows_ = rows;
    cols_ = cols;
    build_rows_.clear();
    build_cols_.clear();
    build_data_.clear();
    finalized_ = false;
  }

  /// Adds an entry at (r, c). Multiple entries per cell are allowed (a word
  /// occurring twice in a document is two entries). Must be called in
  /// row-major order (all of row 0, then row 1, …) so columns finalize
  /// sorted by row id; this is asserted cheaply in Finalize.
  void AddEntry(uint32_t r, uint32_t c, Data data = Data()) {
    build_rows_.push_back(r);
    build_cols_.push_back(c);
    build_data_.push_back(data);
  }

  /// Freezes the structure and builds the CSC layout plus row pointers.
  void Finalize();

  uint32_t num_rows() const { return rows_; }
  uint32_t num_cols() const { return cols_; }
  uint64_t num_entries() const { return data_.size(); }

  /// Contiguous data of column c (entries sorted by row id).
  std::span<Data> col_data(uint32_t c) {
    return {data_.data() + col_offsets_[c],
            static_cast<size_t>(col_offsets_[c + 1] - col_offsets_[c])};
  }

  /// CSC position of column c's first entry (columns are contiguous, so the
  /// i-th entry of col_data(c) lives at CSC position col_offset(c)+i).
  uint64_t col_offset(uint32_t c) const { return col_offsets_[c]; }

  RowView row(uint32_t r) {
    return RowView(data_.data(), row_entries_.data() + row_offsets_[r],
                   static_cast<uint32_t>(row_offsets_[r + 1] -
                                         row_offsets_[r]));
  }

  /// Entry data by CSC position.
  Data& entry_data(uint64_t csc_pos) { return data_[csc_pos]; }
  const Data& entry_data(uint64_t csc_pos) const { return data_[csc_pos]; }

  /// CSC position of the i-th inserted entry (insertion order == row-major
  /// token order), i.e. the row-to-column permutation.
  uint64_t csc_position(uint64_t insertion_index) const {
    return insertion_to_csc_[insertion_index];
  }

  /// Visits every column: op(thread_id, col, span<Data>). With num_threads>1
  /// columns are split into contiguous ranges whose *entry counts* (not
  /// column counts) are balanced — word frequencies are Zipfian, so naive
  /// equal-width ranges would leave most threads idle behind the one owning
  /// the head words (the load-balance concern of §5.3.2, applied to threads).
  template <typename Op>
  void VisitByColumn(Op&& op, uint32_t num_threads = 1) {
    ParallelFor(cols_, col_offsets_, num_threads, [&](int tid, uint32_t c) {
      op(tid, c, col_data(c));
    });
  }

  /// Visits every row: op(thread_id, row, RowView). Ranges are balanced by
  /// entry count, like VisitByColumn.
  template <typename Op>
  void VisitByRow(Op&& op, uint32_t num_threads = 1) {
    ParallelFor(rows_, row_offsets_, num_threads, [&](int tid, uint32_t r) {
      op(tid, r, row(r));
    });
  }

 private:
  // Runs fn over [0, n), splitting into contiguous ranges with roughly equal
  // entry counts using the offsets prefix-sum (offsets[i] = entries before
  // item i).
  template <typename Fn>
  static void ParallelFor(uint32_t n, const std::vector<uint64_t>& offsets,
                          uint32_t num_threads, Fn&& fn) {
    if (num_threads <= 1 || n < 2 * num_threads) {
      for (uint32_t i = 0; i < n; ++i) fn(0, i);
      return;
    }
    const uint64_t total = offsets[n];
    std::vector<uint32_t> bounds(num_threads + 1, n);
    bounds[0] = 0;
    uint32_t cursor = 0;
    for (uint32_t tid = 1; tid < num_threads; ++tid) {
      uint64_t target = total * tid / num_threads;
      while (cursor < n && offsets[cursor] < target) ++cursor;
      bounds[tid] = cursor;
    }
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (uint32_t tid = 0; tid < num_threads; ++tid) {
      uint32_t begin = bounds[tid];
      uint32_t end = bounds[tid + 1];
      threads.emplace_back([&fn, tid, begin, end] {
        for (uint32_t i = begin; i < end; ++i) fn(static_cast<int>(tid), i);
      });
    }
    for (auto& t : threads) t.join();
  }

  uint32_t rows_ = 0;
  uint32_t cols_ = 0;
  bool finalized_ = false;

  // Build-time staging (insertion order).
  std::vector<uint32_t> build_rows_;
  std::vector<uint32_t> build_cols_;
  std::vector<Data> build_data_;

  // Finalized layout.
  std::vector<Data> data_;               // CSC order
  std::vector<uint64_t> col_offsets_;    // cols_+1
  std::vector<uint64_t> row_offsets_;    // rows_+1
  std::vector<uint64_t> row_entries_;    // CSC positions, grouped by row
  std::vector<uint64_t> insertion_to_csc_;
};

template <typename Data>
void SparseMatrix<Data>::Finalize() {
  const uint64_t n = build_data_.size();

  col_offsets_.assign(cols_ + 1, 0);
  for (uint32_t c : build_cols_) ++col_offsets_[c + 1];
  for (uint32_t c = 0; c < cols_; ++c) col_offsets_[c + 1] += col_offsets_[c];

  row_offsets_.assign(rows_ + 1, 0);
  for (uint32_t r : build_rows_) ++row_offsets_[r + 1];
  for (uint32_t r = 0; r < rows_; ++r) row_offsets_[r + 1] += row_offsets_[r];

  data_.resize(n);
  insertion_to_csc_.resize(n);
  std::vector<uint64_t> col_cursor(col_offsets_.begin(),
                                   col_offsets_.end() - 1);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t pos = col_cursor[build_cols_[i]]++;
    data_[pos] = build_data_[i];
    insertion_to_csc_[i] = pos;
  }

  row_entries_.resize(n);
  std::vector<uint64_t> row_cursor(row_offsets_.begin(),
                                   row_offsets_.end() - 1);
  for (uint64_t i = 0; i < n; ++i) {
    row_entries_[row_cursor[build_rows_[i]]++] = insertion_to_csc_[i];
  }

  build_rows_.clear();
  build_rows_.shrink_to_fit();
  build_cols_.clear();
  build_cols_.shrink_to_fit();
  build_data_.clear();
  build_data_.shrink_to_fit();
  finalized_ = true;
}

}  // namespace warplda

#endif  // WARPLDA_CORE_SPARSE_MATRIX_H_

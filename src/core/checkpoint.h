#ifndef WARPLDA_CORE_CHECKPOINT_H_
#define WARPLDA_CORE_CHECKPOINT_H_

#include <string>
#include <vector>

#include "baselines/sampler.h"
#include "corpus/corpus.h"

namespace warplda {

/// Training checkpoint: everything needed to resume a run — the sampler
/// configuration, the iteration counter, and the full topic-assignment
/// state (document-major). Counts are derived, not stored.
struct TrainingCheckpoint {
  LdaConfig config;
  uint32_t iteration = 0;
  std::vector<TopicId> assignments;
};

/// Binary serialization. Returns false and fills *error on failure.
bool SaveCheckpoint(const TrainingCheckpoint& checkpoint,
                    const std::string& path, std::string* error);
bool LoadCheckpoint(const std::string& path, TrainingCheckpoint* checkpoint,
                    std::string* error);

/// Restores a sampler from a checkpoint: Init() with the stored config,
/// then SetAssignments. The corpus must be the one the checkpoint was
/// trained on (token count is validated).
bool RestoreSampler(Sampler& sampler, const Corpus& corpus,
                    const TrainingCheckpoint& checkpoint, std::string* error);

}  // namespace warplda

#endif  // WARPLDA_CORE_CHECKPOINT_H_

#ifndef WARPLDA_CORE_CHECKPOINT_H_
#define WARPLDA_CORE_CHECKPOINT_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "baselines/sampler.h"
#include "core/sweep_plan.h"
#include "corpus/corpus.h"

namespace warplda {

/// Durability subsystem: crash-safe, versioned, CRC-validated checkpoints
/// for every long-running training mode.
///
/// All files use the shared frame of util/checkpoint_io.h — magic, format
/// version, endianness tag, payload size (validated against the real file
/// size before any allocation), and a CRC-32 over the payload — and are
/// written atomically (temp file + fsync + rename), so a kill at any instant
/// leaves either the previous complete checkpoint or the new one, never a
/// torn file. Loads are strictly bounded and fully validated: every count is
/// checked against the remaining payload before memory is sized, priors must
/// be finite and positive, mh_steps nonzero, and every topic id in range.
///
/// Three artifact families build on the frame:
///  * TrainingCheckpoint — between-iterations state of any Sampler
///    (Save/LoadCheckpoint, RestoreSampler).
///  * SweepCheckpoint — the mid-sweep state of a grid-execution run,
///    captured at a stage barrier (GridSampler::CaptureSweepState via
///    ParallelExecutor's barrier hook) so a restored run resumes
///    bit-identical to an uninterrupted one (Save/LoadSweepCheckpoint,
///    GridSampler::RestoreSweepState).
///  * serving model chains — serve/ModelStore::CheckpointTo/RestoreFrom
///    persist the published model once plus small per-publish deltas.

/// Training checkpoint: everything needed to resume a run — the sampler
/// configuration, the iteration counter, and the full topic-assignment
/// state (document-major). Counts are derived, not stored.
struct TrainingCheckpoint {
  LdaConfig config;
  uint32_t iteration = 0;
  std::vector<TopicId> assignments;
};

/// Mid-sweep state of a grid-execution training run, captured at a stage
/// barrier — the instant EndStage() has applied a stage's staged writes and
/// folded every worker's ck-delta partition, so no per-worker state is in
/// flight. `next_stage == kWordAccept` means "between sweeps": the sweep
/// either has not begun or has fully completed; any other value names the
/// stage the restored sweep resumes at.
///
/// Restoring (GridSampler::RestoreSweepState) reproduces the uninterrupted
/// run bit-identically because everything the remaining stages read is here:
/// the applied assignments, the pending MH proposals, the acceptance-time
/// c_k snapshot, and the per-token RNG stream bases (phase epoch plus the
/// word/doc-phase bases), which is all a per-token-stream sampler needs —
/// per-worker scratch is empty at a barrier by construction.
struct SweepCheckpoint {
  LdaConfig config;        ///< sampler config, with the *current* priors
  uint32_t iteration = 0;  ///< fully completed sweeps before the open one
  SweepStage next_stage = SweepStage::kWordAccept;
  SweepPlan plan;  ///< the open sweep's grid (unused between sweeps)
  uint64_t phase_epoch = 0;  ///< RNG stream epoch counter
  uint64_t base_word = 0;    ///< word-phase per-token stream base
  uint64_t base_doc = 0;     ///< doc-phase per-token stream base
  /// Topic assignments in the sampler's internal CSC (word-major) entry
  /// order — NOT document-major like TrainingCheckpoint::assignments.
  std::vector<TopicId> assignments;
  /// Pending MH proposals, mh_steps per token, CSC entry order.
  std::vector<TopicId> proposals;
  /// Acceptance-time snapshot of the global topic counts c_k (size K).
  std::vector<int64_t> ck_fixed;
};

/// Binary serialization (frame kind kTrainingCheckpoint). Returns false and
/// fills *error on failure; Save leaves any existing file at `path` intact
/// when it fails.
bool SaveCheckpoint(const TrainingCheckpoint& checkpoint,
                    const std::string& path, std::string* error);
bool LoadCheckpoint(const std::string& path, TrainingCheckpoint* checkpoint,
                    std::string* error);

/// Binary serialization of a mid-sweep checkpoint (frame kind
/// kSweepCheckpoint). Same atomicity and validation contract.
bool SaveSweepCheckpoint(const SweepCheckpoint& checkpoint,
                         const std::string& path, std::string* error);
bool LoadSweepCheckpoint(const std::string& path, SweepCheckpoint* checkpoint,
                         std::string* error);

/// The payload codec behind Save/LoadSweepCheckpoint, exposed so the
/// distributed tier can ship a checkpoint over a socket (inside its own
/// framed message) without touching disk. Decode applies the full
/// validation battery — structural bounds, topic ranges, the ck-histogram
/// sum — exactly as the file loader does; `context` names the source in
/// error messages the way a path would.
void EncodeSweepCheckpointPayload(const SweepCheckpoint& checkpoint,
                                  std::vector<uint8_t>* payload);
bool DecodeSweepCheckpointPayload(const std::vector<uint8_t>& payload,
                                  const std::string& context,
                                  SweepCheckpoint* checkpoint,
                                  std::string* error);

/// Restores a sampler from a checkpoint: Init() with the stored config,
/// then SetAssignments. The corpus must be the one the checkpoint was
/// trained on (token count is validated).
bool RestoreSampler(Sampler& sampler, const Corpus& corpus,
                    const TrainingCheckpoint& checkpoint, std::string* error);

/// Background checkpoint writer: moves the serialize + write + fsync of
/// checkpoint saves off the training thread onto one dedicated writer
/// thread, so a stage barrier pays only the in-memory capture (the moved-in
/// checkpoint IS the write buffer — Submit takes it by value and the barrier
/// returns while the writer owns it).
///
/// Ordering and durability semantics match the synchronous path exactly:
///  * one writer thread, FIFO — files land on disk in submit order, through
///    the same atomic WriteFrame (temp + fsync + rename);
///  * each item's `done` callback runs on the writer thread immediately
///    after ITS file is durable and before the next item is dequeued, so at
///    callback time the newest file on disk is that very checkpoint (the
///    kill-and-resume harness SIGKILLs inside this callback and relies on
///    exactly that); a failed write skips its callback, mirroring the sync
///    path where the save threw before the hook ran;
///  * at most `max_pending` submissions are in flight (double buffering by
///    default) — Submit blocks when the queue is full, which also bounds
///    how far training can run ahead of durability.
///
/// The first write failure is latched: ok()/Flush() report it, and every
/// later submission is still written (a transient disk error should not
/// discard subsequent checkpoints). Callbacks must not throw — a throwing
/// callback is caught and latched as an error. The destructor drains the
/// queue silently (exception-path safety); call Flush() and check it on the
/// success path.
class AsyncCheckpointWriter {
 public:
  using Completion = std::function<void()>;

  explicit AsyncCheckpointWriter(size_t max_pending = 2);
  ~AsyncCheckpointWriter();

  AsyncCheckpointWriter(const AsyncCheckpointWriter&) = delete;
  AsyncCheckpointWriter& operator=(const AsyncCheckpointWriter&) = delete;

  /// Enqueues a checkpoint for writing to `path`. Blocks while `max_pending`
  /// submissions are already in flight. `done` (optional) runs on the writer
  /// thread once the file is durable.
  void Submit(SweepCheckpoint checkpoint, std::string path,
              Completion done = nullptr);
  void Submit(TrainingCheckpoint checkpoint, std::string path,
              Completion done = nullptr);

  /// Blocks until every submitted checkpoint is durable (or failed). Returns
  /// false and fills `*error` (when non-null) if any write has failed.
  bool Flush(std::string* error);

  /// Non-blocking: false (and `*error`) once any write has failed.
  bool ok(std::string* error = nullptr) const;

 private:
  struct Item {
    bool is_sweep = false;
    SweepCheckpoint sweep;
    TrainingCheckpoint training;
    std::string path;
    Completion done;
  };

  void WriterLoop();
  void Enqueue(Item item);

  size_t max_pending_;
  mutable std::mutex mutex_;
  std::condition_variable cv_space_;  // Submit waits for queue room
  std::condition_variable cv_idle_;   // Flush waits for queue empty + idle
  std::condition_variable cv_work_;   // writer waits for items
  std::deque<Item> queue_;            // guarded by mutex_
  bool writing_ = false;              // an item is being written
  bool shutdown_ = false;
  std::string first_error_;           // latched first failure, "" = none
  std::thread writer_;
};

}  // namespace warplda

#endif  // WARPLDA_CORE_CHECKPOINT_H_

#ifndef WARPLDA_CORE_CHECKPOINT_H_
#define WARPLDA_CORE_CHECKPOINT_H_

#include <string>
#include <vector>

#include "baselines/sampler.h"
#include "core/sweep_plan.h"
#include "corpus/corpus.h"

namespace warplda {

/// Durability subsystem: crash-safe, versioned, CRC-validated checkpoints
/// for every long-running training mode.
///
/// All files use the shared frame of util/checkpoint_io.h — magic, format
/// version, endianness tag, payload size (validated against the real file
/// size before any allocation), and a CRC-32 over the payload — and are
/// written atomically (temp file + fsync + rename), so a kill at any instant
/// leaves either the previous complete checkpoint or the new one, never a
/// torn file. Loads are strictly bounded and fully validated: every count is
/// checked against the remaining payload before memory is sized, priors must
/// be finite and positive, mh_steps nonzero, and every topic id in range.
///
/// Three artifact families build on the frame:
///  * TrainingCheckpoint — between-iterations state of any Sampler
///    (Save/LoadCheckpoint, RestoreSampler).
///  * SweepCheckpoint — the mid-sweep state of a grid-execution run,
///    captured at a stage barrier (GridSampler::CaptureSweepState via
///    ParallelExecutor's barrier hook) so a restored run resumes
///    bit-identical to an uninterrupted one (Save/LoadSweepCheckpoint,
///    GridSampler::RestoreSweepState).
///  * serving model chains — serve/ModelStore::CheckpointTo/RestoreFrom
///    persist the published model once plus small per-publish deltas.

/// Training checkpoint: everything needed to resume a run — the sampler
/// configuration, the iteration counter, and the full topic-assignment
/// state (document-major). Counts are derived, not stored.
struct TrainingCheckpoint {
  LdaConfig config;
  uint32_t iteration = 0;
  std::vector<TopicId> assignments;
};

/// Mid-sweep state of a grid-execution training run, captured at a stage
/// barrier — the instant EndStage() has applied a stage's staged writes and
/// folded every worker's ck-delta partition, so no per-worker state is in
/// flight. `next_stage == kWordAccept` means "between sweeps": the sweep
/// either has not begun or has fully completed; any other value names the
/// stage the restored sweep resumes at.
///
/// Restoring (GridSampler::RestoreSweepState) reproduces the uninterrupted
/// run bit-identically because everything the remaining stages read is here:
/// the applied assignments, the pending MH proposals, the acceptance-time
/// c_k snapshot, and the per-token RNG stream bases (phase epoch plus the
/// word/doc-phase bases), which is all a per-token-stream sampler needs —
/// per-worker scratch is empty at a barrier by construction.
struct SweepCheckpoint {
  LdaConfig config;        ///< sampler config, with the *current* priors
  uint32_t iteration = 0;  ///< fully completed sweeps before the open one
  SweepStage next_stage = SweepStage::kWordAccept;
  SweepPlan plan;  ///< the open sweep's grid (unused between sweeps)
  uint64_t phase_epoch = 0;  ///< RNG stream epoch counter
  uint64_t base_word = 0;    ///< word-phase per-token stream base
  uint64_t base_doc = 0;     ///< doc-phase per-token stream base
  /// Topic assignments in the sampler's internal CSC (word-major) entry
  /// order — NOT document-major like TrainingCheckpoint::assignments.
  std::vector<TopicId> assignments;
  /// Pending MH proposals, mh_steps per token, CSC entry order.
  std::vector<TopicId> proposals;
  /// Acceptance-time snapshot of the global topic counts c_k (size K).
  std::vector<int64_t> ck_fixed;
};

/// Binary serialization (frame kind kTrainingCheckpoint). Returns false and
/// fills *error on failure; Save leaves any existing file at `path` intact
/// when it fails.
bool SaveCheckpoint(const TrainingCheckpoint& checkpoint,
                    const std::string& path, std::string* error);
bool LoadCheckpoint(const std::string& path, TrainingCheckpoint* checkpoint,
                    std::string* error);

/// Binary serialization of a mid-sweep checkpoint (frame kind
/// kSweepCheckpoint). Same atomicity and validation contract.
bool SaveSweepCheckpoint(const SweepCheckpoint& checkpoint,
                         const std::string& path, std::string* error);
bool LoadSweepCheckpoint(const std::string& path, SweepCheckpoint* checkpoint,
                         std::string* error);

/// Restores a sampler from a checkpoint: Init() with the stored config,
/// then SetAssignments. The corpus must be the one the checkpoint was
/// trained on (token count is validated).
bool RestoreSampler(Sampler& sampler, const Corpus& corpus,
                    const TrainingCheckpoint& checkpoint, std::string* error);

}  // namespace warplda

#endif  // WARPLDA_CORE_CHECKPOINT_H_

#ifndef WARPLDA_CORE_INFERENCE_H_
#define WARPLDA_CORE_INFERENCE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/mh_sweep.h"
#include "corpus/corpus.h"
#include "eval/topic_model.h"
#include "util/alias_table.h"
#include "util/rng.h"

namespace warplda {

/// Folds unseen documents into a trained model using WarpLDA's O(1)
/// Metropolis-Hastings machinery with the topics held fixed: proposals come
/// from q_word ∝ C_wk+β (a per-word alias table, built lazily and cached)
/// and q_doc ∝ C_dk+α (random positioning), and acceptance targets
/// p(z=k) ∝ (C_dk+α)·φ̂_wk. The chain itself is the shared MhInferTheta
/// sweep (core/mh_sweep.h), also used by the serving engine.
///
/// This is the "fast sampler for topic assignments" application the paper's
/// conclusion points at: serving-time inference without touching the model.
///
/// The model is held by shared_ptr so a publisher may drop or replace its
/// copy while an Inferencer is mid-document (the serving hot-swap pattern);
/// the snapshot this Inferencer was built on stays valid for its lifetime.
///
/// Not thread-safe (mutable lazy caches + an owned Rng); for concurrent
/// serving use serve::SharedInferenceEngine, which shares one immutable
/// prebuilt snapshot across workers.
class Inferencer {
 public:
  explicit Inferencer(std::shared_ptr<const TopicModel> model,
                      const InferenceOptions& options = {});

  /// Convenience for non-serving callers: deep-copies `model` into a private
  /// snapshot, so the reference need not outlive the Inferencer. The copy is
  /// O(model) — fine for the example/test scale; prefer the shared_ptr
  /// overload (no copy) when the model is large or constructed repeatedly.
  explicit Inferencer(const TopicModel& model,
                      const InferenceOptions& options = {});

  /// Eagerly builds every per-word alias table and φ̂ row. Without this the
  /// caches fill lazily on first use, which is fine offline but shows up as
  /// a first-request latency spike when serving — publishers should pay the
  /// cost at publish time instead.
  void Prebuild();

  /// Returns the document's topic proportions θ̂ (length K, sums to 1).
  /// Words with id >= model.num_words() are ignored.
  std::vector<double> InferTheta(std::span<const WordId> words);
  std::vector<double> InferTheta(const std::vector<WordId>& words) {
    return InferTheta(std::span<const WordId>(words));
  }

  /// Most probable topic for the document (argmax of InferTheta).
  TopicId MostLikelyTopic(std::span<const WordId> words);

  /// The snapshot this Inferencer samples against.
  const std::shared_ptr<const TopicModel>& model() const { return model_; }

 private:
  /// ModelView over the lazy caches for the shared MhInferTheta sweep.
  struct LazyView;

  const AliasTable& WordAlias(WordId w);
  void BuildPhiRow(WordId w);

  std::shared_ptr<const TopicModel> model_;
  InferenceOptions options_;
  Rng rng_;
  double beta_bar_ = 0.0;
  std::vector<AliasTable> word_alias_;    // lazy, one per seen word
  std::vector<double> word_count_prob_;   // P(alias branch) per word
  std::vector<std::vector<double>> phi_;  // lazy dense φ̂ rows
};

}  // namespace warplda

#endif  // WARPLDA_CORE_INFERENCE_H_

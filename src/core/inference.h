#ifndef WARPLDA_CORE_INFERENCE_H_
#define WARPLDA_CORE_INFERENCE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/mh_sweep.h"
#include "corpus/corpus.h"
#include "eval/topic_model.h"
#include "util/alias_table.h"
#include "util/rng.h"

namespace warplda {

/// Flat-arena store of dense φ̂ rows plus the per-word proposal state
/// (alias table, count-branch probability).
///
/// One V×K allocation with implicit row offsets (row w starts at w·K)
/// instead of V separate heap-allocated row vectors: no per-word allocation,
/// no pointer chase to reach a row, and adjacent rows are adjacent in memory.
/// Rows may be built lazily one word at a time (Inferencer) or eagerly all at
/// once (the dense serve::ModelSnapshot layout); both paths funnel through
/// the same FillPhiRow/BuildWordProposal builders, so the smoothing and the
/// proposal mixture cannot drift between offline and serving inference.
///
/// The untouched tail of a lazily used table costs only virtual address
/// space: pages of `phi_` are not committed until a row is written.
class DensePhiTable {
 public:
  /// Sizes the arena for `num_words` rows of `num_topics` doubles and marks
  /// every row unbuilt. Invalidates previously returned row/alias pointers.
  void Reset(WordId num_words, uint32_t num_topics);

  bool row_built(WordId w) const { return built_[w] != 0; }

  /// Builds word w's φ̂ row and proposal alias if not yet built. Idempotent.
  void EnsureRow(const TopicModel& model, WordId w, double beta_bar);

  /// Builds every row eagerly (the publish-time prebuild).
  void BuildAll(const TopicModel& model, double beta_bar);

  /// Row w's dense φ̂ (length num_topics). Valid after EnsureRow/BuildAll;
  /// stable until the next Reset.
  const double* row(WordId w) const {
    return phi_.get() + static_cast<size_t>(w) * num_topics_;
  }

  /// Probability that word w's proposal uses the count mass (alias branch).
  double count_prob(WordId w) const { return count_prob_[w]; }

  /// Prebuilt alias table over the count mass of q_word for word w. The
  /// reference is stable until the next Reset.
  const AliasTable& alias(WordId w) const { return alias_[w]; }

  WordId num_words() const { return static_cast<WordId>(built_.size()); }
  uint32_t num_topics() const { return num_topics_; }

  /// Heap footprint of the arena and its alias tables, in bytes.
  size_t MemoryBytes() const;

 private:
  uint32_t num_topics_ = 0;
  /// V×K flat, row w at offset w·K. Deliberately uninitialized storage
  /// (not a zero-filled vector): a row's bytes are first touched by
  /// EnsureRow, so unbuilt rows never commit physical pages. `built_`
  /// gates every read.
  std::unique_ptr<double[]> phi_;
  std::vector<uint8_t> built_;    // per row: has EnsureRow run?
  std::vector<AliasTable> alias_;
  std::vector<double> count_prob_;
};

/// Folds unseen documents into a trained model using WarpLDA's O(1)
/// Metropolis-Hastings machinery with the topics held fixed: proposals come
/// from q_word ∝ C_wk+β (a per-word alias table, built lazily and cached)
/// and q_doc ∝ C_dk+α (random positioning), and acceptance targets
/// p(z=k) ∝ (C_dk+α)·φ̂_wk. The chain itself is the shared MhInferTheta
/// sweep (core/mh_sweep.h), also used by the serving engine.
///
/// This is the "fast sampler for topic assignments" application the paper's
/// conclusion points at: serving-time inference without touching the model.
///
/// The model is held by shared_ptr so a publisher may drop or replace its
/// copy while an Inferencer is mid-document (the serving hot-swap pattern);
/// the snapshot this Inferencer was built on stays valid for its lifetime.
///
/// Not thread-safe (mutable lazy caches + an owned Rng); for concurrent
/// serving use serve::SharedInferenceEngine, which shares one immutable
/// prebuilt snapshot across workers.
class Inferencer {
 public:
  explicit Inferencer(std::shared_ptr<const TopicModel> model,
                      const InferenceOptions& options = {});

  /// Convenience for non-serving callers: deep-copies `model` into a private
  /// snapshot, so the reference need not outlive the Inferencer. The copy is
  /// O(model) — fine for the example/test scale; prefer the shared_ptr
  /// overload (no copy) when the model is large or constructed repeatedly.
  explicit Inferencer(const TopicModel& model,
                      const InferenceOptions& options = {});

  /// Eagerly builds every per-word alias table and φ̂ row. Without this the
  /// caches fill lazily on first use, which is fine offline but shows up as
  /// a first-request latency spike when serving — publishers should pay the
  /// cost at publish time instead.
  void Prebuild();

  /// Returns the document's topic proportions θ̂ (length K, sums to 1).
  /// Words with id >= model.num_words() are ignored.
  std::vector<double> InferTheta(std::span<const WordId> words);
  std::vector<double> InferTheta(const std::vector<WordId>& words) {
    return InferTheta(std::span<const WordId>(words));
  }

  /// Most probable topic for the document (argmax of InferTheta).
  TopicId MostLikelyTopic(std::span<const WordId> words);

  /// The snapshot this Inferencer samples against.
  const std::shared_ptr<const TopicModel>& model() const { return model_; }

 private:
  /// ModelView over the lazy caches for the shared MhInferTheta sweep.
  struct LazyView;

  std::shared_ptr<const TopicModel> model_;
  InferenceOptions options_;
  Rng rng_;
  double beta_bar_ = 0.0;
  DensePhiTable table_;  // lazy flat-arena φ̂ + proposal caches
};

}  // namespace warplda

#endif  // WARPLDA_CORE_INFERENCE_H_

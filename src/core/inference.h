#ifndef WARPLDA_CORE_INFERENCE_H_
#define WARPLDA_CORE_INFERENCE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "corpus/corpus.h"
#include "eval/topic_model.h"
#include "util/alias_table.h"
#include "util/rng.h"

namespace warplda {

/// Options for unseen-document inference.
struct InferenceOptions {
  uint32_t iterations = 30;  ///< MH sweeps over the document
  uint32_t mh_steps = 2;     ///< proposals per token per sweep
  uint64_t seed = 99;
};

/// Folds unseen documents into a trained model using WarpLDA's O(1)
/// Metropolis-Hastings machinery with the topics held fixed: proposals come
/// from q_word ∝ C_wk+β (a per-word alias table, built lazily and cached)
/// and q_doc ∝ C_dk+α (random positioning), and acceptance targets
/// p(z=k) ∝ (C_dk+α)·φ̂_wk.
///
/// This is the "fast sampler for topic assignments" application the paper's
/// conclusion points at: serving-time inference without touching the model.
class Inferencer {
 public:
  explicit Inferencer(const TopicModel& model,
                      const InferenceOptions& options = {});

  /// Returns the document's topic proportions θ̂ (length K, sums to 1).
  /// Words with id >= model.num_words() are ignored.
  std::vector<double> InferTheta(std::span<const WordId> words);
  std::vector<double> InferTheta(const std::vector<WordId>& words) {
    return InferTheta(std::span<const WordId>(words));
  }

  /// Most probable topic for the document (argmax of InferTheta).
  TopicId MostLikelyTopic(std::span<const WordId> words);

 private:
  const AliasTable& WordAlias(WordId w);
  double Phi(WordId w, TopicId k) const;

  const TopicModel& model_;
  InferenceOptions options_;
  Rng rng_;
  double beta_bar_ = 0.0;
  std::vector<AliasTable> word_alias_;    // lazy, one per seen word
  std::vector<double> word_count_prob_;   // P(alias branch) per word
  std::vector<std::vector<double>> phi_;  // lazy dense φ̂ rows
};

}  // namespace warplda

#endif  // WARPLDA_CORE_INFERENCE_H_

#include "core/simd_kernels.h"

// All SIMD intrinsics in the library live in this translation unit (enforced
// by warplint-scalar-ref): the rest of src/core stays portable C++, and every
// vector kernel here has a *Scalar reference twin that the bit-identity test
// matrix (grid ≡ fused at 1/2/8 threads) runs against via
// WarpLdaOptions::force_scalar_kernels.
//
// The build deliberately carries no -march flags, so __AVX2__ is never
// defined globally; the vector paths are compiled with function-level
// __attribute__((target("avx2"))) and selected once at runtime via
// __builtin_cpu_supports. Dispatch cost is one predictable branch per batch,
// not per token.

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define WARPLDA_SIMD_X86 1
#include <immintrin.h>
#endif

namespace warplda {
namespace simd {

namespace {

constexpr uint64_t kGamma = 0x9E3779B97F4A7C15ULL;
constexpr uint64_t kMix1 = 0xBF58476D1CE4E5B9ULL;
constexpr uint64_t kMix2 = 0x94D049BB133111EBULL;

#if WARPLDA_SIMD_X86

bool DetectAvx2() { return __builtin_cpu_supports("avx2") != 0; }

/// 64-bit lane-wise multiply (AVX2 has no _mm256_mullo_epi64):
/// lo(a*b) = lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32).
__attribute__((target("avx2"))) inline __m256i MulLo64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross1 = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  const __m256i cross2 = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
  const __m256i hi =
      _mm256_slli_epi64(_mm256_add_epi64(cross1, cross2), 32);
  return _mm256_add_epi64(lo, hi);
}

/// SplitMix64 finalizer, 4 lanes at once. Bit-identical to util/rng.h's
/// scalar SplitMix64 (same constants, same shifts) minus the += kGamma step,
/// which callers apply to their running counter first.
__attribute__((target("avx2"))) inline __m256i Mix64(__m256i x) {
  x = MulLo64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
              _mm256_set1_epi64x(static_cast<int64_t>(kMix1)));
  x = MulLo64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
              _mm256_set1_epi64x(static_cast<int64_t>(kMix2)));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

__attribute__((target("avx2"))) void DeriveStreamStatesAvx2(
    uint64_t stream_base, uint32_t tag, const uint64_t* tokens, size_t n,
    RngState* out) {
  const uint64_t base = stream_base ^ (static_cast<uint64_t>(tag) << 56);
  const __m256i base_v = _mm256_set1_epi64x(static_cast<int64_t>(base));
  const __m256i gamma_v = _mm256_set1_epi64x(static_cast<int64_t>(kGamma));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i tok = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(tokens + i));
    // seed = SplitMix64(base ^ token)
    __m256i x = _mm256_add_epi64(_mm256_xor_si256(base_v, tok), gamma_v);
    const __m256i seed = Mix64(x);
    // Rng::Seed expansion: 4 more gamma-advance + mix rounds.
    alignas(32) uint64_t lanes[4][4];
    x = seed;
    for (int s = 0; s < 4; ++s) {
      x = _mm256_add_epi64(x, gamma_v);
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes[s]), Mix64(x));
    }
    for (int lane = 0; lane < 4; ++lane) {
      out[i + lane] = {lanes[0][lane], lanes[1][lane], lanes[2][lane],
                       lanes[3][lane]};
    }
  }
  if (i < n) DeriveStreamStatesScalar(stream_base, tag, tokens + i, n - i,
                                      out + i);
}

__attribute__((target("avx2"))) void ComputeAcceptRatiosAvx2(
    size_t n, const double* a_t, const double* b_t, const double* a_cur,
    const double* b_cur, double* ratio, uint8_t* ge1) {
  const __m256d one = _mm256_set1_pd(1.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d num =
        _mm256_mul_pd(_mm256_loadu_pd(a_t + i), _mm256_loadu_pd(b_cur + i));
    const __m256d den =
        _mm256_mul_pd(_mm256_loadu_pd(a_cur + i), _mm256_loadu_pd(b_t + i));
    const __m256d r = _mm256_div_pd(num, den);
    _mm256_storeu_pd(ratio + i, r);
    const int bits =
        _mm256_movemask_pd(_mm256_cmp_pd(r, one, _CMP_GE_OQ));
    ge1[i] = static_cast<uint8_t>(bits & 1);
    ge1[i + 1] = static_cast<uint8_t>((bits >> 1) & 1);
    ge1[i + 2] = static_cast<uint8_t>((bits >> 2) & 1);
    ge1[i + 3] = static_cast<uint8_t>((bits >> 3) & 1);
  }
  if (i < n) {
    ComputeAcceptRatiosScalar(n - i, a_t + i, b_t + i, a_cur + i, b_cur + i,
                              ratio + i, ge1 + i);
  }
}

#endif  // WARPLDA_SIMD_X86

}  // namespace

bool HasAvx2() {
#if WARPLDA_SIMD_X86
  static const bool supported = DetectAvx2();
  return supported;
#else
  return false;
#endif
}

const char* ActiveKernelFeatures() { return HasAvx2() ? "avx2" : "scalar"; }

void DeriveStreamStatesScalar(uint64_t stream_base, uint32_t tag,
                              const uint64_t* tokens, size_t n,
                              RngState* out) {
  const uint64_t base = stream_base ^ (static_cast<uint64_t>(tag) << 56);
  for (size_t i = 0; i < n; ++i) {
    // Exactly Rng(SplitMix64(base ^ token)): one seed mix, then the 4-step
    // expansion Rng::Seed performs.
    uint64_t x = SplitMix64(base ^ tokens[i]);
    for (int s = 0; s < 4; ++s) {
      x += kGamma;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * kMix1;
      z = (z ^ (z >> 27)) * kMix2;
      out[i][s] = z ^ (z >> 31);
    }
  }
}

void DeriveStreamStates(uint64_t stream_base, uint32_t tag,
                        const uint64_t* tokens, size_t n, RngState* out,
                        bool force_scalar) {
#if WARPLDA_SIMD_X86
  if (!force_scalar && HasAvx2()) {
    DeriveStreamStatesAvx2(stream_base, tag, tokens, n, out);
    return;
  }
#else
  (void)force_scalar;
#endif
  DeriveStreamStatesScalar(stream_base, tag, tokens, n, out);
}

void ComputeAcceptRatiosScalar(size_t n, const double* a_t, const double* b_t,
                               const double* a_cur, const double* b_cur,
                               double* ratio, uint8_t* ge1) {
  for (size_t i = 0; i < n; ++i) {
    // Same expression tree as the vector path and as the fused AcceptChain:
    // (mul, mul, div) — bit-identical IEEE doubles on every path.
    const double r = (a_t[i] * b_cur[i]) / (a_cur[i] * b_t[i]);
    ratio[i] = r;
    ge1[i] = r >= 1.0 ? 1 : 0;
  }
}

void ComputeAcceptRatios(size_t n, const double* a_t, const double* b_t,
                         const double* a_cur, const double* b_cur,
                         double* ratio, uint8_t* ge1, bool force_scalar) {
#if WARPLDA_SIMD_X86
  if (!force_scalar && HasAvx2()) {
    ComputeAcceptRatiosAvx2(n, a_t, b_t, a_cur, b_cur, ratio, ge1);
    return;
  }
#else
  (void)force_scalar;
#endif
  ComputeAcceptRatiosScalar(n, a_t, b_t, a_cur, b_cur, ratio, ge1);
}

}  // namespace simd
}  // namespace warplda

#ifndef WARPLDA_CORE_STREAMING_H_
#define WARPLDA_CORE_STREAMING_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "corpus/corpus.h"
#include "eval/topic_model.h"
#include "util/alias_table.h"
#include "util/rng.h"

namespace warplda {

/// Options for the streaming trainer.
struct StreamingOptions {
  uint32_t num_topics = 100;
  double alpha = 0.1;
  double beta = 0.01;
  uint32_t batch_size = 256;       ///< documents per mini-batch
  uint32_t inner_iterations = 4;   ///< MH sweeps per batch (E-step)
  uint32_t mh_steps = 2;           ///< proposals per token per sweep
  double kappa = 0.7;              ///< step-size decay exponent in (0.5, 1]
  double tau = 10.0;               ///< step-size delay
  uint64_t seed = 7;
};

/// Streaming WarpLDA: the paper's §7 "stochastic learning" extension.
///
/// Online EM over document mini-batches: the E-step runs WarpLDA's O(1)
/// MH machinery (positioning doc proposals, alias word proposals) on the
/// batch with the global topic-word statistics held fixed; the M-step blends
/// the batch's rescaled sufficient statistics into the running estimate with
/// a Robbins-Monro step size ρ_t = (τ + t)^(−κ) — the SCVB/SVI-style update
/// applied to WarpLDA's sampler. One pass over a corpus touches each
/// document once, so corpora need not fit in memory.
class StreamingWarpLda {
 public:
  explicit StreamingWarpLda(WordId vocab_size,
                            const StreamingOptions& options = {});

  /// Processes one mini-batch of documents (each a word-id sequence).
  /// Word ids must be < vocab_size. Returns the step size ρ_t used.
  double ProcessBatch(const std::vector<std::vector<WordId>>& batch);

  /// Convenience: streams an in-memory corpus in batch_size chunks for
  /// `epochs` passes.
  void ProcessCorpus(const Corpus& corpus, uint32_t epochs = 1);

  /// Smoothed topic-word probability from the running statistics.
  double Phi(WordId w, TopicId k) const;

  /// Top words of topic k by running statistic.
  std::vector<std::pair<WordId, double>> TopWords(TopicId k,
                                                  uint32_t n) const;

  /// Exports a TopicModel (statistics rounded to counts) compatible with
  /// HeldOutPerplexity and Inferencer.
  TopicModel ExportModel() const;

  /// Snapshot-export hook for serving: ExportModel() wrapped for
  /// serve::ModelStore::Publish(). Call between ProcessBatch() calls to
  /// hot-publish the running estimate while a server keeps answering.
  std::shared_ptr<const TopicModel> ExportSharedModel() const {
    return std::make_shared<const TopicModel>(ExportModel());
  }

  /// As above, and additionally reports which words' rounded count rows
  /// differ from the previous call to this overload (every word on the
  /// first call) — the changed-word set for
  /// serve::ModelStore::PublishDelta. The M-step rescales every λ row, but
  /// rounding absorbs sub-half-count drift, so steady-state deltas list
  /// only the words whose counts actually moved. Tracks the last export
  /// internally; `changed_words` may be null to only advance that tracking.
  std::shared_ptr<const TopicModel> ExportSharedModel(
      std::vector<WordId>* changed_words);

  /// Crash-safe persistence of the online training state — the running λ
  /// statistics, step counters, and RNG state — through the shared
  /// checkpoint frame (util/checkpoint_io.h: atomic temp+fsync+rename
  /// write, CRC-validated size-bounded load). LoadState requires an
  /// instance constructed with the same vocabulary size and options; on
  /// success the trainer continues the exact pre-save batch sequence (the
  /// generator state travels along), with proposal alias caches rebuilt
  /// lazily. On failure returns false, fills *error, and — for LoadState —
  /// leaves the instance unchanged.
  bool SaveState(const std::string& path, std::string* error) const;
  bool LoadState(const std::string& path, std::string* error);

  /// Number of batches processed so far.
  uint64_t batches_seen() const { return batches_seen_; }

  uint32_t num_topics() const { return options_.num_topics; }
  WordId vocab_size() const { return vocab_size_; }

 private:
  /// Runs the MH E-step for one document; accumulates counts into
  /// batch_counts_ (and batch_ck_).
  void FoldDocument(const std::vector<WordId>& doc);

  /// Rebuilds the per-word proposal alias for w if stale.
  const AliasTable& WordProposal(WordId w);

  WordId vocab_size_;
  StreamingOptions options_;
  Rng rng_;
  double beta_bar_;

  std::vector<double> lambda_;     // V×K running topic-word statistics
  std::vector<double> lambda_k_;   // K running topic totals
  std::vector<double> batch_counts_;  // V×K scratch (batch sufficient stats)
  std::vector<double> batch_ck_;
  std::vector<WordId> batch_words_;   // distinct words touched this batch

  std::vector<AliasTable> word_alias_;
  std::vector<uint64_t> alias_epoch_;  // batch index the alias was built at
  std::vector<double> alias_count_prob_;
  uint64_t batches_seen_ = 0;
  uint64_t docs_seen_ = 0;
  /// Model returned by the last ExportSharedModel(changed_words) call; the
  /// diff base for incremental publishing.
  std::shared_ptr<const TopicModel> last_export_;
};

}  // namespace warplda

#endif  // WARPLDA_CORE_STREAMING_H_

#ifndef WARPLDA_CORE_SWEEP_PLAN_H_
#define WARPLDA_CORE_SWEEP_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace warplda {

/// Partition of a training sweep into a (doc-block × word-block) grid.
///
/// This is the unit of work distribution in the paper's multi-machine design:
/// documents are split into `num_doc_blocks` partitions (one per worker) and
/// the vocabulary into `num_word_blocks` slices; block (i, j) is the set of
/// tokens whose document lies in doc partition i and whose word lies in word
/// partition j. A default-constructed plan is the trivial 1×1 grid, which is
/// exactly what `Sampler::Iterate()` executes.
///
/// Plans are produced by hand, by `SweepPlan::Trivial()`, or — balanced by
/// token counts — by `MakeSweepPlan()` in `dist/partitioner.h`.
struct SweepPlan {
  uint32_t num_doc_blocks = 1;
  uint32_t num_word_blocks = 1;
  /// Block id per document, size D (empty means every doc is in block 0,
  /// which requires num_doc_blocks == 1).
  std::vector<uint32_t> doc_block;
  /// Block id per word, size V (empty means every word is in block 0).
  std::vector<uint32_t> word_block;

  /// The 1×1 plan: one block containing the whole corpus.
  static SweepPlan Trivial() { return SweepPlan(); }

  bool trivial() const { return num_doc_blocks == 1 && num_word_blocks == 1; }

  /// Checks the plan against a corpus shape. On failure returns false and,
  /// when `error` is non-null, explains which invariant broke.
  bool Validate(uint32_t num_docs, uint32_t num_words,
                std::string* error) const;

  /// Samplers use equality to reuse plan-derived indices across sweeps.
  bool operator==(const SweepPlan&) const = default;
};

/// The four block-wise stages of one grid sweep, in execution order.
///
/// WarpLDA's word phase splits into an MH-acceptance stage (consumes the
/// pending doc proposals against a delayed snapshot of c_w and c_k) and a
/// proposal stage (draws fresh word proposals from the updated c_w); the doc
/// phase splits symmetrically. Within a stage, blocks touch disjoint
/// assignment state and own per-token RNG streams, so they may run in any
/// order — or on different machines — without changing the samples. The
/// barrier between stages (EndStage) is where a distributed implementation
/// would exchange token state between doc owners and word-slice owners.
enum class SweepStage {
  kWordAccept = 0,
  kWordPropose = 1,
  kDocAccept = 2,
  kDocPropose = 3,
  kDone = 4,
};

const char* ToString(SweepStage stage);

struct SweepCheckpoint;  // core/checkpoint.h

/// The externally visible effect of running one grid block for one stage
/// span — the unit a distributed execution tier ships between processes.
///
/// Within a stage, blocks share no mutable state: accepted topic moves are
/// staged (z is untouched until the barrier) and proposal draws write only
/// the block's own tokens' slots. A block's entire effect is therefore
/// capturable as (staged moves, proposal writes) and replayable in another
/// process that holds the same pre-stage state — after which EndStage()
/// applies it exactly as if the block had run locally. `proposals` is in the
/// block's canonical token order (the plan-derived segment position order,
/// identical in every process that built indices from the same plan and
/// corpus), mh_steps entries per token; empty when the span draws none.
struct GridBlockDelta {
  SweepStage stage = SweepStage::kDone;  ///< span the block ran in
  uint32_t doc_block = 0;
  uint32_t word_block = 0;
  /// One staged z write: token at storage position `pos` moves `from`→`to`;
  /// `item` is the token's column (word stages) or row (doc stages), kept so
  /// the barrier can patch per-item count tables.
  struct Move {
    uint64_t pos = 0;
    uint32_t item = 0;
    uint32_t from = 0;
    uint32_t to = 0;
  };
  std::vector<Move> moves;
  std::vector<uint32_t> proposals;  ///< TopicId, mh_steps per token
};

/// Grid-execution interface of a sampler whose sweep can run block-by-block.
///
/// Protocol: BeginSweep(plan), then for each of the four stages call
/// RunBlock(i, j) exactly once per grid block (any order) followed by
/// EndStage(), then EndSweep(). `RunSweep()` drives the whole protocol in
/// canonical order. A conforming implementation guarantees that any schedule
/// of any plan produces the same assignments as `RunSweep(SweepPlan::
/// Trivial())` — grid execution changes where work happens, never what is
/// sampled. Protocol violations throw std::logic_error; invalid plans throw
/// std::invalid_argument.
///
/// Threading: within a stage, RunBlock calls for *distinct* blocks may be
/// issued concurrently, each tagged with the calling worker's id so the
/// implementation can key per-thread scratch; call ReserveWorkers(n) before
/// BeginSweep to size that scratch. BeginSweep/EndStage/EndSweep are
/// barrier-side calls made by the single driving thread (see
/// core/parallel_executor.h, which schedules stages this way).
class GridSampler {
 public:
  virtual ~GridSampler() = default;

  /// Opens a sweep over `plan`. The sampler must be initialized and no other
  /// sweep may be active.
  virtual void BeginSweep(const SweepPlan& plan) = 0;

  /// Runs the current stage's work for grid block (doc_block, word_block) on
  /// behalf of `worker` (an id in [0, reserved workers); per-thread scratch
  /// is keyed by it). Each block must run exactly once per stage; distinct
  /// blocks may run concurrently when each caller passes a distinct worker.
  virtual void RunBlock(uint32_t doc_block, uint32_t word_block,
                        uint32_t worker = 0) = 0;

  /// Hints that workers [0, num_workers) may call RunBlock concurrently, so
  /// per-worker scratch must exist for each. Called between sweeps or at a
  /// stage barrier of an open sweep — ParallelExecutor::FinishSweep reserves
  /// at the barrier it starts from, including the one BeginSweep opens and
  /// the one RestoreSweepState reopens — but never while the current stage
  /// has blocks in flight. The default accepts any count, keeps no scratch.
  virtual void ReserveWorkers(uint32_t num_workers) { (void)num_workers; }

  /// Distributed execution: runs a block exactly like RunBlock and
  /// additionally captures its externally visible effect into `*out`, ready
  /// to ship to a peer process holding the same pre-stage state. Returns
  /// false when the sampler does not support delta capture (the default).
  virtual bool RunBlockCaptured(uint32_t doc_block, uint32_t word_block,
                                uint32_t worker, GridBlockDelta* out) {
    (void)doc_block;
    (void)word_block;
    (void)worker;
    (void)out;
    return false;
  }

  /// Distributed execution: injects a peer's captured block effect, marking
  /// the block as run for the current stage — EndStage() then applies it
  /// exactly as if the block had run locally. Idempotent: a delta for a
  /// block that already ran this stage (a duplicate frame) is accepted and
  /// ignored. Returns false on a malformed delta (wrong stage, out-of-range
  /// positions/topics) or when unsupported (the default); `*error` explains.
  virtual bool ApplyBlockDelta(const GridBlockDelta& delta,
                               std::string* error) {
    (void)delta;
    if (error != nullptr) {
      *error = "this sampler does not support block deltas";
    }
    return false;
  }

  /// Distributed execution hint: this process will only RunBlock the blocks
  /// whose flag is set in `owned` (size num_doc_blocks × num_word_blocks,
  /// row-major; empty = unrestricted, the default), every other block
  /// arriving via ApplyBlockDelta. Implementations may skip building
  /// per-item caches no owned block reads. Purely an optimization — results
  /// are identical with or without the hint. Call before BeginSweep or
  /// RestoreSweepState; cleared state persists until the next call.
  virtual void SetLocalBlocks(const std::vector<char>& owned) { (void)owned; }

  /// Barrier: checks every block of the current stage ran, applies the
  /// stage's staged updates, and advances to the next stage.
  virtual void EndStage() = 0;

  /// Closes the sweep; all four stages must have completed.
  virtual void EndSweep() = 0;

  /// Error recovery: closes an open sweep immediately, discarding any
  /// staged-but-unapplied work, leaving the sampler usable (its state is
  /// whatever the last completed stage barrier applied — valid, but pending
  /// proposals may be stale, so callers normally re-run a full sweep).
  /// No-op when no sweep is open. RunSweep drivers call this when a stage
  /// throws, so the exception does not wedge the sampler.
  virtual void AbortSweep() {}

  /// Stage the active sweep is in, or kDone when no sweep is active.
  virtual SweepStage sweep_stage() const = 0;

  /// Durability hook (see core/checkpoint.h): fills `out` with the sampler's
  /// complete sweep state — assignments, pending proposals, RNG stream
  /// bases, count snapshots — so a fresh process can resume bit-identically.
  /// Only legal at a quiescent point: between sweeps, or at a stage barrier
  /// of an open sweep (after EndStage() returned, before any block of the
  /// next stage runs — exactly when ParallelExecutor's barrier hook fires).
  /// Returns false when called mid-stage or when the sampler does not
  /// support sweep checkpointing (the default).
  virtual bool CaptureSweepState(SweepCheckpoint* out) const {
    (void)out;
    return false;
  }

  /// Durability hook: restores state captured by CaptureSweepState. The
  /// sampler must be Init()ed on the same corpus with a matching config and
  /// have no open sweep. When `state.next_stage` is not kWordAccept this
  /// leaves the sampler *inside* an open sweep at that stage — drive the
  /// remaining stages with ParallelExecutor::FinishSweep (or RunBlock/
  /// EndStage by hand). Returns false and fills `*error` on any mismatch or
  /// when unsupported (the default).
  virtual bool RestoreSweepState(const SweepCheckpoint& state,
                                 std::string* error) {
    (void)state;
    if (error != nullptr) {
      *error = "this sampler does not support sweep checkpointing";
    }
    return false;
  }

  /// Convenience: one full sweep of `plan`, blocks in row-major order.
  void RunSweep(const SweepPlan& plan);
};

}  // namespace warplda

#endif  // WARPLDA_CORE_SWEEP_PLAN_H_

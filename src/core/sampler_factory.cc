#include <memory>

#include "baselines/alias_lda.h"
#include "baselines/cgs.h"
#include "baselines/fplus_lda.h"
#include "baselines/light_lda.h"
#include "baselines/sampler.h"
#include "baselines/sparse_lda.h"
#include "core/warp_lda.h"

namespace warplda {
namespace {

template <typename S>
std::unique_ptr<Sampler> Make() {
  return std::make_unique<S>();
}

struct RegistryEntry {
  const char* name;   // canonical key, Table 2 order
  const char* alias;  // alternate spelling ("" = none)
  std::unique_ptr<Sampler> (*make)();
};

// The single sampler registry: CreateSampler*, SamplerNames(), and through
// them every enumerating caller (dist/, benches, examples, the factory
// tests) stay in sync by construction.
constexpr RegistryEntry kRegistry[] = {
    {"cgs", "", &Make<CgsSampler>},
    {"sparselda", "", &Make<SparseLdaSampler>},
    {"aliaslda", "", &Make<AliasLdaSampler>},
    {"f+lda", "flda", &Make<FPlusLdaSampler>},
    {"lightlda", "", &Make<LightLdaSampler>},
    {"warplda", "", &Make<WarpLdaSampler>},
};

}  // namespace

std::unique_ptr<Sampler> CreateSampler(const std::string& name) {
  for (const RegistryEntry& entry : kRegistry) {
    if (name == entry.name || (entry.alias[0] != '\0' && name == entry.alias)) {
      return entry.make();
    }
  }
  return nullptr;
}

std::unique_ptr<Sampler> CreateSamplerChecked(const std::string& name,
                                              std::string* error) {
  auto sampler = CreateSampler(name);
  if (sampler == nullptr && error != nullptr) {
    std::string accepted;
    for (const RegistryEntry& entry : kRegistry) {
      if (!accepted.empty()) accepted += ", ";
      accepted += entry.name;
      if (entry.alias[0] != '\0') {
        accepted += std::string(" (alias: ") + entry.alias + ")";
      }
    }
    *error = "unknown sampler '" + name + "'; accepted names: " + accepted;
  }
  return sampler;
}

std::vector<std::string> SamplerNames() {
  std::vector<std::string> names;
  names.reserve(std::size(kRegistry));
  for (const RegistryEntry& entry : kRegistry) names.emplace_back(entry.name);
  return names;
}

}  // namespace warplda

#include <memory>

#include "baselines/alias_lda.h"
#include "baselines/cgs.h"
#include "baselines/fplus_lda.h"
#include "baselines/light_lda.h"
#include "baselines/sampler.h"
#include "baselines/sparse_lda.h"
#include "core/warp_lda.h"

namespace warplda {

std::unique_ptr<Sampler> CreateSampler(const std::string& name) {
  if (name == "cgs") return std::make_unique<CgsSampler>();
  if (name == "sparselda") return std::make_unique<SparseLdaSampler>();
  if (name == "aliaslda") return std::make_unique<AliasLdaSampler>();
  if (name == "f+lda" || name == "flda") {
    return std::make_unique<FPlusLdaSampler>();
  }
  if (name == "lightlda") return std::make_unique<LightLdaSampler>();
  if (name == "warplda") return std::make_unique<WarpLdaSampler>();
  return nullptr;
}

std::vector<std::string> SamplerNames() {
  return {"cgs", "sparselda", "aliaslda", "f+lda", "lightlda", "warplda"};
}

}  // namespace warplda

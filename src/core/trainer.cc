#include "core/trainer.h"

#include <cstdio>
#include <memory>
#include <stdexcept>

#include "core/checkpoint.h"
#include "core/parallel_executor.h"
#include "eval/hyperparams.h"
#include "eval/log_likelihood.h"
#include "util/checkpoint_io.h"
#include "util/stopwatch.h"

namespace warplda {

TrainResult Train(Sampler& sampler, const Corpus& corpus,
                  const LdaConfig& config, const TrainOptions& options,
                  const TrainCallback& callback) {
  TrainResult result;
  sampler.Init(corpus, config);
  double alpha = config.alpha;
  double beta = config.beta;

  GridSampler* grid = nullptr;
  std::unique_ptr<ParallelExecutor> executor;
  if (options.grid_execution) {
    grid = dynamic_cast<GridSampler*>(&sampler);
    if (grid == nullptr) {
      throw std::invalid_argument("Train: grid_execution requires a sampler "
                                  "implementing GridSampler");
    }
    executor = std::make_unique<ParallelExecutor>(options.sweep_threads);
  }

  // ------------------------------------------------------------ durability
  const bool durable = !options.checkpoint_dir.empty();
  const std::string sweep_path = options.checkpoint_dir + "/sweep.ckpt";
  const std::string train_path = options.checkpoint_dir + "/train.ckpt";
  if (durable) {
    std::string err;
    if (!EnsureDirectory(options.checkpoint_dir, &err)) {
      throw std::runtime_error("Train: " + err);
    }
  }

  // Iteration-boundary checkpoint: in grid mode a between-sweeps
  // SweepCheckpoint (pending proposals + RNG epoch travel along, so the
  // resumed trajectory is bit-identical); otherwise — or when the grid
  // sampler does not support capture — a TrainingCheckpoint.
  auto save_iteration_checkpoint = [&](uint32_t completed) {
    std::string err;
    SweepCheckpoint sweep_ckpt;
    if (grid != nullptr && grid->CaptureSweepState(&sweep_ckpt)) {
      sweep_ckpt.iteration = completed;
      if (!SaveSweepCheckpoint(sweep_ckpt, sweep_path, &err)) {
        throw std::runtime_error("Train: checkpoint save failed: " + err);
      }
    } else {
      TrainingCheckpoint ckpt;
      ckpt.config = config;
      ckpt.config.alpha = alpha;  // current priors, not the initial ones
      ckpt.config.beta = beta;
      ckpt.iteration = completed;
      ckpt.assignments = sampler.Assignments();
      if (!SaveCheckpoint(ckpt, train_path, &err)) {
        throw std::runtime_error("Train: checkpoint save failed: " + err);
      }
    }
    if (options.checkpoint_hook) {
      options.checkpoint_hook(completed, SweepStage::kWordAccept);
    }
  };

  // Mid-sweep checkpoints at every stage barrier (checkpoint_stages): fired
  // by the executor on the driver thread, where the sampler is quiescent.
  uint32_t completed_before_sweep = 0;
  ParallelExecutor::StageHook stage_hook;
  if (durable && options.checkpoint_stages && grid != nullptr) {
    stage_hook = [&](SweepStage next_stage) {
      SweepCheckpoint ckpt;
      if (!grid->CaptureSweepState(&ckpt)) return;  // capture unsupported
      ckpt.iteration = completed_before_sweep;
      std::string err;
      if (!SaveSweepCheckpoint(ckpt, sweep_path, &err)) {
        throw std::runtime_error("Train: checkpoint save failed: " + err);
      }
      if (options.checkpoint_hook) {
        options.checkpoint_hook(completed_before_sweep, next_stage);
      }
    };
  }

  // ---------------------------------------------------------------- resume
  uint32_t start_iter = 1;
  bool finish_restored_sweep = false;
  SweepPlan restored_plan;
  if (options.resume && durable) {
    std::string err;
    if (grid != nullptr && FileExists(sweep_path)) {
      SweepCheckpoint ckpt;
      if (!LoadSweepCheckpoint(sweep_path, &ckpt, &err)) {
        throw std::runtime_error("Train: cannot resume: " + err);
      }
      if (!grid->RestoreSweepState(ckpt, &err)) {
        throw std::runtime_error("Train: cannot resume: " + err);
      }
      alpha = ckpt.config.alpha;
      beta = ckpt.config.beta;
      start_iter = ckpt.iteration + 1;
      finish_restored_sweep = ckpt.next_stage != SweepStage::kWordAccept;
      restored_plan = ckpt.plan;
    } else if (FileExists(train_path)) {
      TrainingCheckpoint ckpt;
      if (!LoadCheckpoint(train_path, &ckpt, &err)) {
        throw std::runtime_error("Train: cannot resume: " + err);
      }
      if (ckpt.config.num_topics != config.num_topics) {
        throw std::runtime_error(
            "Train: cannot resume: checkpoint has " +
            std::to_string(ckpt.config.num_topics) + " topics, run has " +
            std::to_string(config.num_topics));
      }
      if (ckpt.assignments.size() != corpus.num_tokens()) {
        throw std::runtime_error(
            "Train: cannot resume: checkpoint token count " +
            std::to_string(ckpt.assignments.size()) +
            " does not match the corpus (" +
            std::to_string(corpus.num_tokens()) + ")");
      }
      if (ckpt.config.alpha_vector != config.alpha_vector) {
        throw std::runtime_error(
            "Train: cannot resume: checkpoint asymmetric-prior vector does "
            "not match the run's");
      }
      sampler.SetAssignments(ckpt.assignments);
      alpha = ckpt.config.alpha;
      beta = ckpt.config.beta;
      // Only push drifted (hyper-optimized) priors into the sampler:
      // SetPriors is symmetric-only, so calling it with the Init values
      // would clobber an asymmetric prior's ᾱ for no gain.
      if (alpha != config.alpha || beta != config.beta) {
        sampler.SetPriors(alpha, beta);
      }
      start_iter = ckpt.iteration + 1;
    }
    // No checkpoint on disk: fall through to a fresh run, so the same
    // command line serves the first launch and every restart.
  }

  double sampling_seconds = 0.0;
  double block_seconds = 0.0;
  uint32_t block_iterations = 0;

  auto evaluate = [&](uint32_t iteration) {
    IterationStat stat;
    stat.iteration = iteration;
    stat.seconds = sampling_seconds;
    stat.log_likelihood = JointLogLikelihood(
        corpus, sampler.Assignments(), config.num_topics, alpha, beta);
    stat.tokens_per_second =
        block_seconds > 0.0
            ? static_cast<double>(corpus.num_tokens()) * block_iterations /
                  block_seconds
            : 0.0;
    block_seconds = 0.0;
    block_iterations = 0;
    result.history.push_back(stat);
    if (options.verbose) {
      std::printf("[%s] iter %4u  time %8.2fs  ll %.6e  %.2fM tok/s\n",
                  sampler.name().c_str(), stat.iteration, stat.seconds,
                  stat.log_likelihood, stat.tokens_per_second / 1e6);
      std::fflush(stdout);
    }
    if (callback) callback(stat);
  };

  for (uint32_t iter = start_iter; iter <= options.iterations; ++iter) {
    Stopwatch watch;
    completed_before_sweep = iter - 1;
    if (grid != nullptr) {
      if (finish_restored_sweep) {
        // First iteration after a mid-sweep restore: finish the in-flight
        // sweep from the checkpointed stage (bit-identical to the schedule
        // the killed run would have executed), then proceed normally.
        executor->FinishSweep(*grid, restored_plan, stage_hook);
        finish_restored_sweep = false;
      } else {
        executor->RunSweep(*grid, options.sweep_plan, stage_hook);
      }
    } else {
      sampler.Iterate();
    }
    double elapsed = watch.Seconds();
    sampling_seconds += elapsed;
    block_seconds += elapsed;
    ++block_iterations;
    if (options.optimize_hyper_every != 0 &&
        iter % options.optimize_hyper_every == 0 &&
        iter != options.iterations) {
      auto assignments = sampler.Assignments();
      alpha = EstimateSymmetricAlpha(corpus, assignments, config.num_topics,
                                     alpha);
      beta = EstimateSymmetricBeta(corpus, assignments, config.num_topics,
                                   beta);
      sampler.SetPriors(alpha, beta);
      if (options.verbose) {
        std::printf("[%s] iter %4u  optimized priors: alpha=%.4g beta=%.4g\n",
                    sampler.name().c_str(), iter, alpha, beta);
      }
    }
    bool last = iter == options.iterations;
    if (last || (options.eval_every != 0 && iter % options.eval_every == 0)) {
      evaluate(iter);
    }
    if (durable &&
        (last ||
         (options.checkpoint_every != 0 &&
          iter % options.checkpoint_every == 0) ||
         (options.checkpoint_stages && grid != nullptr))) {
      save_iteration_checkpoint(iter);
    }
  }

  if (result.history.empty() && start_iter > 1) {
    // Resumed past the final iteration (the checkpointed run had already
    // finished): score the restored state so the result is still complete.
    evaluate(options.iterations);
  }

  result.final_alpha = alpha;
  result.final_beta = beta;
  result.assignments = sampler.Assignments();
  result.final_log_likelihood =
      result.history.empty() ? 0.0 : result.history.back().log_likelihood;
  result.total_seconds = sampling_seconds;
  return result;
}

}  // namespace warplda

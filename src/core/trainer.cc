#include "core/trainer.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "core/checkpoint.h"
#include "core/parallel_executor.h"
#include "eval/hyperparams.h"
#include "eval/log_likelihood.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/checkpoint_io.h"
#include "util/stopwatch.h"

namespace warplda {

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Turns hot-path metric recording on for the run when TrainOptions::metrics
/// asks for it, restoring the previous state on exit. A caller that enabled
/// metrics globally (e.g. topic_server --metrics-every) is left untouched.
struct MetricsScope {
  bool flipped;
  explicit MetricsScope(bool enable)
      : flipped(enable && !obs::MetricsEnabled()) {
    if (flipped) obs::SetMetricsEnabled(true);
  }
  ~MetricsScope() {
    if (flipped) obs::SetMetricsEnabled(false);
  }
};

/// Records the run into the global TraceRecorder and writes the Chrome trace
/// JSON on exit (including exceptional exits — a crash-adjacent trace is the
/// most interesting kind). Write failures are reported to stderr, never
/// thrown from a destructor.
struct TraceScope {
  std::string path;
  explicit TraceScope(std::string trace_path) : path(std::move(trace_path)) {
    if (!path.empty()) obs::TraceRecorder::Global().Start();
  }
  ~TraceScope() {
    if (path.empty()) return;
    auto& recorder = obs::TraceRecorder::Global();
    recorder.Stop();
    std::string err;
    if (!recorder.WriteJson(path, &err)) {
      std::fprintf(stderr, "Train: %s\n", err.c_str());
    }
  }
};

}  // namespace

TrainResult Train(Sampler& sampler, const Corpus& corpus,
                  const LdaConfig& config, const TrainOptions& options,
                  const TrainCallback& callback) {
  TrainResult result;
  MetricsScope metrics_scope(options.metrics);
  TraceScope trace_scope(options.trace_path);
  sampler.Init(corpus, config);
  double alpha = config.alpha;
  double beta = config.beta;

  GridSampler* grid = nullptr;
  std::unique_ptr<ParallelExecutor> executor;
  if (options.grid_execution) {
    grid = dynamic_cast<GridSampler*>(&sampler);
    if (grid == nullptr) {
      throw std::invalid_argument("Train: grid_execution requires a sampler "
                                  "implementing GridSampler");
    }
    executor = std::make_unique<ParallelExecutor>(options.sweep_threads);
  }

  // ------------------------------------------------------------ durability
  const bool durable = !options.checkpoint_dir.empty();
  const std::string sweep_path = options.checkpoint_dir + "/sweep.ckpt";
  const std::string train_path = options.checkpoint_dir + "/train.ckpt";
  std::unique_ptr<AsyncCheckpointWriter> ckpt_writer;
  if (durable) {
    std::string err;
    if (!EnsureDirectory(options.checkpoint_dir, &err)) {
      throw std::runtime_error("Train: " + err);
    }
    // Saves run on the writer's thread; the training thread pays only the
    // in-memory capture. Failures are latched and rethrown at the next
    // submit (or the final flush) — durability failures still fail the run.
    ckpt_writer = std::make_unique<AsyncCheckpointWriter>(/*max_pending=*/2);
  }
  auto throw_if_save_failed = [&] {
    std::string err;
    if (ckpt_writer != nullptr && !ckpt_writer->ok(&err)) {
      throw std::runtime_error("Train: checkpoint save failed: " + err);
    }
  };
  obs::Histogram* capture_us =
      durable ? obs::MetricsRegistry::Global().GetHistogram(
                    "ckpt_capture_us",
                    "In-memory checkpoint state capture on the training "
                    "thread (the only part the barrier pays for)")
              : nullptr;

  // Iteration-boundary checkpoint: in grid mode a between-sweeps
  // SweepCheckpoint (pending proposals + RNG epoch travel along, so the
  // resumed trajectory is bit-identical); otherwise — or when the grid
  // sampler does not support capture — a TrainingCheckpoint.
  auto save_iteration_checkpoint = [&](uint32_t completed) {
    throw_if_save_failed();
    obs::TraceSpan span("checkpoint-capture", "ckpt");
    const bool obs_on = obs::MetricsEnabled();
    const int64_t capture_start = obs_on ? NowUs() : 0;
    auto completion = [hook = options.checkpoint_hook, completed] {
      if (hook) hook(completed, SweepStage::kWordAccept);
    };
    SweepCheckpoint sweep_ckpt;
    if (grid != nullptr && grid->CaptureSweepState(&sweep_ckpt)) {
      sweep_ckpt.iteration = completed;
      if (obs_on) capture_us->Observe(NowUs() - capture_start);
      ckpt_writer->Submit(std::move(sweep_ckpt), sweep_path,
                          std::move(completion));
    } else {
      TrainingCheckpoint ckpt;
      ckpt.config = config;
      ckpt.config.alpha = alpha;  // current priors, not the initial ones
      ckpt.config.beta = beta;
      ckpt.iteration = completed;
      ckpt.assignments = sampler.Assignments();
      if (obs_on) capture_us->Observe(NowUs() - capture_start);
      ckpt_writer->Submit(std::move(ckpt), train_path, std::move(completion));
    }
  };

  // Mid-sweep checkpoints at every stage barrier (checkpoint_stages): the
  // capture happens on the driver thread, where the sampler is quiescent;
  // the write happens on the checkpoint writer's thread.
  uint32_t completed_before_sweep = 0;
  ParallelExecutor::StageHook stage_hook;
  if (durable && options.checkpoint_stages && grid != nullptr) {
    stage_hook = [&](SweepStage next_stage) {
      throw_if_save_failed();
      obs::TraceSpan span("checkpoint-capture", "ckpt");
      const bool obs_on = obs::MetricsEnabled();
      const int64_t capture_start = obs_on ? NowUs() : 0;
      SweepCheckpoint ckpt;
      if (!grid->CaptureSweepState(&ckpt)) return;  // capture unsupported
      ckpt.iteration = completed_before_sweep;
      if (obs_on) capture_us->Observe(NowUs() - capture_start);
      ckpt_writer->Submit(
          std::move(ckpt), sweep_path,
          [hook = options.checkpoint_hook,
           completed = completed_before_sweep, next_stage] {
            if (hook) hook(completed, next_stage);
          });
    };
  }

  // ---------------------------------------------------------------- resume
  uint32_t start_iter = 1;
  bool finish_restored_sweep = false;
  SweepPlan restored_plan;
  if (options.resume && durable) {
    std::string err;
    if (grid != nullptr && FileExists(sweep_path)) {
      SweepCheckpoint ckpt;
      if (!LoadSweepCheckpoint(sweep_path, &ckpt, &err)) {
        throw std::runtime_error("Train: cannot resume: " + err);
      }
      if (!grid->RestoreSweepState(ckpt, &err)) {
        throw std::runtime_error("Train: cannot resume: " + err);
      }
      alpha = ckpt.config.alpha;
      beta = ckpt.config.beta;
      start_iter = ckpt.iteration + 1;
      finish_restored_sweep = ckpt.next_stage != SweepStage::kWordAccept;
      restored_plan = ckpt.plan;
    } else if (FileExists(train_path)) {
      TrainingCheckpoint ckpt;
      if (!LoadCheckpoint(train_path, &ckpt, &err)) {
        throw std::runtime_error("Train: cannot resume: " + err);
      }
      if (ckpt.config.num_topics != config.num_topics) {
        throw std::runtime_error(
            "Train: cannot resume: checkpoint has " +
            std::to_string(ckpt.config.num_topics) + " topics, run has " +
            std::to_string(config.num_topics));
      }
      if (ckpt.assignments.size() != corpus.num_tokens()) {
        throw std::runtime_error(
            "Train: cannot resume: checkpoint token count " +
            std::to_string(ckpt.assignments.size()) +
            " does not match the corpus (" +
            std::to_string(corpus.num_tokens()) + ")");
      }
      if (ckpt.config.alpha_vector != config.alpha_vector) {
        throw std::runtime_error(
            "Train: cannot resume: checkpoint asymmetric-prior vector does "
            "not match the run's");
      }
      sampler.SetAssignments(ckpt.assignments);
      alpha = ckpt.config.alpha;
      beta = ckpt.config.beta;
      // Only push drifted (hyper-optimized) priors into the sampler:
      // SetPriors is symmetric-only, so calling it with the Init values
      // would clobber an asymmetric prior's ᾱ for no gain.
      if (alpha != config.alpha || beta != config.beta) {
        sampler.SetPriors(alpha, beta);
      }
      start_iter = ckpt.iteration + 1;
    }
    // No checkpoint on disk: fall through to a fresh run, so the same
    // command line serves the first launch and every restart.
  }

  double sampling_seconds = 0.0;
  double block_seconds = 0.0;
  uint32_t block_iterations = 0;

  auto evaluate = [&](uint32_t iteration) {
    IterationStat stat;
    stat.iteration = iteration;
    stat.seconds = sampling_seconds;
    stat.log_likelihood = JointLogLikelihood(
        corpus, sampler.Assignments(), config.num_topics, alpha, beta);
    stat.tokens_per_second =
        block_seconds > 0.0
            ? static_cast<double>(corpus.num_tokens()) * block_iterations /
                  block_seconds
            : 0.0;
    block_seconds = 0.0;
    block_iterations = 0;
    result.history.push_back(stat);
    if (options.verbose) {
      std::printf("[%s] iter %4u  time %8.2fs  ll %.6e  %.2fM tok/s\n",
                  sampler.name().c_str(), stat.iteration, stat.seconds,
                  stat.log_likelihood, stat.tokens_per_second / 1e6);
      std::fflush(stdout);
    }
    if (callback) callback(stat);
  };

  for (uint32_t iter = start_iter; iter <= options.iterations; ++iter) {
    Stopwatch watch;
    completed_before_sweep = iter - 1;
    {
      obs::TraceSpan sweep_span("sweep", "trainer", iter);
      if (grid != nullptr) {
        if (finish_restored_sweep) {
          // First iteration after a mid-sweep restore: finish the in-flight
          // sweep from the checkpointed stage (bit-identical to the schedule
          // the killed run would have executed), then proceed normally.
          executor->FinishSweep(*grid, restored_plan, stage_hook);
          finish_restored_sweep = false;
        } else {
          executor->RunSweep(*grid, options.sweep_plan, stage_hook);
        }
      } else {
        sampler.Iterate();
      }
    }
    double elapsed = watch.Seconds();
    sampling_seconds += elapsed;
    block_seconds += elapsed;
    ++block_iterations;
    if (options.optimize_hyper_every != 0 &&
        iter % options.optimize_hyper_every == 0 &&
        iter != options.iterations) {
      auto assignments = sampler.Assignments();
      alpha = EstimateSymmetricAlpha(corpus, assignments, config.num_topics,
                                     alpha);
      beta = EstimateSymmetricBeta(corpus, assignments, config.num_topics,
                                   beta);
      sampler.SetPriors(alpha, beta);
      if (options.verbose) {
        std::printf("[%s] iter %4u  optimized priors: alpha=%.4g beta=%.4g\n",
                    sampler.name().c_str(), iter, alpha, beta);
      }
    }
    bool last = iter == options.iterations;
    if (last || (options.eval_every != 0 && iter % options.eval_every == 0)) {
      evaluate(iter);
    }
    if (durable &&
        (last ||
         (options.checkpoint_every != 0 &&
          iter % options.checkpoint_every == 0) ||
         (options.checkpoint_stages && grid != nullptr))) {
      save_iteration_checkpoint(iter);
    }
  }

  if (ckpt_writer != nullptr) {
    // All checkpoints durable (and their hooks fired) before Train returns;
    // any background write failure surfaces here at the latest.
    std::string err;
    if (!ckpt_writer->Flush(&err)) {
      throw std::runtime_error("Train: checkpoint save failed: " + err);
    }
  }

  if (result.history.empty() && start_iter > 1) {
    // Resumed past the final iteration (the checkpointed run had already
    // finished): score the restored state so the result is still complete.
    evaluate(options.iterations);
  }

  result.final_alpha = alpha;
  result.final_beta = beta;
  result.assignments = sampler.Assignments();
  result.final_log_likelihood =
      result.history.empty() ? 0.0 : result.history.back().log_likelihood;
  result.total_seconds = sampling_seconds;
  return result;
}

}  // namespace warplda

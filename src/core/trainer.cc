#include "core/trainer.h"

#include <cstdio>
#include <memory>
#include <stdexcept>

#include "core/parallel_executor.h"
#include "eval/hyperparams.h"
#include "eval/log_likelihood.h"
#include "util/stopwatch.h"

namespace warplda {

TrainResult Train(Sampler& sampler, const Corpus& corpus,
                  const LdaConfig& config, const TrainOptions& options,
                  const TrainCallback& callback) {
  TrainResult result;
  sampler.Init(corpus, config);
  double alpha = config.alpha;
  double beta = config.beta;

  GridSampler* grid = nullptr;
  std::unique_ptr<ParallelExecutor> executor;
  if (options.grid_execution) {
    grid = dynamic_cast<GridSampler*>(&sampler);
    if (grid == nullptr) {
      throw std::invalid_argument("Train: grid_execution requires a sampler "
                                  "implementing GridSampler");
    }
    executor = std::make_unique<ParallelExecutor>(options.sweep_threads);
  }

  double sampling_seconds = 0.0;
  double block_seconds = 0.0;
  uint32_t block_iterations = 0;

  auto evaluate = [&](uint32_t iteration) {
    IterationStat stat;
    stat.iteration = iteration;
    stat.seconds = sampling_seconds;
    stat.log_likelihood = JointLogLikelihood(
        corpus, sampler.Assignments(), config.num_topics, alpha, beta);
    stat.tokens_per_second =
        block_seconds > 0.0
            ? static_cast<double>(corpus.num_tokens()) * block_iterations /
                  block_seconds
            : 0.0;
    block_seconds = 0.0;
    block_iterations = 0;
    result.history.push_back(stat);
    if (options.verbose) {
      std::printf("[%s] iter %4u  time %8.2fs  ll %.6e  %.2fM tok/s\n",
                  sampler.name().c_str(), stat.iteration, stat.seconds,
                  stat.log_likelihood, stat.tokens_per_second / 1e6);
      std::fflush(stdout);
    }
    if (callback) callback(stat);
  };

  for (uint32_t iter = 1; iter <= options.iterations; ++iter) {
    Stopwatch watch;
    if (grid != nullptr) {
      executor->RunSweep(*grid, options.sweep_plan);
    } else {
      sampler.Iterate();
    }
    double elapsed = watch.Seconds();
    sampling_seconds += elapsed;
    block_seconds += elapsed;
    ++block_iterations;
    if (options.optimize_hyper_every != 0 &&
        iter % options.optimize_hyper_every == 0 &&
        iter != options.iterations) {
      auto assignments = sampler.Assignments();
      alpha = EstimateSymmetricAlpha(corpus, assignments, config.num_topics,
                                     alpha);
      beta = EstimateSymmetricBeta(corpus, assignments, config.num_topics,
                                   beta);
      sampler.SetPriors(alpha, beta);
      if (options.verbose) {
        std::printf("[%s] iter %4u  optimized priors: alpha=%.4g beta=%.4g\n",
                    sampler.name().c_str(), iter, alpha, beta);
      }
    }
    bool last = iter == options.iterations;
    if (last || (options.eval_every != 0 && iter % options.eval_every == 0)) {
      evaluate(iter);
    }
  }

  result.final_alpha = alpha;
  result.final_beta = beta;
  result.assignments = sampler.Assignments();
  result.final_log_likelihood =
      result.history.empty() ? 0.0 : result.history.back().log_likelihood;
  result.total_seconds = sampling_seconds;
  return result;
}

}  // namespace warplda

#include "core/parallel_executor.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace warplda {

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Registry handles are resolved once (first use) and cached; the recording
// sites only pay a relaxed MetricsEnabled() check per stage, never a lookup.
struct ExecutorMetrics {
  obs::Counter* blocks_claimed;
  obs::Counter* blocks_stolen;
  obs::Histogram* worker_blocks;
  obs::Histogram* barrier_wait_us;
  obs::Histogram* end_stage_us;

  static const ExecutorMetrics& Get() {
    static const ExecutorMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      ExecutorMetrics em;
      em.blocks_claimed = reg.GetCounter(
          "executor_blocks_claimed_total",
          "Grid blocks executed across all sweep stages");
      em.blocks_stolen = reg.GetCounter(
          "executor_blocks_stolen_total",
          "Blocks run by a different worker than a static round-robin "
          "schedule would have assigned (dynamic load balancing at work)");
      em.worker_blocks = reg.GetHistogram(
          "executor_worker_blocks",
          "Blocks one worker executed in one stage",
          obs::DefaultCountBuckets());
      em.barrier_wait_us = reg.GetHistogram(
          "executor_barrier_wait_us",
          "Driver idle time at the end-of-run barrier after finishing its "
          "own share of tasks");
      em.end_stage_us = reg.GetHistogram(
          "executor_end_stage_us",
          "EndStage barrier work: staged-write apply plus delta fold");
      return em;
    }();
    return m;
  }
};

}  // namespace

ParallelExecutor::ParallelExecutor(uint32_t num_threads)
    : num_threads_(std::max(1u, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (uint32_t w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ParallelExecutor::Run(uint32_t num_tasks, const Task& fn) {
  if (num_tasks == 0) return;
  if (workers_.empty()) {
    // Same contract as the pooled path: a throwing task does not stop the
    // remaining tasks, and the first exception is rethrown at the end.
    std::exception_ptr error;
    for (uint32_t t = 0; t < num_tasks; ++t) {
      try {
        fn(0, t);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->num_tasks = num_tasks;
  job->remaining = num_tasks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
  }
  cv_work_.notify_all();
  RunTasks(*job, 0);  // the caller works too, as worker 0
  const bool metrics = obs::MetricsEnabled();
  const int64_t wait_start = metrics ? NowUs() : 0;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return job->remaining == 0; });
  if (metrics) {
    ExecutorMetrics::Get().barrier_wait_us->Observe(
        static_cast<double>(NowUs() - wait_start));
  }
  job_.reset();
  if (job->error) std::rethrow_exception(job->error);
}

void ParallelExecutor::RunTasks(Job& job, uint32_t worker) {
  for (;;) {
    const uint32_t t = job.next.fetch_add(1, std::memory_order_relaxed);
    if (t >= job.num_tasks) return;
    try {
      (*job.fn)(worker, t);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!job.error) job.error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (--job.remaining == 0) cv_done_.notify_all();
  }
}

void ParallelExecutor::WorkerLoop(uint32_t worker) {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [&] {
        return shutdown_ ||
               (job_ != nullptr &&
                job_->next.load(std::memory_order_relaxed) < job_->num_tasks);
      });
      if (shutdown_) return;
      job = job_;
    }
    RunTasks(*job, worker);
  }
}

void ParallelExecutor::RunSweep(GridSampler& sampler, const SweepPlan& plan,
                                const StageHook& barrier_hook) {
  // FinishSweep reserves the worker pool (legal at the BeginSweep barrier).
  sampler.BeginSweep(plan);
  FinishSweep(sampler, plan, barrier_hook);
}

void ParallelExecutor::FinishSweep(GridSampler& sampler, const SweepPlan& plan,
                                   const StageHook& barrier_hook) {
  const uint32_t doc_blocks = plan.num_doc_blocks;
  const uint32_t word_blocks = plan.num_word_blocks;
  sampler.ReserveWorkers(num_threads_);
  // Per-worker block tallies for the current stage. Workers write only
  // their own slot (padded to a cache line); the driver folds them into the
  // registry at each barrier, where workers are quiescent.
  struct alignas(64) WorkerTally {
    uint64_t claimed = 0;
    uint64_t stolen = 0;
  };
  std::vector<WorkerTally> tallies(num_threads_);
  try {
    // Loop from the sampler's current stage — kWordAccept for a fresh
    // sweep, later for one reopened by RestoreSweepState — to completion.
    while (sampler.sweep_stage() != SweepStage::kDone) {
      const SweepStage stage = sampler.sweep_stage();
      const bool metrics = obs::MetricsEnabled();
      {
        // The stage span covers block execution and the EndStage fold, but
        // not the barrier hook (checkpoints get their own spans).
        obs::TraceSpan stage_span(ToString(stage), "stage");
        // Wavefront order: task t is block (i, j) with i = t mod D and
        // j = (i + t/D) mod W — round r = t/D rotates the word slice, so the
        // D earliest-enqueued tasks pair distinct rows with distinct columns.
        Run(doc_blocks * word_blocks, [&](uint32_t worker, uint32_t t) {
          obs::TraceSpan block_span("block", "executor", t);
          if (metrics) {
            tallies[worker].claimed++;
            // "Stolen" relative to a static round-robin schedule: dynamic
            // claiming moved this block off its nominal worker.
            if (worker != t % num_threads_) tallies[worker].stolen++;
          }
          const uint32_t i = t % doc_blocks;
          const uint32_t j = (i + t / doc_blocks) % word_blocks;
          sampler.RunBlock(i, j, worker);
        });
        obs::TraceSpan fold_span("end-stage", "executor");
        const int64_t fold_start = metrics ? NowUs() : 0;
        sampler.EndStage();
        if (metrics) {
          ExecutorMetrics::Get().end_stage_us->Observe(
              static_cast<double>(NowUs() - fold_start));
        }
      }
      if (metrics) {
        const ExecutorMetrics& em = ExecutorMetrics::Get();
        for (WorkerTally& tally : tallies) {
          if (tally.claimed > 0) {
            em.blocks_claimed->Inc(tally.claimed);
            em.blocks_stolen->Inc(tally.stolen);
            em.worker_blocks->Observe(static_cast<double>(tally.claimed));
          }
          tally = WorkerTally{};
        }
      }
      if (barrier_hook && sampler.sweep_stage() != SweepStage::kDone) {
        barrier_hook(sampler.sweep_stage());
      }
    }
    sampler.EndSweep();
  } catch (...) {
    sampler.AbortSweep();  // don't wedge the sampler mid-sweep
    throw;
  }
}

}  // namespace warplda

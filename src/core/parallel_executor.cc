#include "core/parallel_executor.h"

#include <algorithm>

namespace warplda {

ParallelExecutor::ParallelExecutor(uint32_t num_threads)
    : num_threads_(std::max(1u, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (uint32_t w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ParallelExecutor::Run(uint32_t num_tasks, const Task& fn) {
  if (num_tasks == 0) return;
  if (workers_.empty()) {
    // Same contract as the pooled path: a throwing task does not stop the
    // remaining tasks, and the first exception is rethrown at the end.
    std::exception_ptr error;
    for (uint32_t t = 0; t < num_tasks; ++t) {
      try {
        fn(0, t);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->num_tasks = num_tasks;
  job->remaining = num_tasks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
  }
  cv_work_.notify_all();
  RunTasks(*job, 0);  // the caller works too, as worker 0
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return job->remaining == 0; });
  job_.reset();
  if (job->error) std::rethrow_exception(job->error);
}

void ParallelExecutor::RunTasks(Job& job, uint32_t worker) {
  for (;;) {
    const uint32_t t = job.next.fetch_add(1, std::memory_order_relaxed);
    if (t >= job.num_tasks) return;
    try {
      (*job.fn)(worker, t);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!job.error) job.error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (--job.remaining == 0) cv_done_.notify_all();
  }
}

void ParallelExecutor::WorkerLoop(uint32_t worker) {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [&] {
        return shutdown_ ||
               (job_ != nullptr &&
                job_->next.load(std::memory_order_relaxed) < job_->num_tasks);
      });
      if (shutdown_) return;
      job = job_;
    }
    RunTasks(*job, worker);
  }
}

void ParallelExecutor::RunSweep(GridSampler& sampler, const SweepPlan& plan,
                                const StageHook& barrier_hook) {
  // FinishSweep reserves the worker pool (legal at the BeginSweep barrier).
  sampler.BeginSweep(plan);
  FinishSweep(sampler, plan, barrier_hook);
}

void ParallelExecutor::FinishSweep(GridSampler& sampler, const SweepPlan& plan,
                                   const StageHook& barrier_hook) {
  const uint32_t doc_blocks = plan.num_doc_blocks;
  const uint32_t word_blocks = plan.num_word_blocks;
  sampler.ReserveWorkers(num_threads_);
  try {
    // Loop from the sampler's current stage — kWordAccept for a fresh
    // sweep, later for one reopened by RestoreSweepState — to completion.
    while (sampler.sweep_stage() != SweepStage::kDone) {
      // Wavefront order: task t is block (i, j) with i = t mod D and
      // j = (i + t/D) mod W — round r = t/D rotates the word slice, so the D
      // earliest-enqueued tasks pair distinct rows with distinct columns.
      Run(doc_blocks * word_blocks, [&](uint32_t worker, uint32_t t) {
        const uint32_t i = t % doc_blocks;
        const uint32_t j = (i + t / doc_blocks) % word_blocks;
        sampler.RunBlock(i, j, worker);
      });
      sampler.EndStage();
      if (barrier_hook && sampler.sweep_stage() != SweepStage::kDone) {
        barrier_hook(sampler.sweep_stage());
      }
    }
    sampler.EndSweep();
  } catch (...) {
    sampler.AbortSweep();  // don't wedge the sampler mid-sweep
    throw;
  }
}

}  // namespace warplda

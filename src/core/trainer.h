#ifndef WARPLDA_CORE_TRAINER_H_
#define WARPLDA_CORE_TRAINER_H_

#include <functional>
#include <string>
#include <vector>

#include "baselines/sampler.h"
#include "core/sweep_plan.h"
#include "corpus/corpus.h"
#include "eval/topic_model.h"

namespace warplda {

/// Controls a training run driven by Train().
struct TrainOptions {
  uint32_t iterations = 100;
  /// Evaluate the joint log likelihood every this many iterations
  /// (0 = only after the last iteration). Evaluation time is excluded from
  /// the reported sampling time, matching the paper's methodology.
  uint32_t eval_every = 5;
  /// Re-estimate the symmetric α and β priors with Minka's fixed point
  /// every this many iterations (0 disables). MALLET-style hyper-parameter
  /// optimization; typically improves held-out quality over fixed 50/K.
  uint32_t optimize_hyper_every = 0;
  bool verbose = false;  ///< print one line per evaluation to stdout
  /// Grid execution: when set, every sweep runs block-wise over `sweep_plan`
  /// through a ParallelExecutor with `sweep_threads` workers (wavefront
  /// block schedule) instead of the fused Iterate(). Requires the sampler to
  /// implement GridSampler (Train throws std::invalid_argument otherwise).
  /// Changes wall-clock only: grid sweeps sample identically to Iterate().
  bool grid_execution = false;
  SweepPlan sweep_plan;        ///< plan swept when grid_execution is set
  uint32_t sweep_threads = 1;  ///< executor size, calling thread included

  /// Durability (core/checkpoint.h). When non-empty, Train() writes
  /// crash-safe checkpoints into this directory (created if missing):
  ///  * every `checkpoint_every` iterations (0 disables the cadence), and
  ///    always after the final iteration, a full checkpoint — in grid mode a
  ///    between-sweeps SweepCheckpoint ("sweep.ckpt", preserving the pending
  ///    proposals and RNG stream epoch so the resumed run is bit-identical
  ///    to an uninterrupted one), otherwise a TrainingCheckpoint
  ///    ("train.ckpt", resuming the exact assignments; the continued
  ///    trajectory is statistically equivalent, not bit-identical);
  ///  * with `checkpoint_stages` set (grid mode only), additionally at every
  ///    stage barrier of every sweep, so a kill loses at most one stage of
  ///    work.
  /// All writes are atomic (temp + fsync + rename): a kill at any instant
  /// leaves the previous complete checkpoint or the new one, never a torn
  /// file. A failed write throws std::runtime_error — durability failures
  /// must not pass silently.
  std::string checkpoint_dir;
  uint32_t checkpoint_every = 0;
  bool checkpoint_stages = false;
  /// Resume from the newest checkpoint in `checkpoint_dir` before training.
  /// Missing files mean a fresh start (so the same command line serves both
  /// the first launch and every restart); a corrupt or mismatched checkpoint
  /// throws std::runtime_error rather than silently retraining. A run
  /// restored mid-sweep finishes the in-flight sweep first, bit-identically
  /// to the uninterrupted schedule. `history` restarts at the resume point.
  bool resume = false;
  /// Test/telemetry hook: called after each checkpoint file is durably on
  /// disk, with the number of fully completed iterations and the stage the
  /// in-flight sweep will resume at (kWordAccept for an iteration-boundary
  /// checkpoint). The kill-and-resume harness SIGKILLs inside this hook.
  /// Checkpoints are written by a background thread (core/checkpoint.h
  /// AsyncCheckpointWriter), so the hook runs on that writer thread — still
  /// strictly after its checkpoint is durable and before any later file
  /// write, preserving the kill-and-resume semantics. Must not throw.
  std::function<void(uint32_t completed_iterations, SweepStage next_stage)>
      checkpoint_hook;

  /// Observability (src/obs/). `metrics` turns on the global hot-path
  /// metric recording for the duration of the run (counters/histograms land
  /// in obs::MetricsRegistry::Global(): trainer_*, executor_*, ckpt_*).
  /// `trace_path`, when non-empty, records a Chrome trace_event timeline of
  /// the run — per-sweep, per-stage, and per-worker block spans — and
  /// writes it to this path at the end (openable in chrome://tracing or
  /// Perfetto). Both default off and cost nothing when off.
  bool metrics = false;
  std::string trace_path;
};

/// One row of a convergence trace (the data behind Fig 5's panels).
struct IterationStat {
  uint32_t iteration = 0;       ///< 1-based, after this many sweeps
  double seconds = 0.0;         ///< cumulative sampling seconds (eval excluded)
  double log_likelihood = 0.0;  ///< joint log likelihood at this point
  double tokens_per_second = 0.0;  ///< throughput of the last sweep block
};

/// Outcome of Train(): the convergence trace plus the final state.
struct TrainResult {
  std::vector<IterationStat> history;
  std::vector<TopicId> assignments;  ///< document-major final assignments
  double final_log_likelihood = 0.0;
  double total_seconds = 0.0;
  /// Priors in effect at the end (differ from LdaConfig's when
  /// optimize_hyper_every was set).
  double final_alpha = 0.0;
  double final_beta = 0.0;

  /// Builds the word-topic model from the final assignments, using the
  /// optimized priors when hyper-parameter optimization ran.
  TopicModel ToModel(const Corpus& corpus, const LdaConfig& config) const {
    double alpha = final_alpha > 0.0 ? final_alpha : config.alpha;
    double beta = final_beta > 0.0 ? final_beta : config.beta;
    return TopicModel(corpus, assignments, config.num_topics, alpha, beta);
  }
};

/// Per-evaluation callback: receives each IterationStat as it is produced.
using TrainCallback = std::function<void(const IterationStat&)>;

/// Runs `options.iterations` sweeps of `sampler` over `corpus`, recording a
/// convergence trace. The sampler is (re-)initialized first.
TrainResult Train(Sampler& sampler, const Corpus& corpus,
                  const LdaConfig& config, const TrainOptions& options,
                  const TrainCallback& callback = nullptr);

}  // namespace warplda

#endif  // WARPLDA_CORE_TRAINER_H_

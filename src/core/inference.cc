#include "core/inference.h"

#include <algorithm>

#include "util/hash_count.h"

namespace warplda {

Inferencer::Inferencer(const TopicModel& model, const InferenceOptions& options)
    : model_(model), options_(options), rng_(options.seed) {
  beta_bar_ = model.beta() * model.num_words();
  word_alias_.resize(model.num_words());
  word_count_prob_.assign(model.num_words(), 0.0);
  phi_.resize(model.num_words());
}

const AliasTable& Inferencer::WordAlias(WordId w) {
  AliasTable& table = word_alias_[w];
  if (table.empty()) {
    // q_word ∝ C_wk + β: count-weighted alias plus uniform β branch.
    std::vector<std::pair<uint32_t, double>> entries;
    double count_total = 0.0;
    for (const auto& [k, c] : model_.word_topics(w)) {
      entries.emplace_back(k, static_cast<double>(c));
      count_total += c;
    }
    if (entries.empty()) entries.emplace_back(0, 1.0);
    table.BuildSparse(entries);
    word_count_prob_[w] =
        count_total / (count_total + model_.beta() * model_.num_topics());
  }
  return table;
}

double Inferencer::Phi(WordId w, TopicId k) const {
  const auto& row = phi_[w];
  return row[k];
}

std::vector<double> Inferencer::InferTheta(std::span<const WordId> words) {
  const uint32_t k_topics = model_.num_topics();
  const double alpha = model_.alpha();

  std::vector<WordId> doc;
  doc.reserve(words.size());
  for (WordId w : words) {
    if (w < model_.num_words()) doc.push_back(w);
  }
  std::vector<double> theta(k_topics,
                            1.0 / std::max<uint32_t>(1, k_topics));
  if (doc.empty()) return theta;

  // Materialize φ̂ rows for the words in this document (cached across calls).
  for (WordId w : doc) {
    if (phi_[w].empty()) {
      auto& row = phi_[w];
      row.assign(k_topics, 0.0);
      for (uint32_t k = 0; k < k_topics; ++k) {
        row[k] = model_.beta() / (model_.topic_counts()[k] + beta_bar_);
      }
      for (const auto& [k, c] : model_.word_topics(w)) {
        row[k] = (c + model_.beta()) /
                 (model_.topic_counts()[k] + beta_bar_);
      }
    }
    WordAlias(w);  // warm the proposal table too
  }

  const uint32_t len = static_cast<uint32_t>(doc.size());
  std::vector<TopicId> z(len);
  HashCount cd(std::min<uint32_t>(k_topics, 2 * len));
  for (uint32_t n = 0; n < len; ++n) {
    z[n] = rng_.NextInt(k_topics);
    cd.Inc(z[n]);
  }

  const double position_prob =
      static_cast<double>(len) /
      (static_cast<double>(len) + alpha * k_topics);

  for (uint32_t iter = 0; iter < options_.iterations; ++iter) {
    for (uint32_t n = 0; n < len; ++n) {
      const WordId w = doc[n];
      TopicId current = z[n];
      for (uint32_t step = 0; step < options_.mh_steps; ++step) {
        // Doc proposal: q_doc ∝ C_dk + α. Target p ∝ (C_dk+α)φ̂; the doc
        // factors cancel, leaving the φ̂ ratio.
        TopicId t = rng_.NextBernoulli(position_prob)
                        ? z[rng_.NextInt(len)]
                        : rng_.NextInt(k_topics);
        if (t != current) {
          double accept = Phi(w, t) / Phi(w, current);
          if (accept >= 1.0 || rng_.NextBernoulli(accept)) {
            cd.Dec(current);
            cd.Inc(t);
            z[n] = t;
            current = t;
          }
        }
        // Word proposal: q_word ∝ C_wk + β ≈ φ̂ numerator; accept with the
        // full ratio p(t)q(s) / (p(s)q(t)).
        const AliasTable& alias = WordAlias(w);
        t = rng_.NextBernoulli(word_count_prob_[w]) ? alias.Sample(rng_)
                                                    : rng_.NextInt(k_topics);
        if (t != current) {
          auto q_word = [&](TopicId k) {
            // C_wk + β from the model row (sparse lookup).
            for (const auto& [topic, c] : model_.word_topics(w)) {
              if (topic == k) return c + model_.beta();
            }
            return model_.beta();
          };
          double p_t = (cd.Get(t) + alpha) * Phi(w, t);
          double p_s = (cd.Get(current) + alpha) * Phi(w, current);
          double accept = (p_t * q_word(current)) / (p_s * q_word(t));
          if (accept >= 1.0 || rng_.NextBernoulli(accept)) {
            cd.Dec(current);
            cd.Inc(t);
            z[n] = t;
            current = t;
          }
        }
      }
    }
  }

  double denom = len + alpha * k_topics;
  for (uint32_t k = 0; k < k_topics; ++k) {
    theta[k] = (cd.Get(k) + alpha) / denom;
  }
  return theta;
}

TopicId Inferencer::MostLikelyTopic(std::span<const WordId> words) {
  auto theta = InferTheta(words);
  return static_cast<TopicId>(
      std::max_element(theta.begin(), theta.end()) - theta.begin());
}

}  // namespace warplda

#include "core/inference.h"

#include <algorithm>

namespace warplda {

Inferencer::Inferencer(std::shared_ptr<const TopicModel> model,
                       const InferenceOptions& options)
    : model_(std::move(model)), options_(options), rng_(options.seed) {
  beta_bar_ = model_->beta() * model_->num_words();
  word_alias_.resize(model_->num_words());
  word_count_prob_.assign(model_->num_words(), 0.0);
  phi_.resize(model_->num_words());
}

Inferencer::Inferencer(const TopicModel& model, const InferenceOptions& options)
    : Inferencer(std::make_shared<const TopicModel>(model), options) {}

void Inferencer::Prebuild() {
  for (WordId w = 0; w < model_->num_words(); ++w) {
    BuildPhiRow(w);
    WordAlias(w);
  }
}

const AliasTable& Inferencer::WordAlias(WordId w) {
  AliasTable& table = word_alias_[w];
  if (table.empty()) {
    word_count_prob_[w] = BuildWordProposal(*model_, w, &table);
  }
  return table;
}

void Inferencer::BuildPhiRow(WordId w) {
  if (!phi_[w].empty()) return;
  auto& row = phi_[w];
  row.resize(model_->num_topics());
  FillPhiRow(*model_, w, beta_bar_, row.data());
}

/// Adapts the lazy caches to the MhInferTheta ModelView contract: Warm()
/// materializes the φ̂ row and alias table, after which every read is O(1).
struct Inferencer::LazyView {
  Inferencer& self;

  uint32_t num_topics() const { return self.model_->num_topics(); }
  WordId num_words() const { return self.model_->num_words(); }
  double alpha() const { return self.model_->alpha(); }
  void Warm(WordId w) {
    self.BuildPhiRow(w);
    self.WordAlias(w);
  }
  double Phi(WordId w, TopicId k) const { return self.phi_[w][k]; }
  double QWord(WordId w, TopicId k) const {
    // C_wk + β recovered from the materialized φ̂ row in O(1):
    // φ̂_wk·(C_k+β̄), instead of scanning the sparse model row.
    return self.phi_[w][k] *
           (self.model_->topic_counts()[k] + self.beta_bar_);
  }
  double word_count_prob(WordId w) const { return self.word_count_prob_[w]; }
  const AliasTable& word_alias(WordId w) const { return self.word_alias_[w]; }
};

std::vector<double> Inferencer::InferTheta(std::span<const WordId> words) {
  LazyView view{*this};
  return MhInferTheta(view, words, options_, rng_);
}

TopicId Inferencer::MostLikelyTopic(std::span<const WordId> words) {
  auto theta = InferTheta(words);
  return static_cast<TopicId>(
      std::max_element(theta.begin(), theta.end()) - theta.begin());
}

}  // namespace warplda

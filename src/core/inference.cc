#include "core/inference.h"

#include <algorithm>
#include <memory>

namespace warplda {

void DensePhiTable::Reset(WordId num_words, uint32_t num_topics) {
  num_topics_ = num_topics;
  // Uninitialized on purpose — see the phi_ declaration.
  phi_ = std::make_unique_for_overwrite<double[]>(
      static_cast<size_t>(num_words) * num_topics);
  built_.assign(num_words, 0);
  alias_.assign(num_words, AliasTable());
  count_prob_.assign(num_words, 0.0);
}

void DensePhiTable::EnsureRow(const TopicModel& model, WordId w,
                              double beta_bar) {
  if (built_[w]) return;
  FillPhiRow(model, w, beta_bar,
             phi_.get() + static_cast<size_t>(w) * num_topics_);
  count_prob_[w] = BuildWordProposal(model, w, &alias_[w]);
  built_[w] = 1;
}

void DensePhiTable::BuildAll(const TopicModel& model, double beta_bar) {
  for (WordId w = 0; w < num_words(); ++w) EnsureRow(model, w, beta_bar);
}

size_t DensePhiTable::MemoryBytes() const {
  // phi_ is counted at its allocated (virtual) size; lazily used tables may
  // have committed fewer physical pages.
  size_t bytes = static_cast<size_t>(num_words()) * num_topics_ *
                     sizeof(double) +
                 built_.capacity() * sizeof(uint8_t) +
                 count_prob_.capacity() * sizeof(double) +
                 alias_.capacity() * sizeof(AliasTable);
  for (const AliasTable& table : alias_) bytes += table.HeapBytes();
  return bytes;
}

Inferencer::Inferencer(std::shared_ptr<const TopicModel> model,
                       const InferenceOptions& options)
    : model_(std::move(model)), options_(options), rng_(options.seed) {
  beta_bar_ = model_->beta() * model_->num_words();
  table_.Reset(model_->num_words(), model_->num_topics());
}

Inferencer::Inferencer(const TopicModel& model, const InferenceOptions& options)
    : Inferencer(std::make_shared<const TopicModel>(model), options) {}

void Inferencer::Prebuild() { table_.BuildAll(*model_, beta_bar_); }

/// Adapts the lazy caches to the MhInferTheta ModelView contract: Warm()
/// materializes the φ̂ row and alias table, after which every read is O(1).
struct Inferencer::LazyView {
  Inferencer& self;

  uint32_t num_topics() const { return self.model_->num_topics(); }
  WordId num_words() const { return self.model_->num_words(); }
  double alpha() const { return self.model_->alpha(); }
  void Warm(WordId w) { self.table_.EnsureRow(*self.model_, w, self.beta_bar_); }
  double Phi(WordId w, TopicId k) const { return self.table_.row(w)[k]; }
  double QWord(WordId w, TopicId k) const {
    // C_wk + β recovered from the materialized φ̂ row in O(1):
    // φ̂_wk·(C_k+β̄), instead of scanning the sparse model row.
    return self.table_.row(w)[k] *
           (self.model_->topic_counts()[k] + self.beta_bar_);
  }
  double word_count_prob(WordId w) const { return self.table_.count_prob(w); }
  const AliasTable& word_alias(WordId w) const { return self.table_.alias(w); }
};

std::vector<double> Inferencer::InferTheta(std::span<const WordId> words) {
  LazyView view{*this};
  return MhInferTheta(view, words, options_, rng_);
}

TopicId Inferencer::MostLikelyTopic(std::span<const WordId> words) {
  auto theta = InferTheta(words);
  return static_cast<TopicId>(
      std::max_element(theta.begin(), theta.end()) - theta.begin());
}

}  // namespace warplda

#include "core/streaming.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/checkpoint_io.h"
#include "util/hash_count.h"

namespace warplda {

StreamingWarpLda::StreamingWarpLda(WordId vocab_size,
                                   const StreamingOptions& options)
    : vocab_size_(vocab_size), options_(options), rng_(options.seed) {
  beta_bar_ = options_.beta * vocab_size;
  const size_t cells =
      static_cast<size_t>(vocab_size) * options_.num_topics;
  lambda_.assign(cells, 0.0);
  lambda_k_.assign(options_.num_topics, 0.0);
  batch_counts_.assign(cells, 0.0);
  batch_ck_.assign(options_.num_topics, 0.0);
  word_alias_.resize(vocab_size);
  alias_epoch_.assign(vocab_size, ~0ull);
  alias_count_prob_.assign(vocab_size, 0.0);
}

const AliasTable& StreamingWarpLda::WordProposal(WordId w) {
  if (alias_epoch_[w] != batches_seen_) {
    // q_word ∝ λ_wk + β: count-weighted sparse alias over the non-negligible
    // entries plus a uniform β branch.
    const double* row = &lambda_[static_cast<size_t>(w) * options_.num_topics];
    std::vector<std::pair<uint32_t, double>> entries;
    double total = 0.0;
    for (uint32_t k = 0; k < options_.num_topics; ++k) {
      if (row[k] > 1e-9) {
        entries.emplace_back(k, row[k]);
        total += row[k];
      }
    }
    if (entries.empty()) entries.emplace_back(rng_.NextInt(options_.num_topics),
                                              1.0);
    word_alias_[w].BuildSparse(entries);
    alias_count_prob_[w] =
        total / (total + options_.beta * options_.num_topics);
    alias_epoch_[w] = batches_seen_;
  }
  return word_alias_[w];
}

double StreamingWarpLda::Phi(WordId w, TopicId k) const {
  return (lambda_[static_cast<size_t>(w) * options_.num_topics + k] +
          options_.beta) /
         (lambda_k_[k] + beta_bar_);
}

void StreamingWarpLda::FoldDocument(const std::vector<WordId>& doc) {
  const uint32_t k_topics = options_.num_topics;
  const uint32_t len = static_cast<uint32_t>(doc.size());
  if (len == 0) return;

  std::vector<TopicId> z(len);
  HashCount cd(std::min<uint32_t>(k_topics, 2 * len));
  for (uint32_t n = 0; n < len; ++n) {
    z[n] = rng_.NextInt(k_topics);
    cd.Inc(z[n]);
  }
  const double position_prob =
      static_cast<double>(len) /
      (static_cast<double>(len) + options_.alpha * k_topics);

  for (uint32_t sweep = 0; sweep < options_.inner_iterations; ++sweep) {
    for (uint32_t n = 0; n < len; ++n) {
      const WordId w = doc[n];
      TopicId current = z[n];
      for (uint32_t step = 0; step < options_.mh_steps; ++step) {
        // Doc proposal: the (C_dk+α) factors cancel, leaving the φ ratio.
        TopicId t = rng_.NextBernoulli(position_prob)
                        ? z[rng_.NextInt(len)]
                        : rng_.NextInt(k_topics);
        if (t != current) {
          double accept = Phi(w, t) / Phi(w, current);
          if (accept >= 1.0 || rng_.NextBernoulli(accept)) {
            cd.Dec(current);
            cd.Inc(t);
            z[n] = t;
            current = t;
          }
        }
        // Word proposal q_word ∝ λ_wk+β; target ∝ (C_dk+α)φ̂_wk.
        const AliasTable& alias = WordProposal(w);
        t = rng_.NextBernoulli(alias_count_prob_[w])
                ? alias.Sample(rng_)
                : rng_.NextInt(k_topics);
        if (t != current) {
          const double* row =
              &lambda_[static_cast<size_t>(w) * k_topics];
          auto q = [&](TopicId kk) { return row[kk] + options_.beta; };
          double p_t = (cd.Get(t) + options_.alpha) * Phi(w, t);
          double p_s = (cd.Get(current) + options_.alpha) * Phi(w, current);
          double accept = (p_t * q(current)) / (p_s * q(t));
          if (accept >= 1.0 || rng_.NextBernoulli(accept)) {
            cd.Dec(current);
            cd.Inc(t);
            z[n] = t;
            current = t;
          }
        }
      }
    }
  }

  for (uint32_t n = 0; n < len; ++n) {
    const size_t cell = static_cast<size_t>(doc[n]) * k_topics + z[n];
    if (batch_counts_[cell] == 0.0) {
      // First touch of this word this batch: remember it for cleanup.
      bool seen = false;
      for (uint32_t k = 0; k < k_topics && !seen; ++k) {
        seen = batch_counts_[static_cast<size_t>(doc[n]) * k_topics + k] > 0;
      }
      if (!seen) batch_words_.push_back(doc[n]);
    }
    batch_counts_[cell] += 1.0;
    batch_ck_[z[n]] += 1.0;
  }
}

double StreamingWarpLda::ProcessBatch(
    const std::vector<std::vector<WordId>>& batch) {
  const uint32_t k_topics = options_.num_topics;
  batch_words_.clear();
  std::fill(batch_ck_.begin(), batch_ck_.end(), 0.0);

  uint64_t batch_tokens = 0;
  for (const auto& doc : batch) {
    FoldDocument(doc);
    batch_tokens += doc.size();
  }
  ++batches_seen_;
  docs_seen_ += batch.size();

  // Robbins-Monro blend of the rescaled batch statistics. The scale factor
  // extrapolates the batch to the stream seen so far (SVI's D/|B| with the
  // running document count standing in for D).
  const double rho =
      std::pow(options_.tau + static_cast<double>(batches_seen_),
               -options_.kappa);
  const double scale =
      batch.empty() ? 0.0
                    : static_cast<double>(docs_seen_) / batch.size();

  for (double& lk : lambda_k_) lk *= (1.0 - rho);
  for (uint32_t k = 0; k < k_topics; ++k) {
    lambda_k_[k] += rho * scale * batch_ck_[k];
  }
  // Decay of untouched words is deferred multiplicatively via lambda_k_;
  // exact per-entry decay would be O(VK) per batch. Instead decay touched
  // rows exactly and fold the global decay into the normalizer, which keeps
  // Phi consistent in aggregate (standard sparse-SVI trick).
  for (WordId w : batch_words_) {
    double* row = &lambda_[static_cast<size_t>(w) * k_topics];
    double* counts = &batch_counts_[static_cast<size_t>(w) * k_topics];
    for (uint32_t k = 0; k < k_topics; ++k) {
      row[k] = (1.0 - rho) * row[k] + rho * scale * counts[k];
      counts[k] = 0.0;
    }
  }
  (void)batch_tokens;
  return rho;
}

void StreamingWarpLda::ProcessCorpus(const Corpus& corpus, uint32_t epochs) {
  for (uint32_t epoch = 0; epoch < epochs; ++epoch) {
    std::vector<std::vector<WordId>> batch;
    for (DocId d = 0; d < corpus.num_docs(); ++d) {
      auto words = corpus.doc_tokens(d);
      batch.emplace_back(words.begin(), words.end());
      if (batch.size() == options_.batch_size) {
        ProcessBatch(batch);
        batch.clear();
      }
    }
    if (!batch.empty()) ProcessBatch(batch);
  }
}

std::vector<std::pair<WordId, double>> StreamingWarpLda::TopWords(
    TopicId k, uint32_t n) const {
  std::vector<std::pair<WordId, double>> all;
  for (WordId w = 0; w < vocab_size_; ++w) {
    double value = lambda_[static_cast<size_t>(w) * options_.num_topics + k];
    if (value > 0.0) all.emplace_back(w, value);
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (all.size() > n) all.resize(n);
  return all;
}

TopicModel StreamingWarpLda::ExportModel() const {
  // Round the running statistics into integer counts via a synthetic corpus
  // of one "document" per word row. Cheapest correct path: rebuild through
  // the TopicModel count constructor is not applicable, so write counts
  // directly through a corpus of repeated tokens.
  CorpusBuilder builder;
  builder.set_num_words(vocab_size_);
  std::vector<WordId> doc;
  std::vector<TopicId> assignments;
  for (WordId w = 0; w < vocab_size_; ++w) {
    doc.clear();
    for (uint32_t k = 0; k < options_.num_topics; ++k) {
      int32_t c = static_cast<int32_t>(std::lround(
          lambda_[static_cast<size_t>(w) * options_.num_topics + k]));
      for (int32_t i = 0; i < c; ++i) {
        doc.push_back(w);
        assignments.push_back(k);
      }
    }
    builder.AddDocument(doc);
  }
  Corpus synthetic = builder.Build();
  return TopicModel(synthetic, assignments, options_.num_topics,
                    options_.alpha, options_.beta);
}

std::shared_ptr<const TopicModel> StreamingWarpLda::ExportSharedModel(
    std::vector<WordId>* changed_words) {
  return TrackExportDelta(ExportSharedModel(), &last_export_, changed_words);
}

bool StreamingWarpLda::SaveState(const std::string& path,
                                 std::string* error) const {
  PayloadWriter out;
  out.Put(vocab_size_);
  out.Put(options_.num_topics);
  out.Put(options_.batch_size);
  out.Put(options_.inner_iterations);
  out.Put(options_.mh_steps);
  out.Put(options_.alpha);
  out.Put(options_.beta);
  out.Put(options_.kappa);
  out.Put(options_.tau);
  out.Put(options_.seed);
  out.Put(batches_seen_);
  out.Put(docs_seen_);
  for (uint64_t s : rng_.State()) out.Put(s);
  out.PutVec(lambda_);
  out.PutVec(lambda_k_);
  return WriteFrame(path, FrameKind::kStreamingState, out.bytes(), error);
}

bool StreamingWarpLda::LoadState(const std::string& path, std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = path + ": " + message;
    return false;
  };
  std::vector<uint8_t> payload;
  if (!ReadFrame(path, FrameKind::kStreamingState, &payload, error)) {
    return false;
  }
  PayloadReader in(payload);
  WordId vocab = 0;
  StreamingOptions stored;
  uint64_t batches = 0;
  uint64_t docs = 0;
  std::array<uint64_t, 4> rng_state{};
  if (!in.Get(&vocab) || !in.Get(&stored.num_topics) ||
      !in.Get(&stored.batch_size) || !in.Get(&stored.inner_iterations) ||
      !in.Get(&stored.mh_steps) || !in.Get(&stored.alpha) ||
      !in.Get(&stored.beta) || !in.Get(&stored.kappa) ||
      !in.Get(&stored.tau) || !in.Get(&stored.seed) || !in.Get(&batches) ||
      !in.Get(&docs) || !in.Get(&rng_state[0]) || !in.Get(&rng_state[1]) ||
      !in.Get(&rng_state[2]) || !in.Get(&rng_state[3])) {
    return fail("truncated streaming header");
  }
  // The state only makes sense on an identically configured instance: the
  // statistics are shaped by (V, K) and the trajectory by everything else.
  if (vocab != vocab_size_ || stored.num_topics != options_.num_topics) {
    return fail("state is for vocab " + std::to_string(vocab) + " × " +
                std::to_string(stored.num_topics) +
                " topics, this trainer is " + std::to_string(vocab_size_) +
                " × " + std::to_string(options_.num_topics));
  }
  if (stored.batch_size != options_.batch_size ||
      stored.inner_iterations != options_.inner_iterations ||
      stored.mh_steps != options_.mh_steps ||
      stored.alpha != options_.alpha || stored.beta != options_.beta ||
      stored.kappa != options_.kappa || stored.tau != options_.tau ||
      stored.seed != options_.seed) {
    return fail("streaming options do not match this trainer's");
  }
  std::vector<double> lambda;
  std::vector<double> lambda_k;
  if (!in.GetVec(&lambda) || !in.GetVec(&lambda_k) || !in.exhausted()) {
    return fail("truncated statistics");
  }
  if (lambda.size() !=
          static_cast<size_t>(vocab_size_) * options_.num_topics ||
      lambda_k.size() != options_.num_topics) {
    return fail("statistics are mis-sized");
  }
  for (double v : lambda) {
    if (!std::isfinite(v) || v < 0.0) return fail("non-finite λ entry");
  }
  for (double v : lambda_k) {
    if (!std::isfinite(v) || v < 0.0) return fail("non-finite λ_k entry");
  }

  lambda_ = std::move(lambda);
  lambda_k_ = std::move(lambda_k);
  batches_seen_ = batches;
  docs_seen_ = docs;
  rng_.SetState(rng_state);
  // Derived caches restart cold: alias tables rebuild lazily on first use,
  // batch scratch is per-batch anyway, and the export-delta base resets so
  // the next ExportSharedModel(&changed) reports every word (correct for a
  // fresh serving store; a restored one reconciles via PublishDelta's
  // fallback).
  std::fill(batch_counts_.begin(), batch_counts_.end(), 0.0);
  std::fill(batch_ck_.begin(), batch_ck_.end(), 0.0);
  batch_words_.clear();
  alias_epoch_.assign(vocab_size_, ~0ull);
  last_export_.reset();
  return true;
}

}  // namespace warplda

#ifndef WARPLDA_CORE_PARALLEL_EXECUTOR_H_
#define WARPLDA_CORE_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/sweep_plan.h"
#include "util/contracts.h"

namespace warplda {

/// Fixed-size thread pool that executes the blocks of a grid-sweep stage
/// concurrently (paper §5.3.1, applied to the SweepPlan grid of §6).
///
/// Within a stage, grid blocks touch disjoint assignment state (a GridSampler
/// stages its writes until the EndStage barrier) and every token owns its RNG
/// stream, so blocks may run on any worker in any order without changing the
/// samples — the executor changes wall-clock time, never the trajectory.
/// `RunSweep()` exploits that: each of the four stages becomes one `Run()`
/// whose tasks are the stage's blocks, enqueued in wavefront order over the
/// grid (round r schedules blocks (i, (i+r) mod W)). The first W tasks form a
/// perfect matching of doc rows to word columns, so concurrently running
/// workers touch disjoint rows *and* columns — the same rotation schedule a
/// multi-machine deployment uses, here chosen for cache separation.
///
/// The pool is persistent: workers block on a condition variable between
/// `Run()` calls, and stage barriers cost one mutex handshake, not a
/// thread spawn. A single driver thread owns the executor; `Run()` must not
/// be called concurrently with itself.
class ParallelExecutor {
 public:
  /// Task body: fn(worker, task) with worker in [0, num_threads()) and task
  /// in [0, num_tasks). The worker id is what callers key per-thread scratch
  /// by (e.g. GridSampler::RunBlock's worker argument).
  using Task = std::function<void(uint32_t worker, uint32_t task)>;

  /// `num_threads` counts the calling thread: the pool spawns num_threads-1
  /// workers and the thread calling Run() executes tasks as worker 0, so a
  /// 1-thread executor runs everything inline with no synchronization — the
  /// fair serial baseline for scaling curves.
  explicit ParallelExecutor(uint32_t num_threads);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  uint32_t num_threads() const { return num_threads_; }

  /// Runs fn(worker, t) for every t in [0, num_tasks) and returns when all
  /// have completed. Tasks are claimed dynamically (an atomic cursor), so
  /// uneven task costs balance automatically. If tasks throw, the remaining
  /// tasks still run and the first exception is rethrown here.
  void Run(uint32_t num_tasks, const Task& fn);

  /// Called on the driver thread at each stage barrier, right after
  /// EndStage() returned and before any block of the next stage is
  /// scheduled, with the stage about to run. The sampler is quiescent —
  /// staged writes applied, per-worker deltas folded — which is exactly when
  /// GridSampler::CaptureSweepState is legal; the trainer's mid-sweep
  /// checkpoints hook in here. Not invoked after the final stage (the sweep
  /// is complete then; checkpoint between sweeps instead).
  using StageHook = std::function<void(SweepStage next_stage)>;

  /// One full grid sweep of `plan`: ReserveWorkers(num_threads()), then
  /// BeginSweep and, per stage, one Run() over the stage's blocks in
  /// wavefront order followed by the EndStage barrier on the calling thread
  /// (where `barrier_hook`, when set, fires). Produces exactly the samples
  /// of GridSampler::RunSweep (and, for a conforming sampler, of Iterate()).
  void RunSweep(GridSampler& sampler, const SweepPlan& plan,
                const StageHook& barrier_hook = nullptr);

  /// Drives an already-open sweep from the sampler's current stage to
  /// completion (EndSweep included) — the resume path after
  /// GridSampler::RestoreSweepState reopened a checkpointed sweep
  /// mid-flight. `plan` must be the open sweep's plan. Grows the sampler's
  /// worker pool to num_threads() first; any thread count finishes the
  /// sweep bit-identically. RunSweep is BeginSweep + FinishSweep.
  void FinishSweep(GridSampler& sampler, const SweepPlan& plan,
                   const StageHook& barrier_hook = nullptr);

 private:
  /// One Run() invocation. Heap-allocated and shared with workers so a
  /// worker waking up late (after the job completed and a new one started)
  /// can never execute a stale task function: it holds the job it saw
  /// published, whose cursor is already exhausted.
  struct Job {
    const Task* fn = nullptr;
    uint32_t num_tasks = 0;
    std::atomic<uint32_t> next{0};     // task claim cursor
    uint32_t remaining = 0;            // guarded by ParallelExecutor::mutex_
    std::exception_ptr error;          // guarded by ParallelExecutor::mutex_
  };

  void WorkerLoop(uint32_t worker);
  /// Claims and executes tasks of `job` until the cursor is exhausted.
  void RunTasks(Job& job, uint32_t worker);

  WARP_IMMUTABLE_AFTER(ParallelExecutor) uint32_t num_threads_;
  WARP_IMMUTABLE_AFTER(ParallelExecutor) std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable cv_work_;  // workers wait here for a job
  std::condition_variable cv_done_;  // Run() waits here for completion
  /// Published by Run() under mutex_ before workers wake, cleared after the
  /// cv_done_ handshake — never touched from inside a task body.
  WARP_BARRIER_ONLY std::shared_ptr<Job> job_;   // guarded by mutex_
  WARP_BARRIER_ONLY bool shutdown_ = false;      // guarded by mutex_
};

}  // namespace warplda

#endif  // WARPLDA_CORE_PARALLEL_EXECUTOR_H_

#ifndef WARPLDA_EVAL_PERPLEXITY_H_
#define WARPLDA_EVAL_PERPLEXITY_H_

#include <cstdint>

#include "corpus/corpus.h"
#include "eval/topic_model.h"

namespace warplda {

/// Options for held-out evaluation by fold-in Gibbs sampling.
struct PerplexityOptions {
  uint32_t burn_in_iterations = 20;  ///< Gibbs sweeps before estimating θ
  uint64_t seed = 7;
};

/// Held-out perplexity of `heldout` under a trained model:
/// topics φ̂ are fixed from the model; each held-out document is folded in
/// with collapsed Gibbs sweeps to estimate θ̂_d, then
///   perplexity = exp( − Σ_tokens log Σ_k θ̂_dk φ̂_w k / T ).
/// Lower is better. Word ids in `heldout` must be < model.num_words().
double HeldOutPerplexity(const TopicModel& model, const Corpus& heldout,
                         const PerplexityOptions& options = {});

}  // namespace warplda

#endif  // WARPLDA_EVAL_PERPLEXITY_H_

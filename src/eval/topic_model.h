#ifndef WARPLDA_EVAL_TOPIC_MODEL_H_
#define WARPLDA_EVAL_TOPIC_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "corpus/vocabulary.h"

namespace warplda {

/// A trained LDA model: the word-topic counts C_w (sparse rows), global topic
/// counts c_k, and the priors. Built from a corpus plus a topic-assignment
/// vector; consumed by perplexity evaluation, unseen-document inference, and
/// model serialization.
class TopicModel {
 public:
  TopicModel() = default;

  /// Aggregates counts from document-major assignments.
  TopicModel(const Corpus& corpus, const std::vector<TopicId>& assignments,
             uint32_t num_topics, double alpha, double beta);

  /// Assembles a model directly from its components — the checkpoint-restore
  /// path (serve::ModelStore::RestoreFrom replays delta rows onto a base)
  /// and tests. `rows` must hold per-word (topic, count > 0) pairs in
  /// ascending topic order (the class invariant the sparse serving snapshot
  /// binary-searches on) and `ck` the K global topic counts.
  TopicModel(uint32_t num_topics, double alpha, double beta,
             std::vector<std::vector<std::pair<TopicId, int32_t>>> rows,
             std::vector<int64_t> ck)
      : num_topics_(num_topics),
        alpha_(alpha),
        beta_(beta),
        rows_(std::move(rows)),
        ck_(std::move(ck)) {}

  uint32_t num_topics() const { return num_topics_; }
  WordId num_words() const { return static_cast<WordId>(rows_.size()); }
  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

  /// Sparse word-topic counts for word w: (topic, count) pairs, count > 0.
  const std::vector<std::pair<TopicId, int32_t>>& word_topics(WordId w) const {
    return rows_[w];
  }

  /// Global topic counts c_k.
  const std::vector<int64_t>& topic_counts() const { return ck_; }

  /// Smoothed topic-word probability φ̂_wk = (C_wk + β)/(C_k + β̄), Eq. (4).
  double Phi(WordId w, TopicId k) const;

  /// Words whose sparse rows differ from `base`'s — the changed-word set an
  /// incremental publish (serve::ModelStore::PublishDelta) must rebuild.
  /// Words with id >= base.num_words() count as changed; words that exist
  /// only in `base` are not reported (the publish layer falls back to a full
  /// rebuild on vocabulary shrinkage). Sorted ascending; O(total nnz).
  std::vector<WordId> ChangedWords(const TopicModel& base) const;

  /// Top `n` words of topic k by count (ties broken by word id).
  std::vector<std::pair<WordId, int32_t>> TopWords(TopicId k, uint32_t n) const;

  /// Formats topic k's top words using `vocab` (for examples/demos).
  std::string DescribeTopic(TopicId k, const Vocabulary& vocab,
                            uint32_t n) const;

  /// Binary serialization. Returns false and fills *error on failure.
  bool Save(const std::string& path, std::string* error) const;
  bool Load(const std::string& path, std::string* error);

  /// Structural equality (used by serialization round-trip tests).
  bool operator==(const TopicModel& other) const;

 private:
  uint32_t num_topics_ = 0;
  double alpha_ = 0.0;
  double beta_ = 0.0;
  std::vector<std::vector<std::pair<TopicId, int32_t>>> rows_;  // per word
  std::vector<int64_t> ck_;
};

/// Shared body of the trainers' ExportSharedModel(changed_words) overloads:
/// fills `changed_words` (when non-null) with `model`'s diff against
/// `*last_export` — every word on the first export — then advances
/// `*last_export` to `model` and returns it. Keeping this in one place
/// keeps WarpLdaSampler's and StreamingWarpLda's delta contracts in
/// lockstep.
std::shared_ptr<const TopicModel> TrackExportDelta(
    std::shared_ptr<const TopicModel> model,
    std::shared_ptr<const TopicModel>* last_export,
    std::vector<WordId>* changed_words);

}  // namespace warplda

#endif  // WARPLDA_EVAL_TOPIC_MODEL_H_

#include "eval/log_likelihood.h"

#include <algorithm>
#include <cmath>

#include "util/hash_count.h"

namespace warplda {

namespace {

// Shared implementation: `alpha_of(k)` supplies α_k, `lg_alpha_of(k)` its
// precomputed log-gamma.
template <typename AlphaFn, typename LgAlphaFn>
double JointLlImpl(const Corpus& corpus,
                   const std::vector<TopicId>& assignments,
                   uint32_t num_topics, double alpha_bar, AlphaFn alpha_of,
                   LgAlphaFn lg_alpha_of, double beta);

}  // namespace

double JointLogLikelihood(const Corpus& corpus,
                          const std::vector<TopicId>& assignments,
                          uint32_t num_topics, double alpha, double beta) {
  const double lg_alpha = std::lgamma(alpha);
  return JointLlImpl(
      corpus, assignments, num_topics, alpha * num_topics,
      [alpha](uint32_t) { return alpha; },
      [lg_alpha](uint32_t) { return lg_alpha; }, beta);
}

double JointLogLikelihood(const Corpus& corpus,
                          const std::vector<TopicId>& assignments,
                          uint32_t num_topics,
                          const std::vector<double>& alpha_vector,
                          double beta) {
  double alpha_bar = 0.0;
  std::vector<double> lg_alpha(num_topics);
  for (uint32_t k = 0; k < num_topics; ++k) {
    alpha_bar += alpha_vector[k];
    lg_alpha[k] = std::lgamma(alpha_vector[k]);
  }
  return JointLlImpl(
      corpus, assignments, num_topics, alpha_bar,
      [&alpha_vector](uint32_t k) { return alpha_vector[k]; },
      [&lg_alpha](uint32_t k) { return lg_alpha[k]; }, beta);
}

namespace {

template <typename AlphaFn, typename LgAlphaFn>
double JointLlImpl(const Corpus& corpus,
                   const std::vector<TopicId>& assignments,
                   uint32_t num_topics, double alpha_bar, AlphaFn alpha_of,
                   LgAlphaFn lg_alpha_of, double beta) {
  const double beta_bar = beta * corpus.num_words();
  const double lg_beta = std::lgamma(beta);

  double ll = 0.0;
  std::vector<int64_t> ck(num_topics, 0);

  // Document side: one hash-count pass per document.
  HashCount cd;
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    uint32_t len = corpus.doc_length(d);
    if (len == 0) continue;
    cd.Init(std::min<uint32_t>(num_topics, 2 * len));
    TokenIdx base = corpus.doc_offset(d);
    for (uint32_t n = 0; n < len; ++n) {
      TopicId z = assignments[base + n];
      cd.Inc(z);
      ++ck[z];
    }
    ll += std::lgamma(alpha_bar) - std::lgamma(alpha_bar + len);
    cd.ForEachNonZero([&](uint32_t k, int32_t count) {
      ll += std::lgamma(alpha_of(k) + count) - lg_alpha_of(k);
    });
  }

  // Word side: one hash-count pass per word using the word-major index.
  HashCount cw;
  for (WordId w = 0; w < corpus.num_words(); ++w) {
    auto occurrences = corpus.word_tokens(w);
    if (occurrences.empty()) continue;
    cw.Init(std::min<uint32_t>(num_topics,
                               2 * static_cast<uint32_t>(occurrences.size())));
    for (TokenIdx t : occurrences) cw.Inc(assignments[t]);
    cw.ForEachNonZero([&](uint32_t, int32_t count) {
      ll += std::lgamma(beta + count) - lg_beta;
    });
  }

  for (uint32_t k = 0; k < num_topics; ++k) {
    ll += std::lgamma(beta_bar) - std::lgamma(beta_bar + ck[k]);
  }
  return ll;
}

}  // namespace

SparsityStats ComputeSparsity(const Corpus& corpus,
                              const std::vector<TopicId>& assignments) {
  SparsityStats stats{0.0, 0.0, 0, 0};
  uint64_t doc_total = 0;
  HashCount counts;
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    uint32_t len = corpus.doc_length(d);
    counts.Init(2 * std::max<uint32_t>(1, len));
    TokenIdx base = corpus.doc_offset(d);
    for (uint32_t n = 0; n < len; ++n) counts.Inc(assignments[base + n]);
    uint32_t kd = 0;
    counts.ForEachNonZero([&](uint32_t, int32_t) { ++kd; });
    doc_total += kd;
    stats.max_topics_per_doc = std::max(stats.max_topics_per_doc, kd);
  }
  stats.mean_topics_per_doc =
      corpus.num_docs() == 0
          ? 0.0
          : static_cast<double>(doc_total) / corpus.num_docs();

  uint64_t word_total = 0;
  uint32_t words_seen = 0;
  for (WordId w = 0; w < corpus.num_words(); ++w) {
    auto occurrences = corpus.word_tokens(w);
    if (occurrences.empty()) continue;
    ++words_seen;
    counts.Init(2 * static_cast<uint32_t>(occurrences.size()));
    for (TokenIdx t : occurrences) counts.Inc(assignments[t]);
    uint32_t kw = 0;
    counts.ForEachNonZero([&](uint32_t, int32_t) { ++kw; });
    word_total += kw;
    stats.max_topics_per_word = std::max(stats.max_topics_per_word, kw);
  }
  stats.mean_topics_per_word =
      words_seen == 0 ? 0.0 : static_cast<double>(word_total) / words_seen;
  return stats;
}

}  // namespace warplda

#include "eval/perplexity.h"

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace warplda {

double HeldOutPerplexity(const TopicModel& model, const Corpus& heldout,
                         const PerplexityOptions& options) {
  const uint32_t k_topics = model.num_topics();
  const double beta_bar = model.beta() * model.num_words();
  Rng rng(options.seed);

  // Precompute dense φ̂ columns lazily per word would be O(T*K); instead
  // cache φ̂ rows for the words that actually occur in the held-out set.
  std::vector<std::vector<double>> phi(heldout.num_words());
  auto phi_row = [&](WordId w) -> const std::vector<double>& {
    auto& row = phi[w];
    if (row.empty()) {
      row.assign(k_topics, 0.0);
      for (uint32_t k = 0; k < k_topics; ++k) {
        row[k] = model.beta() / (model.topic_counts()[k] + beta_bar);
      }
      for (const auto& [k, c] : model.word_topics(w)) {
        row[k] = (c + model.beta()) / (model.topic_counts()[k] + beta_bar);
      }
    }
    return row;
  };

  double log_sum = 0.0;
  uint64_t token_count = 0;
  std::vector<uint32_t> cd(k_topics);
  std::vector<TopicId> z;
  std::vector<double> dist(k_topics);

  for (DocId d = 0; d < heldout.num_docs(); ++d) {
    auto words = heldout.doc_tokens(d);
    if (words.empty()) continue;
    std::fill(cd.begin(), cd.end(), 0);
    z.resize(words.size());
    for (size_t n = 0; n < words.size(); ++n) {
      z[n] = rng.NextInt(k_topics);
      ++cd[z[n]];
    }
    // Fold-in sweeps: sample z ∝ (C_dk + α) φ̂_wk with φ̂ fixed.
    for (uint32_t iter = 0; iter < options.burn_in_iterations; ++iter) {
      for (size_t n = 0; n < words.size(); ++n) {
        --cd[z[n]];
        const auto& row = phi_row(words[n]);
        double total = 0.0;
        for (uint32_t k = 0; k < k_topics; ++k) {
          dist[k] = (cd[k] + model.alpha()) * row[k];
          total += dist[k];
        }
        double target = rng.NextDouble() * total;
        uint32_t k = 0;
        double acc = dist[0];
        while (acc < target && k + 1 < k_topics) acc += dist[++k];
        z[n] = k;
        ++cd[k];
      }
    }
    // Predictive likelihood with θ̂ from the folded-in counts.
    const double denom = words.size() + model.alpha() * k_topics;
    for (size_t n = 0; n < words.size(); ++n) {
      const auto& row = phi_row(words[n]);
      double p = 0.0;
      for (uint32_t k = 0; k < k_topics; ++k) {
        p += (cd[k] + model.alpha()) / denom * row[k];
      }
      log_sum += std::log(p);
      ++token_count;
    }
  }
  return token_count == 0 ? 0.0
                          : std::exp(-log_sum / static_cast<double>(
                                                    token_count));
}

}  // namespace warplda

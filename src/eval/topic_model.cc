#include "eval/topic_model.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>

#include "util/hash_count.h"

namespace warplda {

TopicModel::TopicModel(const Corpus& corpus,
                       const std::vector<TopicId>& assignments,
                       uint32_t num_topics, double alpha, double beta)
    : num_topics_(num_topics), alpha_(alpha), beta_(beta) {
  rows_.resize(corpus.num_words());
  ck_.assign(num_topics, 0);
  HashCount counts;
  for (WordId w = 0; w < corpus.num_words(); ++w) {
    auto occurrences = corpus.word_tokens(w);
    if (occurrences.empty()) continue;
    counts.Init(2 * static_cast<uint32_t>(occurrences.size()));
    for (TokenIdx t : occurrences) {
      counts.Inc(assignments[t]);
      ++ck_[assignments[t]];
    }
    counts.ForEachNonZero([&](uint32_t k, int32_t c) {
      rows_[w].emplace_back(k, c);
    });
    std::sort(rows_[w].begin(), rows_[w].end());
  }
}

double TopicModel::Phi(WordId w, TopicId k) const {
  const double beta_bar = beta_ * num_words();
  int32_t cwk = 0;
  for (const auto& [topic, count] : rows_[w]) {
    if (topic == k) {
      cwk = count;
      break;
    }
  }
  return (cwk + beta_) / (ck_[k] + beta_bar);
}

std::vector<WordId> TopicModel::ChangedWords(const TopicModel& base) const {
  std::vector<WordId> changed;
  for (WordId w = 0; w < num_words(); ++w) {
    if (w >= base.num_words() || rows_[w] != base.rows_[w]) {
      changed.push_back(w);
    }
  }
  return changed;
}

std::vector<std::pair<WordId, int32_t>> TopicModel::TopWords(
    TopicId k, uint32_t n) const {
  std::vector<std::pair<WordId, int32_t>> hits;
  for (WordId w = 0; w < num_words(); ++w) {
    for (const auto& [topic, count] : rows_[w]) {
      if (topic == k) hits.emplace_back(w, count);
    }
  }
  std::sort(hits.begin(), hits.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (hits.size() > n) hits.resize(n);
  return hits;
}

std::string TopicModel::DescribeTopic(TopicId k, const Vocabulary& vocab,
                                      uint32_t n) const {
  std::string out;
  for (const auto& [w, count] : TopWords(k, n)) {
    if (!out.empty()) out += ' ';
    out += w < vocab.size() ? vocab.word(w) : ("w" + std::to_string(w));
  }
  return out;
}

namespace {
constexpr uint64_t kMagic = 0x57415250'4C444131ULL;  // "WARPLDA1"

template <typename T>
void Put(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
template <typename T>
bool Get(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}
}  // namespace

bool TopicModel::Save(const std::string& path, std::string* error) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  Put(out, kMagic);
  Put(out, num_topics_);
  Put(out, alpha_);
  Put(out, beta_);
  Put(out, static_cast<uint32_t>(rows_.size()));
  for (const auto& row : rows_) {
    Put(out, static_cast<uint32_t>(row.size()));
    for (const auto& [k, c] : row) {
      Put(out, k);
      Put(out, c);
    }
  }
  for (int64_t c : ck_) Put(out, c);
  if (!out.good()) {
    if (error) *error = "write error on " + path;
    return false;
  }
  return true;
}

bool TopicModel::Load(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  uint64_t magic = 0;
  uint32_t v = 0;
  if (!Get(in, &magic) || magic != kMagic) {
    if (error) *error = path + ": bad magic";
    return false;
  }
  if (!Get(in, &num_topics_) || !Get(in, &alpha_) || !Get(in, &beta_) ||
      !Get(in, &v)) {
    if (error) *error = path + ": truncated header";
    return false;
  }
  rows_.assign(v, {});
  for (uint32_t w = 0; w < v; ++w) {
    uint32_t n = 0;
    if (!Get(in, &n)) {
      if (error) *error = path + ": truncated row header";
      return false;
    }
    rows_[w].resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      if (!Get(in, &rows_[w][i].first) || !Get(in, &rows_[w][i].second)) {
        if (error) *error = path + ": truncated row";
        return false;
      }
    }
    // Ascending topic order is a class invariant (the sparse serving
    // snapshot binary-searches rows); Save() writes sorted rows, but don't
    // trust externally produced files.
    std::sort(rows_[w].begin(), rows_[w].end());
  }
  ck_.assign(num_topics_, 0);
  for (auto& c : ck_) {
    if (!Get(in, &c)) {
      if (error) *error = path + ": truncated topic counts";
      return false;
    }
  }
  return true;
}

bool TopicModel::operator==(const TopicModel& other) const {
  return num_topics_ == other.num_topics_ && alpha_ == other.alpha_ &&
         beta_ == other.beta_ && rows_ == other.rows_ && ck_ == other.ck_;
}

std::shared_ptr<const TopicModel> TrackExportDelta(
    std::shared_ptr<const TopicModel> model,
    std::shared_ptr<const TopicModel>* last_export,
    std::vector<WordId>* changed_words) {
  if (changed_words != nullptr) {
    if (*last_export == nullptr) {
      changed_words->resize(model->num_words());
      std::iota(changed_words->begin(), changed_words->end(), 0);
    } else {
      *changed_words = model->ChangedWords(**last_export);
    }
  }
  *last_export = model;
  return model;
}

}  // namespace warplda

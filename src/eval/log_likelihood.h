#ifndef WARPLDA_EVAL_LOG_LIKELIHOOD_H_
#define WARPLDA_EVAL_LOG_LIKELIHOOD_H_

#include <cstdint>
#include <vector>

#include "corpus/corpus.h"

namespace warplda {

/// Computes the joint log likelihood log p(W, Z | α, β) used throughout the
/// paper's evaluation (§6.1):
///
///   L = Σ_d [ logΓ(ᾱ) − logΓ(ᾱ+L_d) + Σ_k (logΓ(α+C_dk) − logΓ(α)) ]
///     + Σ_k [ logΓ(β̄) − logΓ(β̄+C_k) + Σ_w (logΓ(β+C_wk) − logΓ(β)) ]
///
/// with symmetric priors (α_k = α, β_w = β, ᾱ = Kα, β̄ = Vβ).
///
/// `assignments` is document-major and parallel to the corpus token stream.
/// Runs in O(T + nnz) time and O(K + max L) memory.
double JointLogLikelihood(const Corpus& corpus,
                          const std::vector<TopicId>& assignments,
                          uint32_t num_topics, double alpha, double beta);

/// Asymmetric-α variant: α_k per topic (size num_topics), symmetric β.
double JointLogLikelihood(const Corpus& corpus,
                          const std::vector<TopicId>& assignments,
                          uint32_t num_topics,
                          const std::vector<double>& alpha_vector,
                          double beta);

/// Per-document/word topic sparsity statistics (Table 2's K_d and K_w).
struct SparsityStats {
  double mean_topics_per_doc;   ///< average K_d over documents
  double mean_topics_per_word;  ///< average K_w over words with L_w > 0
  uint32_t max_topics_per_doc;
  uint32_t max_topics_per_word;
};
SparsityStats ComputeSparsity(const Corpus& corpus,
                              const std::vector<TopicId>& assignments);

}  // namespace warplda

#endif  // WARPLDA_EVAL_LOG_LIKELIHOOD_H_

#ifndef WARPLDA_EVAL_COHERENCE_H_
#define WARPLDA_EVAL_COHERENCE_H_

#include <cstdint>
#include <vector>

#include "corpus/corpus.h"
#include "eval/topic_model.h"

namespace warplda {

/// UMass topic coherence (Mimno et al., EMNLP 2011):
///
///   C(k) = Σ_{i<j over top-N words} log [ (D(w_i, w_j) + 1) / D(w_j) ]
///
/// where D(w) is the number of documents containing w and D(w_i, w_j) the
/// number containing both, with the top-N list ordered by in-topic count.
/// Higher (closer to zero) is better; values are intrinsically negative.
/// Complements the joint log likelihood with a human-interpretable quality
/// signal when comparing samplers.
struct CoherenceResult {
  std::vector<double> per_topic;  ///< C(k) for each topic
  double mean = 0.0;
};

/// Computes UMass coherence of `model`'s topics over `corpus` using the top
/// `top_n` words per topic. Topics whose support has fewer than two words
/// get coherence 0.
CoherenceResult UMassCoherence(const TopicModel& model, const Corpus& corpus,
                               uint32_t top_n = 10);

}  // namespace warplda

#endif  // WARPLDA_EVAL_COHERENCE_H_

#ifndef WARPLDA_EVAL_HYPERPARAMS_H_
#define WARPLDA_EVAL_HYPERPARAMS_H_

#include <cstdint>
#include <vector>

#include "corpus/corpus.h"

namespace warplda {

/// Minka fixed-point estimation of the symmetric Dirichlet hyper-parameters
/// from the current topic assignments (Minka 2000, "Estimating a Dirichlet
/// distribution"; the update used by MALLET's hyper-parameter optimization):
///
///   α ← α · Σ_d Σ_k [ψ(C_dk+α) − ψ(α)] / (K · Σ_d [ψ(L_d+Kα) − ψ(Kα)])
///
/// and symmetrically for β over the topic-word counts. A few iterations of
/// Train() interleaved with these updates typically improve held-out
/// perplexity noticeably versus fixed 50/K priors.

/// One fixed-point pass for the document-topic prior. Returns the updated
/// symmetric α (clamped to [1e-6, 1e3]).
double EstimateSymmetricAlpha(const Corpus& corpus,
                              const std::vector<TopicId>& assignments,
                              uint32_t num_topics, double alpha,
                              uint32_t fixed_point_iterations = 5);

/// One fixed-point pass for the topic-word prior β.
double EstimateSymmetricBeta(const Corpus& corpus,
                             const std::vector<TopicId>& assignments,
                             uint32_t num_topics, double beta,
                             uint32_t fixed_point_iterations = 5);

}  // namespace warplda

#endif  // WARPLDA_EVAL_HYPERPARAMS_H_

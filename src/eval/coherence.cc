#include "eval/coherence.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace warplda {

namespace {

// Sorted vector of distinct documents containing word w.
std::vector<DocId> DocumentsOf(const Corpus& corpus, WordId w) {
  std::vector<DocId> docs;
  DocId prev = 0;
  bool first = true;
  for (TokenIdx t : corpus.word_tokens(w)) {
    DocId d = corpus.token_doc(t);
    if (first || d != prev) docs.push_back(d);
    prev = d;
    first = false;
  }
  return docs;
}

size_t IntersectionSize(const std::vector<DocId>& a,
                        const std::vector<DocId>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

CoherenceResult UMassCoherence(const TopicModel& model, const Corpus& corpus,
                               uint32_t top_n) {
  CoherenceResult result;
  result.per_topic.assign(model.num_topics(), 0.0);

  for (TopicId k = 0; k < model.num_topics(); ++k) {
    auto top = model.TopWords(k, top_n);
    if (top.size() < 2) continue;
    std::vector<std::vector<DocId>> docs(top.size());
    for (size_t i = 0; i < top.size(); ++i) {
      docs[i] = DocumentsOf(corpus, top[i].first);
    }
    double coherence = 0.0;
    // UMass convention: word lists are ordered by frequency; the conditioning
    // word w_j is the more frequent (earlier) one.
    for (size_t i = 1; i < top.size(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        double co = static_cast<double>(IntersectionSize(docs[i], docs[j]));
        double denom = static_cast<double>(docs[j].size());
        if (denom > 0.0) coherence += std::log((co + 1.0) / denom);
      }
    }
    result.per_topic[k] = coherence;
  }

  double total = 0.0;
  for (double c : result.per_topic) total += c;
  result.mean =
      model.num_topics() == 0 ? 0.0 : total / model.num_topics();
  return result;
}

}  // namespace warplda

#include "eval/hyperparams.h"

#include <algorithm>

#include "util/hash_count.h"
#include "util/special.h"

namespace warplda {

namespace {
constexpr double kMinPrior = 1e-6;
constexpr double kMaxPrior = 1e3;
}  // namespace

double EstimateSymmetricAlpha(const Corpus& corpus,
                              const std::vector<TopicId>& assignments,
                              uint32_t num_topics, double alpha,
                              uint32_t fixed_point_iterations) {
  // Gather the count histograms once: how often each C_dk value occurs and
  // how often each document length occurs. The fixed point then iterates
  // over histograms instead of rescanning the corpus.
  std::vector<uint64_t> count_hist;  // count_hist[c] = #(d,k) with C_dk == c
  std::vector<uint64_t> length_hist;
  HashCount cd;
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    uint32_t len = corpus.doc_length(d);
    if (len == 0) continue;
    if (len >= length_hist.size()) length_hist.resize(len + 1, 0);
    ++length_hist[len];
    cd.Init(std::min<uint32_t>(num_topics, 2 * len));
    TokenIdx base = corpus.doc_offset(d);
    for (uint32_t n = 0; n < len; ++n) cd.Inc(assignments[base + n]);
    cd.ForEachNonZero([&](uint32_t, int32_t c) {
      if (static_cast<size_t>(c) >= count_hist.size()) {
        count_hist.resize(c + 1, 0);
      }
      ++count_hist[c];
    });
  }

  for (uint32_t iter = 0; iter < fixed_point_iterations; ++iter) {
    double numerator = 0.0;
    const double psi_alpha = Digamma(alpha);
    for (size_t c = 1; c < count_hist.size(); ++c) {
      if (count_hist[c] != 0) {
        numerator += count_hist[c] * (Digamma(alpha + c) - psi_alpha);
      }
    }
    double denominator = 0.0;
    const double alpha_bar = alpha * num_topics;
    const double psi_alpha_bar = Digamma(alpha_bar);
    for (size_t len = 1; len < length_hist.size(); ++len) {
      if (length_hist[len] != 0) {
        denominator +=
            length_hist[len] * (Digamma(alpha_bar + len) - psi_alpha_bar);
      }
    }
    if (denominator <= 0.0 || numerator <= 0.0) break;
    alpha = std::clamp(alpha * numerator / (num_topics * denominator),
                       kMinPrior, kMaxPrior);
  }
  return alpha;
}

double EstimateSymmetricBeta(const Corpus& corpus,
                             const std::vector<TopicId>& assignments,
                             uint32_t num_topics, double beta,
                             uint32_t fixed_point_iterations) {
  const WordId v = corpus.num_words();
  std::vector<uint64_t> count_hist;  // over C_wk values
  std::vector<int64_t> ck(num_topics, 0);
  HashCount cw;
  for (WordId w = 0; w < v; ++w) {
    auto occurrences = corpus.word_tokens(w);
    if (occurrences.empty()) continue;
    cw.Init(std::min<uint32_t>(num_topics,
                               2 * static_cast<uint32_t>(occurrences.size())));
    for (TokenIdx t : occurrences) {
      cw.Inc(assignments[t]);
      ++ck[assignments[t]];
    }
    cw.ForEachNonZero([&](uint32_t, int32_t c) {
      if (static_cast<size_t>(c) >= count_hist.size()) {
        count_hist.resize(c + 1, 0);
      }
      ++count_hist[c];
    });
  }

  for (uint32_t iter = 0; iter < fixed_point_iterations; ++iter) {
    double numerator = 0.0;
    const double psi_beta = Digamma(beta);
    for (size_t c = 1; c < count_hist.size(); ++c) {
      if (count_hist[c] != 0) {
        numerator += count_hist[c] * (Digamma(beta + c) - psi_beta);
      }
    }
    double denominator = 0.0;
    const double beta_bar = beta * v;
    const double psi_beta_bar = Digamma(beta_bar);
    for (uint32_t k = 0; k < num_topics; ++k) {
      if (ck[k] > 0) {
        denominator += Digamma(beta_bar + ck[k]) - psi_beta_bar;
      }
    }
    if (denominator <= 0.0 || numerator <= 0.0) break;
    beta = std::clamp(beta * numerator / (v * denominator), kMinPrior,
                      kMaxPrior);
  }
  return beta;
}

}  // namespace warplda

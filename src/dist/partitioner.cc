#include "dist/partitioner.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/rng.h"

namespace warplda {
namespace {

std::vector<uint32_t> PartitionStatic(const std::vector<uint64_t>& weights,
                                      uint32_t p, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> assignment(weights.size());
  for (auto& a : assignment) a = rng.NextInt(p);
  return assignment;
}

std::vector<uint32_t> PartitionDynamic(const std::vector<uint64_t>& weights,
                                       uint32_t p) {
  // Contiguous chunks cut at equal prefix-sum targets, exactly like
  // SparseMatrix::ParallelFor balances visit ranges across threads: chunk t
  // starts at the first item whose preceding load reaches total·t/p.
  const uint32_t n = static_cast<uint32_t>(weights.size());
  std::vector<uint64_t> prefix(n + 1, 0);
  for (uint32_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + weights[i];
  const uint64_t total = prefix[n];
  std::vector<uint32_t> bounds(p + 1, n);
  bounds[0] = 0;
  uint32_t cursor = 0;
  for (uint32_t t = 1; t < p; ++t) {
    const uint64_t target = total * t / p;
    while (cursor < n && prefix[cursor] < target) ++cursor;
    bounds[t] = cursor;
  }
  std::vector<uint32_t> assignment(n, p - 1);
  for (uint32_t t = 0; t < p; ++t) {
    for (uint32_t i = bounds[t]; i < bounds[t + 1]; ++i) assignment[i] = t;
  }
  return assignment;
}

std::vector<uint32_t> PartitionGreedy(const std::vector<uint64_t>& weights,
                                      uint32_t p) {
  // LPT: items in decreasing weight order, each onto the currently
  // least-loaded partition (ties broken by partition id for determinism).
  const uint32_t n = static_cast<uint32_t>(weights.size());
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return weights[a] > weights[b];
  });
  using Load = std::pair<uint64_t, uint32_t>;  // (load, partition)
  std::priority_queue<Load, std::vector<Load>, std::greater<Load>> heap;
  for (uint32_t part = 0; part < p; ++part) heap.emplace(0, part);
  std::vector<uint32_t> assignment(n, 0);
  for (uint32_t item : order) {
    auto [load, part] = heap.top();
    heap.pop();
    assignment[item] = part;
    heap.emplace(load + weights[item], part);
  }
  return assignment;
}

}  // namespace

std::string ToString(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kStatic:
      return "Static";
    case PartitionStrategy::kDynamic:
      return "Dynamic";
    case PartitionStrategy::kGreedy:
      return "Greedy";
  }
  return "Unknown";
}

std::vector<uint32_t> PartitionByTokens(const std::vector<uint64_t>& weights,
                                        uint32_t num_partitions,
                                        PartitionStrategy strategy,
                                        uint64_t seed) {
  if (num_partitions <= 1 || weights.empty()) {
    return std::vector<uint32_t>(weights.size(), 0);
  }
  switch (strategy) {
    case PartitionStrategy::kStatic:
      return PartitionStatic(weights, num_partitions, seed);
    case PartitionStrategy::kDynamic:
      return PartitionDynamic(weights, num_partitions);
    case PartitionStrategy::kGreedy:
      return PartitionGreedy(weights, num_partitions);
  }
  return std::vector<uint32_t>(weights.size(), 0);
}

double ImbalanceIndex(const std::vector<uint64_t>& weights,
                      const std::vector<uint32_t>& assignment,
                      uint32_t num_partitions) {
  if (num_partitions == 0 || weights.empty()) return 0.0;
  std::vector<uint64_t> loads(num_partitions, 0);
  uint64_t total = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    loads[assignment[i]] += weights[i];
    total += weights[i];
  }
  if (total == 0) return 0.0;
  const uint64_t max_load = *std::max_element(loads.begin(), loads.end());
  const double mean = static_cast<double>(total) / num_partitions;
  return static_cast<double>(max_load) / mean - 1.0;
}

std::vector<uint32_t> ReassignToSurvivors(
    const std::vector<uint64_t>& weights,
    const std::vector<uint32_t>& assignment,
    const std::vector<uint32_t>& survivors) {
  std::vector<uint32_t> out = assignment;
  if (survivors.empty() || weights.empty()) return out;
  // Survivor membership + current loads (the LPT heap seed: repartitioning
  // onto already-loaded survivors must account for what they keep).
  const uint32_t max_part =
      1 + *std::max_element(survivors.begin(), survivors.end());
  std::vector<char> alive(max_part, 0);
  for (uint32_t s : survivors) alive[s] = 1;
  using Load = std::pair<uint64_t, uint32_t>;  // (load, survivor index)
  std::vector<uint64_t> loads(survivors.size(), 0);
  std::vector<uint32_t> orphans;
  for (size_t i = 0; i < weights.size() && i < assignment.size(); ++i) {
    const uint32_t owner = assignment[i];
    if (owner < max_part && alive[owner]) {
      for (size_t s = 0; s < survivors.size(); ++s) {
        if (survivors[s] == owner) {
          loads[s] += weights[i];
          break;
        }
      }
    } else {
      orphans.push_back(static_cast<uint32_t>(i));
    }
  }
  // Heaviest orphan first onto the least-loaded survivor; ties break by
  // survivor order (the heap key's second component), so the result is
  // deterministic and every process that runs this computes the same map.
  std::stable_sort(orphans.begin(), orphans.end(),
                   [&](uint32_t a, uint32_t b) {
                     return weights[a] > weights[b];
                   });
  std::priority_queue<Load, std::vector<Load>, std::greater<Load>> heap;
  for (uint32_t s = 0; s < survivors.size(); ++s) heap.emplace(loads[s], s);
  for (uint32_t item : orphans) {
    auto [load, s] = heap.top();
    heap.pop();
    out[item] = survivors[s];
    heap.emplace(load + weights[item], s);
  }
  return out;
}

SweepPlan MakeSweepPlan(const Corpus& corpus, uint32_t num_doc_blocks,
                        uint32_t num_word_blocks, PartitionStrategy strategy,
                        uint64_t seed) {
  SweepPlan plan;
  plan.num_doc_blocks = std::max(1u, num_doc_blocks);
  plan.num_word_blocks = std::max(1u, num_word_blocks);
  std::vector<uint64_t> doc_weights(corpus.num_docs());
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    doc_weights[d] = corpus.doc_length(d);
  }
  std::vector<uint64_t> word_weights(corpus.num_words());
  for (WordId w = 0; w < corpus.num_words(); ++w) {
    word_weights[w] = corpus.word_frequency(w);
  }
  plan.doc_block =
      PartitionByTokens(doc_weights, plan.num_doc_blocks, strategy, seed);
  plan.word_block =
      PartitionByTokens(word_weights, plan.num_word_blocks, strategy,
                        SplitMix64(seed));
  return plan;
}

}  // namespace warplda

#include "dist/cluster_sim.h"

#include <algorithm>

#include "core/parallel_executor.h"
#include "util/rng.h"

namespace warplda {

ClusterSim::ClusterSim(const Corpus& corpus, const ClusterConfig& config)
    : corpus_(&corpus),
      config_(config),
      workers_(std::max(1u, config.num_workers)) {
  doc_weights_.resize(corpus.num_docs());
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    doc_weights_[d] = corpus.doc_length(d);
  }
  word_weights_.resize(corpus.num_words());
  for (WordId w = 0; w < corpus.num_words(); ++w) {
    word_weights_[w] = corpus.word_frequency(w);
  }

  plan_.num_doc_blocks = workers_;
  plan_.num_word_blocks = workers_;
  plan_.doc_block = PartitionByTokens(doc_weights_, workers_,
                                      config_.doc_strategy,
                                      config_.partition_seed);
  plan_.word_block = PartitionByTokens(word_weights_, workers_,
                                       config_.word_strategy,
                                       SplitMix64(config_.partition_seed));

  grid_.assign(static_cast<size_t>(workers_) * workers_, 0);
  doc_load_.assign(workers_, 0);
  word_load_.assign(workers_, 0);
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    const uint32_t i = plan_.doc_block[d];
    for (WordId w : corpus.doc_tokens(d)) {
      const uint32_t j = plan_.word_block[w];
      ++grid_[static_cast<size_t>(i) * workers_ + j];
      ++doc_load_[i];
      ++word_load_[j];
    }
  }
}

double ClusterSim::DocImbalance() const {
  return ImbalanceIndex(doc_weights_, plan_.doc_block, workers_);
}

double ClusterSim::WordImbalance() const {
  return ImbalanceIndex(word_weights_, plan_.word_block, workers_);
}

IterationTiming ClusterSim::Model(double per_token_ns) const {
  const uint32_t p = workers_;
  const double bandwidth = config_.bandwidth_gbytes_per_s * 1e9;  // bytes/s
  const double latency =
      p > 1 ? (p - 1) * config_.latency_us * 1e-6 : 0.0;
  const double overlap = std::max(1u, config_.overlap_blocks);

  // One phase on worker k: compute over the tokens it owns in that phase,
  // plus exchanging the tokens whose other coordinate lives remotely (the
  // off-diagonal of its grid row/column). With pipelining depth `o`, all but
  // 1/o of the cheaper term hides behind the dominant one.
  auto phase = [&](const std::vector<uint64_t>& load,
                   auto remote_tokens) {
    PhaseTiming timing;
    for (uint32_t k = 0; k < p; ++k) {
      const double compute = static_cast<double>(load[k]) * per_token_ns * 1e-9;
      const double remote = static_cast<double>(remote_tokens(k));
      const double comm =
          p > 1 ? remote * config_.bytes_per_token / bandwidth + latency : 0.0;
      const double wall =
          std::max(compute, comm) + std::min(compute, comm) / overlap;
      timing.compute_seconds = std::max(timing.compute_seconds, compute);
      timing.comm_seconds = std::max(timing.comm_seconds, comm);
      timing.wall_seconds = std::max(timing.wall_seconds, wall);
    }
    return timing;
  };

  IterationTiming timing;
  // Word phase: worker j processes word slice j; the slice's tokens from
  // other workers' documents must be gathered.
  timing.word_phase = phase(word_load_, [&](uint32_t j) {
    return word_load_[j] - grid_[static_cast<size_t>(j) * p + j];
  });
  // Doc phase: worker i processes its documents; tokens whose word slice it
  // does not own were updated remotely and come back.
  timing.doc_phase = phase(doc_load_, [&](uint32_t i) {
    return doc_load_[i] - grid_[static_cast<size_t>(i) * p + i];
  });
  timing.wall_seconds =
      timing.word_phase.wall_seconds + timing.doc_phase.wall_seconds;
  return timing;
}

IterationTiming ClusterSim::SimulateIteration() const {
  return Model(config_.per_token_ns);
}

double ClusterSim::SimulatedSpeedup() const {
  const double tokens = static_cast<double>(corpus_->num_tokens());
  const double serial = 2.0 * tokens * config_.per_token_ns * 1e-9;
  const double parallel = SimulateIteration().wall_seconds;
  return parallel > 0.0 ? serial / parallel : 1.0;
}

IterationTiming ClusterSim::RunSweep(GridSampler& sampler,
                                     ParallelExecutor* executor) const {
  const uint32_t p = workers_;
  if (executor != nullptr) {
    // ParallelExecutor's wavefront enqueue order is exactly the rotation
    // schedule below, pulled by the pool's workers instead of looped.
    executor->RunSweep(sampler, plan_);
  } else {
    sampler.BeginSweep(plan_);
    try {
      while (sampler.sweep_stage() != SweepStage::kDone) {
        // Rotation schedule: in round r worker i holds word slice (i+r)
        // mod P. Blocks within a stage are order-independent (the
        // GridSampler contract), so this choice documents the deployment
        // schedule without changing the samples.
        for (uint32_t round = 0; round < p; ++round) {
          for (uint32_t i = 0; i < p; ++i) {
            sampler.RunBlock(i, (i + round) % p);
          }
        }
        sampler.EndStage();
      }
      sampler.EndSweep();
    } catch (...) {
      sampler.AbortSweep();  // same recovery contract as the other drivers
      throw;
    }
  }
  // Priced at the configured per-token cost, NOT at this call's wall time:
  // block-wise execution on one machine pays simulation-only overhead
  // (per-block column/row rescans, staged-write copies) that a real worker
  // would not, so its wall time is not a fair compute cost. Callers wanting
  // measured costs should time the fused Iterate() path and put the result
  // in ClusterConfig::per_token_ns (fig6 does exactly that).
  return Model(config_.per_token_ns);
}

}  // namespace warplda

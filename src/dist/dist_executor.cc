#include "dist/dist_executor.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>

#include "core/checkpoint.h"
#include "dist/partitioner.h"
#include "util/checkpoint_io.h"
#include "util/rng.h"

namespace warplda {
namespace {

/// Application message types carried by FrameChannel data frames.
constexpr uint32_t kMsgHello = 1;      ///< worker -> coord: u32 worker_id
constexpr uint32_t kMsgAssign = 2;     ///< coord -> worker: epoch, iter, owner
constexpr uint32_t kMsgRestore = 3;    ///< coord -> worker: + sweep checkpoint
constexpr uint32_t kMsgBlockDelta = 4; ///< either way: one block's effect
constexpr uint32_t kMsgRecover = 5;    ///< coord -> worker: abort, epoch bump
constexpr uint32_t kMsgShutdown = 6;   ///< coord -> worker: run complete
constexpr uint32_t kMsgStats = 7;      ///< worker -> coord: channel stats

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint32_t BlockOf(const SweepPlan& plan, uint32_t doc_block,
                 uint32_t word_block) {
  return doc_block * plan.num_word_blocks + word_block;
}

std::vector<char> OwnedMask(const std::vector<uint32_t>& owner,
                            uint32_t worker_id) {
  std::vector<char> mask(owner.size(), 0);
  for (size_t b = 0; b < owner.size(); ++b) {
    mask[b] = owner[b] == worker_id ? 1 : 0;
  }
  return mask;
}

/// Per-direction fault schedule seeds derived from the one run seed, so a
/// single number reproduces the whole run's fault pattern yet no two
/// channel directions share a schedule.
FaultSpec ChannelFault(const FaultSpec& base, uint32_t worker_id,
                       bool coordinator_side) {
  FaultSpec spec = base;
  if (spec.seed != 0) {
    spec.seed = SplitMix64(spec.seed ^
                           (static_cast<uint64_t>(worker_id) * 2 +
                            (coordinator_side ? 1 : 0) + 0x9E37u));
    if (spec.seed == 0) spec.seed = 1;
  }
  return spec;
}

void AccumulateStats(FrameChannel::Stats* into,
                     const FrameChannel::Stats& from) {
  into->frames_sent += from.frames_sent;
  into->frames_received += from.frames_received;
  into->bytes_sent += from.bytes_sent;
  into->bytes_received += from.bytes_received;
  into->retransmits += from.retransmits;
  into->crc_rejects += from.crc_rejects;
  into->dup_suppressed += from.dup_suppressed;
  into->naks_sent += from.naks_sent;
  into->naks_received += from.naks_received;
  into->faults_injected += from.faults_injected;
}

std::vector<uint8_t> EncodeStats(const FrameChannel::Stats& s) {
  PayloadWriter out;
  out.Put(s.frames_sent);
  out.Put(s.frames_received);
  out.Put(s.bytes_sent);
  out.Put(s.bytes_received);
  out.Put(s.retransmits);
  out.Put(s.crc_rejects);
  out.Put(s.dup_suppressed);
  out.Put(s.naks_sent);
  out.Put(s.naks_received);
  out.Put(s.faults_injected);
  return out.bytes();
}

bool DecodeStats(const std::vector<uint8_t>& body, FrameChannel::Stats* s) {
  PayloadReader in(body);
  return in.Get(&s->frames_sent) && in.Get(&s->frames_received) &&
         in.Get(&s->bytes_sent) && in.Get(&s->bytes_received) &&
         in.Get(&s->retransmits) && in.Get(&s->crc_rejects) &&
         in.Get(&s->dup_suppressed) && in.Get(&s->naks_sent) &&
         in.Get(&s->naks_received) && in.Get(&s->faults_injected);
}

std::vector<uint8_t> EncodeDelta(uint64_t epoch, const GridBlockDelta& d) {
  PayloadWriter out;
  out.Put(epoch);
  out.Put(static_cast<uint32_t>(d.stage));
  out.Put(d.doc_block);
  out.Put(d.word_block);
  out.Put(static_cast<uint64_t>(d.moves.size()));
  for (const GridBlockDelta::Move& mv : d.moves) {
    out.Put(mv.pos);
    out.Put(mv.item);
    out.Put(mv.from);
    out.Put(mv.to);
  }
  out.PutVec(d.proposals);
  return out.bytes();
}

bool DecodeDelta(const std::vector<uint8_t>& body, uint64_t* epoch,
                 GridBlockDelta* d) {
  PayloadReader in(body);
  uint32_t stage = 0;
  uint64_t num_moves = 0;
  if (!in.Get(epoch) || !in.Get(&stage) || !in.Get(&d->doc_block) ||
      !in.Get(&d->word_block) || !in.Get(&num_moves)) {
    return false;
  }
  if (stage > static_cast<uint32_t>(SweepStage::kDone)) return false;
  d->stage = static_cast<SweepStage>(stage);
  // 20 bytes per move on the wire; bound before resizing.
  if (num_moves > in.remaining() / 20) return false;
  d->moves.resize(static_cast<size_t>(num_moves));
  for (GridBlockDelta::Move& mv : d->moves) {
    if (!in.Get(&mv.pos) || !in.Get(&mv.item) || !in.Get(&mv.from) ||
        !in.Get(&mv.to)) {
      return false;
    }
  }
  return in.GetVec(&d->proposals);
}

/// kMsgAssign / kMsgRestore share a prefix: epoch, iteration, owner map.
std::vector<uint8_t> EncodeAssignment(uint64_t epoch, uint32_t iteration,
                                      const std::vector<uint32_t>& owner,
                                      const std::vector<uint8_t>* ckpt) {
  PayloadWriter out;
  out.Put(epoch);
  out.Put(iteration);
  out.PutVec(owner);
  if (ckpt != nullptr) out.PutVec(*ckpt);
  return out.bytes();
}

bool DecodeAssignment(const std::vector<uint8_t>& body, uint64_t* epoch,
                      uint32_t* iteration, std::vector<uint32_t>* owner,
                      std::vector<uint8_t>* ckpt) {
  PayloadReader in(body);
  if (!in.Get(epoch) || !in.Get(iteration) || !in.GetVec(owner)) return false;
  if (ckpt != nullptr && !in.GetVec(ckpt)) return false;
  return true;
}

// ==========================================================================
// Worker side (runs in the forked child; _exit()s, never returns).

struct WorkerState {
  GridSampler* sampler = nullptr;
  FrameChannel* channel = nullptr;
  const SweepPlan* plan = nullptr;
  const DistConfig* cfg = nullptr;
  uint32_t worker_id = 0;
  uint32_t num_blocks = 0;

  uint64_t epoch = 0;
  uint32_t iteration = 0;
  std::vector<uint32_t> owner;
  bool have_assignment = false;
  bool sweep_open = false;

  std::vector<char> ran;  ///< per block, current span
  uint32_t ran_count = 0;
  bool restored = false;    ///< a kMsgRestore landed; span state is stale
  bool recovering = false;  ///< between kMsgRecover and its kMsgRestore
  bool shutdown = false;
  bool failed = false;
  uint32_t barriers_done = 0;  ///< spans completed since process start
};

void ResetSpan(WorkerState& ws) {
  ws.ran.assign(ws.num_blocks, 0);
  ws.ran_count = 0;
}

void MarkRan(WorkerState& ws, uint32_t block) {
  if (!ws.ran[block]) {
    ws.ran[block] = 1;
    ++ws.ran_count;
  }
}

/// Applies one received message to the worker state. Returns false when the
/// span completed (caller should fall through to the barrier before
/// processing more messages — the queue's next deltas belong to the next
/// span).
bool WorkerHandle(WorkerState& ws, const FrameChannel::Message& msg) {
  switch (msg.type) {
    case kMsgAssign: {
      uint64_t epoch = 0;
      uint32_t iteration = 0;
      std::vector<uint32_t> owner;
      if (!DecodeAssignment(msg.body, &epoch, &iteration, &owner, nullptr) ||
          owner.size() != ws.num_blocks) {
        ws.failed = true;
        return false;
      }
      ws.epoch = epoch;
      ws.iteration = iteration;
      ws.owner = std::move(owner);
      ws.sampler->SetLocalBlocks(OwnedMask(ws.owner, ws.worker_id));
      ws.have_assignment = true;
      // Stop draining: if our assign frame was delayed (dropped and
      // retransmitted), faster peers' first-span deltas may already be
      // queued behind it — they must wait until BeginSweep has run.
      return false;
    }
    case kMsgRecover: {
      // Abort now so staged state from the interrupted stage is gone; the
      // restore that follows on this same FIFO channel rebuilds everything.
      ws.sampler->AbortSweep();
      ws.sweep_open = false;
      ws.recovering = true;
      return true;
    }
    case kMsgRestore: {
      uint64_t epoch = 0;
      uint32_t iteration = 0;
      std::vector<uint32_t> owner;
      std::vector<uint8_t> ckpt_bytes;
      SweepCheckpoint ckpt;
      std::string error;
      if (!DecodeAssignment(msg.body, &epoch, &iteration, &owner,
                            &ckpt_bytes) ||
          owner.size() != ws.num_blocks ||
          !DecodeSweepCheckpointPayload(ckpt_bytes, "restore message", &ckpt,
                                        &error)) {
        ws.failed = true;
        return false;
      }
      ws.sampler->AbortSweep();  // idempotent; normally kMsgRecover already did
      ws.epoch = epoch;
      ws.iteration = iteration;
      ws.owner = std::move(owner);
      // Ownership first: the restore's cache rebuilds honor the new mask.
      ws.sampler->SetLocalBlocks(OwnedMask(ws.owner, ws.worker_id));
      if (!ws.sampler->RestoreSweepState(ckpt, &error)) {
        ws.failed = true;
        return false;
      }
      ws.sweep_open = ckpt.next_stage != SweepStage::kWordAccept;
      ws.recovering = false;
      ws.restored = true;
      ResetSpan(ws);
      return false;  // span state is new — re-enter the span loop
    }
    case kMsgBlockDelta: {
      uint64_t epoch = 0;
      GridBlockDelta delta;
      if (!DecodeDelta(msg.body, &epoch, &delta)) {
        ws.failed = true;
        return false;
      }
      if (epoch != ws.epoch || ws.recovering) return true;  // stale epoch
      const uint32_t b = BlockOf(*ws.plan, delta.doc_block, delta.word_block);
      if (b >= ws.num_blocks) {
        ws.failed = true;
        return false;
      }
      std::string error;
      if (!ws.sampler->ApplyBlockDelta(delta, &error)) {
        ws.failed = true;
        return false;
      }
      MarkRan(ws, b);
      // Span complete: stop draining — anything still queued is the next
      // span's traffic and must wait for our own EndStage.
      return ws.ran_count < ws.num_blocks;
    }
    case kMsgShutdown: {
      ws.channel->Send(kMsgStats, EncodeStats(ws.channel->stats()));
      ws.shutdown = true;
      return false;
    }
    default:
      return true;  // unknown types are ignored (forward compatibility)
  }
}

/// Drains available messages; with `timeout_ms` > 0 waits for the first.
/// Returns false when the channel is dead and drained.
bool WorkerPump(WorkerState& ws, uint32_t timeout_ms) {
  FrameChannel::Message msg;
  bool keep_going = true;
  if (timeout_ms > 0) {
    const FrameChannel::RecvStatus st = ws.channel->Receive(&msg, timeout_ms);
    if (st == FrameChannel::RecvStatus::kClosed) return false;
    if (st == FrameChannel::RecvStatus::kTimeout) return true;
    keep_going = WorkerHandle(ws, msg);
  }
  while (keep_going && !ws.failed && ws.channel->TryReceive(&msg)) {
    keep_going = WorkerHandle(ws, msg);
  }
  return true;
}

void MaybeSelfKill(const WorkerState& ws, bool mid_stage) {
  const DistConfig::KillSpec& kill = ws.cfg->kill;
  if (kill.worker == ws.worker_id && kill.mid_stage == mid_stage &&
      kill.barrier == ws.barriers_done) {
    // SIGKILL, not exit(): no atexit, no flushes, the io thread dies with
    // us and unsent frames are simply lost — the case recovery must handle.
    ::kill(::getpid(), SIGKILL);
  }
}

void WorkerMain(WorkerState& ws) {
  ws.channel->Send(kMsgHello, [&] {
    PayloadWriter out;
    out.Put(ws.worker_id);
    return out.bytes();
  }());

  while (!ws.have_assignment && !ws.shutdown && !ws.failed) {
    if (!WorkerPump(ws, 100)) return;
  }

  while (!ws.shutdown && !ws.failed) {
    if (ws.recovering) {
      // A kMsgRecover aborted our sweep; all sweep work stops until the
      // kMsgRestore behind it (possibly still in flight) rebuilds state.
      if (!WorkerPump(ws, 100)) return;
      continue;
    }
    if (ws.iteration >= ws.cfg->iterations && !ws.sweep_open) {
      // Run complete — wait for the shutdown handshake (the channel must
      // stay up so the coordinator's final frames get their acks).
      if (!WorkerPump(ws, 100)) return;
      continue;
    }
    if (!ws.sweep_open) {
      ws.sampler->BeginSweep(*ws.plan);
      ws.sweep_open = true;
    }
    while (ws.sampler->sweep_stage() != SweepStage::kDone && !ws.shutdown &&
           !ws.failed && !ws.recovering) {
      ws.restored = false;
      ResetSpan(ws);
      bool first_delta_sent = false;
      for (uint32_t b = 0; b < ws.num_blocks && !ws.restored &&
                           !ws.recovering && !ws.shutdown;
           ++b) {
        if (ws.owner[b] != ws.worker_id) continue;
        GridBlockDelta delta;
        if (!ws.sampler->RunBlockCaptured(b / ws.plan->num_word_blocks,
                                          b % ws.plan->num_word_blocks,
                                          /*worker=*/0, &delta)) {
          ws.failed = true;
          break;
        }
        MarkRan(ws, b);
        ws.channel->Send(kMsgBlockDelta, EncodeDelta(ws.epoch, delta));
        if (!first_delta_sent) {
          first_delta_sent = true;
          MaybeSelfKill(ws, /*mid_stage=*/true);
        }
        // Overlap: apply peers' deltas while our own blocks still compute.
        // Skip once the span is complete — if our last own block finished
        // it, a fast peer may already be past the barrier, and anything
        // queued from it belongs to the next span.
        if (ws.ran_count < ws.num_blocks && !WorkerPump(ws, 0)) return;
      }
      while (!ws.restored && !ws.recovering && !ws.shutdown && !ws.failed &&
             ws.ran_count < ws.num_blocks) {
        if (!WorkerPump(ws, 50)) return;
      }
      if (ws.restored || ws.recovering || ws.shutdown || ws.failed) break;
      MaybeSelfKill(ws, /*mid_stage=*/false);
      ws.sampler->EndStage();
      ++ws.barriers_done;
    }
    if (ws.restored || ws.recovering || ws.shutdown || ws.failed) continue;
    if (ws.sweep_open && ws.sampler->sweep_stage() == SweepStage::kDone) {
      ws.sampler->EndSweep();
      ws.sweep_open = false;
      ++ws.iteration;
    }
  }
  ws.channel->DrainSends(ws.cfg->shutdown_timeout_ms);
}

// ==========================================================================
// Coordinator side.

struct WorkerSlot {
  int pid = -1;
  std::unique_ptr<FrameChannel> channel;
  bool live = false;
  bool reaped = false;
};

struct Coordinator {
  GridSampler* sampler = nullptr;
  const SweepPlan* plan = nullptr;
  const DistConfig* cfg = nullptr;
  uint32_t num_blocks = 0;
  std::vector<uint64_t> weights;

  std::vector<WorkerSlot> workers;
  uint64_t epoch = 0;
  uint32_t iteration = 0;
  std::vector<uint32_t> owner;
  bool sweep_open = false;
  SweepCheckpoint barrier_ckpt;  ///< state at the last stage barrier

  std::vector<char> ran;
  uint32_t ran_count = 0;

  DistResult result;

  bool Fail(const std::string& message) {
    if (result.error.empty()) result.error = message;
    return false;
  }

  std::vector<uint32_t> LiveIds() const {
    std::vector<uint32_t> ids;
    for (uint32_t w = 0; w < workers.size(); ++w) {
      if (workers[w].live) ids.push_back(w);
    }
    return ids;
  }

  void ReapWorker(uint32_t w, bool force_kill) {
    WorkerSlot& slot = workers[w];
    if (slot.pid < 0 || slot.reaped) return;
    if (force_kill) ::kill(slot.pid, SIGKILL);
    int status = 0;
    if (::waitpid(slot.pid, &status, force_kill ? 0 : WNOHANG) == slot.pid) {
      slot.reaped = true;
    }
  }

  /// Captures the current barrier state; every recovery restores to it.
  bool CaptureBarrier() {
    if (!sampler->CaptureSweepState(&barrier_ckpt)) {
      return Fail("sampler refused a barrier checkpoint (mid-stage state?)");
    }
    barrier_ckpt.iteration = iteration;
    return true;
  }

  /// Declares worker `w` dead, repartitions its blocks, and restores every
  /// survivor (and the coordinator's replica) to the last barrier.
  bool Recover(uint32_t w) {
    ReapWorker(w, /*force_kill=*/true);  // ensure it is really gone
    workers[w].live = false;
    workers[w].channel->Close();
    const std::vector<uint32_t> live = LiveIds();
    if (live.empty()) {
      return Fail("all workers dead (last: " +
                  workers[w].channel->death_reason() + ")");
    }
    ++epoch;
    ++result.recoveries;
    owner = ReassignToSurvivors(weights, owner, live);
    // Rewind the coordinator replica to the barrier. The abort discards the
    // interrupted stage's staged state; the restore overwrites the rest
    // (injected proposal writes included), mirroring what survivors do.
    sampler->AbortSweep();
    sweep_open = false;
    std::string error;
    if (!sampler->RestoreSweepState(barrier_ckpt, &error)) {
      return Fail("coordinator restore failed: " + error);
    }
    sweep_open = barrier_ckpt.next_stage != SweepStage::kWordAccept;
    iteration = barrier_ckpt.iteration;
    std::vector<uint8_t> ckpt_bytes;
    EncodeSweepCheckpointPayload(barrier_ckpt, &ckpt_bytes);
    for (uint32_t s : live) {
      // FIFO per channel orders recover before restore before any relay of
      // the new epoch, so survivors abort before they see the new state.
      workers[s].channel->Send(kMsgRecover, {});
      workers[s].channel->Send(
          kMsgRestore, EncodeAssignment(epoch, iteration, owner, &ckpt_bytes));
    }
    ResetSpan();
    return true;
  }

  void ResetSpan() {
    ran.assign(num_blocks, 0);
    ran_count = 0;
  }

  /// One pass over live channels: applies + relays any received deltas,
  /// returns true if anything arrived. Death is detected by the caller.
  bool PumpDeltas() {
    bool any = false;
    FrameChannel::Message msg;
    for (uint32_t w = 0; w < workers.size(); ++w) {
      if (!workers[w].live) continue;
      while (ran_count < num_blocks && workers[w].channel->TryReceive(&msg)) {
        any = true;
        if (msg.type == kMsgStats || msg.type == kMsgHello) continue;
        if (msg.type != kMsgBlockDelta) continue;
        uint64_t delta_epoch = 0;
        GridBlockDelta delta;
        if (!DecodeDelta(msg.body, &delta_epoch, &delta)) {
          Fail("malformed delta from worker " + std::to_string(w));
          return any;
        }
        if (delta_epoch != epoch) continue;  // pre-recovery straggler
        const uint32_t b = BlockOf(*plan, delta.doc_block, delta.word_block);
        if (b >= num_blocks || ran[b]) continue;  // duplicate: idempotent
        std::string error;
        if (!sampler->ApplyBlockDelta(delta, &error)) {
          Fail("delta rejected (worker " + std::to_string(w) + "): " + error);
          return any;
        }
        ran[b] = 1;
        ++ran_count;
        // Relay to every other live worker; FIFO guarantees each worker
        // holds all of a span's deltas before any next-span frame.
        for (uint32_t o = 0; o < workers.size(); ++o) {
          if (o != w && workers[o].live) {
            workers[o].channel->Send(kMsgBlockDelta, msg.body);
          }
        }
      }
    }
    return any;
  }

  /// Finds a dead live-marked worker (EOF / write error / heartbeat
  /// silence), or kNoWorker.
  uint32_t DetectDeath() {
    for (uint32_t w = 0; w < workers.size(); ++w) {
      if (!workers[w].live) continue;
      if (!workers[w].channel->alive()) return w;
      if (workers[w].channel->ms_since_last_rx() >
          static_cast<int64_t>(cfg->heartbeat_timeout_ms)) {
        return w;
      }
    }
    return DistConfig::kNoWorker;
  }

  /// Waits until every block of the current span has been applied locally,
  /// recovering from worker deaths along the way.
  bool WaitForSpan() {
    while (ran_count < num_blocks) {
      if (!result.error.empty()) return false;
      const bool any = PumpDeltas();
      if (!result.error.empty()) return false;
      const uint32_t dead = DetectDeath();
      if (dead != DistConfig::kNoWorker) {
        if (!Recover(dead)) return false;
        return true;  // span state rewound; caller re-enters its loop
      }
      if (!any) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return true;
  }
};

void SumChannelStats(Coordinator& coord) {
  for (WorkerSlot& slot : coord.workers) {
    if (slot.channel != nullptr) {
      AccumulateStats(&coord.result.coordinator_stats, slot.channel->stats());
    }
  }
}

}  // namespace

std::vector<uint64_t> BlockTokenWeights(const Corpus& corpus,
                                        const SweepPlan& plan) {
  std::vector<uint64_t> weights(
      static_cast<size_t>(plan.num_doc_blocks) * plan.num_word_blocks, 0);
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    const uint32_t db = plan.doc_block.empty() ? 0 : plan.doc_block[d];
    for (WordId w : corpus.doc_tokens(d)) {
      const uint32_t wb = plan.word_block.empty() ? 0 : plan.word_block[w];
      ++weights[static_cast<size_t>(db) * plan.num_word_blocks + wb];
    }
  }
  return weights;
}

DistResult RunDistributedSweeps(GridSampler& sampler, const Corpus& corpus,
                                const SweepPlan& plan,
                                const DistConfig& config) {
  Coordinator coord;
  coord.sampler = &sampler;
  coord.plan = &plan;
  coord.cfg = &config;
  coord.num_blocks = plan.num_doc_blocks * plan.num_word_blocks;

  std::string error;
  if (config.num_workers == 0) {
    coord.Fail("num_workers must be >= 1");
    return coord.result;
  }
  if (!plan.Validate(corpus.num_docs(), corpus.num_words(), &error)) {
    coord.Fail("invalid plan: " + error);
    return coord.result;
  }
  if (!sampler.CaptureSweepState(&coord.barrier_ckpt)) {
    coord.Fail("sampler does not support sweep checkpointing");
    return coord.result;
  }
  coord.barrier_ckpt.iteration = 0;

  coord.weights = BlockTokenWeights(corpus, plan);
  coord.owner = PartitionByTokens(coord.weights, config.num_workers,
                                  PartitionStrategy::kGreedy);
  coord.result.initial_owner = coord.owner;

  // ---- spawn phase: sockets first, then every fork, then (only once the
  // coordinator is done forking) the channels and their io threads.
  uint16_t port = 0;
  int listen_fd = -1;
  std::vector<int> parent_fds(config.num_workers, -1);
  std::vector<int> child_fds(config.num_workers, -1);
  if (config.use_tcp) {
    listen_fd = ListenLoopback(&port, &error);
    if (listen_fd < 0) {
      coord.Fail("listen failed: " + error);
      return coord.result;
    }
  } else {
    for (uint32_t w = 0; w < config.num_workers; ++w) {
      int fds[2];
      if (!MakeSocketPair(fds, &error)) {
        coord.Fail("socketpair failed: " + error);
        for (uint32_t c = 0; c < w; ++c) {
          ::close(parent_fds[c]);
          ::close(child_fds[c]);
        }
        return coord.result;
      }
      parent_fds[w] = fds[0];
      child_fds[w] = fds[1];
    }
  }

  coord.workers.resize(config.num_workers);
  std::vector<int> pids;
  for (uint32_t w = 0; w < config.num_workers; ++w) {
    const int pid = ::fork();
    if (pid < 0) {
      coord.Fail("fork failed: " + std::string(std::strerror(errno)));
      for (uint32_t o = 0; o < config.num_workers; ++o) {
        if (coord.workers[o].pid > 0) {
          ::kill(coord.workers[o].pid, SIGKILL);
          ::waitpid(coord.workers[o].pid, nullptr, 0);
        }
        if (parent_fds[o] >= 0) ::close(parent_fds[o]);
        if (child_fds[o] >= 0) ::close(child_fds[o]);
      }
      if (listen_fd >= 0) ::close(listen_fd);
      return coord.result;
    }
    if (pid == 0) {
      // ---- worker process. It inherited the initialized sampler replica;
      // everything else it needs arrives over the channel.
      ::signal(SIGPIPE, SIG_IGN);
      int fd = -1;
      if (config.use_tcp) {
        ::close(listen_fd);
        fd = ConnectLoopback(port, config.connect_timeout_ms, &error);
      } else {
        for (uint32_t o = 0; o < config.num_workers; ++o) {
          if (parent_fds[o] >= 0) ::close(parent_fds[o]);
          if (o != w && child_fds[o] >= 0) ::close(child_fds[o]);
        }
        fd = child_fds[w];
      }
      if (fd < 0) ::_exit(3);
      {
        FrameChannel::Options opts = config.channel;
        opts.fault = ChannelFault(config.fault, w, /*coordinator_side=*/false);
        opts.peer = "coordinator";
        FrameChannel channel(fd, opts);
        WorkerState ws;
        ws.sampler = &sampler;
        ws.channel = &channel;
        ws.plan = &plan;
        ws.cfg = &config;
        ws.worker_id = w;
        ws.num_blocks = coord.num_blocks;
        // The child inherited the coordinator's whole stack (test harness
        // included); an escaping exception would unwind into a copy of a
        // caller that must never run twice. Trap it here — a worker that
        // throws is simply a dead worker for the coordinator to recover.
        try {
          WorkerMain(ws);
        } catch (...) {
          ws.failed = true;
        }
        channel.Close();
        if (ws.failed) ::_exit(2);
      }
      ::_exit(0);
    }
    coord.workers[w].pid = pid;
    pids.push_back(pid);
  }

  // ---- coordinator. Channels (and their io threads) only exist from here
  // on; the process was single-threaded through every fork above.
  ::signal(SIGPIPE, SIG_IGN);
  if (config.use_tcp) {
    // Accepted connections are identified by their Hello, not accept order.
    std::vector<int> accepted;
    for (uint32_t w = 0; w < config.num_workers; ++w) {
      const int fd = AcceptWithTimeout(listen_fd, config.connect_timeout_ms,
                                       &error);
      if (fd < 0) break;
      accepted.push_back(fd);
    }
    ::close(listen_fd);
    if (accepted.size() != config.num_workers) {
      coord.Fail("accept failed: " + error);
      for (int fd : accepted) ::close(fd);
      for (WorkerSlot& slot : coord.workers) {
        if (slot.pid > 0) {
          ::kill(slot.pid, SIGKILL);
          ::waitpid(slot.pid, nullptr, 0);
        }
      }
      return coord.result;
    }
    // Temporary slots until each Hello names its worker.
    std::vector<std::unique_ptr<FrameChannel>> pending;
    for (size_t i = 0; i < accepted.size(); ++i) {
      FrameChannel::Options opts = config.channel;
      opts.fault = ChannelFault(config.fault, static_cast<uint32_t>(i),
                                /*coordinator_side=*/true);
      opts.peer = "worker?";
      pending.push_back(
          std::make_unique<FrameChannel>(accepted[i], opts));
    }
    for (auto& channel : pending) {
      FrameChannel::Message msg;
      uint32_t id = 0;
      if (channel->Receive(&msg, config.connect_timeout_ms) !=
              FrameChannel::RecvStatus::kOk ||
          msg.type != kMsgHello ||
          !PayloadReader(msg.body).Get(&id) || id >= config.num_workers ||
          coord.workers[id].channel != nullptr) {
        coord.Fail("worker handshake failed");
        break;
      }
      coord.workers[id].channel = std::move(channel);
      coord.workers[id].live = true;
    }
  } else {
    for (uint32_t w = 0; w < config.num_workers; ++w) {
      ::close(child_fds[w]);
      FrameChannel::Options opts = config.channel;
      opts.fault = ChannelFault(config.fault, w, /*coordinator_side=*/true);
      opts.peer = "worker" + std::to_string(w);
      coord.workers[w].channel =
          std::make_unique<FrameChannel>(parent_fds[w], opts);
      FrameChannel::Message msg;
      uint32_t id = 0;
      if (coord.workers[w].channel->Receive(&msg, config.connect_timeout_ms) !=
              FrameChannel::RecvStatus::kOk ||
          msg.type != kMsgHello || !PayloadReader(msg.body).Get(&id) ||
          id != w) {
        coord.Fail("worker " + std::to_string(w) + " handshake failed");
        break;
      }
      coord.workers[w].live = true;
    }
  }

  if (config.on_workers_spawned) config.on_workers_spawned(pids);

  if (coord.result.error.empty()) {
    const std::vector<uint8_t> assign =
        EncodeAssignment(coord.epoch, 0, coord.owner, nullptr);
    for (WorkerSlot& slot : coord.workers) {
      if (slot.live) slot.channel->Send(kMsgAssign, assign);
    }
    // The coordinator replica owns no blocks: per-item cache builds are
    // skipped entirely, it only folds deltas at barriers.
    sampler.SetLocalBlocks(std::vector<char>(coord.num_blocks, 0));

    // ---- main loop: sweeps -> spans -> delta exchange.
    while (coord.iteration < config.iterations &&
           coord.result.error.empty()) {
      const int64_t sweep_start = NowMs();
      if (!coord.sweep_open) {
        sampler.BeginSweep(plan);
        coord.sweep_open = true;
      }
      bool rewound = false;
      while (sampler.sweep_stage() != SweepStage::kDone) {
        coord.ResetSpan();
        if (!coord.WaitForSpan()) break;
        if (coord.ran_count < coord.num_blocks) {
          // A recovery rewound the sweep; re-enter from the restored state
          // (possibly a different stage, possibly between sweeps).
          rewound = true;
          break;
        }
        sampler.EndStage();
        if (!coord.CaptureBarrier()) break;
      }
      if (!coord.result.error.empty()) break;
      if (rewound || !coord.sweep_open) continue;
      if (sampler.sweep_stage() == SweepStage::kDone) {
        sampler.EndSweep();
        coord.sweep_open = false;
        ++coord.iteration;
        ++coord.result.iterations_completed;
        coord.result.sweep_seconds.push_back(
            static_cast<double>(NowMs() - sweep_start) / 1000.0);
        if (!coord.CaptureBarrier()) break;
      }
    }
  }

  // ---- shutdown: handshake stats out of live workers, then reap everyone.
  for (uint32_t w = 0; w < coord.workers.size(); ++w) {
    WorkerSlot& slot = coord.workers[w];
    if (!slot.live) continue;
    slot.channel->Send(kMsgShutdown, {});
  }
  const int64_t deadline = NowMs() + config.shutdown_timeout_ms;
  for (uint32_t w = 0; w < coord.workers.size(); ++w) {
    WorkerSlot& slot = coord.workers[w];
    if (!slot.live) continue;
    FrameChannel::Message msg;
    while (NowMs() < deadline) {
      const FrameChannel::RecvStatus st = slot.channel->Receive(
          &msg, static_cast<uint32_t>(std::max<int64_t>(1, deadline - NowMs())));
      if (st != FrameChannel::RecvStatus::kOk) break;
      if (msg.type == kMsgStats) {
        FrameChannel::Stats stats;
        if (DecodeStats(msg.body, &stats)) {
          AccumulateStats(&coord.result.worker_stats, stats);
        }
        break;
      }
    }
    slot.channel->DrainSends(
        static_cast<uint32_t>(std::max<int64_t>(1, deadline - NowMs())));
  }
  SumChannelStats(coord);
  for (WorkerSlot& slot : coord.workers) {
    if (slot.channel != nullptr) slot.channel->Close();
  }
  for (uint32_t w = 0; w < coord.workers.size(); ++w) {
    WorkerSlot& slot = coord.workers[w];
    if (slot.pid <= 0 || slot.reaped) continue;
    const int64_t reap_deadline = NowMs() + 2000;
    bool reaped = false;
    while (NowMs() < reap_deadline) {
      if (::waitpid(slot.pid, nullptr, WNOHANG) == slot.pid) {
        reaped = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (!reaped) {
      ::kill(slot.pid, SIGKILL);
      ::waitpid(slot.pid, nullptr, 0);
    }
    slot.reaped = true;
  }

  coord.result.block_owner = coord.owner;
  coord.result.final_epoch = coord.epoch;
  if (coord.result.error.empty()) {
    coord.result.ok = true;
    // The trailing mask would leak into later single-process use.
    sampler.SetLocalBlocks({});
  }
  return coord.result;
}

}  // namespace warplda

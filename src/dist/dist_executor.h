#ifndef WARPLDA_DIST_DIST_EXECUTOR_H_
#define WARPLDA_DIST_DIST_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/sweep_plan.h"
#include "corpus/corpus.h"
#include "dist/fault.h"
#include "dist/transport.h"
#include "util/contracts.h"

namespace warplda {

/// Fault-tolerant multi-process grid execution — the paper's multi-machine
/// schedule (§5.3.2) run over real processes and real sockets instead of the
/// analytic ClusterSim model.
///
/// Topology: a coordinator forks `num_workers` worker processes, each
/// connected back by one FrameChannel (AF_UNIX socketpair by default,
/// loopback TCP with real connect/accept edges when `use_tcp`). Grid blocks
/// are assigned to workers greedy-LPT by token weight (dist/partitioner.h).
/// Every process holds a full sampler replica (forked from the initialized
/// coordinator, so replicas start bit-identical for free); each worker runs
/// only its owned blocks per stage span, capturing every block's externally
/// visible effect as a GridBlockDelta and streaming it to the coordinator as
/// soon as the block finishes — communication overlaps the remaining blocks'
/// compute on both ends. The coordinator applies each delta to its own
/// replica and relays it to the other live workers; a stage's barrier is the
/// data dependency itself (nobody can EndStage() before holding all blocks'
/// deltas), so no extra barrier round-trips exist.
///
/// Determinism: grid execution is exact (core/sweep_plan.h) — per-token RNG
/// streams and delayed counts make a sweep's samples independent of where
/// blocks run. A completed distributed sweep is therefore bit-identical to
/// single-process Iterate(), which the test matrix asserts under every fault
/// below.
///
/// Fault tolerance:
///  * every socket edge runs the FrameChannel robustness envelope —
///    timeouts, bounded exponential-backoff retransmits, CRC
///    reject-and-renegotiate, duplicate suppression, heartbeats;
///  * `fault` turns on the deterministic injector (dist/fault.h) on every
///    channel direction, with per-direction seeds derived from one run seed;
///  * worker death — SIGKILL mid-stage included — is detected by socket EOF
///    or heartbeat timeout. The coordinator then bumps the protocol epoch,
///    repartitions the dead worker's blocks across survivors
///    (ReassignToSurvivors, greedy-LPT seeded with survivors' loads), and
///    broadcasts a recover+restore pair: survivors abort their open sweep
///    and restore the coordinator's last stage-barrier SweepCheckpoint, so
///    the sweep resumes at the exact barrier state and still finishes
///    bit-identical to the uninterrupted run. Frames from before the epoch
///    bump are discarded by their epoch tag; duplicate deltas are idempotent.
/// Class-level contract: a DistConfig is assembled by the caller and frozen
/// once RunDistributedSweeps starts — coordinator and worker loops share it
/// across processes/threads read-only.
struct WARP_IMMUTABLE_AFTER(RunDistributedSweeps) DistConfig {
  static constexpr uint32_t kNoWorker = 0xFFFFFFFFu;

  uint32_t num_workers = 2;
  uint32_t iterations = 1;
  /// false: AF_UNIX socketpair per worker. true: loopback TCP — listener
  /// pre-fork, workers connect with deadline + backoff, coordinator accepts
  /// with a deadline.
  bool use_tcp = false;

  /// A silent peer (no data, no pings) past this deadline is declared dead
  /// even without EOF — the coordinator SIGKILLs it and recovers.
  uint32_t heartbeat_timeout_ms = 2000;
  uint32_t connect_timeout_ms = 5000;   ///< TCP connect/accept deadline
  uint32_t shutdown_timeout_ms = 5000;  ///< drain + reap deadline

  /// Channel tuning (rto, keepalive, max payload) applied to every channel.
  /// The `fault` and `peer` members are overwritten per channel.
  FrameChannel::Options channel;

  /// Fault injection spec; seed 0 disables. Each channel direction derives
  /// its own schedule seed from this one, so one run seed reproduces the
  /// whole run's fault pattern.
  FaultSpec fault;

  /// Deterministic self-kill for the recovery tests: `worker` SIGKILLs
  /// itself at its `barrier`-th stage-span barrier (counted from process
  /// start) — either right after shipping the first delta of that span
  /// (`mid_stage`, so peers hold partial output of the span) or after
  /// receiving the whole span but before EndStage.
  struct KillSpec {
    uint32_t worker = kNoWorker;
    uint32_t barrier = 0;
    bool mid_stage = false;
  };
  KillSpec kill;

  /// Called in the coordinator once every worker is forked, with their pids
  /// — the external SIGKILL tests (and the CI smoke step) kill a real worker
  /// from here.
  std::function<void(const std::vector<int>&)> on_workers_spawned;
};

/// Outcome of a distributed run. `ok == false` means the run could not
/// complete (all workers dead, protocol corruption, spawn failure) and
/// `error` says why; the sampler may then hold mid-sweep state.
struct DistResult {
  bool ok = false;
  std::string error;

  uint32_t iterations_completed = 0;
  uint32_t recoveries = 0;     ///< worker deaths survived
  uint64_t final_epoch = 0;    ///< protocol epoch after the last recovery
  std::vector<uint32_t> initial_owner;  ///< block -> worker, first assignment
  std::vector<uint32_t> block_owner;    ///< block -> worker, final

  /// Channel stats summed over the coordinator-side channel ends, and over
  /// the worker-side ends (each worker reports its stats in its shutdown
  /// handshake; workers that died contribute nothing).
  FrameChannel::Stats coordinator_stats;
  FrameChannel::Stats worker_stats;

  std::vector<double> sweep_seconds;  ///< wall time per completed sweep
};

/// Runs `config.iterations` full grid sweeps of `plan` on `sampler`
/// distributed across forked worker processes as described above. The
/// sampler must be Init()ed on `corpus`, support delta capture and sweep
/// checkpointing (WarpLdaSampler does), and have no open sweep. On success
/// the coordinator's sampler holds the final state — bit-identical to
/// `config.iterations` calls of Iterate() — regardless of worker count,
/// faults, or recoveries along the way.
///
/// Fork discipline: workers are forked before any channel (and thus any
/// thread) exists in the coordinator, inherit the initialized sampler by
/// address-space copy, and _exit() without running coordinator-side cleanup.
DistResult RunDistributedSweeps(GridSampler& sampler, const Corpus& corpus,
                                const SweepPlan& plan,
                                const DistConfig& config);

/// Token count per grid block (row-major, num_doc_blocks × num_word_blocks)
/// — the weights the executor partitions and repartitions by. Exposed for
/// tests and the bench's predicted-speedup model.
std::vector<uint64_t> BlockTokenWeights(const Corpus& corpus,
                                        const SweepPlan& plan);

}  // namespace warplda

#endif  // WARPLDA_DIST_DIST_EXECUTOR_H_

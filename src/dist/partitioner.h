#ifndef WARPLDA_DIST_PARTITIONER_H_
#define WARPLDA_DIST_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/sweep_plan.h"
#include "corpus/corpus.h"

namespace warplda {

/// Load-balancing strategies for assigning weighted items (documents by
/// length, words by frequency) to P partitions — the Fig 4 study.
///
/// Word frequencies are Zipfian, so the naive strategies pay dearly: the
/// partition that draws the head words owns a disproportionate share of all
/// tokens (§5.3.2's load-balance concern, applied across machines).
enum class PartitionStrategy {
  /// Uniform random assignment (seeded): the baseline every parameter-server
  /// system gets by hashing ids.
  kStatic,
  /// Contiguous ranges split at equal prefix-sum targets — the same scheme
  /// SparseMatrix::ParallelFor uses to balance threads. Keeps items in order
  /// (cheap range metadata) but granularity is limited to whole items.
  kDynamic,
  /// Greedy LPT: heaviest item first onto the least-loaded partition.
  /// Near-optimal until a single item outweighs total/P, which no
  /// assignment can fix (the inherent bound visible in Fig 4 at large P).
  kGreedy,
};

/// Strategy name ("Static" / "Dynamic" / "Greedy"); identifier-safe, used as
/// gtest parameter labels and bench column headers.
std::string ToString(PartitionStrategy strategy);

/// Assigns each weighted item to a partition in [0, num_partitions).
/// Deterministic for a given (strategy, seed); only kStatic consumes the
/// seed. Requires num_partitions >= 1.
std::vector<uint32_t> PartitionByTokens(const std::vector<uint64_t>& weights,
                                        uint32_t num_partitions,
                                        PartitionStrategy strategy,
                                        uint64_t seed = 0x5EEDULL);

/// Imbalance index: max partition load / mean partition load - 1, i.e. 0 for
/// a perfect split and P·share-1 when one partition holds everything.
/// The metric behind Fig 4.
double ImbalanceIndex(const std::vector<uint64_t>& weights,
                      const std::vector<uint32_t>& assignment,
                      uint32_t num_partitions);

/// Builds a token-balanced SweepPlan for grid execution: documents are
/// partitioned by length into `num_doc_blocks`, words by corpus frequency
/// into `num_word_blocks`, each with `strategy`.
SweepPlan MakeSweepPlan(const Corpus& corpus, uint32_t num_doc_blocks,
                        uint32_t num_word_blocks,
                        PartitionStrategy strategy = PartitionStrategy::kGreedy,
                        uint64_t seed = 0x5EEDULL);

/// Elastic recovery: redistributes the items owned by dead partitions across
/// the `survivors`, greedy-LPT style — each orphaned item (heaviest first)
/// goes to the currently least-loaded survivor, with the survivors' existing
/// loads seeding the heap so a repartition after a worker death stays
/// balanced instead of dogpiling one survivor. Items already owned by a
/// survivor keep their owner (their caches and in-flight state stay valid).
/// `survivors` must be non-empty and name partitions only; items owned by a
/// partition absent from `survivors` are the ones reassigned. Deterministic:
/// ties break by survivor order.
std::vector<uint32_t> ReassignToSurvivors(
    const std::vector<uint64_t>& weights,
    const std::vector<uint32_t>& assignment,
    const std::vector<uint32_t>& survivors);

}  // namespace warplda

#endif  // WARPLDA_DIST_PARTITIONER_H_

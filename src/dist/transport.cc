#include "dist/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"
#include "util/checkpoint_io.h"
#include "util/crc32.h"

namespace warplda {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Channel-level frame types inside the kDistMessage payload.
constexpr uint32_t kCtlData = 1;
constexpr uint32_t kCtlAck = 2;
constexpr uint32_t kCtlNak = 3;
constexpr uint32_t kCtlPing = 4;

/// u32 ctl + u64 seq (+ u32 app type for data frames).
constexpr size_t kChannelHeaderBytes = sizeof(uint32_t) + sizeof(uint64_t);

/// Transport counters in the global registry, mirroring FrameChannel::Stats
/// so the fault-matrix tests can assert the envelope (bounded retransmits,
/// every injected corruption caught) from the obs seam.
struct TransportMetrics {
  obs::Counter* frames_sent;
  obs::Counter* retransmits;
  obs::Counter* crc_rejects;
  obs::Counter* dup_suppressed;
  obs::Counter* faults_injected;

  static const TransportMetrics& Get() {
    static const TransportMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      TransportMetrics tm;
      tm.frames_sent = reg.GetCounter("dist_frames_sent_total",
                                      "Data frames sent over dist channels");
      tm.retransmits = reg.GetCounter(
          "dist_retransmits_total",
          "Data frame retransmissions (timer expiry or peer NAK)");
      tm.crc_rejects = reg.GetCounter(
          "dist_crc_rejects_total",
          "Received frames dropped for a payload CRC mismatch");
      tm.dup_suppressed = reg.GetCounter(
          "dist_dup_frames_total",
          "Duplicate data frames suppressed (re-acked, not redelivered)");
      tm.faults_injected = reg.GetCounter(
          "dist_faults_injected_total",
          "Outbound faults injected by dist/fault.h");
      return tm;
    }();
    return m;
  }
};

}  // namespace

FrameChannel::FrameChannel(int fd, Options options)
    : options_(std::move(options)), fd_(fd), fault_(options_.fault) {
  ::fcntl(fd_, F_SETFL, ::fcntl(fd_, F_GETFL, 0) | O_NONBLOCK);
  if (::pipe(wake_pipe_) != 0) {
    wake_pipe_[0] = wake_pipe_[1] = -1;
  } else {
    ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
    ::fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);
  }
  const int64_t now = NowMs();
  last_rx_ms_ = now;
  last_tx_ms_ = now;
  io_thread_ = std::thread([this] { IoLoop(); });
}

FrameChannel::~FrameChannel() { Close(); }

void FrameChannel::Close() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closing_) {
      lock.unlock();
      if (io_thread_.joinable()) io_thread_.join();
      return;
    }
    closing_ = true;
  }
  if (wake_pipe_[1] >= 0) {
    const uint8_t b = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
  if (io_thread_.joinable()) io_thread_.join();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!dead_) MarkDeadLocked("channel closed");
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) ::close(wake_pipe_[i]);
    wake_pipe_[i] = -1;
  }
}

bool FrameChannel::Send(uint32_t type, std::vector<uint8_t> body) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (dead_ || closing_) return false;
    PayloadWriter payload;
    payload.Put(kCtlData);
    payload.Put(next_seq_);
    payload.Put(type);
    std::vector<uint8_t> bytes = payload.bytes();
    bytes.insert(bytes.end(), body.begin(), body.end());
    Inflight frame;
    frame.seq = next_seq_++;
    frame.wire = EncodeFrame(FrameKind::kDistMessage, bytes);
    inflight_.push_back(std::move(frame));
  }
  if (wake_pipe_[1] >= 0) {
    const uint8_t b = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
  return true;
}

FrameChannel::RecvStatus FrameChannel::Receive(Message* out,
                                               uint32_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  rx_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                  [&] { return !rx_queue_.empty() || dead_; });
  if (!rx_queue_.empty()) {
    *out = std::move(rx_queue_.front());
    rx_queue_.pop_front();
    return RecvStatus::kOk;
  }
  return dead_ ? RecvStatus::kClosed : RecvStatus::kTimeout;
}

bool FrameChannel::TryReceive(Message* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (rx_queue_.empty()) return false;
  *out = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  return true;
}

bool FrameChannel::alive() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return !dead_;
}

std::string FrameChannel::death_reason() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return death_reason_;
}

int64_t FrameChannel::ms_since_last_rx() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return NowMs() - last_rx_ms_;
}

bool FrameChannel::DrainSends(uint32_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  return drain_cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms),
      [&] { return dead_ || (inflight_.empty() && out_buffer_.empty()); });
}

FrameChannel::Stats FrameChannel::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return stats_;
}

void FrameChannel::MarkDeadLocked(const std::string& reason) {
  if (dead_) return;
  dead_ = true;
  death_reason_ = "channel to " + options_.peer + ": " + reason;
  rx_cv_.notify_all();
  drain_cv_.notify_all();
}

void FrameChannel::SendControlLocked(uint32_t ctl, uint64_t seq) {
  PayloadWriter payload;
  payload.Put(ctl);
  payload.Put(seq);
  const std::vector<uint8_t> wire =
      EncodeFrame(FrameKind::kDistMessage, payload.bytes());
  out_buffer_.insert(out_buffer_.end(), wire.begin(), wire.end());
}

bool FrameChannel::WriteWireLocked(const std::vector<uint8_t>& wire) {
  out_buffer_.insert(out_buffer_.end(), wire.begin(), wire.end());
  return true;
}

void FrameChannel::FlushWritesLocked() {
  size_t done = 0;
  while (done < out_buffer_.size()) {
    // MSG_NOSIGNAL: writing to a socket whose peer was SIGKILL'd must
    // surface as EPIPE (→ channel death), not take the process down.
    const ssize_t n = ::send(fd_, out_buffer_.data() + done,
                             out_buffer_.size() - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      MarkDeadLocked(Errno("write failed"));
      out_buffer_.clear();
      return;
    }
    done += static_cast<size_t>(n);
    stats_.bytes_sent += static_cast<uint64_t>(n);
  }
  if (done > 0) {
    out_buffer_.erase(out_buffer_.begin(),
                      out_buffer_.begin() + static_cast<ptrdiff_t>(done));
    last_tx_ms_ = NowMs();
    if (out_buffer_.empty() && inflight_.empty()) drain_cv_.notify_all();
  }
}

void FrameChannel::HandleFrame(const std::vector<uint8_t>& payload) {
  // Caller (IoLoop) holds mutex_ and has already validated the CRC.
  PayloadReader in(payload);
  uint32_t ctl = 0;
  uint64_t seq = 0;
  if (!in.Get(&ctl) || !in.Get(&seq)) {
    MarkDeadLocked("malformed channel header (framing lost)");
    return;
  }
  switch (ctl) {
    case kCtlData: {
      uint32_t app_type = 0;
      if (!in.Get(&app_type)) {
        MarkDeadLocked("malformed data frame (framing lost)");
        return;
      }
      if (seq == delivered_seq_ + 1) {
        Message msg;
        msg.type = app_type;
        msg.body.assign(payload.begin() + (kChannelHeaderBytes + 4),
                        payload.end());
        rx_queue_.push_back(std::move(msg));
        delivered_seq_ = seq;
        last_nak_cum_ = ~0ULL;  // progress: a new gap deserves a new NAK
        ++stats_.frames_received;
        rx_cv_.notify_all();
      } else if (seq <= delivered_seq_) {
        // Duplicate: the peer retransmitted because our ack was lost (or a
        // kDuplicate fault fired). Re-ack, never redeliver.
        ++stats_.dup_suppressed;
        if (obs::MetricsEnabled()) TransportMetrics::Get().dup_suppressed->Inc();
      } else {
        // Gap: something before this frame was dropped or CRC-rejected.
        // Renegotiate from the last in-order point; the peer resends
        // everything after it (go-back-N). NAK once per gap — the window
        // of frames behind the gap all arrive out of order and must not
        // each trigger a full-window retransmit.
        if (last_nak_cum_ != delivered_seq_) {
          last_nak_cum_ = delivered_seq_;
          ++stats_.naks_sent;
          SendControlLocked(kCtlNak, delivered_seq_);
        }
      }
      break;
    }
    case kCtlAck: {
      while (!inflight_.empty() && inflight_.front().seq <= seq) {
        inflight_.pop_front();
      }
      if (inflight_.empty() && out_buffer_.empty()) drain_cv_.notify_all();
      break;
    }
    case kCtlNak: {
      ++stats_.naks_received;
      while (!inflight_.empty() && inflight_.front().seq <= seq) {
        inflight_.pop_front();
      }
      // Everything after the peer's last in-order frame: resend now. The
      // NAK itself proves the peer is alive, so the retransmit budget
      // restarts — exhaustion must measure silence, not renegotiation.
      const int64_t now = NowMs();
      for (Inflight& f : inflight_) {
        if (f.sent_once) {
          f.next_deadline_ms = now;
          f.attempts = 1;
          f.backoff_ms = options_.rto_initial_ms;
        }
      }
      break;
    }
    case kCtlPing:
      break;  // last_rx_ms_ already refreshed by the read path
    default:
      MarkDeadLocked("unknown channel frame type " + std::to_string(ctl));
      break;
  }
}

void FrameChannel::IoLoop() {
  std::vector<uint8_t> read_buf(64 * 1024);
  while (true) {
    int64_t poll_deadline;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (closing_ || dead_) break;
      const int64_t now = NowMs();

      // Transmit pass over the inflight window, in sequence order.
      for (Inflight& f : inflight_) {
        if (!f.sent_once) {
          if (f.attempts == 0 && f.hold_until_ms == 0) {
            // First consideration: decide this frame's fault, once.
            const FaultAction action = fault_.Decide(f.seq);
            if (action != FaultAction::kNone) {
              ++stats_.faults_injected;
              if (obs::MetricsEnabled()) {
                TransportMetrics::Get().faults_injected->Inc();
              }
            }
            switch (action) {
              case FaultAction::kDrop:
                // Silently not sent; the retransmit timer recovers it.
                f.sent_once = true;
                f.attempts = 1;
                f.backoff_ms = options_.rto_initial_ms;
                f.next_deadline_ms = now + f.backoff_ms;
                continue;
              case FaultAction::kCorrupt: {
                // Flip payload bytes (past the frame header) in a sent
                // copy; the original stays intact for the retransmit the
                // receiver's NAK will trigger.
                std::vector<uint8_t> mutated = f.wire;
                fault_.CorruptPayload(
                    f.seq, mutated.data() + kFrameHeaderBytes,
                    mutated.size() - kFrameHeaderBytes);
                WriteWireLocked(mutated);
                break;
              }
              case FaultAction::kDuplicate:
                WriteWireLocked(f.wire);
                WriteWireLocked(f.wire);
                break;
              case FaultAction::kDelay:
                f.hold_until_ms = now + options_.fault.delay_ms;
                continue;  // sent when the hold expires
              case FaultAction::kNone:
                WriteWireLocked(f.wire);
                break;
            }
            f.sent_once = true;
            f.attempts = 1;
            f.backoff_ms = options_.rto_initial_ms;
            f.next_deadline_ms = now + f.backoff_ms;
            ++stats_.frames_sent;
            if (obs::MetricsEnabled()) TransportMetrics::Get().frames_sent->Inc();
          } else if (f.hold_until_ms != 0 && now >= f.hold_until_ms) {
            // Delayed frame: send clean now.
            WriteWireLocked(f.wire);
            f.sent_once = true;
            f.attempts = 1;
            f.backoff_ms = options_.rto_initial_ms;
            f.next_deadline_ms = now + f.backoff_ms;
            ++stats_.frames_sent;
            if (obs::MetricsEnabled()) TransportMetrics::Get().frames_sent->Inc();
          }
        } else if (now >= f.next_deadline_ms) {
          // Bounded exponential backoff; exhaustion declares the peer dead
          // (the executor's recovery path takes over from there).
          if (f.attempts > options_.max_retransmits) {
            MarkDeadLocked("retransmit limit (" +
                           std::to_string(options_.max_retransmits) +
                           ") exhausted for frame " + std::to_string(f.seq));
            break;
          }
          WriteWireLocked(f.wire);
          ++f.attempts;
          ++stats_.retransmits;
          if (obs::MetricsEnabled()) TransportMetrics::Get().retransmits->Inc();
          f.backoff_ms = std::min(f.backoff_ms * 2, options_.rto_max_ms);
          f.next_deadline_ms = now + f.backoff_ms;
        }
      }
      if (dead_) break;

      // Idle keepalive so a busy-computing peer still proves liveness.
      if (options_.keepalive_ms > 0 &&
          now - last_tx_ms_ >=
              static_cast<int64_t>(options_.keepalive_ms) &&
          out_buffer_.empty()) {
        SendControlLocked(kCtlPing, 0);
      }

      FlushWritesLocked();
      if (dead_) break;

      // Earliest future event bounds the poll timeout.
      poll_deadline = now + 100;
      for (const Inflight& f : inflight_) {
        if (!f.sent_once && f.hold_until_ms != 0) {
          poll_deadline = std::min(poll_deadline, f.hold_until_ms);
        } else if (f.sent_once) {
          poll_deadline = std::min(poll_deadline, f.next_deadline_ms);
        } else {
          poll_deadline = now;  // unsent frame: transmit immediately
        }
      }
      if (options_.keepalive_ms > 0) {
        poll_deadline =
            std::min(poll_deadline,
                     last_tx_ms_ + static_cast<int64_t>(options_.keepalive_ms));
      }
    }

    struct pollfd fds[2];
    fds[0].fd = fd_;
    fds[0].events = POLLIN;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!out_buffer_.empty()) fds[0].events |= POLLOUT;
    }
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    const int timeout =
        static_cast<int>(std::max<int64_t>(0, poll_deadline - NowMs()));
    const int rc = ::poll(fds, wake_pipe_[0] >= 0 ? 2 : 1, timeout);
    if (rc < 0 && errno != EINTR) {
      std::unique_lock<std::mutex> lock(mutex_);
      MarkDeadLocked(Errno("poll failed"));
      break;
    }
    if (wake_pipe_[0] >= 0) {
      uint8_t drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }

    // Read everything available, then parse complete frames.
    bool peer_eof = false;
    bool read_error = false;
    std::string read_error_text;
    std::vector<uint8_t> incoming;
    while (true) {
      const ssize_t n = ::read(fd_, read_buf.data(), read_buf.size());
      if (n > 0) {
        incoming.insert(incoming.end(), read_buf.begin(),
                        read_buf.begin() + n);
        continue;
      }
      if (n == 0) {
        peer_eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      read_error = true;
      read_error_text = Errno("read failed");
      break;
    }

    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!incoming.empty()) {
        stats_.bytes_received += incoming.size();
        last_rx_ms_ = NowMs();
        rx_buffer_.insert(rx_buffer_.end(), incoming.begin(), incoming.end());
      }
      // Parse complete frames out of the stream buffer. A malformed header
      // means framing is lost for good (only payload corruption is
      // survivable — the CRC covers it); tear the channel down.
      size_t cursor = 0;
      bool delivered_or_dup = false;
      const uint64_t delivered_before = delivered_seq_;
      const uint64_t dups_before = stats_.dup_suppressed;
      while (rx_buffer_.size() - cursor >= kFrameHeaderBytes && !dead_) {
        ParsedFrameHeader header;
        std::string header_error;
        if (!ParseFrameHeader(rx_buffer_.data() + cursor, &header,
                              &header_error)) {
          MarkDeadLocked("lost framing: " + header_error);
          break;
        }
        if (header.kind != FrameKind::kDistMessage ||
            header.payload_size > options_.max_payload_bytes) {
          MarkDeadLocked("lost framing: bad frame kind or oversized payload");
          break;
        }
        const size_t frame_size =
            kFrameHeaderBytes + static_cast<size_t>(header.payload_size);
        if (rx_buffer_.size() - cursor < frame_size) break;  // partial frame
        const uint8_t* payload_bytes =
            rx_buffer_.data() + cursor + kFrameHeaderBytes;
        const uint32_t crc =
            Crc32(payload_bytes, static_cast<size_t>(header.payload_size));
        if (crc != header.payload_crc) {
          // Reject-and-renegotiate: drop the frame, tell the peer where the
          // in-order stream ends so it retransmits from there.
          ++stats_.crc_rejects;
          if (obs::MetricsEnabled()) TransportMetrics::Get().crc_rejects->Inc();
          if (last_nak_cum_ != delivered_seq_) {
            last_nak_cum_ = delivered_seq_;
            ++stats_.naks_sent;
            SendControlLocked(kCtlNak, delivered_seq_);
          }
        } else {
          const std::vector<uint8_t> payload(
              payload_bytes, payload_bytes + header.payload_size);
          HandleFrame(payload);
        }
        cursor += frame_size;
      }
      if (cursor > 0) {
        rx_buffer_.erase(rx_buffer_.begin(),
                         rx_buffer_.begin() + static_cast<ptrdiff_t>(cursor));
      }
      delivered_or_dup = delivered_seq_ != delivered_before ||
                         stats_.dup_suppressed != dups_before;
      if (delivered_or_dup && !dead_) {
        // One cumulative ack per parse batch (covers re-acking duplicates).
        SendControlLocked(kCtlAck, delivered_seq_);
      }
      FlushWritesLocked();
      if (peer_eof && !dead_) {
        MarkDeadLocked("EOF from peer");
      } else if (read_error && !dead_) {
        MarkDeadLocked(read_error_text);
      }
      if (dead_) break;
    }
  }
  // Final wake for anyone blocked on a channel that died mid-wait.
  std::unique_lock<std::mutex> lock(mutex_);
  rx_cv_.notify_all();
  drain_cv_.notify_all();
}

// --------------------------------------------------------------------------
// Socket helpers.

bool MakeSocketPair(int fds[2], std::string* error) {
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    if (error != nullptr) *error = Errno("socketpair failed");
    return false;
  }
  return true;
}

int ListenLoopback(uint16_t* port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = Errno("socket failed");
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    if (error != nullptr) *error = Errno("bind/listen failed");
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    if (error != nullptr) *error = Errno("getsockname failed");
    ::close(fd);
    return -1;
  }
  *port = ntohs(addr.sin_port);
  return fd;
}

int AcceptWithTimeout(int listen_fd, uint32_t timeout_ms, std::string* error) {
  const int64_t deadline = NowMs() + timeout_ms;
  while (true) {
    struct pollfd pfd;
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int64_t remaining = deadline - NowMs();
    if (remaining <= 0) {
      if (error != nullptr) *error = "accept timed out";
      return -1;
    }
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = Errno("poll failed");
      return -1;
    }
    if (rc == 0) continue;  // loop re-checks the deadline
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      continue;  // transient — retry inside the deadline
    }
    if (error != nullptr) *error = Errno("accept failed");
    return -1;
  }
}

int ConnectLoopback(uint16_t port, uint32_t timeout_ms, std::string* error) {
  const int64_t deadline = NowMs() + timeout_ms;
  uint32_t backoff_ms = 5;  // bounded exponential backoff between attempts
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error != nullptr) *error = Errno("socket failed");
      return -1;
    }
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    ::close(fd);
    if (NowMs() + backoff_ms > deadline) {
      if (error != nullptr) *error = Errno("connect timed out");
      return -1;
    }
    struct timespec ts;
    ts.tv_sec = backoff_ms / 1000;
    ts.tv_nsec = static_cast<long>(backoff_ms % 1000) * 1000000L;
    ::nanosleep(&ts, nullptr);
    backoff_ms = std::min(backoff_ms * 2, 200u);
  }
}

}  // namespace warplda

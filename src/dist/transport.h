#ifndef WARPLDA_DIST_TRANSPORT_H_
#define WARPLDA_DIST_TRANSPORT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dist/fault.h"
#include "util/contracts.h"

namespace warplda {

/// Reliable, ordered message channel over one stream socket — the transport
/// behind the distributed grid executor (dist/dist_executor.h).
///
/// Wire format: every message is one util/checkpoint_io frame (magic,
/// version, endian tag, CRC-32 over the payload) of kind kDistMessage. The
/// frame payload opens with a channel header
///
///   u32 channel message type (data / ack / nak / ping)
///   u64 sequence number (data) or cumulative sequence (ack / nak)
///   u32 application message type (data frames only)
///
/// followed by the application body.
///
/// Robustness envelope (every edge the fault injector can poke):
///  * reliability — data frames carry consecutive sequence numbers and stay
///    buffered until cumulatively acked; a retransmit timer with bounded
///    exponential backoff (rto_initial_ms doubling to rto_max_ms,
///    max_retransmits attempts) resends unacked frames, go-back-N style;
///  * CRC reject-and-renegotiate — a frame whose payload fails the CRC is
///    dropped and answered with a NAK of the last in-order sequence, which
///    triggers immediate retransmission of everything after it;
///  * duplicate suppression — a data frame at or below the delivered
///    sequence is re-acked (the peer's retransmit means our ack was lost)
///    but never redelivered to the application;
///  * heartbeats — an idle sender emits ping frames every keepalive_ms, so
///    a receiver can distinguish "peer busy computing" (pings arriving)
///    from "peer dead" (silence + EOF);
///  * death detection — EOF, a write error (EPIPE after a SIGKILL'd peer),
///    a malformed header (framing lost), or retransmit exhaustion marks the
///    channel dead with a reason; senders/receivers observe it immediately.
///
/// Threading: one io thread per channel owns the socket (nonblocking, poll
/// driven). Send() enqueues and wakes it; Receive() blocks on the delivery
/// queue. Any thread may call Send/Receive; the io thread never calls user
/// code. All shared state is mutex-guarded (TSan-clean by construction).
class FrameChannel {
 public:
  struct Options {
    /// Stream-read allocation bound (no file size exists to validate
    /// against). Sized for a worst-case sweep checkpoint message.
    uint64_t max_payload_bytes = 1ull << 30;
    uint32_t rto_initial_ms = 40;   ///< first retransmit backoff
    uint32_t rto_max_ms = 1000;     ///< backoff ceiling
    uint32_t max_retransmits = 12;  ///< per frame; exhaustion = peer dead
    uint32_t keepalive_ms = 50;     ///< idle ping period; 0 disables
    /// Outbound fault injection (first transmission of data frames only).
    FaultSpec fault;
    std::string peer = "peer";  ///< label for errors and metrics
  };

  /// Transport counters, all monotonic. The fault-matrix tests assert the
  /// envelope from these: every injected fault shows up (crc_rejects,
  /// dup_suppressed, retransmits) and stays bounded.
  struct Stats {
    uint64_t frames_sent = 0;      ///< data frames handed to the socket
    uint64_t frames_received = 0;  ///< data frames delivered in order
    uint64_t bytes_sent = 0;       ///< wire bytes, all frame kinds
    uint64_t bytes_received = 0;
    uint64_t retransmits = 0;      ///< data frame re-sends (timer or NAK)
    uint64_t crc_rejects = 0;      ///< frames dropped for a bad payload CRC
    uint64_t dup_suppressed = 0;   ///< duplicate data frames re-acked
    uint64_t naks_sent = 0;
    uint64_t naks_received = 0;
    uint64_t faults_injected = 0;  ///< outbound faults the injector fired
  };

  struct Message {
    uint32_t type = 0;          ///< application message type
    std::vector<uint8_t> body;  ///< application payload
  };

  enum class RecvStatus { kOk, kTimeout, kClosed };

  /// Takes ownership of `fd` (a connected stream socket). The io thread
  /// starts immediately — in a forked-worker design, construct only after
  /// every fork() (fork from a multithreaded process is where sanitizers
  /// and POSIX stop making promises).
  FrameChannel(int fd, Options options);
  ~FrameChannel();

  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  /// Enqueues a data message. Returns false when the channel is dead (the
  /// message will never be delivered). Never blocks on the socket.
  bool Send(uint32_t type, std::vector<uint8_t> body);

  /// Blocks up to `timeout_ms` for the next in-order message. kClosed means
  /// dead AND drained — messages delivered before death are still returned.
  RecvStatus Receive(Message* out, uint32_t timeout_ms);

  /// Nonblocking Receive.
  bool TryReceive(Message* out);

  /// False once the peer is unreachable (EOF, write error, retransmit
  /// exhaustion, lost framing).
  bool alive() const;

  /// Why the channel died ("" while alive).
  std::string death_reason() const;

  /// Milliseconds since any frame (including pings) arrived — the
  /// heartbeat-timeout input for death detection.
  int64_t ms_since_last_rx() const;

  /// Blocks until every queued frame has been handed to the socket (not
  /// necessarily acked) or the channel dies. The shutdown path uses this so
  /// the final message is on the wire before the fd closes.
  bool DrainSends(uint32_t timeout_ms);

  Stats stats() const;

  /// Closes the socket and stops the io thread (idempotent). Queued but
  /// undelivered messages are dropped.
  void Close();

 private:
  struct Inflight {
    uint64_t seq = 0;
    std::vector<uint8_t> wire;   ///< encoded frame, ready to resend
    int64_t next_deadline_ms = 0;
    uint32_t attempts = 0;       ///< transmissions so far
    uint32_t backoff_ms = 0;
    bool sent_once = false;      ///< false until first transmission
    int64_t hold_until_ms = 0;   ///< kDelay fault: do not send before this
  };

  void IoLoop();
  void MarkDeadLocked(const std::string& reason);
  void HandleFrame(const std::vector<uint8_t>& payload);
  void SendControlLocked(uint32_t ctl, uint64_t seq);
  void FlushWritesLocked();
  bool WriteWireLocked(const std::vector<uint8_t>& wire);

  /// Fixed at construction; Close() only tears down the descriptors.
  WARP_IMMUTABLE_AFTER(FrameChannel) Options options_;
  WARP_IMMUTABLE_AFTER(FrameChannel, Close) int fd_ = -1;
  WARP_IMMUTABLE_AFTER(FrameChannel, Close) int wake_pipe_[2] = {-1, -1};

  mutable std::mutex mutex_;
  std::condition_variable rx_cv_;
  std::condition_variable drain_cv_;
  bool dead_ = false;
  bool closing_ = false;
  std::string death_reason_;

  // TX state (io thread + Send under mutex_).
  uint64_t next_seq_ = 1;
  std::deque<Inflight> inflight_;  ///< unacked, seq ascending
  std::vector<uint8_t> out_buffer_;  ///< partially written wire bytes
  int64_t last_tx_ms_ = 0;

  // RX state.
  std::vector<uint8_t> rx_buffer_;  ///< unparsed stream bytes
  uint64_t delivered_seq_ = 0;      ///< highest in-order data seq delivered
  /// Last cumulative seq we NAKed, or ~0 if delivery has advanced since.
  /// One gap produces one NAK — re-NAKing on every out-of-order arrival
  /// would retransmit the whole window per arrival (a NAK storm).
  uint64_t last_nak_cum_ = ~0ULL;
  std::deque<Message> rx_queue_;
  int64_t last_rx_ms_ = 0;

  FaultInjector fault_;
  Stats stats_;
  WARP_IMMUTABLE_AFTER(FrameChannel) std::thread io_thread_;
};

/// Socket helpers for the executor (all loopback/local, all with the
/// timeout + EINTR discipline the robustness envelope requires).

/// A connected AF_UNIX socketpair (SOCK_STREAM); returns false + errno text
/// on failure. The default transport between a coordinator and its forked
/// workers.
bool MakeSocketPair(int fds[2], std::string* error);

/// Loopback TCP with real connect/accept edges, for exercising the
/// timeout/retry envelope over an actual network stack: listener on
/// 127.0.0.1:ephemeral (returns the port), accept with a deadline, connect
/// with a deadline + bounded exponential-backoff retry.
int ListenLoopback(uint16_t* port, std::string* error);
int AcceptWithTimeout(int listen_fd, uint32_t timeout_ms, std::string* error);
int ConnectLoopback(uint16_t port, uint32_t timeout_ms, std::string* error);

}  // namespace warplda

#endif  // WARPLDA_DIST_TRANSPORT_H_

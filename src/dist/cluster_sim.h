#ifndef WARPLDA_DIST_CLUSTER_SIM_H_
#define WARPLDA_DIST_CLUSTER_SIM_H_

#include <cstdint>
#include <vector>

#include "core/sweep_plan.h"
#include "corpus/corpus.h"
#include "dist/partitioner.h"

namespace warplda {

class ParallelExecutor;

/// Parameters of the simulated cluster (Fig 6 / Fig 9b methodology).
///
/// The compute terms come from measured single-machine throughput; the
/// communication terms model a commodity 10 GbE-class fabric. All costs are
/// per iteration = one word phase + one doc phase.
struct ClusterConfig {
  uint32_t num_workers = 1;
  /// Sampling cost per token per phase (a full iteration visits every token
  /// twice). Default ≈ 20 Mtok/s/phase, a mid-range single-core figure.
  double per_token_ns = 50.0;
  /// Bytes exchanged per remote token per phase (token topic state y_dn;
  /// fig6 uses 4·(1+M) for the assignment plus M proposals).
  double bytes_per_token = 8.0;
  double bandwidth_gbytes_per_s = 10.0;
  /// Per-peer message setup cost, paid once per remote peer per phase.
  double latency_us = 1.0;
  /// Pipelining depth: how many blocks of a phase overlap communication with
  /// compute. 1 = fully serial (compute then transfer); num_workers = the
  /// paper's fully overlapped schedule that hides the cheaper of the two.
  uint32_t overlap_blocks = 1;
  /// How docs / words are assigned to workers (Fig 4's strategies).
  PartitionStrategy doc_strategy = PartitionStrategy::kGreedy;
  PartitionStrategy word_strategy = PartitionStrategy::kGreedy;
  uint64_t partition_seed = 0x5EEDULL;
};

/// Wall-clock breakdown of one phase across the cluster (critical path over
/// workers: compute, communication, and their overlap-adjusted combination).
struct PhaseTiming {
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;
  double wall_seconds = 0.0;
};

/// One simulated training iteration: word phase then doc phase.
struct IterationTiming {
  PhaseTiming word_phase;
  PhaseTiming doc_phase;
  double wall_seconds = 0.0;
};

/// Simulates WarpLDA on a P-worker cluster over a real corpus.
///
/// Construction partitions the corpus into a P×P token grid (worker i owns
/// doc partition i; word slices are partitioned the same way), using real
/// token counts — so the imbalance the timing model sees is the imbalance a
/// deployment would see. `SimulateIteration()` prices one iteration with the
/// analytic model; `RunSweep()` goes further and executes a *real* WarpLDA
/// sweep block-by-block through the GridSampler interface, so simulated
/// convergence curves (Fig 6) are measured on actual samples, not a model.
class ClusterSim {
 public:
  ClusterSim(const Corpus& corpus, const ClusterConfig& config);

  const ClusterConfig& config() const { return config_; }
  /// The (doc × word) grid plan the simulator partitions work by.
  const SweepPlan& plan() const { return plan_; }

  /// Token count of grid block (doc_block, word_block); the P×P grid sums to
  /// the corpus token count.
  uint64_t PartitionTokens(uint32_t doc_block, uint32_t word_block) const {
    return grid_[static_cast<size_t>(doc_block) * workers_ + word_block];
  }

  /// Imbalance index of the document partition (doc-phase load skew).
  double DocImbalance() const;
  /// Imbalance index of the word partition (word-phase load skew).
  double WordImbalance() const;

  /// Prices one iteration with the analytic wall-clock model at the
  /// configured per-token cost.
  IterationTiming SimulateIteration() const;

  /// Serial time / simulated parallel time per iteration; <= num_workers by
  /// construction (the busiest worker carries at least the mean load).
  double SimulatedSpeedup() const;

  /// Executes one real training sweep of `sampler` block-by-block over this
  /// cluster's grid plan (worker i holding word slice (i+round) mod P, as a
  /// rotation schedule would), then returns the iteration priced by the
  /// analytic model at the *configured* per-token cost — single-machine
  /// block execution pays simulation-only overhead, so its own wall time is
  /// not a fair compute cost (measure the fused Iterate() path for that, as
  /// fig6 does). The samples produced are identical to a serial Iterate() —
  /// grid execution is exact, see core/sweep_plan.h.
  ///
  /// When `executor` is non-null the stage's blocks run concurrently on its
  /// thread pool (the executor's wavefront order is this same rotation
  /// schedule); the samples do not change, only the wall-clock of the call.
  IterationTiming RunSweep(GridSampler& sampler,
                           ParallelExecutor* executor = nullptr) const;

 private:
  IterationTiming Model(double per_token_ns) const;

  const Corpus* corpus_;
  ClusterConfig config_;
  uint32_t workers_;
  SweepPlan plan_;
  std::vector<uint64_t> grid_;       // P×P token counts, doc-major
  std::vector<uint64_t> doc_load_;   // per doc block: Σ_j grid(i, j)
  std::vector<uint64_t> word_load_;  // per word block: Σ_i grid(i, j)
  std::vector<uint64_t> doc_weights_;
  std::vector<uint64_t> word_weights_;
};

}  // namespace warplda

#endif  // WARPLDA_DIST_CLUSTER_SIM_H_

#ifndef WARPLDA_DIST_FAULT_H_
#define WARPLDA_DIST_FAULT_H_

#include <cstdint>

#include "util/rng.h"

namespace warplda {

/// Deterministic fault injection for the distributed transport
/// (dist/transport.h). Every failure path the robustness envelope claims to
/// handle — dropped, delayed, duplicated, and corrupted frames, plus a
/// worker killed at a chosen barrier — becomes a *testable code path*:
/// faults are decided by hashing (seed, frame sequence number), never by
/// wall-clock or real randomness, so a given seed injects the identical
/// fault schedule on every run, under every sanitizer, at any machine speed.
///
/// Injection discipline (what keeps faulted runs convergent):
///  * Faults apply to a frame's FIRST transmission only. Retransmissions go
///    out clean, so a frame suffers at most one fault and the channel's
///    bounded-retry envelope always makes progress — the test matrix can
///    assert both "the fault happened" (stats) and "the sweep still
///    finished bit-identical".
///  * Corruption flips payload bytes, never header bytes. On a TCP stream a
///    corrupted length field would desynchronize framing for the rest of
///    the connection — in reality the kernel's checksum discards such a
///    segment, so payload corruption (what the frame CRC exists to catch)
///    is the fault that actually reaches userspace.
///  * Control frames (acks, naks, heartbeats) are exempt; data frames carry
///    the protocol, and faulting only them keeps every injected fault
///    attributable to one observable message.
struct FaultSpec {
  uint64_t seed = 0;          ///< 0 disables injection entirely
  double drop = 0.0;          ///< P(first transmission silently dropped)
  double corrupt = 0.0;       ///< P(payload bytes flipped → CRC reject)
  double duplicate = 0.0;     ///< P(frame sent twice back-to-back)
  double delay = 0.0;         ///< P(transmission held back delay_ms)
  uint32_t delay_ms = 20;     ///< hold-back for delayed frames
  uint32_t max_faults = 0xFFFFFFFFu;  ///< total injection budget

  bool enabled() const {
    return seed != 0 &&
           (drop > 0.0 || corrupt > 0.0 || duplicate > 0.0 || delay > 0.0);
  }
};

enum class FaultAction : uint8_t {
  kNone = 0,
  kDrop,
  kCorrupt,
  kDuplicate,
  kDelay,
};

/// Per-channel-direction injector. Decide(seq) is a pure function of
/// (spec.seed, seq) except for the max_faults budget, which is consumed in
/// seq order on the single io thread that owns the channel.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec) : spec_(spec) {}

  const FaultSpec& spec() const { return spec_; }

  /// The fault (if any) to inject on the first transmission of frame `seq`.
  /// Thresholded slices of one uniform draw per frame: the same seed always
  /// yields the same schedule, independent of timing.
  FaultAction Decide(uint64_t seq) {
    if (!spec_.enabled() || faults_used_ >= spec_.max_faults) {
      return FaultAction::kNone;
    }
    // SplitMix64 over the (seed, seq) pair → uniform in [0, 1).
    const uint64_t h =
        SplitMix64(spec_.seed ^ SplitMix64(seq * 0x9E3779B97F4A7C15ULL + 1));
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    double edge = spec_.drop;
    FaultAction action = FaultAction::kNone;
    if (u < edge) {
      action = FaultAction::kDrop;
    } else if (u < (edge += spec_.corrupt)) {
      action = FaultAction::kCorrupt;
    } else if (u < (edge += spec_.duplicate)) {
      action = FaultAction::kDuplicate;
    } else if (u < (edge += spec_.delay)) {
      action = FaultAction::kDelay;
    }
    if (action != FaultAction::kNone) ++faults_used_;
    return action;
  }

  /// Deterministic payload mutation for kCorrupt: flips a few bytes chosen
  /// by the same (seed, seq) hash. Guaranteed to change at least one bit of
  /// a non-empty payload, so the frame CRC must catch it.
  void CorruptPayload(uint64_t seq, uint8_t* payload, uint64_t size) const {
    if (size == 0) return;
    uint64_t h = SplitMix64(spec_.seed ^ SplitMix64(seq ^ 0xC0DEC0DEC0DEC0DEULL));
    const uint32_t flips = 1 + static_cast<uint32_t>(h % 3);
    for (uint32_t i = 0; i < flips; ++i) {
      h = SplitMix64(h);
      payload[h % size] ^= static_cast<uint8_t>(0x80 | (h >> 56));
    }
  }

  uint32_t faults_used() const { return faults_used_; }

 private:
  FaultSpec spec_;
  uint32_t faults_used_ = 0;
};

}  // namespace warplda

#endif  // WARPLDA_DIST_FAULT_H_

#include "corpus/uci.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace warplda {
namespace uci {

namespace {
bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}
}  // namespace

bool ReadDocword(const std::string& path, Corpus* corpus, std::string* error) {
  std::ifstream in(path);
  if (!in) return Fail(error, "cannot open " + path);

  uint64_t d_count = 0;
  uint64_t w_count = 0;
  uint64_t nnz = 0;
  if (!(in >> d_count >> w_count >> nnz)) {
    return Fail(error, path + ": malformed header");
  }

  // Documents may appear out of order in the file; bucket tokens by doc.
  std::vector<std::vector<WordId>> docs(d_count);
  for (uint64_t i = 0; i < nnz; ++i) {
    uint64_t doc_id = 0;
    uint64_t word_id = 0;
    int64_t count = 0;
    if (!(in >> doc_id >> word_id >> count)) {
      return Fail(error, path + ": truncated entry list");
    }
    if (doc_id < 1 || doc_id > d_count) {
      return Fail(error, path + ": doc id out of range");
    }
    if (word_id < 1 || word_id > w_count) {
      return Fail(error, path + ": word id out of range");
    }
    if (count <= 0) return Fail(error, path + ": non-positive count");
    auto& doc = docs[doc_id - 1];
    doc.insert(doc.end(), static_cast<size_t>(count),
               static_cast<WordId>(word_id - 1));
  }

  CorpusBuilder builder;
  builder.set_num_words(static_cast<WordId>(w_count));
  for (auto& doc : docs) builder.AddDocument(doc);
  *corpus = builder.Build();
  return true;
}

bool ReadVocab(const std::string& path, Vocabulary* vocab,
               std::string* error) {
  std::ifstream in(path);
  if (!in) return Fail(error, "cannot open " + path);
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
      line.pop_back();
    }
    if (!line.empty()) vocab->GetOrAdd(line);
  }
  return true;
}

bool WriteDocword(const Corpus& corpus, const std::string& path,
                  std::string* error) {
  std::ofstream out(path);
  if (!out) return Fail(error, "cannot open " + path + " for writing");

  // First pass: collapse per-document tokens into (word, count) pairs.
  uint64_t nnz = 0;
  std::vector<std::map<WordId, uint32_t>> bags(corpus.num_docs());
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    for (WordId w : corpus.doc_tokens(d)) ++bags[d][w];
    nnz += bags[d].size();
  }

  out << corpus.num_docs() << "\n"
      << corpus.num_words() << "\n"
      << nnz << "\n";
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    for (const auto& [w, count] : bags[d]) {
      out << (d + 1) << ' ' << (w + 1) << ' ' << count << "\n";
    }
  }
  return out.good() || Fail(error, "write error on " + path);
}

bool WriteVocab(const Vocabulary& vocab, const std::string& path,
                std::string* error) {
  std::ofstream out(path);
  if (!out) return Fail(error, "cannot open " + path + " for writing");
  for (WordId i = 0; i < vocab.size(); ++i) out << vocab.word(i) << "\n";
  return out.good() || Fail(error, "write error on " + path);
}

}  // namespace uci
}  // namespace warplda

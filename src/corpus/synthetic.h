#ifndef WARPLDA_CORPUS_SYNTHETIC_H_
#define WARPLDA_CORPUS_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/corpus.h"

namespace warplda {

/// Parameters for generating a corpus from the LDA generative process
/// (paper §2.1) with Zipfian topic-word distributions.
///
/// The defaults produce a small corpus suitable for unit tests; the dataset
/// shape factories below mimic the paper's Table 3 datasets at reduced scale.
struct SyntheticConfig {
  uint32_t num_docs = 1000;
  uint32_t vocab_size = 2000;
  uint32_t num_topics = 20;      ///< true topics used by the generator
  double mean_doc_length = 64;   ///< documents get ~Poisson(mean) tokens
  double alpha = 0.1;            ///< Dirichlet prior on doc-topic mixtures
  double word_zipf_skew = 1.05;  ///< skew of each topic's word distribution
  uint64_t seed = 42;
};

/// A generated corpus plus its ground truth, used by recovery tests.
struct SyntheticCorpus {
  Corpus corpus;
  /// Topic that generated each token, document-major (parallel to corpus).
  std::vector<TopicId> true_topics;
  /// Per-topic word ranking: topic_words[k][r] is topic k's r-th most
  /// probable word (Zipf rank r).
  std::vector<std::vector<WordId>> TopWordsPerTopic(uint32_t top_n) const;
  std::vector<std::vector<WordId>> topic_top_words;
};

/// Draws a corpus from the LDA generative process: θ_d ~ Dir(α),
/// z ~ Mult(θ_d), w ~ Mult(φ_z) where φ_k is a Zipf distribution over a
/// topic-specific permutation of the vocabulary.
SyntheticCorpus GenerateLdaCorpus(const SyntheticConfig& config);

/// Draws a topic-free corpus whose word frequencies follow a Zipf law with
/// exponent `skew`. Used by the partitioning (Fig 4) and cache studies where
/// only the frequency profile matters.
Corpus GenerateZipfCorpus(uint32_t num_docs, uint32_t vocab_size,
                          double mean_doc_length, double skew, uint64_t seed);

/// Dataset-shape factories: the paper's Table 3 corpora with all dimensions
/// multiplied by `scale` in [0,1] (vocabulary shrinks with sqrt(scale) so
/// documents do not become degenerate at tiny scales).
SyntheticConfig NYTimesShape(double scale);
SyntheticConfig PubMedShape(double scale);
SyntheticConfig ClueWebShape(double scale);

/// Human-readable Table 3 style row: "D=… T=… V=… T/D=…".
std::string DescribeCorpus(const Corpus& corpus);

}  // namespace warplda

#endif  // WARPLDA_CORPUS_SYNTHETIC_H_

#include "corpus/corpus.h"

#include <algorithm>
#include <cassert>

namespace warplda {

DocId Corpus::token_doc(TokenIdx t) const {
  auto it = std::upper_bound(doc_offsets_.begin(), doc_offsets_.end(), t);
  return static_cast<DocId>(it - doc_offsets_.begin() - 1);
}

void CorpusBuilder::AddDocument(std::span<const WordId> words) {
  for (WordId w : words) {
    tokens_.push_back(w);
    if (w >= num_words_) num_words_ = w + 1;
  }
  doc_offsets_.push_back(tokens_.size());
}

Corpus CorpusBuilder::Build() {
  Corpus c;
  c.num_words_ = num_words_;
  c.doc_offsets_ = std::move(doc_offsets_);
  c.tokens_ = std::move(tokens_);

  const TokenIdx t_count = c.tokens_.size();
  const WordId v = c.num_words_;

  // Counting sort of token positions by word id. Because we scan positions in
  // ascending (document-major) order, each word's bucket comes out sorted by
  // document id, which is exactly the CSC ordering the paper requires.
  c.word_offsets_.assign(v + 1, 0);
  for (WordId w : c.tokens_) ++c.word_offsets_[w + 1];
  for (WordId w = 0; w < v; ++w) c.word_offsets_[w + 1] += c.word_offsets_[w];

  c.word_index_.resize(t_count);
  c.word_major_rank_.resize(t_count);
  std::vector<TokenIdx> cursor(c.word_offsets_.begin(),
                               c.word_offsets_.end() - 1);
  for (TokenIdx t = 0; t < t_count; ++t) {
    TokenIdx rank = cursor[c.tokens_[t]]++;
    c.word_index_[rank] = t;
    c.word_major_rank_[t] = rank;
  }

  // Reset the builder for reuse.
  num_words_ = 0;
  doc_offsets_ = {0};
  tokens_.clear();
  return c;
}

}  // namespace warplda

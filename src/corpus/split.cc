#include "corpus/split.h"

#include <algorithm>

#include "util/rng.h"

namespace warplda {

CorpusSplit SplitByDocument(const Corpus& corpus, double heldout_fraction,
                            uint64_t seed) {
  Rng rng(seed);
  CorpusSplit split;
  CorpusBuilder train_builder;
  CorpusBuilder heldout_builder;
  train_builder.set_num_words(corpus.num_words());
  heldout_builder.set_num_words(corpus.num_words());
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    auto words = corpus.doc_tokens(d);
    std::vector<WordId> doc(words.begin(), words.end());
    if (rng.NextBernoulli(heldout_fraction)) {
      heldout_builder.AddDocument(doc);
      split.heldout_doc_ids.push_back(d);
    } else {
      train_builder.AddDocument(doc);
      split.train_doc_ids.push_back(d);
    }
  }
  split.train = train_builder.Build();
  split.heldout = heldout_builder.Build();
  return split;
}

CorpusSplit SplitWithinDocuments(const Corpus& corpus,
                                 double heldout_fraction, uint64_t seed) {
  Rng rng(seed);
  CorpusSplit split;
  CorpusBuilder train_builder;
  CorpusBuilder heldout_builder;
  train_builder.set_num_words(corpus.num_words());
  heldout_builder.set_num_words(corpus.num_words());
  std::vector<WordId> train_doc;
  std::vector<WordId> heldout_doc;
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    auto words = corpus.doc_tokens(d);
    train_doc.clear();
    heldout_doc.clear();
    for (WordId w : words) {
      (rng.NextBernoulli(heldout_fraction) ? heldout_doc : train_doc)
          .push_back(w);
    }
    // Guarantee at least one held-out token for docs with >= 2 tokens, and
    // never strip a document entirely of training tokens.
    if (words.size() >= 2 && heldout_doc.empty()) {
      heldout_doc.push_back(train_doc.back());
      train_doc.pop_back();
    }
    if (train_doc.empty() && !heldout_doc.empty()) {
      train_doc.push_back(heldout_doc.back());
      heldout_doc.pop_back();
    }
    train_builder.AddDocument(train_doc);
    heldout_builder.AddDocument(heldout_doc);
    split.train_doc_ids.push_back(d);
    split.heldout_doc_ids.push_back(d);
  }
  split.train = train_builder.Build();
  split.heldout = heldout_builder.Build();
  return split;
}

FilteredCorpus FilterVocabulary(const Corpus& corpus,
                                const VocabFilter& filter) {
  // Document frequency per word: count each word once per document via the
  // sorted word-major index (occurrences of a word are sorted by position,
  // hence by document).
  std::vector<uint32_t> doc_freq(corpus.num_words(), 0);
  for (WordId w = 0; w < corpus.num_words(); ++w) {
    DocId prev = 0;
    bool first = true;
    for (TokenIdx t : corpus.word_tokens(w)) {
      DocId d = corpus.token_doc(t);
      if (first || d != prev) ++doc_freq[w];
      prev = d;
      first = false;
    }
  }

  FilteredCorpus result;
  result.old_to_new.assign(corpus.num_words(), FilteredCorpus::kDroppedWord);
  const double max_docs =
      filter.max_document_fraction * corpus.num_docs();
  for (WordId w = 0; w < corpus.num_words(); ++w) {
    if (doc_freq[w] >= filter.min_document_frequency &&
        static_cast<double>(doc_freq[w]) <= max_docs) {
      result.old_to_new[w] = static_cast<WordId>(result.new_to_old.size());
      result.new_to_old.push_back(w);
    }
  }

  CorpusBuilder builder;
  builder.set_num_words(static_cast<WordId>(result.new_to_old.size()));
  std::vector<WordId> doc;
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    doc.clear();
    for (WordId w : corpus.doc_tokens(d)) {
      WordId remapped = result.old_to_new[w];
      if (remapped != FilteredCorpus::kDroppedWord) doc.push_back(remapped);
    }
    builder.AddDocument(doc);
  }
  result.corpus = builder.Build();
  return result;
}

}  // namespace warplda

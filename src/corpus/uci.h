#ifndef WARPLDA_CORPUS_UCI_H_
#define WARPLDA_CORPUS_UCI_H_

#include <string>

#include "corpus/corpus.h"
#include "corpus/vocabulary.h"

namespace warplda {

/// Reader/writer for the UCI machine-learning-repository bag-of-words format
/// used by the paper's NYTimes and PubMed datasets (§6.1).
///
/// docword file layout (1-based ids):
///   D
///   W
///   NNZ
///   docID wordID count      (NNZ such lines)
/// vocab file layout: one word per line, line i+1 is word id i.
namespace uci {

/// Parses a docword file. Returns false (and fills *error) on malformed
/// input: bad header, ids out of range, or non-positive counts.
/// Entries may arrive in any order; documents come out ordered by id.
bool ReadDocword(const std::string& path, Corpus* corpus, std::string* error);

/// Parses a vocab file (one word per line).
bool ReadVocab(const std::string& path, Vocabulary* vocab, std::string* error);

/// Writes a corpus in docword format (token multiplicities collapsed into
/// counts). Returns false on I/O failure.
bool WriteDocword(const Corpus& corpus, const std::string& path,
                  std::string* error);

/// Writes a vocabulary, one word per line.
bool WriteVocab(const Vocabulary& vocab, const std::string& path,
                std::string* error);

}  // namespace uci
}  // namespace warplda

#endif  // WARPLDA_CORPUS_UCI_H_

#ifndef WARPLDA_CORPUS_VOCABULARY_H_
#define WARPLDA_CORPUS_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "corpus/corpus.h"

namespace warplda {

/// Bidirectional word <-> id mapping.
///
/// Ids are assigned densely in insertion order, so a Vocabulary built while
/// tokenizing matches the word ids of the corpus produced alongside it.
class Vocabulary {
 public:
  /// Returns the id of `word`, inserting it if new.
  WordId GetOrAdd(std::string_view word);

  /// Returns the id of `word`, or kNotFound if absent.
  static constexpr WordId kNotFound = 0xFFFFFFFFu;
  WordId Find(std::string_view word) const;

  /// Returns the word with the given id. Requires id < size().
  const std::string& word(WordId id) const { return words_[id]; }

  /// Number of distinct words.
  WordId size() const { return static_cast<WordId>(words_.size()); }

 private:
  std::unordered_map<std::string, WordId> index_;
  std::vector<std::string> words_;
};

}  // namespace warplda

#endif  // WARPLDA_CORPUS_VOCABULARY_H_

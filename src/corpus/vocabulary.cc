#include "corpus/vocabulary.h"

namespace warplda {

WordId Vocabulary::GetOrAdd(std::string_view word) {
  auto it = index_.find(std::string(word));
  if (it != index_.end()) return it->second;
  WordId id = static_cast<WordId>(words_.size());
  words_.emplace_back(word);
  index_.emplace(words_.back(), id);
  return id;
}

WordId Vocabulary::Find(std::string_view word) const {
  auto it = index_.find(std::string(word));
  return it == index_.end() ? kNotFound : it->second;
}

}  // namespace warplda

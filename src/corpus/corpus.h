#ifndef WARPLDA_CORPUS_CORPUS_H_
#define WARPLDA_CORPUS_CORPUS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace warplda {

using DocId = uint32_t;
using WordId = uint32_t;
using TopicId = uint32_t;
using TokenIdx = uint64_t;

/// Immutable bag-of-words corpus with both orientations precomputed.
///
/// Tokens are stored document-major (CSR: all tokens of doc 0, then doc 1, …).
/// A word-major index (CSC view) maps every word to the document-major
/// positions of its occurrences, sorted by document id — the layout WarpLDA's
/// word phase requires (paper §5.2: column entries sorted by row id so
/// indirect accesses fully utilize cache lines).
///
/// Construct via CorpusBuilder, the UCI reader, or the synthetic generators.
class Corpus {
 public:
  Corpus() = default;

  /// Number of documents D.
  DocId num_docs() const { return static_cast<DocId>(doc_offsets_.size() - 1); }

  /// Vocabulary size V (max word id + 1 as declared at build time).
  WordId num_words() const { return num_words_; }

  /// Total token count T.
  TokenIdx num_tokens() const { return tokens_.size(); }

  /// Length L_d of document d.
  uint32_t doc_length(DocId d) const {
    return static_cast<uint32_t>(doc_offsets_[d + 1] - doc_offsets_[d]);
  }

  /// Term frequency L_w of word w (total occurrences in the corpus).
  uint32_t word_frequency(WordId w) const {
    return static_cast<uint32_t>(word_offsets_[w + 1] - word_offsets_[w]);
  }

  /// Word ids of document d's tokens, in document-major order.
  std::span<const WordId> doc_tokens(DocId d) const {
    return {tokens_.data() + doc_offsets_[d], doc_length(d)};
  }

  /// Document-major global positions of all occurrences of word w,
  /// sorted ascending (hence sorted by document id).
  std::span<const TokenIdx> word_tokens(WordId w) const {
    return {word_index_.data() + word_offsets_[w], word_frequency(w)};
  }

  /// Word id of the token at document-major position t.
  WordId token_word(TokenIdx t) const { return tokens_[t]; }

  /// Document id owning document-major position t (O(log D) binary search;
  /// use doc-major iteration on hot paths instead).
  DocId token_doc(TokenIdx t) const;

  /// Rank of document-major position t within the word-major ordering, i.e.
  /// the inverse permutation of word_tokens concatenation. WarpLDA keeps its
  /// per-token state word-major and uses this to walk it document-by-document.
  TokenIdx word_major_rank(TokenIdx t) const { return word_major_rank_[t]; }

  /// Offset of word w's block within the word-major ordering.
  TokenIdx word_major_offset(WordId w) const { return word_offsets_[w]; }

  /// First document-major token position of document d.
  TokenIdx doc_offset(DocId d) const { return doc_offsets_[d]; }

  /// Mean document length T/D.
  double mean_doc_length() const {
    return num_docs() == 0
               ? 0.0
               : static_cast<double>(num_tokens()) / num_docs();
  }

 private:
  friend class CorpusBuilder;

  WordId num_words_ = 0;
  std::vector<TokenIdx> doc_offsets_{0};  // D+1
  std::vector<WordId> tokens_;            // T, document-major
  std::vector<TokenIdx> word_offsets_;    // V+1
  std::vector<TokenIdx> word_index_;      // T, word-major -> doc-major pos
  std::vector<TokenIdx> word_major_rank_;  // T, doc-major pos -> word-major rank
};

/// Incremental builder: feed documents as word-id sequences, then Build().
class CorpusBuilder {
 public:
  /// Declares the vocabulary size. Word ids in documents must be < V.
  /// If never called, V = max word id + 1 observed.
  void set_num_words(WordId v) { num_words_ = v; }

  /// Appends one document. Empty documents are allowed (they hold no tokens
  /// but keep document ids aligned with external metadata).
  void AddDocument(std::span<const WordId> words);
  void AddDocument(const std::vector<WordId>& words) {
    AddDocument(std::span<const WordId>(words));
  }

  /// Finalizes the corpus: builds the word-major index and inverse ranks.
  /// The builder is left empty and reusable.
  Corpus Build();

 private:
  WordId num_words_ = 0;
  std::vector<TokenIdx> doc_offsets_{0};
  std::vector<WordId> tokens_;
};

}  // namespace warplda

#endif  // WARPLDA_CORPUS_CORPUS_H_

#ifndef WARPLDA_CORPUS_TOKENIZER_H_
#define WARPLDA_CORPUS_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "corpus/corpus.h"
#include "corpus/vocabulary.h"

namespace warplda {

/// Text preprocessing pipeline matching the paper's ClueWeb treatment (§6.1):
/// strip everything except alphanumerics, lowercase, split on whitespace,
/// drop stop words, and optionally drop tokens shorter than a minimum length.
class Tokenizer {
 public:
  Tokenizer();

  /// Replaces the default English stop-word list.
  void set_stop_words(const std::vector<std::string>& words);

  /// Minimum token length to keep (default 2).
  void set_min_token_length(size_t n) { min_token_length_ = n; }

  /// Tokenizes one document: returns normalized, stop-word-filtered terms.
  std::vector<std::string> Tokenize(std::string_view text) const;

  /// Tokenizes and interns: appends the document's word ids (growing `vocab`)
  /// and returns them.
  std::vector<WordId> TokenizeToIds(std::string_view text,
                                    Vocabulary& vocab) const;

 private:
  bool IsStopWord(const std::string& token) const {
    return stop_words_.count(token) > 0;
  }

  std::unordered_set<std::string> stop_words_;
  size_t min_token_length_ = 2;
};

/// Builds a corpus and vocabulary from raw document texts in one call.
struct TokenizedCorpus {
  Corpus corpus;
  Vocabulary vocabulary;
};
TokenizedCorpus BuildCorpusFromTexts(const std::vector<std::string>& texts,
                                     const Tokenizer& tokenizer = Tokenizer());

}  // namespace warplda

#endif  // WARPLDA_CORPUS_TOKENIZER_H_

#ifndef WARPLDA_CORPUS_SPLIT_H_
#define WARPLDA_CORPUS_SPLIT_H_

#include <cstdint>
#include <vector>

#include "corpus/corpus.h"

namespace warplda {

/// A train/held-out division of a corpus. Both halves share the original
/// word-id space (num_words is preserved) so a model trained on `train`
/// evaluates directly on `heldout`.
struct CorpusSplit {
  Corpus train;
  Corpus heldout;
  /// Original document ids of each half, in output order.
  std::vector<DocId> train_doc_ids;
  std::vector<DocId> heldout_doc_ids;
};

/// Randomly assigns each document to the held-out set with probability
/// `heldout_fraction` (deterministic for a given seed).
CorpusSplit SplitByDocument(const Corpus& corpus, double heldout_fraction,
                            uint64_t seed = 1);

/// Document-completion split: for every document, `heldout_fraction` of its
/// tokens (at least one if the doc has >= 2 tokens) go to the held-out half
/// and the rest to train. Both halves have the same number of documents with
/// aligned ids — the standard setup for estimating θ on one half and scoring
/// the other.
CorpusSplit SplitWithinDocuments(const Corpus& corpus,
                                 double heldout_fraction, uint64_t seed = 1);

/// Options for vocabulary pruning (classic preprocessing: drop stop-like
/// ultra-frequent words and ultra-rare noise words before training).
struct VocabFilter {
  uint32_t min_document_frequency = 1;  ///< drop words in fewer docs
  double max_document_fraction = 1.0;   ///< drop words in more than this
                                        ///< fraction of documents
};

/// Result of FilterVocabulary: the pruned corpus plus the id remapping.
struct FilteredCorpus {
  Corpus corpus;
  /// old word id -> new word id, or kDroppedWord.
  std::vector<WordId> old_to_new;
  /// new word id -> old word id.
  std::vector<WordId> new_to_old;
  static constexpr WordId kDroppedWord = 0xFFFFFFFFu;
};

/// Rebuilds the corpus keeping only words that pass `filter`. Word ids are
/// compacted; documents that become empty stay (as empty documents) so
/// external per-document metadata remains aligned.
FilteredCorpus FilterVocabulary(const Corpus& corpus,
                                const VocabFilter& filter);

}  // namespace warplda

#endif  // WARPLDA_CORPUS_SPLIT_H_

#include "corpus/tokenizer.h"

#include <cctype>

namespace warplda {

namespace {
// A compact English stop-word list (the most frequent function words); the
// paper removes stop words from ClueWeb before training.
constexpr const char* kDefaultStopWords[] = {
    "a",    "an",   "and",  "are",  "as",    "at",   "be",    "but",  "by",
    "for",  "from", "had",  "has",  "have",  "he",   "her",   "his",  "i",
    "if",   "in",   "is",   "it",   "its",   "me",   "my",    "no",   "not",
    "of",   "on",   "or",   "our",  "she",   "so",   "that",  "the",  "their",
    "them", "then", "they", "this", "those", "to",   "was",   "we",   "were",
    "what", "when", "which", "who", "will",  "with", "would", "you",  "your"};
}  // namespace

Tokenizer::Tokenizer() {
  for (const char* w : kDefaultStopWords) stop_words_.insert(w);
}

void Tokenizer::set_stop_words(const std::vector<std::string>& words) {
  stop_words_.clear();
  stop_words_.insert(words.begin(), words.end());
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  std::string current;
  auto flush = [&] {
    if (current.size() >= min_token_length_ && !IsStopWord(current)) {
      out.push_back(current);
    }
    current.clear();
  };
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else {
      flush();
    }
  }
  flush();
  return out;
}

std::vector<WordId> Tokenizer::TokenizeToIds(std::string_view text,
                                             Vocabulary& vocab) const {
  std::vector<WordId> ids;
  for (const auto& term : Tokenize(text)) {
    ids.push_back(vocab.GetOrAdd(term));
  }
  return ids;
}

TokenizedCorpus BuildCorpusFromTexts(const std::vector<std::string>& texts,
                                     const Tokenizer& tokenizer) {
  TokenizedCorpus result;
  CorpusBuilder builder;
  for (const auto& text : texts) {
    builder.AddDocument(tokenizer.TokenizeToIds(text, result.vocabulary));
  }
  builder.set_num_words(result.vocabulary.size());
  result.corpus = builder.Build();
  return result;
}

}  // namespace warplda

#include "corpus/synthetic.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "util/rng.h"
#include "util/zipf.h"

namespace warplda {

namespace {

// Marsaglia-Tsang gamma sampler; handles shape < 1 by boosting.
double SampleGamma(double shape, Rng& rng) {
  if (shape < 1.0) {
    double u = rng.NextDouble();
    if (u <= 0.0) u = 1e-300;
    return SampleGamma(shape + 1.0, rng) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    // Box-Muller normal draw.
    double u1 = rng.NextDouble();
    double u2 = rng.NextDouble();
    if (u1 <= 0.0) u1 = 1e-300;
    double x =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = rng.NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

// Approximate Poisson draw: exact (Knuth) for small means, normal
// approximation for large means where exp(-mean) underflows.
uint32_t SamplePoisson(double mean, Rng& rng) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    double l = std::exp(-mean);
    uint32_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= rng.NextDouble();
    } while (p > l);
    return k - 1;
  }
  double u1 = rng.NextDouble();
  double u2 = rng.NextDouble();
  if (u1 <= 0.0) u1 = 1e-300;
  double n = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  double v = mean + std::sqrt(mean) * n;
  return v < 1.0 ? 1u : static_cast<uint32_t>(std::lround(v));
}

// Returns a multiplier coprime to v, for building bijective affine maps
// r -> (a*r + b) mod v used as cheap per-topic vocabulary permutations.
uint64_t CoprimeMultiplier(uint32_t v, Rng& rng) {
  for (;;) {
    uint64_t a = rng.NextInt(v - 1) + 1;
    if (std::gcd(a, static_cast<uint64_t>(v)) == 1) return a;
  }
}

}  // namespace

SyntheticCorpus GenerateLdaCorpus(const SyntheticConfig& config) {
  Rng rng(config.seed);
  const uint32_t k_topics = config.num_topics;
  const uint32_t v = config.vocab_size;

  // Topic-word distributions: shared Zipf rank distribution, per-topic
  // bijective affine permutation of the vocabulary. This yields K distinct
  // topics each with a Zipfian word profile without storing K×V doubles.
  ZipfSampler rank_sampler(v, config.word_zipf_skew);
  std::vector<uint64_t> perm_a(k_topics);
  std::vector<uint64_t> perm_b(k_topics);
  for (uint32_t k = 0; k < k_topics; ++k) {
    perm_a[k] = CoprimeMultiplier(v, rng);
    perm_b[k] = rng.NextInt(v);
  }
  auto topic_word = [&](uint32_t k, uint32_t rank) -> WordId {
    return static_cast<WordId>((perm_a[k] * rank + perm_b[k]) % v);
  };

  SyntheticCorpus out;
  out.topic_top_words.resize(k_topics);
  for (uint32_t k = 0; k < k_topics; ++k) {
    uint32_t top_n = std::min<uint32_t>(32, v);
    out.topic_top_words[k].reserve(top_n);
    for (uint32_t r = 0; r < top_n; ++r) {
      out.topic_top_words[k].push_back(topic_word(k, r));
    }
  }

  CorpusBuilder builder;
  builder.set_num_words(v);
  std::vector<double> theta(k_topics);
  std::vector<WordId> doc;
  for (uint32_t d = 0; d < config.num_docs; ++d) {
    // θ_d ~ Dir(α) via normalized gammas.
    double total = 0.0;
    for (uint32_t k = 0; k < k_topics; ++k) {
      theta[k] = SampleGamma(config.alpha, rng);
      total += theta[k];
    }
    if (total <= 0.0) {
      std::fill(theta.begin(), theta.end(), 1.0);
      total = k_topics;
    }

    uint32_t len = std::max<uint32_t>(1, SamplePoisson(config.mean_doc_length,
                                                       rng));
    doc.clear();
    doc.reserve(len);
    for (uint32_t n = 0; n < len; ++n) {
      // z ~ Mult(θ_d) by inverse CDF (K is small for generation).
      double target = rng.NextDouble() * total;
      uint32_t z = 0;
      double acc = theta[0];
      while (acc < target && z + 1 < k_topics) acc += theta[++z];
      uint32_t rank = rank_sampler.Sample(rng);
      doc.push_back(topic_word(z, rank));
      out.true_topics.push_back(z);
    }
    builder.AddDocument(doc);
  }
  out.corpus = builder.Build();
  return out;
}

std::vector<std::vector<WordId>> SyntheticCorpus::TopWordsPerTopic(
    uint32_t top_n) const {
  std::vector<std::vector<WordId>> result(topic_top_words.size());
  for (size_t k = 0; k < topic_top_words.size(); ++k) {
    uint32_t n = std::min<uint32_t>(top_n,
                                    static_cast<uint32_t>(
                                        topic_top_words[k].size()));
    result[k].assign(topic_top_words[k].begin(),
                     topic_top_words[k].begin() + n);
  }
  return result;
}

Corpus GenerateZipfCorpus(uint32_t num_docs, uint32_t vocab_size,
                          double mean_doc_length, double skew, uint64_t seed) {
  Rng rng(seed);
  ZipfSampler zipf(vocab_size, skew);
  CorpusBuilder builder;
  builder.set_num_words(vocab_size);
  std::vector<WordId> doc;
  for (uint32_t d = 0; d < num_docs; ++d) {
    uint32_t len = std::max<uint32_t>(1, SamplePoisson(mean_doc_length, rng));
    doc.clear();
    doc.reserve(len);
    for (uint32_t n = 0; n < len; ++n) doc.push_back(zipf.Sample(rng));
    builder.AddDocument(doc);
  }
  return builder.Build();
}

// Table 3 shapes. Scale multiplies D; V scales as sqrt(scale) to keep a
// realistic type/token ratio; T/D is held at the paper's value.
SyntheticConfig NYTimesShape(double scale) {
  SyntheticConfig c;
  c.num_docs = std::max<uint32_t>(50, static_cast<uint32_t>(300000 * scale));
  c.vocab_size =
      std::max<uint32_t>(200, static_cast<uint32_t>(102000 * std::sqrt(scale)));
  c.mean_doc_length = 332;
  c.num_topics = 50;
  c.seed = 1001;
  return c;
}

SyntheticConfig PubMedShape(double scale) {
  SyntheticConfig c;
  c.num_docs = std::max<uint32_t>(50, static_cast<uint32_t>(8200000 * scale));
  c.vocab_size =
      std::max<uint32_t>(200, static_cast<uint32_t>(141000 * std::sqrt(scale)));
  c.mean_doc_length = 90;
  c.num_topics = 80;
  c.seed = 1002;
  return c;
}

SyntheticConfig ClueWebShape(double scale) {
  SyntheticConfig c;
  c.num_docs = std::max<uint32_t>(50, static_cast<uint32_t>(38000000 * scale));
  c.vocab_size = std::max<uint32_t>(
      200, static_cast<uint32_t>(1000000 * std::sqrt(scale)));
  c.mean_doc_length = 367;
  c.num_topics = 100;
  c.seed = 1003;
  return c;
}

std::string DescribeCorpus(const Corpus& corpus) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "D=%u T=%llu V=%u T/D=%.1f",
                corpus.num_docs(),
                static_cast<unsigned long long>(corpus.num_tokens()),
                corpus.num_words(), corpus.mean_doc_length());
  return buf;
}

}  // namespace warplda

#ifndef WARPLDA_BASELINES_SPARSE_LDA_H_
#define WARPLDA_BASELINES_SPARSE_LDA_H_

#include <string>
#include <vector>

#include "baselines/sampler.h"
#include "util/hash_count.h"

namespace warplda {

/// SparseLDA (Yao, Mimno & McCallum, KDD 2009): exact CGS with the
/// three-term factorization of Eq. (1),
///
///   p(z=k) ∝ αβ/(C_k+β̄)  +  β·C_dk/(C_k+β̄)  +  C_wk·(C_dk+α)/(C_k+β̄)
///            `smoothing s`   `document r`        `word q`
///
/// The s bucket is cached globally and the r bucket per document, both
/// maintained incrementally, so a token costs O(K_d + K_w) instead of O(K).
/// Tokens are visited document-by-document with instant count updates.
class SparseLdaSampler : public Sampler {
 public:
  void Init(const Corpus& corpus, const LdaConfig& config) override;
  void Iterate() override;
  std::vector<TopicId> Assignments() const override { return z_; }
  void SetAssignments(const std::vector<TopicId>& assignments) override;
  void SetPriors(double alpha, double beta) override;
  std::string name() const override { return "SparseLDA"; }

 private:
  /// Moves the token's mass in/out of all counts and the s/r caches.
  /// delta is +1 or -1.
  void ApplyToken(TopicId k, WordId w, int32_t delta);

  /// Recomputes the smoothing bucket from scratch (called per iteration to
  /// kill floating-point drift from incremental updates).
  void RebuildSmoothing();

  const Corpus* corpus_ = nullptr;
  LdaConfig config_;
  Rng rng_;
  double beta_bar_ = 0.0;

  std::vector<TopicId> z_;       // document-major
  std::vector<HashCount> cw_;    // per-word sparse counts (persistent)
  std::vector<int64_t> ck_;      // K
  HashCount cd_;                 // current document's counts
  double s_bucket_ = 0.0;        // Σ_k αβ/(C_k+β̄)
  double r_bucket_ = 0.0;        // Σ_k β·C_dk/(C_k+β̄), current document
};

}  // namespace warplda

#endif  // WARPLDA_BASELINES_SPARSE_LDA_H_

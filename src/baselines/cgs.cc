#include "baselines/cgs.h"

#include <algorithm>

namespace warplda {

void CgsSampler::Init(const Corpus& corpus, const LdaConfig& config) {
  corpus_ = &corpus;
  config_ = config;
  rng_.Seed(config.seed);

  const uint32_t k = config_.num_topics;
  z_.resize(corpus.num_tokens());
  cw_.assign(static_cast<size_t>(corpus.num_words()) * k, 0);
  ck_.assign(k, 0);
  cd_row_.assign(k, 0);
  dist_.assign(k, 0.0);

  for (TokenIdx t = 0; t < corpus.num_tokens(); ++t) {
    TopicId topic = rng_.NextInt(k);
    z_[t] = topic;
    ++cw_[static_cast<size_t>(corpus.token_word(t)) * k + topic];
    ++ck_[topic];
  }
}

void CgsSampler::SetPriors(double alpha, double beta) {
  config_.alpha = alpha;
  config_.beta = beta;
}

void CgsSampler::SetAssignments(const std::vector<TopicId>& assignments) {
  const uint32_t k = config_.num_topics;
  z_ = assignments;
  std::fill(cw_.begin(), cw_.end(), 0);
  std::fill(ck_.begin(), ck_.end(), 0);
  for (TokenIdx t = 0; t < corpus_->num_tokens(); ++t) {
    ++cw_[static_cast<size_t>(corpus_->token_word(t)) * k + z_[t]];
    ++ck_[z_[t]];
  }
}

void CgsSampler::Iterate() {
  const uint32_t k_topics = config_.num_topics;
  const double alpha = config_.alpha;
  const double beta = config_.beta;
  const double beta_bar = beta * corpus_->num_words();

  for (DocId d = 0; d < corpus_->num_docs(); ++d) {
    auto words = corpus_->doc_tokens(d);
    TokenIdx base = corpus_->doc_offset(d);

    // C_d row is only needed while this document is processed; rebuild it
    // from z_d (document-major visiting makes this sequential).
    std::fill(cd_row_.begin(), cd_row_.end(), 0);
    for (size_t n = 0; n < words.size(); ++n) ++cd_row_[z_[base + n]];

    for (size_t n = 0; n < words.size(); ++n) {
      const WordId w = words[n];
      const TopicId old = z_[base + n];
      uint32_t* cw_row = &cw_[static_cast<size_t>(w) * k_topics];

      // Remove the token (the ¬dn exclusion in Eq. (1)).
      --cd_row_[old];
      --cw_row[old];
      --ck_[old];
      Trace(&cw_row[old], sizeof(uint32_t), /*random=*/true, /*write=*/true);

      // Full conditional, Eq. (1): enumerate all K topics.
      double total = 0.0;
      if (config_.alpha_vector.empty()) {
        for (uint32_t k = 0; k < k_topics; ++k) {
          dist_[k] = (cd_row_[k] + alpha) * (cw_row[k] + beta) /
                     (ck_[k] + beta_bar);
          total += dist_[k];
        }
      } else {
        for (uint32_t k = 0; k < k_topics; ++k) {
          dist_[k] = (cd_row_[k] + config_.alpha_vector[k]) *
                     (cw_row[k] + beta) / (ck_[k] + beta_bar);
          total += dist_[k];
        }
      }
      Trace(cw_row, k_topics * sizeof(uint32_t), /*random=*/true,
            /*write=*/false);

      double target = rng_.NextDouble() * total;
      uint32_t sampled = 0;
      double acc = dist_[0];
      while (acc < target && sampled + 1 < k_topics) acc += dist_[++sampled];

      z_[base + n] = sampled;
      ++cd_row_[sampled];
      ++cw_row[sampled];
      ++ck_[sampled];
      Trace(&cw_row[sampled], sizeof(uint32_t), /*random=*/true,
            /*write=*/true);
    }
    TraceScopeEnd();
  }
}

}  // namespace warplda

#include "baselines/sparse_lda.h"

#include <algorithm>

namespace warplda {

void SparseLdaSampler::Init(const Corpus& corpus, const LdaConfig& config) {
  corpus_ = &corpus;
  config_ = config;
  rng_.Seed(config.seed);
  beta_bar_ = config.beta * corpus.num_words();

  const uint32_t k = config_.num_topics;
  z_.resize(corpus.num_tokens());
  ck_.assign(k, 0);
  cw_.assign(corpus.num_words(), HashCount());
  for (WordId w = 0; w < corpus.num_words(); ++w) {
    cw_[w].Init(std::min<uint32_t>(k, 2 * std::max<uint32_t>(
                                           1, corpus.word_frequency(w))));
  }
  for (TokenIdx t = 0; t < corpus.num_tokens(); ++t) {
    TopicId topic = rng_.NextInt(k);
    z_[t] = topic;
    cw_[corpus.token_word(t)].Inc(topic);
    ++ck_[topic];
  }
  RebuildSmoothing();
}

void SparseLdaSampler::SetPriors(double alpha, double beta) {
  config_.alpha = alpha;
  config_.beta = beta;
  beta_bar_ = beta * corpus_->num_words();
  RebuildSmoothing();
}

void SparseLdaSampler::SetAssignments(const std::vector<TopicId>& assignments) {
  z_ = assignments;
  std::fill(ck_.begin(), ck_.end(), 0);
  for (auto& row : cw_) row.Clear();
  for (TokenIdx t = 0; t < corpus_->num_tokens(); ++t) {
    cw_[corpus_->token_word(t)].Inc(z_[t]);
    ++ck_[z_[t]];
  }
  RebuildSmoothing();
}

void SparseLdaSampler::RebuildSmoothing() {
  s_bucket_ = 0.0;
  for (uint32_t k = 0; k < config_.num_topics; ++k) {
    s_bucket_ += config_.alpha * config_.beta / (ck_[k] + beta_bar_);
  }
}

void SparseLdaSampler::ApplyToken(TopicId k, WordId w, int32_t delta) {
  const double alpha = config_.alpha;
  const double beta = config_.beta;

  // Document count first (r depends on cd with the *current* denominator).
  double denom_old = ck_[k] + beta_bar_;
  r_bucket_ += beta * delta / denom_old;
  cd_.Add(k, delta);

  // Global count: both s and r terms for topic k change denominator.
  ck_[k] += delta;
  double denom_new = ck_[k] + beta_bar_;
  s_bucket_ += alpha * beta * (1.0 / denom_new - 1.0 / denom_old);
  r_bucket_ += beta * cd_.Get(k) * (1.0 / denom_new - 1.0 / denom_old);

  cw_[w].Add(k, delta);
  Trace(reinterpret_cast<const void*>(cw_[w].SlotAddr(k)),
        sizeof(HashCount::Entry), /*random=*/true, /*write=*/true);
}

void SparseLdaSampler::Iterate() {
  const uint32_t k_topics = config_.num_topics;
  const double alpha = config_.alpha;
  const double beta = config_.beta;

  RebuildSmoothing();  // kill accumulated floating-point drift

  for (DocId d = 0; d < corpus_->num_docs(); ++d) {
    auto words = corpus_->doc_tokens(d);
    if (words.empty()) continue;
    TokenIdx base = corpus_->doc_offset(d);

    // Build c_d and the document bucket r for this document.
    cd_.Init(std::min<uint32_t>(k_topics,
                                2 * static_cast<uint32_t>(words.size())));
    r_bucket_ = 0.0;
    for (size_t n = 0; n < words.size(); ++n) {
      TopicId k = z_[base + n];
      cd_.Inc(k);
      Trace(reinterpret_cast<const void*>(cd_.SlotAddr(k)),
            sizeof(HashCount::Entry), /*random=*/true, /*write=*/true);
    }
    cd_.ForEachNonZero([&](uint32_t k, int32_t c) {
      r_bucket_ += beta * c / (ck_[k] + beta_bar_);
    });

    for (size_t n = 0; n < words.size(); ++n) {
      const WordId w = words[n];
      const TopicId old = z_[base + n];
      ApplyToken(old, w, -1);

      // Word bucket q = Σ_{k: C_wk>0} C_wk (C_dk+α)/(C_k+β̄).
      double q_bucket = 0.0;
      const HashCount& cw = cw_[w];
      cw.ForEachNonZero([&](uint32_t k, int32_t c) {
        q_bucket += c * (cd_.Get(k) + alpha) / (ck_[k] + beta_bar_);
      });
      Trace(reinterpret_cast<const void*>(cw.slots().data()),
            cw.capacity() * static_cast<uint32_t>(sizeof(HashCount::Entry)),
            /*random=*/true, /*write=*/false);

      // Pick the bucket, then the topic within it.
      double u = rng_.NextDouble() * (s_bucket_ + r_bucket_ + q_bucket);
      TopicId sampled = k_topics - 1;
      if (u < s_bucket_) {
        // Smoothing bucket: rare (s is tiny), O(K) walk is fine.
        double acc = 0.0;
        for (uint32_t k = 0; k < k_topics; ++k) {
          acc += alpha * beta / (ck_[k] + beta_bar_);
          if (acc >= u) {
            sampled = k;
            break;
          }
        }
      } else if (u < s_bucket_ + r_bucket_) {
        double target = u - s_bucket_;
        double acc = 0.0;
        uint32_t found = k_topics;
        for (const auto& slot : cd_.slots()) {
          if (slot.key == HashCount::kEmptyKey || slot.value == 0) continue;
          acc += beta * slot.value / (ck_[slot.key] + beta_bar_);
          if (acc >= target) {
            found = slot.key;
            break;
          }
        }
        sampled = found < k_topics ? found : sampled;
      } else {
        double target = u - s_bucket_ - r_bucket_;
        double acc = 0.0;
        uint32_t found = k_topics;
        for (const auto& slot : cw.slots()) {
          if (slot.key == HashCount::kEmptyKey || slot.value == 0) continue;
          acc += slot.value * (cd_.Get(slot.key) + alpha) /
                 (ck_[slot.key] + beta_bar_);
          if (acc >= target) {
            found = slot.key;
            break;
          }
        }
        sampled = found < k_topics ? found : sampled;
      }

      z_[base + n] = sampled;
      ApplyToken(sampled, w, +1);
    }
    TraceScopeEnd();
  }
}

}  // namespace warplda

#ifndef WARPLDA_BASELINES_SAMPLER_H_
#define WARPLDA_BASELINES_SAMPLER_H_

#include <memory>
#include <string>
#include <vector>

#include "cachesim/tracer.h"
#include "corpus/corpus.h"
#include "util/rng.h"

namespace warplda {

/// Hyper-parameters shared by every LDA sampler in this library.
struct LdaConfig {
  uint32_t num_topics = 100;  ///< K
  double alpha = 0.5;         ///< symmetric document-topic prior (often 50/K)
  double beta = 0.01;         ///< symmetric topic-word prior
  uint32_t mh_steps = 2;      ///< M, proposal-chain length (MH samplers only)
  uint64_t seed = 12345;
  /// Optional asymmetric document-topic prior α_k (the paper's Eq. 1/6/7
  /// form). When non-empty it must have num_topics entries and overrides
  /// `alpha`. Currently honored by CGS and WarpLDA; the other baselines
  /// treat the prior as symmetric.
  std::vector<double> alpha_vector;

  /// α_k accessor: asymmetric entry when configured, else the symmetric α.
  double alpha_k(uint32_t k) const {
    return alpha_vector.empty() ? alpha : alpha_vector[k];
  }

  /// ᾱ = Σ_k α_k.
  double alpha_bar() const {
    if (alpha_vector.empty()) return alpha * num_topics;
    double total = 0.0;
    for (double a : alpha_vector) total += a;
    return total;
  }

  /// Convenience: the paper's default α = 50/K, β = 0.01 (§6.1).
  static LdaConfig PaperDefaults(uint32_t num_topics) {
    LdaConfig c;
    c.num_topics = num_topics;
    c.alpha = 50.0 / num_topics;
    return c;
  }
};

/// Common interface of all LDA training algorithms (Table 2's roster:
/// CGS, SparseLDA, AliasLDA, F+LDA, LightLDA, WarpLDA).
///
/// Usage: Init() binds a corpus (which must outlive the sampler) and draws
/// random initial assignments; each Iterate() performs one full sweep over
/// every token. Assignments() exposes the current state document-major so the
/// same evaluation code (JointLogLikelihood) scores every algorithm.
class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Binds the corpus and initializes topic assignments uniformly at random.
  /// May be called again to restart training.
  virtual void Init(const Corpus& corpus, const LdaConfig& config) = 0;

  /// Performs one full training sweep over all tokens.
  virtual void Iterate() = 0;

  /// Current topic assignments, document-major (parallel to corpus tokens).
  virtual std::vector<TopicId> Assignments() const = 0;

  /// Replaces the topic assignments (document-major, same length as the
  /// corpus token stream) and rebuilds all derived counts. Init() must have
  /// been called first. Used to resume training from a checkpoint.
  virtual void SetAssignments(const std::vector<TopicId>& assignments) = 0;

  /// Updates the Dirichlet priors between iterations (hyper-parameter
  /// optimization). Derived caches are refreshed; assignments are kept.
  virtual void SetPriors(double alpha, double beta) = 0;

  /// Algorithm name as used in the paper's tables.
  virtual std::string name() const = 0;

  /// Attaches a memory tracer (may be nullptr to detach). The sampler then
  /// reports its count-matrix accesses on subsequent Iterate() calls.
  void set_tracer(MemoryTracer* tracer) { tracer_ = tracer; }

 protected:
  /// Reports an access if a tracer is attached; no-op (one predictable
  /// branch) otherwise.
  void Trace(const void* addr, uint32_t bytes, bool random, bool write) const {
    if (tracer_ != nullptr) {
      tracer_->OnAccess(reinterpret_cast<uintptr_t>(addr), bytes, random,
                        write);
    }
  }
  void TraceScopeEnd() const {
    if (tracer_ != nullptr) tracer_->OnScopeEnd();
  }

  MemoryTracer* tracer_ = nullptr;
};

/// Instantiates a sampler by its paper name: "cgs", "sparselda", "aliaslda",
/// "f+lda" (alias "flda"), "lightlda", or "warplda".
///
/// Returns nullptr for unknown names — callers MUST check before
/// dereferencing; anything user-facing should prefer CreateSamplerChecked,
/// which produces the diagnostic for them. Both functions and SamplerNames()
/// are views of one registry, so a sampler added there is automatically
/// constructible, enumerable, and covered by the factory tests.
std::unique_ptr<Sampler> CreateSampler(const std::string& name);

/// Like CreateSampler, but on an unknown name fills `*error` (when non-null)
/// with a message naming the rejected input and every accepted name.
std::unique_ptr<Sampler> CreateSamplerChecked(const std::string& name,
                                              std::string* error);

/// Canonical names accepted by CreateSampler, in Table 2 order. The single
/// registry: dist/, benches, and examples enumerate algorithms through this.
std::vector<std::string> SamplerNames();

}  // namespace warplda

#endif  // WARPLDA_BASELINES_SAMPLER_H_

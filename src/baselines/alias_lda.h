#ifndef WARPLDA_BASELINES_ALIAS_LDA_H_
#define WARPLDA_BASELINES_ALIAS_LDA_H_

#include <string>
#include <vector>

#include "baselines/sampler.h"
#include "util/alias_table.h"
#include "util/hash_count.h"

namespace warplda {

/// AliasLDA (Li, Ahmed, Ravi & Smola, KDD 2014): CGS with the factorization
///
///   p(z=k) ∝ C_dk·(C_wk+β)/(C_k+β̄)  +  α·(C_wk+β)/(C_k+β̄)
///            `sparse doc term, fresh`   `dense term, stale alias table`
///
/// The sparse term is enumerated exactly over the non-zero entries of c_d
/// (amortized O(K_d)); the dense term is drawn in O(1) from per-word alias
/// tables built from stale counts, and a Metropolis-Hastings step corrects
/// the staleness. Tokens are visited document-by-document, counts update
/// instantly. The dense term itself decomposes into a per-word sparse alias
/// over α·C̃_wk/(C̃_k+β̄) plus one shared alias over αβ/(C̃_k+β̄).
class AliasLdaSampler : public Sampler {
 public:
  void Init(const Corpus& corpus, const LdaConfig& config) override;
  void Iterate() override;
  std::vector<TopicId> Assignments() const override { return z_; }
  void SetAssignments(const std::vector<TopicId>& assignments) override;
  void SetPriors(double alpha, double beta) override;
  std::string name() const override { return "AliasLDA"; }

 private:
  /// Rebuilds the stale proposal structures from the current counts.
  void RebuildStaleTables();

  /// Stale dense-term value ã_w(k) = α(C̃_wk+β)/(C̃_k+β̄).
  double StaleDense(WordId w, TopicId k) const;

  /// Fresh sparse doc-term value C_dk(C_wk+β)/(C_k+β̄).
  double FreshDocTerm(WordId w, TopicId k) const;

  const Corpus* corpus_ = nullptr;
  LdaConfig config_;
  Rng rng_;
  double beta_bar_ = 0.0;

  std::vector<TopicId> z_;     // document-major
  std::vector<HashCount> cw_;  // per-word sparse counts (fresh)
  std::vector<int64_t> ck_;    // K (fresh)
  HashCount cd_;               // current document

  // Stale proposal state, rebuilt once per iteration.
  struct WordProposal {
    AliasTable sparse_alias;  // over α·C̃_wk/(C̃_k+β̄), outcomes = topics
    std::vector<std::pair<TopicId, int32_t>> stale_row;  // sorted by topic
    double sparse_weight = 0.0;  // Σ_k α·C̃_wk/(C̃_k+β̄)
  };
  std::vector<WordProposal> word_proposals_;
  AliasTable smoothing_alias_;     // over αβ/(C̃_k+β̄)
  double smoothing_weight_ = 0.0;  // Σ_k αβ/(C̃_k+β̄)
  std::vector<int64_t> stale_ck_;
};

}  // namespace warplda

#endif  // WARPLDA_BASELINES_ALIAS_LDA_H_

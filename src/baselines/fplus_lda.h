#ifndef WARPLDA_BASELINES_FPLUS_LDA_H_
#define WARPLDA_BASELINES_FPLUS_LDA_H_

#include <string>
#include <vector>

#include "baselines/sampler.h"
#include "util/ftree.h"
#include "util/hash_count.h"

namespace warplda {

/// F+LDA (Yu, Hsieh, Yun, Vishwanathan & Dhillon, WWW 2015): exact CGS with
/// AliasLDA's factorization but visiting tokens word-by-word,
///
///   p(z=k) ∝ C_dk·(C_wk+β)/(C_k+β̄)  +  α·(C_wk+β)/(C_k+β̄),
///
/// where the second (dense) term is shared by every token of the current
/// word and kept in an F+ tree: O(K) build per word, O(log K) update per
/// token, O(log K) exact sampling — no staleness, no MH step.
///
/// Because the visiting order is word-major, the document counts C_d are the
/// randomly accessed structure (size O(DK)); this is exactly the access
/// pattern Table 2 attributes to F+LDA.
class FPlusLdaSampler : public Sampler {
 public:
  void Init(const Corpus& corpus, const LdaConfig& config) override;
  void Iterate() override;
  std::vector<TopicId> Assignments() const override { return z_; }
  void SetAssignments(const std::vector<TopicId>& assignments) override;
  void SetPriors(double alpha, double beta) override;
  std::string name() const override { return "F+LDA"; }

 private:
  /// Refreshes the F+ tree leaf for topic k from current cw_row_/ck_.
  void RefreshLeaf(TopicId k);

  const Corpus* corpus_ = nullptr;
  LdaConfig config_;
  Rng rng_;
  double beta_bar_ = 0.0;

  std::vector<TopicId> z_;        // document-major (indexed via word_tokens)
  std::vector<DocId> token_doc_;  // document id per document-major position
  std::vector<HashCount> cd_;     // per-document sparse counts (persistent)
  std::vector<int64_t> ck_;       // K
  std::vector<uint32_t> cw_row_;  // K, current word's counts
  FTree dense_tree_;              // over α(C_wk+β)/(C_k+β̄)
};

}  // namespace warplda

#endif  // WARPLDA_BASELINES_FPLUS_LDA_H_

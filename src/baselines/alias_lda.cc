#include "baselines/alias_lda.h"

#include <algorithm>

namespace warplda {

void AliasLdaSampler::Init(const Corpus& corpus, const LdaConfig& config) {
  corpus_ = &corpus;
  config_ = config;
  rng_.Seed(config.seed);
  beta_bar_ = config.beta * corpus.num_words();

  const uint32_t k = config_.num_topics;
  z_.resize(corpus.num_tokens());
  ck_.assign(k, 0);
  cw_.assign(corpus.num_words(), HashCount());
  for (WordId w = 0; w < corpus.num_words(); ++w) {
    cw_[w].Init(std::min<uint32_t>(k, 2 * std::max<uint32_t>(
                                           1, corpus.word_frequency(w))));
  }
  for (TokenIdx t = 0; t < corpus.num_tokens(); ++t) {
    TopicId topic = rng_.NextInt(k);
    z_[t] = topic;
    cw_[corpus.token_word(t)].Inc(topic);
    ++ck_[topic];
  }
  word_proposals_.assign(corpus.num_words(), WordProposal());
  RebuildStaleTables();
}

void AliasLdaSampler::SetPriors(double alpha, double beta) {
  config_.alpha = alpha;
  config_.beta = beta;
  beta_bar_ = beta * corpus_->num_words();
  RebuildStaleTables();
}

void AliasLdaSampler::SetAssignments(const std::vector<TopicId>& assignments) {
  z_ = assignments;
  std::fill(ck_.begin(), ck_.end(), 0);
  for (auto& row : cw_) row.Clear();
  for (TokenIdx t = 0; t < corpus_->num_tokens(); ++t) {
    cw_[corpus_->token_word(t)].Inc(z_[t]);
    ++ck_[z_[t]];
  }
  RebuildStaleTables();
}

void AliasLdaSampler::RebuildStaleTables() {
  const uint32_t k_topics = config_.num_topics;
  const double alpha = config_.alpha;
  const double beta = config_.beta;

  stale_ck_.assign(ck_.begin(), ck_.end());

  std::vector<double> smoothing(k_topics);
  smoothing_weight_ = 0.0;
  for (uint32_t k = 0; k < k_topics; ++k) {
    smoothing[k] = alpha * beta / (stale_ck_[k] + beta_bar_);
    smoothing_weight_ += smoothing[k];
  }
  smoothing_alias_.Build(smoothing);

  std::vector<std::pair<uint32_t, double>> entries;
  for (WordId w = 0; w < corpus_->num_words(); ++w) {
    WordProposal& wp = word_proposals_[w];
    wp.stale_row.clear();
    entries.clear();
    wp.sparse_weight = 0.0;
    cw_[w].ForEachNonZero([&](uint32_t k, int32_t c) {
      double weight = alpha * c / (stale_ck_[k] + beta_bar_);
      entries.emplace_back(k, weight);
      wp.stale_row.emplace_back(k, c);
      wp.sparse_weight += weight;
    });
    std::sort(wp.stale_row.begin(), wp.stale_row.end());
    wp.sparse_alias.BuildSparse(entries);
  }
}

double AliasLdaSampler::StaleDense(WordId w, TopicId k) const {
  const auto& row = word_proposals_[w].stale_row;
  auto it = std::lower_bound(row.begin(), row.end(),
                             std::make_pair(k, INT32_MIN));
  int32_t c = (it != row.end() && it->first == k) ? it->second : 0;
  return config_.alpha * (c + config_.beta) / (stale_ck_[k] + beta_bar_);
}

double AliasLdaSampler::FreshDocTerm(WordId w, TopicId k) const {
  int32_t cdk = cd_.Get(k);
  if (cdk == 0) return 0.0;
  return cdk * (cw_[w].Get(k) + config_.beta) / (ck_[k] + beta_bar_);
}

void AliasLdaSampler::Iterate() {
  const uint32_t k_topics = config_.num_topics;
  const double beta = config_.beta;

  RebuildStaleTables();

  for (DocId d = 0; d < corpus_->num_docs(); ++d) {
    auto words = corpus_->doc_tokens(d);
    if (words.empty()) continue;
    TokenIdx base = corpus_->doc_offset(d);

    cd_.Init(std::min<uint32_t>(k_topics,
                                2 * static_cast<uint32_t>(words.size())));
    for (size_t n = 0; n < words.size(); ++n) cd_.Inc(z_[base + n]);

    for (size_t n = 0; n < words.size(); ++n) {
      const WordId w = words[n];
      TopicId current = z_[base + n];

      // ¬dn exclusion.
      cd_.Dec(current);
      cw_[w].Dec(current);
      --ck_[current];
      Trace(reinterpret_cast<const void*>(cw_[w].SlotAddr(current)),
            sizeof(HashCount::Entry), /*random=*/true, /*write=*/true);

      const WordProposal& wp = word_proposals_[w];
      const double dense_weight = wp.sparse_weight + smoothing_weight_;

      for (uint32_t step = 0; step < std::max(1u, config_.mh_steps); ++step) {
        // Fresh sparse doc bucket: Σ_{k∈c_d} C_dk(C_wk+β)/(C_k+β̄).
        double doc_weight = 0.0;
        cd_.ForEachNonZero([&](uint32_t k, int32_t c) {
          doc_weight += c * (cw_[w].Get(k) + beta) / (ck_[k] + beta_bar_);
        });
        Trace(reinterpret_cast<const void*>(cw_[w].slots().data()),
              cw_[w].capacity() *
                  static_cast<uint32_t>(sizeof(HashCount::Entry)),
              /*random=*/true, /*write=*/false);

        // Draw the proposal from [fresh doc term | stale dense term].
        TopicId proposal;
        double u = rng_.NextDouble() * (doc_weight + dense_weight);
        if (u < doc_weight && doc_weight > 0.0) {
          double acc = 0.0;
          uint32_t found = k_topics;
          for (const auto& slot : cd_.slots()) {
            if (slot.key == HashCount::kEmptyKey || slot.value == 0) continue;
            acc += slot.value * (cw_[w].Get(slot.key) + beta) /
                   (ck_[slot.key] + beta_bar_);
            if (acc >= u) {
              found = slot.key;
              break;
            }
          }
          proposal = found < k_topics ? found : current;
        } else if (wp.sparse_weight > 0.0 &&
                   rng_.NextDouble() * dense_weight < wp.sparse_weight) {
          proposal = wp.sparse_alias.Sample(rng_);
        } else {
          proposal = smoothing_alias_.Sample(rng_);
        }

        // MH correction for the stale dense term.
        auto p_fresh = [&](TopicId k) {
          return (cd_.Get(k) + config_.alpha) * (cw_[w].Get(k) + beta) /
                 (ck_[k] + beta_bar_);
        };
        auto q_mix = [&](TopicId k) {
          return FreshDocTerm(w, k) + StaleDense(w, k);
        };
        double accept =
            (p_fresh(proposal) * q_mix(current)) /
            (p_fresh(current) * q_mix(proposal));
        if (accept >= 1.0 || rng_.NextBernoulli(accept)) current = proposal;
      }

      z_[base + n] = current;
      cd_.Inc(current);
      cw_[w].Inc(current);
      ++ck_[current];
      Trace(reinterpret_cast<const void*>(cw_[w].SlotAddr(current)),
            sizeof(HashCount::Entry), /*random=*/true, /*write=*/true);
    }
    TraceScopeEnd();
  }
}

}  // namespace warplda

#include "baselines/light_lda.h"

#include <algorithm>

namespace warplda {

std::string LightLdaSampler::name() const {
  std::string n = "LightLDA";
  if (options_.delay_word_counts) n += "+DW";
  if (options_.delay_doc_counts) n += "+DD";
  if (options_.simple_word_proposal) n += "+SP";
  return n;
}

void LightLdaSampler::Init(const Corpus& corpus, const LdaConfig& config) {
  corpus_ = &corpus;
  config_ = config;
  rng_.Seed(config.seed);
  alpha_bar_ = config.alpha * config.num_topics;
  beta_bar_ = config.beta * corpus.num_words();

  const uint32_t k = config_.num_topics;
  z_.resize(corpus.num_tokens());
  ck_.assign(k, 0);
  cw_.assign(corpus.num_words(), HashCount());
  for (WordId w = 0; w < corpus.num_words(); ++w) {
    cw_[w].Init(std::min<uint32_t>(k, 2 * std::max<uint32_t>(
                                           1, corpus.word_frequency(w))));
  }
  for (TokenIdx t = 0; t < corpus.num_tokens(); ++t) {
    TopicId topic = rng_.NextInt(k);
    z_[t] = topic;
    cw_[corpus.token_word(t)].Inc(topic);
    ++ck_[topic];
  }
  word_proposals_.assign(corpus.num_words(), WordProposal());
  RebuildProposalTables();
}

void LightLdaSampler::SetPriors(double alpha, double beta) {
  config_.alpha = alpha;
  config_.beta = beta;
  alpha_bar_ = alpha * config_.num_topics;
  beta_bar_ = beta * corpus_->num_words();
  RebuildProposalTables();
}

void LightLdaSampler::SetAssignments(const std::vector<TopicId>& assignments) {
  z_ = assignments;
  std::fill(ck_.begin(), ck_.end(), 0);
  for (auto& row : cw_) row.Clear();
  for (TokenIdx t = 0; t < corpus_->num_tokens(); ++t) {
    cw_[corpus_->token_word(t)].Inc(z_[t]);
    ++ck_[z_[t]];
  }
  RebuildProposalTables();
}

void LightLdaSampler::RebuildProposalTables() {
  const uint32_t k_topics = config_.num_topics;
  const double beta = config_.beta;

  stale_ck_.assign(ck_.begin(), ck_.end());

  // Smoothing branch: β/(C̃_k+β̄) per topic, or a flat β with the simple
  // proposal (then the branch is uniform over topics).
  std::vector<double> smoothing(k_topics);
  smoothing_weight_ = 0.0;
  for (uint32_t k = 0; k < k_topics; ++k) {
    smoothing[k] = options_.simple_word_proposal
                       ? beta
                       : beta / (stale_ck_[k] + beta_bar_);
    smoothing_weight_ += smoothing[k];
  }
  smoothing_alias_.Build(smoothing);

  std::vector<std::pair<uint32_t, double>> entries;
  for (WordId w = 0; w < corpus_->num_words(); ++w) {
    WordProposal& wp = word_proposals_[w];
    wp.stale_row.clear();
    entries.clear();
    wp.sparse_weight = 0.0;
    cw_[w].ForEachNonZero([&](uint32_t k, int32_t c) {
      double weight = options_.simple_word_proposal
                          ? static_cast<double>(c)
                          : c / (stale_ck_[k] + beta_bar_);
      entries.emplace_back(k, weight);
      wp.stale_row.emplace_back(k, c);
      wp.sparse_weight += weight;
    });
    std::sort(wp.stale_row.begin(), wp.stale_row.end());
    wp.sparse_alias.BuildSparse(entries);
  }
}

double LightLdaSampler::StaleWordQ(WordId w, TopicId k) const {
  const auto& row = word_proposals_[w].stale_row;
  auto it = std::lower_bound(row.begin(), row.end(),
                             std::make_pair(k, INT32_MIN));
  int32_t c = (it != row.end() && it->first == k) ? it->second : 0;
  return options_.simple_word_proposal
             ? c + config_.beta
             : (c + config_.beta) / (stale_ck_[k] + beta_bar_);
}

void LightLdaSampler::Iterate() {
  const uint32_t k_topics = config_.num_topics;
  const double alpha = config_.alpha;
  const double beta = config_.beta;
  const bool dw = options_.delay_word_counts;
  const bool dd = options_.delay_doc_counts;

  RebuildProposalTables();
  if (dd) z_snapshot_ = z_;

  for (DocId d = 0; d < corpus_->num_docs(); ++d) {
    auto words = corpus_->doc_tokens(d);
    if (words.empty()) continue;
    const TokenIdx base = corpus_->doc_offset(d);
    const uint32_t len = static_cast<uint32_t>(words.size());

    // Document counts: fresh z (live) or the iteration-start snapshot (+DD).
    const std::vector<TopicId>& z_doc_src = dd ? z_snapshot_ : z_;
    cd_.Init(std::min<uint32_t>(k_topics, 2 * len));
    for (uint32_t n = 0; n < len; ++n) cd_.Inc(z_doc_src[base + n]);

    for (uint32_t n = 0; n < len; ++n) {
      const WordId w = words[n];
      TopicId current = z_[base + n];

      // ¬dn exclusion on the fresh structures (skipped when delayed: the
      // snapshot predates this token's current assignment anyway).
      if (!dd) cd_.Dec(current);
      if (!dw) {
        cw_[w].Dec(current);
        --ck_[current];
        Trace(reinterpret_cast<const void*>(cw_[w].SlotAddr(current)),
              sizeof(HashCount::Entry), /*random=*/true, /*write=*/true);
      }

      // Unnormalized target with the count sources this configuration uses.
      auto p_hat = [&](TopicId k) {
        double cdk = cd_.Get(k);
        double cwk;
        double ckk;
        if (dw) {
          const auto& row = word_proposals_[w].stale_row;
          auto it = std::lower_bound(row.begin(), row.end(),
                                     std::make_pair(k, INT32_MIN));
          cwk = (it != row.end() && it->first == k) ? it->second : 0;
          ckk = static_cast<double>(stale_ck_[k]);
        } else {
          cwk = cw_[w].Get(k);
          ckk = static_cast<double>(ck_[k]);
          Trace(reinterpret_cast<const void*>(cw_[w].SlotAddr(k)),
                sizeof(HashCount::Entry), /*random=*/true, /*write=*/false);
        }
        return (cdk + alpha) * (cwk + beta) / (ckk + beta_bar_);
      };

      // Doc-proposal density as actually sampled: positioning into z_d plus
      // the α branch. The live z array still counts this token once.
      auto q_doc = [&](TopicId k) {
        double cdk = cd_.Get(k);
        if (!dd && k == current) cdk += 1.0;
        return cdk + alpha;
      };

      for (uint32_t step = 0; step < std::max(1u, config_.mh_steps); ++step) {
        // --- Doc-proposal MH step ---
        TopicId t;
        if (rng_.NextDouble() * (len + alpha_bar_) < len) {
          TokenIdx pos = base + rng_.NextInt(len);
          t = z_doc_src[pos];
          // With live counts the positioned entry for this very token holds
          // `original`; mirror what positioning actually returns.
          if (!dd && pos == base + n) t = current;
        } else {
          t = rng_.NextInt(k_topics);
        }
        if (t != current) {
          double accept = (p_hat(t) * q_doc(current)) /
                          (p_hat(current) * q_doc(t));
          if (accept >= 1.0 || rng_.NextBernoulli(accept)) current = t;
        }

        // --- Word-proposal MH step ---
        const WordProposal& wp = word_proposals_[w];
        double total = wp.sparse_weight + smoothing_weight_;
        if (rng_.NextDouble() * total < wp.sparse_weight &&
            !wp.sparse_alias.empty()) {
          t = wp.sparse_alias.Sample(rng_);
        } else {
          t = smoothing_alias_.Sample(rng_);
        }
        Trace(reinterpret_cast<const void*>(wp.stale_row.data()),
              static_cast<uint32_t>(wp.stale_row.size() *
                                    sizeof(std::pair<TopicId, int32_t>)),
              /*random=*/true, /*write=*/false);
        if (t != current) {
          double accept = (p_hat(t) * StaleWordQ(w, current)) /
                          (p_hat(current) * StaleWordQ(w, t));
          if (accept >= 1.0 || rng_.NextBernoulli(accept)) current = t;
        }
      }

      z_[base + n] = current;
      if (!dd) cd_.Inc(current);
      if (!dw) {
        cw_[w].Inc(current);
        ++ck_[current];
        Trace(reinterpret_cast<const void*>(cw_[w].SlotAddr(current)),
              sizeof(HashCount::Entry), /*random=*/true, /*write=*/true);
      }
    }
    TraceScopeEnd();
  }

  // Delayed modes: fold this iteration's reassignments into the fresh
  // structures now so the next iteration's snapshot sees them.
  if (dw) {
    for (auto& row : cw_) row.Clear();
    std::fill(ck_.begin(), ck_.end(), 0);
    for (TokenIdx t = 0; t < corpus_->num_tokens(); ++t) {
      cw_[corpus_->token_word(t)].Inc(z_[t]);
      ++ck_[z_[t]];
    }
  }
}

}  // namespace warplda

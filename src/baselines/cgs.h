#ifndef WARPLDA_BASELINES_CGS_H_
#define WARPLDA_BASELINES_CGS_H_

#include <string>
#include <vector>

#include "baselines/sampler.h"

namespace warplda {

/// Plain collapsed Gibbs sampling (Griffiths & Steyvers 2004): the O(K)
/// per-token reference implementation of Eq. (1).
///
/// Visits tokens document-by-document with instant count updates. The
/// word-topic matrix C_w is stored dense (V×K); use only at modest scale.
/// Every fast sampler in this library is validated against CGS's converged
/// likelihood in the integration tests.
class CgsSampler : public Sampler {
 public:
  void Init(const Corpus& corpus, const LdaConfig& config) override;
  void Iterate() override;
  std::vector<TopicId> Assignments() const override { return z_; }
  void SetAssignments(const std::vector<TopicId>& assignments) override;
  void SetPriors(double alpha, double beta) override;
  std::string name() const override { return "CGS"; }

 private:
  const Corpus* corpus_ = nullptr;
  LdaConfig config_;
  Rng rng_;
  std::vector<TopicId> z_;        // document-major
  std::vector<uint32_t> cw_;      // V×K dense, row-major by word
  std::vector<int64_t> ck_;       // K
  std::vector<uint32_t> cd_row_;  // K, current document's counts
  std::vector<double> dist_;      // K, scratch for the categorical draw
};

}  // namespace warplda

#endif  // WARPLDA_BASELINES_CGS_H_

#include "baselines/fplus_lda.h"

#include <algorithm>

namespace warplda {

void FPlusLdaSampler::Init(const Corpus& corpus, const LdaConfig& config) {
  corpus_ = &corpus;
  config_ = config;
  rng_.Seed(config.seed);
  beta_bar_ = config.beta * corpus.num_words();

  const uint32_t k = config_.num_topics;
  z_.resize(corpus.num_tokens());
  ck_.assign(k, 0);
  cw_row_.assign(k, 0);
  dense_tree_.Reset(k);

  token_doc_.resize(corpus.num_tokens());
  cd_.assign(corpus.num_docs(), HashCount());
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    uint32_t len = corpus.doc_length(d);
    cd_[d].Init(std::min<uint32_t>(k, 2 * std::max<uint32_t>(1, len)));
    TokenIdx base = corpus.doc_offset(d);
    for (uint32_t n = 0; n < len; ++n) token_doc_[base + n] = d;
  }

  for (TokenIdx t = 0; t < corpus.num_tokens(); ++t) {
    TopicId topic = rng_.NextInt(k);
    z_[t] = topic;
    cd_[token_doc_[t]].Inc(topic);
    ++ck_[topic];
  }
}

void FPlusLdaSampler::SetPriors(double alpha, double beta) {
  config_.alpha = alpha;
  config_.beta = beta;
  beta_bar_ = beta * corpus_->num_words();
}

void FPlusLdaSampler::SetAssignments(const std::vector<TopicId>& assignments) {
  z_ = assignments;
  std::fill(ck_.begin(), ck_.end(), 0);
  for (auto& row : cd_) row.Clear();
  for (TokenIdx t = 0; t < corpus_->num_tokens(); ++t) {
    cd_[token_doc_[t]].Inc(z_[t]);
    ++ck_[z_[t]];
  }
}

void FPlusLdaSampler::RefreshLeaf(TopicId k) {
  dense_tree_.Update(
      k, config_.alpha * (cw_row_[k] + config_.beta) / (ck_[k] + beta_bar_));
}

void FPlusLdaSampler::Iterate() {
  const uint32_t k_topics = config_.num_topics;
  const double beta = config_.beta;

  for (WordId w = 0; w < corpus_->num_words(); ++w) {
    auto occurrences = corpus_->word_tokens(w);
    if (occurrences.empty()) continue;

    // Build this word's dense counts and the F+ tree over the shared term.
    std::fill(cw_row_.begin(), cw_row_.end(), 0);
    for (TokenIdx t : occurrences) ++cw_row_[z_[t]];
    std::vector<double> leaves(k_topics);
    for (uint32_t k = 0; k < k_topics; ++k) {
      leaves[k] = config_.alpha * (cw_row_[k] + beta) / (ck_[k] + beta_bar_);
    }
    dense_tree_.Build(leaves);

    for (TokenIdx t : occurrences) {
      const DocId d = token_doc_[t];
      const TopicId old = z_[t];
      HashCount& cd = cd_[d];

      // ¬dn exclusion with instant updates; the tree leaf for `old` changes
      // because both C_wk and C_k changed.
      cd.Dec(old);
      --cw_row_[old];
      --ck_[old];
      RefreshLeaf(old);
      Trace(reinterpret_cast<const void*>(cd.SlotAddr(old)),
            sizeof(HashCount::Entry), /*random=*/true, /*write=*/true);

      // Sparse doc bucket: Σ_{k∈c_d} C_dk(C_wk+β)/(C_k+β̄).
      double doc_weight = 0.0;
      cd.ForEachNonZero([&](uint32_t k, int32_t c) {
        doc_weight += c * (cw_row_[k] + beta) / (ck_[k] + beta_bar_);
      });
      Trace(reinterpret_cast<const void*>(cd.slots().data()),
            cd.capacity() * static_cast<uint32_t>(sizeof(HashCount::Entry)),
            /*random=*/true, /*write=*/false);

      TopicId sampled;
      double u = rng_.NextDouble() * (doc_weight + dense_tree_.Total());
      if (u < doc_weight) {
        double acc = 0.0;
        uint32_t found = k_topics;
        for (const auto& slot : cd.slots()) {
          if (slot.key == HashCount::kEmptyKey || slot.value == 0) continue;
          acc += slot.value * (cw_row_[slot.key] + beta) /
                 (ck_[slot.key] + beta_bar_);
          if (acc >= u) {
            found = slot.key;
            break;
          }
        }
        sampled = found < k_topics ? found : old;
      } else {
        sampled = dense_tree_.Sample(rng_);
      }

      z_[t] = sampled;
      cd.Inc(sampled);
      ++cw_row_[sampled];
      ++ck_[sampled];
      RefreshLeaf(sampled);
      Trace(reinterpret_cast<const void*>(cd.SlotAddr(sampled)),
            sizeof(HashCount::Entry), /*random=*/true, /*write=*/true);
    }
    TraceScopeEnd();
  }
}

}  // namespace warplda

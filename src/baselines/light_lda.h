#ifndef WARPLDA_BASELINES_LIGHT_LDA_H_
#define WARPLDA_BASELINES_LIGHT_LDA_H_

#include <string>
#include <vector>

#include "baselines/sampler.h"
#include "util/alias_table.h"
#include "util/hash_count.h"

namespace warplda {

/// Ablation switches reproducing Fig 7's bridge from LightLDA to WarpLDA.
struct LightLdaOptions {
  /// +DW: acceptance rates use the iteration-start snapshot of C_w and c_k
  /// instead of instantly updated counts.
  bool delay_word_counts = false;
  /// +DD: the document counts C_d (and the doc-proposal distribution) come
  /// from the iteration-start snapshot of Z.
  bool delay_doc_counts = false;
  /// +SP: use WarpLDA's simple word proposal q_word ∝ C_wk + β instead of
  /// LightLDA's q_word ∝ (C_wk+β)/(C_k+β̄).
  bool simple_word_proposal = false;
};

/// LightLDA (Yuan et al., WWW 2015): O(1) Metropolis-Hastings sampling with
/// cycled doc/word proposals (Eq. 6-7 shapes, with CGS's instant updates).
///
/// Per token, performs `mh_steps` cycles; each cycle takes one step with the
/// doc proposal q_doc ∝ C_dk+α (random positioning into z_d, or the α prior)
/// and one step with the word proposal q_word ∝ (C̃_wk+β)/(C̃_k+β̄) drawn
/// from alias tables built once per iteration from stale counts. Acceptance
/// rates use fresh counts with the ¬dn exclusion (unless ablated).
///
/// Tokens are visited document-by-document; the randomly accessed structure
/// is the word-topic table (size O(KV)) — Table 2's LightLDA row.
class LightLdaSampler : public Sampler {
 public:
  explicit LightLdaSampler(const LightLdaOptions& options = {})
      : options_(options) {}

  void Init(const Corpus& corpus, const LdaConfig& config) override;
  void Iterate() override;
  std::vector<TopicId> Assignments() const override { return z_; }
  void SetAssignments(const std::vector<TopicId>& assignments) override;
  void SetPriors(double alpha, double beta) override;
  std::string name() const override;

  const LightLdaOptions& options() const { return options_; }

 private:
  /// Rebuilds per-word alias tables and snapshots from current counts.
  void RebuildProposalTables();

  /// Stale word-proposal density q̃_w(k) (unnormalized, matches the alias
  /// tables the proposals are drawn from).
  double StaleWordQ(WordId w, TopicId k) const;

  LightLdaOptions options_;
  const Corpus* corpus_ = nullptr;
  LdaConfig config_;
  Rng rng_;
  double alpha_bar_ = 0.0;
  double beta_bar_ = 0.0;

  std::vector<TopicId> z_;           // document-major, live
  std::vector<TopicId> z_snapshot_;  // iteration-start copy (+DD only)
  std::vector<HashCount> cw_;        // fresh per-word counts
  std::vector<int64_t> ck_;          // fresh global counts
  HashCount cd_;                     // current document (fresh or snapshot)

  // Stale proposal state, rebuilt once per iteration.
  struct WordProposal {
    AliasTable sparse_alias;  // outcomes are topics
    std::vector<std::pair<TopicId, int32_t>> stale_row;  // sorted by topic
    double sparse_weight = 0.0;
  };
  std::vector<WordProposal> word_proposals_;
  AliasTable smoothing_alias_;
  double smoothing_weight_ = 0.0;
  std::vector<int64_t> stale_ck_;
};

}  // namespace warplda

#endif  // WARPLDA_BASELINES_LIGHT_LDA_H_

#ifndef WARPLDA_CACHESIM_TRACER_H_
#define WARPLDA_CACHESIM_TRACER_H_

#include <cstdint>

namespace warplda {

/// Hook through which samplers report their memory accesses to the count
/// matrices and per-token state. Used to reproduce the paper's memory-access
/// analysis (Table 2) and L3 miss rates (Table 4) without hardware counters.
///
/// Samplers call OnAccess for every logical read/write of count structures,
/// flagging whether the access is random (scattered across a large structure)
/// or sequential (streaming). OnScopeEnd marks the end of one document/word,
/// delimiting the "randomly accessed memory per-document" regions the paper
/// analyzes in §3.1. Tracing is optional: samplers skip all calls when no
/// tracer is attached, so the hot path stays branch-predictable.
class MemoryTracer {
 public:
  virtual ~MemoryTracer() = default;

  /// Reports an access to [addr, addr+bytes). `random` marks accesses whose
  /// location depends on a sampled topic (vs streaming over token arrays).
  /// `write` marks stores.
  virtual void OnAccess(uintptr_t addr, uint32_t bytes, bool random,
                        bool write) = 0;

  /// Called when the sampler finishes one document (doc-major visiting) or
  /// one word (word-major visiting).
  virtual void OnScopeEnd() {}
};

}  // namespace warplda

#endif  // WARPLDA_CACHESIM_TRACER_H_

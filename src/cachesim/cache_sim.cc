#include "cachesim/cache_sim.h"

#include <algorithm>

namespace warplda {

namespace {
uint32_t Log2(uint32_t x) {
  uint32_t n = 0;
  while ((1u << n) < x) ++n;
  return n;
}
}  // namespace

CacheSim::CacheSim(const CacheConfig& config) : config_(config) {
  line_shift_ = Log2(config_.line_bytes);
  uint64_t lines = config_.size_bytes >> line_shift_;
  num_sets_ = static_cast<uint32_t>(lines / config_.associativity);
  if (num_sets_ == 0) num_sets_ = 1;
  ways_.assign(static_cast<size_t>(num_sets_) * config_.associativity, Way{});
}

void CacheSim::Reset() {
  std::fill(ways_.begin(), ways_.end(), Way{});
  clock_ = 0;
  hits_ = 0;
  misses_ = 0;
}

void CacheSim::Touch(uintptr_t addr) {
  uint64_t line = static_cast<uint64_t>(addr) >> line_shift_;
  uint32_t set = static_cast<uint32_t>(line % num_sets_);
  uint64_t tag = line / num_sets_;
  Way* base = &ways_[static_cast<size_t>(set) * config_.associativity];
  ++clock_;

  Way* lru = base;
  for (uint32_t i = 0; i < config_.associativity; ++i) {
    Way& w = base[i];
    if (w.valid && w.tag == tag) {
      w.last_use = clock_;
      ++hits_;
      return;
    }
    if (!w.valid) {
      lru = &w;  // prefer an invalid way for fills
    } else if (lru->valid && w.last_use < lru->last_use) {
      lru = &w;
    }
  }
  ++misses_;
  lru->valid = true;
  lru->tag = tag;
  lru->last_use = clock_;
}

void CacheSim::OnAccess(uintptr_t addr, uint32_t bytes, bool /*random*/,
                        bool /*write*/) {
  uintptr_t first = addr >> line_shift_;
  uintptr_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) >> line_shift_;
  for (uintptr_t line = first; line <= last; ++line) {
    Touch(line << line_shift_);
  }
}

}  // namespace warplda

#ifndef WARPLDA_CACHESIM_CACHE_SIM_H_
#define WARPLDA_CACHESIM_CACHE_SIM_H_

#include <cstdint>
#include <vector>

#include "cachesim/tracer.h"

namespace warplda {

/// Geometry of a simulated cache level.
struct CacheConfig {
  uint64_t size_bytes = 30ull << 20;  ///< 30 MB: the paper's Ivy Bridge L3
  uint32_t line_bytes = 64;
  uint32_t associativity = 16;
};

/// Trace-driven set-associative LRU cache simulator.
///
/// Substitutes for the paper's PAPI hardware-counter measurements (Table 4):
/// samplers stream their count-matrix accesses through OnAccess and the
/// simulator reports the miss rate. Only relative rates between algorithms
/// are meaningful; the simulator models one level (L3) with true LRU.
class CacheSim : public MemoryTracer {
 public:
  explicit CacheSim(const CacheConfig& config = CacheConfig());

  /// Simulates the access; multi-line accesses touch every covered line.
  void OnAccess(uintptr_t addr, uint32_t bytes, bool random,
                bool write) override;

  /// Direct single-line probe (exposed for unit tests).
  void Touch(uintptr_t addr);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t accesses() const { return hits_ + misses_; }
  double miss_rate() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(misses_) / accesses();
  }

  /// Clears contents and counters.
  void Reset();

  uint32_t num_sets() const { return num_sets_; }

 private:
  struct Way {
    uint64_t tag = 0;
    uint64_t last_use = 0;
    bool valid = false;
  };

  CacheConfig config_;
  uint32_t num_sets_;
  uint32_t line_shift_;
  std::vector<Way> ways_;  // num_sets_ * associativity, set-major
  uint64_t clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace warplda

#endif  // WARPLDA_CACHESIM_CACHE_SIM_H_

#ifndef WARPLDA_CACHESIM_ACCESS_STATS_H_
#define WARPLDA_CACHESIM_ACCESS_STATS_H_

#include <cstdint>
#include <unordered_set>

#include "cachesim/tracer.h"

namespace warplda {

/// Counting tracer behind Table 2: tallies sequential vs random accesses and
/// measures the size of the randomly accessed memory region per scope
/// (per document or per word, depending on the sampler's visiting order).
class AccessStats : public MemoryTracer {
 public:
  void OnAccess(uintptr_t addr, uint32_t bytes, bool random,
                bool write) override {
    (void)write;
    if (random) {
      ++random_accesses_;
      // Track distinct 64B lines touched randomly within the current scope.
      uintptr_t first = addr >> 6;
      uintptr_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) >> 6;
      for (uintptr_t line = first; line <= last; ++line) {
        scope_lines_.insert(line);
      }
    } else {
      ++sequential_accesses_;
    }
  }

  void OnScopeEnd() override {
    ++scopes_;
    total_scope_lines_ += scope_lines_.size();
    if (scope_lines_.size() > max_scope_lines_) {
      max_scope_lines_ = scope_lines_.size();
    }
    scope_lines_.clear();
  }

  uint64_t random_accesses() const { return random_accesses_; }
  uint64_t sequential_accesses() const { return sequential_accesses_; }
  uint64_t scopes() const { return scopes_; }

  /// Mean bytes of randomly accessed memory per document/word scope.
  double mean_random_bytes_per_scope() const {
    return scopes_ == 0 ? 0.0
                        : 64.0 * static_cast<double>(total_scope_lines_) /
                              static_cast<double>(scopes_);
  }

  /// Peak bytes of randomly accessed memory in any single scope.
  uint64_t max_random_bytes_per_scope() const { return 64 * max_scope_lines_; }

  void Reset() {
    random_accesses_ = 0;
    sequential_accesses_ = 0;
    scopes_ = 0;
    total_scope_lines_ = 0;
    max_scope_lines_ = 0;
    scope_lines_.clear();
  }

 private:
  uint64_t random_accesses_ = 0;
  uint64_t sequential_accesses_ = 0;
  uint64_t scopes_ = 0;
  uint64_t total_scope_lines_ = 0;
  uint64_t max_scope_lines_ = 0;
  std::unordered_set<uintptr_t> scope_lines_;
};

}  // namespace warplda

#endif  // WARPLDA_CACHESIM_ACCESS_STATS_H_

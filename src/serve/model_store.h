#ifndef WARPLDA_SERVE_MODEL_STORE_H_
#define WARPLDA_SERVE_MODEL_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "corpus/corpus.h"
#include "eval/topic_model.h"
#include "util/alias_table.h"

namespace warplda::serve {

/// Immutable, fully prebuilt serving view of a TopicModel.
///
/// Everything the inference hot path reads — dense φ̂ rows, the per-word
/// proposal alias tables, and the per-topic denominators C_k+β̄ — is built
/// eagerly at construction (publish) time, so the first request against a
/// fresh snapshot pays no lazy-materialization spike and all state is
/// read-only afterwards, shareable across any number of worker threads
/// without locks.
///
/// Construction cost is O(V·K); serving reads are O(1) per access, including
/// the word-proposal density q_word(k) = C_wk+β, which the lazy Inferencer
/// had to recover with an O(nnz) sparse-row scan.
class ModelSnapshot {
 public:
  /// Builds the snapshot from `model` (kept alive via the shared_ptr).
  /// Prefer ModelStore::Publish, which assigns the version automatically
  /// at swap time.
  explicit ModelSnapshot(std::shared_ptr<const TopicModel> model,
                         uint64_t version = 0);

  const TopicModel& model() const { return *model_; }
  const std::shared_ptr<const TopicModel>& model_ptr() const { return model_; }

  /// Monotonic publish counter (1 = first model published to the store).
  uint64_t version() const { return version_; }

  uint32_t num_topics() const { return num_topics_; }
  WordId num_words() const { return num_words_; }
  double alpha() const { return model_->alpha(); }
  double beta() const { return model_->beta(); }

  /// φ̂_wk, dense O(1) lookup.
  double Phi(WordId w, TopicId k) const {
    return phi_[static_cast<size_t>(w) * num_topics_ + k];
  }

  /// Word-proposal density q_word(k) ∝ C_wk + β, recovered from φ̂ as
  /// φ̂_wk·(C_k+β̄) — O(1), no sparse-row scan.
  double QWord(WordId w, TopicId k) const {
    return Phi(w, k) * topic_denom_[k];
  }

  /// Prebuilt alias table over the count mass of q_word for word w.
  const AliasTable& word_alias(WordId w) const { return word_alias_[w]; }

  /// Probability that a word proposal comes from the count mass (alias
  /// branch) rather than the uniform β branch.
  double word_count_prob(WordId w) const { return word_count_prob_[w]; }

 private:
  friend class ModelStore;  // stamps version_ pre-swap, before any reader

  std::shared_ptr<const TopicModel> model_;
  uint64_t version_ = 0;
  uint32_t num_topics_ = 0;
  WordId num_words_ = 0;
  std::vector<double> phi_;          // V×K dense φ̂
  std::vector<double> topic_denom_;  // C_k + β̄ per topic
  std::vector<AliasTable> word_alias_;
  std::vector<double> word_count_prob_;
};

/// Publishes immutable model snapshots to concurrent readers RCU-style.
///
/// Publish() builds a ModelSnapshot (paying the eager prebuild cost on the
/// publisher's thread, outside any lock) and swaps it in atomically;
/// Current() hands out a shared_ptr copy. Readers holding the previous
/// snapshot keep it alive through their shared_ptr — a hot swap never
/// invalidates an in-flight request, and the old snapshot is freed when the
/// last reader drops it.
///
/// The swap itself is a shared_ptr exchange under a micro-lock rather than
/// std::atomic<shared_ptr> (whose libstdc++ lock-bit implementation is
/// opaque to ThreadSanitizer). Readers touch the lock once per micro-batch,
/// never per request, so it is invisible in serving profiles.
///
/// This is the bridge between training and serving: a WarpLdaSampler or
/// StreamingWarpLda running on another thread can ExportModel() and Publish()
/// mid-training while an InferenceServer keeps answering from the store.
class ModelStore {
 public:
  ModelStore() = default;
  ModelStore(const ModelStore&) = delete;
  ModelStore& operator=(const ModelStore&) = delete;

  /// Builds a snapshot of `model` (outside any lock) and atomically makes it
  /// current. Returns the published snapshot. Thread-safe against readers and
  /// concurrent publishers: versions are assigned at swap time, so the last
  /// swap to land carries the highest version and version()/Current() always
  /// agree (version() > 0 implies Current() != nullptr).
  std::shared_ptr<const ModelSnapshot> Publish(
      std::shared_ptr<const TopicModel> model);

  /// Convenience overload that takes ownership of a model by value.
  std::shared_ptr<const ModelSnapshot> Publish(TopicModel model) {
    return Publish(std::make_shared<const TopicModel>(std::move(model)));
  }

  /// The latest published snapshot, or nullptr before the first Publish().
  std::shared_ptr<const ModelSnapshot> Current() const {
    std::lock_guard<std::mutex> lock(swap_mutex_);
    return current_;
  }

  /// Number of models published so far (0 before the first Publish()).
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<uint64_t> version_{0};
  mutable std::mutex swap_mutex_;
  std::shared_ptr<const ModelSnapshot> current_;
};

}  // namespace warplda::serve

#endif  // WARPLDA_SERVE_MODEL_STORE_H_

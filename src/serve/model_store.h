#ifndef WARPLDA_SERVE_MODEL_STORE_H_
#define WARPLDA_SERVE_MODEL_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/inference.h"
#include "corpus/corpus.h"
#include "eval/topic_model.h"
#include "obs/metrics.h"
#include "util/alias_table.h"

namespace warplda::serve {

/// Memory layout of a ModelSnapshot's φ̂ / q_word state.
enum class SnapshotLayout {
  /// Tiered sparse (default): one shared per-topic β-floor row — O(K) —
  /// plus per-word corrections in a flat CSR-style arena, O(total nnz).
  /// Snapshot memory is O(K + nnz) instead of O(V·K), and an incremental
  /// publish (PublishDelta) can share unchanged words' spans with the
  /// previous snapshot.
  kSparseTiered,
  /// Dense V×K φ̂ (the original eager-prebuild layout). Kept as the
  /// bit-identity reference for the sparse path and for tiny-vocabulary
  /// models where arena bookkeeping outweighs the dense row cost.
  kDense,
};

/// Immutable, fully prebuilt serving view of a TopicModel.
///
/// Everything the inference hot path reads — φ̂, the per-word proposal alias
/// tables, and the per-topic denominators C_k+β̄ — is built eagerly at
/// construction (publish) time, so the first request against a fresh
/// snapshot pays no lazy-materialization spike and all state is read-only
/// afterwards, shareable across any number of worker threads without locks.
///
/// Two layouts produce bit-identical reads (asserted by
/// serve_snapshot_test):
///
///  * kSparseTiered — φ̂_wk is resolved as a two-tier lookup: a shared
///    per-topic floor β/(C_k+β̄) (all V words share these K doubles) plus a
///    per-word sparse correction span holding (topic, C_wk+β) for the
///    word's nnz topics only. Spans for all words live back to back in one
///    flat arena (SoA: a topic-id array and a parallel value array), so
///    there is no per-word vector header or allocator fragmentation and a
///    row's correction list occupies consecutive cache lines. Phi/QWord
///    binary-search the span (len ≤ nnz(w), typically a handful of
///    entries); the word-proposal alias branch — the common case of the
///    serving hot path — samples a prebuilt table and never touches the
///    floor at all.
///  * kDense — the flat V×K φ̂ arena (DensePhiTable), O(1) array reads.
///
/// Construction cost is O(K + nnz) for the sparse layout (O(V·K) dense);
/// the delta constructor drops that to O(K + V + Δnnz) by sharing unchanged
/// words' spans and alias tables with the previous snapshot via the arena
/// shared_ptrs.
class ModelSnapshot {
 public:
  /// Builds the snapshot from `model` (kept alive via the shared_ptr).
  /// Prefer ModelStore::Publish, which assigns the version automatically
  /// at swap time.
  explicit ModelSnapshot(std::shared_ptr<const TopicModel> model,
                         uint64_t version = 0,
                         SnapshotLayout layout = SnapshotLayout::kSparseTiered);

  /// Incremental (delta) build: words not listed in `changed_words` reuse
  /// `base`'s correction spans, alias tables, and count-branch
  /// probabilities — shared, not copied, via the arena shared_ptrs — and
  /// only the listed rows are rebuilt from `model`, into one fresh arena
  /// appended to the chain. The per-topic tier (floor, denominators) is
  /// always rebuilt: it is O(K). `base` must use the sparse layout and
  /// agree with `model` on num_words/num_topics/β; the caller
  /// (ModelStore::PublishDelta) enforces this and guarantees that every
  /// word outside `changed_words` has an identical sparse row in `model`
  /// and in base.model(). Out-of-range ids in `changed_words` are ignored;
  /// duplicates are fine.
  ModelSnapshot(std::shared_ptr<const TopicModel> model,
                const ModelSnapshot& base,
                std::span<const WordId> changed_words, uint64_t version = 0);

  const TopicModel& model() const { return *model_; }
  const std::shared_ptr<const TopicModel>& model_ptr() const { return model_; }

  /// Monotonic publish counter (1 = first model published to the store).
  uint64_t version() const { return version_; }

  SnapshotLayout layout() const { return layout_; }

  uint32_t num_topics() const { return num_topics_; }
  WordId num_words() const { return num_words_; }
  double alpha() const { return model_->alpha(); }
  double beta() const { return model_->beta(); }

  /// φ̂_wk. Dense: one array read. Sparse: binary search of word w's
  /// correction span (hit → (C_wk+β)/(C_k+β̄), miss → the shared β-floor).
  /// Bit-identical across layouts: both evaluate the same IEEE expressions
  /// on the same operands.
  double Phi(WordId w, TopicId k) const {
    if (layout_ == SnapshotLayout::kDense) return dense_.row(w)[k];
    const Span& span = spans_[w];
    const uint32_t idx = FindTopic(span, k);
    if (idx != kNotFound) return span.values[idx] / topic_denom_[k];
    return floor_[k];
  }

  /// Word-proposal density q_word(k) ∝ C_wk + β, recovered from φ̂ as
  /// φ̂_wk·(C_k+β̄) — no sparse-row scan over the model.
  double QWord(WordId w, TopicId k) const {
    return Phi(w, k) * topic_denom_[k];
  }

  /// Prebuilt alias table over the count mass of q_word for word w. The
  /// serving hot path's common case: sampling it never touches φ̂ at all.
  const AliasTable& word_alias(WordId w) const { return *word_alias_ptr_[w]; }

  /// Probability that a word proposal comes from the count mass (alias
  /// branch) rather than the uniform β branch.
  double word_count_prob(WordId w) const { return word_count_prob_[w]; }

  /// Number of correction arenas this snapshot references: 1 after a full
  /// build, +1 per delta build on top. ModelStore compacts (full rebuild)
  /// when the chain exceeds its max_arena_chain option.
  size_t arena_chain() const { return arenas_.size(); }

  /// Approximate heap footprint of the serving state, in bytes: φ̂ storage
  /// (arena or dense), span/alias/probability tables, and alias bins.
  /// Arenas shared with other snapshots are counted in full here — this is
  /// "bytes kept alive by holding this snapshot", the number that matters
  /// for the two-snapshots-during-hot-swap window. Excludes the TopicModel.
  size_t ApproxBytes() const;

 private:
  friend class ModelStore;  // stamps version_ pre-swap, before any reader

  /// One publish's freshly built correction rows, immutable once the
  /// snapshot constructor returns. Snapshots reference spans by raw pointer
  /// and keep the owning arena alive through arenas_; a delta snapshot
  /// therefore shares its base's rows without copying a byte of them.
  struct CorrectionArena {
    std::vector<TopicId> topics;  // concatenated per-word ascending topics
    std::vector<double> values;   // parallel to topics: C_wk + β
    std::vector<AliasTable> alias;  // one per word (re)built in this arena
    size_t MemoryBytes() const;
  };

  /// Word w's correction run inside some arena (SoA view).
  struct Span {
    const TopicId* topics = nullptr;
    const double* values = nullptr;
    uint32_t len = 0;
  };

  static constexpr uint32_t kNotFound = ~0u;

  /// Index of topic k in the span's ascending topic array, or kNotFound.
  /// Linear scan for short spans (one or two cache lines), binary search
  /// beyond — correction rows of trained models are typically tiny.
  static uint32_t FindTopic(const Span& span, TopicId k) {
    if (span.len <= 16) {
      for (uint32_t i = 0; i < span.len && span.topics[i] <= k; ++i) {
        if (span.topics[i] == k) return i;
      }
      return kNotFound;
    }
    uint32_t lo = 0;
    uint32_t hi = span.len;
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      if (span.topics[mid] < k) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < span.len && span.topics[lo] == k ? lo : kNotFound;
  }

  /// Rebuilds the O(K) per-topic tier: C_k+β̄ (both layouts) and the shared
  /// β-floor row (sparse layout).
  void BuildTopicTier();
  /// Appends the listed words' correction rows + alias tables to a fresh
  /// arena and points spans_/word_alias_ptr_/word_count_prob_ at it.
  void BuildArenaRows(std::span<const WordId> words);

  std::shared_ptr<const TopicModel> model_;
  uint64_t version_ = 0;
  SnapshotLayout layout_ = SnapshotLayout::kSparseTiered;
  uint32_t num_topics_ = 0;
  WordId num_words_ = 0;

  std::vector<double> topic_denom_;  // C_k + β̄ per topic (both layouts)

  // Sparse tier state.
  std::vector<double> floor_;  // shared β-floor row: β/(C_k+β̄) per topic
  std::vector<Span> spans_;    // per word: correction run in some arena
  std::vector<std::shared_ptr<const CorrectionArena>> arenas_;

  // Per-word proposal state, valid for both layouts (dense points into
  // dense_'s alias storage).
  std::vector<const AliasTable*> word_alias_ptr_;
  std::vector<double> word_count_prob_;

  DensePhiTable dense_;  // kDense only
};

/// Durable-checkpoint retention policy (ModelStore::CheckpointTo).
struct CheckpointOptions {
  /// When > 0, CheckpointTo prunes superseded chain files after each
  /// successful write: files older than the active chain (the newest base
  /// plus its deltas) are deleted oldest-first until at most this many
  /// model-*.base/.delta files remain in the directory. The active chain is
  /// never pruned, even when it alone exceeds the cap — restorability wins
  /// over the byte budget. 0 (default) keeps every file forever, the
  /// pre-retention behavior.
  uint32_t max_chain_len = 0;
};

/// Tuning knobs for ModelStore.
struct ModelStoreOptions {
  SnapshotLayout layout = SnapshotLayout::kSparseTiered;
  /// Every PublishDelta appends one arena to the snapshot's chain while the
  /// superseded rows in older arenas stay alive (they are shared storage).
  /// Once the chain reaches this length, the next PublishDelta compacts by
  /// doing a full rebuild into a single arena, bounding the shared_ptr
  /// fan-out and — together with max_delta_fraction, which caps how much
  /// superseded data any one delta can strand — the garbage fraction.
  uint32_t max_arena_chain = 16;
  /// A delta listing more than this fraction of the vocabulary is not
  /// meaningfully cheaper than a full rebuild, but would strand a
  /// near-model-sized generation of superseded rows in the chain; such
  /// publishes fall back to a full (compacting) Publish instead. 1.0
  /// disables the fallback.
  double max_delta_fraction = 0.25;
  /// On-disk retention for CheckpointTo's chain files.
  CheckpointOptions checkpoint;
};

/// Publishes immutable model snapshots to concurrent readers RCU-style.
///
/// Publish() builds a ModelSnapshot (paying the eager prebuild cost on the
/// publisher's thread, outside any lock) and swaps it in atomically;
/// Current() hands out a shared_ptr copy. Readers holding the previous
/// snapshot keep it alive through their shared_ptr — a hot swap never
/// invalidates an in-flight request, and the old snapshot is freed when the
/// last reader drops it.
///
/// PublishDelta() is the steady-state republish path: given the new model
/// and the set of words whose rows changed since the previous publish, it
/// rebuilds only those rows — everything else is shared with the previous
/// snapshot — so its cost is O(Δnnz + K + V·(pointer copy)) instead of the
/// full O(nnz + K) rebuild, and the transient two-snapshots-resident window
/// of a hot swap costs Δ, not 2× the model. Trainers obtain the changed set
/// from WarpLdaSampler/StreamingWarpLda::ExportSharedModel(&changed).
///
/// The swap itself is a shared_ptr exchange under a micro-lock rather than
/// std::atomic<shared_ptr> (whose libstdc++ lock-bit implementation is
/// opaque to ThreadSanitizer). Readers touch the lock once per micro-batch,
/// never per request, so it is invisible in serving profiles.
///
/// This is the bridge between training and serving: a WarpLdaSampler or
/// StreamingWarpLda running on another thread can ExportSharedModel() and
/// Publish()/PublishDelta() mid-training while an InferenceServer keeps
/// answering from the store.
class ModelStore {
 public:
  ModelStore() : ModelStore(ModelStoreOptions{}) {}
  explicit ModelStore(const ModelStoreOptions& options);
  ModelStore(const ModelStore&) = delete;
  ModelStore& operator=(const ModelStore&) = delete;

  /// Builds a full snapshot of `model` (outside any lock) and atomically
  /// makes it current. Returns the published snapshot. Thread-safe against
  /// readers and concurrent publishers: versions are assigned at swap time,
  /// so the last swap to land carries the highest version and
  /// version()/Current() always agree (version() > 0 implies
  /// Current() != nullptr).
  std::shared_ptr<const ModelSnapshot> Publish(
      std::shared_ptr<const TopicModel> model);

  /// Convenience overload that takes ownership of a model by value.
  std::shared_ptr<const ModelSnapshot> Publish(TopicModel model) {
    return Publish(std::make_shared<const TopicModel>(std::move(model)));
  }

  /// Incremental publish: like Publish(model), but rebuilds only
  /// `changed_words`, sharing every other word's serving state with the
  /// current snapshot. The caller guarantees that words outside
  /// `changed_words` have identical sparse rows in `model` and in the
  /// currently published model — ExportSharedModel(&changed) on the
  /// trainers produces exactly this pair.
  ///
  /// Falls back to a full Publish (same return contract) whenever a delta
  /// is not applicable: no current snapshot, dense layout, model shape or β
  /// mismatch, arena chain at max_arena_chain (compaction), an oversized
  /// delta (more than max_delta_fraction of the vocabulary), or a
  /// concurrent publisher swapped the base out mid-build. Intended for a
  /// single publisher; racing delta publishers are safe but degrade to
  /// full rebuilds.
  std::shared_ptr<const ModelSnapshot> PublishDelta(
      std::shared_ptr<const TopicModel> model,
      std::span<const WordId> changed_words);

  /// Delta-aware durability (core/checkpoint.h frame format, atomic
  /// temp+fsync+rename writes). Persists the currently published model into
  /// `dir`: the first call (per store, per directory) writes the full model
  /// as `model-<version>.base`; each later call writes only the rows that
  /// changed since the previous checkpoint as `model-<version>.delta`
  /// chained onto it — the on-disk mirror of PublishDelta's arena sharing,
  /// so steady-state checkpoints cost O(Δnnz + K) bytes, not O(nnz). The
  /// same compaction policy as the in-memory chain applies: a fresh base is
  /// written when the chain reaches max_arena_chain, when the delta would
  /// exceed max_delta_fraction of the vocabulary, or when the model shape
  /// changed. Calling again at an unchanged version is a no-op. Returns
  /// false and fills *error when nothing is published or a write fails (the
  /// previous checkpoint files stay intact).
  bool CheckpointTo(const std::string& dir, std::string* error);

  /// Restores the newest checkpointed model from `dir`: loads the highest-
  /// version base file, replays every subsequent delta in version order
  /// (validating chain continuity via each delta's recorded predecessor),
  /// rebuilds the live snapshot, and publishes it with the checkpointed
  /// version — store.version() continues where the checkpointing process
  /// left off. Also primes the delta-checkpoint state, so a restored
  /// trainer's next CheckpointTo(dir) extends the existing chain. Fails
  /// (false + *error) on a missing/corrupt/broken chain or when this store
  /// has already published at or past the checkpointed version; the store
  /// is left unchanged on failure.
  bool RestoreFrom(const std::string& dir, std::string* error);

  /// The latest published snapshot, or nullptr before the first Publish().
  std::shared_ptr<const ModelSnapshot> Current() const {
    std::lock_guard<std::mutex> lock(swap_mutex_);
    return current_;
  }

  /// Number of models published so far (0 before the first Publish()).
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  const ModelStoreOptions& options() const { return options_; }

 private:
  /// Stamps the version and swaps `snapshot` in. If `expected_base` is
  /// non-null the swap only happens while it is still current; returns
  /// false otherwise (the delta was built against a superseded base).
  bool Swap(const std::shared_ptr<ModelSnapshot>& snapshot,
            const ModelSnapshot* expected_base);

  ModelStoreOptions options_;
  std::atomic<uint64_t> version_{0};
  mutable std::mutex swap_mutex_;
  std::shared_ptr<const ModelSnapshot> current_;

  /// Delta-checkpoint bookkeeping (guarded by ckpt_mutex_; lock order is
  /// ckpt_mutex_ → swap_mutex_ — CheckpointTo reads Current() while holding
  /// ckpt_mutex_, and nothing acquires them in the reverse order): the last
  /// model written to ckpt_dir_, its version, and the current on-disk chain
  /// length (1 = base only).
  mutable std::mutex ckpt_mutex_;
  std::string ckpt_dir_;
  std::shared_ptr<const TopicModel> ckpt_model_;
  uint64_t ckpt_version_ = 0;
  uint32_t ckpt_chain_ = 0;

  /// Deletes superseded chain files in ckpt_dir_ per options_.checkpoint and
  /// refreshes the chain gauges. Called under ckpt_mutex_ after a successful
  /// write or restore; prune failures are ignored (retention is best-effort,
  /// the chain itself is already durable).
  void PruneChainLocked();

  /// Serving-side instruments, registered for the store's lifetime (names
  /// store_*, auto-suffixed when several stores coexist). Recorded
  /// unconditionally, like the InferenceServer's — publish latency and chain
  /// depth are serving health signals, not training hot-path cost.
  obs::Histogram publish_us_;
  obs::Histogram publish_delta_us_;
  obs::Gauge arena_chain_;       ///< arena chain length of the newest publish
  obs::Gauge ckpt_chain_bytes_;  ///< bytes of model-* files in ckpt_dir_
  obs::Gauge ckpt_chain_files_;  ///< count of model-* files in ckpt_dir_
  obs::MetricsRegistry::Registration publish_reg_;
  obs::MetricsRegistry::Registration publish_delta_reg_;
  obs::MetricsRegistry::Registration arena_chain_reg_;
  obs::MetricsRegistry::Registration ckpt_bytes_reg_;
  obs::MetricsRegistry::Registration ckpt_files_reg_;
};

}  // namespace warplda::serve

#endif  // WARPLDA_SERVE_MODEL_STORE_H_

#ifndef WARPLDA_SERVE_SERVER_H_
#define WARPLDA_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/inference.h"
#include "corpus/corpus.h"
#include "obs/metrics.h"
#include "serve/model_store.h"

namespace warplda::serve {

/// Tuning knobs for InferenceServer.
struct ServerOptions {
  uint32_t num_workers = 4;      ///< inference worker threads
  uint32_t queue_capacity = 1024;  ///< bounded request queue (backpressure)
  /// Requests a worker claims per queue pass. Batching amortizes the queue
  /// lock and — mirroring the paper's cache-locality discipline — keeps one
  /// snapshot's φ̂ rows and alias tables warm in cache across the batch
  /// instead of re-fetching them per request.
  uint32_t max_batch = 8;
  /// MH sweep parameters shared by all requests; `inference.seed` is only a
  /// default for Submit calls that do not pass their own.
  InferenceOptions inference;
};

/// Outcome of one inference request.
struct InferenceResult {
  std::vector<double> theta;    ///< θ̂, length K, sums to 1
  TopicId top_topic = 0;        ///< argmax of theta
  uint64_t model_version = 0;   ///< snapshot version that served the request
  double queue_micros = 0.0;    ///< time spent waiting in the queue
  double infer_micros = 0.0;    ///< time spent sampling
};

/// Point-in-time serving metrics — a thin view over the server's obs
/// instruments (the same histograms the /metrics snapshot renders, so the
/// two can never disagree).
struct ServerStats {
  uint64_t submitted = 0;   ///< accepted into the queue
  uint64_t rejected = 0;    ///< shed by TrySubmit on a full queue
  uint64_t completed = 0;
  uint64_t failed = 0;      ///< futures resolved with an exception
  double qps = 0.0;             ///< completed / seconds since first submit
  /// End-to-end latency percentiles, read from the server's fixed-bucket
  /// latency histogram: O(buckets) per Stats() call regardless of uptime,
  /// bucket-interpolated (not exact order statistics).
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  double mean_batch = 0.0;      ///< average requests claimed per worker pass
};

/// Concurrent topic-inference service over a ModelStore.
///
/// Worker threads claim up to `max_batch` queued requests at a time, load the
/// store's current snapshot once per batch, and answer every request in the
/// batch against that one immutable snapshot via SharedInferenceEngine. A
/// Publish() to the store lands between batches: in-flight requests finish on
/// the snapshot they started with (kept alive by shared_ptr), later batches
/// see the new model — hot swap with zero downtime and no torn reads.
///
/// The queue is bounded: Submit() blocks when full (backpressure), TrySubmit()
/// returns false instead (load shedding). Results are pure functions of
/// (snapshot, words, options, seed), so a fixed per-request seed gives the
/// same θ̂ regardless of worker count or scheduling.
class InferenceServer {
 public:
  /// Starts `options.num_workers` threads immediately. The store (typically
  /// shared with a training thread that publishes into it) must outlive the
  /// server. At least one model must be published before results resolve;
  /// requests submitted earlier wait in the queue.
  explicit InferenceServer(const ModelStore& store,
                           const ServerOptions& options = {});

  /// Stops accepting, drains the queue, joins the workers.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues a document; blocks while the queue is full (backpressure).
  /// The future resolves when a worker has sampled θ̂. Returns an already-
  /// failed future after Shutdown().
  std::future<InferenceResult> Submit(std::vector<WordId> words,
                                      uint64_t seed);
  std::future<InferenceResult> Submit(std::vector<WordId> words) {
    return Submit(std::move(words), options_.inference.seed);
  }

  /// Non-blocking variant: returns false (and leaves *result untouched)
  /// when the queue is full — the caller sheds load instead of waiting.
  bool TrySubmit(std::vector<WordId> words, uint64_t seed,
                 std::future<InferenceResult>* result);

  /// Blocks until every accepted request has completed.
  void Drain();

  /// Stops accepting new requests, drains, joins the workers. Idempotent
  /// and safe to call concurrently (callers serialize); also run by the
  /// destructor.
  void Shutdown();

  /// Snapshot of the serving counters. Thread-safe.
  ServerStats Stats() const;

  const ServerOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    std::vector<WordId> words;
    uint64_t seed = 0;
    Clock::time_point enqueued;
    std::promise<InferenceResult> promise;
  };

  void WorkerLoop();
  std::future<InferenceResult> Enqueue(std::vector<WordId> words,
                                       uint64_t seed,
                                       std::unique_lock<std::mutex> lock);

  const ModelStore& store_;
  ServerOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable drained_;
  std::deque<Request> queue_;
  uint32_t in_flight_ = 0;
  bool stopping_ = false;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<bool> started_{false};
  Clock::time_point first_submit_;

  /// Serving instruments, owned by the server and registered with the global
  /// registry for the server's lifetime (names serve_*, auto-suffixed when
  /// several servers coexist). Recording is lock-free and unconditional —
  /// Stats() correctness does not depend on the obs enabled toggle.
  obs::Histogram queue_wait_us_;  ///< enqueue → batch claim
  obs::Histogram infer_us_;       ///< per-request sampling time
  obs::Histogram request_us_;     ///< end-to-end (enqueue → resolved)
  obs::Histogram batch_size_;     ///< requests claimed per worker pass
  obs::MetricsRegistry::Registration queue_wait_reg_;
  obs::MetricsRegistry::Registration infer_reg_;
  obs::MetricsRegistry::Registration request_reg_;
  obs::MetricsRegistry::Registration batch_size_reg_;

  std::mutex shutdown_mutex_;  // serializes Shutdown() callers
  std::vector<std::thread> workers_;
};

}  // namespace warplda::serve

#endif  // WARPLDA_SERVE_SERVER_H_

#include "serve/engine.h"

#include <algorithm>

#include "core/mh_sweep.h"
#include "util/rng.h"

namespace warplda::serve {

namespace {

/// Adapts the immutable snapshot to the MhInferTheta ModelView contract.
/// Everything is prebuilt, so Warm() is a no-op. Reads are O(1) on the dense
/// layout and floor + short-span search on the tiered sparse layout; the
/// alias branch of the word proposal (the hot common case) is O(1) on both
/// and never touches φ̂. The two layouts return bit-identical values, so the
/// engine's pure-function contract is layout-independent.
struct SnapshotView {
  const ModelSnapshot& snap;

  uint32_t num_topics() const { return snap.num_topics(); }
  WordId num_words() const { return snap.num_words(); }
  double alpha() const { return snap.alpha(); }
  void Warm(WordId) const {}
  double Phi(WordId w, TopicId k) const { return snap.Phi(w, k); }
  double QWord(WordId w, TopicId k) const { return snap.QWord(w, k); }
  double word_count_prob(WordId w) const { return snap.word_count_prob(w); }
  const AliasTable& word_alias(WordId w) const { return snap.word_alias(w); }
};

}  // namespace

SharedInferenceEngine::SharedInferenceEngine(
    std::shared_ptr<const ModelSnapshot> snapshot,
    const InferenceOptions& options)
    : snapshot_(std::move(snapshot)), options_(options) {}

std::vector<double> SharedInferenceEngine::InferTheta(
    std::span<const WordId> words, uint64_t seed) const {
  SnapshotView view{*snapshot_};
  Rng rng(seed);
  return MhInferTheta(view, words, options_, rng);
}

TopicId SharedInferenceEngine::MostLikelyTopic(std::span<const WordId> words,
                                               uint64_t seed) const {
  auto theta = InferTheta(words, seed);
  return static_cast<TopicId>(std::max_element(theta.begin(), theta.end()) -
                              theta.begin());
}

}  // namespace warplda::serve

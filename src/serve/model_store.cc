#include "serve/model_store.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/mh_sweep.h"

namespace warplda::serve {

size_t ModelSnapshot::CorrectionArena::MemoryBytes() const {
  size_t bytes = sizeof(*this) + topics.capacity() * sizeof(TopicId) +
                 values.capacity() * sizeof(double) +
                 alias.capacity() * sizeof(AliasTable);
  for (const AliasTable& table : alias) bytes += table.HeapBytes();
  return bytes;
}

ModelSnapshot::ModelSnapshot(std::shared_ptr<const TopicModel> model,
                             uint64_t version, SnapshotLayout layout)
    : model_(std::move(model)),
      version_(version),
      layout_(layout),
      num_topics_(model_->num_topics()),
      num_words_(model_->num_words()) {
  BuildTopicTier();
  if (layout_ == SnapshotLayout::kDense) {
    // Dense φ̂ rows and q_word proposals via the same flat-arena builder the
    // lazy Inferencer uses (DensePhiTable), so smoothing cannot drift.
    dense_.Reset(num_words_, num_topics_);
    dense_.BuildAll(*model_, model_->beta() * num_words_);
    word_alias_ptr_.assign(num_words_, nullptr);
    word_count_prob_.assign(num_words_, 0.0);
    for (WordId w = 0; w < num_words_; ++w) {
      word_alias_ptr_[w] = &dense_.alias(w);
      word_count_prob_[w] = dense_.count_prob(w);
    }
    return;
  }
  spans_.assign(num_words_, Span());
  word_alias_ptr_.assign(num_words_, nullptr);
  word_count_prob_.assign(num_words_, 0.0);
  std::vector<WordId> all_words(num_words_);
  std::iota(all_words.begin(), all_words.end(), 0);
  BuildArenaRows(all_words);
}

ModelSnapshot::ModelSnapshot(std::shared_ptr<const TopicModel> model,
                             const ModelSnapshot& base,
                             std::span<const WordId> changed_words,
                             uint64_t version)
    : model_(std::move(model)),
      version_(version),
      layout_(SnapshotLayout::kSparseTiered),
      num_topics_(model_->num_topics()),
      num_words_(model_->num_words()) {
  // The O(K) tier is always fresh; everything per-word starts as a shared
  // reference to the base snapshot's state and only the changed rows are
  // repointed at the new arena below.
  BuildTopicTier();
  spans_ = base.spans_;
  arenas_ = base.arenas_;
  word_alias_ptr_ = base.word_alias_ptr_;
  word_count_prob_ = base.word_count_prob_;

  std::vector<WordId> rebuilt(changed_words.begin(), changed_words.end());
  std::sort(rebuilt.begin(), rebuilt.end());
  rebuilt.erase(std::unique(rebuilt.begin(), rebuilt.end()), rebuilt.end());
  rebuilt.erase(
      std::partition_point(rebuilt.begin(), rebuilt.end(),
                           [this](WordId w) { return w < num_words_; }),
      rebuilt.end());
  BuildArenaRows(rebuilt);
}

void ModelSnapshot::BuildTopicTier() {
  const double beta = model_->beta();
  const double beta_bar = beta * num_words_;
  topic_denom_.resize(num_topics_);
  for (uint32_t k = 0; k < num_topics_; ++k) {
    topic_denom_[k] = model_->topic_counts()[k] + beta_bar;
  }
  if (layout_ == SnapshotLayout::kSparseTiered) {
    floor_.resize(num_topics_);
    for (uint32_t k = 0; k < num_topics_; ++k) {
      // Identical operands and operations as FillPhiRow's floor entries, so
      // the sparse lookup is bit-identical to the dense row.
      floor_[k] = beta / topic_denom_[k];
    }
  }
}

void ModelSnapshot::BuildArenaRows(std::span<const WordId> words) {
  // An empty delta (republish with nothing changed) shares everything with
  // the base and must not grow the arena chain.
  if (words.empty() && !arenas_.empty()) return;
  auto arena = std::make_shared<CorrectionArena>();
  size_t total_nnz = 0;
  for (WordId w : words) total_nnz += model_->word_topics(w).size();
  arena->topics.reserve(total_nnz);
  arena->values.reserve(total_nnz);
  arena->alias.resize(words.size());

  const double beta = model_->beta();
  std::vector<size_t> offsets;
  offsets.reserve(words.size());
  for (size_t i = 0; i < words.size(); ++i) {
    const WordId w = words[i];
    offsets.push_back(arena->topics.size());
    // TopicModel rows are sorted by topic, which is what FindTopic requires.
    for (const auto& [k, c] : model_->word_topics(w)) {
      arena->topics.push_back(k);
      arena->values.push_back(c + beta);  // same sum FillPhiRow forms
    }
    word_count_prob_[w] = BuildWordProposal(*model_, w, &arena->alias[i]);
  }

  // Pointers are taken only now, when no arena vector can move again.
  for (size_t i = 0; i < words.size(); ++i) {
    const WordId w = words[i];
    const size_t begin = offsets[i];
    const size_t end =
        i + 1 < words.size() ? offsets[i + 1] : arena->topics.size();
    spans_[w] = Span{arena->topics.data() + begin, arena->values.data() + begin,
                     static_cast<uint32_t>(end - begin)};
    word_alias_ptr_[w] = &arena->alias[i];
  }
  arenas_.push_back(std::move(arena));
}

size_t ModelSnapshot::ApproxBytes() const {
  size_t bytes = sizeof(*this) + topic_denom_.capacity() * sizeof(double) +
                 floor_.capacity() * sizeof(double) +
                 spans_.capacity() * sizeof(Span) +
                 word_alias_ptr_.capacity() * sizeof(const AliasTable*) +
                 word_count_prob_.capacity() * sizeof(double);
  for (const auto& arena : arenas_) bytes += arena->MemoryBytes();
  if (layout_ == SnapshotLayout::kDense) bytes += dense_.MemoryBytes();
  return bytes;
}

bool ModelStore::Swap(const std::shared_ptr<ModelSnapshot>& snapshot,
                      const ModelSnapshot* expected_base) {
  // The version is stamped at swap time — while the publisher still holds
  // the only reference — so the last swap to land carries the highest
  // version even when publishers race, and version() never runs ahead of
  // Current().
  std::lock_guard<std::mutex> lock(swap_mutex_);
  if (expected_base != nullptr && current_.get() != expected_base) {
    return false;
  }
  snapshot->version_ = version_.load(std::memory_order_relaxed) + 1;
  current_ = snapshot;
  version_.fetch_add(1, std::memory_order_release);
  return true;
}

std::shared_ptr<const ModelSnapshot> ModelStore::Publish(
    std::shared_ptr<const TopicModel> model) {
  // The O(nnz + K) (sparse) or O(V·K) (dense) prebuild happens outside the
  // lock; only the pointer swap is serialized.
  auto snapshot = std::make_shared<ModelSnapshot>(std::move(model),
                                                  /*version=*/0,
                                                  options_.layout);
  Swap(snapshot, /*expected_base=*/nullptr);
  return snapshot;
}

std::shared_ptr<const ModelSnapshot> ModelStore::PublishDelta(
    std::shared_ptr<const TopicModel> model,
    std::span<const WordId> changed_words) {
  const std::shared_ptr<const ModelSnapshot> base = Current();
  const bool delta_applicable =
      base != nullptr && options_.layout == SnapshotLayout::kSparseTiered &&
      base->layout() == SnapshotLayout::kSparseTiered &&
      base->num_words() == model->num_words() &&
      base->num_topics() == model->num_topics() &&
      base->beta() == model->beta() &&
      base->arena_chain() < options_.max_arena_chain &&
      // changed_words.size() may overcount (duplicates are allowed) — fine
      // for a heuristic whose only effect is choosing the compacting path.
      static_cast<double>(changed_words.size()) <=
          options_.max_delta_fraction * model->num_words();
  if (!delta_applicable) return Publish(std::move(model));

  auto snapshot = std::make_shared<ModelSnapshot>(model, *base, changed_words);
  if (Swap(snapshot, base.get())) return snapshot;
  // A concurrent publisher swapped the base out mid-build: the rows shared
  // from `base` may not match the published lineage anymore, so fall back
  // to a full rebuild against the authoritative model.
  return Publish(std::move(model));
}

}  // namespace warplda::serve

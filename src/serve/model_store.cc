#include "serve/model_store.h"

#include <utility>

#include "core/mh_sweep.h"

namespace warplda::serve {

ModelSnapshot::ModelSnapshot(std::shared_ptr<const TopicModel> model,
                             uint64_t version)
    : model_(std::move(model)),
      version_(version),
      num_topics_(model_->num_topics()),
      num_words_(model_->num_words()) {
  const double beta = model_->beta();
  const double beta_bar = beta * num_words_;

  topic_denom_.resize(num_topics_);
  for (uint32_t k = 0; k < num_topics_; ++k) {
    topic_denom_[k] = model_->topic_counts()[k] + beta_bar;
  }

  // Dense φ̂ rows and q_word proposals via the same builders the lazy
  // Inferencer caches use (core/mh_sweep.h), so smoothing cannot drift.
  phi_.assign(static_cast<size_t>(num_words_) * num_topics_, 0.0);
  word_alias_.resize(num_words_);
  word_count_prob_.assign(num_words_, 0.0);
  for (WordId w = 0; w < num_words_; ++w) {
    FillPhiRow(*model_, w, beta_bar,
               phi_.data() + static_cast<size_t>(w) * num_topics_);
    word_count_prob_[w] = BuildWordProposal(*model_, w, &word_alias_[w]);
  }
}

std::shared_ptr<const ModelSnapshot> ModelStore::Publish(
    std::shared_ptr<const TopicModel> model) {
  // The O(V·K) prebuild happens outside the lock; the version is stamped at
  // swap time — while this thread still holds the only reference — so the
  // last swap to land carries the highest version even when publishers race,
  // and version() never runs ahead of Current().
  auto snapshot = std::make_shared<ModelSnapshot>(std::move(model));
  std::lock_guard<std::mutex> lock(swap_mutex_);
  snapshot->version_ = version_.load(std::memory_order_relaxed) + 1;
  current_ = snapshot;
  version_.fetch_add(1, std::memory_order_release);
  return current_;
}

}  // namespace warplda::serve

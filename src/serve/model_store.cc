#include "serve/model_store.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <numeric>
#include <utility>

#include "core/mh_sweep.h"
#include "util/checkpoint_io.h"

namespace warplda::serve {

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ModelStore::ModelStore(const ModelStoreOptions& options) : options_(options) {
  auto& registry = obs::MetricsRegistry::Global();
  publish_reg_ = registry.RegisterHistogram(
      "store_publish_us", "Full snapshot prebuild + swap time", &publish_us_);
  publish_delta_reg_ = registry.RegisterHistogram(
      "store_publish_delta_us",
      "Incremental (delta) snapshot prebuild + swap time", &publish_delta_us_);
  arena_chain_reg_ = registry.RegisterGauge(
      "store_arena_chain",
      "Correction-arena chain length of the newest published snapshot",
      &arena_chain_);
  ckpt_bytes_reg_ = registry.RegisterGauge(
      "store_ckpt_chain_bytes",
      "Bytes of model-*.base/.delta checkpoint files on disk",
      &ckpt_chain_bytes_);
  ckpt_files_reg_ = registry.RegisterGauge(
      "store_ckpt_chain_files",
      "Count of model-*.base/.delta checkpoint files on disk",
      &ckpt_chain_files_);
}

size_t ModelSnapshot::CorrectionArena::MemoryBytes() const {
  size_t bytes = sizeof(*this) + topics.capacity() * sizeof(TopicId) +
                 values.capacity() * sizeof(double) +
                 alias.capacity() * sizeof(AliasTable);
  for (const AliasTable& table : alias) bytes += table.HeapBytes();
  return bytes;
}

ModelSnapshot::ModelSnapshot(std::shared_ptr<const TopicModel> model,
                             uint64_t version, SnapshotLayout layout)
    : model_(std::move(model)),
      version_(version),
      layout_(layout),
      num_topics_(model_->num_topics()),
      num_words_(model_->num_words()) {
  BuildTopicTier();
  if (layout_ == SnapshotLayout::kDense) {
    // Dense φ̂ rows and q_word proposals via the same flat-arena builder the
    // lazy Inferencer uses (DensePhiTable), so smoothing cannot drift.
    dense_.Reset(num_words_, num_topics_);
    dense_.BuildAll(*model_, model_->beta() * num_words_);
    word_alias_ptr_.assign(num_words_, nullptr);
    word_count_prob_.assign(num_words_, 0.0);
    for (WordId w = 0; w < num_words_; ++w) {
      word_alias_ptr_[w] = &dense_.alias(w);
      word_count_prob_[w] = dense_.count_prob(w);
    }
    return;
  }
  spans_.assign(num_words_, Span());
  word_alias_ptr_.assign(num_words_, nullptr);
  word_count_prob_.assign(num_words_, 0.0);
  std::vector<WordId> all_words(num_words_);
  std::iota(all_words.begin(), all_words.end(), 0);
  BuildArenaRows(all_words);
}

ModelSnapshot::ModelSnapshot(std::shared_ptr<const TopicModel> model,
                             const ModelSnapshot& base,
                             std::span<const WordId> changed_words,
                             uint64_t version)
    : model_(std::move(model)),
      version_(version),
      layout_(SnapshotLayout::kSparseTiered),
      num_topics_(model_->num_topics()),
      num_words_(model_->num_words()) {
  // The O(K) tier is always fresh; everything per-word starts as a shared
  // reference to the base snapshot's state and only the changed rows are
  // repointed at the new arena below.
  BuildTopicTier();
  spans_ = base.spans_;
  arenas_ = base.arenas_;
  word_alias_ptr_ = base.word_alias_ptr_;
  word_count_prob_ = base.word_count_prob_;

  std::vector<WordId> rebuilt(changed_words.begin(), changed_words.end());
  std::sort(rebuilt.begin(), rebuilt.end());
  rebuilt.erase(std::unique(rebuilt.begin(), rebuilt.end()), rebuilt.end());
  rebuilt.erase(
      std::partition_point(rebuilt.begin(), rebuilt.end(),
                           [this](WordId w) { return w < num_words_; }),
      rebuilt.end());
  BuildArenaRows(rebuilt);
}

void ModelSnapshot::BuildTopicTier() {
  const double beta = model_->beta();
  const double beta_bar = beta * num_words_;
  topic_denom_.resize(num_topics_);
  for (uint32_t k = 0; k < num_topics_; ++k) {
    topic_denom_[k] = model_->topic_counts()[k] + beta_bar;
  }
  if (layout_ == SnapshotLayout::kSparseTiered) {
    floor_.resize(num_topics_);
    for (uint32_t k = 0; k < num_topics_; ++k) {
      // Identical operands and operations as FillPhiRow's floor entries, so
      // the sparse lookup is bit-identical to the dense row.
      floor_[k] = beta / topic_denom_[k];
    }
  }
}

void ModelSnapshot::BuildArenaRows(std::span<const WordId> words) {
  // An empty delta (republish with nothing changed) shares everything with
  // the base and must not grow the arena chain.
  if (words.empty() && !arenas_.empty()) return;
  auto arena = std::make_shared<CorrectionArena>();
  size_t total_nnz = 0;
  for (WordId w : words) total_nnz += model_->word_topics(w).size();
  arena->topics.reserve(total_nnz);
  arena->values.reserve(total_nnz);
  arena->alias.resize(words.size());

  const double beta = model_->beta();
  std::vector<size_t> offsets;
  offsets.reserve(words.size());
  for (size_t i = 0; i < words.size(); ++i) {
    const WordId w = words[i];
    offsets.push_back(arena->topics.size());
    // TopicModel rows are sorted by topic, which is what FindTopic requires.
    for (const auto& [k, c] : model_->word_topics(w)) {
      arena->topics.push_back(k);
      arena->values.push_back(c + beta);  // same sum FillPhiRow forms
    }
    word_count_prob_[w] = BuildWordProposal(*model_, w, &arena->alias[i]);
  }

  // Pointers are taken only now, when no arena vector can move again.
  for (size_t i = 0; i < words.size(); ++i) {
    const WordId w = words[i];
    const size_t begin = offsets[i];
    const size_t end =
        i + 1 < words.size() ? offsets[i + 1] : arena->topics.size();
    spans_[w] = Span{arena->topics.data() + begin, arena->values.data() + begin,
                     static_cast<uint32_t>(end - begin)};
    word_alias_ptr_[w] = &arena->alias[i];
  }
  arenas_.push_back(std::move(arena));
}

size_t ModelSnapshot::ApproxBytes() const {
  size_t bytes = sizeof(*this) + topic_denom_.capacity() * sizeof(double) +
                 floor_.capacity() * sizeof(double) +
                 spans_.capacity() * sizeof(Span) +
                 word_alias_ptr_.capacity() * sizeof(const AliasTable*) +
                 word_count_prob_.capacity() * sizeof(double);
  for (const auto& arena : arenas_) bytes += arena->MemoryBytes();
  if (layout_ == SnapshotLayout::kDense) bytes += dense_.MemoryBytes();
  return bytes;
}

bool ModelStore::Swap(const std::shared_ptr<ModelSnapshot>& snapshot,
                      const ModelSnapshot* expected_base) {
  // The version is stamped at swap time — while the publisher still holds
  // the only reference — so the last swap to land carries the highest
  // version even when publishers race, and version() never runs ahead of
  // Current().
  std::lock_guard<std::mutex> lock(swap_mutex_);
  if (expected_base != nullptr && current_.get() != expected_base) {
    return false;
  }
  snapshot->version_ = version_.load(std::memory_order_relaxed) + 1;
  current_ = snapshot;
  version_.fetch_add(1, std::memory_order_release);
  return true;
}

std::shared_ptr<const ModelSnapshot> ModelStore::Publish(
    std::shared_ptr<const TopicModel> model) {
  // The O(nnz + K) (sparse) or O(V·K) (dense) prebuild happens outside the
  // lock; only the pointer swap is serialized.
  const int64_t start = NowUs();
  auto snapshot = std::make_shared<ModelSnapshot>(std::move(model),
                                                  /*version=*/0,
                                                  options_.layout);
  Swap(snapshot, /*expected_base=*/nullptr);
  publish_us_.Observe(static_cast<double>(NowUs() - start));
  arena_chain_.Set(static_cast<double>(snapshot->arena_chain()));
  return snapshot;
}

std::shared_ptr<const ModelSnapshot> ModelStore::PublishDelta(
    std::shared_ptr<const TopicModel> model,
    std::span<const WordId> changed_words) {
  const std::shared_ptr<const ModelSnapshot> base = Current();
  const bool delta_applicable =
      base != nullptr && options_.layout == SnapshotLayout::kSparseTiered &&
      base->layout() == SnapshotLayout::kSparseTiered &&
      base->num_words() == model->num_words() &&
      base->num_topics() == model->num_topics() &&
      base->beta() == model->beta() &&
      base->arena_chain() < options_.max_arena_chain &&
      // changed_words.size() may overcount (duplicates are allowed) — fine
      // for a heuristic whose only effect is choosing the compacting path.
      static_cast<double>(changed_words.size()) <=
          options_.max_delta_fraction * model->num_words();
  if (!delta_applicable) return Publish(std::move(model));

  const int64_t start = NowUs();
  auto snapshot = std::make_shared<ModelSnapshot>(model, *base, changed_words);
  if (Swap(snapshot, base.get())) {
    publish_delta_us_.Observe(static_cast<double>(NowUs() - start));
    arena_chain_.Set(static_cast<double>(snapshot->arena_chain()));
    return snapshot;
  }
  // A concurrent publisher swapped the base out mid-build: the rows shared
  // from `base` may not match the published lineage anymore, so fall back
  // to a full rebuild against the authoritative model.
  return Publish(std::move(model));
}

// ------------------------------------------------------- durable snapshots

namespace {

constexpr uint32_t kMaxTopicsOnDisk = 1u << 24;

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

std::string ChainFileName(uint64_t version, bool full) {
  char name[64];
  std::snprintf(name, sizeof(name), "model-%020llu.%s",
                static_cast<unsigned long long>(version),
                full ? "base" : "delta");
  return name;
}

/// Shared scalar prefix of base and delta payloads.
void PutModelHeader(PayloadWriter& out, const TopicModel& model,
                    uint64_t version) {
  out.Put(model.num_topics());
  out.Put(model.num_words());
  out.Put(model.alpha());
  out.Put(model.beta());
  out.Put(version);
}

void PutRow(PayloadWriter& out,
            const std::vector<std::pair<TopicId, int32_t>>& row) {
  out.Put(static_cast<uint32_t>(row.size()));
  for (const auto& [k, c] : row) {
    out.Put(k);
    out.Put(c);
  }
}

/// Reads one sparse row: length-prefixed (topic, count) pairs, validated
/// strictly ascending, in range, and positive — the invariants the serving
/// snapshot's binary search and the alias builders rely on.
bool GetRow(PayloadReader& in, uint32_t num_topics,
            std::vector<std::pair<TopicId, int32_t>>* row) {
  uint32_t len = 0;
  if (!in.Get(&len)) return false;
  if (len > num_topics || static_cast<uint64_t>(len) * 8 > in.remaining()) {
    return false;
  }
  row->clear();
  row->reserve(len);
  TopicId prev = 0;
  for (uint32_t i = 0; i < len; ++i) {
    TopicId k = 0;
    int32_t c = 0;
    if (!in.Get(&k) || !in.Get(&c)) return false;
    if (k >= num_topics || c <= 0 || (i > 0 && k <= prev)) return false;
    prev = k;
    row->emplace_back(k, c);
  }
  return true;
}

struct ModelHeader {
  uint32_t num_topics = 0;
  uint32_t num_words = 0;
  double alpha = 0.0;
  double beta = 0.0;
  uint64_t version = 0;
};

bool GetModelHeader(PayloadReader& in, ModelHeader* h, const std::string& path,
                    std::string* error) {
  if (!in.Get(&h->num_topics) || !in.Get(&h->num_words) ||
      !in.Get(&h->alpha) || !in.Get(&h->beta) || !in.Get(&h->version)) {
    return Fail(error, path + ": truncated model header");
  }
  if (h->num_topics == 0 || h->num_topics > kMaxTopicsOnDisk) {
    return Fail(error, path + ": num_topics out of range");
  }
  if (!std::isfinite(h->alpha) || h->alpha <= 0.0 ||
      !std::isfinite(h->beta) || h->beta <= 0.0) {
    return Fail(error, path + ": priors not finite and positive");
  }
  return true;
}

bool GetTopicCounts(PayloadReader& in, uint32_t num_topics,
                    std::vector<int64_t>* ck, const std::string& path,
                    std::string* error) {
  if (!in.GetVec(ck, kMaxTopicsOnDisk) || ck->size() != num_topics) {
    return Fail(error, path + ": truncated or mis-sized topic counts");
  }
  for (int64_t c : *ck) {
    if (c < 0) return Fail(error, path + ": negative topic count");
  }
  return true;
}

}  // namespace

bool ModelStore::CheckpointTo(const std::string& dir, std::string* error) {
  std::lock_guard<std::mutex> lock(ckpt_mutex_);
  // Read the snapshot under ckpt_mutex_ (Current() takes swap_mutex_
  // briefly; the two are never held nested the other way): two racing
  // CheckpointTo calls then serialize on a consistent view, and the stale
  // one below becomes a no-op instead of writing an out-of-order delta
  // that would break the on-disk chain for every future restore.
  const auto snapshot = Current();
  if (snapshot == nullptr) {
    return Fail(error, "ModelStore::CheckpointTo: nothing published yet");
  }
  const std::shared_ptr<const TopicModel> model = snapshot->model_ptr();
  const uint64_t version = snapshot->version();

  if (!EnsureDirectory(dir, error)) return false;
  if (dir != ckpt_dir_) {
    // New target directory: the delta base (if any) lives elsewhere, so the
    // first write here must be a full base.
    ckpt_dir_ = dir;
    ckpt_model_.reset();
    ckpt_version_ = 0;
    ckpt_chain_ = 0;
  }
  if (ckpt_model_ != nullptr && version <= ckpt_version_) return true;

  bool full = ckpt_model_ == nullptr ||
              ckpt_chain_ >= options_.max_arena_chain ||
              model->num_topics() != ckpt_model_->num_topics() ||
              model->num_words() < ckpt_model_->num_words() ||
              model->beta() != ckpt_model_->beta();
  std::vector<WordId> changed;
  if (!full) {
    changed = model->ChangedWords(*ckpt_model_);
    // Same heuristic as PublishDelta: a near-vocabulary-sized delta is not
    // meaningfully smaller than a base but leaves a long chain to replay.
    if (static_cast<double>(changed.size()) >
        options_.max_delta_fraction * model->num_words()) {
      full = true;
    }
  }

  PayloadWriter out;
  PutModelHeader(out, *model, version);
  if (full) {
    out.PutVec(model->topic_counts());
    for (WordId w = 0; w < model->num_words(); ++w) {
      PutRow(out, model->word_topics(w));
    }
  } else {
    out.Put(ckpt_version_);  // predecessor in the chain
    out.PutVec(model->topic_counts());
    out.Put(static_cast<uint64_t>(changed.size()));
    for (WordId w : changed) {
      out.Put(w);
      PutRow(out, model->word_topics(w));
    }
  }
  const std::string path = dir + "/" + ChainFileName(version, full);
  if (!WriteFrame(path, full ? FrameKind::kModelBase : FrameKind::kModelDelta,
                  out.bytes(), error)) {
    return false;
  }
  ckpt_model_ = model;
  ckpt_version_ = version;
  ckpt_chain_ = full ? 1 : ckpt_chain_ + 1;
  PruneChainLocked();
  return true;
}

void ModelStore::PruneChainLocked() {
  struct ChainFile {
    uint64_t version = 0;
    bool full = false;
    std::string path;
    uint64_t bytes = 0;
  };
  std::vector<ChainFile> files;
  uint64_t newest_base = 0;
  bool have_base = false;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(ckpt_dir_, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long v = 0;
    char kind[8] = {0};
    if (std::sscanf(name.c_str(), "model-%20llu.%5s", &v, kind) != 2) continue;
    const bool full = std::string(kind) == "base";
    if (!full && std::string(kind) != "delta") continue;
    std::error_code size_ec;
    const uint64_t bytes = entry.file_size(size_ec);
    files.push_back(ChainFile{v, full, entry.path().string(),
                              size_ec ? 0 : static_cast<uint64_t>(bytes)});
    if (full && (!have_base || v > newest_base)) {
      newest_base = v;
      have_base = true;
    }
  }
  if (!ec) {
    std::sort(files.begin(), files.end(),
              [](const ChainFile& a, const ChainFile& b) {
                return a.version < b.version;
              });
    const uint32_t cap = options_.checkpoint.max_chain_len;
    if (cap > 0 && have_base) {
      // Superseded = anything a restore would skip: bases older than the
      // newest base, and deltas at or before it. Delete oldest-first until
      // the cap is met; the active chain itself is never touched even when
      // it alone exceeds the cap.
      for (auto it = files.begin();
           it != files.end() && files.size() > cap;) {
        const bool active =
            it->version > newest_base || (it->full && it->version == newest_base);
        if (active) break;  // sorted ascending: the rest is active too
        std::error_code rm_ec;
        std::filesystem::remove(it->path, rm_ec);
        if (rm_ec) {
          ++it;  // best-effort: leave it, count it, move on
        } else {
          it = files.erase(it);
        }
      }
    }
  }
  uint64_t total_bytes = 0;
  for (const ChainFile& f : files) total_bytes += f.bytes;
  ckpt_chain_bytes_.Set(static_cast<double>(total_bytes));
  ckpt_chain_files_.Set(static_cast<double>(files.size()));
}

bool ModelStore::RestoreFrom(const std::string& dir, std::string* error) {
  // Discover the chain: the newest base plus every delta past it, in
  // version order (versions are zero-padded in the names, but we order by
  // the parsed number, not the string).
  uint64_t base_version = 0;
  bool have_base = false;
  std::map<uint64_t, std::string> deltas;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long v = 0;
    char kind[8] = {0};
    if (std::sscanf(name.c_str(), "model-%20llu.%5s", &v, kind) != 2) {
      continue;
    }
    if (std::string(kind) == "base") {
      if (!have_base || v > base_version) base_version = v;
      have_base = true;
    } else if (std::string(kind) == "delta") {
      deltas[v] = entry.path().string();
    }
  }
  if (ec) {
    return Fail(error, "cannot read checkpoint directory " + dir + ": " +
                           ec.message());
  }
  if (!have_base) {
    return Fail(error, "no model base checkpoint in " + dir);
  }

  // Load and validate the base.
  const std::string base_path = dir + "/" + ChainFileName(base_version, true);
  std::vector<uint8_t> payload;
  if (!ReadFrame(base_path, FrameKind::kModelBase, &payload, error)) {
    return false;
  }
  PayloadReader in(payload);
  ModelHeader header;
  std::vector<int64_t> ck;
  if (!GetModelHeader(in, &header, base_path, error) ||
      !GetTopicCounts(in, header.num_topics, &ck, base_path, error)) {
    return false;
  }
  if (header.version != base_version) {
    return Fail(error, base_path + ": stored version disagrees with name");
  }
  // Bound the row-table allocation before sizing it: every word costs at
  // least a 4-byte length field, so num_words can't exceed remaining/4.
  if (header.num_words > in.remaining() / 4) {
    return Fail(error, base_path + ": word count " +
                           std::to_string(header.num_words) +
                           " exceeds what the payload can hold");
  }
  std::vector<std::vector<std::pair<TopicId, int32_t>>> rows(header.num_words);
  for (WordId w = 0; w < header.num_words; ++w) {
    if (!GetRow(in, header.num_topics, &rows[w])) {
      return Fail(error, base_path + ": corrupt row for word " +
                             std::to_string(w));
    }
  }
  if (!in.exhausted()) {
    return Fail(error, base_path + ": trailing bytes");
  }

  // Replay the delta chain on top.
  uint64_t version = base_version;
  double alpha = header.alpha;
  double beta = header.beta;
  uint32_t chain = 1;
  for (const auto& [delta_version, delta_path] : deltas) {
    if (delta_version <= base_version) continue;  // superseded by the base
    if (!ReadFrame(delta_path, FrameKind::kModelDelta, &payload, error)) {
      return false;
    }
    PayloadReader din(payload);
    ModelHeader dh;
    uint64_t prev_version = 0;
    if (!GetModelHeader(din, &dh, delta_path, error)) return false;
    if (!din.Get(&prev_version)) {
      return Fail(error, delta_path + ": truncated predecessor version");
    }
    if (dh.version != delta_version) {
      return Fail(error, delta_path + ": stored version disagrees with name");
    }
    if (prev_version != version) {
      return Fail(error, delta_path + ": broken chain (expects base v" +
                             std::to_string(prev_version) + ", have v" +
                             std::to_string(version) + ")");
    }
    if (dh.num_topics != header.num_topics) {
      return Fail(error, delta_path + ": topic count changed mid-chain");
    }
    if (dh.num_words < rows.size()) {
      return Fail(error, delta_path + ": vocabulary shrank mid-chain");
    }
    if (!GetTopicCounts(din, dh.num_topics, &ck, delta_path, error)) {
      return false;
    }
    uint64_t changed_count = 0;
    if (!din.Get(&changed_count)) {
      return Fail(error, delta_path + ": truncated changed-word count");
    }
    // Every vocabulary-growth word must appear in the delta with at least a
    // word id and a row length (8 bytes) — bounds the resize below.
    if (dh.num_words - rows.size() > din.remaining() / 8) {
      return Fail(error, delta_path + ": grown word count exceeds what the "
                                      "payload can hold");
    }
    rows.resize(dh.num_words);
    for (uint64_t i = 0; i < changed_count; ++i) {
      WordId w = 0;
      if (!din.Get(&w) || w >= rows.size()) {
        return Fail(error, delta_path + ": changed word id out of range");
      }
      if (!GetRow(din, dh.num_topics, &rows[w])) {
        return Fail(error, delta_path + ": corrupt row for word " +
                               std::to_string(w));
      }
    }
    if (!din.exhausted()) {
      return Fail(error, delta_path + ": trailing bytes");
    }
    version = delta_version;
    alpha = dh.alpha;
    beta = dh.beta;
    ++chain;
  }

  auto model = std::make_shared<const TopicModel>(
      header.num_topics, alpha, beta, std::move(rows), std::move(ck));
  auto snapshot =
      std::make_shared<ModelSnapshot>(model, version, options_.layout);
  {
    std::lock_guard<std::mutex> lock(swap_mutex_);
    if (version_.load(std::memory_order_relaxed) >= version) {
      return Fail(error,
                  "ModelStore::RestoreFrom: store already published v" +
                      std::to_string(version_.load()) +
                      ", refusing to go back to checkpointed v" +
                      std::to_string(version));
    }
    current_ = snapshot;
    version_.store(version, std::memory_order_release);
  }
  {
    // Prime the delta bookkeeping so the next CheckpointTo(dir) extends the
    // restored chain instead of rewriting a base.
    std::lock_guard<std::mutex> lock(ckpt_mutex_);
    ckpt_dir_ = dir;
    ckpt_model_ = model;
    ckpt_version_ = version;
    ckpt_chain_ = chain;
    PruneChainLocked();  // prune files the replay skipped; prime the gauges
  }
  return true;
}

}  // namespace warplda::serve

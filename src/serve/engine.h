#ifndef WARPLDA_SERVE_ENGINE_H_
#define WARPLDA_SERVE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/inference.h"
#include "corpus/corpus.h"
#include "serve/model_store.h"

namespace warplda::serve {

/// Thread-safe redesign of the Inferencer hot path for concurrent serving.
///
/// Where Inferencer owns mutable lazy caches and an Rng (one instance per
/// thread, caches rebuilt per instance), SharedInferenceEngine reads only the
/// immutable prebuilt ModelSnapshot — φ̂ rows, alias tables, and q_word are
/// shared by every worker — and threads all per-request state (topic
/// assignments, the C_dk hash, the Rng) through the call stack. Any number
/// of threads may call InferTheta on one engine concurrently.
///
/// Results are a pure function of (snapshot, words, options, seed): the same
/// request yields bit-identical θ̂ no matter which worker serves it, which is
/// what makes concurrent serving testable.
class SharedInferenceEngine {
 public:
  /// `options.seed` is ignored — the seed is per request.
  explicit SharedInferenceEngine(std::shared_ptr<const ModelSnapshot> snapshot,
                                 const InferenceOptions& options = {});

  /// Returns θ̂ (length K, sums to 1) for the document under `seed`.
  /// Words with id >= snapshot.num_words() are ignored. Thread-safe.
  std::vector<double> InferTheta(std::span<const WordId> words,
                                 uint64_t seed) const;
  std::vector<double> InferTheta(const std::vector<WordId>& words,
                                 uint64_t seed) const {
    return InferTheta(std::span<const WordId>(words), seed);
  }

  /// Argmax of InferTheta. Thread-safe.
  TopicId MostLikelyTopic(std::span<const WordId> words, uint64_t seed) const;

  const ModelSnapshot& snapshot() const { return *snapshot_; }
  const std::shared_ptr<const ModelSnapshot>& snapshot_ptr() const {
    return snapshot_;
  }

 private:
  std::shared_ptr<const ModelSnapshot> snapshot_;
  InferenceOptions options_;
};

}  // namespace warplda::serve

#endif  // WARPLDA_SERVE_ENGINE_H_

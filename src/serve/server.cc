#include "serve/server.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "serve/engine.h"

namespace warplda::serve {

namespace {

template <typename TimePoint>
double MicrosSince(TimePoint start, TimePoint end) {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

}  // namespace

InferenceServer::InferenceServer(const ModelStore& store,
                                 const ServerOptions& options)
    : store_(store),
      options_(options),
      batch_size_(obs::DefaultCountBuckets()) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
  auto& registry = obs::MetricsRegistry::Global();
  queue_wait_reg_ = registry.RegisterHistogram(
      "serve_queue_wait_us", "Request wait from enqueue to batch claim",
      &queue_wait_us_);
  infer_reg_ = registry.RegisterHistogram(
      "serve_infer_us", "Per-request inference sampling time", &infer_us_);
  request_reg_ = registry.RegisterHistogram(
      "serve_request_us", "End-to-end request latency (ServerStats p50/p99)",
      &request_us_);
  batch_size_reg_ = registry.RegisterHistogram(
      "serve_batch_size", "Requests claimed per worker pass", &batch_size_);
  workers_.reserve(options_.num_workers);
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

InferenceServer::~InferenceServer() { Shutdown(); }

std::future<InferenceResult> InferenceServer::Enqueue(
    std::vector<WordId> words, uint64_t seed,
    std::unique_lock<std::mutex> lock) {
  Request request;
  request.words = std::move(words);
  request.seed = seed;
  request.enqueued = Clock::now();
  std::future<InferenceResult> future = request.promise.get_future();
  if (!started_.exchange(true, std::memory_order_acq_rel)) {
    first_submit_ = request.enqueued;
  }
  queue_.push_back(std::move(request));
  submitted_.fetch_add(1, std::memory_order_relaxed);
  lock.unlock();
  not_empty_.notify_one();
  return future;
}

std::future<InferenceResult> InferenceServer::Submit(std::vector<WordId> words,
                                                     uint64_t seed) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock, [this] {
    return stopping_ || queue_.size() < options_.queue_capacity;
  });
  if (stopping_) {
    std::promise<InferenceResult> failed;
    failed.set_exception(std::make_exception_ptr(
        std::runtime_error("InferenceServer is shut down")));
    return failed.get_future();
  }
  return Enqueue(std::move(words), seed, std::move(lock));
}

bool InferenceServer::TrySubmit(std::vector<WordId> words, uint64_t seed,
                                std::future<InferenceResult>* result) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_ || queue_.size() >= options_.queue_capacity) {
    lock.unlock();
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  *result = Enqueue(std::move(words), seed, std::move(lock));
  return true;
}

void InferenceServer::WorkerLoop() {
  std::vector<Request> batch;
  while (true) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      const uint32_t take = std::min<uint32_t>(
          options_.max_batch, static_cast<uint32_t>(queue_.size()));
      for (uint32_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ += take;
    }
    not_full_.notify_all();

    // One snapshot load and one engine per batch: every request in the batch
    // reads the same immutable φ̂/alias state, so its cache lines stay warm
    // across the whole pass (the serving analogue of the paper's per-word /
    // per-document locality discipline).
    std::shared_ptr<const ModelSnapshot> snapshot = store_.Current();
    if (snapshot == nullptr) {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stopping_) {
        // Shutting down with no model ever published: fail the claimed
        // requests instead of waiting for a publish that will not come.
        in_flight_ -= static_cast<uint32_t>(batch.size());
        lock.unlock();
        for (Request& request : batch) {
          failed_.fetch_add(1, std::memory_order_release);
          request.promise.set_exception(std::make_exception_ptr(
              std::runtime_error("no model published before shutdown")));
        }
        drained_.notify_all();
        continue;
      }
      // Re-queue in arrival order and wait briefly for the first Publish().
      for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
        queue_.push_front(std::move(*it));
      }
      in_flight_ -= static_cast<uint32_t>(batch.size());
      not_empty_.wait_for(lock, std::chrono::milliseconds(1));
      continue;
    }

    batches_.fetch_add(1, std::memory_order_relaxed);
    batch_size_.Observe(static_cast<double>(batch.size()));
    obs::TraceSpan batch_span("serve-batch", "serve", batch.size());
    SharedInferenceEngine engine(snapshot, options_.inference);
    for (Request& request : batch) {
      // A failing request must not take the worker (and with it the whole
      // server) down: fail its future and keep serving.
      try {
        const Clock::time_point start = Clock::now();
        InferenceResult result;
        result.theta = engine.InferTheta(request.words, request.seed);
        result.top_topic = static_cast<TopicId>(
            std::max_element(result.theta.begin(), result.theta.end()) -
            result.theta.begin());
        result.model_version = snapshot->version();
        const Clock::time_point end = Clock::now();
        result.queue_micros = MicrosSince(request.enqueued, start);
        result.infer_micros = MicrosSince(start, end);
        // Account before resolving the future so a caller that gets() the
        // last result and immediately reads Stats() sees itself counted.
        // Observe() is two relaxed atomic adds on this thread's shard — the
        // histograms replace the old latency ring + mutex.
        queue_wait_us_.Observe(result.queue_micros);
        infer_us_.Observe(result.infer_micros);
        request_us_.Observe(MicrosSince(request.enqueued, end));
        completed_.fetch_add(1, std::memory_order_release);
        request.promise.set_value(std::move(result));
      } catch (...) {
        failed_.fetch_add(1, std::memory_order_release);
        request.promise.set_exception(std::current_exception());
      }
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_ -= static_cast<uint32_t>(batch.size());
    }
    drained_.notify_all();
  }
}

void InferenceServer::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void InferenceServer::Shutdown() {
  // Serializes concurrent Shutdown() calls (e.g. a lifecycle thread racing
  // the destructor): the second caller blocks until the first has joined,
  // then sees an empty workers_ and returns.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

ServerStats InferenceServer::Stats() const {
  ServerStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  const uint64_t batches = batches_.load(std::memory_order_relaxed);
  if (batches > 0) {
    stats.mean_batch = static_cast<double>(stats.completed) / batches;
  }
  if (started_.load(std::memory_order_acquire) && stats.completed > 0) {
    Clock::time_point first;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      first = first_submit_;
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - first).count();
    if (seconds > 0.0) stats.qps = stats.completed / seconds;
  }
  // O(buckets) and consistent with the /metrics exposition by construction:
  // both read the same histogram.
  const obs::HistogramSnapshot latency = request_us_.Snapshot();
  if (latency.count > 0) {
    stats.p50_micros = latency.Quantile(0.50);
    stats.p99_micros = latency.Quantile(0.99);
  }
  return stats;
}

}  // namespace warplda::serve

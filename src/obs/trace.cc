#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace warplda::obs {

namespace {

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendJsonString(std::string* out, const char* s) {
  out->push_back('"');
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      *out += buffer;
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  // Intentionally leaked: thread buffers registered here may be flushed by
  // exiting threads after main() returns; a destructed recorder would race
  // them.
  static TraceRecorder* recorder = new TraceRecorder();  // NOLINT(warplint-naked-new): leaked singleton so late TLS flushes stay valid
  return *recorder;
}

void TraceRecorder::Start(size_t events_per_thread) {
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  events_per_thread_ = std::max<size_t>(1, events_per_thread);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->capacity = events_per_thread_;
    buf->events.assign(events_per_thread_, TraceEvent{});
    buf->next = 0;
    buf->count = 0;
  }
  epoch_ns_ = MonotonicNowNs();
  enabled_.store(true, std::memory_order_release);
}

void TraceRecorder::Stop() {
  enabled_.store(false, std::memory_order_release);
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->next = 0;
    buf->count = 0;
  }
}

int64_t TraceRecorder::NowUs() const {
  return (MonotonicNowNs() - epoch_ns_) / 1000;
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  // One buffer per (thread, recorder) pair, created on first use and owned
  // by the (leaked) recorder so late events from exiting threads stay valid.
  thread_local ThreadBuffer* cached = nullptr;
  if (cached != nullptr) return cached;
  auto owned = std::make_unique<ThreadBuffer>();
  ThreadBuffer* buf = owned.get();
  buf->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(buffers_mutex_);
    buf->capacity = events_per_thread_;
    buf->events.assign(buf->capacity, TraceEvent{});
    buffers_.push_back(std::move(owned));
  }
  cached = buf;
  return buf;
}

void TraceRecorder::Record(const char* name, const char* cat, char phase,
                           uint64_t arg) {
  if (!enabled()) return;
  const int64_t ts = NowUs();
  ThreadBuffer* buf = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buf->mutex);
  TraceEvent& e = buf->events[buf->next];
  e.name = name;
  e.cat = cat;
  e.phase = phase;
  e.tid = buf->tid;
  e.ts_us = ts;
  e.arg = arg;
  buf->next = (buf->next + 1) % buf->capacity;
  buf->count = std::min(buf->count + 1, buf->capacity);
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    // Oldest event first: the ring's logical start is `next` when full,
    // index 0 otherwise.
    const size_t start =
        buf->count == buf->capacity ? buf->next : 0;
    for (size_t i = 0; i < buf->count; ++i) {
      out.push_back(buf->events[(start + i) % buf->capacity]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

std::string TraceRecorder::ToJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\": ";
    AppendJsonString(&out, e.name != nullptr ? e.name : "");
    out += ", \"cat\": ";
    AppendJsonString(&out, e.cat != nullptr ? e.cat : "");
    out += ", \"ph\": \"";
    out.push_back(e.phase);
    out += "\", \"pid\": 1, \"tid\": " + std::to_string(e.tid) +
           ", \"ts\": " + std::to_string(e.ts_us);
    if (e.phase == 'i') {
      out += ", \"s\": \"t\"";  // instant events need a scope
    }
    if (e.arg != 0) {
      out += ", \"args\": {\"v\": " + std::to_string(e.arg) + "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool TraceRecorder::WriteJson(const std::string& path,
                              std::string* error) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "trace: cannot open " + path;
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    if (error != nullptr) *error = "trace: short write to " + path;
    return false;
  }
  return true;
}

}  // namespace warplda::obs

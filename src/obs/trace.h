#ifndef WARPLDA_OBS_TRACE_H_
#define WARPLDA_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace warplda::obs {

/// Chrome trace_event recorder: thread-scoped begin/end spans captured into
/// per-thread ring buffers and written as `{"traceEvents": [...]}` JSON that
/// chrome://tracing and Perfetto open directly.
///
/// Design constraints, in order:
///   1. Zero cost when disabled. TraceSpan's constructor is one relaxed
///      atomic load and two pointer stores; no clock read, no allocation,
///      no branch into the recorder.
///   2. No allocation on the hot path when enabled. Event names and
///      categories are `const char*` that must outlive the recorder (string
///      literals in practice); each thread's ring buffer is allocated once
///      on that thread's first event.
///   3. Bounded memory. Each thread's buffer holds `events_per_thread`
///      events; older events are overwritten ring-style, so a long run
///      keeps the most recent window rather than growing without bound.
///
/// Per-thread buffers are each guarded by their own mutex, which only the
/// owning thread and a snapshotting reader ever touch — effectively
/// uncontended. Begin/end are separate "B"/"E" events (matched by tid and
/// nesting order, per the trace_event spec), so a span that is still open
/// when the buffer is snapshotted simply has no "E" yet.

/// One recorded event. 48 bytes; names/cats must be static strings.
struct TraceEvent {
  const char* name = nullptr;  ///< span name (static string)
  const char* cat = nullptr;   ///< category (static string)
  char phase = 'B';            ///< 'B' begin, 'E' end, 'i' instant
  uint32_t tid = 0;            ///< recorder-assigned thread id
  int64_t ts_us = 0;           ///< microseconds since Start()
  uint64_t arg = 0;            ///< optional scalar arg (block index, bytes…)
};

class TraceRecorder {
 public:
  /// Process-global recorder (intentionally leaked; see metrics.cc).
  static TraceRecorder& Global();

  /// Enables recording. Clears previously captured events and re-bases the
  /// timestamp origin. `events_per_thread` bounds each thread's ring.
  void Start(size_t events_per_thread = 1 << 16);
  /// Disables recording. Captured events stay available for Snapshot() and
  /// WriteJson() until Clear() or the next Start().
  void Stop();
  /// Drops all captured events (buffers are retained for reuse).
  void Clear();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records a raw event now. No-op when disabled. `name` and `cat` must be
  /// static strings.
  void Record(const char* name, const char* cat, char phase, uint64_t arg = 0);

  /// Merged, timestamp-sorted copy of every thread's ring. Events a ring has
  /// overwritten are gone; within a ring, order is preserved.
  std::vector<TraceEvent> Snapshot() const;

  /// Writes the captured events as Chrome trace JSON. Returns false and
  /// fills `*error` (when non-null) on I/O failure.
  bool WriteJson(const std::string& path, std::string* error = nullptr) const;

  /// Serializes the captured events to a Chrome trace JSON string.
  std::string ToJson() const;

 private:
  struct ThreadBuffer {
    mutable std::mutex mutex;  // owner thread vs. snapshotting reader
    uint32_t tid = 0;
    size_t capacity = 0;
    size_t next = 0;     // ring write cursor
    size_t count = 0;    // events currently held (≤ capacity)
    std::vector<TraceEvent> events;
  };

  TraceRecorder() = default;
  ThreadBuffer* BufferForThisThread();
  int64_t NowUs() const;

  std::atomic<bool> enabled_{false};
  mutable std::mutex buffers_mutex_;  // guards the buffer list, not contents
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;  // live as long as the (leaked) recorder
  size_t events_per_thread_ = 1 << 16;
  std::atomic<uint32_t> next_tid_{0};
  int64_t epoch_ns_ = 0;  // Start() time; event ts are relative to this
};

/// RAII begin/end span. Constructing when tracing is disabled costs one
/// relaxed load; nothing else happens until destruction (also a no-op).
/// Spans must be destroyed on the thread that created them and in LIFO
/// order (automatic storage guarantees both).
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat, uint64_t arg = 0) {
    TraceRecorder& rec = TraceRecorder::Global();
    if (rec.enabled()) {
      name_ = name;
      cat_ = cat;
      rec.Record(name, cat, 'B', arg);
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      TraceRecorder::Global().Record(name_, cat_, 'E');
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
};

}  // namespace warplda::obs

#endif  // WARPLDA_OBS_TRACE_H_

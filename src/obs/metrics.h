#ifndef WARPLDA_OBS_METRICS_H_
#define WARPLDA_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace warplda::obs {

/// Runtime metrics layer: named counters, gauges, and fixed-bucket
/// histograms, designed so the training and serving hot paths can record
/// into them without contending on a lock or a shared cache line.
///
/// Every instrument is internally sharded: a writer hashes its thread to one
/// of kMetricShards cache-line-padded slots and does a single relaxed atomic
/// add there — lock-free, wait-free, and (for the common case of a worker
/// pool no wider than the shard count) contention-free. Readers merge the
/// shards on scrape; after writers have quiesced (joined, or parked at a
/// stage barrier) the merged value is exact, which is what the tests assert.
///
/// The instruments are usable standalone (a component owns its histogram and
/// computes percentiles from it) and registrable in the global
/// MetricsRegistry, whose TextSnapshot() renders everything in Prometheus
/// exposition format and JsonSnapshot() as one JSON object — the single
/// source both ServerStats and the /metrics-style dumps read from, so the
/// two can never disagree.
///
/// A process-global enabled flag (SetMetricsEnabled) gates the *training*
/// hot-path recordings (grid executor, sampler stage flushes, frame writes
/// check it before touching any atomic), so a build with metrics compiled in
/// but disabled pays one relaxed load per flush point and nothing per token.
/// Serving-side instruments record unconditionally: ServerStats correctness
/// must not depend on an observability toggle.

/// Shards per instrument. Power of two; threads hash to a shard by a
/// monotonically assigned thread index, so the first kMetricShards threads
/// never collide.
inline constexpr size_t kMetricShards = 16;

namespace internal {
extern std::atomic<bool> g_metrics_enabled;
/// Stable per-thread shard index in [0, kMetricShards).
size_t ThreadShard();
struct alignas(64) CountShard {
  std::atomic<uint64_t> v{0};
};
struct alignas(64) SumShard {
  std::atomic<double> v{0.0};
};
}  // namespace internal

/// True when hot-path metric recording is on (default: off). Cheap enough to
/// check per stage barrier or per executor run, not meant per token.
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled);

/// Monotonic counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    shards_[internal::ThreadShard()].v.fetch_add(n,
                                                 std::memory_order_relaxed);
  }
  /// Merged value. Exact once writers have quiesced.
  uint64_t Value() const;
  void Reset();

 private:
  std::array<internal::CountShard, kMetricShards> shards_;
};

/// Last-writer-wins scalar (chain depths, queue lengths, on-disk bytes).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time view of a Histogram; also the percentile engine ServerStats
/// uses (Quantile is O(buckets), independent of how many observations the
/// histogram has absorbed).
struct HistogramSnapshot {
  std::vector<double> bounds;    ///< ascending finite upper bounds
  std::vector<uint64_t> counts;  ///< per-bucket (not cumulative); size
                                 ///< bounds.size()+1, last = overflow (+Inf)
  uint64_t count = 0;            ///< total observations
  double sum = 0.0;              ///< sum of observed values

  /// Value at quantile q in [0, 1], linearly interpolated inside the bucket
  /// that contains the rank. The overflow bucket reports the largest finite
  /// bound (histograms cannot see past their buckets). 0 when empty.
  double Quantile(double q) const;
  double Mean() const { return count > 0 ? sum / count : 0.0; }
};

/// Fixed-bucket histogram. Observe() is two relaxed atomic adds on this
/// thread's shard plus a branch-free-ish bucket search over a handful of
/// bounds — cheap enough for one call per request or per stage, not meant
/// per token (accumulate locally and observe at a barrier instead).
class Histogram {
 public:
  /// `bounds` are ascending finite bucket upper bounds; an overflow (+Inf)
  /// bucket is implicit. Defaults to DefaultLatencyBucketsUs().
  explicit Histogram(std::vector<double> bounds);
  Histogram();

  void Observe(double v);
  HistogramSnapshot Snapshot() const;
  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<uint64_t>> counts;  // bounds.size()+1
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

/// Exponential-ish microsecond latency buckets, 1 µs .. 10 s.
const std::vector<double>& DefaultLatencyBucketsUs();
/// Small-count buckets (batch sizes, per-worker block counts), 1 .. 4096.
const std::vector<double>& DefaultCountBuckets();

/// Process-global registry of named instruments.
///
/// Names follow Prometheus conventions ([a-zA-Z_][a-zA-Z0-9_]*, counters
/// suffixed _total). Get*() lazily creates a registry-owned instrument and
/// returns a stable pointer — call once and cache the handle; the lookup
/// takes a mutex, the returned instrument never does. Register*() attaches a
/// component-owned instrument (e.g. an InferenceServer's latency histograms)
/// for the lifetime of the returned Registration; a duplicate name gets a
/// "_2", "_3", … suffix so concurrent instances stay distinguishable.
class MetricsRegistry {
 public:
  /// Removes the registered instrument when destroyed (component teardown).
  class Registration {
   public:
    Registration() = default;
    Registration(Registration&& other) noexcept { *this = std::move(other); }
    Registration& operator=(Registration&& other) noexcept;
    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;
    ~Registration() { Release(); }

   private:
    friend class MetricsRegistry;
    Registration(MetricsRegistry* registry, uint64_t id)
        : registry_(registry), id_(id) {}
    void Release();
    MetricsRegistry* registry_ = nullptr;
    uint64_t id_ = 0;
  };

  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  /// `bounds` is only consulted on first creation of `name`.
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "",
                          const std::vector<double>& bounds = {});

  [[nodiscard]] Registration RegisterCounter(const std::string& name,
                                             const std::string& help,
                                             Counter* counter);
  [[nodiscard]] Registration RegisterGauge(const std::string& name,
                                           const std::string& help,
                                           Gauge* gauge);
  [[nodiscard]] Registration RegisterHistogram(const std::string& name,
                                               const std::string& help,
                                               Histogram* histogram);

  /// Prometheus text exposition format (# HELP / # TYPE / samples;
  /// histograms as cumulative _bucket{le=...} series plus _sum and _count).
  std::string TextSnapshot() const;
  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {"buckets": [[le, count], ...], "sum": s,
  /// "count": n}}}.
  std::string JsonSnapshot() const;

  /// Zeroes every instrument currently known to the registry (owned and
  /// registered). Test/bench isolation; not meant for production use.
  void ResetAll();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    uint64_t id = 0;
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
    std::unique_ptr<Counter> owned_counter;
    std::unique_ptr<Gauge> owned_gauge;
    std::unique_ptr<Histogram> owned_histogram;
  };

  Entry* FindLocked(const std::string& name, Kind kind);
  std::string UniqueNameLocked(const std::string& name) const;
  // Returns the new entry's id. Deliberately NOT a Registration: a discarded
  // Registration would run Unregister from its destructor while the caller
  // still holds mutex_ (self-deadlock on the non-recursive mutex).
  uint64_t AddLocked(Entry entry);
  void Unregister(uint64_t id);

  mutable std::mutex mutex_;
  uint64_t next_id_ = 1;
  std::vector<Entry> entries_;  // insertion order preserved in snapshots
};

}  // namespace warplda::obs

#endif  // WARPLDA_OBS_METRICS_H_

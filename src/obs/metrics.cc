#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace warplda::obs {

namespace internal {

std::atomic<bool> g_metrics_enabled{false};

size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  // One fetch_add per thread lifetime; afterwards a plain TLS read. The
  // first kMetricShards threads get distinct shards, so a worker pool up to
  // that width never shares a cache line.
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// ----------------------------------------------------------------- Counter

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& shard : shards_) shard.v.store(0, std::memory_order_relaxed);
}

// ------------------------------------------------------------------- Gauge

void Gauge::Add(double d) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + d,
                                       std::memory_order_relaxed)) {
  }
}

// --------------------------------------------------------------- Histogram

const std::vector<double>& DefaultLatencyBucketsUs() {
  static const std::vector<double> buckets = {
      1,    2,    5,    10,   20,   50,   100,  200,  500,  1e3, 2e3,
      5e3,  1e4,  2e4,  5e4,  1e5,  2e5,  5e5,  1e6,  2e6,  5e6, 1e7};
  return buckets;
}

const std::vector<double>& DefaultCountBuckets() {
  static const std::vector<double> buckets = {1,  2,  3,  4,   6,   8,   12,
                                              16, 24, 32, 48,  64,  96,  128,
                                              256, 512, 1024, 2048, 4096};
  return buckets;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (auto& shard : shards_) {
    shard.counts = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

Histogram::Histogram() : Histogram(DefaultLatencyBucketsUs()) {}

void Histogram::Observe(double v) {
  const size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  Shard& shard = shards_[internal::ThreadShard()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(v, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (size_t b = 0; b < shard.counts.size(); ++b) {
      snap.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (uint64_t c : snap.counts) snap.count += c;
  return snap;
}

void Histogram::Reset() {
  for (auto& shard : shards_) {
    for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based nearest-rank), then linear
  // interpolation across the bucket that contains it.
  const double rank = std::max(1.0, std::ceil(q * static_cast<double>(count)));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < rank) continue;
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    if (b >= bounds.size()) {
      // Overflow bucket: the histogram cannot resolve past its last bound.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double hi = bounds[b];
    const double within =
        (rank - static_cast<double>(before)) / static_cast<double>(counts[b]);
    return lo + (hi - lo) * within;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

// ---------------------------------------------------------------- registry

MetricsRegistry& MetricsRegistry::Global() {
  // Intentionally leaked: worker threads and TLS destructors may touch
  // instruments during process teardown; a destructed registry would turn
  // clean exits into use-after-free roulette.
  static MetricsRegistry* registry = new MetricsRegistry();  // NOLINT(warplint-naked-new): leaked singleton — instruments outlive every thread
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindLocked(const std::string& name,
                                                    Kind kind) {
  for (Entry& entry : entries_) {
    if (entry.name == name && entry.kind == kind) return &entry;
  }
  return nullptr;
}

std::string MetricsRegistry::UniqueNameLocked(const std::string& name) const {
  auto taken = [&](const std::string& candidate) {
    for (const Entry& entry : entries_) {
      if (entry.name == candidate) return true;
    }
    return false;
  };
  if (!taken(name)) return name;
  for (int i = 2;; ++i) {
    const std::string candidate = name + "_" + std::to_string(i);
    if (!taken(candidate)) return candidate;
  }
}

uint64_t MetricsRegistry::AddLocked(Entry entry) {
  entry.id = next_id_++;
  const uint64_t id = entry.id;
  entries_.push_back(std::move(entry));
  return id;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = FindLocked(name, Kind::kCounter)) {
    return existing->counter;
  }
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.kind = Kind::kCounter;
  entry.owned_counter = std::make_unique<Counter>();
  entry.counter = entry.owned_counter.get();
  Counter* handle = entry.counter;
  // Owned instruments live for the registry's (i.e. the process') lifetime;
  // no Registration token is issued for them.
  AddLocked(std::move(entry));
  return handle;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = FindLocked(name, Kind::kGauge)) {
    return existing->gauge;
  }
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.kind = Kind::kGauge;
  entry.owned_gauge = std::make_unique<Gauge>();
  entry.gauge = entry.owned_gauge.get();
  Gauge* handle = entry.gauge;
  AddLocked(std::move(entry));
  return handle;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = FindLocked(name, Kind::kHistogram)) {
    return existing->histogram;
  }
  Entry entry;
  entry.name = name;
  entry.help = help;
  entry.kind = Kind::kHistogram;
  entry.owned_histogram = std::make_unique<Histogram>(
      bounds.empty() ? DefaultLatencyBucketsUs() : bounds);
  entry.histogram = entry.owned_histogram.get();
  Histogram* handle = entry.histogram;
  AddLocked(std::move(entry));
  return handle;
}

MetricsRegistry::Registration MetricsRegistry::RegisterCounter(
    const std::string& name, const std::string& help, Counter* counter) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.name = UniqueNameLocked(name);
  entry.help = help;
  entry.kind = Kind::kCounter;
  entry.counter = counter;
  return Registration(this, AddLocked(std::move(entry)));
}

MetricsRegistry::Registration MetricsRegistry::RegisterGauge(
    const std::string& name, const std::string& help, Gauge* gauge) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.name = UniqueNameLocked(name);
  entry.help = help;
  entry.kind = Kind::kGauge;
  entry.gauge = gauge;
  return Registration(this, AddLocked(std::move(entry)));
}

MetricsRegistry::Registration MetricsRegistry::RegisterHistogram(
    const std::string& name, const std::string& help, Histogram* histogram) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.name = UniqueNameLocked(name);
  entry.help = help;
  entry.kind = Kind::kHistogram;
  entry.histogram = histogram;
  return Registration(this, AddLocked(std::move(entry)));
}

void MetricsRegistry::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const Entry& e) { return e.id == id; }),
                 entries_.end());
}

MetricsRegistry::Registration& MetricsRegistry::Registration::operator=(
    Registration&& other) noexcept {
  if (this != &other) {
    Release();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void MetricsRegistry::Registration::Release() {
  if (registry_ != nullptr && id_ != 0) {
    registry_->Unregister(id_);
  }
  registry_ = nullptr;
  id_ = 0;
}

namespace {

std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "0";  // neither format admits inf/nan
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", v);
  return buffer;
}

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out += buffer;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string MetricsRegistry::TextSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const Entry& entry : entries_) {
    if (!entry.help.empty()) {
      out += "# HELP " + entry.name + " " + entry.help + "\n";
    }
    switch (entry.kind) {
      case Kind::kCounter:
        out += "# TYPE " + entry.name + " counter\n";
        out += entry.name + " " + std::to_string(entry.counter->Value()) +
               "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + entry.name + " gauge\n";
        out += entry.name + " " + FormatDouble(entry.gauge->Value()) + "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + entry.name + " histogram\n";
        const HistogramSnapshot snap = entry.histogram->Snapshot();
        uint64_t cumulative = 0;
        for (size_t b = 0; b < snap.counts.size(); ++b) {
          cumulative += snap.counts[b];
          const std::string le =
              b < snap.bounds.size() ? FormatDouble(snap.bounds[b]) : "+Inf";
          out += entry.name + "_bucket{le=\"" + le + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += entry.name + "_sum " + FormatDouble(snap.sum) + "\n";
        out += entry.name + "_count " + std::to_string(snap.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::JsonSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string counters;
  std::string gauges;
  std::string histograms;
  for (const Entry& entry : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        counters += (counters.empty() ? "" : ", ");
        counters += JsonQuote(entry.name) + ": " +
                    std::to_string(entry.counter->Value());
        break;
      case Kind::kGauge:
        gauges += (gauges.empty() ? "" : ", ");
        gauges +=
            JsonQuote(entry.name) + ": " + FormatDouble(entry.gauge->Value());
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snap = entry.histogram->Snapshot();
        histograms += (histograms.empty() ? "" : ", ");
        histograms += JsonQuote(entry.name) + ": {\"buckets\": [";
        for (size_t b = 0; b < snap.counts.size(); ++b) {
          histograms += b == 0 ? "[" : ", [";
          histograms += b < snap.bounds.size()
                            ? FormatDouble(snap.bounds[b])
                            : std::string("null");  // +Inf bucket
          histograms += ", " + std::to_string(snap.counts[b]) + "]";
        }
        histograms += "], \"sum\": " + FormatDouble(snap.sum) +
                      ", \"count\": " + std::to_string(snap.count) + "}";
        break;
      }
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}\n";
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& entry : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

}  // namespace warplda::obs

#ifndef WARPLDA_UTIL_FTREE_H_
#define WARPLDA_UTIL_FTREE_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace warplda {

/// F+ tree (Yu et al., WWW 2015): a complete binary tree over n non-negative
/// weights supporting O(log n) point update and O(log n) sampling from the
/// induced discrete distribution, with O(n) bulk build.
///
/// This is the structure F+LDA uses for the dense term α_k(C_wk+β)/(C_k+β̄)
/// so that exact CGS sampling stays cheap while counts change token-to-token.
/// Internal nodes store the sum of their subtree; sampling descends from the
/// root consuming a uniform variate.
class FTree {
 public:
  FTree() = default;

  /// Initializes the tree with `n` weights, all zero.
  explicit FTree(uint32_t n) { Reset(n); }

  /// Re-initializes with `n` zero weights.
  void Reset(uint32_t n);

  /// Bulk-builds from the given weights in O(n).
  void Build(const std::vector<double>& weights);

  /// Sets weight i to w in O(log n).
  void Update(uint32_t i, double w);

  /// Returns weight i.
  double Get(uint32_t i) const { return tree_[cap_ + i]; }

  /// Returns the sum of all weights.
  double Total() const { return cap_ == 0 ? 0.0 : tree_[1]; }

  /// Samples index i with probability weight[i]/Total() in O(log n).
  /// Requires Total() > 0.
  uint32_t Sample(Rng& rng) const { return SampleWith(rng.NextDouble()); }

  /// Deterministic variant: consumes u in [0,1). Exposed for testing.
  uint32_t SampleWith(double u) const;

  /// Number of weights.
  uint32_t size() const { return n_; }

 private:
  uint32_t n_ = 0;    // logical number of leaves
  uint32_t cap_ = 0;  // leaf capacity (power of two >= n_)
  std::vector<double> tree_;  // 1-based heap layout; leaves at [cap_, 2*cap_)
};

}  // namespace warplda

#endif  // WARPLDA_UTIL_FTREE_H_

#ifndef WARPLDA_UTIL_HASH_COUNT_H_
#define WARPLDA_UTIL_HASH_COUNT_H_

#include <cstdint>
#include <vector>

namespace warplda {

/// Open-addressing hash table from topic id to count, specialized for the
/// per-document / per-word count vectors c_d and c_w (paper §5.4).
///
/// Keys are topic ids in [0, 2^32-2]; values are non-negative counts. Linear
/// probing, power-of-two capacity, hash is a multiplicative mix. Capacity is
/// chosen as the smallest power of two larger than min(K, 2L) as in the paper,
/// so the table stays small enough to live in cache even when K is large.
///
/// Entries are never physically removed: a decremented-to-zero slot keeps its
/// key so probe chains stay intact. The table is intended to be built, used
/// for one document/word, and Clear()ed — exactly the WarpLDA access pattern.
class HashCount {
 public:
  struct Entry {
    uint32_t key;
    int32_t value;
  };

  static constexpr uint32_t kEmptyKey = 0xFFFFFFFFu;

  HashCount() = default;

  /// Initializes with capacity = smallest power of two > max(2, capacity_hint).
  explicit HashCount(uint32_t capacity_hint) { Init(capacity_hint); }

  /// (Re-)initializes the table; all counts become zero.
  void Init(uint32_t capacity_hint) {
    uint32_t cap = 4;
    while (cap <= capacity_hint) cap <<= 1;
    mask_ = cap - 1;
    slots_.assign(cap, Entry{kEmptyKey, 0});
    size_ = 0;
  }

  /// Removes all entries, keeping capacity.
  void Clear() {
    for (auto& s : slots_) s = Entry{kEmptyKey, 0};
    size_ = 0;
  }

  /// Adds `delta` to the count of `key` (inserting it at zero first if absent)
  /// and returns the new count. Grows when load factor reaches 3/4.
  int32_t Add(uint32_t key, int32_t delta) {
    uint32_t i = FindSlot(key);
    if (slots_[i].key == kEmptyKey) {
      if ((size_ + 1) * 4 > (mask_ + 1) * 3) {
        Grow();
        i = FindSlot(key);
      }
      slots_[i] = Entry{key, 0};
      ++size_;
    }
    slots_[i].value += delta;
    return slots_[i].value;
  }

  /// Increments key's count by one; returns the new count.
  int32_t Inc(uint32_t key) { return Add(key, 1); }

  /// Decrements key's count by one; returns the new count. The key must be
  /// present (counts never go negative in correct sampler code; this is not
  /// checked on the hot path).
  int32_t Dec(uint32_t key) { return Add(key, -1); }

  /// Returns the count of `key`, or 0 if absent.
  int32_t Get(uint32_t key) const {
    uint32_t i = FindSlot(key);
    return slots_[i].key == kEmptyKey ? 0 : slots_[i].value;
  }

  /// Number of distinct keys ever inserted (slots with value 0 included).
  uint32_t size() const { return size_; }

  /// Current slot capacity (power of two).
  uint32_t capacity() const { return mask_ + 1; }

  /// Raw slot access for iteration: skip entries with key == kEmptyKey.
  const std::vector<Entry>& slots() const { return slots_; }

  /// Approximate memory address of the slot `key` hashes to. Used by the
  /// cache-tracing instrumentation (cachesim) to replay this table's access
  /// pattern; not needed for normal operation.
  uintptr_t SlotAddr(uint32_t key) const {
    return reinterpret_cast<uintptr_t>(slots_.data() + (Hash(key) & mask_));
  }

  /// Invokes f(key, value) for every entry with value != 0.
  template <typename F>
  void ForEachNonZero(F&& f) const {
    for (const auto& s : slots_) {
      if (s.key != kEmptyKey && s.value != 0) f(s.key, s.value);
    }
  }

 private:
  static uint32_t Hash(uint32_t key) {
    // Fibonacci multiplicative hash; cheap and well-spread for small ints.
    return key * 2654435761u;
  }

  uint32_t FindSlot(uint32_t key) const {
    uint32_t i = Hash(key) & mask_;
    while (slots_[i].key != kEmptyKey && slots_[i].key != key) {
      i = (i + 1) & mask_;
    }
    return i;
  }

  void Grow() {
    std::vector<Entry> old = std::move(slots_);
    uint32_t new_cap = (mask_ + 1) * 2;
    mask_ = new_cap - 1;
    slots_.assign(new_cap, Entry{kEmptyKey, 0});
    size_ = 0;
    for (const auto& s : old) {
      if (s.key != kEmptyKey) {
        uint32_t i = FindSlot(s.key);
        slots_[i] = s;
        ++size_;
      }
    }
  }

  std::vector<Entry> slots_;
  uint32_t mask_ = 0;
  uint32_t size_ = 0;
};

}  // namespace warplda

#endif  // WARPLDA_UTIL_HASH_COUNT_H_

// Concurrency-contract annotations, machine-checked by warplint.
//
// These macros expand to nothing: they cost zero at compile time and run
// time, and exist purely so `tools/lint` can build a per-class model of who
// is allowed to touch which member when. The checked semantics
// (warplint-contract):
//
//   WARP_WORKER_LOCAL
//     On a member: per-worker state. Inside concurrent grid bodies
//     (RunBlock / Run*Part / AcceptSegment / AcceptChain / Draw* / RunTasks)
//     every access must be indexed by the worker argument
//     (`scratch_[worker]`) — touching another worker's slot races with its
//     owner. On a struct: any member anywhere holding that type must itself
//     be annotated WARP_WORKER_LOCAL.
//
//   WARP_BARRIER_ONLY
//     Shared state that workers read during a stage but that may only be
//     written between stages (BeginSweep / EndStage / ApplyStagedMoves /
//     EndSweep — code running under the executor barrier). Any write from
//     a concurrent grid body is a race by construction: stage the change in
//     ThreadScratch and apply it barrier-side.
//
//   WARP_IMMUTABLE_AFTER(Method, ...)
//     Frozen after setup: only the listed methods (plus constructors) may
//     write the member, from any body, hot or not. Use for plans, index
//     tables and priors that workers read without synchronisation.
//
// Annotations are declarations of intent, not wishes — warplint fails the
// build when the code disagrees. Suppress a deliberate exception with a
// justified warplint-contract suppression comment (see README, "Static
// analysis & invariants").

#ifndef WARP_UTIL_CONTRACTS_H_
#define WARP_UTIL_CONTRACTS_H_

#define WARP_WORKER_LOCAL
#define WARP_BARRIER_ONLY
#define WARP_IMMUTABLE_AFTER(...)

#endif  // WARP_UTIL_CONTRACTS_H_

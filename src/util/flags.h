#ifndef WARPLDA_UTIL_FLAGS_H_
#define WARPLDA_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace warplda {

/// Minimal command-line flag parser for benchmark and example binaries.
///
/// Supports `--name=value`, `--name value`, and bare `--name` for booleans.
/// Unknown flags are reported and cause Parse() to return false so binaries
/// fail fast on typos. Registration order drives --help output.
class FlagSet {
 public:
  /// Registers flags. `ptr` must outlive Parse(). Returns *this for chaining.
  FlagSet& Int(const std::string& name, int64_t* ptr, const std::string& help);
  FlagSet& Double(const std::string& name, double* ptr,
                  const std::string& help);
  FlagSet& String(const std::string& name, std::string* ptr,
                  const std::string& help);
  FlagSet& Bool(const std::string& name, bool* ptr, const std::string& help);

  /// Parses argv. Returns false (after printing a message) on unknown flags,
  /// malformed values, or `--help`.
  bool Parse(int argc, char** argv);

  /// Prints registered flags with defaults and help strings to stdout.
  void PrintHelp(const std::string& program) const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };
  struct Flag {
    std::string name;
    Type type;
    void* ptr;
    std::string help;
    std::string default_repr;
  };

  Flag* Find(const std::string& name);
  static bool SetValue(const Flag& flag, const std::string& value);

  std::vector<Flag> flags_;
};

}  // namespace warplda

#endif  // WARPLDA_UTIL_FLAGS_H_

#ifndef WARPLDA_UTIL_SPECIAL_H_
#define WARPLDA_UTIL_SPECIAL_H_

namespace warplda {

/// Digamma function ψ(x) = d/dx log Γ(x) for x > 0.
///
/// Recurrence ψ(x) = ψ(x+1) − 1/x lifts the argument above 6, then the
/// standard asymptotic series applies (absolute error < 1e-12 for x ≥ 6).
/// Needed by the Minka fixed-point hyper-parameter updates (eval/hyperparams).
double Digamma(double x);

}  // namespace warplda

#endif  // WARPLDA_UTIL_SPECIAL_H_

#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

namespace warplda {

namespace {
std::string Repr(int64_t v) { return std::to_string(v); }
std::string Repr(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}
}  // namespace

FlagSet& FlagSet::Int(const std::string& name, int64_t* ptr,
                      const std::string& help) {
  flags_.push_back({name, Type::kInt, ptr, help, Repr(*ptr)});
  return *this;
}

FlagSet& FlagSet::Double(const std::string& name, double* ptr,
                         const std::string& help) {
  flags_.push_back({name, Type::kDouble, ptr, help, Repr(*ptr)});
  return *this;
}

FlagSet& FlagSet::String(const std::string& name, std::string* ptr,
                         const std::string& help) {
  flags_.push_back({name, Type::kString, ptr, help, *ptr});
  return *this;
}

FlagSet& FlagSet::Bool(const std::string& name, bool* ptr,
                       const std::string& help) {
  flags_.push_back({name, Type::kBool, ptr, help, *ptr ? "true" : "false"});
  return *this;
}

FlagSet::Flag* FlagSet::Find(const std::string& name) {
  for (auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

bool FlagSet::SetValue(const Flag& flag, const std::string& value) {
  char* end = nullptr;
  switch (flag.type) {
    case Type::kInt: {
      int64_t v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') return false;
      *static_cast<int64_t*>(flag.ptr) = v;
      return true;
    }
    case Type::kDouble: {
      double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') return false;
      *static_cast<double*>(flag.ptr) = v;
      return true;
    }
    case Type::kString:
      *static_cast<std::string*>(flag.ptr) = value;
      return true;
    case Type::kBool:
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.ptr) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.ptr) = false;
      } else {
        return false;
      }
      return true;
  }
  return false;
}

bool FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintHelp(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      return false;
    }
    std::string body = arg.substr(2);
    std::string name = body;
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    }
    Flag* flag = Find(name);
    if (flag == nullptr) {
      std::fprintf(stderr, "unknown flag: --%s (see --help)\n", name.c_str());
      return false;
    }
    if (!has_value) {
      if (flag->type == Type::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s requires a value\n", name.c_str());
        return false;
      }
    }
    if (!SetValue(*flag, value)) {
      std::fprintf(stderr, "bad value for --%s: '%s'\n", name.c_str(),
                   value.c_str());
      return false;
    }
  }
  return true;
}

void FlagSet::PrintHelp(const std::string& program) const {
  std::printf("usage: %s [flags]\n", program.c_str());
  for (const auto& f : flags_) {
    std::printf("  --%-20s %s (default: %s)\n", f.name.c_str(), f.help.c_str(),
                f.default_repr.c_str());
  }
}

}  // namespace warplda

#ifndef WARPLDA_UTIL_STOPWATCH_H_
#define WARPLDA_UTIL_STOPWATCH_H_

#include <chrono>

namespace warplda {

/// Monotonic wall-clock stopwatch used by trainers and benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace warplda

#endif  // WARPLDA_UTIL_STOPWATCH_H_

#ifndef WARPLDA_UTIL_RNG_H_
#define WARPLDA_UTIL_RNG_H_

#include <array>
#include <cstdint>

namespace warplda {

/// SplitMix64 finalizer: bijective 64-bit mixing (Vigna). Used to diffuse
/// seeds and to derive independent per-stream seeds from (seed, stream-id)
/// tuples — e.g. WarpLDA's per-token RNG streams, which make sampling
/// deterministic regardless of thread count or grid-block order.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Fast, seedable pseudo-random number generator (xoshiro256**).
///
/// LDA samplers draw billions of random numbers; std::mt19937 is a measurable
/// bottleneck. xoshiro256** passes BigCrush, has a 2^256-1 period, and costs a
/// handful of cycles per draw. Not cryptographically secure.
class Rng {
 public:
  /// Seeds the generator. Two generators with different seeds produce
  /// independent-looking streams (seeds are diffused through SplitMix64).
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from `seed`.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state, as recommended
    // by the xoshiro authors: guarantees a non-zero, well-mixed state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  /// Returns the next 64 uniformly random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Returns 32 uniformly random bits.
  uint32_t NextU32() { return static_cast<uint32_t>(Next() >> 32); }

  /// Returns a uniform integer in [0, n). Requires n > 0.
  /// Uses Lemire's multiply-shift bounded generation (no modulo bias for the
  /// count magnitudes used here, and far faster than % on the hot path).
  uint32_t NextInt(uint32_t n) {
    uint64_t m = static_cast<uint64_t>(NextU32()) * n;
    return static_cast<uint32_t>(m >> 32);
  }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    // 53 random mantissa bits scaled by 2^-53.
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability p (p outside [0,1] clamps naturally).
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Raw 256-bit state, for checkpointing a generator mid-stream (e.g.
  /// StreamingWarpLda::SaveState): restoring via SetState continues the
  /// exact sequence. An all-zero state is invalid for xoshiro; SetState
  /// falls back to re-seeding in that case instead of producing a stuck
  /// generator (all-zero is also what a zeroed checkpoint field decodes to).
  std::array<uint64_t, 4> State() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void SetState(const std::array<uint64_t, 4>& state) {
    if (state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0) {
      Seed(0);
      return;
    }
    for (int i = 0; i < 4; ++i) state_[i] = state[i];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace warplda

#endif  // WARPLDA_UTIL_RNG_H_

#include "util/special.h"

#include <cmath>
#include <limits>

namespace warplda {

double Digamma(double x) {
  if (!(x > 0.0)) return std::numeric_limits<double>::quiet_NaN();
  double result = 0.0;
  while (x < 8.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic expansion: ψ(x) ≈ ln x − 1/(2x) − Σ B_2n / (2n x^2n).
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result +=
      std::log(x) - 0.5 * inv -
      inv2 * (1.0 / 12.0 -
              inv2 * (1.0 / 120.0 -
                      inv2 * (1.0 / 252.0 -
                              inv2 * (1.0 / 240.0 - inv2 / 132.0))));
  return result;
}

}  // namespace warplda

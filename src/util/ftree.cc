#include "util/ftree.h"

#include <algorithm>

namespace warplda {

namespace {
uint32_t NextPow2(uint32_t x) {
  uint32_t p = 1;
  while (p < x) p <<= 1;
  return p;
}
}  // namespace

void FTree::Reset(uint32_t n) {
  n_ = n;
  cap_ = n == 0 ? 0 : NextPow2(n);
  tree_.assign(cap_ == 0 ? 0 : 2 * cap_, 0.0);
}

void FTree::Build(const std::vector<double>& weights) {
  Reset(static_cast<uint32_t>(weights.size()));
  if (n_ == 0) return;
  std::copy(weights.begin(), weights.end(), tree_.begin() + cap_);
  for (uint32_t i = cap_ - 1; i >= 1; --i) {
    tree_[i] = tree_[2 * i] + tree_[2 * i + 1];
  }
}

void FTree::Update(uint32_t i, double w) {
  uint32_t node = cap_ + i;
  tree_[node] = w;
  for (node >>= 1; node >= 1; node >>= 1) {
    tree_[node] = tree_[2 * node] + tree_[2 * node + 1];
  }
}

uint32_t FTree::SampleWith(double u) const {
  double target = u * tree_[1];
  uint32_t node = 1;
  while (node < cap_) {
    node <<= 1;
    if (target >= tree_[node]) {
      target -= tree_[node];
      ++node;
    }
  }
  uint32_t idx = node - cap_;
  // Guard against floating-point drift pushing us past the last weight.
  return idx < n_ ? idx : n_ - 1;
}

}  // namespace warplda

#ifndef WARPLDA_UTIL_CRC32_H_
#define WARPLDA_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace warplda {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `size` bytes.
/// Pass a previous result as `seed` to checksum data in chunks:
/// Crc32(b, nb, Crc32(a, na)) == Crc32(a+b). Used by the checkpoint frame
/// (util/checkpoint_io.h) to detect torn or bit-rotted payloads before any
/// field is trusted.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace warplda

#endif  // WARPLDA_UTIL_CRC32_H_

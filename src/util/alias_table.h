#ifndef WARPLDA_UTIL_ALIAS_TABLE_H_
#define WARPLDA_UTIL_ALIAS_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace warplda {

/// Walker alias table: O(n) construction, O(1) sampling from an arbitrary
/// discrete distribution (Walker 1977, Vose 1991 construction).
///
/// Used for the word proposal q_word ∝ C_wk + β in WarpLDA (paper §4.3) and
/// by the AliasLDA / LightLDA baselines. The table owns no outcome labels: it
/// returns bin indices in [0, size()), which callers map to topics when the
/// distribution is sparse (see BuildSparse).
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from (possibly unnormalized) non-negative weights.
  /// A zero-sum or empty weight vector yields a table that samples uniformly
  /// over all bins (degenerate but well defined).
  void Build(const double* weights, uint32_t n);
  void Build(const std::vector<double>& weights) {
    Build(weights.data(), static_cast<uint32_t>(weights.size()));
  }

  /// Builds from a sparse distribution given as (outcome, weight) pairs.
  /// Sample() then returns outcomes, not bin indices.
  void BuildSparse(const std::vector<std::pair<uint32_t, double>>& entries);

  /// Draws one sample in O(1): pick a bin uniformly, then one of its at most
  /// two outcomes by a biased coin.
  uint32_t Sample(Rng& rng) const {
    uint32_t bin = rng.NextInt(static_cast<uint32_t>(prob_.size()));
    return rng.NextDouble() < prob_[bin] ? Outcome(bin) : alias_[bin];
  }

  /// Number of bins (== number of weights passed to Build).
  uint32_t size() const { return static_cast<uint32_t>(prob_.size()); }

  /// Sum of the weights the table was built from.
  double total_weight() const { return total_weight_; }

  /// True until the first Build call.
  bool empty() const { return prob_.empty(); }

  /// Heap footprint of the table's bins, in bytes (excludes sizeof(*this)).
  /// Used by the serving layer's snapshot-memory accounting.
  size_t HeapBytes() const {
    return prob_.capacity() * sizeof(double) +
           alias_.capacity() * sizeof(uint32_t) +
           outcomes_.capacity() * sizeof(uint32_t);
  }

 private:
  uint32_t Outcome(uint32_t bin) const {
    return outcomes_.empty() ? bin : outcomes_[bin];
  }

  std::vector<double> prob_;      // acceptance probability per bin
  std::vector<uint32_t> alias_;   // alternative outcome per bin
  std::vector<uint32_t> outcomes_;  // bin -> outcome id (sparse builds only)
  double total_weight_ = 0.0;
};

}  // namespace warplda

#endif  // WARPLDA_UTIL_ALIAS_TABLE_H_

#include "util/alias_table.h"

#include <cassert>
#include <cstddef>

namespace warplda {

void AliasTable::Build(const double* weights, uint32_t n) {
  outcomes_.clear();
  prob_.assign(n, 1.0);
  alias_.assign(n, 0);
  if (n == 0) {
    total_weight_ = 0.0;
    return;
  }

  double total = 0.0;
  for (uint32_t i = 0; i < n; ++i) total += weights[i];
  total_weight_ = total;
  if (!(total > 0.0)) {
    // Degenerate: uniform over bins. prob_=1 means the bin always wins.
    for (uint32_t i = 0; i < n; ++i) alias_[i] = i;
    return;
  }

  // Vose's algorithm: split bins into "small" (scaled weight < 1) and "large"
  // groups, then repeatedly pair one of each so every bin holds exactly two
  // outcomes whose probabilities sum to 1/n.
  std::vector<double> scaled(n);
  const double scale = static_cast<double>(n) / total;
  for (uint32_t i = 0; i < n; ++i) scaled[i] = weights[i] * scale;

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining bins have scaled weight numerically equal to 1.
  for (uint32_t s : small) {
    prob_[s] = 1.0;
    alias_[s] = s;
  }
  for (uint32_t l : large) {
    prob_[l] = 1.0;
    alias_[l] = l;
  }
}

void AliasTable::BuildSparse(
    const std::vector<std::pair<uint32_t, double>>& entries) {
  std::vector<double> weights(entries.size());
  std::vector<uint32_t> outcomes(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    outcomes[i] = entries[i].first;
    weights[i] = entries[i].second;
  }
  Build(weights.data(), static_cast<uint32_t>(weights.size()));
  // alias_ currently holds bin ids; remap both alias targets and identity
  // outcomes through the outcome table.
  outcomes_ = std::move(outcomes);
  for (auto& a : alias_) a = outcomes_.empty() ? a : outcomes_[a];
}

}  // namespace warplda

#include "util/zipf.h"

#include <cmath>

namespace warplda {

ZipfSampler::ZipfSampler(uint32_t n, double s) {
  pmf_.resize(n);
  double total = 0.0;
  for (uint32_t r = 0; r < n; ++r) {
    pmf_[r] = std::pow(static_cast<double>(r + 1), -s);
    total += pmf_[r];
  }
  for (auto& p : pmf_) p /= total;
  table_.Build(pmf_);
}

}  // namespace warplda

#ifndef WARPLDA_UTIL_ZIPF_H_
#define WARPLDA_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/alias_table.h"
#include "util/rng.h"

namespace warplda {

/// Samples ranks from a Zipf distribution P(r) ∝ 1/(r+1)^s over {0,...,n-1}.
///
/// Natural-language word frequencies follow a power law (paper §5.2 cites
/// Zipf 1932); the synthetic corpora and the Fig. 4 partitioning study both
/// need Zipfian draws. Exact sampling via a precomputed alias table: O(n)
/// build, O(1) per sample.
class ZipfSampler {
 public:
  /// Builds the sampler for `n` ranks with exponent `s` (s >= 0; s = 0 is
  /// uniform, s ≈ 1 is classic Zipf).
  ZipfSampler(uint32_t n, double s);

  /// Draws a rank in [0, n).
  uint32_t Sample(Rng& rng) const { return table_.Sample(rng); }

  /// Probability mass of rank r.
  double Pmf(uint32_t r) const { return pmf_[r]; }

  uint32_t size() const { return static_cast<uint32_t>(pmf_.size()); }

 private:
  AliasTable table_;
  std::vector<double> pmf_;
};

}  // namespace warplda

#endif  // WARPLDA_UTIL_ZIPF_H_

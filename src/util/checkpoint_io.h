#ifndef WARPLDA_UTIL_CHECKPOINT_IO_H_
#define WARPLDA_UTIL_CHECKPOINT_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace warplda {

/// Crash-safe framed file format shared by every durable artifact in the
/// library (training checkpoints, in-flight sweep checkpoints, serving model
/// chains, streaming trainer state). One file is:
///
///   offset  size  field
///   ------  ----  --------------------------------------------------------
///        0     8  magic "WARPCKP2" (0x57415250434B5032, big-endian bytes)
///        8     4  format version (kFrameVersion)
///       12     4  endianness tag 0x01020304, written natively — a reader on
///                 a byte-swapped host sees 0x04030201 and rejects the file
///                 instead of silently mis-parsing it
///       16     4  payload kind (FrameKind) — what the payload encodes
///       20     4  reserved, must be 0
///       24     8  payload size in bytes; must equal file size − 36, which
///                 is validated against the real on-disk size BEFORE any
///                 allocation, so a corrupt header can never trigger an
///                 unbounded resize
///       32     4  CRC-32 (util/crc32.h) over the payload bytes
///       36     …  payload
///
/// Writes are atomic: the frame goes to `path + ".tmp"`, is flushed and
/// fsync()ed, then rename()d over `path` (and the containing directory is
/// fsync()ed so the rename itself is durable). A crash at any instant leaves
/// either the old complete file or the new complete file — never a torn one.
/// Reads validate magic, version, endianness, kind, size, and CRC before a
/// single payload field is trusted.

/// What a frame's payload encodes. Stored in the header so a file of one
/// kind handed to another loader fails loudly instead of mis-parsing.
enum class FrameKind : uint32_t {
  kTrainingCheckpoint = 1,  ///< core/checkpoint.h TrainingCheckpoint
  kSweepCheckpoint = 2,     ///< core/checkpoint.h SweepCheckpoint
  kModelBase = 3,           ///< serve/model_store.h full model checkpoint
  kModelDelta = 4,          ///< serve/model_store.h changed-rows delta
  kStreamingState = 5,      ///< core/streaming.h online trainer state
  kDistMessage = 6,         ///< dist/transport.h socket protocol message
};

inline constexpr uint32_t kFrameVersion = 2;

/// Size of the frame header preceding every payload (the table above).
inline constexpr size_t kFrameHeaderBytes = 36;

/// Accumulates a payload in memory. Only trivially copyable scalar types may
/// be written (they are memcpy'd in native byte order; the frame's endian tag
/// guards cross-host reads).
class PayloadWriter {
 public:
  template <typename T>
  void Put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const uint8_t*>(&v);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }

  template <typename T>
  void PutVec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Put(static_cast<uint64_t>(v.size()));
    const auto* p = reinterpret_cast<const uint8_t*>(v.data());
    bytes_.insert(bytes_.end(), p, p + v.size() * sizeof(T));
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounded cursor over a validated payload. Every Get checks the remaining
/// byte count first; GetVec additionally validates the stored element count
/// against the remaining bytes BEFORE resizing the destination, so a
/// corrupt length can never cause an oversized allocation.
class PayloadReader {
 public:
  PayloadReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit PayloadReader(const std::vector<uint8_t>& payload)
      : PayloadReader(payload.data(), payload.size()) {}

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

  template <typename T>
  bool Get(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) return false;
    __builtin_memcpy(v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  /// Reads a u64 element count followed by that many elements. The count is
  /// range-checked against the remaining payload (and `max_count`) before
  /// any memory is reserved.
  template <typename T>
  bool GetVec(std::vector<T>* out, uint64_t max_count = UINT64_MAX) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    if (!Get(&count)) return false;
    if (count > max_count || count > remaining() / sizeof(T)) return false;
    out->resize(static_cast<size_t>(count));
    if (count > 0) {  // data() of an empty vector may be null — UB for memcpy
      __builtin_memcpy(out->data(), data_ + pos_, count * sizeof(T));
      pos_ += count * sizeof(T);
    }
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Atomically replaces `path` with a frame of `kind` wrapping `payload`:
/// temp file + fsync + rename + directory fsync. On failure returns false,
/// fills `*error` (when non-null), and removes the temp file; `path` is left
/// untouched, so the previous checkpoint survives a failed save.
bool WriteFrame(const std::string& path, FrameKind kind,
                const std::vector<uint8_t>& payload, std::string* error);

/// Loads and fully validates a frame: magic, format version, endianness,
/// kind, header-vs-file size agreement, and payload CRC. Returns the payload
/// bytes; the caller parses them with a PayloadReader. Never allocates more
/// than the file's real on-disk size.
bool ReadFrame(const std::string& path, FrameKind expected_kind,
               std::vector<uint8_t>* payload, std::string* error);

/// The same frame, stream-shaped (sockets, pipes): no file size exists to
/// validate the header against, so the payload size is instead bounded by
/// the caller's `max_payload` before any allocation, and every read loops on
/// short reads and retries EINTR — the regular-file single-read assumption
/// is exactly what breaks on a socket.

/// A frame header parsed out of `kFrameHeaderBytes` raw bytes. `Parse`
/// validates magic, version, endianness, and the reserved field; kind and
/// size policy are the caller's (streams accept any registered kind and
/// bound the size themselves).
struct ParsedFrameHeader {
  FrameKind kind = FrameKind::kTrainingCheckpoint;
  uint64_t payload_size = 0;
  uint32_t payload_crc = 0;
};

/// Parses + validates the fixed-size frame header from `bytes` (at least
/// kFrameHeaderBytes). Returns false and fills `*error` on a malformed
/// header — for a stream that means framing is lost and the connection must
/// be torn down, so callers treat it as fatal, not retryable.
bool ParseFrameHeader(const uint8_t* bytes, ParsedFrameHeader* header,
                      std::string* error);

/// Serializes a complete frame (header + payload) into one contiguous wire
/// image — what WriteFrameFd sends and what fault-injection tests mutate.
std::vector<uint8_t> EncodeFrame(FrameKind kind,
                                 const std::vector<uint8_t>& payload);

/// Blocking frame write to a socket/pipe fd: loops on short writes, retries
/// EINTR. Returns false on any other error (EPIPE after a peer death being
/// the expected one).
bool WriteFrameFd(int fd, FrameKind kind, const std::vector<uint8_t>& payload,
                  std::string* error);

/// Blocking frame read from a socket/pipe fd: loops on short reads (a
/// socket may deliver one byte at a time), retries EINTR, validates the
/// header and the payload CRC. `max_payload` bounds the allocation a corrupt
/// header could otherwise provoke — there is no file size to check against
/// on a stream. Returns false on EOF, malformed header, oversized payload,
/// or CRC mismatch; `*eof` (when non-null) distinguishes a clean EOF before
/// any header byte from mid-frame errors.
bool ReadFrameFd(int fd, FrameKind expected_kind, uint64_t max_payload,
                 std::vector<uint8_t>* payload, std::string* error,
                 bool* eof = nullptr);

/// Creates `dir` (and parents) if missing. Returns false + `*error` when the
/// path exists as a non-directory or creation fails.
bool EnsureDirectory(const std::string& dir, std::string* error);

/// True when `path` names an existing regular file.
bool FileExists(const std::string& path);

}  // namespace warplda

#endif  // WARPLDA_UTIL_CHECKPOINT_IO_H_

#include "util/checkpoint_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "obs/metrics.h"
#include "util/crc32.h"

namespace warplda {

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct FrameMetrics {
  obs::Histogram* write_us;
  obs::Histogram* fsync_us;
  obs::Counter* bytes_total;

  static const FrameMetrics& Get() {
    static const FrameMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      FrameMetrics fm;
      fm.write_us = reg.GetHistogram(
          "ckpt_frame_write_us", "Serialized frame write() time (pre-fsync)");
      fm.fsync_us = reg.GetHistogram(
          "ckpt_frame_fsync_us", "Frame data fsync() time (pre-rename)");
      fm.bytes_total = reg.GetCounter("ckpt_frame_bytes_total",
                                      "Frame bytes written (header+payload)");
      return fm;
    }();
    return m;
  }
};

// "WARPCKP2": same byte spelling convention as the retired v1 magic, bumped
// because v1 files carried no version, endianness, size, or CRC fields.
constexpr uint64_t kMagic = 0x57415250'434B5032ULL;
constexpr uint64_t kMagicV1 = 0x57415250'434B5031ULL;  // recognized, rejected
constexpr uint32_t kEndianTag = 0x01020304u;

struct FrameHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t endian;
  uint32_t kind;
  uint32_t reserved;
  uint64_t payload_size;
  uint32_t payload_crc;
} __attribute__((packed));
static_assert(sizeof(FrameHeader) == kFrameHeaderBytes);

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// write() until done; short writes are legal for regular files under signal
/// interruption — and routine on sockets — so loop.
bool WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

/// read() until `size` bytes arrive, looping on short reads and retrying
/// EINTR — a pipe or socket legally delivers one byte at a time, so a
/// single-shot read of a multi-byte header is a stream-semantics bug.
/// Returns the bytes actually read; < size means EOF (or, with *failed set,
/// a hard read error).
size_t ReadExact(int fd, uint8_t* data, size_t size, bool* failed) {
  if (failed != nullptr) *failed = false;
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (failed != nullptr) *failed = true;
      return done;
    }
    if (n == 0) return done;  // EOF
    done += static_cast<size_t>(n);
  }
  return done;
}

/// fsync() the directory containing `path`, making a completed rename()
/// durable. Best effort: some filesystems reject directory fsync; a failure
/// there narrows the durability window but never corrupts, so it is not
/// treated as a save failure.
void SyncParentDir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

bool WriteFrame(const std::string& path, FrameKind kind,
                const std::vector<uint8_t>& payload, std::string* error) {
  FrameHeader header;
  header.magic = kMagic;
  header.version = kFrameVersion;
  header.endian = kEndianTag;
  header.kind = static_cast<uint32_t>(kind);
  header.reserved = 0;
  header.payload_size = payload.size();
  header.payload_crc = Crc32(payload.data(), payload.size());

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Fail(error, Errno("cannot open " + tmp + " for writing"));
  }
  const bool metrics = obs::MetricsEnabled();
  const int64_t write_start = metrics ? NowUs() : 0;
  bool ok = WriteAll(fd, reinterpret_cast<const uint8_t*>(&header),
                     sizeof(header)) &&
            WriteAll(fd, payload.data(), payload.size());
  const int64_t fsync_start = metrics ? NowUs() : 0;
  // fsync before rename: the data must be on disk before the name points at
  // it, or a crash could expose a complete-looking but empty file.
  ok = ok && ::fsync(fd) == 0;
  if (metrics && ok) {
    const FrameMetrics& fm = FrameMetrics::Get();
    fm.write_us->Observe(static_cast<double>(fsync_start - write_start));
    fm.fsync_us->Observe(static_cast<double>(NowUs() - fsync_start));
    fm.bytes_total->Inc(sizeof(header) + payload.size());
  }
  if (::close(fd) != 0) ok = false;
  if (!ok) {
    const std::string message = Errno("write error on " + tmp);
    ::unlink(tmp.c_str());
    return Fail(error, message);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string message =
        Errno("cannot rename " + tmp + " over " + path);
    ::unlink(tmp.c_str());
    return Fail(error, message);
  }
  SyncParentDir(path);
  return true;
}

bool ReadFrame(const std::string& path, FrameKind expected_kind,
               std::vector<uint8_t>* payload, std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Fail(error, Errno("cannot open " + path));

  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return Fail(error, path + ": not a regular file");
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);

  auto fail = [&](const std::string& message) {
    ::close(fd);
    return Fail(error, message);
  };

  FrameHeader header;
  if (file_size < sizeof(header)) {
    return fail(path + ": truncated header (" + std::to_string(file_size) +
                " of " + std::to_string(sizeof(header)) + " bytes)");
  }
  bool read_failed = false;
  if (ReadExact(fd, reinterpret_cast<uint8_t*>(&header), sizeof(header),
                &read_failed) != sizeof(header)) {
    return fail(read_failed ? Errno("read error on " + path)
                            : path + ": unexpected EOF in header");
  }
  if (header.magic != kMagic) {
    if (header.magic == kMagicV1) {
      return fail(path +
                  ": unversioned v1 checkpoint (WARPCKP1) — re-save with "
                  "this build; v1 files carry no CRC and are no longer "
                  "trusted");
    }
    return fail(path + ": bad magic");
  }
  if (header.endian != kEndianTag) {
    return fail(path + ": endianness mismatch (written on a byte-swapped "
                       "host)");
  }
  if (header.version != kFrameVersion) {
    return fail(path + ": unsupported format version " +
                std::to_string(header.version) + " (expected " +
                std::to_string(kFrameVersion) + ")");
  }
  if (header.kind != static_cast<uint32_t>(expected_kind)) {
    return fail(path + ": wrong payload kind " +
                std::to_string(header.kind) + " (expected " +
                std::to_string(static_cast<uint32_t>(expected_kind)) + ")");
  }
  if (header.reserved != 0) {
    return fail(path + ": nonzero reserved field");
  }
  // The load-bearing bound: the stored payload size must agree with the real
  // on-disk size, checked before the payload buffer is sized. A corrupt or
  // truncated header can therefore never provoke an allocation larger than
  // the bytes actually present.
  if (header.payload_size != file_size - sizeof(header)) {
    return fail(path + ": payload size " +
                std::to_string(header.payload_size) +
                " disagrees with file size " + std::to_string(file_size) +
                " − " + std::to_string(sizeof(header)) + " header bytes");
  }

  payload->resize(static_cast<size_t>(header.payload_size));
  if (ReadExact(fd, payload->data(), payload->size(), &read_failed) !=
      payload->size()) {
    return fail(read_failed ? Errno("read error on " + path)
                            : path + ": unexpected EOF in payload");
  }
  ::close(fd);

  const uint32_t crc = Crc32(payload->data(), payload->size());
  if (crc != header.payload_crc) {
    return Fail(error, path + ": payload CRC mismatch (stored " +
                           std::to_string(header.payload_crc) +
                           ", computed " + std::to_string(crc) + ")");
  }
  return true;
}

bool ParseFrameHeader(const uint8_t* bytes, ParsedFrameHeader* header,
                      std::string* error) {
  FrameHeader raw;
  std::memcpy(&raw, bytes, sizeof(raw));
  if (raw.magic != kMagic) {
    return Fail(error, raw.magic == kMagicV1
                           ? "unversioned v1 frame (WARPCKP1) rejected"
                           : "bad frame magic");
  }
  if (raw.endian != kEndianTag) {
    return Fail(error, "frame endianness mismatch");
  }
  if (raw.version != kFrameVersion) {
    return Fail(error, "unsupported frame version " +
                           std::to_string(raw.version) + " (expected " +
                           std::to_string(kFrameVersion) + ")");
  }
  if (raw.reserved != 0) {
    return Fail(error, "nonzero reserved field in frame header");
  }
  header->kind = static_cast<FrameKind>(raw.kind);
  header->payload_size = raw.payload_size;
  header->payload_crc = raw.payload_crc;
  return true;
}

std::vector<uint8_t> EncodeFrame(FrameKind kind,
                                 const std::vector<uint8_t>& payload) {
  FrameHeader header;
  header.magic = kMagic;
  header.version = kFrameVersion;
  header.endian = kEndianTag;
  header.kind = static_cast<uint32_t>(kind);
  header.reserved = 0;
  header.payload_size = payload.size();
  header.payload_crc = Crc32(payload.data(), payload.size());
  std::vector<uint8_t> wire(sizeof(header) + payload.size());
  std::memcpy(wire.data(), &header, sizeof(header));
  if (!payload.empty()) {
    std::memcpy(wire.data() + sizeof(header), payload.data(), payload.size());
  }
  return wire;
}

bool WriteFrameFd(int fd, FrameKind kind, const std::vector<uint8_t>& payload,
                  std::string* error) {
  const std::vector<uint8_t> wire = EncodeFrame(kind, payload);
  if (!WriteAll(fd, wire.data(), wire.size())) {
    return Fail(error, Errno("frame write to fd failed"));
  }
  return true;
}

bool ReadFrameFd(int fd, FrameKind expected_kind, uint64_t max_payload,
                 std::vector<uint8_t>* payload, std::string* error,
                 bool* eof) {
  if (eof != nullptr) *eof = false;
  uint8_t raw[kFrameHeaderBytes];
  bool read_failed = false;
  const size_t got = ReadExact(fd, raw, sizeof(raw), &read_failed);
  if (got != sizeof(raw)) {
    if (got == 0 && !read_failed) {
      if (eof != nullptr) *eof = true;
      return Fail(error, "EOF before frame header");
    }
    return Fail(error, read_failed ? Errno("frame header read failed")
                                   : "unexpected EOF inside frame header");
  }
  ParsedFrameHeader header;
  if (!ParseFrameHeader(raw, &header, error)) return false;
  if (header.kind != expected_kind) {
    return Fail(error, "wrong frame kind " +
                           std::to_string(static_cast<uint32_t>(header.kind)) +
                           " (expected " +
                           std::to_string(
                               static_cast<uint32_t>(expected_kind)) +
                           ")");
  }
  // No file size exists on a stream; the caller's bound stands in for it so
  // a corrupt header can never provoke an unbounded allocation.
  if (header.payload_size > max_payload) {
    return Fail(error, "frame payload size " +
                           std::to_string(header.payload_size) +
                           " exceeds stream bound " +
                           std::to_string(max_payload));
  }
  payload->resize(static_cast<size_t>(header.payload_size));
  if (ReadExact(fd, payload->data(), payload->size(), &read_failed) !=
      payload->size()) {
    return Fail(error, read_failed ? Errno("frame payload read failed")
                                   : "unexpected EOF inside frame payload");
  }
  const uint32_t crc = Crc32(payload->data(), payload->size());
  if (crc != header.payload_crc) {
    return Fail(error, "frame payload CRC mismatch (stored " +
                           std::to_string(header.payload_crc) +
                           ", computed " + std::to_string(crc) + ")");
  }
  return true;
}

bool EnsureDirectory(const std::string& dir, std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Fail(error, "cannot create directory " + dir + ": " + ec.message());
  }
  if (!std::filesystem::is_directory(dir, ec)) {
    return Fail(error, dir + " exists but is not a directory");
  }
  return true;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace warplda

// Serving-time inference: train once, then fold in a stream of unseen
// documents with the O(1) MH machinery (fixed topics). Demonstrates the
// model save/load cycle and reports inference throughput — the deployment
// pattern for recommendation/advertising systems the paper cites.
//
//   ./streaming_inference [--k 20] [--docs 2000] [--out /path/for/model]
#include <cstdio>

#include <filesystem>
#include <vector>

#include "core/inference.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "corpus/synthetic.h"
#include "util/checkpoint_io.h"
#include "util/flags.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  int64_t k = 20;
  int64_t stream_docs = 2000;
  // Artifacts go under --out (default: a temp subdir), never the CWD.
  std::string out =
      (std::filesystem::temp_directory_path() / "warplda_streaming")
          .string();
  warplda::FlagSet flags;
  flags.Int("k", &k, "number of topics")
      .Int("docs", &stream_docs, "unseen documents to fold in")
      .String("out", &out, "directory for the saved model");
  if (!flags.Parse(argc, argv)) return 1;

  // Train on one half of a synthetic corpus.
  warplda::SyntheticConfig synth;
  synth.num_docs = 2000;
  synth.vocab_size = 3000;
  synth.num_topics = static_cast<uint32_t>(k);
  synth.mean_doc_length = 80;
  synth.word_zipf_skew = 1.2;
  warplda::SyntheticCorpus data = warplda::GenerateLdaCorpus(synth);

  warplda::LdaConfig config =
      warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
  config.alpha = 0.1;
  warplda::WarpLdaSampler sampler;
  warplda::TrainOptions options;
  options.iterations = 60;
  options.eval_every = 0;
  warplda::TrainResult result = Train(sampler, data.corpus, config, options);
  std::printf("trained: ll %.6g in %.2fs\n", result.final_log_likelihood,
              result.total_seconds);

  // Persist + reload, as a serving process would.
  warplda::TopicModel model = result.ToModel(data.corpus, config);
  std::string error;
  if (!warplda::EnsureDirectory(out, &error)) {
    std::fprintf(stderr, "cannot create --out: %s\n", error.c_str());
    return 1;
  }
  const std::string model_path =
      (std::filesystem::path(out) / "streaming_model.bin").string();
  if (!model.Save(model_path, &error)) {
    std::fprintf(stderr, "save failed: %s\n", error.c_str());
    return 1;
  }
  warplda::TopicModel serving;
  if (!serving.Load(model_path, &error)) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }

  // Stream unseen documents from the same generator.
  synth.seed = 4321;
  synth.num_docs = static_cast<uint32_t>(stream_docs);
  warplda::SyntheticCorpus stream = warplda::GenerateLdaCorpus(synth);

  warplda::InferenceOptions inf_options;
  inf_options.iterations = 20;
  warplda::Inferencer inferencer(serving, inf_options);

  warplda::Stopwatch watch;
  uint64_t tokens = 0;
  std::vector<uint32_t> topic_histogram(serving.num_topics(), 0);
  for (warplda::DocId d = 0; d < stream.corpus.num_docs(); ++d) {
    auto doc = stream.corpus.doc_tokens(d);
    std::vector<warplda::WordId> words(doc.begin(), doc.end());
    ++topic_histogram[inferencer.MostLikelyTopic(words)];
    tokens += words.size();
  }
  double seconds = watch.Seconds();
  std::printf("folded in %lld docs (%llu tokens) in %.2fs  (%.2fK docs/s, "
              "%.2fM tokens/s)\n",
              static_cast<long long>(stream_docs),
              static_cast<unsigned long long>(tokens), seconds,
              stream_docs / seconds / 1e3, tokens / seconds / 1e6);

  std::printf("stream topic distribution:");
  for (uint32_t count : topic_histogram) std::printf(" %u", count);
  std::printf("\n");
  return 0;
}

// Concurrent topic-inference serving: the deployment pattern the paper's
// conclusion points at ("a fast sampler for topic assignments" behind heavy
// user traffic).
//
// Scenario 1 (train-then-serve): train WarpLDA offline, publish one snapshot
// to a ModelStore, and answer a burst of requests from a worker pool.
//
// Scenario 2 (train-while-serve): a StreamingWarpLda keeps learning on a
// background thread and hot-publishes its running estimate every few
// mini-batches while the server answers requests without interruption — the
// RCU snapshot swap means zero downtime and no torn reads. Republishes go
// through the incremental path: the trainer exports its changed-word set
// and ModelStore::PublishDelta rebuilds only those rows, sharing the rest
// with the previous snapshot. With --ckpt-dir set, every publish is also
// made durable: the store checkpoints the model chain (one base + small
// per-publish deltas — the on-disk mirror of the delta publish) and the
// streaming trainer persists its online state, both crash-safely.
//
// Scenario 3 (recover, --ckpt-dir only): simulates the restart after a
// crash — a fresh ModelStore restores the delta chain and serves
// immediately at the checkpointed version, and a fresh StreamingWarpLda
// reloads its state and keeps learning where the dead process stopped.
//
//   ./topic_server [--k 20] [--workers 4] [--requests 2000] [--batch 8]
//                  [--ckpt-dir DIR] [--metrics-every SEC]
//
// --metrics-every SEC turns on the obs metrics layer and dumps the full
// Prometheus-style exposition (serve_*, store_*, trainer_*, ...) to stdout
// every SEC seconds plus once at exit — the scrape loop a sidecar exporter
// would run.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/streaming.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "corpus/synthetic.h"
#include "obs/metrics.h"
#include "serve/model_store.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace {

/// Periodically prints the global metrics exposition, like a /metrics scrape
/// loop. Joined (with one final dump) at destruction.
class MetricsDumper {
 public:
  explicit MetricsDumper(int64_t every_seconds) {
    if (every_seconds <= 0) return;
    warplda::obs::SetMetricsEnabled(true);
    thread_ = std::thread([this, every_seconds] {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!stop_) {
        cv_.wait_for(lock, std::chrono::seconds(every_seconds),
                     [this] { return stop_; });
        if (stop_) return;
        Dump();
      }
    });
  }

  ~MetricsDumper() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    Dump();  // final scrape so short runs still show the exposition
  }

 private:
  static void Dump() {
    std::printf("==== metrics ====\n%s==== end metrics ====\n",
                warplda::obs::MetricsRegistry::Global().TextSnapshot().c_str());
    std::fflush(stdout);
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

std::vector<std::vector<warplda::WordId>> RequestLoad(
    const warplda::Corpus& corpus, uint32_t count) {
  std::vector<std::vector<warplda::WordId>> load;
  load.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    auto doc = corpus.doc_tokens(i % corpus.num_docs());
    load.emplace_back(doc.begin(), doc.end());
  }
  return load;
}

void PrintStats(const char* label, const warplda::serve::ServerStats& stats) {
  std::printf(
      "%s: completed %llu/%llu (rejected %llu)  qps %.0f  "
      "p50 %.0fus  p99 %.0fus  mean batch %.1f\n",
      label, static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.rejected), stats.qps,
      stats.p50_micros, stats.p99_micros, stats.mean_batch);
}

}  // namespace

int main(int argc, char** argv) {
  int64_t k = 20;
  int64_t workers = 4;
  int64_t requests = 2000;
  int64_t batch = 8;
  int64_t metrics_every = 0;
  std::string ckpt_dir;
  warplda::FlagSet flags;
  flags.Int("k", &k, "number of topics")
      .Int("workers", &workers, "inference worker threads")
      .Int("requests", &requests, "requests per scenario")
      .Int("batch", &batch, "micro-batch size per worker pass")
      .Int("metrics-every", &metrics_every,
           "dump the metrics exposition to stdout every SEC seconds "
           "(0 = off; also enables hot-path metric recording)")
      .String("ckpt-dir", &ckpt_dir,
              "directory for crash-safe serving/trainer checkpoints "
              "(empty = durability off)");
  if (!flags.Parse(argc, argv)) return 1;

  MetricsDumper metrics_dumper(metrics_every);

  warplda::SyntheticConfig synth;
  synth.num_docs = 2000;
  synth.vocab_size = 3000;
  synth.num_topics = static_cast<uint32_t>(k);
  synth.mean_doc_length = 80;
  warplda::SyntheticCorpus data = warplda::GenerateLdaCorpus(synth);
  std::printf("corpus: %s\n", warplda::DescribeCorpus(data.corpus).c_str());

  const auto load = RequestLoad(data.corpus,
                                static_cast<uint32_t>(requests));

  warplda::serve::ServerOptions server_options;
  server_options.num_workers = static_cast<uint32_t>(workers);
  server_options.max_batch = static_cast<uint32_t>(batch);
  server_options.inference.iterations = 20;

  // ---------------------------------------------- 1. train, then serve ---
  std::printf("\n[1] train-then-serve\n");
  warplda::LdaConfig config =
      warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
  config.alpha = 0.1;
  warplda::WarpLdaSampler sampler;
  warplda::TrainOptions train_options;
  train_options.iterations = 50;
  train_options.eval_every = 0;
  warplda::Stopwatch train_watch;
  Train(sampler, data.corpus, config, train_options);
  std::printf("trained %lld topics in %.2fs\n", static_cast<long long>(k),
              train_watch.Seconds());

  warplda::serve::ModelStore store;
  warplda::Stopwatch publish_watch;
  auto snapshot = store.Publish(sampler.ExportSharedModel());
  std::printf(
      "published snapshot v%llu in %.1fms (tiered sparse, %.1f MB resident; "
      "a dense VxK phi row tier alone would be %.1f MB and grows with K)\n",
      static_cast<unsigned long long>(store.version()), publish_watch.Millis(),
      snapshot->ApproxBytes() / (1024.0 * 1024.0),
      static_cast<double>(snapshot->num_words()) * snapshot->num_topics() *
          sizeof(double) / (1024.0 * 1024.0));

  {
    warplda::serve::InferenceServer server(store, server_options);
    std::vector<std::future<warplda::serve::InferenceResult>> futures;
    futures.reserve(load.size());
    for (size_t i = 0; i < load.size(); ++i) {
      futures.push_back(server.Submit(load[i], /*seed=*/i));
    }
    std::vector<uint32_t> topic_histogram(static_cast<uint32_t>(k), 0);
    for (auto& future : futures) {
      ++topic_histogram[future.get().top_topic];
    }
    PrintStats("serve", server.Stats());
    std::printf("topic histogram:");
    for (uint32_t count : topic_histogram) std::printf(" %u", count);
    std::printf("\n");
  }

  // ------------------------------------------- 2. train while serving ---
  std::printf("\n[2] train-while-serve (streaming trainer hot-publishes)\n");
  warplda::serve::ModelStore live_store;
  warplda::StreamingOptions stream_options;
  stream_options.num_topics = static_cast<uint32_t>(k);
  stream_options.batch_size = 128;
  warplda::StreamingWarpLda streaming(synth.vocab_size, stream_options);

  // Bootstrap snapshot from the first mini-batches so the server never
  // waits, then keep learning and publishing in the background. After the
  // bootstrap, every republish is incremental: the trainer reports which
  // words' rows actually changed and PublishDelta rebuilds only those
  // (falling back to a compacting full rebuild when almost everything
  // changed, as in the early epochs here). nullptr: the bootstrap publish
  // is full anyway, it only needs to advance the delta tracking.
  streaming.ProcessCorpus(data.corpus, 1);
  live_store.Publish(streaming.ExportSharedModel(nullptr));

  std::atomic<bool> training_done{false};
  std::thread trainer([&] {
    std::vector<warplda::WordId> delta;
    for (int epoch = 0; epoch < 3; ++epoch) {
      streaming.ProcessCorpus(data.corpus, 1);
      auto model = streaming.ExportSharedModel(&delta);
      auto published = live_store.PublishDelta(model, delta);
      // arena_chain() == 1 means the store chose the compacting full
      // rebuild (e.g. an oversized delta); > 1 means rows were shared.
      std::printf("  epoch %d: %zu/%u words changed — %s\n", epoch + 1,
                  delta.size(), static_cast<unsigned>(model->num_words()),
                  published->arena_chain() > 1
                      ? "delta-published (unchanged rows shared)"
                      : "full rebuild (compacted)");
      if (!ckpt_dir.empty()) {
        // Durability rides along with every publish: the model chain on
        // disk (first call a full base, then per-publish deltas) and the
        // trainer's online state, each written atomically — a kill between
        // any two lines here loses at most one publish.
        std::string error;
        if (!live_store.CheckpointTo(ckpt_dir, &error) ||
            !streaming.SaveState(ckpt_dir + "/streaming.state", &error)) {
          std::printf("  checkpoint failed: %s\n", error.c_str());
        }
      }
    }
    training_done.store(true);
  });

  {
    warplda::serve::InferenceServer server(live_store, server_options);
    // Keep traffic flowing in waves for as long as the trainer is running
    // (cycling through the request load), so requests land on successive
    // snapshots; one extra wave exercises the final model.
    std::vector<std::future<warplda::serve::InferenceResult>> futures;
    size_t next = 0;
    bool final_wave = false;
    while (!final_wave) {
      final_wave = training_done.load();
      for (int i = 0; i < 64; ++i, ++next) {
        futures.push_back(server.Submit(load[next % load.size()], next));
      }
      server.Drain();
    }
    uint64_t min_version = ~0ull;
    uint64_t max_version = 0;
    for (auto& future : futures) {
      auto result = future.get();
      min_version = std::min(min_version, result.model_version);
      max_version = std::max(max_version, result.model_version);
    }
    trainer.join();
    PrintStats("serve", server.Stats());
    std::printf("served across model versions v%llu..v%llu "
                "(%llu publishes total) with zero downtime\n",
                static_cast<unsigned long long>(min_version),
                static_cast<unsigned long long>(max_version),
                static_cast<unsigned long long>(live_store.version()));
  }

  // --------------------------------- 3. recover after a simulated crash ---
  if (!ckpt_dir.empty()) {
    std::printf("\n[3] recover from %s (fresh store + fresh trainer)\n",
                ckpt_dir.c_str());
    std::string error;
    warplda::serve::ModelStore recovered_store;
    if (!recovered_store.RestoreFrom(ckpt_dir, &error)) {
      std::printf("restore failed: %s\n", error.c_str());
      return 1;
    }
    std::printf(
        "restored serving snapshot v%llu from the base+delta chain\n",
        static_cast<unsigned long long>(recovered_store.version()));
    {
      warplda::serve::InferenceServer server(recovered_store, server_options);
      std::vector<std::future<warplda::serve::InferenceResult>> futures;
      for (size_t i = 0; i < 256; ++i) {
        futures.push_back(server.Submit(load[i % load.size()], i));
      }
      for (auto& future : futures) future.get();
      PrintStats("serve (restored)", server.Stats());
    }

    warplda::StreamingWarpLda recovered_trainer(synth.vocab_size,
                                                stream_options);
    if (!recovered_trainer.LoadState(ckpt_dir + "/streaming.state", &error)) {
      std::printf("trainer restore failed: %s\n", error.c_str());
      return 1;
    }
    recovered_trainer.ProcessCorpus(data.corpus, 1);
    // First post-restore export reports every word as changed (the delta
    // base died with the old process), so this publish compacts to a full
    // rebuild — subsequent ones are incremental again.
    std::vector<warplda::WordId> delta;
    auto model = recovered_trainer.ExportSharedModel(&delta);
    recovered_store.PublishDelta(model, delta);
    std::printf(
        "streaming trainer resumed at batch %llu and published v%llu — "
        "training continues where the dead process stopped\n",
        static_cast<unsigned long long>(recovered_trainer.batches_seen()),
        static_cast<unsigned long long>(recovered_store.version()));
  }
  return 0;
}

// Quickstart: train WarpLDA on a small synthetic corpus, inspect topics,
// save the model, and infer topic proportions for a new document.
//
//   ./quickstart [--k 10] [--iters 50] [--out /path/for/model]
#include <cstdio>

#include <filesystem>

#include "core/inference.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "corpus/synthetic.h"
#include "util/checkpoint_io.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  int64_t k = 10;
  int64_t iterations = 50;
  // Artifacts go under --out (default: a temp subdir), never the CWD —
  // running an example must not litter whatever directory you happen to
  // be in.
  std::string out =
      (std::filesystem::temp_directory_path() / "warplda_quickstart")
          .string();
  warplda::FlagSet flags;
  flags.Int("k", &k, "number of topics")
      .Int("iters", &iterations, "training iterations")
      .String("out", &out, "directory for the saved model");
  if (!flags.Parse(argc, argv)) return 1;

  // 1. Get a corpus. Synthetic here; see the other examples for building one
  //    from raw text (tokenizer) or UCI files (corpus/uci.h).
  warplda::SyntheticConfig synth;
  synth.num_docs = 500;
  synth.vocab_size = 1000;
  synth.num_topics = 10;
  synth.mean_doc_length = 64;
  warplda::SyntheticCorpus data = warplda::GenerateLdaCorpus(synth);
  std::printf("corpus: %s\n", warplda::DescribeCorpus(data.corpus).c_str());

  // 2. Train with WarpLDA. LdaConfig::PaperDefaults gives α=50/K, β=0.01.
  warplda::LdaConfig config =
      warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
  config.alpha = 0.1;  // small K: use a sharper document prior
  warplda::WarpLdaSampler sampler;
  warplda::TrainOptions options;
  options.iterations = static_cast<uint32_t>(iterations);
  options.eval_every = 10;
  options.verbose = true;
  warplda::TrainResult result =
      Train(sampler, data.corpus, config, options);

  // 3. Inspect the learned topics (word ids; real apps map via Vocabulary).
  warplda::TopicModel model = result.ToModel(data.corpus, config);
  for (warplda::TopicId topic = 0; topic < 3 && topic < model.num_topics();
       ++topic) {
    std::printf("topic %u:", topic);
    for (const auto& [word, count] : model.TopWords(topic, 8)) {
      std::printf(" w%u(%d)", word, count);
    }
    std::printf("\n");
  }

  // 4. Persist and reload the model.
  std::string error;
  if (!warplda::EnsureDirectory(out, &error)) {
    std::fprintf(stderr, "cannot create --out: %s\n", error.c_str());
    return 1;
  }
  const std::string model_path =
      (std::filesystem::path(out) / "quickstart_model.bin").string();
  if (!model.Save(model_path, &error)) {
    std::fprintf(stderr, "save failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("model saved to %s\n", model_path.c_str());

  // 5. Infer topic proportions for an unseen document.
  warplda::Inferencer inferencer(model);
  auto doc = data.corpus.doc_tokens(0);
  std::vector<warplda::WordId> words(doc.begin(), doc.end());
  auto theta = inferencer.InferTheta(words);
  std::printf("doc 0 most likely topic: %u (theta:",
              inferencer.MostLikelyTopic(words));
  for (double t : theta) std::printf(" %.2f", t);
  std::printf(")\n");
  return 0;
}

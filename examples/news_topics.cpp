// Topic discovery from raw text: the workload the paper's introduction
// motivates (news analysis). Tokenizes a small embedded news-wire corpus
// with the same pipeline the paper applies to ClueWeb (lowercase, strip
// punctuation, drop stop words), trains WarpLDA, and prints human-readable
// topics plus per-article classifications.
//
//   ./news_topics [--k 4] [--iters 150]
#include <cstdio>
#include <string>
#include <vector>

#include "core/inference.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "corpus/synthetic.h"
#include "corpus/tokenizer.h"
#include "util/flags.h"

namespace {

// Four themes (markets, sports, science, politics), several templated
// articles each; enough signal for K=4 topics to separate cleanly.
std::vector<std::string> NewsArticles() {
  std::vector<std::string> base = {
      "Stocks rallied as the market closed higher; traders cited strong "
      "earnings and rising shares across the tech sector.",
      "The central bank held interest rates steady while investors watched "
      "inflation data and bond yields in the market.",
      "Shares of the retailer jumped after earnings beat forecasts, lifting "
      "the stock index and trader sentiment.",
      "Currency markets steadied as investors weighed interest rates, "
      "inflation and corporate earnings reports.",
      "The striker scored twice as the team won the match, climbing the "
      "league table before the championship game.",
      "Fans cheered when the coach praised the goalkeeper after a tense "
      "match that ended the team's losing streak in the league.",
      "The tournament final saw the champion defend the title with a late "
      "goal; players and fans celebrated the victory.",
      "Injury news dominated the locker room as the team prepared for the "
      "playoff match against the league leaders.",
      "Researchers published results from the telescope survey, revealing "
      "new galaxies and data about dark matter and cosmic expansion.",
      "The laboratory experiment confirmed the protein's structure, and "
      "scientists said the research could guide new vaccine design.",
      "A study of climate data showed warming oceans; researchers urged "
      "further experiments and satellite measurements.",
      "Scientists sequenced the genome of the ancient species, and the "
      "research data suggested surprising evolutionary links.",
      "Parliament debated the new bill as the minister defended the "
      "government's policy before the election campaign.",
      "The senator's speech on the budget drew criticism from the "
      "opposition party during the legislative session.",
      "Voters weighed the candidates' policy platforms as the election "
      "campaign entered its final week of debates.",
      "The government announced a coalition agreement after weeks of "
      "negotiation between party leaders and ministers.",
  };
  // Repeat with light variation so the corpus has enough tokens.
  std::vector<std::string> articles;
  for (int rep = 0; rep < 8; ++rep) {
    for (const auto& text : base) articles.push_back(text);
  }
  return articles;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t k = 4;
  int64_t iterations = 150;
  warplda::FlagSet flags;
  flags.Int("k", &k, "number of topics").Int("iters", &iterations,
                                             "training iterations");
  if (!flags.Parse(argc, argv)) return 1;

  auto articles = NewsArticles();
  warplda::TokenizedCorpus data = warplda::BuildCorpusFromTexts(articles);
  std::printf("tokenized %zu articles: %s\n", articles.size(),
              warplda::DescribeCorpus(data.corpus).c_str());

  warplda::LdaConfig config =
      warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
  config.alpha = 0.1;
  config.seed = 2024;
  warplda::WarpLdaSampler sampler;
  warplda::TrainOptions options;
  options.iterations = static_cast<uint32_t>(iterations);
  options.eval_every = 0;
  warplda::TrainResult result = Train(sampler, data.corpus, config, options);
  std::printf("trained %lld iterations, final ll %.4g\n",
              static_cast<long long>(iterations),
              result.final_log_likelihood);

  warplda::TopicModel model = result.ToModel(data.corpus, config);
  for (warplda::TopicId topic = 0; topic < model.num_topics(); ++topic) {
    std::printf("topic %u: %s\n", topic,
                model.DescribeTopic(topic, data.vocabulary, 8).c_str());
  }

  // Classify fresh headlines with the trained model.
  warplda::Inferencer inferencer(model);
  warplda::Tokenizer tokenizer;
  std::vector<std::string> fresh = {
      "Bond yields fell as traders bet on an interest rate cut.",
      "The goalkeeper saved a penalty and the team won the final.",
      "A new telescope dataset maps dark matter across galaxies.",
      "The minister survived a confidence vote in parliament.",
  };
  for (const auto& headline : fresh) {
    std::vector<warplda::WordId> ids;
    for (const auto& term : tokenizer.Tokenize(headline)) {
      warplda::WordId id = data.vocabulary.Find(term);
      if (id != warplda::Vocabulary::kNotFound) ids.push_back(id);
    }
    warplda::TopicId topic = inferencer.MostLikelyTopic(ids);
    std::printf("[topic %u] %s\n", topic, headline.c_str());
  }
  return 0;
}

// Command-line LDA workbench: the "download a dataset and go" entry point a
// downstream user reaches for first. Trains any of the six samplers on a UCI
// bag-of-words dataset (or a synthetic stand-in), with checkpoint/resume,
// model export, topic printing, and held-out evaluation.
//
//   ./lda_tool --docword docword.nytimes.txt --vocab vocab.nytimes.txt
//              --sampler warplda --k 1000 --iters 100
//              --model model.bin --checkpoint run.ckpt
//   ./lda_tool --resume run.ckpt --docword ... --iters 50   # continue
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "baselines/sampler.h"
#include "core/checkpoint.h"
#include "core/trainer.h"
#include "corpus/split.h"
#include "corpus/synthetic.h"
#include "corpus/uci.h"
#include "eval/coherence.h"
#include "eval/hyperparams.h"
#include "eval/log_likelihood.h"
#include "eval/perplexity.h"
#include "util/flags.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  std::string docword;
  std::string vocab_path;
  std::string sampler_name = "warplda";
  std::string model_path;
  std::string checkpoint_path;
  std::string resume_path;
  int64_t k = 100;
  int64_t iterations = 50;
  int64_t mh_steps = 2;
  int64_t eval_every = 10;
  int64_t min_df = 1;
  int64_t top_words = 10;
  int64_t optimize_hyper = 0;
  double heldout_fraction = 0.0;
  double synth_scale = 0.001;
  bool quiet = false;

  warplda::FlagSet flags;
  flags.String("docword", &docword, "UCI docword file (synthetic if empty)")
      .String("vocab", &vocab_path, "UCI vocab file (optional)")
      .String("sampler", &sampler_name,
              "cgs|sparselda|aliaslda|f+lda|lightlda|warplda")
      .String("model", &model_path, "write the trained TopicModel here")
      .String("checkpoint", &checkpoint_path, "write a resume checkpoint here")
      .String("resume", &resume_path, "resume training from this checkpoint")
      .Int("k", &k, "number of topics")
      .Int("iters", &iterations, "training iterations")
      .Int("m", &mh_steps, "MH proposals per token")
      .Int("eval-every", &eval_every, "log-likelihood stride (0 = end only)")
      .Int("min-df", &min_df, "drop words in fewer documents than this")
      .Int("top-words", &top_words, "top words to print per topic")
      .Int("optimize-hyper", &optimize_hyper,
           "re-estimate priors every N iterations (0 = off)")
      .Double("heldout", &heldout_fraction,
              "hold out this fraction of docs for perplexity")
      .Double("scale", &synth_scale, "synthetic corpus scale if no docword")
      .Bool("quiet", &quiet, "suppress per-iteration output");
  if (!flags.Parse(argc, argv)) return 1;

  // --- Load data ---
  warplda::Corpus corpus;
  warplda::Vocabulary vocabulary;
  std::string error;
  if (!docword.empty()) {
    if (!warplda::uci::ReadDocword(docword, &corpus, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    if (!vocab_path.empty() &&
        !warplda::uci::ReadVocab(vocab_path, &vocabulary, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  } else {
    warplda::SyntheticConfig config = warplda::NYTimesShape(synth_scale);
    corpus = warplda::GenerateLdaCorpus(config).corpus;
    std::printf("no --docword given; using a synthetic NYTimes-shape corpus\n");
  }
  std::printf("corpus: %s\n", warplda::DescribeCorpus(corpus).c_str());

  if (min_df > 1) {
    warplda::VocabFilter filter;
    filter.min_document_frequency = static_cast<uint32_t>(min_df);
    warplda::FilteredCorpus filtered =
        warplda::FilterVocabulary(corpus, filter);
    std::printf("pruned vocabulary %u -> %u words\n", corpus.num_words(),
                filtered.corpus.num_words());
    // Remap the vocabulary strings alongside the ids.
    if (vocabulary.size() > 0) {
      warplda::Vocabulary pruned;
      for (warplda::WordId w : filtered.new_to_old) {
        pruned.GetOrAdd(w < vocabulary.size() ? vocabulary.word(w)
                                              : "w" + std::to_string(w));
      }
      vocabulary = std::move(pruned);
    }
    corpus = std::move(filtered.corpus);
  }

  warplda::Corpus heldout;
  if (heldout_fraction > 0.0) {
    warplda::CorpusSplit split =
        warplda::SplitByDocument(corpus, heldout_fraction);
    corpus = std::move(split.train);
    heldout = std::move(split.heldout);
    std::printf("held out %u documents for perplexity\n",
                heldout.num_docs());
  }

  // --- Build / restore the sampler ---
  std::string factory_error;
  auto sampler = warplda::CreateSamplerChecked(sampler_name, &factory_error);
  if (sampler == nullptr) {
    std::fprintf(stderr, "%s\n", factory_error.c_str());
    return 1;
  }
  warplda::LdaConfig config =
      warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
  config.mh_steps = static_cast<uint32_t>(mh_steps);
  uint32_t start_iteration = 0;
  if (!resume_path.empty()) {
    warplda::TrainingCheckpoint checkpoint;
    if (!warplda::LoadCheckpoint(resume_path, &checkpoint, &error) ||
        !warplda::RestoreSampler(*sampler, corpus, checkpoint, &error)) {
      std::fprintf(stderr, "resume failed: %s\n", error.c_str());
      return 1;
    }
    config = checkpoint.config;
    start_iteration = checkpoint.iteration;
    std::printf("resumed %s at iteration %u\n", sampler->name().c_str(),
                start_iteration);
  } else {
    sampler->Init(corpus, config);
  }

  // --- Train ---
  warplda::Stopwatch total;
  double sampling_seconds = 0.0;
  for (int64_t i = 1; i <= iterations; ++i) {
    warplda::Stopwatch watch;
    sampler->Iterate();
    sampling_seconds += watch.Seconds();
    if (optimize_hyper > 0 && i % optimize_hyper == 0 && i != iterations) {
      auto assignments = sampler->Assignments();
      config.alpha = warplda::EstimateSymmetricAlpha(
          corpus, assignments, config.num_topics, config.alpha);
      config.beta = warplda::EstimateSymmetricBeta(
          corpus, assignments, config.num_topics, config.beta);
      sampler->SetPriors(config.alpha, config.beta);
      if (!quiet) {
        std::printf("iter %4lld  priors optimized: alpha=%.4g beta=%.4g\n",
                    static_cast<long long>(start_iteration + i), config.alpha,
                    config.beta);
      }
    }
    bool last = i == iterations;
    if (!quiet &&
        (last || (eval_every > 0 && i % eval_every == 0))) {
      double ll = warplda::JointLogLikelihood(
          corpus, sampler->Assignments(), config.num_topics, config.alpha,
          config.beta);
      std::printf("iter %4lld  time %7.2fs  ll %.6e  %.2fM tok/s\n",
                  static_cast<long long>(start_iteration + i),
                  sampling_seconds, ll,
                  corpus.num_tokens() * i / sampling_seconds / 1e6);
      std::fflush(stdout);
    }
  }

  // --- Outputs ---
  warplda::TopicModel model(corpus, sampler->Assignments(),
                            config.num_topics, config.alpha, config.beta);
  if (top_words > 0) {
    uint32_t show = std::min<uint32_t>(model.num_topics(), 10);
    for (warplda::TopicId topic = 0; topic < show; ++topic) {
      if (vocabulary.size() > 0) {
        std::printf("topic %u: %s\n", topic,
                    model
                        .DescribeTopic(topic, vocabulary,
                                       static_cast<uint32_t>(top_words))
                        .c_str());
      } else {
        std::printf("topic %u:", topic);
        for (const auto& [w, c] :
             model.TopWords(topic, static_cast<uint32_t>(top_words))) {
          std::printf(" w%u", w);
        }
        std::printf("\n");
      }
    }
    auto coherence = warplda::UMassCoherence(model, corpus);
    std::printf("mean UMass coherence: %.3f\n", coherence.mean);
  }

  if (heldout.num_docs() > 0) {
    std::printf("held-out perplexity: %.2f\n",
                warplda::HeldOutPerplexity(model, heldout));
  }
  if (!model_path.empty()) {
    if (!model.Save(model_path, &error)) {
      std::fprintf(stderr, "model save failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("model written to %s\n", model_path.c_str());
  }
  if (!checkpoint_path.empty()) {
    warplda::TrainingCheckpoint checkpoint;
    checkpoint.config = config;
    checkpoint.iteration =
        start_iteration + static_cast<uint32_t>(iterations);
    checkpoint.assignments = sampler->Assignments();
    if (!warplda::SaveCheckpoint(checkpoint, checkpoint_path, &error)) {
      std::fprintf(stderr, "checkpoint save failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("checkpoint written to %s\n", checkpoint_path.c_str());
  }
  std::printf("done in %.2fs\n", total.Seconds());
  return 0;
}

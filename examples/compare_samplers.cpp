// Side-by-side comparison of all six samplers on one corpus: convergence,
// wall time, throughput, and sparsity statistics. A minimal version of the
// paper's evaluation you can point at any UCI dataset.
//
//   ./compare_samplers [--k 100] [--iters 30] [--docword path --scale ...]
#include <cstdio>
#include <memory>
#include <string>

#include "baselines/sampler.h"
#include "core/trainer.h"
#include "corpus/synthetic.h"
#include "corpus/uci.h"
#include "eval/log_likelihood.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  int64_t k = 100;
  int64_t iterations = 30;
  int64_t mh_steps = 2;
  std::string docword;
  double scale = 0.001;
  warplda::FlagSet flags;
  flags.Int("k", &k, "number of topics")
      .Int("iters", &iterations, "training iterations")
      .Int("m", &mh_steps, "MH proposals per token (MH samplers)")
      .String("docword", &docword, "optional UCI docword file")
      .Double("scale", &scale, "synthetic NYTimes-shape scale if no docword");
  if (!flags.Parse(argc, argv)) return 1;

  warplda::Corpus corpus;
  if (!docword.empty()) {
    std::string error;
    if (!warplda::uci::ReadDocword(docword, &corpus, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
  } else {
    warplda::SyntheticConfig config = warplda::NYTimesShape(scale);
    corpus = warplda::GenerateLdaCorpus(config).corpus;
  }
  std::printf("corpus: %s\n\n", warplda::DescribeCorpus(corpus).c_str());

  warplda::LdaConfig config =
      warplda::LdaConfig::PaperDefaults(static_cast<uint32_t>(k));
  config.mh_steps = static_cast<uint32_t>(mh_steps);
  warplda::TrainOptions options;
  options.iterations = static_cast<uint32_t>(iterations);
  options.eval_every = 0;

  std::printf("%-11s %14s %10s %12s %8s %8s\n", "sampler", "final-ll",
              "seconds", "Mtok/s", "K_d", "K_w");
  for (const auto& name : warplda::SamplerNames()) {
    auto sampler = warplda::CreateSampler(name);
    warplda::TrainResult result = Train(*sampler, corpus, config, options);
    auto sparsity = warplda::ComputeSparsity(corpus, result.assignments);
    std::printf("%-11s %14.6g %10.2f %12.2f %8.1f %8.1f\n",
                sampler->name().c_str(), result.final_log_likelihood,
                result.total_seconds,
                corpus.num_tokens() * options.iterations /
                    result.total_seconds / 1e6,
                sparsity.mean_topics_per_doc, sparsity.mean_topics_per_word);
    std::fflush(stdout);
  }
  return 0;
}

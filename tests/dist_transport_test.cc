#include "dist/transport.h"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/warp_lda.h"
#include "corpus/synthetic.h"
#include "dist/dist_executor.h"
#include "dist/fault.h"
#include "dist/partitioner.h"
#include "obs/metrics.h"

namespace warplda {
namespace {

// ==========================================================================
// FrameChannel: the reliability envelope, one fault at a time. Both channel
// ends live in this process, joined by a socketpair — real fds, real
// nonblocking io threads, deterministic injected faults.

struct ChannelPair {
  std::unique_ptr<FrameChannel> a;
  std::unique_ptr<FrameChannel> b;
};

ChannelPair MakePair(const FaultSpec& a_fault = {},
                     const FaultSpec& b_fault = {}) {
  int fds[2];
  std::string error;
  EXPECT_TRUE(MakeSocketPair(fds, &error)) << error;
  FrameChannel::Options a_opts;
  a_opts.fault = a_fault;
  a_opts.peer = "b";
  FrameChannel::Options b_opts;
  b_opts.fault = b_fault;
  b_opts.peer = "a";
  ChannelPair pair;
  pair.a = std::make_unique<FrameChannel>(fds[0], a_opts);
  pair.b = std::make_unique<FrameChannel>(fds[1], b_opts);
  return pair;
}

std::vector<uint8_t> Body(uint32_t i) {
  std::vector<uint8_t> body(64 + i % 17);
  for (size_t j = 0; j < body.size(); ++j) {
    body[j] = static_cast<uint8_t>(i * 31 + j);
  }
  return body;
}

/// Sends `n` messages a->b and asserts in-order, uncorrupted delivery —
/// the invariant every fault below must leave intact.
void ExpectReliableDelivery(ChannelPair& pair, uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) {
    ASSERT_TRUE(pair.a->Send(i, Body(i)));
  }
  for (uint32_t i = 0; i < n; ++i) {
    FrameChannel::Message msg;
    ASSERT_EQ(pair.b->Receive(&msg, 10000), FrameChannel::RecvStatus::kOk)
        << "message " << i << " never arrived";
    EXPECT_EQ(msg.type, i) << "reordered delivery";
    EXPECT_EQ(msg.body, Body(i)) << "corrupted delivery";
  }
}

TEST(FrameChannelTest, CleanExchangeBothDirections) {
  ChannelPair pair = MakePair();
  ExpectReliableDelivery(pair, 32);
  ASSERT_TRUE(pair.b->Send(99, Body(99)));
  FrameChannel::Message msg;
  ASSERT_EQ(pair.a->Receive(&msg, 10000), FrameChannel::RecvStatus::kOk);
  EXPECT_EQ(msg.type, 99u);
  EXPECT_EQ(pair.a->stats().frames_sent, 32u);
  EXPECT_EQ(pair.b->stats().frames_received, 32u);
  EXPECT_EQ(pair.b->stats().crc_rejects, 0u);
}

TEST(FrameChannelTest, TryReceiveAndTimeout) {
  ChannelPair pair = MakePair();
  FrameChannel::Message msg;
  EXPECT_FALSE(pair.b->TryReceive(&msg));
  EXPECT_EQ(pair.b->Receive(&msg, 20), FrameChannel::RecvStatus::kTimeout);
  ASSERT_TRUE(pair.a->Send(7, Body(7)));
  ASSERT_EQ(pair.b->Receive(&msg, 10000), FrameChannel::RecvStatus::kOk);
  EXPECT_EQ(msg.type, 7u);
}

TEST(FrameChannelTest, DroppedFramesAreRetransmitted) {
  FaultSpec fault;
  fault.seed = 0xD20;
  fault.drop = 0.3;
  fault.max_faults = 8;
  ChannelPair pair = MakePair(fault);
  ExpectReliableDelivery(pair, 48);
  const FrameChannel::Stats sent = pair.a->stats();
  EXPECT_GT(sent.faults_injected, 0u) << "fault schedule never fired";
  EXPECT_GT(sent.retransmits, 0u) << "drops must be repaired by retransmit";
  // Bounded: a frame suffers at most one fault and retransmissions are
  // clean, so repairs never exceed the injector's budget times the go-back-N
  // window cost.
  EXPECT_LE(sent.retransmits,
            static_cast<uint64_t>(fault.max_faults) * 48u);
  EXPECT_TRUE(pair.a->alive());
  EXPECT_TRUE(pair.b->alive());
}

TEST(FrameChannelTest, CorruptedFramesAreRejectedByCrcAndRenegotiated) {
  FaultSpec fault;
  fault.seed = 0xC0DE;
  fault.corrupt = 0.25;
  fault.max_faults = 6;
  ChannelPair pair = MakePair(fault);
  ExpectReliableDelivery(pair, 48);
  const FrameChannel::Stats sent = pair.a->stats();
  const FrameChannel::Stats recv = pair.b->stats();
  EXPECT_GT(sent.faults_injected, 0u);
  // Every injected corruption must be caught by the payload CRC — none may
  // reach the application (ExpectReliableDelivery already proved payload
  // integrity; this proves the *mechanism* was the CRC, not luck).
  EXPECT_GE(recv.crc_rejects, sent.faults_injected);
  EXPECT_GT(recv.naks_sent, 0u);
  EXPECT_GT(sent.naks_received, 0u);
  EXPECT_GT(sent.retransmits, 0u);
}

TEST(FrameChannelTest, DuplicatedFramesAreSuppressed) {
  FaultSpec fault;
  fault.seed = 0xD0B;
  fault.duplicate = 0.4;
  fault.max_faults = 10;
  ChannelPair pair = MakePair(fault);
  ExpectReliableDelivery(pair, 48);
  EXPECT_GT(pair.a->stats().faults_injected, 0u);
  EXPECT_GT(pair.b->stats().dup_suppressed, 0u)
      << "duplicates must be re-acked, never redelivered";
  EXPECT_EQ(pair.b->stats().frames_received, 48u);
}

TEST(FrameChannelTest, DelayedFramesStillArriveInOrder) {
  FaultSpec fault;
  fault.seed = 0xDE1A;
  fault.delay = 0.3;
  fault.delay_ms = 15;
  fault.max_faults = 6;
  ChannelPair pair = MakePair(fault);
  ExpectReliableDelivery(pair, 48);
  EXPECT_GT(pair.a->stats().faults_injected, 0u);
}

TEST(FrameChannelTest, AllFaultsAtOnceConverge) {
  FaultSpec fault;
  fault.seed = 0xA11;
  fault.drop = 0.1;
  fault.corrupt = 0.1;
  fault.duplicate = 0.1;
  fault.delay = 0.1;
  fault.max_faults = 24;
  // Both directions faulted (distinct seeds), acks included in the chaos.
  FaultSpec back = fault;
  back.seed = 0xB22;
  ChannelPair pair = MakePair(fault, back);
  ExpectReliableDelivery(pair, 64);
  EXPECT_GT(pair.a->stats().faults_injected + pair.b->stats().faults_injected,
            0u);
}

TEST(FrameChannelTest, PeerCloseIsDetectedAsDeath) {
  ChannelPair pair = MakePair();
  ASSERT_TRUE(pair.a->Send(1, Body(1)));
  FrameChannel::Message msg;
  ASSERT_EQ(pair.b->Receive(&msg, 10000), FrameChannel::RecvStatus::kOk);
  pair.b->Close();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (pair.a->alive() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_FALSE(pair.a->alive());
  EXPECT_FALSE(pair.a->death_reason().empty());
  EXPECT_FALSE(pair.a->Send(2, Body(2)));
  EXPECT_EQ(pair.a->Receive(&msg, 50), FrameChannel::RecvStatus::kClosed);
}

TEST(FrameChannelTest, DeterministicFaultSchedule) {
  FaultSpec spec;
  spec.seed = 42;
  spec.drop = 0.2;
  spec.corrupt = 0.2;
  spec.duplicate = 0.2;
  spec.delay = 0.2;
  FaultInjector x(spec);
  FaultInjector y(spec);
  uint32_t fired = 0;
  for (uint64_t seq = 1; seq <= 200; ++seq) {
    const FaultAction ax = x.Decide(seq);
    ASSERT_EQ(static_cast<int>(ax), static_cast<int>(y.Decide(seq)))
        << "schedule must be a pure function of (seed, seq)";
    if (ax != FaultAction::kNone) ++fired;
  }
  EXPECT_GT(fired, 100u);  // ~80% fault probability
  // Corruption must actually change bytes.
  std::vector<uint8_t> payload(32, 0xAB);
  x.CorruptPayload(5, payload.data(), payload.size());
  EXPECT_NE(payload, std::vector<uint8_t>(32, 0xAB));
}

TEST(FrameChannelTest, LoopbackTcpConnectAcceptWithTimeouts) {
  uint16_t port = 0;
  std::string error;
  const int listen_fd = ListenLoopback(&port, &error);
  ASSERT_GE(listen_fd, 0) << error;
  ASSERT_NE(port, 0);
  // Accept deadline fires when nobody connects.
  EXPECT_LT(AcceptWithTimeout(listen_fd, 30, &error), 0);
  const int client = ConnectLoopback(port, 5000, &error);
  ASSERT_GE(client, 0) << error;
  const int server = AcceptWithTimeout(listen_fd, 5000, &error);
  ASSERT_GE(server, 0) << error;
  ::close(listen_fd);
  ChannelPair pair;
  FrameChannel::Options opts;
  pair.a = std::make_unique<FrameChannel>(client, opts);
  pair.b = std::make_unique<FrameChannel>(server, opts);
  ExpectReliableDelivery(pair, 16);
  // Connect to a dead port must time out, not hang.
  EXPECT_LT(ConnectLoopback(1, 100, &error), 0);
}

// ==========================================================================
// Distributed execution: the full fault matrix. Every run must end
// bit-identical to an uninterrupted single-process Iterate() — faults and
// deaths may change the wall clock, never the samples.

Corpus DistTestCorpus() {
  SyntheticConfig config;
  config.num_docs = 90;
  config.vocab_size = 160;
  config.num_topics = 5;
  config.mean_doc_length = 18;
  config.alpha = 0.1;
  config.seed = 1234;
  return GenerateLdaCorpus(config).corpus;
}

LdaConfig DistTestConfig() {
  LdaConfig config = LdaConfig::PaperDefaults(8);
  config.seed = 4321;
  config.mh_steps = 2;
  return config;
}

std::vector<TopicId> ReferenceAssignments(const Corpus& corpus,
                                          uint32_t iterations) {
  WarpLdaSampler serial;
  serial.Init(corpus, DistTestConfig());
  for (uint32_t i = 0; i < iterations; ++i) serial.Iterate();
  return serial.Assignments();
}

struct DistRun {
  DistResult result;
  std::vector<TopicId> assignments;
};

DistRun RunDist(const Corpus& corpus, DistConfig config,
                uint32_t grid = 4) {
  WarpLdaSampler sampler;
  sampler.Init(corpus, DistTestConfig());
  SweepPlan plan =
      MakeSweepPlan(corpus, grid, grid, PartitionStrategy::kGreedy);
  DistRun run;
  run.result = RunDistributedSweeps(sampler, corpus, plan, config);
  run.assignments = sampler.Assignments();
  return run;
}

enum class FaultKind { kNone, kDrop, kDelay, kDuplicate, kCorrupt };

FaultSpec MatrixFault(FaultKind kind) {
  FaultSpec fault;
  if (kind == FaultKind::kNone) return fault;
  fault.seed = 0xFA17;
  fault.max_faults = 16;
  switch (kind) {
    case FaultKind::kDrop:
      fault.drop = 0.08;
      break;
    case FaultKind::kDelay:
      fault.delay = 0.08;
      fault.delay_ms = 10;
      break;
    case FaultKind::kDuplicate:
      fault.duplicate = 0.08;
      break;
    case FaultKind::kCorrupt:
      fault.corrupt = 0.08;
      break;
    case FaultKind::kNone:
      break;
  }
  return fault;
}

using MatrixParam = std::tuple<FaultKind, uint32_t>;

class DistFaultMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

std::string MatrixParamName(const ::testing::TestParamInfo<MatrixParam>& info) {
  static const char* kNames[] = {"NoFault", "Drop", "Delay", "Duplicate",
                                 "Corrupt"};
  return std::string(kNames[static_cast<int>(std::get<0>(info.param))]) + "_" +
         std::to_string(std::get<1>(info.param)) + "workers";
}

TEST_P(DistFaultMatrixTest, SweepIsBitIdenticalToIterate) {
  const FaultKind kind = std::get<0>(GetParam());
  const uint32_t workers = std::get<1>(GetParam());
  const uint32_t iterations = 2;
  Corpus corpus = DistTestCorpus();

  DistConfig config;
  config.num_workers = workers;
  config.iterations = iterations;
  config.fault = MatrixFault(kind);
  DistRun run = RunDist(corpus, config);

  ASSERT_TRUE(run.result.ok) << run.result.error;
  EXPECT_EQ(run.result.iterations_completed, iterations);
  EXPECT_EQ(run.result.recoveries, 0u);
  EXPECT_EQ(run.assignments, ReferenceAssignments(corpus, iterations))
      << "distributed sweep diverged from single-process Iterate()";

  const FrameChannel::Stats all = [&] {
    FrameChannel::Stats s = run.result.coordinator_stats;
    const FrameChannel::Stats& w = run.result.worker_stats;
    s.frames_sent += w.frames_sent;
    s.retransmits += w.retransmits;
    s.crc_rejects += w.crc_rejects;
    s.dup_suppressed += w.dup_suppressed;
    s.faults_injected += w.faults_injected;
    return s;
  }();
  if (kind != FaultKind::kNone) {
    EXPECT_GT(all.faults_injected, 0u)
        << "fault schedule never fired — the matrix tested nothing";
    // The bounded-retry envelope: faults are first-transmission-only and
    // retransmissions go out clean, so repair traffic is bounded by the
    // injection budget times the go-back-N window, never unbounded.
    EXPECT_LE(all.retransmits, all.faults_injected * 64 + 64);
  }
  if (kind == FaultKind::kCorrupt) {
    EXPECT_GT(all.crc_rejects, 0u) << "corruption never hit the CRC check";
  }
  if (kind == FaultKind::kDuplicate) {
    EXPECT_GT(all.dup_suppressed, 0u);
  }
  if (kind == FaultKind::kNone) {
    EXPECT_EQ(all.crc_rejects, 0u);
    EXPECT_EQ(all.faults_injected, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FaultByWorkers, DistFaultMatrixTest,
    ::testing::Combine(::testing::Values(FaultKind::kNone, FaultKind::kDrop,
                                         FaultKind::kDelay,
                                         FaultKind::kDuplicate,
                                         FaultKind::kCorrupt),
                       ::testing::Values(1u, 2u, 4u)),
    MatrixParamName);

TEST(DistExecutorTest, RetryCountsVisibleInObsMetrics) {
  obs::SetMetricsEnabled(true);
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* retransmits = reg.GetCounter("dist_retransmits_total");
  obs::Counter* crc_rejects = reg.GetCounter("dist_crc_rejects_total");
  obs::Counter* faults = reg.GetCounter("dist_faults_injected_total");
  const uint64_t retrans_before = retransmits->Value();
  const uint64_t crc_before = crc_rejects->Value();
  const uint64_t faults_before = faults->Value();

  Corpus corpus = DistTestCorpus();
  DistConfig config;
  config.num_workers = 2;
  config.iterations = 1;
  config.fault = MatrixFault(FaultKind::kCorrupt);
  DistRun run = RunDist(corpus, config);
  obs::SetMetricsEnabled(false);

  ASSERT_TRUE(run.result.ok) << run.result.error;
  // Coordinator-side injections and rejects land in the global registry
  // (worker processes keep their own); the retry envelope is observable
  // without touching channel internals.
  const uint64_t faults_seen = faults->Value() - faults_before;
  EXPECT_GT(faults_seen + run.result.worker_stats.faults_injected, 0u);
  EXPECT_GT(crc_rejects->Value() - crc_before +
                run.result.worker_stats.crc_rejects,
            0u);
  EXPECT_LE(retransmits->Value() - retrans_before,
            (faults_seen + run.result.worker_stats.faults_injected) * 64 +
                64);
}

TEST(DistExecutorTest, KillWorkerAtEveryBarrierStaysBitIdentical) {
  const uint32_t iterations = 2;
  Corpus corpus = DistTestCorpus();
  const std::vector<TopicId> reference =
      ReferenceAssignments(corpus, iterations);

  for (const bool mid_stage : {false, true}) {
    uint32_t barriers_covered = 0;
    for (uint32_t barrier = 0; barrier < 16; ++barrier) {
      DistConfig config;
      config.num_workers = 2;
      config.iterations = iterations;
      config.kill.worker = 1;
      config.kill.barrier = barrier;
      config.kill.mid_stage = mid_stage;
      DistRun run = RunDist(corpus, config);
      ASSERT_TRUE(run.result.ok)
          << "barrier " << barrier << " mid_stage " << mid_stage << ": "
          << run.result.error;
      ASSERT_EQ(run.assignments, reference)
          << "kill at barrier " << barrier << " (mid_stage " << mid_stage
          << ") changed the samples";
      if (run.result.recoveries == 0) break;  // past the last real barrier
      EXPECT_EQ(run.result.recoveries, 1u);
      EXPECT_EQ(run.result.final_epoch, 1u);
      // The dead worker's blocks must all be repartitioned to the survivor.
      for (uint32_t owner : run.result.block_owner) EXPECT_EQ(owner, 0u);
      ++barriers_covered;
    }
    EXPECT_GE(barriers_covered, 4u)
        << "expected at least one kill per stage span of a sweep";
  }
}

TEST(DistExecutorTest, ExternalSigkillMidSweepRecovers) {
  const uint32_t iterations = 2;
  Corpus corpus = DistTestCorpus();
  const std::vector<TopicId> reference =
      ReferenceAssignments(corpus, iterations);

  // The kill races the sweep, so try progressively earlier kills; delay 0
  // lands right after the handshake and cannot miss. Whenever it lands, the
  // result must not change.
  bool recovered = false;
  for (const int delay_ms : {10, 4, 0}) {
    DistConfig config;
    config.num_workers = 2;
    config.iterations = iterations;
    std::thread killer;
    config.on_workers_spawned = [&](const std::vector<int>& pids) {
      ASSERT_EQ(pids.size(), 2u);
      const int victim = pids[1];
      killer = std::thread([victim, delay_ms] {
        if (delay_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        }
        ::kill(victim, SIGKILL);
      });
    };
    DistRun run = RunDist(corpus, config);
    if (killer.joinable()) killer.join();

    ASSERT_TRUE(run.result.ok) << run.result.error;
    ASSERT_EQ(run.assignments, reference)
        << "external SIGKILL at +" << delay_ms << "ms changed the samples";
    if (run.result.recoveries >= 1) {
      for (uint32_t owner : run.result.block_owner) EXPECT_EQ(owner, 0u);
      recovered = true;
      break;
    }
  }
  EXPECT_TRUE(recovered) << "no kill landed inside a run";
}

TEST(DistExecutorTest, KillUnderActiveFaultInjection) {
  const uint32_t iterations = 2;
  Corpus corpus = DistTestCorpus();

  DistConfig config;
  config.num_workers = 3;
  config.iterations = iterations;
  config.fault = MatrixFault(FaultKind::kDrop);
  config.kill.worker = 2;
  config.kill.barrier = 2;
  DistRun run = RunDist(corpus, config);

  ASSERT_TRUE(run.result.ok) << run.result.error;
  EXPECT_EQ(run.result.recoveries, 1u);
  EXPECT_EQ(run.assignments, ReferenceAssignments(corpus, iterations));
  for (uint32_t owner : run.result.block_owner) EXPECT_NE(owner, 2u);
}

TEST(DistExecutorTest, LoopbackTcpTransportMatchesIterate) {
  const uint32_t iterations = 1;
  Corpus corpus = DistTestCorpus();
  DistConfig config;
  config.num_workers = 2;
  config.iterations = iterations;
  config.use_tcp = true;
  DistRun run = RunDist(corpus, config);
  ASSERT_TRUE(run.result.ok) << run.result.error;
  EXPECT_EQ(run.assignments, ReferenceAssignments(corpus, iterations));
}

TEST(DistExecutorTest, BlockWeightsCoverEveryToken) {
  Corpus corpus = DistTestCorpus();
  SweepPlan plan = MakeSweepPlan(corpus, 3, 2, PartitionStrategy::kGreedy);
  const std::vector<uint64_t> weights = BlockTokenWeights(corpus, plan);
  ASSERT_EQ(weights.size(), 6u);
  uint64_t total = 0;
  for (uint64_t w : weights) total += w;
  EXPECT_EQ(total, corpus.num_tokens());
}

TEST(DistExecutorTest, RejectsInvalidConfigurations) {
  Corpus corpus = DistTestCorpus();
  WarpLdaSampler sampler;
  sampler.Init(corpus, DistTestConfig());
  SweepPlan plan = MakeSweepPlan(corpus, 2, 2, PartitionStrategy::kGreedy);

  DistConfig config;
  config.num_workers = 0;
  EXPECT_FALSE(RunDistributedSweeps(sampler, corpus, plan, config).ok);

  SweepPlan bad = plan;
  bad.doc_block.resize(3);  // wrong size for the corpus
  config.num_workers = 1;
  EXPECT_FALSE(RunDistributedSweeps(sampler, corpus, bad, config).ok);
}

}  // namespace
}  // namespace warplda

#include "util/alias_table.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace warplda {
namespace {

std::vector<double> EmpiricalFrequencies(const AliasTable& table, uint32_t n,
                                         int samples, uint64_t seed,
                                         uint32_t outcome_space = 0) {
  Rng rng(seed);
  std::vector<double> freq(outcome_space == 0 ? n : outcome_space, 0.0);
  for (int i = 0; i < samples; ++i) freq[table.Sample(rng)] += 1.0;
  for (auto& f : freq) f /= samples;
  return freq;
}

TEST(AliasTableTest, SingleOutcome) {
  AliasTable table;
  table.Build({5.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(AliasTableTest, UniformWeights) {
  AliasTable table;
  table.Build({1.0, 1.0, 1.0, 1.0});
  auto freq = EmpiricalFrequencies(table, 4, 100000, 2);
  for (double f : freq) EXPECT_NEAR(f, 0.25, 0.01);
}

TEST(AliasTableTest, SkewedWeights) {
  AliasTable table;
  table.Build({8.0, 1.0, 1.0});
  auto freq = EmpiricalFrequencies(table, 3, 200000, 3);
  EXPECT_NEAR(freq[0], 0.8, 0.01);
  EXPECT_NEAR(freq[1], 0.1, 0.01);
  EXPECT_NEAR(freq[2], 0.1, 0.01);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable table;
  table.Build({1.0, 0.0, 1.0});
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(table.Sample(rng), 1u);
}

TEST(AliasTableTest, TotalWeightPreserved) {
  AliasTable table;
  table.Build({1.5, 2.5, 6.0});
  EXPECT_DOUBLE_EQ(table.total_weight(), 10.0);
  EXPECT_EQ(table.size(), 3u);
}

TEST(AliasTableTest, UnnormalizedWeightsEquivalent) {
  AliasTable small;
  AliasTable large;
  small.Build({0.2, 0.3, 0.5});
  large.Build({20.0, 30.0, 50.0});
  auto f1 = EmpiricalFrequencies(small, 3, 100000, 5);
  auto f2 = EmpiricalFrequencies(large, 3, 100000, 5);
  for (int k = 0; k < 3; ++k) EXPECT_NEAR(f1[k], f2[k], 0.01);
}

TEST(AliasTableTest, SparseBuildReturnsOutcomeIds) {
  AliasTable table;
  table.BuildSparse({{7, 1.0}, {42, 3.0}});
  Rng rng(6);
  int count42 = 0;
  for (int i = 0; i < 40000; ++i) {
    uint32_t s = table.Sample(rng);
    EXPECT_TRUE(s == 7 || s == 42);
    count42 += s == 42;
  }
  EXPECT_NEAR(count42 / 40000.0, 0.75, 0.01);
}

TEST(AliasTableTest, SparseSingleOutcome) {
  AliasTable table;
  table.BuildSparse({{123, 2.0}});
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(rng), 123u);
}

TEST(AliasTableTest, LargeDistributionMatches) {
  const uint32_t n = 1000;
  std::vector<double> weights(n);
  double total = 0.0;
  Rng wrng(8);
  for (auto& w : weights) {
    w = wrng.NextDouble() + 0.01;
    total += w;
  }
  AliasTable table;
  table.Build(weights);
  auto freq = EmpiricalFrequencies(table, n, 2000000, 9);
  // Spot-check a few outcomes with generous tolerance.
  for (uint32_t k : {0u, 137u, 500u, 999u}) {
    EXPECT_NEAR(freq[k], weights[k] / total, 0.002);
  }
}

TEST(AliasTableTest, RebuildReplacesDistribution) {
  AliasTable table;
  table.Build({1.0, 0.0});
  table.Build({0.0, 1.0});
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(table.Sample(rng), 1u);
}

TEST(AliasTableTest, EmptyIsReportedUntilBuild) {
  AliasTable table;
  EXPECT_TRUE(table.empty());
  table.Build({1.0});
  EXPECT_FALSE(table.empty());
}

}  // namespace
}  // namespace warplda

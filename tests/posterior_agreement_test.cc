// Posterior-agreement property test: the strongest correctness check we can
// make without analytic posteriors. On a tiny corpus the collapsed posterior
// is shared by every correct sampler, so label-invariant statistics estimated
// over many independent chains must agree across algorithms:
//
//   co(i,j) = P(z_i == z_j)   for selected token pairs (i,j).
//
// CGS, SparseLDA, AliasLDA and F+LDA are exact CGS variants and must match
// CGS within Monte-Carlo error; LightLDA and WarpLDA are MH/MCEM-based and
// must land in a slightly wider band. A factorization or exclusion bug in
// any sampler shifts these probabilities far outside the tolerances.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/sampler.h"
#include "corpus/corpus.h"

namespace warplda {
namespace {

// 3 docs, 4 words, 10 tokens: small enough to mix fully in a few sweeps.
Corpus TinyCorpus() {
  CorpusBuilder builder;
  builder.set_num_words(4);
  builder.AddDocument(std::vector<WordId>{0, 0, 1});
  builder.AddDocument(std::vector<WordId>{2, 3, 3, 2});
  builder.AddDocument(std::vector<WordId>{0, 1, 2});
  return builder.Build();
}

// Token pairs whose co-assignment probabilities we track: same word in the
// same doc (high), same doc different words, different docs same word,
// completely unrelated.
const std::pair<TokenIdx, TokenIdx> kPairs[] = {
    {0, 1},  // doc0: word0, word0
    {0, 2},  // doc0: word0 vs word1
    {3, 6},  // doc1: word2 vs word2 (positions 3 and 6)
    {0, 7},  // doc0 word0 vs doc2 word0
    {2, 4},  // doc0 word1 vs doc1 word3
};
constexpr size_t kNumPairs = sizeof(kPairs) / sizeof(kPairs[0]);

std::vector<double> CoassignmentProbabilities(const std::string& name,
                                              int chains, int sweeps) {
  Corpus corpus = TinyCorpus();
  std::vector<double> co(kNumPairs, 0.0);
  for (int chain = 0; chain < chains; ++chain) {
    auto sampler = CreateSampler(name);
    LdaConfig config;
    config.num_topics = 3;
    config.alpha = 0.4;
    config.beta = 0.3;
    config.mh_steps = 4;
    config.seed = 1000 + 7919ull * chain;
    sampler->Init(corpus, config);
    for (int i = 0; i < sweeps; ++i) sampler->Iterate();
    auto z = sampler->Assignments();
    for (size_t p = 0; p < kNumPairs; ++p) {
      co[p] += z[kPairs[p].first] == z[kPairs[p].second] ? 1.0 : 0.0;
    }
  }
  for (auto& c : co) c /= chains;
  return co;
}

class PosteriorAgreementTest
    : public ::testing::TestWithParam<std::pair<const char*, double>> {};

TEST_P(PosteriorAgreementTest, MatchesCgsCoassignmentProbabilities) {
  const auto& [name, tolerance] = GetParam();
  const int chains = 300;
  const int sweeps = 40;
  static const std::vector<double> reference =
      CoassignmentProbabilities("cgs", chains, sweeps);
  std::vector<double> measured =
      CoassignmentProbabilities(name, chains, sweeps);
  for (size_t p = 0; p < kNumPairs; ++p) {
    EXPECT_NEAR(measured[p], reference[p], tolerance)
        << name << " pair " << p << " (" << kPairs[p].first << ","
        << kPairs[p].second << ")";
  }
}

// Monte-Carlo std-error with 300 chains is ~0.03; exact samplers get a
// 4-sigma band, MH/MCEM samplers a wider one for finite-chain bias.
INSTANTIATE_TEST_SUITE_P(
    Samplers, PosteriorAgreementTest,
    ::testing::Values(std::make_pair("sparselda", 0.12),
                      std::make_pair("aliaslda", 0.12),
                      std::make_pair("f+lda", 0.12),
                      std::make_pair("lightlda", 0.18),
                      std::make_pair("warplda", 0.18)),
    [](const auto& pinfo) {
      std::string name = pinfo.param.first;
      for (auto& c : name) {
        if (c == '+') c = 'p';
      }
      return name;
    });

// Sanity on the reference itself: same-doc same-word pairs must co-assign
// more often than cross-doc pairs under a clustering prior.
TEST(PosteriorAgreementTest, CgsReferenceIsOrdered) {
  auto co = CoassignmentProbabilities("cgs", 300, 40);
  EXPECT_GT(co[0], co[4]);  // doc0 same-word  >  unrelated pair
  EXPECT_GT(co[2], co[4]);  // doc1 same-word  >  unrelated pair
  EXPECT_GT(co[0], 1.0 / 3 - 0.05);  // at least chance level
}

}  // namespace
}  // namespace warplda

#include "baselines/sampler.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "baselines/light_lda.h"
#include "corpus/synthetic.h"
#include "eval/log_likelihood.h"

namespace warplda {
namespace {

Corpus SmallCorpus() {
  SyntheticConfig config;
  config.num_docs = 80;
  config.vocab_size = 150;
  config.num_topics = 6;
  config.mean_doc_length = 25;
  config.alpha = 0.1;
  config.seed = 91;
  return GenerateLdaCorpus(config).corpus;
}

class SamplersTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SamplersTest, FactoryCreatesSampler) {
  auto sampler = CreateSampler(GetParam());
  ASSERT_NE(sampler, nullptr);
  EXPECT_FALSE(sampler->name().empty());
}

TEST_P(SamplersTest, AssignmentsValidAfterInit) {
  Corpus corpus = SmallCorpus();
  auto sampler = CreateSampler(GetParam());
  LdaConfig config = LdaConfig::PaperDefaults(10);
  sampler->Init(corpus, config);
  auto z = sampler->Assignments();
  ASSERT_EQ(z.size(), corpus.num_tokens());
  for (TopicId topic : z) EXPECT_LT(topic, config.num_topics);
}

TEST_P(SamplersTest, AssignmentsValidAfterIterations) {
  Corpus corpus = SmallCorpus();
  auto sampler = CreateSampler(GetParam());
  LdaConfig config = LdaConfig::PaperDefaults(10);
  sampler->Init(corpus, config);
  for (int i = 0; i < 3; ++i) sampler->Iterate();
  auto z = sampler->Assignments();
  ASSERT_EQ(z.size(), corpus.num_tokens());
  for (TopicId topic : z) EXPECT_LT(topic, config.num_topics);
}

TEST_P(SamplersTest, LikelihoodImproves) {
  Corpus corpus = SmallCorpus();
  auto sampler = CreateSampler(GetParam());
  LdaConfig config = LdaConfig::PaperDefaults(10);
  sampler->Init(corpus, config);
  double initial = JointLogLikelihood(corpus, sampler->Assignments(),
                                      config.num_topics, config.alpha,
                                      config.beta);
  for (int i = 0; i < 15; ++i) sampler->Iterate();
  double trained = JointLogLikelihood(corpus, sampler->Assignments(),
                                      config.num_topics, config.alpha,
                                      config.beta);
  EXPECT_GT(trained, initial) << sampler->name();
}

TEST_P(SamplersTest, DeterministicForSeed) {
  Corpus corpus = SmallCorpus();
  LdaConfig config = LdaConfig::PaperDefaults(10);
  config.seed = 4242;
  auto a = CreateSampler(GetParam());
  auto b = CreateSampler(GetParam());
  a->Init(corpus, config);
  b->Init(corpus, config);
  for (int i = 0; i < 2; ++i) {
    a->Iterate();
    b->Iterate();
  }
  EXPECT_EQ(a->Assignments(), b->Assignments());
}

TEST_P(SamplersTest, ReinitRestartsCleanly) {
  Corpus corpus = SmallCorpus();
  auto sampler = CreateSampler(GetParam());
  LdaConfig config = LdaConfig::PaperDefaults(10);
  sampler->Init(corpus, config);
  sampler->Iterate();
  auto first = sampler->Assignments();
  sampler->Init(corpus, config);
  sampler->Iterate();
  EXPECT_EQ(sampler->Assignments(), first);
}

TEST_P(SamplersTest, HandlesEmptyDocuments) {
  CorpusBuilder builder;
  builder.AddDocument(std::vector<WordId>{0, 1});
  builder.AddDocument(std::vector<WordId>{});
  builder.AddDocument(std::vector<WordId>{1});
  Corpus corpus = builder.Build();
  auto sampler = CreateSampler(GetParam());
  sampler->Init(corpus, LdaConfig::PaperDefaults(3));
  for (int i = 0; i < 2; ++i) sampler->Iterate();
  EXPECT_EQ(sampler->Assignments().size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(AllSamplers, SamplersTest,
                         ::testing::Values("cgs", "sparselda", "aliaslda",
                                           "f+lda", "lightlda", "warplda"),
                         [](const auto& pinfo) {
                           std::string name = pinfo.param;
                           for (auto& c : name) {
                             if (c == '+') c = 'p';
                           }
                           return name;
                         });

TEST(SamplerFactoryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(CreateSampler("definitely-not-a-sampler"), nullptr);
}

TEST(SamplerFactoryTest, NamesListMatchesFactory) {
  for (const auto& name : SamplerNames()) {
    EXPECT_NE(CreateSampler(name), nullptr) << name;
  }
}

TEST(LightLdaAblationTest, NamesReflectOptions) {
  LightLdaOptions options;
  EXPECT_EQ(LightLdaSampler(options).name(), "LightLDA");
  options.delay_word_counts = true;
  EXPECT_EQ(LightLdaSampler(options).name(), "LightLDA+DW");
  options.delay_doc_counts = true;
  EXPECT_EQ(LightLdaSampler(options).name(), "LightLDA+DW+DD");
  options.simple_word_proposal = true;
  EXPECT_EQ(LightLdaSampler(options).name(), "LightLDA+DW+DD+SP");
}

TEST(LightLdaAblationTest, AllAblationsConverge) {
  Corpus corpus = SmallCorpus();
  LdaConfig config = LdaConfig::PaperDefaults(10);
  config.mh_steps = 1;
  for (int mask = 0; mask < 8; ++mask) {
    LightLdaOptions options;
    options.delay_word_counts = mask & 1;
    options.delay_doc_counts = mask & 2;
    options.simple_word_proposal = mask & 4;
    LightLdaSampler sampler(options);
    sampler.Init(corpus, config);
    double initial = JointLogLikelihood(corpus, sampler.Assignments(),
                                        config.num_topics, config.alpha,
                                        config.beta);
    for (int i = 0; i < 15; ++i) sampler.Iterate();
    double trained = JointLogLikelihood(corpus, sampler.Assignments(),
                                        config.num_topics, config.alpha,
                                        config.beta);
    EXPECT_GT(trained, initial) << sampler.name();
  }
}

}  // namespace
}  // namespace warplda

#include "cachesim/cache_sim.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace warplda {
namespace {

CacheConfig SmallCache(uint64_t size, uint32_t ways = 4) {
  CacheConfig config;
  config.size_bytes = size;
  config.line_bytes = 64;
  config.associativity = ways;
  return config;
}

TEST(CacheSimTest, FirstTouchMissesSecondHits) {
  CacheSim sim(SmallCache(4096));
  sim.Touch(0x1000);
  EXPECT_EQ(sim.misses(), 1u);
  EXPECT_EQ(sim.hits(), 0u);
  sim.Touch(0x1000);
  EXPECT_EQ(sim.hits(), 1u);
}

TEST(CacheSimTest, SameLineSharesEntry) {
  CacheSim sim(SmallCache(4096));
  sim.Touch(0x1000);
  sim.Touch(0x1004);
  sim.Touch(0x103F);
  EXPECT_EQ(sim.misses(), 1u);
  EXPECT_EQ(sim.hits(), 2u);
}

TEST(CacheSimTest, WorkingSetWithinCapacityAllHits) {
  CacheConfig config = SmallCache(64 * 1024, 16);
  CacheSim sim(config);
  const uint32_t lines = 512;  // 32KB working set in a 64KB cache
  for (uint32_t pass = 0; pass < 4; ++pass) {
    for (uint32_t i = 0; i < lines; ++i) sim.Touch(i * 64);
  }
  // Only the first pass misses.
  EXPECT_EQ(sim.misses(), lines);
  EXPECT_EQ(sim.hits(), 3u * lines);
}

TEST(CacheSimTest, WorkingSetBeyondCapacityThrashesLru) {
  CacheConfig config = SmallCache(4096, 4);  // 64 lines
  CacheSim sim(config);
  const uint32_t lines = 256;  // 4x capacity, sequential sweep
  for (uint32_t pass = 0; pass < 4; ++pass) {
    for (uint32_t i = 0; i < lines; ++i) sim.Touch(i * 64);
  }
  // Cyclic sweep over 4x capacity with LRU: every access misses.
  EXPECT_EQ(sim.hits(), 0u);
  EXPECT_EQ(sim.misses(), 4u * lines);
}

TEST(CacheSimTest, OnAccessSpanningLinesTouchesEach) {
  CacheSim sim(SmallCache(4096));
  sim.OnAccess(0x1000, 200, false, false);  // 200 bytes -> 4 lines
  EXPECT_EQ(sim.accesses(), 4u);
  EXPECT_EQ(sim.misses(), 4u);
}

TEST(CacheSimTest, ZeroByteAccessTouchesOneLine) {
  CacheSim sim(SmallCache(4096));
  sim.OnAccess(0x2000, 0, true, false);
  EXPECT_EQ(sim.accesses(), 1u);
}

TEST(CacheSimTest, ResetClearsContentsAndCounters) {
  CacheSim sim(SmallCache(4096));
  sim.Touch(0x1000);
  sim.Touch(0x1000);
  sim.Reset();
  EXPECT_EQ(sim.accesses(), 0u);
  sim.Touch(0x1000);
  EXPECT_EQ(sim.misses(), 1u);  // cold again after reset
}

TEST(CacheSimTest, MissRateComputation) {
  CacheSim sim(SmallCache(4096));
  sim.Touch(0);
  sim.Touch(0);
  sim.Touch(0);
  sim.Touch(64);
  EXPECT_DOUBLE_EQ(sim.miss_rate(), 0.5);
}

TEST(CacheSimTest, RandomAccessOverLargeRegionMostlyMisses) {
  CacheSim sim(SmallCache(32 * 1024, 8));  // 32KB
  Rng rng(7);
  const uint64_t region = 64ull << 20;  // 64MB
  for (int i = 0; i < 20000; ++i) {
    sim.Touch(rng.NextInt(static_cast<uint32_t>(region / 64)) * 64ull);
  }
  EXPECT_GT(sim.miss_rate(), 0.95);
}

TEST(CacheSimTest, RandomAccessOverSmallRegionMostlyHits) {
  CacheSim sim(SmallCache(1 << 20, 16));  // 1MB cache
  Rng rng(8);
  const uint32_t region_lines = 1024;  // 64KB region
  for (int i = 0; i < 50000; ++i) {
    sim.Touch(rng.NextInt(region_lines) * 64ull);
  }
  EXPECT_LT(sim.miss_rate(), 0.05);
}

TEST(CacheSimTest, DefaultConfigIsPaperL3) {
  CacheSim sim;
  // 30MB / 64B / 16 ways = 30720 sets
  EXPECT_EQ(sim.num_sets(), 30720u);
}

}  // namespace
}  // namespace warplda

// Edge-shape sweeps: every sampler must stay correct on degenerate corpora —
// single-word vocabularies, one-token documents, one giant document, unused
// vocabulary tails, and heavy Zipf skew. Each case checks the conservation
// invariants (assignment count, topic range, token counts derived from Z)
// after several sweeps.
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/sampler.h"
#include "corpus/synthetic.h"
#include "eval/log_likelihood.h"
#include "util/rng.h"

namespace warplda {
namespace {

struct EdgeCase {
  std::string label;
  Corpus (*make)();
};

Corpus SingleWordVocab() {
  CorpusBuilder builder;
  builder.set_num_words(1);
  for (int d = 0; d < 20; ++d) {
    builder.AddDocument(std::vector<WordId>(5, 0));
  }
  return builder.Build();
}

Corpus OneTokenDocs() {
  CorpusBuilder builder;
  builder.set_num_words(10);
  for (int d = 0; d < 50; ++d) {
    builder.AddDocument(std::vector<WordId>{static_cast<WordId>(d % 10)});
  }
  return builder.Build();
}

Corpus OneGiantDoc() {
  CorpusBuilder builder;
  builder.set_num_words(40);
  std::vector<WordId> doc;
  Rng rng(5);
  for (int n = 0; n < 3000; ++n) doc.push_back(rng.NextInt(40));
  builder.AddDocument(doc);
  return builder.Build();
}

Corpus UnusedVocabTail() {
  CorpusBuilder builder;
  builder.set_num_words(1000);  // only ids 0-4 occur
  for (int d = 0; d < 30; ++d) {
    builder.AddDocument(std::vector<WordId>{0, 1, 2, 3, 4});
  }
  return builder.Build();
}

Corpus HeavySkew() {
  return GenerateZipfCorpus(100, 500, 30, 2.5, 9);
}

Corpus ManyEmptyDocs() {
  CorpusBuilder builder;
  builder.set_num_words(5);
  for (int d = 0; d < 40; ++d) {
    if (d % 3 == 0) {
      builder.AddDocument(std::vector<WordId>{});
    } else {
      builder.AddDocument(std::vector<WordId>{0, 1, 4});
    }
  }
  return builder.Build();
}

using Param = std::tuple<std::string, EdgeCase>;

class SamplerEdgeTest : public ::testing::TestWithParam<Param> {};

TEST_P(SamplerEdgeTest, InvariantsHoldAfterTraining) {
  const auto& [sampler_name, edge] = GetParam();
  Corpus corpus = edge.make();
  auto sampler = CreateSampler(sampler_name);
  ASSERT_NE(sampler, nullptr);
  LdaConfig config = LdaConfig::PaperDefaults(8);
  config.alpha = 0.2;
  sampler->Init(corpus, config);
  for (int i = 0; i < 5; ++i) sampler->Iterate();

  auto z = sampler->Assignments();
  ASSERT_EQ(z.size(), corpus.num_tokens());
  std::vector<uint64_t> ck(config.num_topics, 0);
  for (TopicId topic : z) {
    ASSERT_LT(topic, config.num_topics);
    ++ck[topic];
  }
  uint64_t total = 0;
  for (uint64_t c : ck) total += c;
  EXPECT_EQ(total, corpus.num_tokens());

  double ll = JointLogLikelihood(corpus, z, config.num_topics, config.alpha,
                                 config.beta);
  EXPECT_TRUE(std::isfinite(ll));
}

std::vector<Param> AllCases() {
  std::vector<EdgeCase> corpora = {
      {"singleword", &SingleWordVocab}, {"onetokendocs", &OneTokenDocs},
      {"giantdoc", &OneGiantDoc},       {"unusedtail", &UnusedVocabTail},
      {"heavyskew", &HeavySkew},        {"emptydocs", &ManyEmptyDocs}};
  std::vector<Param> params;
  for (const auto& name : SamplerNames()) {
    for (const auto& edge : corpora) params.emplace_back(name, edge);
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SamplerEdgeTest, ::testing::ValuesIn(AllCases()),
    [](const auto& pinfo) {
      std::string name =
          std::get<0>(pinfo.param) + "_" + std::get<1>(pinfo.param).label;
      for (auto& c : name) {
        if (c == '+') c = 'p';
      }
      return name;
    });

}  // namespace
}  // namespace warplda

// Asymmetric document-topic prior α_k (the paper's general Eq. 1/6/7 form),
// supported by CGS and WarpLDA.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/cgs.h"
#include "core/warp_lda.h"
#include "corpus/synthetic.h"
#include "eval/log_likelihood.h"

namespace warplda {
namespace {

Corpus FlatCorpus() {
  // Structure-free corpus: every topic preference must come from the prior.
  return GenerateZipfCorpus(150, 50, 40, 0.3, 7);
}

LdaConfig AsymmetricConfig() {
  LdaConfig config;
  config.num_topics = 4;
  config.alpha_vector = {8.0, 1.0, 1.0, 1.0};  // strong pull toward topic 0
  config.beta = 0.1;
  config.seed = 33;
  return config;
}

double TopicShare(const std::vector<TopicId>& z, TopicId k) {
  uint64_t hits = 0;
  for (TopicId topic : z) hits += topic == k;
  return static_cast<double>(hits) / z.size();
}

TEST(AsymmetricAlphaTest, ConfigHelpers) {
  LdaConfig config = AsymmetricConfig();
  EXPECT_DOUBLE_EQ(config.alpha_k(0), 8.0);
  EXPECT_DOUBLE_EQ(config.alpha_k(3), 1.0);
  EXPECT_DOUBLE_EQ(config.alpha_bar(), 11.0);
  LdaConfig symmetric;
  symmetric.num_topics = 4;
  symmetric.alpha = 0.5;
  EXPECT_DOUBLE_EQ(symmetric.alpha_k(2), 0.5);
  EXPECT_DOUBLE_EQ(symmetric.alpha_bar(), 2.0);
}

TEST(AsymmetricAlphaTest, CgsFollowsPriorOnFlatCorpus) {
  Corpus corpus = FlatCorpus();
  CgsSampler sampler;
  sampler.Init(corpus, AsymmetricConfig());
  for (int i = 0; i < 30; ++i) sampler.Iterate();
  auto z = sampler.Assignments();
  // Prior mass on topic 0 is 8/11 ≈ 0.73; structure-free data should track
  // it (clustering pressure leaves slack, so just require dominance).
  EXPECT_GT(TopicShare(z, 0), 0.45);
  for (TopicId k = 1; k < 4; ++k) {
    EXPECT_LT(TopicShare(z, k), TopicShare(z, 0)) << "topic " << k;
  }
}

TEST(AsymmetricAlphaTest, WarpLdaFollowsPriorOnFlatCorpus) {
  Corpus corpus = FlatCorpus();
  WarpLdaSampler sampler;
  sampler.Init(corpus, AsymmetricConfig());
  for (int i = 0; i < 60; ++i) sampler.Iterate();
  auto z = sampler.Assignments();
  EXPECT_GT(TopicShare(z, 0), 0.45);
  for (TopicId k = 1; k < 4; ++k) {
    EXPECT_LT(TopicShare(z, k), TopicShare(z, 0)) << "topic " << k;
  }
}

TEST(AsymmetricAlphaTest, WarpLdaMatchesCgsShareApproximately) {
  Corpus corpus = FlatCorpus();
  CgsSampler cgs;
  cgs.Init(corpus, AsymmetricConfig());
  WarpLdaSampler warp;
  warp.Init(corpus, AsymmetricConfig());
  for (int i = 0; i < 40; ++i) cgs.Iterate();
  for (int i = 0; i < 80; ++i) warp.Iterate();
  double cgs_share = TopicShare(cgs.Assignments(), 0);
  double warp_share = TopicShare(warp.Assignments(), 0);
  EXPECT_NEAR(warp_share, cgs_share, 0.25);
}

TEST(AsymmetricAlphaTest, AsymmetricLikelihoodMatchesSymmetricWhenEqual) {
  Corpus corpus = FlatCorpus();
  Rng rng(4);
  std::vector<TopicId> z(corpus.num_tokens());
  for (auto& zi : z) zi = rng.NextInt(4);
  std::vector<double> flat(4, 0.3);
  double sym = JointLogLikelihood(corpus, z, 4, 0.3, 0.05);
  double asym = JointLogLikelihood(corpus, z, 4, flat, 0.05);
  EXPECT_NEAR(sym, asym, 1e-8 * std::abs(sym));
}

TEST(AsymmetricAlphaTest, LikelihoodPrefersPriorAlignedAssignments) {
  Corpus corpus = FlatCorpus();
  std::vector<double> skewed = {8.0, 1.0, 1.0, 1.0};
  std::vector<TopicId> mostly_zero(corpus.num_tokens(), 0);
  Rng rng(5);
  for (auto& zi : mostly_zero) {
    if (rng.NextBernoulli(0.27)) zi = 1 + rng.NextInt(3);
  }
  std::vector<TopicId> uniform(corpus.num_tokens());
  for (auto& zi : uniform) zi = rng.NextInt(4);
  EXPECT_GT(JointLogLikelihood(corpus, mostly_zero, 4, skewed, 0.05),
            JointLogLikelihood(corpus, uniform, 4, skewed, 0.05));
}

TEST(AsymmetricAlphaTest, ConvergesOnStructuredCorpus) {
  SyntheticConfig sc;
  sc.num_docs = 120;
  sc.vocab_size = 200;
  sc.num_topics = 4;
  sc.seed = 41;
  Corpus corpus = GenerateLdaCorpus(sc).corpus;
  LdaConfig config = AsymmetricConfig();
  WarpLdaSampler sampler;
  sampler.Init(corpus, config);
  double initial = JointLogLikelihood(corpus, sampler.Assignments(), 4,
                                      config.alpha_vector, config.beta);
  for (int i = 0; i < 30; ++i) sampler.Iterate();
  double trained = JointLogLikelihood(corpus, sampler.Assignments(), 4,
                                      config.alpha_vector, config.beta);
  EXPECT_GT(trained, initial);
}

}  // namespace
}  // namespace warplda

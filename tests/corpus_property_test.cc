// Property tests over randomly generated corpora: the two orientations of a
// Corpus (document-major CSR, word-major CSC index) must always describe the
// same token multiset, and the inverse-rank permutation must be consistent.
// These invariants underpin WarpLDA's reordering correctness.
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/corpus.h"
#include "util/rng.h"

namespace warplda {
namespace {

struct CorpusShape {
  uint32_t docs;
  uint32_t vocab;
  uint32_t max_len;
  uint64_t seed;
};

Corpus RandomCorpus(const CorpusShape& shape) {
  Rng rng(shape.seed);
  CorpusBuilder builder;
  builder.set_num_words(shape.vocab);
  std::vector<WordId> doc;
  for (uint32_t d = 0; d < shape.docs; ++d) {
    uint32_t len = rng.NextInt(shape.max_len + 1);  // empty docs included
    doc.clear();
    for (uint32_t n = 0; n < len; ++n) doc.push_back(rng.NextInt(shape.vocab));
    builder.AddDocument(doc);
  }
  return builder.Build();
}

class CorpusPropertyTest : public ::testing::TestWithParam<CorpusShape> {};

TEST_P(CorpusPropertyTest, DocLengthsSumToTokenCount) {
  Corpus c = RandomCorpus(GetParam());
  uint64_t total = 0;
  for (DocId d = 0; d < c.num_docs(); ++d) total += c.doc_length(d);
  EXPECT_EQ(total, c.num_tokens());
}

TEST_P(CorpusPropertyTest, WordFrequenciesSumToTokenCount) {
  Corpus c = RandomCorpus(GetParam());
  uint64_t total = 0;
  for (WordId w = 0; w < c.num_words(); ++w) total += c.word_frequency(w);
  EXPECT_EQ(total, c.num_tokens());
}

TEST_P(CorpusPropertyTest, WordTokensPartitionAllPositions) {
  Corpus c = RandomCorpus(GetParam());
  std::vector<int> seen(c.num_tokens(), 0);
  for (WordId w = 0; w < c.num_words(); ++w) {
    TokenIdx prev = 0;
    bool first = true;
    for (TokenIdx t : c.word_tokens(w)) {
      ASSERT_LT(t, c.num_tokens());
      EXPECT_EQ(c.token_word(t), w);
      if (!first) {
        EXPECT_GT(t, prev);  // sorted ascending
      }
      prev = t;
      first = false;
      ++seen[t];
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST_P(CorpusPropertyTest, WordMajorRankIsBijective) {
  Corpus c = RandomCorpus(GetParam());
  std::vector<int> hits(c.num_tokens(), 0);
  for (TokenIdx t = 0; t < c.num_tokens(); ++t) {
    ++hits[c.word_major_rank(t)];
  }
  for (int count : hits) EXPECT_EQ(count, 1);
}

TEST_P(CorpusPropertyTest, RankRoundTripsThroughWordIndex) {
  Corpus c = RandomCorpus(GetParam());
  for (WordId w = 0; w < c.num_words(); ++w) {
    auto tokens = c.word_tokens(w);
    for (size_t i = 0; i < tokens.size(); ++i) {
      EXPECT_EQ(c.word_major_rank(tokens[i]), c.word_major_offset(w) + i);
    }
  }
}

TEST_P(CorpusPropertyTest, TokenDocMatchesDocOffsets) {
  Corpus c = RandomCorpus(GetParam());
  for (DocId d = 0; d < c.num_docs(); ++d) {
    TokenIdx base = c.doc_offset(d);
    for (uint32_t n = 0; n < c.doc_length(d); ++n) {
      EXPECT_EQ(c.token_doc(base + n), d);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CorpusPropertyTest,
    ::testing::Values(CorpusShape{1, 1, 1, 1}, CorpusShape{10, 5, 8, 2},
                      CorpusShape{100, 50, 20, 3},
                      CorpusShape{500, 1000, 3, 4},   // sparse: V >> tokens
                      CorpusShape{50, 2, 100, 5},     // tiny vocab
                      CorpusShape{200, 300, 40, 6}),
    [](const auto& pinfo) {
      const auto& s = pinfo.param;
      return "d" + std::to_string(s.docs) + "v" + std::to_string(s.vocab) +
             "l" + std::to_string(s.max_len);
    });

}  // namespace
}  // namespace warplda

#include "util/flags.h"

#include <vector>

#include <gtest/gtest.h>

namespace warplda {
namespace {

// Builds a mutable argv from string literals.
class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> args) : storage_(std::move(args)) {
    ptrs_.push_back(const_cast<char*>("prog"));
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(FlagsTest, ParsesEqualsSyntax) {
  int64_t k = 0;
  double alpha = 0.0;
  std::string name;
  bool verbose = false;
  FlagSet flags;
  flags.Int("k", &k, "").Double("alpha", &alpha, "").String("name", &name, "")
      .Bool("verbose", &verbose, "");
  ArgvBuilder args({"--k=42", "--alpha=0.5", "--name=warp", "--verbose=true"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_EQ(k, 42);
  EXPECT_DOUBLE_EQ(alpha, 0.5);
  EXPECT_EQ(name, "warp");
  EXPECT_TRUE(verbose);
}

TEST(FlagsTest, ParsesSpaceSyntax) {
  int64_t k = 0;
  FlagSet flags;
  flags.Int("k", &k, "");
  ArgvBuilder args({"--k", "7"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_EQ(k, 7);
}

TEST(FlagsTest, BareBoolIsTrue) {
  bool on = false;
  FlagSet flags;
  flags.Bool("on", &on, "");
  ArgvBuilder args({"--on"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_TRUE(on);
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagSet flags;
  ArgvBuilder args({"--mystery=1"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
}

TEST(FlagsTest, BadIntFails) {
  int64_t k = 0;
  FlagSet flags;
  flags.Int("k", &k, "");
  ArgvBuilder args({"--k=notanumber"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
}

TEST(FlagsTest, MissingValueFails) {
  int64_t k = 0;
  FlagSet flags;
  flags.Int("k", &k, "");
  ArgvBuilder args({"--k"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
}

TEST(FlagsTest, HelpReturnsFalse) {
  FlagSet flags;
  ArgvBuilder args({"--help"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
}

TEST(FlagsTest, DefaultsSurviveWhenUnset) {
  int64_t k = 99;
  double alpha = 1.5;
  FlagSet flags;
  flags.Int("k", &k, "").Double("alpha", &alpha, "");
  ArgvBuilder args({"--alpha=2.0"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_EQ(k, 99);
  EXPECT_DOUBLE_EQ(alpha, 2.0);
}

TEST(FlagsTest, NegativeNumbersParse) {
  int64_t k = 0;
  double x = 0.0;
  FlagSet flags;
  flags.Int("k", &k, "").Double("x", &x, "");
  ArgvBuilder args({"--k=-5", "--x=-1.25"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()));
  EXPECT_EQ(k, -5);
  EXPECT_DOUBLE_EQ(x, -1.25);
}

TEST(FlagsTest, PositionalArgumentFails) {
  FlagSet flags;
  ArgvBuilder args({"stray"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()));
}

}  // namespace
}  // namespace warplda

#include "corpus/uci.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace warplda {
namespace {

class UciTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(UciTest, ReadsWellFormedDocword) {
  std::string path = TempPath("docword_ok.txt");
  WriteFile(path,
            "3\n4\n5\n"
            "1 1 2\n"
            "1 3 1\n"
            "2 2 1\n"
            "3 4 3\n"
            "3 1 1\n");
  Corpus corpus;
  std::string error;
  ASSERT_TRUE(uci::ReadDocword(path, &corpus, &error)) << error;
  EXPECT_EQ(corpus.num_docs(), 3u);
  EXPECT_EQ(corpus.num_words(), 4u);
  EXPECT_EQ(corpus.num_tokens(), 8u);
  EXPECT_EQ(corpus.doc_length(0), 3u);  // 2 + 1
  EXPECT_EQ(corpus.doc_length(1), 1u);
  EXPECT_EQ(corpus.doc_length(2), 4u);  // 3 + 1
  EXPECT_EQ(corpus.word_frequency(0), 3u);  // word 1: 2 in doc1 + 1 in doc3
}

TEST_F(UciTest, RejectsMalformedHeader) {
  std::string path = TempPath("docword_badheader.txt");
  WriteFile(path, "not a header\n");
  Corpus corpus;
  std::string error;
  EXPECT_FALSE(uci::ReadDocword(path, &corpus, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(UciTest, RejectsOutOfRangeDocId) {
  std::string path = TempPath("docword_baddoc.txt");
  WriteFile(path, "1\n2\n1\n5 1 1\n");
  Corpus corpus;
  std::string error;
  EXPECT_FALSE(uci::ReadDocword(path, &corpus, &error));
}

TEST_F(UciTest, RejectsOutOfRangeWordId) {
  std::string path = TempPath("docword_badword.txt");
  WriteFile(path, "1\n2\n1\n1 9 1\n");
  Corpus corpus;
  std::string error;
  EXPECT_FALSE(uci::ReadDocword(path, &corpus, &error));
}

TEST_F(UciTest, RejectsNonPositiveCount) {
  std::string path = TempPath("docword_badcount.txt");
  WriteFile(path, "1\n2\n1\n1 1 0\n");
  Corpus corpus;
  std::string error;
  EXPECT_FALSE(uci::ReadDocword(path, &corpus, &error));
}

TEST_F(UciTest, RejectsTruncatedEntries) {
  std::string path = TempPath("docword_trunc.txt");
  WriteFile(path, "1\n2\n3\n1 1 1\n");
  Corpus corpus;
  std::string error;
  EXPECT_FALSE(uci::ReadDocword(path, &corpus, &error));
}

TEST_F(UciTest, MissingFileFails) {
  Corpus corpus;
  std::string error;
  EXPECT_FALSE(uci::ReadDocword(TempPath("nonexistent.txt"), &corpus, &error));
}

TEST_F(UciTest, RoundTripPreservesCounts) {
  CorpusBuilder builder;
  builder.set_num_words(5);
  builder.AddDocument(std::vector<WordId>{0, 0, 3});
  builder.AddDocument(std::vector<WordId>{4});
  builder.AddDocument(std::vector<WordId>{1, 2, 2, 2});
  Corpus original = builder.Build();

  std::string path = TempPath("docword_roundtrip.txt");
  std::string error;
  ASSERT_TRUE(uci::WriteDocword(original, path, &error)) << error;

  Corpus loaded;
  ASSERT_TRUE(uci::ReadDocword(path, &loaded, &error)) << error;
  ASSERT_EQ(loaded.num_docs(), original.num_docs());
  ASSERT_EQ(loaded.num_words(), original.num_words());
  ASSERT_EQ(loaded.num_tokens(), original.num_tokens());
  for (DocId d = 0; d < original.num_docs(); ++d) {
    EXPECT_EQ(loaded.doc_length(d), original.doc_length(d));
  }
  for (WordId w = 0; w < original.num_words(); ++w) {
    EXPECT_EQ(loaded.word_frequency(w), original.word_frequency(w));
  }
}

TEST_F(UciTest, VocabRoundTrip) {
  Vocabulary vocab;
  vocab.GetOrAdd("apple");
  vocab.GetOrAdd("banana");
  vocab.GetOrAdd("cherry");
  std::string path = TempPath("vocab_roundtrip.txt");
  std::string error;
  ASSERT_TRUE(uci::WriteVocab(vocab, path, &error)) << error;

  Vocabulary loaded;
  ASSERT_TRUE(uci::ReadVocab(path, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.word(0), "apple");
  EXPECT_EQ(loaded.word(2), "cherry");
}

TEST_F(UciTest, VocabHandlesCrLf) {
  std::string path = TempPath("vocab_crlf.txt");
  WriteFile(path, "one\r\ntwo\r\n");
  Vocabulary vocab;
  std::string error;
  ASSERT_TRUE(uci::ReadVocab(path, &vocab, &error)) << error;
  ASSERT_EQ(vocab.size(), 2u);
  EXPECT_EQ(vocab.word(0), "one");
  EXPECT_EQ(vocab.word(1), "two");
}

TEST_F(UciTest, EntriesInAnyOrder) {
  std::string path = TempPath("docword_shuffled.txt");
  WriteFile(path,
            "2\n2\n3\n"
            "2 1 1\n"
            "1 2 2\n"
            "1 1 1\n");
  Corpus corpus;
  std::string error;
  ASSERT_TRUE(uci::ReadDocword(path, &corpus, &error)) << error;
  EXPECT_EQ(corpus.doc_length(0), 3u);
  EXPECT_EQ(corpus.doc_length(1), 1u);
}

}  // namespace
}  // namespace warplda

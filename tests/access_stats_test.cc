#include "cachesim/access_stats.h"

#include <gtest/gtest.h>

namespace warplda {
namespace {

TEST(AccessStatsTest, CountsByKind) {
  AccessStats stats;
  stats.OnAccess(0x1000, 4, /*random=*/true, /*write=*/false);
  stats.OnAccess(0x2000, 4, /*random=*/false, /*write=*/false);
  stats.OnAccess(0x3000, 4, /*random=*/true, /*write=*/true);
  EXPECT_EQ(stats.random_accesses(), 2u);
  EXPECT_EQ(stats.sequential_accesses(), 1u);
}

TEST(AccessStatsTest, ScopeFootprintCountsDistinctLines) {
  AccessStats stats;
  stats.OnAccess(0x1000, 4, true, false);
  stats.OnAccess(0x1010, 4, true, false);  // same 64B line
  stats.OnAccess(0x2000, 4, true, false);  // second line
  stats.OnScopeEnd();
  EXPECT_EQ(stats.scopes(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean_random_bytes_per_scope(), 128.0);
  EXPECT_EQ(stats.max_random_bytes_per_scope(), 128u);
}

TEST(AccessStatsTest, ScopesResetFootprint) {
  AccessStats stats;
  stats.OnAccess(0x1000, 4, true, false);
  stats.OnScopeEnd();
  stats.OnAccess(0x1000, 4, true, false);
  stats.OnAccess(0x5000, 4, true, false);
  stats.OnScopeEnd();
  EXPECT_EQ(stats.scopes(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean_random_bytes_per_scope(), (64.0 + 128.0) / 2);
  EXPECT_EQ(stats.max_random_bytes_per_scope(), 128u);
}

TEST(AccessStatsTest, SequentialAccessesDontAffectFootprint) {
  AccessStats stats;
  stats.OnAccess(0x1000, 4096, false, false);
  stats.OnScopeEnd();
  EXPECT_DOUBLE_EQ(stats.mean_random_bytes_per_scope(), 0.0);
}

TEST(AccessStatsTest, MultiLineRandomAccessCountsAllLines) {
  AccessStats stats;
  stats.OnAccess(0x1000, 256, true, false);  // 4 lines
  stats.OnScopeEnd();
  EXPECT_DOUBLE_EQ(stats.mean_random_bytes_per_scope(), 256.0);
}

TEST(AccessStatsTest, ResetClearsEverything) {
  AccessStats stats;
  stats.OnAccess(0x1000, 4, true, false);
  stats.OnScopeEnd();
  stats.Reset();
  EXPECT_EQ(stats.random_accesses(), 0u);
  EXPECT_EQ(stats.scopes(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean_random_bytes_per_scope(), 0.0);
}

}  // namespace
}  // namespace warplda

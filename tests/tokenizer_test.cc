#include "corpus/tokenizer.h"

#include <gtest/gtest.h>

namespace warplda {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  Tokenizer tok;
  auto terms = tok.Tokenize("Machine LEARNING rocks");
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(terms[0], "machine");
  EXPECT_EQ(terms[1], "learning");
  EXPECT_EQ(terms[2], "rocks");
}

TEST(TokenizerTest, StripsPunctuation) {
  Tokenizer tok;
  auto terms = tok.Tokenize("hello, world! (parentheses)…");
  ASSERT_GE(terms.size(), 3u);
  EXPECT_EQ(terms[0], "hello");
  EXPECT_EQ(terms[1], "world");
  EXPECT_EQ(terms[2], "parentheses");
}

TEST(TokenizerTest, KeepsDigits) {
  Tokenizer tok;
  auto terms = tok.Tokenize("model2 scored 42 points");
  EXPECT_EQ(terms[0], "model2");
  EXPECT_EQ(terms[1], "scored");
  EXPECT_EQ(terms[2], "42");
}

TEST(TokenizerTest, RemovesStopWords) {
  Tokenizer tok;
  auto terms = tok.Tokenize("the cat and the dog");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], "cat");
  EXPECT_EQ(terms[1], "dog");
}

TEST(TokenizerTest, MinLengthFilter) {
  Tokenizer tok;
  tok.set_min_token_length(4);
  auto terms = tok.Tokenize("big cats sleep");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], "cats");
  EXPECT_EQ(terms[1], "sleep");
}

TEST(TokenizerTest, CustomStopWords) {
  Tokenizer tok;
  tok.set_stop_words({"cat"});
  auto terms = tok.Tokenize("the cat sat");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], "the");
  EXPECT_EQ(terms[1], "sat");
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("   \t\n ").empty());
  EXPECT_TRUE(tok.Tokenize("!!! ??? ...").empty());
}

TEST(TokenizerTest, TokenizeToIdsGrowsVocabulary) {
  Tokenizer tok;
  Vocabulary vocab;
  auto ids1 = tok.TokenizeToIds("apple banana apple", vocab);
  ASSERT_EQ(ids1.size(), 3u);
  EXPECT_EQ(ids1[0], ids1[2]);
  EXPECT_NE(ids1[0], ids1[1]);
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(TokenizerTest, BuildCorpusFromTextsEndToEnd) {
  std::vector<std::string> texts = {
      "Apples and oranges are fruit.",
      "Oranges grow on trees; apples too.",
      "",
  };
  TokenizedCorpus tc = BuildCorpusFromTexts(texts);
  EXPECT_EQ(tc.corpus.num_docs(), 3u);
  EXPECT_EQ(tc.corpus.doc_length(2), 0u);
  EXPECT_EQ(tc.corpus.num_words(), tc.vocabulary.size());
  // "oranges" appears in both non-empty docs.
  WordId oranges = tc.vocabulary.Find("oranges");
  ASSERT_NE(oranges, Vocabulary::kNotFound);
  EXPECT_EQ(tc.corpus.word_frequency(oranges), 2u);
}

}  // namespace
}  // namespace warplda

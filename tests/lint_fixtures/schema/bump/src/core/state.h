// Schema fixture (bump): the drift reorder WITH the version constant bumped
// — the sanctioned evolution path; regenerating the lock is now legal.
#include <cstdint>

namespace warplda {

inline constexpr uint32_t kStateVersion = 2;

struct SweepState {
  uint64_t iteration = 0;
  uint64_t base_doc = 0;
  uint64_t base_word = 0;
};

}  // namespace warplda

// Schema fixture (drift): base_word and base_doc reordered with NO version
// bump — decoding against the old layout reads garbage.
#include <cstdint>

namespace warplda {

inline constexpr uint32_t kStateVersion = 1;

struct SweepState {
  uint64_t iteration = 0;
  uint64_t base_doc = 0;
  uint64_t base_word = 0;
};

}  // namespace warplda

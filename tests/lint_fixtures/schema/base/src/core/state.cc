// Schema fixture: SweepState reaches the checkpoint writer, so its field
// sequence is wire format and must match the schema lock.
#include "core/state.h"

namespace warplda {

void EncodeSweepState(const SweepState& s, PayloadWriter& out) {
  out.Put32(kStateVersion);
  out.Put64(s.iteration);
  out.Put64(s.base_word);
  out.Put64(s.base_doc);
}

bool DecodeSweepState(PayloadReader& in, SweepState* s) {
  s->iteration = in.Get64();
  s->base_word = in.Get64();
  s->base_doc = in.Get64();
  return true;
}

}  // namespace warplda

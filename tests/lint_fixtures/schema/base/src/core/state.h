// Schema fixture (base): the committed shape the lock is generated from.
#include <cstdint>

namespace warplda {

inline constexpr uint32_t kStateVersion = 1;

struct SweepState {
  uint64_t iteration = 0;
  uint64_t base_word = 0;
  uint64_t base_doc = 0;
};

}  // namespace warplda

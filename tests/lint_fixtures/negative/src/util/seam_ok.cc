// Negative fixture: even util/ may use the instrumentation seam.
#include "obs/metrics.h"

// Negative fixture: explicit seeds and steady_clock are fine.
#include <chrono>
#include <random>

int GoodSeed(uint64_t seed) {
  std::mt19937_64 gen(seed);  // explicit, reproducible
  auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  return static_cast<int>(gen());
}

// Negative fixture: a justified leaked singleton passes.
struct Registry {};

Registry& Global() {
  static Registry* r = new Registry();  // NOLINT(warplint-naked-new): leaked singleton; instruments outlive every thread
  return *r;
}

// Negative fixture: unordered lookups are fine; iteration goes through a
// sorted vector.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

void Publish() {
  std::unordered_map<uint32_t, uint64_t> counts;
  std::vector<uint32_t> keys;
  if (counts.count(7) > 0) keys.push_back(7);
  std::sort(keys.begin(), keys.end());
  for (uint32_t k : keys) {
    Serialize(k, counts.at(k));
  }
}

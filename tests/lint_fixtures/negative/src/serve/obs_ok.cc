// Negative fixture: every registry handle is driven — a bound-then-observed
// histogram and a chained immediate increment.
#include "obs/metrics.h"

class PublishStats {
 public:
  PublishStats() {
    publish_ok_us_ =
        obs::Registry::Global().GetHistogram("serve_publish_ok_us");
  }

  void Record(double v) {
    publish_ok_us_->Observe(v);
    obs::Registry::Global().GetCounter("serve_publish_total")->Inc();
  }

 private:
  obs::Histogram* publish_ok_us_ = nullptr;
};

// Negative fixture: dist/ using its sanctioned dependencies — the frame
// codec it reuses for delta transport and the instrumentation seam.
#include "util/checkpoint_io.h"

#include "obs/metrics.h"

// Negative fixture: the scalar reference kernel stays portable, the vector
// twin behind the target attribute may use intrinsics, and hot kernel
// bodies accumulate into caller-owned output instead of synchronizing.
#include <immintrin.h>

void ComputeAcceptRatiosScalar(unsigned long n, const double* a, double* out) {
  for (unsigned long i = 0; i < n; ++i) out[i] = a[i] * 2.0;
}

__attribute__((target("avx2")))
void ComputeAcceptRatiosAvx2(unsigned long n, const double* a, double* out) {
  __m256d va = _mm256_loadu_pd(a);
  _mm256_storeu_pd(out, va);
}

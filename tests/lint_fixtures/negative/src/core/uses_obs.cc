// Negative fixture: obs/metrics.h is a sanctioned cross-cutting seam.
#include "obs/metrics.h"
#include "util/rng.h"

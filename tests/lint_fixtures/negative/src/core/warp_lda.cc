// Negative fixture: hot bodies accumulate in ThreadScratch; barrier-side
// EndStage may synchronize.
#include <atomic>
#include <mutex>

void WarpLdaSampler::RunBlock(uint32_t doc_block, uint32_t word_block,
                              uint32_t worker) {
  ThreadScratch& s = scratch_[worker];
  for (uint32_t t = 0; t < block_tokens_; ++t) {
    s.tokens_sampled += 1;
  }
}

void WarpLdaSampler::EndStage() {
  std::lock_guard<std::mutex> guard(ck_mutex_);
  tokens_total_.fetch_add(pending_, std::memory_order_relaxed);
}

// Negative fixture: legal Rng use inside concurrent grid bodies — stream-
// derived construction, lazy default construction, and RngFromState.
#include "core/warp_lda.h"

void WarpLdaSampler::AcceptChain(uint32_t n, uint32_t worker) {
  Rng rng(DeriveStreamState(stream_base_, worker));
  Rng lazy;  // default-constructed, seeded later from a stream
  uint64_t state = TokenStreamState(n);
  Rng from_state = simd::RngFromState(state);
  (void)rng;
  (void)lazy;
  (void)from_state;
}

// Negative fixture: the contracts of contracts_demo.h honored — worker-
// indexed scratch in the concurrent body, barrier-only state touched at the
// barrier, immutable state written only by its listed writer.
#include "core/contracts_demo.h"

void DemoSampler::Init(uint32_t n) {
  num_blocks_ = n;
  scratch_.resize(n);
  spare_.resize(n);
}

void DemoSampler::RunBlock(uint32_t worker, uint32_t block) {
  if (scratch_.size() <= worker) return;  // size query: legal in a hot body
  DemoScratch& scratch = scratch_[worker];
  scratch.counts.push_back(block);
}

void DemoSampler::EndStage() {
  stage_epoch_ += 1;  // stage barrier: the sanctioned write site
}

// Negative fixture: padding done right — alignas on the element struct.
#include <atomic>
#include <cstdint>

struct alignas(64) Shard {
  std::atomic<uint64_t> value;
};

struct Grid {
  alignas(64) Shard shards[16];
};

struct Cursor {
  alignas(64) std::atomic<uint64_t> head;
  alignas(64) std::atomic<uint64_t> tail;
};

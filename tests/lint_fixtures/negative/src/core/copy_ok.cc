// Negative fixture: memcpy over element buffers and trivial structs.
#include <cstring>
#include <vector>

struct Frame {
  uint64_t magic;
  uint32_t version;
};

void CopyCounts(const std::vector<double>& src, std::vector<double>* dst) {
  dst->resize(src.size());
  std::memcpy(dst->data(), src.data(), src.size() * sizeof(double));
  Frame a{1, 2};
  Frame b;
  std::memcpy(&b, &a, sizeof(Frame));
}

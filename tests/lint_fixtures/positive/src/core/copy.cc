// Positive fixture: memcpy over non-trivially-copyable objects.
#include <cstring>
#include <vector>

struct Row {
  std::vector<double> phi;
  void Clone(const Row& other) {
    std::memcpy(this, &other, sizeof(Row));
  }
};

void CopyCounts(const void* src) {
  std::vector<double> dense;
  std::memcpy(&dense, src, 64);
}

// Positive fixture: concurrency-contract annotations that the bodies in
// contracts_demo.cc violate, plus an unannotated holder of a worker-local
// type (the declaration-site finding).
#include <cstdint>
#include <vector>

struct WARP_WORKER_LOCAL DemoScratch {
  std::vector<uint32_t> counts;
};

class DemoSampler {
 public:
  void Init(uint32_t n);
  void RunBlock(uint32_t worker, uint32_t block);
  void EndStage();

 private:
  WARP_BARRIER_ONLY uint64_t stage_epoch_ = 0;
  WARP_IMMUTABLE_AFTER(Init) uint32_t num_blocks_ = 0;
  WARP_WORKER_LOCAL std::vector<DemoScratch> scratch_;
  std::vector<DemoScratch> spare_;  // worker-local type, no annotation
};

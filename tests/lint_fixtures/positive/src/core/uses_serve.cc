// Positive fixture: core/ depending on the serving tier.
#include "serve/server.h"

// Positive fixture: every contract in contracts_demo.h violated from a
// concurrent grid body.
#include "core/contracts_demo.h"

void DemoSampler::Init(uint32_t n) {
  num_blocks_ = n;     // listed writer: legal
  scratch_.resize(n);  // not a concurrent body: legal
}

void DemoSampler::RunBlock(uint32_t worker, uint32_t block) {
  stage_epoch_ += 1;               // write to BARRIER_ONLY state mid-stage
  num_blocks_ = block;             // write to IMMUTABLE_AFTER outside Init
  scratch_[block].counts.clear();  // worker-local access not worker-indexed
}

void DemoSampler::EndStage() {
  stage_epoch_ += 1;  // barrier side: legal
}

#include "core/cycle_b.h"

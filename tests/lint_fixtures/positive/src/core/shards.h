// Positive fixture: alignas(64) that does not actually pad.
#include <atomic>
#include <cstdint>

struct Tally {
  alignas(64) uint64_t counts[8];
};

struct Queue {
  alignas(64) std::atomic<uint64_t> head;
  std::atomic<uint64_t> tail;
};

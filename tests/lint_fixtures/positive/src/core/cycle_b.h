#include "core/cycle_a.h"

// Positive fixture: suppressions that do not meet the policy.
void BadSuppressions() {
  int* q = new int(1);  // NOLINT(warplint-naked-new)
  int* r = new int(2);  // NOLINT(warplint-bogus): not a rule
  delete q;             // NOLINT(warplint-naked-new): test owns q for one line
  delete r;             // NOLINT(warplint-naked-new): test owns r for one line
}

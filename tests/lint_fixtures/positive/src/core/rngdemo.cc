// Positive fixture: Rng misuse inside concurrent grid bodies — a seeded
// construction that does not flow from the per-token stream derivation, and
// an explicit mid-body re-seed.
#include "core/warp_lda.h"

void WarpLdaSampler::AcceptChain(uint32_t n, uint32_t worker) {
  Rng rng(seed_ + worker);  // same sequence every block: correlated draws
  rng.Seed(n);              // re-seeding mid-body
  (void)rng;
}

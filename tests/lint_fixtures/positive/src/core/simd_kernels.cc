// Positive fixture: per-token synchronization inside a SIMD kernel free
// function, and intrinsics inside a *Scalar reference kernel.
#include <atomic>
#include <immintrin.h>

void DeriveStreamStates(const unsigned long* tokens, unsigned long n) {
  for (unsigned long i = 0; i < n; ++i) streams_derived.fetch_add(1);
}

void ComputeAcceptRatiosScalar(unsigned long n, const double* a, double* out) {
  __m256d va = _mm256_loadu_pd(a);
  _mm256_storeu_pd(out, va);
}

// Positive fixture: per-token synchronization inside hot-path bodies.
#include <atomic>
#include <mutex>

void WarpLdaSampler::RunBlock(uint32_t doc_block, uint32_t word_block,
                              uint32_t worker) {
  for (uint32_t t = 0; t < block_tokens_; ++t) {
    tokens_sampled_.fetch_add(1);
  }
}

void WarpLdaSampler::DocPhase() {
  std::lock_guard<std::mutex> guard(ck_mutex_);
}

void WarpLdaSampler::RunFusedWordPart(uint32_t doc_block, uint32_t worker) {
  std::lock_guard<std::mutex> guard(col_mutex_);
}

void WarpLdaSampler::AcceptSegment(uint32_t n, uint32_t worker) {
  for (uint32_t t = 0; t < n; ++t) moves_applied_.fetch_add(1);
}

// Positive fixture: a suppression left behind after the offending code was
// fixed — the line no longer triggers the rule it names.
#include <cstdint>

uint64_t FixedSeed() {
  uint64_t seed = 42;  // NOLINT(warplint-determinism): seed fixed for repro
  return seed;
}

// Positive fixture: util/ reaching above itself.
#include "core/trainer.h"

// Positive fixture: every non-deterministic source warplint-determinism bans.
#include <cstdlib>
#include <ctime>
#include <random>

int BadSeed() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  int a = rand();
  std::random_device rd;
  auto wall = std::chrono::system_clock::now();
  (void)wall;
  return a + static_cast<int>(rd());
}

// Positive fixture: naked ownership.
void Leak() {
  int* p = new int(7);
  delete p;
}

// Positive fixture: unordered iteration feeding a serialized publish path.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

void Publish() {
  std::unordered_map<uint32_t, uint64_t> counts;
  std::unordered_set<uint32_t> changed;
  for (const auto& kv : counts) {
    Serialize(kv.first, kv.second);
  }
  for (auto it = changed.begin(); it != changed.end(); ++it) {
    Serialize(*it, 0);
  }
}

// Positive fixture: obs-registry orphans in both directions — a handle
// fetched from the registry but never driven, and a handle driven but never
// bound to the registry.
#include "obs/metrics.h"

class PublishStats {
 public:
  PublishStats() {
    publish_dead_us_ =
        obs::Registry::Global().GetHistogram("serve_publish_dead_us");
  }

 private:
  obs::Histogram* publish_dead_us_ = nullptr;  // fetched, never Observe'd
};

class DeltaStats {
 public:
  void Record(double v) { delta_unbound_us_->Observe(v); }

 private:
  obs::Histogram* delta_unbound_us_ = nullptr;  // Observe'd, never bound
};

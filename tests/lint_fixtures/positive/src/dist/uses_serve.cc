// Positive fixture: dist/ reaching up into the serving tier. The dist
// executor may include util/checkpoint_io and the obs/ seams, never serve/.
#include "serve/model_store.h"

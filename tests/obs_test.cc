// Tests for the obs layer (src/obs/): sharded instrument exactness under
// concurrency, registry snapshots (Prometheus text + JSON, parsed back),
// registration lifecycle, trace ring bounding and span balance, and the
// zero-cost-when-disabled guarantees the hot paths rely on.
#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace warplda::obs {
namespace {

// --------------------------------------------------------------- allocator
// Global allocation counter for the disabled-path zero-allocation test.
// Replacing the global operators affects the whole test binary, so the
// counter is only *read* inside a narrow window around the code under test.
std::atomic<uint64_t> g_allocations{0};

}  // namespace
}  // namespace warplda::obs

void* operator new(size_t size) {
  warplda::obs::g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

// The nothrow variants must be replaced alongside the throwing one: the
// standard library's temporary buffers (std::stable_sort) allocate via
// nothrow new, and under AddressSanitizer the default nothrow new does NOT
// forward to the replaced throwing new — leaving an ASan-owned allocation
// to be freed by the std::free in the counting delete (alloc-dealloc
// mismatch). Routing them through the same malloc keeps every pair matched.
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  warplda::obs::g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

// GCC pairs `new` expressions with the replaceable operator delete and
// flags the std::free inside it — but every pointer reaching these really
// did come from the malloc in the counting operator new above.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop

namespace warplda::obs {
namespace {

// ------------------------------------------------------- minimal JSON read
// Just enough of a recursive-descent parser to validate the snapshots the
// registry and the trace recorder emit. Throws std::runtime_error on
// malformed input, which fails the test via ASSERT_NO_THROW wrappers.
struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key " + key);
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) throw std::runtime_error("trailing JSON bytes");
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    SkipSpace();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected JSON end");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue ParseValue() {
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        ParseLiteral("null");
        return JsonValue{};
      default:
        return ParseNumber();
    }
  }

  void ParseLiteral(const char* lit) {
    SkipSpace();
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        throw std::runtime_error(std::string("bad literal, wanted ") + lit);
      }
    }
  }

  JsonValue ParseBool() {
    JsonValue v;
    v.kind = JsonValue::kBool;
    if (Peek() == 't') {
      ParseLiteral("true");
      v.boolean = true;
    } else {
      ParseLiteral("false");
    }
    return v;
  }

  JsonValue ParseNumber() {
    SkipSpace();
    size_t end = 0;
    JsonValue v;
    v.kind = JsonValue::kNumber;
    v.number = std::stod(text_.substr(pos_), &end);
    if (end == 0) throw std::runtime_error("bad JSON number");
    pos_ += end;
    return v;
  }

  JsonValue ParseString() {
    Expect('"');
    JsonValue v;
    v.kind = JsonValue::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
            c = static_cast<char>(
                std::stoul(text_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          default: c = e; break;
        }
      }
      v.str += c;
    }
    Expect('"');
    return v;
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue v;
    v.kind = JsonValue::kArray;
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(ParseValue());
      if (Peek() == ']') {
        ++pos_;
        return v;
      }
      Expect(',');
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue v;
    v.kind = JsonValue::kObject;
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = ParseString();
      Expect(':');
      v.object[key.str] = ParseValue();
      if (Peek() == '}') {
        ++pos_;
        return v;
      }
      Expect(',');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ------------------------------------------------------------- instruments

TEST(Counter, ConcurrentMergeIsExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kIncs = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kIncs; ++i) counter.Inc();
    });
  }
  for (auto& thread : threads) thread.join();
  // Writers have quiesced (joined): the shard merge is exact, not
  // approximate — this is the property the stage-barrier flushes rely on.
  EXPECT_EQ(counter.Value(), kThreads * kIncs);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge gauge;
  gauge.Set(3.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.5);
  gauge.Add(1.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 5.0);
  gauge.Add(-2.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.0);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

TEST(Histogram, ConcurrentMergeIsExact) {
  Histogram hist({10.0, 100.0, 1000.0});
  constexpr int kThreads = 8;
  constexpr int kObs = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kObs; ++i) {
        hist.Observe(static_cast<double>((t * kObs + i) % 2000));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kObs);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
  // Values cycle 0..1999 uniformly: 0..10 → first bucket, >1000 → overflow.
  EXPECT_EQ(snap.counts.size(), 4u);
  EXPECT_GT(snap.counts[3], 0u);  // overflow bucket saw the 1001..1999 half
  double expected_sum = 0.0;
  for (int i = 0; i < kThreads * kObs; ++i) expected_sum += i % 2000;
  EXPECT_DOUBLE_EQ(snap.sum, expected_sum);
}

TEST(Histogram, QuantileInterpolation) {
  Histogram hist({10.0, 100.0});
  // 50 observations in (10, 100]; quantiles interpolate inside that bucket.
  for (int i = 0; i < 50; ++i) hist.Observe(50.0);
  const HistogramSnapshot snap = hist.Snapshot();
  const double p50 = snap.Quantile(0.50);
  const double p99 = snap.Quantile(0.99);
  EXPECT_GT(p50, 10.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_LE(p50, p99);
  // Overflow-bucket ranks report the largest finite bound.
  hist.Observe(1e9);
  EXPECT_DOUBLE_EQ(hist.Snapshot().Quantile(1.0), 100.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram hist;
  EXPECT_DOUBLE_EQ(hist.Snapshot().Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist.Snapshot().Mean(), 0.0);
}

// ---------------------------------------------------------------- registry

TEST(MetricsRegistry, OwnedInstrumentsAndTextSnapshot) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test_events_total", "test events");
  Gauge* gauge = registry.GetGauge("test_depth", "test depth");
  Histogram* hist =
      registry.GetHistogram("test_latency_us", "test latency", {10.0, 100.0});
  // Lookups are stable: same name → same instrument.
  EXPECT_EQ(counter, registry.GetCounter("test_events_total"));
  EXPECT_EQ(hist, registry.GetHistogram("test_latency_us"));

  counter->Inc(7);
  gauge->Set(3.0);
  hist->Observe(5.0);
  hist->Observe(50.0);
  hist->Observe(5000.0);

  const std::string text = registry.TextSnapshot();
  EXPECT_NE(text.find("# HELP test_events_total test events"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_events_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_latency_us histogram"), std::string::npos);
  // Cumulative buckets: le="10" sees 1, le="100" sees 2, +Inf sees all 3.
  EXPECT_NE(text.find("test_latency_us_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_us_bucket{le=\"100\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_us_count 3"), std::string::npos);
}

TEST(MetricsRegistry, JsonSnapshotParsesBack) {
  MetricsRegistry registry;
  registry.GetCounter("json_total", "c")->Inc(42);
  registry.GetGauge("json_gauge", "g")->Set(2.5);
  Histogram* hist = registry.GetHistogram("json_hist", "h", {10.0});
  hist->Observe(5.0);
  hist->Observe(500.0);

  const std::string json = registry.JsonSnapshot();
  JsonValue root;
  ASSERT_NO_THROW(root = JsonParser(json).Parse()) << json;
  EXPECT_DOUBLE_EQ(root.at("counters").at("json_total").number, 42.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("json_gauge").number, 2.5);
  const JsonValue& h = root.at("histograms").at("json_hist");
  EXPECT_DOUBLE_EQ(h.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(h.at("sum").number, 505.0);
  const JsonValue& buckets = h.at("buckets");
  ASSERT_EQ(buckets.array.size(), 2u);  // finite bucket + overflow
  EXPECT_DOUBLE_EQ(buckets.array[0].array[0].number, 10.0);  // le
  EXPECT_DOUBLE_EQ(buckets.array[0].array[1].number, 1.0);   // count
  EXPECT_EQ(buckets.array[1].array[0].kind, JsonValue::kNull);  // +Inf → null
  EXPECT_DOUBLE_EQ(buckets.array[1].array[1].number, 1.0);
}

TEST(MetricsRegistry, RegistrationLifecycleAndDuplicateNames) {
  MetricsRegistry registry;
  Histogram first;
  Histogram second;
  auto reg1 = registry.RegisterHistogram("dup_us", "first", &first);
  auto reg2 = registry.RegisterHistogram("dup_us", "second", &second);
  first.Observe(1.0);
  second.Observe(1.0);
  {
    const std::string text = registry.TextSnapshot();
    // The second instance is auto-suffixed, not silently merged or dropped.
    EXPECT_NE(text.find("# TYPE dup_us histogram"), std::string::npos);
    EXPECT_NE(text.find("# TYPE dup_us_2 histogram"), std::string::npos);
  }
  {
    auto released = std::move(reg2);
  }  // second unregisters here
  const std::string text = registry.TextSnapshot();
  EXPECT_NE(text.find("dup_us_count"), std::string::npos);
  EXPECT_EQ(text.find("dup_us_2"), std::string::npos);
}

TEST(MetricsRegistry, ResetAllZeroes) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("reset_total");
  Histogram* hist = registry.GetHistogram("reset_us");
  counter->Inc(5);
  hist->Observe(1.0);
  registry.ResetAll();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(hist->Snapshot().count, 0u);
}

// ------------------------------------------------------------------- trace

TEST(Trace, SpanBalancePerThread) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Start(1 << 10);
  constexpr int kThreads = 4;
  constexpr int kSpans = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        TraceSpan outer("outer", "test");
        TraceSpan inner("inner", "test", static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  rec.Stop();

  // Every tid's B/E events form a balanced nesting: depth never dips below
  // zero and ends at zero (the invariant Chrome's viewer needs).
  std::map<uint32_t, int> depth;
  std::map<uint32_t, uint64_t> events;
  for (const TraceEvent& event : rec.Snapshot()) {
    events[event.tid]++;
    if (event.phase == 'B') {
      depth[event.tid]++;
    } else if (event.phase == 'E') {
      depth[event.tid]--;
      EXPECT_GE(depth[event.tid], 0);
    }
  }
  EXPECT_EQ(depth.size(), static_cast<size_t>(kThreads));
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;
  for (const auto& [tid, n] : events) {
    EXPECT_EQ(n, static_cast<uint64_t>(kSpans) * 4) << "tid " << tid;
  }
  rec.Clear();
}

TEST(Trace, RingBoundsMemory) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Start(/*events_per_thread=*/64);
  for (int i = 0; i < 1000; ++i) {
    rec.Record("tick", "test", 'i', static_cast<uint64_t>(i));
  }
  rec.Stop();
  const std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 64u);  // ring kept only the newest window
  // ... and it is the *latest* window, oldest-first.
  EXPECT_EQ(events.front().arg, 1000u - 64u);
  EXPECT_EQ(events.back().arg, 999u);
  rec.Clear();
}

TEST(Trace, JsonParsesBack) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Start(1 << 8);
  {
    TraceSpan span("alpha", "test", 7);
    TraceSpan nested("beta", "test");
  }
  rec.Record("mark", "test", 'i');
  rec.Stop();

  const std::string json = rec.ToJson();
  JsonValue root;
  ASSERT_NO_THROW(root = JsonParser(json).Parse()) << json;
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::kArray);
  ASSERT_EQ(events.array.size(), 5u);  // 2×B + 2×E + 1×i
  int begins = 0;
  int ends = 0;
  int instants = 0;
  for (const JsonValue& event : events.array) {
    const std::string& ph = event.at("ph").str;
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
    if (ph == "i") ++instants;
    EXPECT_GE(event.at("ts").number, 0.0);
    EXPECT_FALSE(event.at("name").str.empty());
  }
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);
  EXPECT_EQ(instants, 1);
  // The arg rode along.
  bool saw_arg = false;
  for (const JsonValue& event : events.array) {
    auto it = event.object.find("args");
    if (it != event.object.end() &&
        it->second.at("v").number == 7.0) {
      saw_arg = true;
    }
  }
  EXPECT_TRUE(saw_arg);
  rec.Clear();
}

TEST(Trace, DisabledRecorderCapturesNothing) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  ASSERT_FALSE(rec.enabled());
  rec.Record("ghost", "test", 'i');
  { TraceSpan span("ghost-span", "test"); }
  EXPECT_TRUE(rec.Snapshot().empty());
}

// ------------------------------------------------------------ disabled path

TEST(DisabledPath, NoAllocationAndNoRecording) {
  ASSERT_FALSE(MetricsEnabled());
  ASSERT_FALSE(TraceRecorder::Global().enabled());
  Counter counter;  // stack instrument: construction outside the window
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    // The hot-path pattern: check the toggle, skip the instrument work.
    if (MetricsEnabled()) counter.Inc();
    TraceSpan span("off", "test");
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(DisabledPath, ToggleRoundTrip) {
  ASSERT_FALSE(MetricsEnabled());
  SetMetricsEnabled(true);
  EXPECT_TRUE(MetricsEnabled());
  SetMetricsEnabled(false);
  EXPECT_FALSE(MetricsEnabled());
}

}  // namespace
}  // namespace warplda::obs

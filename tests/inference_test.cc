#include "core/inference.h"

#include <cmath>

#include <gtest/gtest.h>

namespace warplda {
namespace {

// Train-free fixture: a hand-built model with two disjoint topics.
// Topic 0 owns words 0-4, topic 1 owns words 5-9.
TopicModel DisjointModel() {
  CorpusBuilder builder;
  builder.set_num_words(10);
  std::vector<WordId> doc0;
  std::vector<WordId> doc1;
  for (int rep = 0; rep < 40; ++rep) {
    doc0.push_back(rep % 5);
    doc1.push_back(5 + rep % 5);
  }
  builder.AddDocument(doc0);
  builder.AddDocument(doc1);
  Corpus corpus = builder.Build();
  std::vector<TopicId> z(corpus.num_tokens());
  for (TokenIdx t = 0; t < corpus.num_tokens(); ++t) {
    z[t] = corpus.token_word(t) < 5 ? 0 : 1;
  }
  return TopicModel(corpus, z, 2, 0.5, 0.01);
}

TEST(InferenceTest, ThetaSumsToOne) {
  TopicModel model = DisjointModel();
  Inferencer inferencer(model);
  std::vector<WordId> doc = {0, 1, 2, 3};
  auto theta = inferencer.InferTheta(doc);
  ASSERT_EQ(theta.size(), 2u);
  EXPECT_NEAR(theta[0] + theta[1], 1.0, 1e-9);
}

TEST(InferenceTest, RecognizesTopicZeroDocument) {
  TopicModel model = DisjointModel();
  Inferencer inferencer(model);
  std::vector<WordId> doc = {0, 1, 2, 0, 1, 2, 3, 4};
  auto theta = inferencer.InferTheta(doc);
  EXPECT_GT(theta[0], 0.8);
  EXPECT_EQ(inferencer.MostLikelyTopic(doc), 0u);
}

TEST(InferenceTest, RecognizesTopicOneDocument) {
  TopicModel model = DisjointModel();
  Inferencer inferencer(model);
  std::vector<WordId> doc = {5, 6, 7, 8, 9, 5, 6, 7};
  auto theta = inferencer.InferTheta(doc);
  EXPECT_GT(theta[1], 0.8);
  EXPECT_EQ(inferencer.MostLikelyTopic(doc), 1u);
}

TEST(InferenceTest, MixedDocumentSplitsMass) {
  TopicModel model = DisjointModel();
  Inferencer inferencer(model);
  std::vector<WordId> doc = {0, 1, 2, 3, 5, 6, 7, 8, 0, 5, 1, 6};
  auto theta = inferencer.InferTheta(doc);
  EXPECT_GT(theta[0], 0.25);
  EXPECT_GT(theta[1], 0.25);
}

TEST(InferenceTest, EmptyDocumentReturnsUniform) {
  TopicModel model = DisjointModel();
  Inferencer inferencer(model);
  auto theta = inferencer.InferTheta(std::vector<WordId>{});
  EXPECT_NEAR(theta[0], 0.5, 1e-9);
  EXPECT_NEAR(theta[1], 0.5, 1e-9);
}

TEST(InferenceTest, OutOfVocabularyWordsIgnored) {
  TopicModel model = DisjointModel();
  Inferencer inferencer(model);
  std::vector<WordId> doc = {0, 1, 2, 900000, 1000000};
  auto theta = inferencer.InferTheta(doc);
  EXPECT_GT(theta[0], 0.7);
}

TEST(InferenceTest, DeterministicForSeed) {
  TopicModel model = DisjointModel();
  InferenceOptions options;
  options.seed = 5;
  std::vector<WordId> doc = {0, 5, 1, 6, 2};
  Inferencer a(model, options);
  Inferencer b(model, options);
  auto ta = a.InferTheta(doc);
  auto tb = b.InferTheta(doc);
  for (size_t k = 0; k < ta.size(); ++k) EXPECT_DOUBLE_EQ(ta[k], tb[k]);
}

}  // namespace
}  // namespace warplda

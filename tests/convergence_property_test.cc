// Property-based convergence tests: every sampler, run long enough on a
// corpus with strong planted structure, must approach the quality of the
// exact CGS reference. This is the correctness backbone for the MH-based
// algorithms whose per-step behaviour is stochastic.
#include <algorithm>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "baselines/sampler.h"
#include "corpus/synthetic.h"
#include "eval/log_likelihood.h"
#include "eval/topic_model.h"

namespace warplda {
namespace {

struct ConvergenceCase {
  std::string sampler;
  uint32_t iterations;
};

Corpus PlantedCorpus() {
  SyntheticConfig config;
  config.num_docs = 250;
  config.vocab_size = 300;
  config.num_topics = 5;
  config.mean_doc_length = 50;
  config.alpha = 0.04;
  config.word_zipf_skew = 0.7;
  config.seed = 101;
  return GenerateLdaCorpus(config).corpus;
}

// The CGS likelihood plateau, computed once and shared.
double CgsReferenceLl(const Corpus& corpus, const LdaConfig& config) {
  static double cached = 0.0;
  static bool ready = false;
  if (!ready) {
    auto cgs = CreateSampler("cgs");
    cgs->Init(corpus, config);
    for (int i = 0; i < 80; ++i) cgs->Iterate();
    cached = JointLogLikelihood(corpus, cgs->Assignments(),
                                config.num_topics, config.alpha, config.beta);
    ready = true;
  }
  return cached;
}

class ConvergenceTest : public ::testing::TestWithParam<ConvergenceCase> {};

TEST_P(ConvergenceTest, ReachesCgsQualityBand) {
  Corpus corpus = PlantedCorpus();
  LdaConfig config = LdaConfig::PaperDefaults(5);
  config.mh_steps = 2;
  double reference = CgsReferenceLl(corpus, config);

  auto sampler = CreateSampler(GetParam().sampler);
  ASSERT_NE(sampler, nullptr);
  sampler->Init(corpus, config);
  for (uint32_t i = 0; i < GetParam().iterations; ++i) sampler->Iterate();
  double ll = JointLogLikelihood(corpus, sampler->Assignments(),
                                 config.num_topics, config.alpha, config.beta);

  // Likelihoods are negative; accept within 2% of the CGS plateau.
  EXPECT_GT(ll, reference + 0.02 * reference)
      << sampler->name() << " ll=" << ll << " ref=" << reference;
}

INSTANTIATE_TEST_SUITE_P(
    AllSamplers, ConvergenceTest,
    ::testing::Values(ConvergenceCase{"cgs", 60},
                      ConvergenceCase{"sparselda", 60},
                      ConvergenceCase{"aliaslda", 80},
                      ConvergenceCase{"f+lda", 60},
                      ConvergenceCase{"lightlda", 120},
                      ConvergenceCase{"warplda", 120}),
    [](const auto& pinfo) {
      std::string name = pinfo.param.sampler;
      for (auto& c : name) {
        if (c == '+') c = 'p';
      }
      return name;
    });

// Sweeping K: WarpLDA must converge for a range of topic counts, including
// K larger than the planted structure.
class WarpKSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WarpKSweepTest, ImprovesSubstantiallyOverRandomInit) {
  Corpus corpus = PlantedCorpus();
  LdaConfig config = LdaConfig::PaperDefaults(GetParam());
  auto sampler = CreateSampler("warplda");
  sampler->Init(corpus, config);
  double initial = JointLogLikelihood(corpus, sampler->Assignments(),
                                      config.num_topics, config.alpha,
                                      config.beta);
  for (int i = 0; i < 60; ++i) sampler->Iterate();
  double trained = JointLogLikelihood(corpus, sampler->Assignments(),
                                      config.num_topics, config.alpha,
                                      config.beta);
  // Recovers a large share of the gap between random init and the CGS
  // plateau at K=5 (a lower bound for all K on this corpus).
  LdaConfig ref_config = LdaConfig::PaperDefaults(5);
  double reference = CgsReferenceLl(corpus, ref_config);
  EXPECT_GT(trained, initial + 0.6 * (reference - initial)) << "K=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(TopicCounts, WarpKSweepTest,
                         ::testing::Values(2u, 5u, 10u, 25u, 50u));

// Document-topic purity: with near-disjoint planted topics, most documents
// should end up dominated by a single learned topic.
TEST(ConvergencePropertyTest, DocumentsBecomePure) {
  // Concentrated topics (higher Zipf skew) so the planted structure is
  // actually separable; at skew 0.7 even exact CGS plateaus near 0.5 purity.
  SyntheticConfig generator;
  generator.num_docs = 250;
  generator.vocab_size = 300;
  generator.num_topics = 5;
  generator.mean_doc_length = 50;
  generator.alpha = 0.04;
  generator.word_zipf_skew = 1.3;
  generator.seed = 101;
  Corpus corpus = GenerateLdaCorpus(generator).corpus;
  LdaConfig config = LdaConfig::PaperDefaults(5);
  config.alpha = 0.1;  // 50/K is meant for K in the thousands
  auto sampler = CreateSampler("warplda");
  sampler->Init(corpus, config);
  for (int i = 0; i < 100; ++i) sampler->Iterate();
  auto z = sampler->Assignments();

  double purity_sum = 0.0;
  uint32_t docs = 0;
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    uint32_t len = corpus.doc_length(d);
    if (len < 10) continue;
    std::vector<int> counts(config.num_topics, 0);
    TokenIdx base = corpus.doc_offset(d);
    for (uint32_t n = 0; n < len; ++n) ++counts[z[base + n]];
    purity_sum += static_cast<double>(
                      *std::max_element(counts.begin(), counts.end())) /
                  len;
    ++docs;
  }
  ASSERT_GT(docs, 0u);
  EXPECT_GT(purity_sum / docs, 0.6);
}

}  // namespace
}  // namespace warplda

#include "util/ftree.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace warplda {
namespace {

TEST(FTreeTest, BuildComputesTotal) {
  FTree tree;
  tree.Build({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(tree.Total(), 10.0);
  EXPECT_EQ(tree.size(), 4u);
}

TEST(FTreeTest, NonPowerOfTwoSize) {
  FTree tree;
  tree.Build({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(tree.Total(), 6.0);
  EXPECT_DOUBLE_EQ(tree.Get(2), 3.0);
}

TEST(FTreeTest, UpdatePropagatesToTotal) {
  FTree tree;
  tree.Build({1.0, 1.0, 1.0, 1.0});
  tree.Update(2, 5.0);
  EXPECT_DOUBLE_EQ(tree.Total(), 8.0);
  EXPECT_DOUBLE_EQ(tree.Get(2), 5.0);
}

TEST(FTreeTest, DeterministicSampleBoundaries) {
  FTree tree;
  tree.Build({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(tree.SampleWith(0.0), 0u);
  EXPECT_EQ(tree.SampleWith(0.05), 0u);   // cdf: .1 .3 .6 1.0
  EXPECT_EQ(tree.SampleWith(0.15), 1u);
  EXPECT_EQ(tree.SampleWith(0.45), 2u);
  EXPECT_EQ(tree.SampleWith(0.75), 3u);
  EXPECT_EQ(tree.SampleWith(0.999999), 3u);
}

TEST(FTreeTest, ZeroWeightNeverSampled) {
  FTree tree;
  tree.Build({1.0, 0.0, 1.0});
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(tree.Sample(rng), 1u);
}

TEST(FTreeTest, EmpiricalFrequenciesMatch) {
  FTree tree;
  tree.Build({2.0, 3.0, 5.0});
  Rng rng(4);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[tree.Sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.5, 0.01);
}

TEST(FTreeTest, SampleAfterUpdateFollowsNewWeights) {
  FTree tree;
  tree.Build({1.0, 1.0});
  tree.Update(0, 0.0);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(tree.Sample(rng), 1u);
}

TEST(FTreeTest, ResetZeroesEverything) {
  FTree tree;
  tree.Build({1.0, 2.0});
  tree.Reset(8);
  EXPECT_EQ(tree.size(), 8u);
  EXPECT_DOUBLE_EQ(tree.Total(), 0.0);
  for (uint32_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(tree.Get(i), 0.0);
}

TEST(FTreeTest, SizeOne) {
  FTree tree;
  tree.Build({3.0});
  EXPECT_EQ(tree.SampleWith(0.5), 0u);
  tree.Update(0, 7.0);
  EXPECT_DOUBLE_EQ(tree.Total(), 7.0);
}

TEST(FTreeTest, IncrementalUpdatesMatchBulkBuild) {
  const uint32_t n = 37;
  Rng rng(6);
  std::vector<double> weights(n);
  FTree incremental(n);
  for (uint32_t i = 0; i < n; ++i) {
    weights[i] = rng.NextDouble() * 10.0;
    incremental.Update(i, weights[i]);
  }
  FTree bulk;
  bulk.Build(weights);
  EXPECT_NEAR(incremental.Total(), bulk.Total(), 1e-9);
  for (double u : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_EQ(incremental.SampleWith(u), bulk.SampleWith(u));
  }
}

}  // namespace
}  // namespace warplda

#include "corpus/synthetic.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace warplda {
namespace {

TEST(SyntheticTest, LdaCorpusHasRequestedShape) {
  SyntheticConfig config;
  config.num_docs = 200;
  config.vocab_size = 500;
  config.num_topics = 10;
  config.mean_doc_length = 40;
  SyntheticCorpus sc = GenerateLdaCorpus(config);
  EXPECT_EQ(sc.corpus.num_docs(), 200u);
  EXPECT_EQ(sc.corpus.num_words(), 500u);
  EXPECT_NEAR(sc.corpus.mean_doc_length(), 40.0, 4.0);
  EXPECT_EQ(sc.true_topics.size(), sc.corpus.num_tokens());
}

TEST(SyntheticTest, TrueTopicsWithinRange) {
  SyntheticConfig config;
  config.num_docs = 50;
  config.num_topics = 7;
  SyntheticCorpus sc = GenerateLdaCorpus(config);
  for (TopicId z : sc.true_topics) EXPECT_LT(z, 7u);
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticConfig config;
  config.num_docs = 30;
  config.seed = 777;
  SyntheticCorpus a = GenerateLdaCorpus(config);
  SyntheticCorpus b = GenerateLdaCorpus(config);
  ASSERT_EQ(a.corpus.num_tokens(), b.corpus.num_tokens());
  for (DocId d = 0; d < a.corpus.num_docs(); ++d) {
    auto ta = a.corpus.doc_tokens(d);
    auto tb = b.corpus.doc_tokens(d);
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta[i], tb[i]);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticConfig config;
  config.num_docs = 30;
  config.seed = 1;
  SyntheticCorpus a = GenerateLdaCorpus(config);
  config.seed = 2;
  SyntheticCorpus b = GenerateLdaCorpus(config);
  bool any_diff = a.corpus.num_tokens() != b.corpus.num_tokens();
  if (!any_diff) {
    for (TokenIdx t = 0; t < a.corpus.num_tokens() && !any_diff; ++t) {
      any_diff = a.corpus.token_word(t) != b.corpus.token_word(t);
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, LowAlphaConcentratesDocsOnFewTopics) {
  SyntheticConfig config;
  config.num_docs = 100;
  config.num_topics = 20;
  config.alpha = 0.02;
  config.mean_doc_length = 60;
  SyntheticCorpus sc = GenerateLdaCorpus(config);
  // With a tiny alpha most tokens of a document share one topic.
  double dominant_fraction = 0.0;
  for (DocId d = 0; d < sc.corpus.num_docs(); ++d) {
    uint32_t len = sc.corpus.doc_length(d);
    if (len == 0) continue;
    TokenIdx base = sc.corpus.doc_offset(d);
    std::vector<int> counts(config.num_topics, 0);
    for (uint32_t n = 0; n < len; ++n) ++counts[sc.true_topics[base + n]];
    dominant_fraction += static_cast<double>(*std::max_element(
                             counts.begin(), counts.end())) /
                         len;
  }
  dominant_fraction /= sc.corpus.num_docs();
  EXPECT_GT(dominant_fraction, 0.7);
}

TEST(SyntheticTest, ZipfCorpusFrequenciesSkewed) {
  Corpus corpus = GenerateZipfCorpus(500, 1000, 100, 1.1, 3);
  std::vector<uint32_t> freqs(corpus.num_words());
  for (WordId w = 0; w < corpus.num_words(); ++w) {
    freqs[w] = corpus.word_frequency(w);
  }
  std::sort(freqs.rbegin(), freqs.rend());
  // Top 10% of words should hold well over half the tokens under Zipf ~1.1.
  uint64_t head = 0;
  uint64_t total = 0;
  for (size_t i = 0; i < freqs.size(); ++i) {
    total += freqs[i];
    if (i < freqs.size() / 10) head += freqs[i];
  }
  EXPECT_GT(static_cast<double>(head) / total, 0.5);
}

TEST(SyntheticTest, ShapeFactoriesScaleDown) {
  SyntheticConfig nyt = NYTimesShape(0.001);
  EXPECT_EQ(nyt.num_docs, 300u);
  EXPECT_NEAR(nyt.mean_doc_length, 332, 1);
  SyntheticConfig pm = PubMedShape(0.0001);
  EXPECT_EQ(pm.num_docs, 820u);
  EXPECT_NEAR(pm.mean_doc_length, 90, 1);
  SyntheticConfig cw = ClueWebShape(1e-5);
  EXPECT_EQ(cw.num_docs, 380u);
}

TEST(SyntheticTest, DescribeCorpusMentionsDimensions) {
  SyntheticConfig config;
  config.num_docs = 10;
  config.vocab_size = 50;
  SyntheticCorpus sc = GenerateLdaCorpus(config);
  std::string desc = DescribeCorpus(sc.corpus);
  EXPECT_NE(desc.find("D=10"), std::string::npos);
  EXPECT_NE(desc.find("V=50"), std::string::npos);
}

TEST(SyntheticTest, TopWordsPerTopicExposed) {
  SyntheticConfig config;
  config.num_topics = 5;
  config.num_docs = 20;
  SyntheticCorpus sc = GenerateLdaCorpus(config);
  auto top = sc.TopWordsPerTopic(10);
  ASSERT_EQ(top.size(), 5u);
  for (const auto& words : top) {
    EXPECT_EQ(words.size(), 10u);
    for (WordId w : words) EXPECT_LT(w, config.vocab_size);
  }
}

}  // namespace
}  // namespace warplda

#include "core/sweep_plan.h"

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/parallel_executor.h"
#include "core/warp_lda.h"
#include "corpus/synthetic.h"
#include "dist/cluster_sim.h"
#include "dist/partitioner.h"

namespace warplda {
namespace {

Corpus TestCorpus() {
  SyntheticConfig config;
  config.num_docs = 120;
  config.vocab_size = 250;
  config.num_topics = 6;
  config.mean_doc_length = 24;
  config.alpha = 0.1;
  config.seed = 77;
  return GenerateLdaCorpus(config).corpus;
}

LdaConfig TestConfig() {
  LdaConfig config = LdaConfig::PaperDefaults(12);
  config.seed = 321;
  config.mh_steps = 2;
  return config;
}

// The determinism regression behind the grid API: block-wise execution must
// change where work happens, never what is sampled.
TEST(GridSweepTest, TwoByTwoGridMatchesIterate) {
  Corpus corpus = TestCorpus();
  LdaConfig config = TestConfig();

  WarpLdaSampler serial;
  serial.Init(corpus, config);
  WarpLdaSampler grid;
  grid.Init(corpus, config);
  SweepPlan plan = MakeSweepPlan(corpus, 2, 2, PartitionStrategy::kGreedy);

  for (int sweep = 0; sweep < 3; ++sweep) {
    serial.Iterate();
    grid.RunSweep(plan);
    ASSERT_EQ(serial.Assignments(), grid.Assignments()) << "sweep " << sweep;
  }
}

TEST(GridSweepTest, TrivialPlanMatchesIterate) {
  Corpus corpus = TestCorpus();
  LdaConfig config = TestConfig();
  WarpLdaSampler serial;
  serial.Init(corpus, config);
  WarpLdaSampler grid;
  grid.Init(corpus, config);
  for (int sweep = 0; sweep < 2; ++sweep) {
    serial.Iterate();
    grid.RunSweep(SweepPlan::Trivial());
  }
  EXPECT_EQ(serial.Assignments(), grid.Assignments());
}

TEST(GridSweepTest, BlockOrderAndRectangularGridsDoNotChangeSamples) {
  Corpus corpus = TestCorpus();
  LdaConfig config = TestConfig();

  WarpLdaSampler canonical;
  canonical.Init(corpus, config);
  WarpLdaSampler reversed;
  reversed.Init(corpus, config);
  SweepPlan plan = MakeSweepPlan(corpus, 3, 2, PartitionStrategy::kDynamic);

  for (int sweep = 0; sweep < 2; ++sweep) {
    canonical.RunSweep(plan);
    // Same plan, blocks visited back-to-front within every stage.
    reversed.BeginSweep(plan);
    while (reversed.sweep_stage() != SweepStage::kDone) {
      for (uint32_t i = plan.num_doc_blocks; i-- > 0;) {
        for (uint32_t j = plan.num_word_blocks; j-- > 0;) {
          reversed.RunBlock(i, j);
        }
      }
      reversed.EndStage();
    }
    reversed.EndSweep();
  }
  EXPECT_EQ(canonical.Assignments(), reversed.Assignments());
}

// Per-token RNG streams also decouple results from the thread count.
TEST(GridSweepTest, ThreadCountDoesNotChangeSamples) {
  Corpus corpus = TestCorpus();
  LdaConfig config = TestConfig();
  WarpLdaOptions threaded;
  threaded.num_threads = 4;
  WarpLdaSampler one(WarpLdaOptions{});
  WarpLdaSampler four(threaded);
  one.Init(corpus, config);
  four.Init(corpus, config);
  for (int sweep = 0; sweep < 3; ++sweep) {
    one.Iterate();
    four.Iterate();
  }
  EXPECT_EQ(one.Assignments(), four.Assignments());
}

TEST(GridSweepTest, ClusterSimRunSweepProducesSerialSamples) {
  Corpus corpus = TestCorpus();
  LdaConfig config = TestConfig();
  ClusterConfig cluster;
  cluster.num_workers = 4;
  ClusterSim sim(corpus, cluster);

  WarpLdaSampler serial;
  serial.Init(corpus, config);
  WarpLdaSampler distributed;
  distributed.Init(corpus, config);
  for (int sweep = 0; sweep < 2; ++sweep) {
    serial.Iterate();
    IterationTiming timing = sim.RunSweep(distributed);
    EXPECT_GT(timing.wall_seconds, 0.0);
  }
  EXPECT_EQ(serial.Assignments(), distributed.Assignments());
}

TEST(GridSweepTest, SweepProtocolViolationsThrow) {
  Corpus corpus = TestCorpus();
  WarpLdaSampler sampler;

  // Grid calls before Init().
  EXPECT_THROW(sampler.BeginSweep(SweepPlan::Trivial()), std::logic_error);

  sampler.Init(corpus, TestConfig());
  EXPECT_THROW(sampler.RunBlock(0, 0), std::logic_error);
  EXPECT_THROW(sampler.EndStage(), std::logic_error);
  EXPECT_THROW(sampler.EndSweep(), std::logic_error);

  // Plan shape mismatches.
  SweepPlan bad;
  bad.num_doc_blocks = 2;  // 2 blocks but no per-doc assignment
  EXPECT_THROW(sampler.BeginSweep(bad), std::invalid_argument);
  bad = MakeSweepPlan(corpus, 2, 2, PartitionStrategy::kGreedy);
  bad.word_block[0] = 7;  // out of range block id
  EXPECT_THROW(sampler.BeginSweep(bad), std::invalid_argument);

  SweepPlan plan = MakeSweepPlan(corpus, 2, 2, PartitionStrategy::kGreedy);
  sampler.BeginSweep(plan);
  EXPECT_EQ(sampler.sweep_stage(), SweepStage::kWordAccept);
  EXPECT_THROW(sampler.BeginSweep(plan), std::logic_error);  // nested sweep
  EXPECT_THROW(sampler.Iterate(), std::logic_error);         // fused mid-sweep
  EXPECT_THROW(sampler.EndStage(), std::logic_error);  // blocks missing
  sampler.RunBlock(0, 0);
  EXPECT_THROW(sampler.RunBlock(0, 0), std::logic_error);  // block ran twice
  EXPECT_THROW(sampler.RunBlock(5, 0), std::invalid_argument);
  sampler.RunBlock(0, 1);
  sampler.RunBlock(1, 0);
  sampler.RunBlock(1, 1);
  EXPECT_THROW(sampler.EndSweep(), std::logic_error);  // stages remain
  sampler.EndStage();
  EXPECT_EQ(sampler.sweep_stage(), SweepStage::kWordPropose);

  // Finish the sweep cleanly; the sampler must be fully usable afterwards.
  // (The number of barriers left depends on stage fusion, so step until the
  // sampler reports completion.)
  while (sampler.sweep_stage() != SweepStage::kDone) {
    for (uint32_t i = 0; i < 2; ++i) {
      for (uint32_t j = 0; j < 2; ++j) sampler.RunBlock(i, j);
    }
    sampler.EndStage();
  }
  EXPECT_EQ(sampler.sweep_stage(), SweepStage::kDone);
  sampler.EndSweep();
  EXPECT_NO_THROW(sampler.Iterate());
}

// The full bit-identity matrix for the stage-fusion work: fused spans,
// the four-stage schedule, SIMD and scalar kernels, and 1/2/8 executor
// threads must all reproduce the serial Iterate() trajectory exactly — on
// plans that trigger every fusion shape (1x4 fuses [wa,wp] per column,
// 4x1 fuses [da,dp] per row, Trivial fuses both, 8x8 fuses only [wp,da])
// and with an asymmetric α so the doc-proposal prior alias is exercised.
TEST(GridSweepTest, FusionKernelThreadMatrixMatchesIterate) {
  Corpus corpus = TestCorpus();
  LdaConfig config = TestConfig();
  config.alpha_vector.assign(config.num_topics, 0.08);
  config.alpha_vector[0] = 1.4;  // asymmetric: strong pull toward topic 0
  config.alpha_vector[3] = 0.4;

  WarpLdaSampler serial;
  serial.Init(corpus, config);
  for (int sweep = 0; sweep < 2; ++sweep) serial.Iterate();
  const std::vector<TopicId> expected = serial.Assignments();

  struct NamedPlan {
    const char* name;
    SweepPlan plan;
  };
  const NamedPlan plans[] = {
      {"1x4", MakeSweepPlan(corpus, 1, 4, PartitionStrategy::kGreedy)},
      {"4x1", MakeSweepPlan(corpus, 4, 1, PartitionStrategy::kGreedy)},
      {"trivial", SweepPlan::Trivial()},
      {"8x8", MakeSweepPlan(corpus, 8, 8, PartitionStrategy::kGreedy)},
  };
  for (const NamedPlan& np : plans) {
    for (StageFusion fusion : {StageFusion::kNone, StageFusion::kAuto}) {
      for (bool force_scalar : {false, true}) {
        for (uint32_t threads : {1u, 2u, 8u}) {
          WarpLdaOptions options;
          options.fusion = fusion;
          options.force_scalar_kernels = force_scalar;
          WarpLdaSampler grid(options);
          grid.Init(corpus, config);
          ParallelExecutor executor(threads);
          for (int sweep = 0; sweep < 2; ++sweep) {
            executor.RunSweep(grid, np.plan);
          }
          EXPECT_EQ(grid.Assignments(), expected)
              << "plan " << np.name << " fusion "
              << (fusion == StageFusion::kAuto ? "auto" : "none")
              << " scalar " << force_scalar << " threads " << threads;
        }
      }
    }
  }
}

// Checkpoint capture at the barrier that ends the fused [word-propose,
// doc-accept] span (the only mid-sweep barrier besides word-accept's under
// kAuto on a general plan) must restore and finish bit-identically.
TEST(GridSweepTest, CheckpointAcrossFusedSpanBarrierRestoresBitIdentical) {
  Corpus corpus = TestCorpus();
  LdaConfig config = TestConfig();
  SweepPlan plan = MakeSweepPlan(corpus, 3, 3, PartitionStrategy::kGreedy);

  WarpLdaSampler reference;  // default options: fusion on
  reference.Init(corpus, config);
  ParallelExecutor reference_exec(2);
  for (int sweep = 0; sweep < 3; ++sweep) reference_exec.RunSweep(reference, plan);

  WarpLdaSampler victim;
  victim.Init(corpus, config);
  ParallelExecutor capture_exec(2);
  capture_exec.RunSweep(victim, plan);
  SweepCheckpoint captured;
  bool saved = false;
  capture_exec.RunSweep(victim, plan, [&](SweepStage next) {
    // Under kAuto on a 3x3 plan the sweep's barriers are word-accept ->
    // [word-propose, doc-accept] -> doc-propose; next == kDocPropose is the
    // barrier right after the fused span ran.
    if (next != SweepStage::kDocPropose || saved) return;
    ASSERT_TRUE(victim.CaptureSweepState(&captured));
    saved = true;
  });
  ASSERT_TRUE(saved);
  EXPECT_EQ(captured.next_stage, SweepStage::kDocPropose);

  WarpLdaSampler resumed;
  resumed.Init(corpus, config);
  std::string error;
  ASSERT_TRUE(resumed.RestoreSweepState(captured, &error)) << error;
  ParallelExecutor resume_exec(8);
  resume_exec.FinishSweep(resumed, captured.plan);
  resume_exec.RunSweep(resumed, plan);

  EXPECT_EQ(resumed.Assignments(), reference.Assignments());
  EXPECT_EQ(resumed.topic_counts(), reference.topic_counts());
}

TEST(GridSweepTest, MakeSweepPlanCoversCorpusAndValidates) {
  Corpus corpus = TestCorpus();
  for (auto strategy :
       {PartitionStrategy::kStatic, PartitionStrategy::kDynamic,
        PartitionStrategy::kGreedy}) {
    SweepPlan plan = MakeSweepPlan(corpus, 4, 3, strategy);
    EXPECT_EQ(plan.num_doc_blocks, 4u);
    EXPECT_EQ(plan.num_word_blocks, 3u);
    std::string error;
    EXPECT_TRUE(plan.Validate(corpus.num_docs(), corpus.num_words(), &error))
        << ToString(strategy) << ": " << error;
  }
}

}  // namespace
}  // namespace warplda

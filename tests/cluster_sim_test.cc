#include "dist/cluster_sim.h"

#include <gtest/gtest.h>

#include "corpus/synthetic.h"

namespace warplda {
namespace {

Corpus SimCorpus() {
  return GenerateZipfCorpus(2000, 3000, 60, 1.05, 11);
}

ClusterConfig MakeConfig(uint32_t workers) {
  ClusterConfig config;
  config.num_workers = workers;
  return config;
}

TEST(ClusterSimTest, GridTokensSumToCorpus) {
  Corpus corpus = SimCorpus();
  ClusterSim sim(corpus, MakeConfig(4));
  uint64_t total = 0;
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = 0; j < 4; ++j) total += sim.PartitionTokens(i, j);
  }
  EXPECT_EQ(total, corpus.num_tokens());
}

TEST(ClusterSimTest, SingleWorkerMatchesSerialModel) {
  Corpus corpus = SimCorpus();
  ClusterConfig config = MakeConfig(1);
  ClusterSim sim(corpus, config);
  IterationTiming timing = sim.SimulateIteration();
  double expected =
      2.0 * corpus.num_tokens() * config.per_token_ns * 1e-9;
  EXPECT_NEAR(timing.wall_seconds, expected, expected * 1e-9);
  EXPECT_NEAR(sim.SimulatedSpeedup(), 1.0, 1e-9);
}

TEST(ClusterSimTest, SpeedupGrowsWithWorkers) {
  Corpus corpus = SimCorpus();
  double prev = 0.0;
  for (uint32_t p : {1u, 2u, 4u, 8u}) {
    double speedup = ClusterSim(corpus, MakeConfig(p)).SimulatedSpeedup();
    EXPECT_GT(speedup, prev);
    prev = speedup;
  }
}

TEST(ClusterSimTest, SpeedupBoundedByWorkerCount) {
  Corpus corpus = SimCorpus();
  for (uint32_t p : {2u, 4u, 8u}) {
    EXPECT_LE(ClusterSim(corpus, MakeConfig(p)).SimulatedSpeedup(),
              static_cast<double>(p));
  }
}

TEST(ClusterSimTest, ImbalanceSmallWithGreedyPartitioning) {
  Corpus corpus = SimCorpus();
  ClusterSim sim(corpus, MakeConfig(8));
  EXPECT_LT(sim.DocImbalance(), 0.05);
  // Words are bounded by the inherent limit: the most frequent word cannot
  // be split across partitions (the paper notes the same effect in Fig 4 at
  // large P), so allow max(5%, that bound) with a little slack.
  uint64_t top = 0;
  for (WordId w = 0; w < corpus.num_words(); ++w) {
    top = std::max<uint64_t>(top, corpus.word_frequency(w));
  }
  double inherent =
      8.0 * static_cast<double>(top) / corpus.num_tokens() - 1.0;
  EXPECT_LT(sim.WordImbalance(), std::max(0.05, inherent + 0.05));
}

TEST(ClusterSimTest, CommunicationSlowsIteration) {
  Corpus corpus = SimCorpus();
  ClusterConfig fast = MakeConfig(4);
  fast.bandwidth_gbytes_per_s = 1000.0;
  fast.latency_us = 0.0;
  ClusterConfig slow = MakeConfig(4);
  slow.bandwidth_gbytes_per_s = 0.01;
  EXPECT_LT(ClusterSim(corpus, fast).SimulateIteration().wall_seconds,
            ClusterSim(corpus, slow).SimulateIteration().wall_seconds);
}

TEST(ClusterSimTest, OverlapHidesCommunication) {
  Corpus corpus = SimCorpus();
  ClusterConfig no_overlap = MakeConfig(8);
  no_overlap.overlap_blocks = 1;
  no_overlap.bandwidth_gbytes_per_s = 0.05;
  ClusterConfig overlap = no_overlap;
  overlap.overlap_blocks = 8;
  EXPECT_LT(ClusterSim(corpus, overlap).SimulateIteration().wall_seconds,
            ClusterSim(corpus, no_overlap).SimulateIteration().wall_seconds);
}

TEST(ClusterSimTest, PhaseBreakdownConsistent) {
  Corpus corpus = SimCorpus();
  ClusterSim sim(corpus, MakeConfig(4));
  IterationTiming timing = sim.SimulateIteration();
  EXPECT_GT(timing.word_phase.compute_seconds, 0.0);
  EXPECT_GT(timing.doc_phase.compute_seconds, 0.0);
  EXPECT_NEAR(timing.wall_seconds,
              timing.word_phase.wall_seconds + timing.doc_phase.wall_seconds,
              1e-12);
  EXPECT_GE(timing.word_phase.wall_seconds,
            timing.word_phase.compute_seconds);
}

}  // namespace
}  // namespace warplda

#include "core/trainer.h"

#include <gtest/gtest.h>

#include "core/warp_lda.h"
#include "corpus/synthetic.h"

namespace warplda {
namespace {

Corpus SmallCorpus() {
  SyntheticConfig config;
  config.num_docs = 60;
  config.vocab_size = 120;
  config.num_topics = 5;
  config.mean_doc_length = 20;
  config.seed = 77;
  return GenerateLdaCorpus(config).corpus;
}

TEST(TrainerTest, HistoryRespectsEvalEvery) {
  Corpus corpus = SmallCorpus();
  WarpLdaSampler sampler;
  TrainOptions options;
  options.iterations = 10;
  options.eval_every = 3;
  TrainResult result =
      Train(sampler, corpus, LdaConfig::PaperDefaults(8), options);
  // Evaluations at 3, 6, 9, 10.
  ASSERT_EQ(result.history.size(), 4u);
  EXPECT_EQ(result.history[0].iteration, 3u);
  EXPECT_EQ(result.history[3].iteration, 10u);
}

TEST(TrainerTest, EvalZeroOnlyEvaluatesLast) {
  Corpus corpus = SmallCorpus();
  WarpLdaSampler sampler;
  TrainOptions options;
  options.iterations = 5;
  options.eval_every = 0;
  TrainResult result =
      Train(sampler, corpus, LdaConfig::PaperDefaults(8), options);
  ASSERT_EQ(result.history.size(), 1u);
  EXPECT_EQ(result.history[0].iteration, 5u);
}

TEST(TrainerTest, TimeAndLikelihoodProgress) {
  Corpus corpus = SmallCorpus();
  WarpLdaSampler sampler;
  TrainOptions options;
  options.iterations = 20;
  options.eval_every = 5;
  TrainResult result =
      Train(sampler, corpus, LdaConfig::PaperDefaults(8), options);
  for (size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GE(result.history[i].seconds, result.history[i - 1].seconds);
  }
  EXPECT_GT(result.history.back().log_likelihood,
            result.history.front().log_likelihood);
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.final_log_likelihood,
                   result.history.back().log_likelihood);
}

TEST(TrainerTest, CallbackInvokedPerEvaluation) {
  Corpus corpus = SmallCorpus();
  WarpLdaSampler sampler;
  TrainOptions options;
  options.iterations = 6;
  options.eval_every = 2;
  int calls = 0;
  Train(sampler, corpus, LdaConfig::PaperDefaults(8), options,
        [&](const IterationStat&) { ++calls; });
  EXPECT_EQ(calls, 3);
}

TEST(TrainerTest, AssignmentsMatchCorpusSize) {
  Corpus corpus = SmallCorpus();
  WarpLdaSampler sampler;
  TrainOptions options;
  options.iterations = 3;
  TrainResult result =
      Train(sampler, corpus, LdaConfig::PaperDefaults(8), options);
  EXPECT_EQ(result.assignments.size(), corpus.num_tokens());
}

TEST(TrainerTest, ToModelBuildsConsistentModel) {
  Corpus corpus = SmallCorpus();
  WarpLdaSampler sampler;
  TrainOptions options;
  options.iterations = 5;
  LdaConfig config = LdaConfig::PaperDefaults(8);
  TrainResult result = Train(sampler, corpus, config, options);
  TopicModel model = result.ToModel(corpus, config);
  EXPECT_EQ(model.num_topics(), config.num_topics);
  EXPECT_EQ(model.num_words(), corpus.num_words());
  int64_t total = 0;
  for (int64_t c : model.topic_counts()) total += c;
  EXPECT_EQ(total, static_cast<int64_t>(corpus.num_tokens()));
}

TEST(TrainerTest, ThroughputReported) {
  Corpus corpus = SmallCorpus();
  WarpLdaSampler sampler;
  TrainOptions options;
  options.iterations = 4;
  options.eval_every = 2;
  TrainResult result =
      Train(sampler, corpus, LdaConfig::PaperDefaults(8), options);
  for (const auto& stat : result.history) {
    EXPECT_GT(stat.tokens_per_second, 0.0);
  }
}

}  // namespace
}  // namespace warplda

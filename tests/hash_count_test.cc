#include "util/hash_count.h"

#include <map>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace warplda {
namespace {

TEST(HashCountTest, MissingKeyIsZero) {
  HashCount counts(8);
  EXPECT_EQ(counts.Get(5), 0);
  EXPECT_EQ(counts.Get(12345), 0);
}

TEST(HashCountTest, IncDecRoundTrip) {
  HashCount counts(8);
  EXPECT_EQ(counts.Inc(3), 1);
  EXPECT_EQ(counts.Inc(3), 2);
  EXPECT_EQ(counts.Dec(3), 1);
  EXPECT_EQ(counts.Dec(3), 0);
  EXPECT_EQ(counts.Get(3), 0);
}

TEST(HashCountTest, AddArbitraryDeltas) {
  HashCount counts(8);
  EXPECT_EQ(counts.Add(7, 10), 10);
  EXPECT_EQ(counts.Add(7, -4), 6);
  EXPECT_EQ(counts.Get(7), 6);
}

TEST(HashCountTest, CapacityIsPowerOfTwoAboveHint) {
  HashCount counts(10);
  EXPECT_EQ(counts.capacity(), 16u);
  HashCount counts2(16);
  EXPECT_EQ(counts2.capacity(), 32u);
  HashCount counts3(0);
  EXPECT_EQ(counts3.capacity(), 4u);
}

TEST(HashCountTest, GrowsBeyondInitialCapacity) {
  HashCount counts(4);
  for (uint32_t k = 0; k < 100; ++k) counts.Inc(k);
  for (uint32_t k = 0; k < 100; ++k) EXPECT_EQ(counts.Get(k), 1);
  EXPECT_EQ(counts.size(), 100u);
}

TEST(HashCountTest, ClearKeepsCapacity) {
  HashCount counts(32);
  for (uint32_t k = 0; k < 20; ++k) counts.Inc(k);
  uint32_t cap = counts.capacity();
  counts.Clear();
  EXPECT_EQ(counts.capacity(), cap);
  EXPECT_EQ(counts.size(), 0u);
  for (uint32_t k = 0; k < 20; ++k) EXPECT_EQ(counts.Get(k), 0);
}

TEST(HashCountTest, ForEachNonZeroSkipsZeroedEntries) {
  HashCount counts(16);
  counts.Inc(1);
  counts.Inc(2);
  counts.Inc(2);
  counts.Inc(3);
  counts.Dec(3);  // decremented to zero: key stays, value 0
  std::map<uint32_t, int32_t> seen;
  counts.ForEachNonZero([&](uint32_t k, int32_t v) { seen[k] = v; });
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1], 1);
  EXPECT_EQ(seen[2], 2);
}

TEST(HashCountTest, CollidingKeysProbeCorrectly) {
  // Keys differing by capacity multiples hash near each other often; force a
  // tiny table so probing is exercised heavily.
  HashCount counts(2);  // capacity 4
  counts.Add(0, 1);
  counts.Add(4, 2);
  counts.Add(8, 3);
  EXPECT_EQ(counts.Get(0), 1);
  EXPECT_EQ(counts.Get(4), 2);
  EXPECT_EQ(counts.Get(8), 3);
}

TEST(HashCountTest, MatchesReferenceMapUnderRandomOps) {
  HashCount counts(8);
  std::map<uint32_t, int32_t> reference;
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    uint32_t key = rng.NextInt(64);
    if (rng.NextBernoulli(0.6) || reference[key] == 0) {
      counts.Inc(key);
      ++reference[key];
    } else {
      counts.Dec(key);
      --reference[key];
    }
  }
  for (const auto& [key, value] : reference) {
    EXPECT_EQ(counts.Get(key), value) << "key " << key;
  }
}

TEST(HashCountTest, InitResetsContents) {
  HashCount counts(8);
  counts.Inc(1);
  counts.Init(64);
  EXPECT_EQ(counts.Get(1), 0);
  EXPECT_EQ(counts.capacity(), 128u);
}

TEST(HashCountTest, SlotAddrWithinSlotArray) {
  HashCount counts(16);
  counts.Inc(5);
  uintptr_t base = reinterpret_cast<uintptr_t>(counts.slots().data());
  uintptr_t end = base + counts.capacity() * sizeof(HashCount::Entry);
  uintptr_t addr = counts.SlotAddr(5);
  EXPECT_GE(addr, base);
  EXPECT_LT(addr, end);
}

}  // namespace
}  // namespace warplda

#include "eval/coherence.h"

#include <cmath>

#include <gtest/gtest.h>

namespace warplda {
namespace {

// Two disjoint themes: words {0,1} always co-occur, words {2,3} always
// co-occur, and the pairs never mix.
Corpus CooccurrenceCorpus() {
  CorpusBuilder builder;
  builder.set_num_words(4);
  for (int i = 0; i < 10; ++i) {
    builder.AddDocument(std::vector<WordId>{0, 1});
    builder.AddDocument(std::vector<WordId>{2, 3});
  }
  return builder.Build();
}

TopicModel ModelWithTopics(const Corpus& corpus, bool aligned) {
  std::vector<TopicId> z(corpus.num_tokens());
  for (TokenIdx t = 0; t < corpus.num_tokens(); ++t) {
    WordId w = corpus.token_word(t);
    if (aligned) {
      z[t] = w < 2 ? 0 : 1;  // topics match co-occurrence structure
    } else {
      z[t] = (w == 0 || w == 2) ? 0 : 1;  // topics mix the themes
    }
  }
  return TopicModel(corpus, z, 2, 0.1, 0.01);
}

TEST(CoherenceTest, AlignedTopicsAreMoreCoherent) {
  Corpus corpus = CooccurrenceCorpus();
  TopicModel aligned = ModelWithTopics(corpus, true);
  TopicModel mixed = ModelWithTopics(corpus, false);
  double c_aligned = UMassCoherence(aligned, corpus, 2).mean;
  double c_mixed = UMassCoherence(mixed, corpus, 2).mean;
  EXPECT_GT(c_aligned, c_mixed);
}

TEST(CoherenceTest, PerfectCooccurrenceScoresNearZero) {
  Corpus corpus = CooccurrenceCorpus();
  TopicModel aligned = ModelWithTopics(corpus, true);
  CoherenceResult result = UMassCoherence(aligned, corpus, 2);
  // D(w_i, w_j) == D(w_j) -> log((D+1)/D) slightly above 0 per pair.
  for (double c : result.per_topic) {
    EXPECT_GT(c, 0.0);
    EXPECT_LT(c, 0.2);
  }
}

TEST(CoherenceTest, DisjointWordsScoreVeryNegative) {
  Corpus corpus = CooccurrenceCorpus();
  TopicModel mixed = ModelWithTopics(corpus, false);
  CoherenceResult result = UMassCoherence(mixed, corpus, 2);
  for (double c : result.per_topic) {
    EXPECT_LT(c, std::log(1.0 / 10.0) + 0.01);  // co-occurrence is zero
  }
}

TEST(CoherenceTest, MeanIsAverageOfTopics) {
  Corpus corpus = CooccurrenceCorpus();
  TopicModel aligned = ModelWithTopics(corpus, true);
  CoherenceResult result = UMassCoherence(aligned, corpus, 2);
  double total = 0.0;
  for (double c : result.per_topic) total += c;
  EXPECT_NEAR(result.mean, total / result.per_topic.size(), 1e-12);
}

TEST(CoherenceTest, EmptyTopicGetsZero) {
  Corpus corpus = CooccurrenceCorpus();
  std::vector<TopicId> z(corpus.num_tokens(), 0);  // topic 1 unused
  TopicModel model(corpus, z, 2, 0.1, 0.01);
  CoherenceResult result = UMassCoherence(model, corpus, 5);
  EXPECT_DOUBLE_EQ(result.per_topic[1], 0.0);
}

TEST(CoherenceTest, TopNOneIsZero) {
  Corpus corpus = CooccurrenceCorpus();
  TopicModel aligned = ModelWithTopics(corpus, true);
  CoherenceResult result = UMassCoherence(aligned, corpus, 1);
  for (double c : result.per_topic) EXPECT_DOUBLE_EQ(c, 0.0);
}

}  // namespace
}  // namespace warplda

// Tests for warplint itself: each rule must fire on its positive fixture,
// stay quiet on its negative fixture, and honor the NOLINT suppression
// policy. The fixtures live in tests/lint_fixtures/{positive,negative}/src
// — snippet trees shaped like the repo, holding intentional violations —
// and are excluded from warplint's normal walk.
//
// WARPLINT_BIN and WARPLINT_FIXTURES are injected by CMake.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <vector>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

// Runs warplint with a raw argument string (shell-quoted by the caller);
// stderr is folded into the captured output.
LintRun RunLintCmd(const std::string& args) {
  std::string cmd = std::string("'") + WARPLINT_BIN + "' " + args + " 2>&1";
  LintRun run;
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  std::array<char, 4096> buf;
  size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    run.output.append(buf.data(), n);
  }
  int status = pclose(pipe);
  run.exit_code = WEXITSTATUS(status);
  return run;
}

LintRun RunLint(const std::string& root, bool json = false) {
  return RunLintCmd("--root '" + root + "'" + (json ? " --json" : ""));
}

std::string Positive() {
  return std::string(WARPLINT_FIXTURES) + "/positive";
}
std::string Negative() {
  return std::string(WARPLINT_FIXTURES) + "/negative";
}
// The schema-lock trees: base (the committed shape), drift (fields
// reordered, version untouched), bump (same reorder plus a version bump).
std::string SchemaTree(const char* which) {
  return std::string(WARPLINT_FIXTURES) + "/schema/" + which;
}

// Findings for `rule` as "file:line" strings, parsed from text output lines
// of the form `path:line warplint-<rule> message`.
std::vector<std::string> FindingsFor(const std::string& output,
                                     const std::string& rule) {
  std::vector<std::string> hits;
  size_t pos = 0;
  std::string needle = " warplint-" + rule + " ";
  while (pos < output.size()) {
    size_t eol = output.find('\n', pos);
    if (eol == std::string::npos) eol = output.size();
    std::string line = output.substr(pos, eol - pos);
    size_t at = line.find(needle);
    if (at != std::string::npos) hits.push_back(line.substr(0, at));
    pos = eol + 1;
  }
  return hits;
}

class PositiveFixtures : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { run_ = new LintRun(RunLint(Positive())); }
  static void TearDownTestSuite() {
    delete run_;
    run_ = nullptr;
  }
  static LintRun* run_;
};
LintRun* PositiveFixtures::run_ = nullptr;

TEST_F(PositiveFixtures, ExitsNonZero) { EXPECT_EQ(run_->exit_code, 1); }

TEST_F(PositiveFixtures, DeterminismFiresOnEveryBannedSource) {
  auto hits = FindingsFor(run_->output, "determinism");
  // srand + time(nullptr) share a line; rand, random_device, system_clock.
  EXPECT_EQ(hits.size(), 5u) << run_->output;
  for (const auto& h : hits) {
    EXPECT_EQ(h.substr(0, h.find(':')), "src/util/determinism.cc");
  }
}

TEST_F(PositiveFixtures, UnorderedIterFiresOnRangeForAndIterators) {
  auto hits = FindingsFor(run_->output, "unordered-iter");
  ASSERT_EQ(hits.size(), 2u) << run_->output;
  EXPECT_EQ(hits[0], "src/serve/publish.cc:9");
  EXPECT_EQ(hits[1], "src/serve/publish.cc:12");
}

TEST_F(PositiveFixtures, HotpathSyncFiresInsideHotBodiesOnly) {
  auto hits = FindingsFor(run_->output, "hotpath-sync");
  ASSERT_EQ(hits.size(), 5u) << run_->output;
  EXPECT_EQ(hits[0], "src/core/simd_kernels.cc:7");  // fetch_add in a free
                                                     // kernel function
  EXPECT_EQ(hits[1], "src/core/warp_lda.cc:8");    // fetch_add in RunBlock
  EXPECT_EQ(hits[2], "src/core/warp_lda.cc:13");   // lock_guard in DocPhase
  EXPECT_EQ(hits[3], "src/core/warp_lda.cc:17");   // lock_guard in
                                                   // RunFusedWordPart
  EXPECT_EQ(hits[4], "src/core/warp_lda.cc:21");   // fetch_add in
                                                   // AcceptSegment
}

TEST_F(PositiveFixtures, ScalarRefFiresOnIntrinsicsInScalarKernels) {
  auto hits = FindingsFor(run_->output, "scalar-ref");
  ASSERT_EQ(hits.size(), 2u) << run_->output;
  EXPECT_EQ(hits[0], "src/core/simd_kernels.cc:11");  // __m256d load
  EXPECT_EQ(hits[1], "src/core/simd_kernels.cc:12");  // _mm256 store
}

TEST_F(PositiveFixtures, LayeringFiresOnUpwardIncludesAndCycles) {
  auto hits = FindingsFor(run_->output, "layering");
  ASSERT_EQ(hits.size(), 4u) << run_->output;
  EXPECT_NE(run_->output.find("layer 'util' must not include 'core/"),
            std::string::npos);
  EXPECT_NE(run_->output.find("layer 'core' must not include 'serve/"),
            std::string::npos);
  // dist/ sits below the serving tier: it may reuse util/checkpoint_io and
  // the obs/ seams, but a dist -> serve edge is always a violation.
  EXPECT_NE(run_->output.find("layer 'dist' must not include 'serve/"),
            std::string::npos);
  EXPECT_NE(run_->output.find(
                "include cycle: core/cycle_a.h -> core/cycle_b.h -> "
                "core/cycle_a.h"),
            std::string::npos);
}

TEST_F(PositiveFixtures, NakedNewFiresOnNewAndDelete) {
  auto hits = FindingsFor(run_->output, "naked-new");
  // leak.cc: new + delete; badnolint.cc: two unsuppressed news (one with a
  // justification-less NOLINT, one naming an unknown rule).
  EXPECT_EQ(hits.size(), 4u) << run_->output;
}

TEST_F(PositiveFixtures, MemcpyNontrivialFiresOnThisAndContainers) {
  auto hits = FindingsFor(run_->output, "memcpy-nontrivial");
  ASSERT_EQ(hits.size(), 2u) << run_->output;
  EXPECT_EQ(hits[0], "src/core/copy.cc:8");   // memcpy over *this
  EXPECT_EQ(hits[1], "src/core/copy.cc:14");  // memcpy into a std::vector
}

TEST_F(PositiveFixtures, AlignasPadFiresOnArraysAndUnpaddedNeighbors) {
  auto hits = FindingsFor(run_->output, "alignas-pad");
  ASSERT_EQ(hits.size(), 2u) << run_->output;
  EXPECT_EQ(hits[0], "src/core/shards.h:6");   // alignas(64) on an array
  EXPECT_EQ(hits[1], "src/core/shards.h:11");  // neighbor shares the line
}

TEST_F(PositiveFixtures, NolintPolicyIsItselfLinted) {
  auto hits = FindingsFor(run_->output, "nolint");
  ASSERT_EQ(hits.size(), 2u) << run_->output;
  EXPECT_NE(run_->output.find("without a justification"), std::string::npos);
  EXPECT_NE(run_->output.find("unknown rule 'warplint-bogus'"),
            std::string::npos);
}

TEST_F(PositiveFixtures, JustifiedSuppressionsAreCountedNotReported) {
  // The two justified `delete` NOLINTs in badnolint.cc suppress cleanly.
  // The stale NOLINT in stalenolint.cc suppresses nothing and is NOT
  // counted — it is reported by warplint-stale-nolint instead.
  EXPECT_NE(run_->output.find("2 suppressed"), std::string::npos)
      << run_->output;
}

TEST_F(PositiveFixtures, ContractFiresOnAllFourViolationShapes) {
  auto hits = FindingsFor(run_->output, "contract");
  ASSERT_EQ(hits.size(), 4u) << run_->output;
  EXPECT_EQ(hits[0], "src/core/contracts_demo.cc:11");  // BARRIER_ONLY write
                                                        // in RunBlock
  EXPECT_EQ(hits[1], "src/core/contracts_demo.cc:12");  // IMMUTABLE_AFTER
                                                        // write outside Init
  EXPECT_EQ(hits[2], "src/core/contracts_demo.cc:13");  // WORKER_LOCAL not
                                                        // worker-indexed
  EXPECT_EQ(hits[3], "src/core/contracts_demo.h:21");   // unannotated holder
                                                        // of DemoScratch
  EXPECT_NE(run_->output.find("may only be mutated at stage barriers"),
            std::string::npos);
  EXPECT_NE(run_->output.find("only {Init} (and constructors)"),
            std::string::npos);
  EXPECT_NE(run_->output.find("not indexed by the worker argument"),
            std::string::npos);
  EXPECT_NE(run_->output.find("holds worker-local type 'DemoScratch'"),
            std::string::npos);
}

TEST_F(PositiveFixtures, RngStreamFiresOnSeededConstructionAndReseed) {
  auto hits = FindingsFor(run_->output, "rng-stream");
  ASSERT_EQ(hits.size(), 2u) << run_->output;
  EXPECT_EQ(hits[0], "src/core/rngdemo.cc:7");  // Rng rng(seed_ + worker)
  EXPECT_EQ(hits[1], "src/core/rngdemo.cc:8");  // rng.Seed(n) mid-body
  EXPECT_NE(run_->output.find("without a per-token stream derivation"),
            std::string::npos);
  EXPECT_NE(run_->output.find("re-seeding an Rng inside concurrent body"),
            std::string::npos);
}

TEST_F(PositiveFixtures, ObsOrphanFiresInBothDirections) {
  auto hits = FindingsFor(run_->output, "obs-orphan");
  ASSERT_EQ(hits.size(), 2u) << run_->output;
  EXPECT_EQ(hits[0], "src/serve/obsleak.cc:10");  // fetched, never driven
  EXPECT_EQ(hits[1], "src/serve/obsleak.cc:21");  // driven, never bound
  EXPECT_NE(run_->output.find("never Inc/Add/Set/Observe'd"),
            std::string::npos);
  EXPECT_NE(run_->output.find("mutated but never bound to the registry"),
            std::string::npos);
}

TEST_F(PositiveFixtures, StaleNolintFiresOnFixedLine) {
  auto hits = FindingsFor(run_->output, "stale-nolint");
  ASSERT_EQ(hits.size(), 1u) << run_->output;
  EXPECT_EQ(hits[0], "src/util/stalenolint.cc:6");
  EXPECT_NE(run_->output.find("suppresses nothing"), std::string::npos);
}

TEST(NegativeFixtures, EveryRuleStaysQuiet) {
  // Includes the contract mirrors (worker-indexed scratch, barrier-side
  // writes, listed-writer mutation, annotated holders), stream-derived Rng
  // construction, and driven obs handles.
  LintRun run = RunLint(Negative());
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("0 violation(s)"), std::string::npos)
      << run.output;
  // leak_ok.cc's justified singleton NOLINT is recorded, not reported —
  // and because its rule actually fires there, stale-nolint stays quiet.
  EXPECT_NE(run.output.find("1 suppressed"), std::string::npos)
      << run.output;
}

TEST(JsonOutput, PositiveSummaryIsMachineReadable) {
  LintRun run = RunLint(Positive(), /*json=*/true);
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.output.find("\"violations\": ["), std::string::npos);
  EXPECT_NE(run.output.find("\"rule\": \"warplint-determinism\""),
            std::string::npos);
  EXPECT_NE(run.output.find("\"warplint-hotpath-sync\": 5"),
            std::string::npos);
  EXPECT_NE(run.output.find("\"warplint-scalar-ref\": 2"),
            std::string::npos);
  EXPECT_NE(run.output.find("\"warplint-contract\": 4"), std::string::npos);
  EXPECT_NE(run.output.find("\"warplint-rng-stream\": 2"),
            std::string::npos);
  EXPECT_NE(run.output.find("\"warplint-obs-orphan\": 2"),
            std::string::npos);
  EXPECT_NE(run.output.find("\"warplint-stale-nolint\": 1"),
            std::string::npos);
  EXPECT_NE(run.output.find("\"total\": 37"), std::string::npos)
      << run.output;
}

TEST(JsonOutput, NegativeSummaryReportsZeroViolations) {
  LintRun run = RunLint(Negative(), /*json=*/true);
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.output.find("\"violations\": []"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("\"total\": 0"), std::string::npos);
  EXPECT_NE(run.output.find("src/obs/leak_ok.cc"), std::string::npos)
      << "suppressed finding should appear in the suppressed list";
}

// The headline schema-lock invariant, end to end: a lock generated from the
// base tree round-trips cleanly; reordering wire-struct fields without a
// version bump fails the check AND blocks lock regeneration; bumping the
// version turns the failure into a regenerate prompt and unlocks the write.
TEST(SchemaLock, RoundTripDriftRefusalAndBump) {
  const std::string lock = ::testing::TempDir() + "warplint_state.lock";
  std::remove(lock.c_str());
  const std::string at = "' --schema-lock '" + lock + "'";

  LintRun wrote = RunLintCmd("--root '" + SchemaTree("base") + at +
                             " --write-schema-lock");
  EXPECT_EQ(wrote.exit_code, 0) << wrote.output;
  EXPECT_NE(wrote.output.find("1 pinned struct(s)"), std::string::npos)
      << wrote.output;

  LintRun clean = RunLintCmd("--root '" + SchemaTree("base") + at);
  EXPECT_EQ(clean.exit_code, 0) << clean.output;

  LintRun drift = RunLintCmd("--root '" + SchemaTree("drift") + at);
  EXPECT_EQ(drift.exit_code, 1) << drift.output;
  EXPECT_NE(drift.output.find("'SweepState' drifted"), std::string::npos);
  EXPECT_NE(drift.output.find("without a version bump"), std::string::npos)
      << drift.output;

  LintRun refused = RunLintCmd("--root '" + SchemaTree("drift") + at +
                               " --write-schema-lock");
  EXPECT_EQ(refused.exit_code, 2) << refused.output;
  EXPECT_NE(refused.output.find("refusing to rewrite schema lock"),
            std::string::npos)
      << refused.output;

  LintRun bumped = RunLintCmd("--root '" + SchemaTree("bump") + at);
  EXPECT_EQ(bumped.exit_code, 1) << bumped.output;
  EXPECT_NE(bumped.output.find("a version constant was bumped — regenerate"),
            std::string::npos)
      << bumped.output;

  LintRun rewrote = RunLintCmd("--root '" + SchemaTree("bump") + at +
                               " --write-schema-lock");
  EXPECT_EQ(rewrote.exit_code, 0) << rewrote.output;

  LintRun fresh = RunLintCmd("--root '" + SchemaTree("bump") + at);
  EXPECT_EQ(fresh.exit_code, 0) << fresh.output;
  std::remove(lock.c_str());
}

TEST(BaselineMode, KnownFindingsPassOnlyNewOnesFail) {
  const std::string baseline =
      ::testing::TempDir() + "warplint_baseline.json";
  LintRun capture = RunLintCmd("--root '" + Positive() + "' --json > '" +
                               baseline + "'");
  EXPECT_EQ(capture.exit_code, 1);

  // Every finding is in the baseline: the gate passes.
  LintRun rerun = RunLintCmd("--root '" + Positive() + "' --baseline '" +
                             baseline + "'");
  EXPECT_EQ(rerun.exit_code, 0) << rerun.output;
  EXPECT_NE(rerun.output.find("0 new violation(s), 37 baselined"),
            std::string::npos)
      << rerun.output;

  // The JSON report carries the baselined count for the CI artifact.
  LintRun json = RunLintCmd("--root '" + Positive() + "' --json --baseline '" +
                            baseline + "'");
  EXPECT_EQ(json.exit_code, 0) << json.output;
  EXPECT_NE(json.output.find("\"baselined\": 37"), std::string::npos)
      << json.output;
  EXPECT_NE(json.output.find("\"total\": 0"), std::string::npos)
      << json.output;

  // An empty (but valid) baseline covers nothing: every finding is new and
  // the gate fails again. An unreadable baseline path is a usage error (2).
  LintRun none = RunLintCmd("--root '" + Negative() + "' --json > '" +
                            baseline + "'");
  EXPECT_EQ(none.exit_code, 0);
  LintRun fresh = RunLintCmd("--root '" + Positive() + "' --baseline '" +
                             baseline + "'");
  EXPECT_EQ(fresh.exit_code, 1) << fresh.output;
  LintRun unreadable = RunLintCmd("--root '" + Positive() + "' --baseline '" +
                                  baseline + ".missing'");
  EXPECT_EQ(unreadable.exit_code, 2) << unreadable.output;
  std::remove(baseline.c_str());
}

}  // namespace

#include "dist/partitioner.h"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/zipf.h"

namespace warplda {
namespace {

std::vector<uint64_t> ZipfWeights(uint32_t n, double skew) {
  ZipfSampler zipf(n, skew);
  std::vector<uint64_t> weights(n);
  for (uint32_t i = 0; i < n; ++i) {
    weights[i] = static_cast<uint64_t>(zipf.Pmf(i) * 1e7) + 1;
  }
  return weights;
}

class PartitionerTest
    : public ::testing::TestWithParam<PartitionStrategy> {};

TEST_P(PartitionerTest, EveryItemAssignedToValidPartition) {
  auto weights = ZipfWeights(1000, 1.0);
  auto assignment = PartitionByTokens(weights, 8, GetParam());
  ASSERT_EQ(assignment.size(), weights.size());
  for (uint32_t part : assignment) EXPECT_LT(part, 8u);
}

TEST_P(PartitionerTest, AllPartitionsNonEmptyForManyItems) {
  auto weights = ZipfWeights(1000, 1.0);
  auto assignment = PartitionByTokens(weights, 8, GetParam());
  std::vector<int> counts(8, 0);
  for (uint32_t part : assignment) ++counts[part];
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST_P(PartitionerTest, SinglePartitionIsTrivial) {
  auto weights = ZipfWeights(100, 1.0);
  auto assignment = PartitionByTokens(weights, 1, GetParam());
  for (uint32_t part : assignment) EXPECT_EQ(part, 0u);
  EXPECT_DOUBLE_EQ(ImbalanceIndex(weights, assignment, 1), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, PartitionerTest,
                         ::testing::Values(PartitionStrategy::kStatic,
                                           PartitionStrategy::kDynamic,
                                           PartitionStrategy::kGreedy),
                         [](const auto& pinfo) {
                           return ToString(pinfo.param);
                         });

TEST(PartitionerTest, GreedyBeatsStaticAndDynamicOnZipf) {
  // The claim behind Fig 4.
  auto weights = ZipfWeights(20000, 1.05);
  for (uint32_t p : {4u, 16u, 64u}) {
    double greedy = ImbalanceIndex(
        weights, PartitionByTokens(weights, p, PartitionStrategy::kGreedy),
        p);
    double stat = ImbalanceIndex(
        weights, PartitionByTokens(weights, p, PartitionStrategy::kStatic),
        p);
    double dyn = ImbalanceIndex(
        weights, PartitionByTokens(weights, p, PartitionStrategy::kDynamic),
        p);
    EXPECT_LT(greedy, stat) << "P=" << p;
    EXPECT_LE(greedy, dyn) << "P=" << p;
  }
}

TEST(PartitionerTest, GreedyNearPerfectOnUniformWeights) {
  std::vector<uint64_t> weights(1024, 5);
  auto assignment =
      PartitionByTokens(weights, 8, PartitionStrategy::kGreedy);
  EXPECT_NEAR(ImbalanceIndex(weights, assignment, 8), 0.0, 1e-9);
}

TEST(PartitionerTest, ImbalanceGrowsWhenOneItemDominates) {
  // A single huge word cannot be split: with P=8, max/mean >= 8*share - 1.
  std::vector<uint64_t> weights(100, 1);
  weights[0] = 1000;
  auto assignment =
      PartitionByTokens(weights, 8, PartitionStrategy::kGreedy);
  double imbalance = ImbalanceIndex(weights, assignment, 8);
  double share = 1000.0 / (1000 + 99);
  EXPECT_GT(imbalance, 8 * share - 1 - 1e-9);
}

TEST(PartitionerTest, ImbalanceIndexMatchesHandComputation) {
  std::vector<uint64_t> weights = {4, 4, 4, 12};
  std::vector<uint32_t> assignment = {0, 0, 1, 1};
  // loads: 8 and 16; mean 12; max/mean - 1 = 1/3.
  EXPECT_NEAR(ImbalanceIndex(weights, assignment, 2), 1.0 / 3, 1e-12);
}

TEST(PartitionerTest, StaticDeterministicForSeed) {
  auto weights = ZipfWeights(500, 1.0);
  auto a = PartitionByTokens(weights, 4, PartitionStrategy::kStatic, 9);
  auto b = PartitionByTokens(weights, 4, PartitionStrategy::kStatic, 9);
  EXPECT_EQ(a, b);
  auto c = PartitionByTokens(weights, 4, PartitionStrategy::kStatic, 10);
  EXPECT_NE(a, c);
}

TEST(PartitionerTest, DynamicPreservesContiguity) {
  auto weights = ZipfWeights(300, 1.0);
  auto assignment =
      PartitionByTokens(weights, 5, PartitionStrategy::kDynamic);
  for (size_t i = 1; i < assignment.size(); ++i) {
    EXPECT_GE(assignment[i], assignment[i - 1]);
  }
}

// ---------------------------------------------------------------------------
// ReassignToSurvivors — the executor's kill-and-repartition primitive.

TEST(ReassignTest, SurvivorItemsKeepTheirOwner) {
  auto weights = ZipfWeights(60, 1.0);
  auto assignment = PartitionByTokens(weights, 4, PartitionStrategy::kGreedy);
  auto reassigned = ReassignToSurvivors(weights, assignment, {0, 1, 3});
  ASSERT_EQ(reassigned.size(), assignment.size());
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] != 2) {
      EXPECT_EQ(reassigned[i], assignment[i])
          << "survivor-owned item " << i << " must not move";
    } else {
      EXPECT_NE(reassigned[i], 2u) << "orphan " << i << " left on the dead";
    }
  }
}

TEST(ReassignTest, OrphansSpreadForBalanceNotDogpiled) {
  auto weights = ZipfWeights(400, 1.0);
  auto assignment = PartitionByTokens(weights, 4, PartitionStrategy::kGreedy);
  auto reassigned = ReassignToSurvivors(weights, assignment, {0, 1, 2});
  // The greedy-LPT heap is seeded with the survivors' existing loads, so
  // the post-death imbalance over 3 partitions stays near the from-scratch
  // greedy quality, not one-survivor-takes-all.
  const double from_scratch = ImbalanceIndex(
      weights, PartitionByTokens(weights, 3, PartitionStrategy::kGreedy), 3);
  // Treat the reassignment as a 3-way partition by compacting ids.
  std::vector<uint32_t> compact(reassigned.size());
  for (size_t i = 0; i < reassigned.size(); ++i) compact[i] = reassigned[i];
  const double after = ImbalanceIndex(weights, compact, 3);
  EXPECT_LT(after, from_scratch + 0.15);
}

TEST(ReassignTest, CascadingDeathsDrainToOneSurvivor) {
  auto weights = ZipfWeights(40, 1.0);
  auto owner = PartitionByTokens(weights, 4, PartitionStrategy::kGreedy);
  owner = ReassignToSurvivors(weights, owner, {1, 2, 3});
  owner = ReassignToSurvivors(weights, owner, {1, 3});
  owner = ReassignToSurvivors(weights, owner, {3});
  for (uint32_t part : owner) EXPECT_EQ(part, 3u);
}

TEST(ReassignTest, DeterministicForIdenticalInputs) {
  auto weights = ZipfWeights(200, 1.1);
  auto assignment = PartitionByTokens(weights, 8, PartitionStrategy::kGreedy);
  const std::vector<uint32_t> survivors = {0, 2, 4, 6, 7};
  EXPECT_EQ(ReassignToSurvivors(weights, assignment, survivors),
            ReassignToSurvivors(weights, assignment, survivors));
}

}  // namespace
}  // namespace warplda

// Randomized property tests of the SparseMatrix visit framework: for
// arbitrary shapes and thread counts, row and column views must expose the
// same entries, visits must cover every entry exactly once, and the
// entry-balanced parallel scheduler must neither skip nor duplicate work.
#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/sparse_matrix.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace warplda {
namespace {

struct MatrixShape {
  uint32_t rows;
  uint32_t cols;
  uint32_t entries;
  double col_skew;  // columns drawn from Zipf(col_skew): skewed loads
  uint32_t threads;
  uint64_t seed;
};

// Builds a random matrix; entry value = insertion index for traceability.
SparseMatrix<int64_t> RandomMatrix(const MatrixShape& shape,
                                   std::vector<std::pair<uint32_t, uint32_t>>*
                                       positions) {
  Rng rng(shape.seed);
  ZipfSampler col_dist(shape.cols, shape.col_skew);
  // Generate (row, col) pairs, then sort by row to satisfy the row-major
  // insertion requirement.
  positions->clear();
  for (uint32_t i = 0; i < shape.entries; ++i) {
    positions->emplace_back(rng.NextInt(shape.rows), col_dist.Sample(rng));
  }
  std::stable_sort(positions->begin(), positions->end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  SparseMatrix<int64_t> m;
  m.Reset(shape.rows, shape.cols);
  for (uint32_t i = 0; i < shape.entries; ++i) {
    m.AddEntry((*positions)[i].first, (*positions)[i].second, i);
  }
  m.Finalize();
  return m;
}

class SparseMatrixPropertyTest
    : public ::testing::TestWithParam<MatrixShape> {};

TEST_P(SparseMatrixPropertyTest, ColumnVisitCoversEachEntryOnce) {
  std::vector<std::pair<uint32_t, uint32_t>> positions;
  auto m = RandomMatrix(GetParam(), &positions);
  std::vector<std::atomic<int>> seen(GetParam().entries);
  m.VisitByColumn(
      [&](int, uint32_t, std::span<int64_t> data) {
        for (int64_t v : data) seen[static_cast<size_t>(v)]++;
      },
      GetParam().threads);
  for (const auto& count : seen) EXPECT_EQ(count.load(), 1);
}

TEST_P(SparseMatrixPropertyTest, RowVisitCoversEachEntryOnce) {
  std::vector<std::pair<uint32_t, uint32_t>> positions;
  auto m = RandomMatrix(GetParam(), &positions);
  std::vector<std::atomic<int>> seen(GetParam().entries);
  m.VisitByRow(
      [&](int, uint32_t, SparseMatrix<int64_t>::RowView row) {
        for (uint32_t i = 0; i < row.size(); ++i) {
          seen[static_cast<size_t>(row[i])]++;
        }
      },
      GetParam().threads);
  for (const auto& count : seen) EXPECT_EQ(count.load(), 1);
}

TEST_P(SparseMatrixPropertyTest, RowViewMatchesInsertedPositions) {
  std::vector<std::pair<uint32_t, uint32_t>> positions;
  auto m = RandomMatrix(GetParam(), &positions);
  m.VisitByRow([&](int, uint32_t r, SparseMatrix<int64_t>::RowView row) {
    for (uint32_t i = 0; i < row.size(); ++i) {
      int64_t insertion = row[i];
      EXPECT_EQ(positions[static_cast<size_t>(insertion)].first, r);
    }
  });
}

TEST_P(SparseMatrixPropertyTest, ColumnsSortedByRow) {
  std::vector<std::pair<uint32_t, uint32_t>> positions;
  auto m = RandomMatrix(GetParam(), &positions);
  m.VisitByColumn([&](int, uint32_t c, std::span<int64_t> data) {
    uint32_t prev_row = 0;
    for (size_t i = 0; i < data.size(); ++i) {
      const auto& pos = positions[static_cast<size_t>(data[i])];
      EXPECT_EQ(pos.second, c);
      if (i > 0) {
        EXPECT_GE(pos.first, prev_row);
      }
      prev_row = pos.first;
    }
  });
}

TEST_P(SparseMatrixPropertyTest, CscPositionRoundTrips) {
  std::vector<std::pair<uint32_t, uint32_t>> positions;
  auto m = RandomMatrix(GetParam(), &positions);
  for (uint32_t i = 0; i < GetParam().entries; ++i) {
    EXPECT_EQ(m.entry_data(m.csc_position(i)), static_cast<int64_t>(i));
  }
}

TEST_P(SparseMatrixPropertyTest, MutationsVisibleAcrossOrientations) {
  std::vector<std::pair<uint32_t, uint32_t>> positions;
  auto m = RandomMatrix(GetParam(), &positions);
  m.VisitByColumn(
      [&](int, uint32_t, std::span<int64_t> data) {
        for (auto& v : data) v = -v - 1;
      },
      GetParam().threads);
  int64_t expected = 0;
  for (uint32_t i = 0; i < GetParam().entries; ++i) {
    expected += -static_cast<int64_t>(i) - 1;
  }
  std::atomic<int64_t> total{0};
  m.VisitByRow(
      [&](int, uint32_t, SparseMatrix<int64_t>::RowView row) {
        int64_t local = 0;
        for (uint32_t i = 0; i < row.size(); ++i) local += row[i];
        total += local;
      },
      GetParam().threads);
  EXPECT_EQ(total.load(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SparseMatrixPropertyTest,
    ::testing::Values(MatrixShape{1, 1, 1, 0.0, 1, 1},
                      MatrixShape{10, 10, 50, 0.5, 1, 2},
                      MatrixShape{100, 30, 1000, 1.5, 4, 3},
                      MatrixShape{50, 500, 2000, 2.0, 3, 4},
                      MatrixShape{300, 300, 5000, 1.0, 8, 5},
                      MatrixShape{7, 1000, 400, 2.5, 2, 6}),
    [](const auto& pinfo) {
      const auto& s = pinfo.param;
      return "r" + std::to_string(s.rows) + "c" + std::to_string(s.cols) +
             "e" + std::to_string(s.entries) + "t" +
             std::to_string(s.threads);
    });

}  // namespace
}  // namespace warplda

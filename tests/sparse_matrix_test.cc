#include "core/sparse_matrix.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace warplda {
namespace {

// A 3x4 matrix with 6 entries inserted row-major, values encode position.
SparseMatrix<int> MakeMatrix() {
  SparseMatrix<int> m;
  m.Reset(3, 4);
  m.AddEntry(0, 1, 10);
  m.AddEntry(0, 3, 11);
  m.AddEntry(1, 0, 12);
  m.AddEntry(1, 1, 13);
  m.AddEntry(2, 1, 14);
  m.AddEntry(2, 2, 15);
  m.Finalize();
  return m;
}

TEST(SparseMatrixTest, Dimensions) {
  auto m = MakeMatrix();
  EXPECT_EQ(m.num_rows(), 3u);
  EXPECT_EQ(m.num_cols(), 4u);
  EXPECT_EQ(m.num_entries(), 6u);
}

TEST(SparseMatrixTest, ColumnsContiguousAndSortedByRow) {
  auto m = MakeMatrix();
  auto col1 = m.col_data(1);
  ASSERT_EQ(col1.size(), 3u);
  EXPECT_EQ(col1[0], 10);  // row 0
  EXPECT_EQ(col1[1], 13);  // row 1
  EXPECT_EQ(col1[2], 14);  // row 2
  EXPECT_TRUE(m.col_data(0).size() == 1 && m.col_data(0)[0] == 12);
  EXPECT_TRUE(m.col_data(2).size() == 1 && m.col_data(2)[0] == 15);
  EXPECT_TRUE(m.col_data(3).size() == 1 && m.col_data(3)[0] == 11);
}

TEST(SparseMatrixTest, RowViewSeesAllRowEntries) {
  auto m = MakeMatrix();
  auto row0 = m.row(0);
  ASSERT_EQ(row0.size(), 2u);
  EXPECT_EQ(row0[0], 10);
  EXPECT_EQ(row0[1], 11);
  auto row2 = m.row(2);
  ASSERT_EQ(row2.size(), 2u);
  EXPECT_EQ(row2[0], 14);
  EXPECT_EQ(row2[1], 15);
}

TEST(SparseMatrixTest, RowWritesVisibleInColumns) {
  auto m = MakeMatrix();
  auto row1 = m.row(1);
  row1[0] = 99;  // (1,0)
  EXPECT_EQ(m.col_data(0)[0], 99);
}

TEST(SparseMatrixTest, ColumnWritesVisibleInRows) {
  auto m = MakeMatrix();
  m.col_data(1)[2] = 77;  // (2,1)
  EXPECT_EQ(m.row(2)[0], 77);
}

TEST(SparseMatrixTest, CscPositionMapsInsertionOrder) {
  auto m = MakeMatrix();
  // Insertion 0 was (0,1,10); via csc_position it must read 10.
  EXPECT_EQ(m.entry_data(m.csc_position(0)), 10);
  EXPECT_EQ(m.entry_data(m.csc_position(3)), 13);
  EXPECT_EQ(m.entry_data(m.csc_position(5)), 15);
}

TEST(SparseMatrixTest, EntryIndexAlignsRowAndColumnViews) {
  auto m = MakeMatrix();
  auto row2 = m.row(2);
  // row2's first entry is (2,1): its CSC position must be within column 1.
  uint64_t pos = row2.entry_index(0);
  EXPECT_GE(pos, m.col_offset(1));
  EXPECT_LT(pos, m.col_offset(2));
}

TEST(SparseMatrixTest, MultipleEntriesPerCell) {
  SparseMatrix<int> m;
  m.Reset(1, 1);
  m.AddEntry(0, 0, 1);
  m.AddEntry(0, 0, 2);
  m.Finalize();
  EXPECT_EQ(m.num_entries(), 2u);
  auto col = m.col_data(0);
  EXPECT_EQ(col[0] + col[1], 3);
}

TEST(SparseMatrixTest, VisitByColumnCoversEveryEntryOnce) {
  auto m = MakeMatrix();
  int sum = 0;
  m.VisitByColumn([&](int, uint32_t, std::span<int> data) {
    sum = std::accumulate(data.begin(), data.end(), sum);
  });
  EXPECT_EQ(sum, 10 + 11 + 12 + 13 + 14 + 15);
}

TEST(SparseMatrixTest, VisitByRowCoversEveryEntryOnce) {
  auto m = MakeMatrix();
  int sum = 0;
  m.VisitByRow([&](int, uint32_t, SparseMatrix<int>::RowView row) {
    for (uint32_t i = 0; i < row.size(); ++i) sum += row[i];
  });
  EXPECT_EQ(sum, 75);
}

TEST(SparseMatrixTest, AlternatingVisitsSeeEachOthersWrites) {
  auto m = MakeMatrix();
  m.VisitByColumn([&](int, uint32_t, std::span<int> data) {
    for (auto& v : data) v += 1;
  });
  m.VisitByRow([&](int, uint32_t, SparseMatrix<int>::RowView row) {
    for (uint32_t i = 0; i < row.size(); ++i) row[i] *= 2;
  });
  int sum = 0;
  m.VisitByColumn([&](int, uint32_t, std::span<int> data) {
    sum = std::accumulate(data.begin(), data.end(), sum);
  });
  EXPECT_EQ(sum, (75 + 6) * 2);
}

TEST(SparseMatrixTest, ParallelVisitMatchesSerial) {
  SparseMatrix<int> m;
  const uint32_t rows = 64;
  const uint32_t cols = 32;
  m.Reset(rows, cols);
  int expected = 0;
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = r % 3; c < cols; c += 3) {
      m.AddEntry(r, c, static_cast<int>(r + c));
      expected += static_cast<int>(r + c);
    }
  }
  m.Finalize();
  std::atomic<int> sum{0};
  m.VisitByColumn(
      [&](int, uint32_t, std::span<int> data) {
        int local = std::accumulate(data.begin(), data.end(), 0);
        sum += local;
      },
      4);
  EXPECT_EQ(sum.load(), expected);
  sum = 0;
  m.VisitByRow(
      [&](int, uint32_t, SparseMatrix<int>::RowView row) {
        int local = 0;
        for (uint32_t i = 0; i < row.size(); ++i) local += row[i];
        sum += local;
      },
      4);
  EXPECT_EQ(sum.load(), expected);
}

TEST(SparseMatrixTest, EmptyRowsAndColumns) {
  SparseMatrix<int> m;
  m.Reset(3, 3);
  m.AddEntry(1, 1, 5);
  m.Finalize();
  EXPECT_EQ(m.row(0).size(), 0u);
  EXPECT_EQ(m.row(2).size(), 0u);
  EXPECT_TRUE(m.col_data(0).empty());
  EXPECT_TRUE(m.col_data(2).empty());
}

TEST(SparseMatrixTest, ResetClearsPreviousBuild) {
  auto m = MakeMatrix();
  m.Reset(2, 2);
  m.AddEntry(0, 0, 1);
  m.Finalize();
  EXPECT_EQ(m.num_entries(), 1u);
  EXPECT_EQ(m.num_rows(), 2u);
}

}  // namespace
}  // namespace warplda

#include "eval/log_likelihood.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/synthetic.h"
#include "util/rng.h"

namespace warplda {
namespace {

Corpus TinyCorpus() {
  CorpusBuilder builder;
  builder.AddDocument(std::vector<WordId>{0, 1});
  builder.AddDocument(std::vector<WordId>{1});
  return builder.Build();
}

// Brute-force reference: evaluates the paper's formula with dense counts.
double ReferenceLl(const Corpus& corpus, const std::vector<TopicId>& z,
                   uint32_t k_topics, double alpha, double beta) {
  const uint32_t v = corpus.num_words();
  std::vector<std::vector<int>> cd(corpus.num_docs(),
                                   std::vector<int>(k_topics, 0));
  std::vector<std::vector<int>> cw(v, std::vector<int>(k_topics, 0));
  std::vector<int> ck(k_topics, 0);
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    auto words = corpus.doc_tokens(d);
    TokenIdx base = corpus.doc_offset(d);
    for (size_t n = 0; n < words.size(); ++n) {
      TopicId k = z[base + n];
      ++cd[d][k];
      ++cw[words[n]][k];
      ++ck[k];
    }
  }
  double alpha_bar = alpha * k_topics;
  double beta_bar = beta * v;
  double ll = 0.0;
  for (DocId d = 0; d < corpus.num_docs(); ++d) {
    if (corpus.doc_length(d) == 0) continue;
    ll += std::lgamma(alpha_bar) -
          std::lgamma(alpha_bar + corpus.doc_length(d));
    for (uint32_t k = 0; k < k_topics; ++k) {
      ll += std::lgamma(alpha + cd[d][k]) - std::lgamma(alpha);
    }
  }
  for (uint32_t k = 0; k < k_topics; ++k) {
    ll += std::lgamma(beta_bar) - std::lgamma(beta_bar + ck[k]);
    for (uint32_t w = 0; w < v; ++w) {
      ll += std::lgamma(beta + cw[w][k]) - std::lgamma(beta);
    }
  }
  return ll;
}

TEST(LogLikelihoodTest, MatchesBruteForceTiny) {
  Corpus c = TinyCorpus();
  std::vector<TopicId> z = {0, 1, 1};
  double fast = JointLogLikelihood(c, z, 2, 0.5, 0.1);
  double ref = ReferenceLl(c, z, 2, 0.5, 0.1);
  EXPECT_NEAR(fast, ref, 1e-9);
}

TEST(LogLikelihoodTest, MatchesBruteForceRandomized) {
  SyntheticConfig config;
  config.num_docs = 40;
  config.vocab_size = 60;
  config.num_topics = 5;
  config.mean_doc_length = 12;
  Corpus c = GenerateLdaCorpus(config).corpus;
  Rng rng(5);
  const uint32_t k_topics = 8;
  std::vector<TopicId> z(c.num_tokens());
  for (auto& zi : z) zi = rng.NextInt(k_topics);
  double fast = JointLogLikelihood(c, z, k_topics, 0.3, 0.05);
  double ref = ReferenceLl(c, z, k_topics, 0.3, 0.05);
  EXPECT_NEAR(fast, ref, std::abs(ref) * 1e-10);
}

TEST(LogLikelihoodTest, ConcentratedBeatsScattered) {
  // A perfectly topic-sorted assignment should score higher than random.
  CorpusBuilder builder;
  for (int d = 0; d < 20; ++d) {
    std::vector<WordId> doc;
    for (int n = 0; n < 30; ++n) doc.push_back(d % 2 == 0 ? n % 5 : 5 + n % 5);
    builder.AddDocument(doc);
  }
  Corpus c = builder.Build();
  std::vector<TopicId> sorted(c.num_tokens());
  for (TokenIdx t = 0; t < c.num_tokens(); ++t) {
    sorted[t] = c.token_word(t) < 5 ? 0 : 1;
  }
  Rng rng(6);
  std::vector<TopicId> random(c.num_tokens());
  for (auto& zi : random) zi = rng.NextInt(2);
  EXPECT_GT(JointLogLikelihood(c, sorted, 2, 0.5, 0.01),
            JointLogLikelihood(c, random, 2, 0.5, 0.01));
}

TEST(LogLikelihoodTest, EmptyDocumentsIgnored) {
  CorpusBuilder builder;
  builder.AddDocument(std::vector<WordId>{0});
  builder.AddDocument(std::vector<WordId>{});
  Corpus c = builder.Build();
  std::vector<TopicId> z = {0};
  double ll = JointLogLikelihood(c, z, 2, 0.5, 0.1);
  EXPECT_TRUE(std::isfinite(ll));
}

TEST(SparsityStatsTest, SingleTopicAssignment) {
  Corpus c = TinyCorpus();
  std::vector<TopicId> z = {0, 0, 0};
  SparsityStats stats = ComputeSparsity(c, z);
  EXPECT_DOUBLE_EQ(stats.mean_topics_per_doc, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_topics_per_word, 1.0);
  EXPECT_EQ(stats.max_topics_per_doc, 1u);
  EXPECT_EQ(stats.max_topics_per_word, 1u);
}

TEST(SparsityStatsTest, DistinctTopicsCounted) {
  Corpus c = TinyCorpus();  // doc0 has 2 tokens, doc1 has 1
  std::vector<TopicId> z = {0, 1, 2};
  SparsityStats stats = ComputeSparsity(c, z);
  EXPECT_DOUBLE_EQ(stats.mean_topics_per_doc, 1.5);  // (2 + 1) / 2
  EXPECT_EQ(stats.max_topics_per_doc, 2u);
  // word0: {0}; word1: {1,2} -> mean (1+2)/2
  EXPECT_DOUBLE_EQ(stats.mean_topics_per_word, 1.5);
  EXPECT_EQ(stats.max_topics_per_word, 2u);
}

}  // namespace
}  // namespace warplda

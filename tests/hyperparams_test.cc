#include "eval/hyperparams.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "core/warp_lda.h"
#include "corpus/synthetic.h"
#include "eval/log_likelihood.h"
#include "util/rng.h"
#include "util/special.h"

namespace warplda {
namespace {

TEST(DigammaTest, MatchesKnownValues) {
  // ψ(1) = -γ (Euler-Mascheroni), ψ(2) = 1 - γ, ψ(0.5) = -γ - 2ln2.
  const double gamma = 0.5772156649015329;
  EXPECT_NEAR(Digamma(1.0), -gamma, 1e-10);
  EXPECT_NEAR(Digamma(2.0), 1.0 - gamma, 1e-10);
  EXPECT_NEAR(Digamma(0.5), -gamma - 2.0 * std::log(2.0), 1e-10);
  EXPECT_NEAR(Digamma(10.0), 2.2517525890667214, 1e-10);
}

TEST(DigammaTest, SatisfiesRecurrence) {
  for (double x : {0.1, 0.7, 1.3, 5.5, 42.0}) {
    EXPECT_NEAR(Digamma(x + 1.0), Digamma(x) + 1.0 / x, 1e-10) << x;
  }
}

TEST(DigammaTest, MonotoneIncreasing) {
  double prev = Digamma(0.05);
  for (double x = 0.1; x < 50.0; x += 0.37) {
    double value = Digamma(x);
    EXPECT_GT(value, prev);
    prev = value;
  }
}

TEST(DigammaTest, NonPositiveIsNan) {
  EXPECT_TRUE(std::isnan(Digamma(0.0)));
  EXPECT_TRUE(std::isnan(Digamma(-1.0)));
}

// Generate a corpus with a known generative α and check the fixed point
// moves the estimate toward it from both directions.
class AlphaRecoveryTest : public ::testing::TestWithParam<double> {};

TEST_P(AlphaRecoveryTest, EstimateMovesTowardGenerativeAlpha) {
  const double true_alpha = GetParam();
  SyntheticConfig config;
  config.num_docs = 400;
  config.vocab_size = 300;
  config.num_topics = 8;
  config.mean_doc_length = 60;
  config.alpha = true_alpha;
  config.seed = 17;
  SyntheticCorpus data = GenerateLdaCorpus(config);

  // Use the generator's true topics so the estimate reflects α alone.
  for (double start : {true_alpha * 8, true_alpha / 8}) {
    double estimate = start;
    for (int i = 0; i < 50; ++i) {
      estimate = EstimateSymmetricAlpha(data.corpus, data.true_topics,
                                        config.num_topics, estimate, 1);
    }
    EXPECT_NEAR(std::log(estimate), std::log(true_alpha), std::log(2.2))
        << "start " << start;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaRecoveryTest,
                         ::testing::Values(0.05, 0.2, 1.0),
                         [](const auto& pinfo) {
                           return "a" + std::to_string(static_cast<int>(
                                            pinfo.param * 100));
                         });

TEST(HyperparamsTest, EstimatesStayPositiveAndFinite) {
  SyntheticConfig config;
  config.num_docs = 100;
  config.seed = 21;
  SyntheticCorpus data = GenerateLdaCorpus(config);
  Rng rng(3);
  std::vector<TopicId> z(data.corpus.num_tokens());
  for (auto& zi : z) zi = rng.NextInt(16);
  double alpha = EstimateSymmetricAlpha(data.corpus, z, 16, 0.5);
  double beta = EstimateSymmetricBeta(data.corpus, z, 16, 0.01);
  EXPECT_GT(alpha, 0.0);
  EXPECT_GT(beta, 0.0);
  EXPECT_TRUE(std::isfinite(alpha));
  EXPECT_TRUE(std::isfinite(beta));
}

TEST(HyperparamsTest, TrainerIntegrationImprovesLikelihood) {
  SyntheticConfig config;
  config.num_docs = 200;
  config.vocab_size = 300;
  config.num_topics = 6;
  config.mean_doc_length = 40;
  config.alpha = 0.05;
  config.word_zipf_skew = 1.2;
  config.seed = 23;
  Corpus corpus = GenerateLdaCorpus(config).corpus;

  LdaConfig lda = LdaConfig::PaperDefaults(6);  // α = 8.3, far off
  TrainOptions fixed;
  fixed.iterations = 40;
  fixed.eval_every = 0;
  WarpLdaSampler s1;
  TrainResult base = Train(s1, corpus, lda, fixed);

  TrainOptions optimized = fixed;
  optimized.optimize_hyper_every = 5;
  WarpLdaSampler s2;
  TrainResult tuned = Train(s2, corpus, lda, optimized);

  // The optimizer should pull α far below 50/K and improve the joint LL
  // under each run's own priors is not comparable; compare under tuned
  // priors for both.
  EXPECT_LT(tuned.final_alpha, lda.alpha);
  double base_ll_under_tuned =
      JointLogLikelihood(corpus, base.assignments, lda.num_topics,
                         tuned.final_alpha, tuned.final_beta);
  EXPECT_GT(tuned.final_log_likelihood, base_ll_under_tuned);
}

TEST(HyperparamsTest, ResultRecordsFinalPriors) {
  SyntheticConfig config;
  config.num_docs = 60;
  config.seed = 29;
  Corpus corpus = GenerateLdaCorpus(config).corpus;
  LdaConfig lda = LdaConfig::PaperDefaults(8);
  TrainOptions options;
  options.iterations = 10;
  options.optimize_hyper_every = 3;
  WarpLdaSampler sampler;
  TrainResult result = Train(sampler, corpus, lda, options);
  EXPECT_GT(result.final_alpha, 0.0);
  EXPECT_GT(result.final_beta, 0.0);
  EXPECT_NE(result.final_alpha, lda.alpha);
}

}  // namespace
}  // namespace warplda

// Property tests of the cache simulator against first principles: a
// fully-associative reference implementation (exact LRU over a set) must
// agree with the set-associative simulator configured with one set, and
// structural invariants must hold across random traces.
#include <list>
#include <unordered_map>

#include <gtest/gtest.h>

#include "cachesim/cache_sim.h"
#include "util/rng.h"

namespace warplda {
namespace {

// Exact fully-associative LRU cache over line addresses.
class ReferenceLru {
 public:
  explicit ReferenceLru(size_t capacity) : capacity_(capacity) {}

  bool Touch(uint64_t line) {
    auto it = index_.find(line);
    if (it != index_.end()) {
      order_.erase(it->second);
      order_.push_front(line);
      index_[line] = order_.begin();
      return true;
    }
    if (order_.size() == capacity_) {
      index_.erase(order_.back());
      order_.pop_back();
    }
    order_.push_front(line);
    index_[line] = order_.begin();
    return false;
  }

 private:
  size_t capacity_;
  std::list<uint64_t> order_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index_;
};

TEST(CacheSimPropertyTest, SingleSetMatchesFullyAssociativeReference) {
  CacheConfig config;
  config.line_bytes = 64;
  config.associativity = 16;
  config.size_bytes = 64 * 16;  // exactly one set
  CacheSim sim(config);
  ASSERT_EQ(sim.num_sets(), 1u);
  ReferenceLru reference(16);

  Rng rng(17);
  for (int i = 0; i < 50000; ++i) {
    uint64_t line = rng.NextInt(64);  // 4x capacity working set
    uint64_t before_hits = sim.hits();
    sim.Touch(line * 64);
    bool sim_hit = sim.hits() > before_hits;
    EXPECT_EQ(sim_hit, reference.Touch(line)) << "access " << i;
  }
}

TEST(CacheSimPropertyTest, HitsPlusMissesEqualsAccesses) {
  CacheSim sim;
  Rng rng(18);
  for (int i = 0; i < 10000; ++i) {
    sim.OnAccess(rng.Next() % (1 << 26), 1 + rng.NextInt(256), true, false);
  }
  EXPECT_EQ(sim.hits() + sim.misses(), sim.accesses());
  EXPECT_GE(sim.miss_rate(), 0.0);
  EXPECT_LE(sim.miss_rate(), 1.0);
}

TEST(CacheSimPropertyTest, MissCountBoundedByDistinctLines) {
  // A working set that fits entirely: misses == distinct lines, regardless
  // of access order.
  CacheConfig config;
  config.size_bytes = 1 << 20;
  CacheSim sim(config);
  Rng rng(19);
  const uint32_t lines = 1024;  // 64KB
  for (int i = 0; i < 100000; ++i) {
    sim.Touch(static_cast<uint64_t>(rng.NextInt(lines)) * 64);
  }
  EXPECT_LE(sim.misses(), lines);
}

TEST(CacheSimPropertyTest, LargerCacheNeverMissesMore) {
  // Inclusion-style property on a shared random trace (holds for LRU).
  Rng rng(20);
  std::vector<uint64_t> trace(30000);
  for (auto& a : trace) a = (rng.Next() % (8 << 20)) & ~63ull;

  uint64_t prev_misses = ~0ull;
  for (uint64_t kb : {64ull, 256ull, 1024ull, 4096ull}) {
    CacheConfig config;
    config.size_bytes = kb * 1024;
    config.associativity = 16;
    CacheSim sim(config);
    for (uint64_t a : trace) sim.Touch(a);
    EXPECT_LE(sim.misses(), prev_misses) << kb << "KB";
    prev_misses = sim.misses();
  }
}

TEST(CacheSimPropertyTest, SequentialStreamMissesOncePerLine) {
  CacheConfig config;
  config.size_bytes = 1 << 20;
  CacheSim sim(config);
  // 256KB sequential stream in 4-byte accesses: one miss per 64B line.
  for (uint64_t addr = 0; addr < (256 << 10); addr += 4) {
    sim.OnAccess(addr, 4, false, false);
  }
  EXPECT_EQ(sim.misses(), (256u << 10) / 64);
}

}  // namespace
}  // namespace warplda

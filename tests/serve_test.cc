#include "serve/server.h"

#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/inference.h"
#include "core/streaming.h"
#include "core/trainer.h"
#include "core/warp_lda.h"
#include "corpus/synthetic.h"
#include "serve/engine.h"
#include "serve/model_store.h"

namespace warplda {
namespace {

using serve::InferenceResult;
using serve::InferenceServer;
using serve::ModelSnapshot;
using serve::ModelStore;
using serve::ServerOptions;
using serve::SharedInferenceEngine;

// Hand-built model with two disjoint topics: topic 0 owns words 0-4,
// topic 1 owns words 5-9 (same fixture as inference_test.cc).
TopicModel DisjointModel() {
  CorpusBuilder builder;
  builder.set_num_words(10);
  std::vector<WordId> doc0;
  std::vector<WordId> doc1;
  for (int rep = 0; rep < 40; ++rep) {
    doc0.push_back(rep % 5);
    doc1.push_back(5 + rep % 5);
  }
  builder.AddDocument(doc0);
  builder.AddDocument(doc1);
  Corpus corpus = builder.Build();
  std::vector<TopicId> z(corpus.num_tokens());
  for (TokenIdx t = 0; t < corpus.num_tokens(); ++t) {
    z[t] = corpus.token_word(t) < 5 ? 0 : 1;
  }
  return TopicModel(corpus, z, 2, 0.5, 0.01);
}

// A second, distinguishable model: the topics swapped.
TopicModel SwappedModel() {
  CorpusBuilder builder;
  builder.set_num_words(10);
  std::vector<WordId> doc0;
  std::vector<WordId> doc1;
  for (int rep = 0; rep < 40; ++rep) {
    doc0.push_back(rep % 5);
    doc1.push_back(5 + rep % 5);
  }
  builder.AddDocument(doc0);
  builder.AddDocument(doc1);
  Corpus corpus = builder.Build();
  std::vector<TopicId> z(corpus.num_tokens());
  for (TokenIdx t = 0; t < corpus.num_tokens(); ++t) {
    z[t] = corpus.token_word(t) < 5 ? 1 : 0;
  }
  return TopicModel(corpus, z, 2, 0.5, 0.01);
}

void ExpectValidTheta(const std::vector<double>& theta, uint32_t k_topics) {
  ASSERT_EQ(theta.size(), k_topics);
  double sum = 0.0;
  for (double t : theta) {
    EXPECT_GE(t, 0.0);
    sum += t;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ModelSnapshotTest, PrebuiltPhiMatchesModel) {
  auto model = std::make_shared<const TopicModel>(DisjointModel());
  ModelSnapshot snapshot(model, 1);
  ASSERT_EQ(snapshot.num_words(), model->num_words());
  ASSERT_EQ(snapshot.num_topics(), model->num_topics());
  for (WordId w = 0; w < model->num_words(); ++w) {
    for (TopicId k = 0; k < model->num_topics(); ++k) {
      EXPECT_DOUBLE_EQ(snapshot.Phi(w, k), model->Phi(w, k));
    }
    EXPECT_FALSE(snapshot.word_alias(w).empty());
  }
}

TEST(ModelSnapshotTest, QWordRecoversCountPlusBeta) {
  auto model = std::make_shared<const TopicModel>(DisjointModel());
  ModelSnapshot snapshot(model, 1);
  for (WordId w = 0; w < model->num_words(); ++w) {
    std::vector<double> counts(model->num_topics(), 0.0);
    for (const auto& [k, c] : model->word_topics(w)) counts[k] = c;
    for (TopicId k = 0; k < model->num_topics(); ++k) {
      EXPECT_NEAR(snapshot.QWord(w, k), counts[k] + model->beta(), 1e-9);
    }
  }
}

TEST(ModelStoreTest, PublishBumpsVersionAndSwapsSnapshot) {
  ModelStore store;
  EXPECT_EQ(store.Current(), nullptr);
  EXPECT_EQ(store.version(), 0u);
  auto first = store.Publish(DisjointModel());
  EXPECT_EQ(first->version(), 1u);
  EXPECT_EQ(store.Current(), first);
  auto second = store.Publish(SwappedModel());
  EXPECT_EQ(second->version(), 2u);
  EXPECT_EQ(store.Current(), second);
  // The old snapshot stays fully usable for readers that still hold it.
  EXPECT_GT(first->Phi(0, 0), first->Phi(0, 1));
  EXPECT_GT(second->Phi(0, 1), second->Phi(0, 0));
}

// Racing publishers: versions are assigned at swap time, so the final state
// is always consistent — version() matches Current()->version() and counts
// every publish exactly once.
TEST(ModelStoreTest, ConcurrentPublishersKeepVersionConsistent) {
  ModelStore store;
  constexpr int kThreads = 4;
  constexpr int kPublishesEach = 5;
  std::vector<std::thread> publishers;
  for (int i = 0; i < kThreads; ++i) {
    publishers.emplace_back([&store, i] {
      for (int rep = 0; rep < kPublishesEach; ++rep) {
        store.Publish(i % 2 == 0 ? DisjointModel() : SwappedModel());
      }
    });
  }
  for (auto& thread : publishers) thread.join();
  EXPECT_EQ(store.version(), kThreads * kPublishesEach);
  ASSERT_NE(store.Current(), nullptr);
  EXPECT_EQ(store.Current()->version(), kThreads * kPublishesEach);
}

TEST(SharedInferenceEngineTest, RecognizesTopicsAndSumsToOne) {
  ModelStore store;
  store.Publish(DisjointModel());
  SharedInferenceEngine engine(store.Current());
  std::vector<WordId> doc0 = {0, 1, 2, 0, 1, 2, 3, 4};
  std::vector<WordId> doc1 = {5, 6, 7, 8, 9, 5, 6, 7};
  auto theta0 = engine.InferTheta(doc0, 7);
  auto theta1 = engine.InferTheta(doc1, 7);
  ExpectValidTheta(theta0, 2);
  ExpectValidTheta(theta1, 2);
  EXPECT_GT(theta0[0], 0.8);
  EXPECT_GT(theta1[1], 0.8);
  EXPECT_EQ(engine.MostLikelyTopic(doc0, 7), 0u);
  EXPECT_EQ(engine.MostLikelyTopic(doc1, 7), 1u);
}

// The serving contract: θ̂ is a pure function of (snapshot, words, seed), so
// 8 threads hammering one shared engine must all reproduce the
// single-threaded reference bit for bit.
TEST(SharedInferenceEngineTest, DeterministicAcrossEightConcurrentWorkers) {
  ModelStore store;
  store.Publish(DisjointModel());
  SharedInferenceEngine engine(store.Current());
  const std::vector<WordId> doc = {0, 5, 1, 6, 2, 7, 0, 1};
  const uint64_t seed = 31;
  const auto reference = engine.InferTheta(doc, seed);

  constexpr int kWorkers = 8;
  constexpr int kRepsPerWorker = 50;
  std::vector<std::vector<double>> results(kWorkers);
  std::vector<std::thread> threads;
  for (int i = 0; i < kWorkers; ++i) {
    threads.emplace_back([&, i] {
      std::vector<double> last;
      for (int rep = 0; rep < kRepsPerWorker; ++rep) {
        last = engine.InferTheta(doc, seed);
      }
      results[i] = std::move(last);
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& theta : results) {
    ASSERT_EQ(theta.size(), reference.size());
    for (size_t k = 0; k < theta.size(); ++k) {
      EXPECT_DOUBLE_EQ(theta[k], reference[k]);
    }
  }
}

TEST(InferenceServerTest, ServesDeterministicResultsAcrossWorkers) {
  ModelStore store;
  store.Publish(DisjointModel());
  SharedInferenceEngine reference(store.Current());

  ServerOptions options;
  options.num_workers = 8;
  options.max_batch = 4;
  InferenceServer server(store, options);

  const std::vector<std::vector<WordId>> docs = {
      {0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}, {0, 5, 1, 6}, {2, 2, 3, 9, 9, 8},
  };
  constexpr int kRounds = 32;
  std::vector<std::future<InferenceResult>> futures;
  for (int round = 0; round < kRounds; ++round) {
    for (size_t d = 0; d < docs.size(); ++d) {
      futures.push_back(server.Submit(docs[d], /*seed=*/1000 + d));
    }
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const size_t d = i % docs.size();
    InferenceResult result = futures[i].get();
    ExpectValidTheta(result.theta, 2);
    EXPECT_EQ(result.model_version, 1u);
    const auto expected = reference.InferTheta(docs[d], 1000 + d);
    for (size_t k = 0; k < expected.size(); ++k) {
      EXPECT_DOUBLE_EQ(result.theta[k], expected[k]);
    }
  }
  const auto stats = server.Stats();
  EXPECT_EQ(stats.submitted, docs.size() * kRounds);
  EXPECT_EQ(stats.completed, docs.size() * kRounds);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GT(stats.qps, 0.0);
  EXPECT_GE(stats.p99_micros, stats.p50_micros);
}

// Hot swap under load: requests in flight during a Publish() finish on the
// snapshot they started with, later ones see the new version, and nothing is
// torn — every θ̂ matches the pure-function reference for the version that
// served it.
TEST(InferenceServerTest, HotSwapDuringInFlightRequests) {
  ModelStore store;
  auto snapshot_a = store.Publish(DisjointModel());
  SharedInferenceEngine ref_a(snapshot_a);
  const std::vector<WordId> doc = {0, 1, 5, 6, 2, 7};
  const uint64_t seed = 77;
  const auto theta_a = ref_a.InferTheta(doc, seed);

  ServerOptions options;
  options.num_workers = 8;
  options.max_batch = 2;
  InferenceServer server(store, options);

  constexpr int kPublishes = 20;
  std::atomic<bool> done{false};
  std::thread publisher([&] {
    for (int i = 0; i < kPublishes; ++i) {
      store.Publish(i % 2 == 0 ? SwappedModel() : DisjointModel());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    done.store(true);
  });

  std::vector<std::future<InferenceResult>> futures;
  while (!done.load()) {
    futures.push_back(server.Submit(doc, seed));
  }
  publisher.join();
  server.Drain();

  auto snapshot_b = store.Current();
  ASSERT_EQ(snapshot_b->version(), 1u + kPublishes);
  SharedInferenceEngine ref_b(snapshot_b);
  const auto theta_swapped = SharedInferenceEngine(
      store.Publish(SwappedModel())).InferTheta(doc, seed);
  const auto theta_disjoint = theta_a;

  uint64_t min_version = ~0ull;
  uint64_t max_version = 0;
  for (auto& future : futures) {
    InferenceResult result = future.get();
    ExpectValidTheta(result.theta, 2);
    ASSERT_GE(result.model_version, 1u);
    ASSERT_LE(result.model_version, 1u + kPublishes);
    // Version v serves DisjointModel when v is odd (1, 3, ...), SwappedModel
    // when even — a torn read across two snapshots could not match either.
    const auto& expected =
        result.model_version % 2 == 1 ? theta_disjoint : theta_swapped;
    for (size_t k = 0; k < expected.size(); ++k) {
      EXPECT_DOUBLE_EQ(result.theta[k], expected[k]);
    }
    min_version = std::min(min_version, result.model_version);
    max_version = std::max(max_version, result.model_version);
  }
  EXPECT_GT(max_version, min_version);  // the swap really happened mid-stream

  // The first snapshot, still held here, remains fully readable even though
  // the store has moved on many versions.
  const auto replay = ref_a.InferTheta(doc, seed);
  for (size_t k = 0; k < replay.size(); ++k) {
    EXPECT_DOUBLE_EQ(replay[k], theta_a[k]);
  }
}

// Backpressure: with no model published the workers cannot retire requests,
// so the bounded queue must fill and TrySubmit must start shedding. After
// the publish, everything accepted completes.
TEST(InferenceServerTest, TrySubmitShedsLoadOnFullQueue) {
  ModelStore store;
  ServerOptions options;
  options.num_workers = 2;
  options.queue_capacity = 4;
  options.max_batch = 2;
  InferenceServer server(store, options);

  const std::vector<WordId> doc = {0, 1, 2};
  std::vector<std::future<InferenceResult>> accepted;
  bool saw_rejection = false;
  for (int i = 0; i < 1000 && !saw_rejection; ++i) {
    std::future<InferenceResult> future;
    if (server.TrySubmit(doc, /*seed=*/i, &future)) {
      accepted.push_back(std::move(future));
    } else {
      saw_rejection = true;
    }
  }
  EXPECT_TRUE(saw_rejection);
  EXPECT_GE(server.Stats().rejected, 1u);
  // Capacity bounds what can be in the system: queue + claimed batches.
  EXPECT_LE(accepted.size(),
            options.queue_capacity +
                static_cast<size_t>(options.num_workers) * options.max_batch);

  store.Publish(DisjointModel());
  for (auto& future : accepted) {
    ExpectValidTheta(future.get().theta, 2);
  }
  const auto stats = server.Stats();
  EXPECT_EQ(stats.completed, accepted.size());
}

TEST(InferenceServerTest, SubmitAfterShutdownFails) {
  ModelStore store;
  store.Publish(DisjointModel());
  InferenceServer server(store);
  server.Shutdown();
  auto future = server.Submit({0, 1, 2}, 1);
  EXPECT_THROW(future.get(), std::runtime_error);
}

// Streaming round trip: train StreamingWarpLda online, hot-publish its
// exported model, and serve against it.
TEST(ServeRoundTripTest, StreamingExportModelServesCoherently) {
  SyntheticConfig synth;
  synth.num_docs = 400;
  synth.vocab_size = 500;
  synth.num_topics = 5;
  synth.mean_doc_length = 40;
  synth.seed = 9;
  SyntheticCorpus data = GenerateLdaCorpus(synth);

  StreamingOptions stream_options;
  stream_options.num_topics = 5;
  stream_options.batch_size = 100;
  StreamingWarpLda streaming(synth.vocab_size, stream_options);
  streaming.ProcessCorpus(data.corpus, /*epochs=*/3);

  ModelStore store;
  auto snapshot = store.Publish(streaming.ExportSharedModel());
  EXPECT_EQ(snapshot->num_topics(), 5u);
  EXPECT_EQ(snapshot->num_words(), synth.vocab_size);

  ServerOptions options;
  options.num_workers = 4;
  InferenceServer server(store, options);
  std::vector<std::future<InferenceResult>> futures;
  const DocId probe_docs = std::min<DocId>(data.corpus.num_docs(), 64);
  for (DocId d = 0; d < probe_docs; ++d) {
    auto tokens = data.corpus.doc_tokens(d);
    futures.push_back(
        server.Submit(std::vector<WordId>(tokens.begin(), tokens.end()), d));
  }
  for (auto& future : futures) {
    InferenceResult result = future.get();
    ExpectValidTheta(result.theta, 5);
    EXPECT_EQ(result.model_version, 1u);
  }
}

// Train-then-serve round trip through WarpLdaSampler::ExportModel, and the
// Inferencer ↔ SharedInferenceEngine consistency check: both samplers target
// the same posterior, so on a well-separated corpus they agree on the
// dominant topic.
TEST(ServeRoundTripTest, SamplerExportModelMatchesInferencer) {
  SyntheticConfig synth;
  synth.num_docs = 300;
  synth.vocab_size = 400;
  synth.num_topics = 4;
  synth.mean_doc_length = 50;
  SyntheticCorpus data = GenerateLdaCorpus(synth);

  LdaConfig config = LdaConfig::PaperDefaults(4);
  config.alpha = 0.1;
  WarpLdaSampler sampler;
  TrainOptions train_options;
  train_options.iterations = 30;
  train_options.eval_every = 0;
  Train(sampler, data.corpus, config, train_options);

  std::shared_ptr<const TopicModel> model = sampler.ExportSharedModel();
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->num_topics(), 4u);

  Inferencer inferencer(model);
  inferencer.Prebuild();
  ModelStore store;
  SharedInferenceEngine engine(store.Publish(model));
  int agreements = 0;
  const DocId probe_docs = 40;
  for (DocId d = 0; d < probe_docs; ++d) {
    auto tokens = data.corpus.doc_tokens(d);
    std::vector<WordId> words(tokens.begin(), tokens.end());
    if (words.empty()) {
      ++agreements;
      continue;
    }
    if (inferencer.MostLikelyTopic(words) == engine.MostLikelyTopic(words, d)) {
      ++agreements;
    }
  }
  EXPECT_GE(agreements, 30);  // same posterior, independent chains
}

// The shared_ptr migration closes the snapshot-lifetime hazard: the
// Inferencer keeps the model alive after every external reference is gone.
TEST(InferencerLifetimeTest, SurvivesPublisherDroppingTheModel) {
  auto model = std::make_shared<const TopicModel>(DisjointModel());
  Inferencer inferencer(model);
  model.reset();
  std::vector<WordId> doc = {0, 1, 2, 3};
  auto theta = inferencer.InferTheta(doc);
  ExpectValidTheta(theta, 2);
  EXPECT_GT(theta[0], 0.8);
}

TEST(InferencerLifetimeTest, PrebuildDoesNotChangeResults) {
  TopicModel model = DisjointModel();
  InferenceOptions options;
  options.seed = 5;
  std::vector<WordId> doc = {0, 5, 1, 6, 2};
  Inferencer lazy(model, options);
  Inferencer eager(model, options);
  eager.Prebuild();
  auto theta_lazy = lazy.InferTheta(doc);
  auto theta_eager = eager.InferTheta(doc);
  for (size_t k = 0; k < theta_lazy.size(); ++k) {
    EXPECT_DOUBLE_EQ(theta_lazy[k], theta_eager[k]);
  }
}

}  // namespace
}  // namespace warplda
